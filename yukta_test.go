package yukta

import (
	"sync"
	"testing"
	"time"
)

var (
	platOnce sync.Once
	plat     *Platform
	platErr  error
)

func testPlatform(t *testing.T) *Platform {
	t.Helper()
	platOnce.Do(func() { plat, platErr = NewDefaultPlatform() })
	if platErr != nil {
		t.Fatal(platErr)
	}
	return plat
}

func TestPublicQuickstart(t *testing.T) {
	p := testPlatform(t)
	scheme := p.YuktaFullSSV(DefaultHWParams(), DefaultOSParams())
	app, err := LookupWorkload("blackscholes")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p.Cfg, scheme, app, RunOptions{MaxTime: 20 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("quickstart run did not complete")
	}
	if res.ExD <= 0 || res.EnergyJ <= 0 || res.TimeS <= 0 {
		t.Fatalf("implausible result: %+v", res)
	}
}

func TestCatalogs(t *testing.T) {
	if len(EvaluationApps()) != 14 {
		t.Fatalf("evaluation suite has %d apps, want 14", len(EvaluationApps()))
	}
	if len(TrainingApps()) != 6 {
		t.Fatalf("training set has %d apps, want 6", len(TrainingApps()))
	}
	for _, n := range EvaluationApps() {
		if _, err := LookupWorkload(n); err != nil {
			t.Fatalf("catalog missing %s: %v", n, err)
		}
	}
	if len(HeterogeneousMixes()) != 4 {
		t.Fatal("want 4 heterogeneous mixes")
	}
}

func TestSynthesisReportsOnPublicAPI(t *testing.T) {
	p := testPlatform(t)
	ctl, err := p.HWControllerValidated(DefaultHWParams())
	if err != nil {
		t.Fatal(err)
	}
	if ctl.Report.SSV > 1 {
		t.Errorf("validated HW controller SSV %.2f > 1", ctl.Report.SSV)
	}
	if ctl.Report.StateDim != 20 {
		t.Errorf("controller N = %d, want the paper's 20", ctl.Report.StateDim)
	}
}
