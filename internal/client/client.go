// Package client is the hardened HTTP client for the yukta-serve API: the
// code path behind `yukta-sim -via` and the crash-recovery chaos harness.
// It layers three robustness mechanisms over plain JSON requests:
//
//   - Retries with exponential backoff and jitter for transport errors
//     (daemon briefly down, connection reset) and for the server's
//     retryable rejections — 429 rate_limited/capacity and 503 recovering —
//     honoring the Retry-After header when the server sets one. A 503
//     draining rejection fails fast: a draining daemon will not come back.
//   - Idempotent step sequencing: every step request carries a strictly
//     increasing per-session sequence number, so a retry of a request whose
//     response was lost (timeout, crash between execution and reply)
//     returns the recorded outcome instead of advancing the run twice.
//   - Crash-transparent session driving: StepToDone keeps stepping by
//     whatever the server reports, so a session that a daemon crash rolled
//     back to its last logged position is simply driven forward again —
//     determinism makes the final trace and scalars identical either way.
//
// Creates are deliberately not retried on transport errors: the client
// cannot know whether the server registered the session before the
// connection died, and a duplicate session would hold a slot forever.
package client

import (
	"bufio"
	"bytes"
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"yukta/internal/serve"
)

// Config tunes a Client. Only Base is required; zero values select the
// documented defaults.
type Config struct {
	// Base is the daemon's base URL, e.g. "http://localhost:8871". Required.
	Base string

	// HTTPClient issues the requests. Nil means http.DefaultClient.
	HTTPClient *http.Client

	// MaxAttempts bounds the total tries per request (first attempt
	// included). 0 means 10.
	MaxAttempts int

	// BackoffBase is the first retry delay; each further retry doubles it.
	// 0 means 100ms.
	BackoffBase time.Duration

	// BackoffCap bounds the exponential growth. 0 means 5s. The server's
	// Retry-After, when longer than the computed backoff, wins.
	BackoffCap time.Duration

	// JitterSeed seeds the ±25% backoff jitter that decorrelates retry
	// storms across clients. 0 means 1 (deterministic, test-friendly);
	// real CLIs seed from wall clock.
	JitterSeed int64

	// Sleep waits between attempts, injectable for tests. Nil means
	// time.Sleep.
	Sleep func(time.Duration)

	// Logf, when non-nil, receives one line per retry ("step retry 2/10
	// in 200ms: ..."), so interactive callers can narrate the waiting.
	Logf func(format string, args ...any)
}

// Client is a retrying yukta-serve API client. All methods are safe for
// concurrent use; each Session is single-owner like the hosted run it
// drives.
type Client struct {
	cfg   Config
	httpc *http.Client

	mu  sync.Mutex
	rng *rand.Rand
}

// New builds a Client, applying the Config defaults.
func New(cfg Config) *Client {
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = http.DefaultClient
	}
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = 10
	}
	if cfg.BackoffBase == 0 {
		cfg.BackoffBase = 100 * time.Millisecond
	}
	if cfg.BackoffCap == 0 {
		cfg.BackoffCap = 5 * time.Second
	}
	if cfg.JitterSeed == 0 {
		cfg.JitterSeed = 1
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	return &Client{
		cfg:   cfg,
		httpc: cfg.HTTPClient,
		rng:   rand.New(rand.NewSource(cfg.JitterSeed)),
	}
}

// StatusError is the error for a non-2xx response that was not retried (or
// exhausted its retries): the status code plus the server's error envelope.
type StatusError struct {
	// StatusCode is the HTTP status.
	StatusCode int
	// Code is the machine-readable reason from the error envelope ("" when
	// the body was not an envelope).
	Code string
	// Body is the raw response body, for messages.
	Body string
}

// Error renders the status and envelope.
func (e *StatusError) Error() string {
	return fmt.Sprintf("status %d (%s): %s", e.StatusCode, e.Code, e.Body)
}

// backoff computes the jittered exponential delay before retry attempt
// (0-based): base·2^attempt capped at BackoffCap, scaled by a uniform
// ±25% jitter.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.cfg.BackoffBase
	for i := 0; i < attempt && d < c.cfg.BackoffCap; i++ {
		d *= 2
	}
	if d > c.cfg.BackoffCap {
		d = c.cfg.BackoffCap
	}
	c.mu.Lock()
	factor := 0.75 + 0.5*c.rng.Float64()
	c.mu.Unlock()
	return time.Duration(float64(d) * factor)
}

// retryAfter parses the Retry-After header as delay seconds (0 when absent
// or malformed; HTTP-date form is not used by yukta-serve).
func retryAfter(resp *http.Response) time.Duration {
	s := resp.Header.Get("Retry-After")
	if s == "" {
		return 0
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0
	}
	return time.Duration(n) * time.Second
}

// envelopeCode extracts the machine-readable code from an error-envelope
// body ("" when the body is not one).
func envelopeCode(raw []byte) string {
	var eb struct {
		Code string `json:"code"`
	}
	_ = json.Unmarshal(raw, &eb)
	return eb.Code
}

// logf narrates a retry when the Config asked for it.
func (c *Client) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// requestIDHeader is the serve daemon's correlation-ID header. The client
// mints one ID per logical request and pins it across every retry attempt,
// so the daemon's request log shows one correlation ID per client intent —
// a retried step is traceable end to end.
const requestIDHeader = "X-Request-ID"

// mintRequestID generates a correlation ID for one logical request: 8
// random bytes, hex (the same shape the daemon mints for clients that send
// none).
func mintRequestID() string {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		return "rid-fallback"
	}
	return hex.EncodeToString(b[:])
}

// do issues one JSON request with the retry policy. retryTransport marks
// the request safe to re-send after a transport error (idempotent by
// nature or by sequence number); retryable server rejections (429, 503
// except draining) are always retried, waiting the longer of the computed
// backoff and the server's Retry-After. Every attempt of one do call
// carries the same freshly minted X-Request-ID.
func (c *Client) do(method, path string, body, out any, want int, retryTransport bool) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return err
		}
	}
	rid := mintRequestID()
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if payload != nil {
			rd = bytes.NewReader(payload)
		}
		req, err := http.NewRequest(method, c.cfg.Base+path, rd)
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(requestIDHeader, rid)

		var failErr error
		retryable := false
		serverWait := time.Duration(0)
		resp, err := c.httpc.Do(req)
		if err != nil {
			failErr, retryable = err, retryTransport
		} else {
			raw, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil {
				failErr, retryable = rerr, retryTransport
			} else if resp.StatusCode == want {
				if out != nil {
					return json.Unmarshal(raw, out)
				}
				return nil
			} else {
				code := envelopeCode(raw)
				failErr = &StatusError{StatusCode: resp.StatusCode, Code: code, Body: string(bytes.TrimSpace(raw))}
				if resp.StatusCode == http.StatusTooManyRequests ||
					(resp.StatusCode == http.StatusServiceUnavailable && code != "draining") {
					retryable = true
					serverWait = retryAfter(resp)
				}
			}
		}
		if !retryable || attempt+1 >= c.cfg.MaxAttempts {
			return failErr
		}
		d := c.backoff(attempt)
		if serverWait > d {
			d = serverWait
		}
		c.logf("%s %s: retry %d/%d in %v: %v", method, path, attempt+1, c.cfg.MaxAttempts, d.Round(time.Millisecond), failErr)
		c.cfg.Sleep(d)
	}
}

// Session drives one hosted session. It owns the idempotency sequence
// counter, so all stepping of a session must go through one Session value.
type Session struct {
	c *Client
	// ID is the server-assigned session identifier.
	ID string
	// seq is the last step sequence number issued.
	seq int64
}

// CreateSession creates a hosted session and returns its driver plus the
// created status document. Rate/capacity rejections and the recovery fence
// are retried with backoff; transport errors are not (see the package
// comment).
func (c *Client) CreateSession(req serve.CreateRequest) (*Session, serve.SessionInfo, error) {
	var info serve.SessionInfo
	if err := c.do("POST", "/v1/sessions", req, &info, http.StatusCreated, false); err != nil {
		return nil, info, err
	}
	return &Session{c: c, ID: info.ID}, info, nil
}

// Attach returns a driver for an existing session ID (trace collection,
// tests). The sequence counter starts fresh, which is safe: server-side
// sequences only require monotonicity per retried request, not continuity
// across clients — but two concurrent drivers of one session are not.
func (c *Client) Attach(id string) *Session {
	return &Session{c: c, ID: id}
}

// Step advances the session by up to steps intervals, retrying safely on
// transport errors: every request carries the next sequence number, so a
// retry of a lost response returns the recorded outcome instead of
// re-executing.
func (s *Session) Step(steps int) (serve.StepResponse, error) {
	s.seq++
	var out serve.StepResponse
	err := s.c.do("POST", "/v1/sessions/"+s.ID+"/step",
		serve.StepRequest{Steps: steps, Seq: s.seq}, &out, http.StatusOK, true)
	return out, err
}

// StepToDone drives the session to completion in chunk-sized step requests,
// returning the total number of intervals the server reports executed. A
// daemon crash mid-drive is transparent: the rolled-back session is simply
// stepped forward again after recovery, and determinism makes the completed
// run identical to an uninterrupted one.
func (s *Session) StepToDone(chunk int) (int, error) {
	last := -1
	for stall := 0; ; {
		resp, err := s.Step(chunk)
		if err != nil {
			return resp.Steps, err
		}
		if resp.Done {
			return resp.Steps, nil
		}
		// Progress guard: recovery may legally roll the position back, but a
		// session that stops advancing across attempts is stuck.
		if resp.Steps <= last {
			if stall++; stall > 3 {
				return resp.Steps, fmt.Errorf("session %s stopped advancing at step %d", s.ID, resp.Steps)
			}
		} else {
			stall = 0
		}
		last = resp.Steps
	}
}

// Info fetches the session-status document.
func (s *Session) Info() (serve.SessionInfo, error) {
	var info serve.SessionInfo
	err := s.c.do("GET", "/v1/sessions/"+s.ID, nil, &info, http.StatusOK, true)
	return info, err
}

// Trip forces an operator supervisor trip.
func (s *Session) Trip() (serve.TripResponse, error) {
	var out serve.TripResponse
	err := s.c.do("POST", "/v1/sessions/"+s.ID+"/trip", nil, &out, http.StatusOK, false)
	return out, err
}

// WriteTrace streams the session's JSONL trace into w, retrying transport
// errors and retryable rejections like any idempotent read.
func (s *Session) WriteTrace(w io.Writer) error {
	rid := mintRequestID()
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequest("GET", s.c.cfg.Base+"/v1/sessions/"+s.ID+"/trace", nil)
		if err != nil {
			return err
		}
		req.Header.Set(requestIDHeader, rid)
		resp, err := s.c.httpc.Do(req)
		var failErr error
		retryable := false
		serverWait := time.Duration(0)
		if err != nil {
			failErr, retryable = err, true
		} else if resp.StatusCode != http.StatusOK {
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			code := envelopeCode(raw)
			failErr = &StatusError{StatusCode: resp.StatusCode, Code: code, Body: string(bytes.TrimSpace(raw))}
			if resp.StatusCode == http.StatusTooManyRequests ||
				(resp.StatusCode == http.StatusServiceUnavailable && code != "draining") {
				retryable = true
				serverWait = retryAfter(resp)
			}
		} else {
			_, cErr := io.Copy(w, resp.Body)
			resp.Body.Close()
			// A stream torn mid-copy cannot be retried blindly: w already
			// holds a partial trace. Surface it to the caller.
			return cErr
		}
		if !retryable || attempt+1 >= s.c.cfg.MaxAttempts {
			return failErr
		}
		d := s.c.backoff(attempt)
		if serverWait > d {
			d = serverWait
		}
		s.c.logf("GET trace: retry %d/%d in %v: %v", attempt+1, s.c.cfg.MaxAttempts, d.Round(time.Millisecond), failErr)
		s.c.cfg.Sleep(d)
	}
}

// WatchOption configures Session.Watch.
type WatchOption func(*watchOpts)

// watchOpts is the resolved Watch configuration.
type watchOpts struct {
	connected chan<- struct{}
}

// WatchConnected arranges for ch to be closed once the stream is
// established — the daemon has registered the watcher, so records produced
// by step requests issued after the close cannot be missed. Without it, a
// Watch raced against stepping from another goroutine may attach after
// early intervals (or after the whole run) have executed.
func WatchConnected(ch chan<- struct{}) WatchOption {
	return func(o *watchOpts) { o.connected = ch }
}

// Watch opens the session's live event stream (GET
// /v1/sessions/{id}/watch, a text/event-stream of per-interval flight
// records) and calls fn with each record's JSON payload until the server
// sends its done sentinel, the stream breaks, ctx is cancelled, or fn
// returns an error. Each payload line is byte-identical to the
// corresponding trace JSONL line; the bytes passed to fn are only valid for
// the duration of the call. Watch does not retry: a live stream that broke
// has already missed intervals, and the caller decides whether to re-attach.
func (s *Session) Watch(ctx context.Context, fn func(record []byte) error, opts ...WatchOption) error {
	var wo watchOpts
	for _, o := range opts {
		o(&wo)
	}
	req, err := http.NewRequestWithContext(ctx, "GET",
		s.c.cfg.Base+"/v1/sessions/"+s.ID+"/watch", nil)
	if err != nil {
		return err
	}
	req.Header.Set(requestIDHeader, mintRequestID())
	resp, err := s.c.httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		return &StatusError{StatusCode: resp.StatusCode, Code: envelopeCode(raw),
			Body: string(bytes.TrimSpace(raw))}
	}
	if wo.connected != nil {
		close(wo.connected)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	done := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			// Event separator.
		case strings.HasPrefix(line, "event: done"):
			done = true
		case strings.HasPrefix(line, "data: "):
			if done {
				return nil // the sentinel's payload carries no record
			}
			if err := fn([]byte(strings.TrimPrefix(line, "data: "))); err != nil {
				return err
			}
		}
	}
	if done {
		return nil
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return fmt.Errorf("watch stream for session %s ended without the done sentinel", s.ID)
}

// Delete closes the session, freeing its server slot. A 404 is treated as
// success: the session is gone either way (an earlier delete whose response
// was lost, or the idle reaper got there first).
func (s *Session) Delete() error {
	err := s.c.do("DELETE", "/v1/sessions/"+s.ID, nil, nil, http.StatusOK, true)
	var se *StatusError
	if errors.As(err, &se) && se.StatusCode == http.StatusNotFound {
		return nil
	}
	return err
}
