package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"yukta/internal/serve"
)

// scriptedServer answers each request from a queue of canned responses and
// records how many arrived.
type scriptedServer struct {
	mu    sync.Mutex
	queue []func(http.ResponseWriter)
	calls int
}

func (s *scriptedServer) handler(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	if len(s.queue) == 0 {
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	next := s.queue[0]
	s.queue = s.queue[1:]
	next(w)
}

// newScriptedClient wires a Client (fake sleep, fixed jitter seed) to a
// scripted server.
func newScriptedClient(t *testing.T, script ...func(http.ResponseWriter)) (*Client, *scriptedServer, *[]time.Duration) {
	t.Helper()
	srv := &scriptedServer{queue: script}
	ts := httptest.NewServer(http.HandlerFunc(srv.handler))
	t.Cleanup(ts.Close)
	var sleeps []time.Duration
	c := New(Config{
		Base:        ts.URL,
		MaxAttempts: 5,
		Sleep:       func(d time.Duration) { sleeps = append(sleeps, d) },
	})
	return c, srv, &sleeps
}

func ok(body string) func(http.ResponseWriter) {
	return func(w http.ResponseWriter) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(body))
	}
}

func reject(status int, retryAfter, body string) func(http.ResponseWriter) {
	return func(w http.ResponseWriter) {
		if retryAfter != "" {
			w.Header().Set("Retry-After", retryAfter)
		}
		w.WriteHeader(status)
		w.Write([]byte(body))
	}
}

// TestStepRetriesHonorRetryAfterAndBackoff walks a step request through a
// 429 carrying Retry-After and a 503 recovering without one: the first wait
// must honor the server's two seconds (longer than the computed backoff),
// the second falls back to the jittered exponential (200ms ±25% on the
// second retry), and the call ultimately succeeds.
func TestStepRetriesHonorRetryAfterAndBackoff(t *testing.T) {
	c, srv, sleeps := newScriptedClient(t,
		reject(http.StatusTooManyRequests, "2", `{"error":"slow down","code":"rate_limited"}`),
		reject(http.StatusServiceUnavailable, "", `{"error":"replaying","code":"recovering"}`),
		ok(`{"executed":3,"steps":3,"done":false}`),
	)
	sess := c.Attach("s-1")
	resp, err := sess.Step(3)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Steps != 3 || srv.calls != 3 {
		t.Fatalf("steps=%d after %d calls; want 3 after 3", resp.Steps, srv.calls)
	}
	if len(*sleeps) != 2 {
		t.Fatalf("slept %d times; want 2", len(*sleeps))
	}
	if (*sleeps)[0] < 2*time.Second {
		t.Fatalf("first wait %v ignored Retry-After: 2", (*sleeps)[0])
	}
	if d := (*sleeps)[1]; d < 150*time.Millisecond || d > 250*time.Millisecond {
		t.Fatalf("second wait %v outside the 200ms ±25%% backoff window", d)
	}
}

// TestDrainingFailsFast: a 503 with code "draining" is terminal — the
// daemon is going away, retrying only delays the inevitable.
func TestDrainingFailsFast(t *testing.T) {
	c, srv, sleeps := newScriptedClient(t,
		reject(http.StatusServiceUnavailable, "1", `{"error":"shutting down","code":"draining"}`),
	)
	_, err := c.Attach("s-1").Step(3)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != "draining" {
		t.Fatalf("err = %v; want a draining StatusError", err)
	}
	if srv.calls != 1 || len(*sleeps) != 0 {
		t.Fatalf("%d calls, %d sleeps; draining must not be retried", srv.calls, len(*sleeps))
	}
}

// TestCreateNotRetriedOnTransportError: a create whose connection dies may
// or may not have registered a session server-side, so the client must
// surface the error instead of risking a duplicate.
func TestCreateNotRetriedOnTransportError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	base := ts.URL
	ts.Close() // every request now fails at the transport
	var sleeps []time.Duration
	c := New(Config{Base: base, MaxAttempts: 5, Sleep: func(d time.Duration) { sleeps = append(sleeps, d) }})
	if _, _, err := c.CreateSession(serve.CreateRequest{Scheme: "coordinated", App: "gamess"}); err == nil {
		t.Fatal("create against a dead daemon succeeded")
	}
	if len(sleeps) != 0 {
		t.Fatalf("create was transport-retried %d times", len(sleeps))
	}

	// An idempotent step against the same dead daemon is retried to the
	// attempt cap.
	if _, err := c.Attach("s-1").Step(1); err == nil {
		t.Fatal("step against a dead daemon succeeded")
	}
	if len(sleeps) != 4 { // MaxAttempts 5 → 4 waits between them
		t.Fatalf("step slept %d times; want 4", len(sleeps))
	}
}

// TestStepSequenceMonotonic: every logical step request gets a fresh,
// strictly increasing sequence number, and the number is pinned across what
// would be retries of the same request.
func TestStepSequenceMonotonic(t *testing.T) {
	var seqs []int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req serve.StepRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Error(err)
		}
		seqs = append(seqs, req.Seq)
		ok(`{"executed":1,"steps":1,"done":false}`)(w)
	}))
	t.Cleanup(ts.Close)
	c := New(Config{Base: ts.URL})
	sess := c.Attach("s-1")
	for i := 0; i < 3; i++ {
		if _, err := sess.Step(1); err != nil {
			t.Fatal(err)
		}
	}
	if len(seqs) != 3 || seqs[0] != 1 || seqs[1] != 2 || seqs[2] != 3 {
		t.Fatalf("server saw sequence numbers %v; want [1 2 3]", seqs)
	}
}

// TestDeleteTolerates404: the session being already gone is the outcome a
// delete wants.
func TestDeleteTolerates404(t *testing.T) {
	c, _, _ := newScriptedClient(t,
		reject(http.StatusNotFound, "", `{"error":"unknown session","code":"unknown_session"}`),
	)
	if err := c.Attach("s-9").Delete(); err != nil {
		t.Fatalf("delete of an already-gone session: %v", err)
	}
}

// TestRequestIDPinnedAcrossRetries checks the correlation-ID retry
// contract: one logical call carries one X-Request-ID across every retry
// attempt (so the server's log lines for the retries correlate), and a new
// logical call mints a fresh one.
func TestRequestIDPinnedAcrossRetries(t *testing.T) {
	var mu sync.Mutex
	var rids []string
	responses := []func(http.ResponseWriter){
		reject(http.StatusServiceUnavailable, "", `{"error":"replaying","code":"recovering"}`),
		ok(`{"executed":3,"steps":3,"done":false}`),
		ok(`{"executed":3,"steps":6,"done":false}`),
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		rids = append(rids, r.Header.Get("X-Request-ID"))
		next := responses[0]
		responses = responses[1:]
		mu.Unlock()
		next(w)
	}))
	t.Cleanup(ts.Close)
	c := New(Config{Base: ts.URL, MaxAttempts: 5, Sleep: func(time.Duration) {}})
	sess := c.Attach("s-1")

	if _, err := sess.Step(3); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Step(3); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(rids) != 3 {
		t.Fatalf("server saw %d requests, want 3", len(rids))
	}
	if rids[0] == "" {
		t.Fatal("client sent no X-Request-ID")
	}
	if rids[0] != rids[1] {
		t.Errorf("retry changed the request ID: %q then %q", rids[0], rids[1])
	}
	if rids[2] == rids[0] {
		t.Errorf("second logical call reused the first call's ID %q", rids[2])
	}
}

// TestWatchStream replays a canned /watch event stream: every data payload
// reaches the callback and the done sentinel ends the stream cleanly.
func TestWatchStream(t *testing.T) {
	stream := "data: {\"step\":0,\"t_s\":0.5}\n\n" +
		"data: {\"step\":1,\"t_s\":1}\n\n" +
		"event: done\ndata: {}\n\n"
	c, srv, _ := newScriptedClient(t, func(w http.ResponseWriter) {
		w.Header().Set("Content-Type", "text/event-stream")
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(stream))
	})
	var got []string
	connected := make(chan struct{})
	err := c.Attach("s-1").Watch(context.Background(), func(record []byte) error {
		got = append(got, string(record))
		return nil
	}, WatchConnected(connected))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-connected:
	default:
		t.Error("WatchConnected channel not closed on an established stream")
	}
	if srv.calls != 1 {
		t.Fatalf("watch made %d requests, want 1 (no retry on a stream)", srv.calls)
	}
	want := []string{`{"step":0,"t_s":0.5}`, `{"step":1,"t_s":1}`}
	if len(got) != len(want) {
		t.Fatalf("callback saw %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestWatchTruncatedStream: a stream that ends without the done sentinel
// (daemon died mid-watch) must surface an error, not a silent clean return.
func TestWatchTruncatedStream(t *testing.T) {
	c, _, _ := newScriptedClient(t, func(w http.ResponseWriter) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("data: {\"step\":0}\n\n"))
	})
	err := c.Attach("s-1").Watch(context.Background(), func([]byte) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "done sentinel") {
		t.Fatalf("truncated stream returned %v; want a missing-sentinel error", err)
	}
}

// TestWatchErrorStatus: a non-200 watch response decodes into a StatusError
// like any other endpoint.
func TestWatchErrorStatus(t *testing.T) {
	c, _, _ := newScriptedClient(t,
		reject(http.StatusNotFound, "", `{"error":"no such session","code":"unknown_session"}`))
	err := c.Attach("s-404").Watch(context.Background(), func([]byte) error { return nil })
	var se *StatusError
	if !errors.As(err, &se) || se.Code != "unknown_session" {
		t.Fatalf("err = %v; want an unknown_session StatusError", err)
	}
}
