package mat

import (
	"math"
	"sort"
)

// SingularValues returns the singular values of a in descending order, using
// the one-sided Jacobi method on A (or A^T when that is shorter). One-sided
// Jacobi is slower than Golub-Kahan bidiagonalization but is simple,
// unconditionally convergent in practice, and highly accurate for the small
// matrices used in controller synthesis.
func SingularValues(a *Matrix) []float64 {
	m, n := a.rows, a.cols
	if m == 0 || n == 0 {
		return nil
	}
	u := a.Clone()
	if m < n {
		u = a.T()
		m, n = n, m
	}
	// One-sided Jacobi: orthogonalize pairs of columns of u until all pairs
	// are numerically orthogonal.
	const maxSweeps = 60
	eps := 1e-15
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				var alpha, beta, gamma float64
				for i := 0; i < m; i++ {
					up := u.At(i, p)
					uq := u.At(i, q)
					alpha += up * up
					beta += uq * uq
					gamma += up * uq
				}
				if gamma == 0 {
					continue
				}
				if math.Abs(gamma) > eps*math.Sqrt(alpha*beta) {
					off++
				} else {
					continue
				}
				// Jacobi rotation that zeroes the (p,q) inner product.
				zeta := (beta - alpha) / (2 * gamma)
				t := math.Copysign(1, zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for i := 0; i < m; i++ {
					up := u.At(i, p)
					uq := u.At(i, q)
					u.Set(i, p, c*up-s*uq)
					u.Set(i, q, s*up+c*uq)
				}
			}
		}
		if off == 0 {
			break
		}
	}
	sv := make([]float64, n)
	for j := 0; j < n; j++ {
		var s float64
		for i := 0; i < m; i++ {
			v := u.At(i, j)
			s += v * v
		}
		sv[j] = math.Sqrt(s)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(sv)))
	return sv
}

// MaxSingularValue returns the largest singular value (spectral norm) of a.
func MaxSingularValue(a *Matrix) float64 {
	sv := SingularValues(a)
	if len(sv) == 0 {
		return 0
	}
	return sv[0]
}
