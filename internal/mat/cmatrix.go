package mat

import (
	"fmt"
	"math"
	"math/cmplx"
)

// CMatrix is a dense, row-major matrix of complex128 values. It is used for
// frequency-domain computations (transfer matrices evaluated on the unit
// circle) in the robust-control layer.
type CMatrix struct {
	rows, cols int
	data       []complex128
}

// CNew returns an r×c complex matrix backed by data (not copied).
func CNew(r, c int, data []complex128) *CMatrix {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: complex data length %d does not match %dx%d", len(data), r, c))
	}
	return &CMatrix{rows: r, cols: c, data: data}
}

// CZeros returns a new r×c complex matrix of zeros.
func CZeros(r, c int) *CMatrix {
	return CNew(r, c, make([]complex128, r*c))
}

// CIdentity returns the n×n complex identity.
func CIdentity(n int) *CMatrix {
	m := CZeros(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// ToComplex converts a real matrix to a complex one.
func ToComplex(a *Matrix) *CMatrix {
	out := CZeros(a.rows, a.cols)
	for i := range a.data {
		out.data[i] = complex(a.data[i], 0)
	}
	return out
}

// Rows returns the number of rows.
func (m *CMatrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *CMatrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *CMatrix) At(i, j int) complex128 {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: complex index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *CMatrix) Set(i, j int, v complex128) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: complex index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
	m.data[i*m.cols+j] = v
}

// Clone returns a deep copy.
func (m *CMatrix) Clone() *CMatrix {
	d := make([]complex128, len(m.data))
	copy(d, m.data)
	return CNew(m.rows, m.cols, d)
}

// Add returns m + b.
func (m *CMatrix) Add(b *CMatrix) *CMatrix {
	m.sameShape(b, "Add")
	out := m.Clone()
	for i := range out.data {
		out.data[i] += b.data[i]
	}
	return out
}

// Sub returns m - b.
func (m *CMatrix) Sub(b *CMatrix) *CMatrix {
	m.sameShape(b, "Sub")
	out := m.Clone()
	for i := range out.data {
		out.data[i] -= b.data[i]
	}
	return out
}

// Scale returns s*m.
func (m *CMatrix) Scale(s complex128) *CMatrix {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

// Mul returns the product m*b.
func (m *CMatrix) Mul(b *CMatrix) *CMatrix {
	if m.cols != b.rows {
		panic(fmt.Sprintf("mat: complex Mul mismatch %dx%d * %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := CZeros(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			mv := m.data[i*m.cols+k]
			if mv == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			orow := out.data[i*out.cols : (i+1)*out.cols]
			for j, bv := range brow {
				orow[j] += mv * bv
			}
		}
	}
	return out
}

// ConjT returns the conjugate transpose m^H.
func (m *CMatrix) ConjT() *CMatrix {
	out := CZeros(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*out.cols+i] = cmplx.Conj(m.data[i*m.cols+j])
		}
	}
	return out
}

func (m *CMatrix) sameShape(b *CMatrix, op string) {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("mat: complex %s shape mismatch %dx%d vs %dx%d", op, m.rows, m.cols, b.rows, b.cols))
	}
}

// CSolve solves a*x = b for complex square a using Gaussian elimination with
// partial pivoting.
func CSolve(a, b *CMatrix) (*CMatrix, error) {
	if a.rows != a.cols {
		panic(fmt.Sprintf("mat: CSolve non-square %dx%d", a.rows, a.cols))
	}
	if b.rows != a.rows {
		panic(fmt.Sprintf("mat: CSolve row mismatch %d vs %d", b.rows, a.rows))
	}
	n := a.rows
	lu := a.Clone()
	x := b.Clone()
	scale := 0.0
	for _, v := range lu.data {
		if av := cmplx.Abs(v); av > scale {
			scale = av
		}
	}
	for k := 0; k < n; k++ {
		p := k
		max := cmplx.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := cmplx.Abs(lu.At(i, k)); a > max {
				max, p = a, i
			}
		}
		if max < 1e-14*scale || max == 0 {
			return nil, ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu.data[p*n+j], lu.data[k*n+j] = lu.data[k*n+j], lu.data[p*n+j]
			}
			for j := 0; j < x.cols; j++ {
				x.data[p*x.cols+j], x.data[k*x.cols+j] = x.data[k*x.cols+j], x.data[p*x.cols+j]
			}
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			f := lu.At(i, k) / pivot
			if f == 0 {
				continue
			}
			lu.Set(i, k, 0)
			for j := k + 1; j < n; j++ {
				lu.data[i*n+j] -= f * lu.data[k*n+j]
			}
			for j := 0; j < x.cols; j++ {
				x.data[i*x.cols+j] -= f * x.data[k*x.cols+j]
			}
		}
	}
	for k := n - 1; k >= 0; k-- {
		pivot := lu.At(k, k)
		for j := 0; j < x.cols; j++ {
			x.data[k*x.cols+j] /= pivot
		}
		for i := 0; i < k; i++ {
			f := lu.At(i, k)
			if f == 0 {
				continue
			}
			for j := 0; j < x.cols; j++ {
				x.data[i*x.cols+j] -= f * x.data[k*x.cols+j]
			}
		}
	}
	return x, nil
}

// CInverse returns the inverse of the complex square matrix a.
func CInverse(a *CMatrix) (*CMatrix, error) {
	return CSolve(a, CIdentity(a.rows))
}

// CMaxSingularValue returns the largest singular value of the complex matrix
// m, computed by power iteration on m^H m. For the small matrices used here
// (dimension < 50) this converges in a handful of iterations.
func CMaxSingularValue(m *CMatrix) float64 {
	if m.rows == 0 || m.cols == 0 {
		return 0
	}
	h := m.ConjT().Mul(m) // n×n Hermitian positive semidefinite
	n := h.rows
	// Deterministic start vector with nonzero projection on the dominant
	// eigenvector in all but adversarial cases; perturb on stagnation.
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(1+float64(i%3), float64(i%2))
	}
	normalize := func(v []complex128) float64 {
		var s float64
		for _, x := range v {
			s += real(x)*real(x) + imag(x)*imag(x)
		}
		nrm := math.Sqrt(s)
		if nrm == 0 {
			return 0
		}
		for i := range v {
			v[i] /= complex(nrm, 0)
		}
		return nrm
	}
	normalize(v)
	lambda := 0.0
	for iter := 0; iter < 500; iter++ {
		w := make([]complex128, n)
		for i := 0; i < n; i++ {
			var s complex128
			row := h.data[i*n : (i+1)*n]
			for j, hv := range row {
				s += hv * v[j]
			}
			w[i] = s
		}
		nl := normalize(w)
		v = w
		if nl == 0 {
			return 0
		}
		if math.Abs(nl-lambda) <= 1e-12*math.Max(1, nl) {
			lambda = nl
			break
		}
		lambda = nl
	}
	return math.Sqrt(lambda)
}
