package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization or solve encounters a matrix
// that is singular to working precision.
var ErrSingular = errors.New("mat: matrix is singular to working precision")

// LU holds an LU factorization with partial pivoting: P*A = L*U.
type LU struct {
	lu   *Matrix // combined L (unit lower) and U factors
	piv  []int   // row permutation
	sign int     // determinant sign of the permutation
}

// LUDecompose factors the square matrix a. The factorization succeeds even
// for singular matrices; Solve and Inverse report ErrSingular when a pivot
// vanishes.
func LUDecompose(a *Matrix) *LU {
	if a.rows != a.cols {
		panic(fmt.Sprintf("mat: LU of non-square %dx%d", a.rows, a.cols))
	}
	n := a.rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Partial pivoting: find the largest entry in column k at/below row k.
		p := k
		max := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.At(i, k)); a > max {
				max, p = a, i
			}
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu.data[p*n+j], lu.data[k*n+j] = lu.data[k*n+j], lu.data[p*n+j]
			}
			piv[p], piv[k] = piv[k], piv[p]
			sign = -sign
		}
		pivot := lu.At(k, k)
		if pivot == 0 {
			continue
		}
		for i := k + 1; i < n; i++ {
			f := lu.At(i, k) / pivot
			lu.Set(i, k, f)
			if f == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu.data[i*n+j] -= f * lu.data[k*n+j]
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	n := f.lu.rows
	for i := 0; i < n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Singular reports whether any pivot is (near) zero relative to the matrix scale.
func (f *LU) Singular() bool {
	n := f.lu.rows
	scale := f.lu.MaxAbs()
	if scale == 0 {
		return n > 0
	}
	for i := 0; i < n; i++ {
		if math.Abs(f.lu.At(i, i)) < 1e-13*scale {
			return true
		}
	}
	return false
}

// Solve solves A*X = B for X, where A is the factored matrix.
func (f *LU) Solve(b *Matrix) (*Matrix, error) {
	n := f.lu.rows
	if b.rows != n {
		panic(fmt.Sprintf("mat: LU.Solve row mismatch %d vs %d", b.rows, n))
	}
	if f.Singular() {
		return nil, ErrSingular
	}
	// Apply permutation to b.
	x := Zeros(n, b.cols)
	for i := 0; i < n; i++ {
		copy(x.data[i*x.cols:(i+1)*x.cols], b.data[f.piv[i]*b.cols:(f.piv[i]+1)*b.cols])
	}
	// Forward substitution with unit-lower L.
	for k := 0; k < n; k++ {
		for i := k + 1; i < n; i++ {
			l := f.lu.At(i, k)
			if l == 0 {
				continue
			}
			for j := 0; j < x.cols; j++ {
				x.data[i*x.cols+j] -= l * x.data[k*x.cols+j]
			}
		}
	}
	// Back substitution with U.
	for k := n - 1; k >= 0; k-- {
		ukk := f.lu.At(k, k)
		for j := 0; j < x.cols; j++ {
			x.data[k*x.cols+j] /= ukk
		}
		for i := 0; i < k; i++ {
			u := f.lu.At(i, k)
			if u == 0 {
				continue
			}
			for j := 0; j < x.cols; j++ {
				x.data[i*x.cols+j] -= u * x.data[k*x.cols+j]
			}
		}
	}
	return x, nil
}

// Solve solves a*x = b and returns x. a must be square.
func Solve(a, b *Matrix) (*Matrix, error) {
	return LUDecompose(a).Solve(b)
}

// Inverse returns a^-1.
func Inverse(a *Matrix) (*Matrix, error) {
	return Solve(a, Identity(a.rows))
}

// Det returns the determinant of a square matrix.
func Det(a *Matrix) float64 {
	return LUDecompose(a).Det()
}
