package mat

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randCMatrix(rng *rand.Rand, r, c int) *CMatrix {
	m := CZeros(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, complex(rng.NormFloat64(), rng.NormFloat64()))
		}
	}
	return m
}

func TestCSolveRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		a := randCMatrix(rng, n, n)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+complex(float64(n)+2, 0))
		}
		x := randCMatrix(rng, n, 2)
		b := a.Mul(x)
		got, err := CSolve(a, b)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < 2; j++ {
				if cmplx.Abs(got.At(i, j)-x.At(i, j)) > 1e-8 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCInverse(t *testing.T) {
	a := CNew(2, 2, []complex128{1 + 1i, 2, 0, 3 - 1i})
	inv, err := CInverse(a)
	if err != nil {
		t.Fatal(err)
	}
	prod := a.Mul(inv)
	id := CIdentity(2)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if cmplx.Abs(prod.At(i, j)-id.At(i, j)) > 1e-12 {
				t.Fatalf("A*A^-1 != I at (%d,%d): %v", i, j, prod.At(i, j))
			}
		}
	}
}

func TestCSolveSingular(t *testing.T) {
	a := CNew(2, 2, []complex128{1, 2, 2, 4})
	if _, err := CSolve(a, CIdentity(2)); err != ErrSingular {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
}

func TestCMaxSingularValueRealAgreement(t *testing.T) {
	// For a real matrix, the complex and real sigma_max must agree.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(5)
		c := 1 + rng.Intn(5)
		a := randMatrix(rng, r, c)
		sReal := MaxSingularValue(a)
		sCplx := CMaxSingularValue(ToComplex(a))
		return math.Abs(sReal-sCplx) <= 1e-6*(1+sReal)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCMaxSingularValueUnitary(t *testing.T) {
	// A diagonal unitary matrix has sigma_max 1.
	u := CZeros(3, 3)
	u.Set(0, 0, cmplx.Exp(0.3i))
	u.Set(1, 1, cmplx.Exp(1.2i))
	u.Set(2, 2, cmplx.Exp(-0.7i))
	if s := CMaxSingularValue(u); math.Abs(s-1) > 1e-9 {
		t.Fatalf("sigma_max(unitary) = %v, want 1", s)
	}
}

func TestConjTProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(4)
		k := 1 + rng.Intn(4)
		c := 1 + rng.Intn(4)
		a := randCMatrix(rng, r, k)
		b := randCMatrix(rng, k, c)
		lhs := a.Mul(b).ConjT()
		rhs := b.ConjT().Mul(a.ConjT())
		for i := 0; i < lhs.rows; i++ {
			for j := 0; j < lhs.cols; j++ {
				if cmplx.Abs(lhs.At(i, j)-rhs.At(i, j)) > 1e-10 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
