package mat

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
)

// ErrNoConvergence is returned when an iterative algorithm exceeds its
// iteration budget.
var ErrNoConvergence = errors.New("mat: iteration did not converge")

// Eigenvalues returns the eigenvalues of the square matrix a as complex
// numbers, in no particular order. It uses balancing, Householder reduction
// to upper Hessenberg form, and the Francis double-shift QR algorithm.
func Eigenvalues(a *Matrix) ([]complex128, error) {
	if a.rows != a.cols {
		panic(fmt.Sprintf("mat: Eigenvalues of non-square %dx%d", a.rows, a.cols))
	}
	n := a.rows
	if n == 0 {
		return nil, nil
	}
	h := a.Clone()
	balance(h)
	hessenberg(h)
	return hqr(h)
}

// SpectralRadius returns max |lambda_i| over the eigenvalues of a.
func SpectralRadius(a *Matrix) (float64, error) {
	eig, err := Eigenvalues(a)
	if err != nil {
		return 0, err
	}
	var r float64
	for _, l := range eig {
		if m := cmplx.Abs(l); m > r {
			r = m
		}
	}
	return r, nil
}

// balance applies the Parlett-Reinsch balancing procedure in place, scaling
// rows and columns by powers of two so that their norms are comparable.
// Balancing is a similarity transform, so eigenvalues are unchanged.
func balance(a *Matrix) {
	const radix = 2.0
	n := a.rows
	sqrdx := radix * radix
	for done := false; !done; {
		done = true
		for i := 0; i < n; i++ {
			var r, c float64
			for j := 0; j < n; j++ {
				if j != i {
					c += math.Abs(a.At(j, i))
					r += math.Abs(a.At(i, j))
				}
			}
			if c == 0 || r == 0 {
				continue
			}
			g := r / radix
			f := 1.0
			s := c + r
			for c < g {
				f *= radix
				c *= sqrdx
			}
			g = r * radix
			for c > g {
				f /= radix
				c /= sqrdx
			}
			if (c+r)/f < 0.95*s {
				done = false
				g = 1 / f
				for j := 0; j < n; j++ {
					a.Set(i, j, a.At(i, j)*g)
				}
				for j := 0; j < n; j++ {
					a.Set(j, i, a.At(j, i)*f)
				}
			}
		}
	}
}

// hessenberg reduces a to upper Hessenberg form in place using stabilized
// elementary similarity transformations (Gaussian elimination with pivoting).
func hessenberg(a *Matrix) {
	n := a.rows
	for m := 1; m < n-1; m++ {
		var x float64
		i := m
		for j := m; j < n; j++ {
			if math.Abs(a.At(j, m-1)) > math.Abs(x) {
				x = a.At(j, m-1)
				i = j
			}
		}
		if i != m {
			for j := m - 1; j < n; j++ {
				v := a.At(i, j)
				a.Set(i, j, a.At(m, j))
				a.Set(m, j, v)
			}
			for j := 0; j < n; j++ {
				v := a.At(j, i)
				a.Set(j, i, a.At(j, m))
				a.Set(j, m, v)
			}
		}
		if x != 0 {
			for i := m + 1; i < n; i++ {
				y := a.At(i, m-1)
				if y == 0 {
					continue
				}
				y /= x
				a.Set(i, m-1, y)
				for j := m; j < n; j++ {
					a.Set(i, j, a.At(i, j)-y*a.At(m, j))
				}
				for j := 0; j < n; j++ {
					a.Set(j, m, a.At(j, m)+y*a.At(j, i))
				}
			}
		}
	}
	// Zero the entries below the first subdiagonal (they hold multipliers).
	for i := 2; i < n; i++ {
		for j := 0; j < i-1; j++ {
			a.Set(i, j, 0)
		}
	}
}

// hqr finds all eigenvalues of an upper Hessenberg matrix using the Francis
// double-shift QR algorithm (Numerical Recipes' hqr).
func hqr(a *Matrix) ([]complex128, error) {
	n := a.rows
	wr := make([]float64, n)
	wi := make([]float64, n)

	var anorm float64
	for i := 0; i < n; i++ {
		for j := max(i-1, 0); j < n; j++ {
			anorm += math.Abs(a.At(i, j))
		}
	}
	nn := n - 1
	t := 0.0
	for nn >= 0 {
		its := 0
		var l int
		for {
			// Look for a single small subdiagonal element.
			for l = nn; l >= 1; l-- {
				s := math.Abs(a.At(l-1, l-1)) + math.Abs(a.At(l, l))
				if s == 0 {
					s = anorm
				}
				if math.Abs(a.At(l, l-1))+s == s {
					a.Set(l, l-1, 0)
					break
				}
			}
			x := a.At(nn, nn)
			if l == nn {
				// One root found.
				wr[nn] = x + t
				wi[nn] = 0
				nn--
				break
			}
			y := a.At(nn-1, nn-1)
			w := a.At(nn, nn-1) * a.At(nn-1, nn)
			if l == nn-1 {
				// Two roots found.
				p := 0.5 * (y - x)
				q := p*p + w
				z := math.Sqrt(math.Abs(q))
				x += t
				if q >= 0 {
					// Real pair.
					if p >= 0 {
						z = p + z
					} else {
						z = p - z
					}
					wr[nn-1] = x + z
					wr[nn] = wr[nn-1]
					if z != 0 {
						wr[nn] = x - w/z
					}
					wi[nn-1], wi[nn] = 0, 0
				} else {
					// Complex pair.
					wr[nn-1] = x + p
					wr[nn] = x + p
					wi[nn-1] = -z
					wi[nn] = z
				}
				nn -= 2
				break
			}
			// No roots found; continue iteration.
			if its == 60 {
				return nil, ErrNoConvergence
			}
			var p, q, r, z float64
			if its == 10 || its == 20 {
				// Exceptional shift.
				t += x
				for i := 0; i <= nn; i++ {
					a.Set(i, i, a.At(i, i)-x)
				}
				s := math.Abs(a.At(nn, nn-1)) + math.Abs(a.At(nn-1, nn-2))
				y = 0.75 * s
				x = y
				w = -0.4375 * s * s
			}
			its++
			var m int
			for m = nn - 2; m >= l; m-- {
				z = a.At(m, m)
				r = x - z
				s := y - z
				p = (r*s-w)/a.At(m+1, m) + a.At(m, m+1)
				q = a.At(m+1, m+1) - z - r - s
				r = a.At(m+2, m+1)
				s = math.Abs(p) + math.Abs(q) + math.Abs(r)
				p /= s
				q /= s
				r /= s
				if m == l {
					break
				}
				u := math.Abs(a.At(m, m-1)) * (math.Abs(q) + math.Abs(r))
				v := math.Abs(p) * (math.Abs(a.At(m-1, m-1)) + math.Abs(z) + math.Abs(a.At(m+1, m+1)))
				if u+v == v {
					break
				}
			}
			for i := m + 2; i <= nn; i++ {
				a.Set(i, i-2, 0)
				if i != m+2 {
					a.Set(i, i-3, 0)
				}
			}
			for k := m; k <= nn-1; k++ {
				if k != m {
					p = a.At(k, k-1)
					q = a.At(k+1, k-1)
					r = 0
					if k != nn-1 {
						r = a.At(k+2, k-1)
					}
					x = math.Abs(p) + math.Abs(q) + math.Abs(r)
					if x != 0 {
						p /= x
						q /= x
						r /= x
					}
				}
				s := math.Sqrt(p*p + q*q + r*r)
				if p < 0 {
					s = -s
				}
				if s == 0 {
					continue
				}
				if k == m {
					if l != m {
						a.Set(k, k-1, -a.At(k, k-1))
					}
				} else {
					a.Set(k, k-1, -s*x)
				}
				p += s
				x = p / s
				y := q / s
				z = r / s
				q /= p
				r /= p
				for j := k; j <= nn; j++ {
					p = a.At(k, j) + q*a.At(k+1, j)
					if k != nn-1 {
						p += r * a.At(k+2, j)
						a.Set(k+2, j, a.At(k+2, j)-p*z)
					}
					a.Set(k+1, j, a.At(k+1, j)-p*y)
					a.Set(k, j, a.At(k, j)-p*x)
				}
				mmin := nn
				if nn > k+3 {
					mmin = k + 3
				}
				for i := l; i <= mmin; i++ {
					p = x*a.At(i, k) + y*a.At(i, k+1)
					if k != nn-1 {
						p += z * a.At(i, k+2)
						a.Set(i, k+2, a.At(i, k+2)-p*r)
					}
					a.Set(i, k+1, a.At(i, k+1)-p*q)
					a.Set(i, k, a.At(i, k)-p)
				}
			}
		}
	}
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(wr[i], wi[i])
	}
	return out, nil
}
