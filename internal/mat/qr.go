package mat

import (
	"fmt"
	"math"
)

// QR holds a Householder QR factorization A = Q*R with A m×n, m >= n.
// The layout follows the classic JAMA decomposition: the strict upper
// triangle of qr holds R, the lower triangle (including diagonal) holds the
// Householder vectors, and rdiag holds R's diagonal.
type QR struct {
	qr    *Matrix
	rdiag []float64
	m, n  int
}

// QRDecompose factors a (m×n with m >= n) into Q*R using Householder
// reflections.
func QRDecompose(a *Matrix) *QR {
	m, n := a.rows, a.cols
	if m < n {
		panic(fmt.Sprintf("mat: QR requires rows >= cols, got %dx%d", m, n))
	}
	qr := a.Clone()
	rdiag := make([]float64, n)
	for k := 0; k < n; k++ {
		var nrm float64
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, qr.At(i, k))
		}
		if nrm != 0 {
			if qr.At(k, k) < 0 {
				nrm = -nrm
			}
			for i := k; i < m; i++ {
				qr.Set(i, k, qr.At(i, k)/nrm)
			}
			qr.Set(k, k, qr.At(k, k)+1)
			for j := k + 1; j < n; j++ {
				var s float64
				for i := k; i < m; i++ {
					s += qr.At(i, k) * qr.At(i, j)
				}
				s = -s / qr.At(k, k)
				for i := k; i < m; i++ {
					qr.Set(i, j, qr.At(i, j)+s*qr.At(i, k))
				}
			}
		}
		rdiag[k] = -nrm
	}
	return &QR{qr: qr, rdiag: rdiag, m: m, n: n}
}

// R returns the n×n upper-triangular factor.
func (f *QR) R() *Matrix {
	r := Zeros(f.n, f.n)
	for i := 0; i < f.n; i++ {
		r.Set(i, i, f.rdiag[i])
		for j := i + 1; j < f.n; j++ {
			r.Set(i, j, f.qr.At(i, j))
		}
	}
	return r
}

// FullRank reports whether all diagonal entries of R are nonzero relative to
// the matrix scale.
func (f *QR) FullRank() bool {
	scale := f.qr.MaxAbs()
	if scale == 0 {
		return f.n == 0
	}
	for k := 0; k < f.n; k++ {
		if math.Abs(f.rdiag[k]) < 1e-12*scale {
			return false
		}
	}
	return true
}

// SolveLS solves the least-squares problem min ||A*x - b||_2 using the
// factorization. b must have A.Rows() rows; the result has A.Cols() rows.
// It returns ErrSingular if A is rank deficient.
func (f *QR) SolveLS(b *Matrix) (*Matrix, error) {
	if b.rows != f.m {
		panic(fmt.Sprintf("mat: QR.SolveLS row mismatch %d vs %d", b.rows, f.m))
	}
	if !f.FullRank() {
		return nil, ErrSingular
	}
	x := b.Clone()
	// Apply Q^T to b.
	for k := 0; k < f.n; k++ {
		head := f.qr.At(k, k)
		if head == 0 {
			continue
		}
		for j := 0; j < x.cols; j++ {
			var s float64
			for i := k; i < f.m; i++ {
				s += f.qr.At(i, k) * x.At(i, j)
			}
			s = -s / head
			for i := k; i < f.m; i++ {
				x.Set(i, j, x.At(i, j)+s*f.qr.At(i, k))
			}
		}
	}
	// Back-substitute R*x = (Q^T b)[0:n].
	out := x.Slice(0, f.n, 0, x.cols)
	for k := f.n - 1; k >= 0; k-- {
		for j := 0; j < out.cols; j++ {
			out.Set(k, j, out.At(k, j)/f.rdiag[k])
		}
		for i := 0; i < k; i++ {
			rik := f.qr.At(i, k)
			if rik == 0 {
				continue
			}
			for j := 0; j < out.cols; j++ {
				out.Set(i, j, out.At(i, j)-rik*out.At(k, j))
			}
		}
	}
	return out, nil
}

// LeastSquares solves min ||A*x - b||_2 for x.
//
// When A is rank-deficient it falls back to a ridge-regularized normal
// equation solve (Tikhonov with a tiny lambda), which is the behaviour the
// system-identification layer wants for nearly collinear regressors.
func LeastSquares(a, b *Matrix) (*Matrix, error) {
	if x, err := QRDecompose(a).SolveLS(b); err == nil {
		return x, nil
	}
	// Ridge fallback: (A^T A + λI) x = A^T b.
	at := a.T()
	ata := at.Mul(a)
	lambda := 1e-8 * (1 + ata.MaxAbs())
	for i := 0; i < ata.rows; i++ {
		ata.Set(i, i, ata.At(i, i)+lambda)
	}
	return Solve(ata, at.Mul(b))
}
