package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := Zeros(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

func TestNewPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched data length")
		}
	}()
	New(2, 2, []float64{1, 2, 3})
}

func TestIdentityAndDiag(t *testing.T) {
	id := Identity(3)
	d := Diag([]float64{1, 1, 1})
	if !id.Equal(d, 0) {
		t.Fatalf("Identity(3) != Diag(ones):\n%v\n%v", id, d)
	}
	if id.Trace() != 3 {
		t.Fatalf("trace of I3 = %v, want 3", id.Trace())
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randMatrix(rng, 4, 4)
	if !a.Mul(Identity(4)).Equal(a, 1e-14) {
		t.Fatal("A*I != A")
	}
	if !Identity(4).Mul(a).Equal(a, 1e-14) {
		t.Fatal("I*A != A")
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if got := a.Mul(b); !got.Equal(want, 0) {
		t.Fatalf("got\n%v want\n%v", got, want)
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(6)
		c := 1 + rng.Intn(6)
		a := randMatrix(rng, r, c)
		return a.T().T().Equal(a, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulTransposeProperty(t *testing.T) {
	// (A*B)^T == B^T * A^T
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(5)
		k := 1 + rng.Intn(5)
		c := 1 + rng.Intn(5)
		a := randMatrix(rng, r, k)
		b := randMatrix(rng, k, c)
		return a.Mul(b).T().Equal(b.T().Mul(a.T()), 1e-10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddSubScaleProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(5)
		c := 1 + rng.Intn(5)
		a := randMatrix(rng, r, c)
		b := randMatrix(rng, r, c)
		// (a+b)-b == a, and 2a == a+a
		if !a.Add(b).Sub(b).Equal(a, 1e-12) {
			return false
		}
		return a.Scale(2).Equal(a.Add(a), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randMatrix(rng, 5, 3)
	v := []float64{1, -2, 0.5}
	got := a.MulVec(v)
	want := a.Mul(ColVector(v))
	for i, g := range got {
		if math.Abs(g-want.At(i, 0)) > 1e-14 {
			t.Fatalf("MulVec mismatch at %d: %v vs %v", i, g, want.At(i, 0))
		}
	}
}

func TestSliceAndSetSlice(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	s := a.Slice(1, 3, 0, 2)
	want := FromRows([][]float64{{4, 5}, {7, 8}})
	if !s.Equal(want, 0) {
		t.Fatalf("Slice got\n%v want\n%v", s, want)
	}
	b := Zeros(3, 3)
	b.SetSlice(1, 1, FromRows([][]float64{{1, 2}, {3, 4}}))
	if b.At(1, 1) != 1 || b.At(2, 2) != 4 || b.At(0, 0) != 0 {
		t.Fatalf("SetSlice wrong result:\n%v", b)
	}
}

func TestStackAndBlockDiag(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{3, 4}})
	h := a.HStack(b)
	if h.Rows() != 1 || h.Cols() != 4 || h.At(0, 2) != 3 {
		t.Fatalf("HStack wrong: %v", h)
	}
	v := a.VStack(b)
	if v.Rows() != 2 || v.Cols() != 2 || v.At(1, 0) != 3 {
		t.Fatalf("VStack wrong: %v", v)
	}
	bd := BlockDiag(Identity(2), FromRows([][]float64{{5}}))
	if bd.Rows() != 3 || bd.At(2, 2) != 5 || bd.At(0, 2) != 0 {
		t.Fatalf("BlockDiag wrong: %v", bd)
	}
}

func TestLUSolveRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		a := randMatrix(rng, n, n)
		// Diagonal dominance guarantees nonsingularity.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		x := randMatrix(rng, n, 2)
		b := a.Mul(x)
		got, err := Solve(a, b)
		if err != nil {
			return false
		}
		return got.Equal(x, 1e-8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInverse(t *testing.T) {
	a := FromRows([][]float64{{4, 7}, {2, 6}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Mul(inv).Equal(Identity(2), 1e-12) {
		t.Fatalf("A*A^-1 != I:\n%v", a.Mul(inv))
	}
}

func TestSingularDetection(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Inverse(a); err != ErrSingular {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
	if d := Det(a); math.Abs(d) > 1e-12 {
		t.Fatalf("det of singular matrix = %v, want 0", d)
	}
}

func TestDetKnown(t *testing.T) {
	a := FromRows([][]float64{{2, 0, 0}, {0, 3, 0}, {0, 0, 4}})
	if d := Det(a); math.Abs(d-24) > 1e-12 {
		t.Fatalf("det = %v, want 24", d)
	}
	// Permutation flips sign.
	p := FromRows([][]float64{{0, 1}, {1, 0}})
	if d := Det(p); math.Abs(d+1) > 1e-12 {
		t.Fatalf("det of swap = %v, want -1", d)
	}
}

func TestQRLeastSquaresExact(t *testing.T) {
	// Overdetermined but consistent system must be solved exactly.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		m := n + 1 + rng.Intn(5)
		a := randMatrix(rng, m, n)
		x := randMatrix(rng, n, 1)
		b := a.Mul(x)
		got, err := LeastSquares(a, b)
		if err != nil {
			return false
		}
		return got.Equal(x, 1e-7)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQRResidualOrthogonality(t *testing.T) {
	// Least-squares residual must be orthogonal to the column space: A^T r = 0.
	rng := rand.New(rand.NewSource(42))
	a := randMatrix(rng, 10, 3)
	b := randMatrix(rng, 10, 1)
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	r := b.Sub(a.Mul(x))
	atr := a.T().Mul(r)
	if atr.MaxAbs() > 1e-10 {
		t.Fatalf("A^T r = %v, want ~0", atr)
	}
}

func TestQRFactorReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randMatrix(rng, 6, 4)
	r := QRDecompose(a).R()
	// R must be upper triangular with the same column norms profile as A:
	// verify A^T A == R^T R (Q orthogonal).
	lhs := a.T().Mul(a)
	rhs := r.T().Mul(r)
	if !lhs.Equal(rhs, 1e-10) {
		t.Fatalf("A^T A != R^T R:\n%v\n%v", lhs, rhs)
	}
	for i := 1; i < r.Rows(); i++ {
		for j := 0; j < i; j++ {
			if r.At(i, j) != 0 {
				t.Fatalf("R not upper triangular at (%d,%d)", i, j)
			}
		}
	}
}

func TestEigenvaluesDiagonal(t *testing.T) {
	a := Diag([]float64{3, -1, 0.5})
	eig, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	found := map[float64]bool{}
	for _, l := range eig {
		if math.Abs(imag(l)) > 1e-12 {
			t.Fatalf("diagonal matrix has complex eigenvalue %v", l)
		}
		found[math.Round(real(l)*1000)/1000] = true
	}
	for _, want := range []float64{3, -1, 0.5} {
		if !found[want] {
			t.Fatalf("eigenvalue %v not found in %v", want, eig)
		}
	}
}

func TestEigenvaluesComplexPair(t *testing.T) {
	// Rotation-like matrix: eigenvalues 1 ± 2i.
	a := FromRows([][]float64{{1, -2}, {2, 1}})
	eig, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	okPos, okNeg := false, false
	for _, l := range eig {
		if math.Abs(real(l)-1) < 1e-9 && math.Abs(imag(l)-2) < 1e-9 {
			okPos = true
		}
		if math.Abs(real(l)-1) < 1e-9 && math.Abs(imag(l)+2) < 1e-9 {
			okNeg = true
		}
	}
	if !okPos || !okNeg {
		t.Fatalf("eigenvalues %v, want 1±2i", eig)
	}
}

func TestEigenvalueTraceDetInvariants(t *testing.T) {
	// Sum of eigenvalues == trace; product == det.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		a := randMatrix(rng, n, n)
		eig, err := Eigenvalues(a)
		if err != nil {
			return false
		}
		var sum complex128
		prod := complex(1, 0)
		for _, l := range eig {
			sum += l
			prod *= l
		}
		if math.Abs(real(sum)-a.Trace()) > 1e-6*(1+math.Abs(a.Trace())) {
			return false
		}
		d := Det(a)
		return math.Abs(real(prod)-d) <= 1e-5*(1+math.Abs(d))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSpectralRadius(t *testing.T) {
	a := Diag([]float64{0.5, -0.9, 0.2})
	r, err := SpectralRadius(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-0.9) > 1e-9 {
		t.Fatalf("spectral radius = %v, want 0.9", r)
	}
}

func TestSingularValuesKnown(t *testing.T) {
	// diag(3,2,1) has singular values 3,2,1.
	sv := SingularValues(Diag([]float64{1, 3, 2}))
	want := []float64{3, 2, 1}
	for i, w := range want {
		if math.Abs(sv[i]-w) > 1e-9 {
			t.Fatalf("sv = %v, want %v", sv, want)
		}
	}
}

func TestSingularValuesOrthogonalInvariance(t *testing.T) {
	// Frobenius norm equals sqrt(sum of squared singular values).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(5)
		c := 1 + rng.Intn(5)
		a := randMatrix(rng, r, c)
		sv := SingularValues(a)
		var s float64
		for _, v := range sv {
			s += v * v
		}
		return math.Abs(math.Sqrt(s)-a.FrobeniusNorm()) < 1e-8*(1+a.FrobeniusNorm())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaxSingularValueSubmultiplicative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		a := randMatrix(rng, n, n)
		b := randMatrix(rng, n, n)
		return MaxSingularValue(a.Mul(b)) <= MaxSingularValue(a)*MaxSingularValue(b)+1e-8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTallAndWideSVDAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randMatrix(rng, 6, 3)
	svA := SingularValues(a)
	svAT := SingularValues(a.T())
	for i := range svA {
		if math.Abs(svA[i]-svAT[i]) > 1e-9 {
			t.Fatalf("SVD of A and A^T differ: %v vs %v", svA, svAT)
		}
	}
}
