// Package mat provides the dense linear algebra kernels used throughout the
// Yukta library: real and complex matrices, LU and QR factorizations,
// eigenvalue computation via the shifted Hessenberg QR algorithm, one-sided
// Jacobi SVD, and the associated solves and norms.
//
// The package is deliberately small and self-contained (stdlib only). The
// matrices involved in controller synthesis are tiny (tens of rows), so the
// implementations favour numerical robustness and clarity over blocking or
// cache tuning.
package mat

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense, row-major matrix of float64 values.
//
// The zero value is an empty (0×0) matrix. Use New, Zeros, Identity or
// FromRows to construct matrices with content.
type Matrix struct {
	rows, cols int
	data       []float64
}

// New returns an r×c matrix backed by data, which must have length r*c and is
// used directly (not copied). It panics on size mismatch.
func New(r, c int, data []float64) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimensions %dx%d", r, c))
	}
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: data length %d does not match %dx%d", len(data), r, c))
	}
	return &Matrix{rows: r, cols: c, data: data}
}

// Zeros returns a new r×c matrix of zeros.
func Zeros(r, c int) *Matrix {
	return New(r, c, make([]float64, r*c))
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := Zeros(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Diag returns a square diagonal matrix with the given diagonal entries.
func Diag(d []float64) *Matrix {
	m := Zeros(len(d), len(d))
	for i, v := range d {
		m.Set(i, i, v)
	}
	return m
}

// FromRows builds a matrix from row slices. All rows must have equal length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return Zeros(0, 0)
	}
	c := len(rows[0])
	m := Zeros(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("mat: ragged rows: row %d has %d entries, want %d", i, len(row), c))
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m
}

// ColVector returns a len(v)×1 column matrix holding a copy of v.
func ColVector(v []float64) *Matrix {
	m := Zeros(len(v), 1)
	copy(m.data, v)
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	d := make([]float64, len(m.data))
	copy(d, m.data)
	return New(m.rows, m.cols, d)
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range %d", i, m.rows))
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: col %d out of range %d", j, m.cols))
	}
	out := make([]float64, m.rows)
	for i := range out {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := Zeros(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Add returns m + b.
func (m *Matrix) Add(b *Matrix) *Matrix {
	m.sameShape(b, "Add")
	out := m.Clone()
	for i := range out.data {
		out.data[i] += b.data[i]
	}
	return out
}

// Sub returns m - b.
func (m *Matrix) Sub(b *Matrix) *Matrix {
	m.sameShape(b, "Sub")
	out := m.Clone()
	for i := range out.data {
		out.data[i] -= b.data[i]
	}
	return out
}

// Scale returns s*m.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

// Mul returns the matrix product m*b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul dimension mismatch %dx%d * %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := Zeros(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		mrow := m.data[i*m.cols : (i+1)*m.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for k, mv := range mrow {
			if mv == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += mv * bv
			}
		}
	}
	return out
}

// MulVec returns m*v as a new slice of length m.Rows().
func (m *Matrix) MulVec(v []float64) []float64 {
	return m.MulVecTo(make([]float64, m.rows), v)
}

// MulVecTo computes m*v into dst, which must not alias v, and returns it.
// dst is grown when its capacity is insufficient; passing a reusable scratch
// slice makes repeated products allocation-free — the 500 ms control loop
// steps controller state machines through this path.
func (m *Matrix) MulVecTo(dst, v []float64) []float64 {
	if m.cols != len(v) {
		panic(fmt.Sprintf("mat: MulVec dimension mismatch %dx%d * %d", m.rows, m.cols, len(v)))
	}
	if cap(dst) < m.rows {
		dst = make([]float64, m.rows)
	}
	dst = dst[:m.rows]
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, rv := range row {
			s += rv * v[j]
		}
		dst[i] = s
	}
	return dst
}

func (m *Matrix) sameShape(b *Matrix, op string) {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("mat: %s shape mismatch %dx%d vs %dx%d", op, m.rows, m.cols, b.rows, b.cols))
	}
}

// Slice returns a copy of the submatrix with rows [r0,r1) and columns [c0,c1).
func (m *Matrix) Slice(r0, r1, c0, c1 int) *Matrix {
	if r0 < 0 || r1 > m.rows || c0 < 0 || c1 > m.cols || r0 > r1 || c0 > c1 {
		panic(fmt.Sprintf("mat: Slice [%d:%d,%d:%d] out of range %dx%d", r0, r1, c0, c1, m.rows, m.cols))
	}
	out := Zeros(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		copy(out.data[(i-r0)*out.cols:(i-r0+1)*out.cols], m.data[i*m.cols+c0:i*m.cols+c1])
	}
	return out
}

// SetSlice copies src into m starting at row r0, column c0.
func (m *Matrix) SetSlice(r0, c0 int, src *Matrix) {
	if r0 < 0 || c0 < 0 || r0+src.rows > m.rows || c0+src.cols > m.cols {
		panic(fmt.Sprintf("mat: SetSlice %dx%d at (%d,%d) out of range %dx%d",
			src.rows, src.cols, r0, c0, m.rows, m.cols))
	}
	for i := 0; i < src.rows; i++ {
		copy(m.data[(r0+i)*m.cols+c0:(r0+i)*m.cols+c0+src.cols], src.data[i*src.cols:(i+1)*src.cols])
	}
}

// HStack returns [m | b] (horizontal concatenation).
func (m *Matrix) HStack(b *Matrix) *Matrix {
	if m.rows != b.rows {
		panic(fmt.Sprintf("mat: HStack row mismatch %d vs %d", m.rows, b.rows))
	}
	out := Zeros(m.rows, m.cols+b.cols)
	out.SetSlice(0, 0, m)
	out.SetSlice(0, m.cols, b)
	return out
}

// VStack returns [m; b] (vertical concatenation).
func (m *Matrix) VStack(b *Matrix) *Matrix {
	if m.cols != b.cols {
		panic(fmt.Sprintf("mat: VStack col mismatch %d vs %d", m.cols, b.cols))
	}
	out := Zeros(m.rows+b.rows, m.cols)
	out.SetSlice(0, 0, m)
	out.SetSlice(m.rows, 0, b)
	return out
}

// BlockDiag returns the block-diagonal matrix diag(blocks...).
func BlockDiag(blocks ...*Matrix) *Matrix {
	var r, c int
	for _, b := range blocks {
		r += b.rows
		c += b.cols
	}
	out := Zeros(r, c)
	r, c = 0, 0
	for _, b := range blocks {
		out.SetSlice(r, c, b)
		r += b.rows
		c += b.cols
	}
	return out
}

// MaxAbs returns the largest absolute entry of m (0 for an empty matrix).
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// FrobeniusNorm returns the Frobenius norm sqrt(sum m_ij^2).
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Trace returns the sum of diagonal entries of a square matrix.
func (m *Matrix) Trace() float64 {
	if m.rows != m.cols {
		panic(fmt.Sprintf("mat: Trace of non-square %dx%d", m.rows, m.cols))
	}
	var s float64
	for i := 0; i < m.rows; i++ {
		s += m.data[i*m.cols+i]
	}
	return s
}

// Equal reports whether m and b have the same shape and all entries differ by
// at most tol.
func (m *Matrix) Equal(b *Matrix, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i := range m.data {
		if math.Abs(m.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging and logs.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		b.WriteByte('[')
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "% .5g", m.At(i, j))
		}
		b.WriteString("]\n")
	}
	return b.String()
}
