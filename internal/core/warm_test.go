package core

import (
	"sync"
	"testing"

	"yukta/internal/robust"
)

// TestWarmCachesConcurrentSingleFlight drives concurrent controller synthesis
// through WarmCaches and the validated-cache accessors at the same time, on a
// knob set no other test touches (so the cache entries are cold). Under
// -race this exercises the single-flight caches; functionally it checks that
// every caller gets the same controller instance — the synthesis ran once.
func TestWarmCachesConcurrentSingleFlight(t *testing.T) {
	p := testPlatform(t)
	hp := DefaultHWParams()
	hp.PerfBoundFrac *= 1.5
	hp.CriticalBoundFrac *= 1.5
	op := DefaultOSParams()
	op.BoundFrac *= 1.5

	const g = 4
	var wg sync.WaitGroup
	hws := make([]*robust.Controller, g)
	oss := make([]*robust.Controller, g)
	errs := make([]error, 2*g)
	for i := 0; i < g; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			errs[i] = p.WarmCaches([]HWParams{hp}, []OSParams{op}, false)
		}(i)
		go func(i int) {
			defer wg.Done()
			hw, err := p.HWControllerValidated(hp)
			if err != nil {
				errs[g+i] = err
				return
			}
			os, err := p.OSControllerValidated(op)
			if err != nil {
				errs[g+i] = err
				return
			}
			hws[i], oss[i] = hw, os
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
	for i := 1; i < g; i++ {
		if hws[i] != hws[0] {
			t.Errorf("HW controller synthesized more than once: %p vs %p", hws[i], hws[0])
		}
		if oss[i] != oss[0] {
			t.Errorf("OS controller synthesized more than once: %p vs %p", oss[i], oss[0])
		}
	}
	// The warmed entries must be the ones the accessors hand out.
	hw, err := p.HWControllerValidated(hp)
	if err != nil || hw != hws[0] {
		t.Errorf("post-warm accessor returned %p (err %v), want cached %p", hw, err, hws[0])
	}
}

// TestLQGControllerCaches checks the single-flight LQG accessors return
// stable instances.
func TestLQGControllerCaches(t *testing.T) {
	p := testPlatform(t)
	m1, err := p.MonolithicLQGController()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := p.MonolithicLQGController()
	if err != nil || m1 != m2 {
		t.Errorf("monolithic LQG cache returned distinct instances (%p, %p, err %v)", m1, m2, err)
	}
	h1, o1, err := p.DecoupledLQGControllers()
	if err != nil {
		t.Fatal(err)
	}
	h2, o2, err := p.DecoupledLQGControllers()
	if err != nil || h1 != h2 || o1 != o2 {
		t.Errorf("decoupled LQG cache returned distinct instances")
	}
}
