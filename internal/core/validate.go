package core

import (
	"fmt"
	"math"
	"time"

	"yukta/internal/heuristic"
	"yukta/internal/robust"
	"yukta/internal/workload"
)

// This file implements the "Validate" stage of the Yukta design process
// (paper Figure 3). A synthesized controller carries a robustness
// certificate against the *declared* uncertainty; validation exercises it on
// the real system (here: the simulated board) before deployment, using only
// training applications. Because the μ certificate admits a range of
// aggressiveness levels, the stage evaluates the candidate ladder end to end
// — each candidate runs with its optimizer in the deployment pairing — and
// keeps the design with the best measured E×D among those that do not fight
// the firmware. This mirrors how the paper's designers picked their final
// parameters "based on a combination of suggestions from theory, system
// insight, and actual experimentation" (§II-B).

// validationPenalties bounds the redesign ladder.
var validationPenalties = []float64{1, 2, 4, 8, 16}

// maxValidationEmergencies is the firmware-intervention budget during a
// validation run.
const maxValidationEmergencies = 4

// hwValidationScore deploys the candidate hardware controller with its E×D
// optimizer under the HMP-style heuristic scheduler (the placement regime
// with the steepest plant gains) on a training application, and returns the
// measured E×D and the firmware emergency count.
func (p *Platform) hwValidationScore(ctl *robust.Controller) (exd float64, emergencies int, err error) {
	rt, err := p.NewHWRuntime(ctl)
	if err != nil {
		return 0, 0, err
	}
	opt, err := p.hwOptimizer()
	if err != nil {
		return 0, 0, err
	}
	hw := &hwSSVSession{rt: rt, opt: opt, base: p.Cfg.BasePowerW}
	sch := Scheme{Name: "validation", New: func() (Session, error) {
		return &splitSession{hw: hw, os: &heurOSAdapter{os: &heuristic.CoordinatedOS{}}}, nil
	}}
	w := workload.MustLookup("swaptions") // training set only
	res, err := Run(p.Cfg, sch, w, RunOptions{MaxTime: 600 * time.Second})
	if err != nil {
		return 0, 0, err
	}
	if !res.Completed {
		return math.Inf(1), res.EmergencyEvents, nil
	}
	return res.ExD, res.EmergencyEvents, nil
}

// SynthesizeHWSSVValidated runs the full design flow for the hardware
// controller: synthesize candidates along the penalty ladder, validate each
// on the (simulated) board, and keep the best-measured design.
func (p *Platform) SynthesizeHWSSVValidated(hp HWParams) (*robust.Controller, error) {
	var best *robust.Controller
	bestScore := math.Inf(1)
	var fallback *robust.Controller
	for _, pen := range validationPenalties {
		ctl, err := p.synthesizeHWSSVAt(hp, pen)
		if err != nil {
			continue
		}
		fallback = ctl
		exd, emg, err := p.hwValidationScore(ctl)
		if err != nil {
			continue
		}
		if emg > maxValidationEmergencies {
			continue
		}
		if exd < bestScore {
			best, bestScore = ctl, exd
		}
	}
	if best == nil {
		if fallback == nil {
			return nil, fmt.Errorf("core: HW SSV validated synthesis failed at every penalty")
		}
		return fallback, nil
	}
	return best, nil
}

// osValidationScore deploys the candidate software controller in the full
// two-layer SSV stack (with the already-validated hardware controller) on a
// training application and returns measured E×D and emergencies.
func (p *Platform) osValidationScore(ctl, hwCtl *robust.Controller) (exd float64, emergencies int, err error) {
	hwRT, err := p.NewHWRuntime(hwCtl)
	if err != nil {
		return 0, 0, err
	}
	hwOpt, err := p.hwOptimizer()
	if err != nil {
		return 0, 0, err
	}
	osRT, err := p.NewOSRuntime(ctl)
	if err != nil {
		return 0, 0, err
	}
	osOpt, err := p.osOptimizer()
	if err != nil {
		return 0, 0, err
	}
	sch := Scheme{Name: "validation", New: func() (Session, error) {
		return &splitSession{
			hw: &hwSSVSession{rt: hwRT, opt: hwOpt, base: p.Cfg.BasePowerW},
			os: &osSSVSession{rt: osRT, opt: osOpt, base: p.Cfg.BasePowerW},
		}, nil
	}}
	w := workload.MustLookup("vips") // training set only
	res, err := Run(p.Cfg, sch, w, RunOptions{MaxTime: 600 * time.Second})
	if err != nil {
		return 0, 0, err
	}
	if !res.Completed {
		return math.Inf(1), res.EmergencyEvents, nil
	}
	return res.ExD, res.EmergencyEvents, nil
}

// SynthesizeOSSSVValidated runs the full design flow for the software
// controller against an already-validated hardware controller.
func (p *Platform) SynthesizeOSSSVValidated(op OSParams, hwCtl *robust.Controller) (*robust.Controller, error) {
	var best *robust.Controller
	bestScore := math.Inf(1)
	var fallback *robust.Controller
	for _, pen := range validationPenalties {
		ctl, err := p.synthesizeOSSSVAt(op, pen)
		if err != nil {
			continue
		}
		fallback = ctl
		exd, emg, err := p.osValidationScore(ctl, hwCtl)
		if err != nil {
			continue
		}
		if emg > maxValidationEmergencies {
			continue
		}
		if exd < bestScore {
			best, bestScore = ctl, exd
		}
	}
	if best == nil {
		if fallback == nil {
			return nil, fmt.Errorf("core: OS SSV validated synthesis failed at every penalty")
		}
		return fallback, nil
	}
	return best, nil
}
