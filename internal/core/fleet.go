package core

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"yukta/internal/board"
	"yukta/internal/fault"
	"yukta/internal/fleet"
	"yukta/internal/obs"
	"yukta/internal/pool"
	"yukta/internal/workload"
)

// FleetMember is one board's assignment in a fleet run: the control scheme
// it runs and the workload it executes. The scheme is used unchanged — the
// fleet layer never reaches into a board's controllers; it only sets the
// board's power cap.
type FleetMember struct {
	// Scheme is the per-board control scheme (any solo scheme works,
	// including the supervised wrapper).
	Scheme Scheme
	// Workload is the board's workload. Each member needs its own instance
	// (clone mixes before sharing them across members).
	Workload workload.Workload
}

// FleetOptions bounds a fleet run.
type FleetOptions struct {
	// Budget is the shared fleet power budget and per-board bounds. FleetRun
	// validates feasibility: TotalW must cover MinW for every board.
	Budget fleet.Budget
	// Policy divides the budget across boards at reallocation points. It is
	// invoked from the coordination goroutine only, so stateful policies
	// need no locking. Required for flat runs (Topology nil); ignored for
	// hierarchical runs, which use TreePolicy.
	Policy fleet.Policy
	// Topology, when non-nil, runs the fleet hierarchically: a tree of
	// coordinators each re-dividing its incoming budget over its children
	// (leaves over their boards) with its own policy instance, higher
	// levels on slower cadences. Topology.Boards must equal the member
	// count. A one-level topology is proven byte-identical to the flat
	// path (results, fault streams, fleet and board traces).
	Topology *fleet.Topology
	// TreePolicy constructs one budget policy per tree node. Required when
	// Topology is set (stateful policies must not be shared across nodes).
	TreePolicy func() fleet.Policy
	// CadenceFactor is the per-level reallocation slowdown for hierarchical
	// runs: a node at height h reallocates every ReallocEvery ×
	// CadenceFactor^(h−1) intervals. 0 selects
	// fleet.DefaultCadenceFactor; 1 puts every level on the leaf cadence.
	CadenceFactor int
	// ReallocEvery is the reallocation period in control intervals (the
	// fleet layer runs slower than the per-board layers, as the OS layer
	// runs slower than the HW layer in the paper). Default 10 (5 s at the
	// default interval).
	ReallocEvery int
	// MaxTime aborts boards that fail to complete. Default 1200 s.
	MaxTime time.Duration
	// Interval is the per-board control interval. Default 500 ms.
	Interval time.Duration
	// Faults, when enabled, injects each board's own fault stream, derived
	// from (Seed, scheme, app, board index) — board 0's stream is identical
	// to the solo run of the same (scheme, app) for common-random-numbers
	// pairing, and every other board draws an independent stream.
	Faults fault.Plan
	// Parallelism is the worker count for per-interval board stepping (the
	// PR-1 pool, fanned out inside each lockstep interval). 0 or 1 steps
	// boards sequentially. Results and traces are byte-identical at any
	// setting.
	Parallelism int
	// Trace, when non-nil, receives one obs.FleetRecord per control
	// interval from the coordination layer.
	Trace *obs.FleetRecorder
	// BoardTraces, when non-nil, must have one entry per member; non-nil
	// entries receive that board's per-interval obs.Records, exactly as a
	// solo run's RunOptions.Trace would.
	BoardTraces []*obs.Recorder
	// Metrics, when non-nil, aggregates the run into the registry (pool
	// occupancy, per-scheme step latency, run/fault counters).
	Metrics *obs.Registry
	// Engine selects the simulation core ("" = EngineEvent). Results, the
	// fleet trace and every per-board trace are byte-identical across
	// engines; EngineLockstep remains the executable reference.
	Engine Engine
}

// FleetBoardResult is one board's outcome within a fleet run.
type FleetBoardResult struct {
	// Board is the member index.
	Board int
	// App and Scheme identify the member's workload and control scheme.
	App, Scheme string
	// TimeS is the board's completion time in seconds (or the abort time
	// when Completed is false); EnergyJ its energy; ExD their product.
	TimeS   float64
	EnergyJ float64
	ExD     float64
	// Completed reports whether the workload finished within MaxTime.
	Completed bool
	// BudgetEvents counts the board's budget-governor engagements.
	BudgetEvents int
	// Faults counts the faults injected into this board's run.
	Faults fault.Stats
}

// FleetResult records one fleet run.
type FleetResult struct {
	// Policy names the budget policy that ran.
	Policy string
	// BudgetW is the fleet power budget in watts.
	BudgetW float64
	// Boards holds the per-board outcomes, in member order.
	Boards []FleetBoardResult

	// MakespanS is the fleet completion time (the slowest board), in
	// seconds; EnergyJ the total energy across boards; EDP their product —
	// the fleet-level analogue of the per-run E×D objective.
	MakespanS float64
	EnergyJ   float64
	EDP       float64
	// GeoExD is the geometric mean of the per-board E×D products (the
	// cross-board analogue of the sweeps' geometric-mean degradation).
	GeoExD float64

	// Reallocations counts reallocation instants (coordinator invocations);
	// Steps counts lockstep control intervals executed.
	Reallocations int
	Steps         int

	// Topology is the coordinator tree spec of a hierarchical run ("" for
	// flat); Nodes and Depth its coordinator count and level count.
	Topology string
	Nodes    int
	Depth    int
	// NodeReallocations counts per-node policy invocations across the tree
	// (0 for flat runs). Higher levels fire less often, so it grows slower
	// than Reallocations × Nodes.
	NodeReallocations int
}

// fleetBoard is the per-board runtime state of a fleet run. Workers touch
// only their own board during an interval (or an event batch), so the
// struct needs no locking.
type fleetBoard struct {
	idx  int
	b    *board.Board
	sess Session
	w    workload.Workload
	inj  *fault.Injector

	sens board.Sensors
	done bool
	// capZeroed records that the coordinator has already actuated the
	// board's post-completion zero cap, so later reallocations skip the
	// write instead of rewriting every finished board every period.
	capZeroed bool

	// Per-board observation state (mirrors the solo runner's).
	hp         healthProbe
	fp         flightProber
	prevFaults fault.Stats
	lat        *obs.Histogram
	trace      *obs.Recorder

	// Event-engine batch state: the epoch the board last woke in, how many
	// intervals it executed before finishing or hitting the barrier, and —
	// when a fleet trace is attached — the per-interval samples the
	// coordinator folds into FleetRecords at the flush (the board runs an
	// epoch ahead of the fleet trace, so the per-interval view must be
	// latched, not re-read from live board state).
	epochStart int
	batchLen   int
	wokeEpoch  int
	samples    []fleetSample
}

// fleetSample is one live board-interval's contribution to the fleet trace,
// latched during an event-engine batch.
type fleetSample struct {
	bigW, littleW   float64
	bips            float64
	budgetThrottled bool
}

// FleetRun simulates len(members) boards advancing in lockstep under the
// shared power budget: every ReallocEvery intervals the policy re-divides
// the budget and each board's cap is actuated via board.SetPowerCapW; every
// interval the boards step concurrently on the worker pool, each running its
// own scheme unchanged. The run ends when every workload completes or
// MaxTime elapses.
//
// Determinism contract: results, per-board traces and the fleet trace are
// byte-identical at any Parallelism — boards own disjoint state, workers
// write only their own index, and the policy runs on the coordination
// goroutine between interval barriers.
func FleetRun(cfg board.Config, members []FleetMember, opt FleetOptions) (*FleetResult, error) {
	n := len(members)
	if n == 0 {
		return nil, fmt.Errorf("core: fleet run needs at least one member")
	}
	if opt.Topology == nil && opt.Policy == nil {
		return nil, fmt.Errorf("core: fleet run needs a budget policy")
	}
	if opt.Topology != nil {
		if opt.TreePolicy == nil {
			return nil, fmt.Errorf("core: hierarchical fleet run needs a TreePolicy factory")
		}
		if opt.Topology.Boards != n {
			return nil, fmt.Errorf("core: topology %q covers %d boards for %d members",
				opt.Topology.Spec, opt.Topology.Boards, n)
		}
	}
	bud := opt.Budget
	if bud.TotalW <= 0 || bud.MinW <= 0 || bud.MaxW < bud.MinW {
		return nil, fmt.Errorf("core: invalid fleet budget %+v", bud)
	}
	if bud.TotalW < bud.MinW*float64(n) {
		return nil, fmt.Errorf("core: fleet budget %.1f W cannot cover the %.1f W floor for %d boards",
			bud.TotalW, bud.MinW, n)
	}
	if opt.ReallocEvery <= 0 {
		opt.ReallocEvery = 10
	}
	if opt.MaxTime <= 0 {
		opt.MaxTime = 1200 * time.Second
	}
	if opt.Interval <= 0 {
		opt.Interval = 500 * time.Millisecond
	}
	if opt.BoardTraces != nil && len(opt.BoardTraces) != n {
		return nil, fmt.Errorf("core: BoardTraces has %d entries for %d members", len(opt.BoardTraces), n)
	}

	eng, err := opt.Engine.resolve()
	if err != nil {
		return nil, err
	}

	f := &fleetRun{
		cfg: cfg, opt: &opt, n: n,
		boards:    make([]*fleetBoard, n),
		caps:      make([]float64, n),
		tel:       make([]fleet.Telemetry, n),
		workers:   opt.Parallelism,
		maxSteps:  int(opt.MaxTime / opt.Interval),
		intervalS: opt.Interval.Seconds(),
		epochLen:  opt.ReallocEvery,
		res: &FleetResult{
			BudgetW: bud.TotalW,
			Boards:  make([]FleetBoardResult, n),
		},
	}
	if opt.Topology != nil {
		tree, err := fleet.NewTree(opt.Topology, bud, opt.ReallocEvery, opt.CadenceFactor, opt.TreePolicy)
		if err != nil {
			return nil, err
		}
		f.tree = tree
		f.due = make([]int, 0, len(tree.Nodes))
		f.res.Policy = tree.PolicyName()
		f.res.Topology = opt.Topology.Spec
		f.res.Nodes = len(tree.Nodes)
		f.res.Depth = opt.Topology.Depth
	} else {
		f.res.Policy = opt.Policy.Name()
	}
	f.live.Store(int64(n))
	for i, m := range members {
		sess, err := m.Scheme.New()
		if err != nil {
			return nil, fmt.Errorf("core: building scheme %q for board %d: %w", m.Scheme.Name, i, err)
		}
		fb := &fleetBoard{idx: i, sess: sess, w: m.Workload}
		if opt.Faults.Enabled() {
			runKey := fault.RunKey(m.Scheme.faultKey(), m.Workload.Name(), i)
			if f.tree != nil {
				// Boards key their fault streams by (leaf path, leaf-local
				// index): collision-free across racks, and reducing to the
				// flat key — byte-identical streams — in a one-level tree.
				path, local := f.tree.BoardCoord(i)
				runKey = fault.RunKeyPath(m.Scheme.faultKey(), m.Workload.Name(), path, local)
			}
			fb.inj = opt.Faults.NewInjector(runKey)
			fb.w = opt.Faults.Disturb(fb.w, runKey)
		}
		fb.w.Reset()
		fb.b = board.New(cfg)
		if fb.inj != nil {
			fb.b.AttachSensorTap(fb.inj)
			fb.b.AttachActuatorTap(fb.inj)
		}
		if opt.BoardTraces != nil && opt.BoardTraces[i] != nil {
			fb.trace = opt.BoardTraces[i]
			fb.hp, _ = sess.(healthProbe)
			fb.fp, _ = sess.(flightProber)
		}
		if opt.Metrics != nil {
			fb.lat = opt.Metrics.Histogram("step_latency_us/"+m.Scheme.Name, obs.LatencyBucketsUS())
		}
		f.boards[i] = fb
	}

	if eng == EngineLockstep {
		err = f.runLockstep()
	} else {
		err = f.runEvent()
	}
	if err != nil {
		return nil, err
	}
	return f.finalize(members), nil
}

// fleetRun is the state of one fleet simulation, shared by both engines.
// The coordination goroutine owns everything except the per-board state a
// pool worker touches while stepping its own board.
type fleetRun struct {
	cfg    board.Config
	opt    *FleetOptions
	boards []*fleetBoard
	caps   []float64
	tel    []fleet.Telemetry
	res    *FleetResult

	// tree is the coordinator hierarchy of a hierarchical run (nil for
	// flat); due is its reusable due-node scratch buffer.
	tree *fleet.Tree
	due  []int

	n         int
	maxSteps  int
	intervalS float64
	workers   int
	epochLen  int

	// live counts boards whose workload has not completed. It replaces the
	// lockstep engine's former O(n)-per-step allDone scan: workers decrement
	// it when their board finishes, and both engines terminate on zero.
	live atomic.Int64
}

// runLockstep is the reference engine: reallocate every epochLen intervals,
// then step every board under a per-interval pool barrier.
func (f *fleetRun) runLockstep() error {
	for step := 0; step < f.maxSteps && f.live.Load() > 0; step++ {
		realloc := f.reallocAt(step)
		err := pool.ForEachMetered(f.workers, f.n, f.opt.Metrics, func(i int) error {
			fb := f.boards[i]
			if fb.done {
				return nil
			}
			f.stepBoard(fb, step)
			return nil
		})
		if err != nil {
			return err
		}
		f.res.Steps++
		if f.opt.Trace != nil {
			f.traceStep(step, realloc)
		}
	}
	return nil
}

// reallocAt fires whatever coordination is due at the given step — the flat
// policy every epoch, or the due tree nodes on their own cadences — and
// reports whether any reallocation happened. Every leaf coordinator runs on
// the epoch cadence, so tree reallocation instants coincide with the flat
// ones; only the set of higher nodes firing varies.
func (f *fleetRun) reallocAt(step int) bool {
	if f.tree == nil {
		if step%f.epochLen != 0 {
			return false
		}
		f.realloc()
		return true
	}
	f.due = f.tree.Due(step, f.due[:0])
	if len(f.due) == 0 {
		return false
	}
	f.reallocTree()
	return true
}

// reallocTree is the hierarchical counterpart of realloc: refresh the
// per-board telemetry, let the due tree nodes (already in f.due, preorder)
// re-divide their budgets top-down, then actuate the resulting caps.
func (f *fleetRun) reallocTree() {
	for i, fb := range f.boards {
		f.tel[i] = fleetTelemetry(fb, f.caps[i], f.cfg.BasePowerW)
	}
	f.tree.Realloc(f.due, f.tel, f.caps)
	f.actuate()
	f.res.Reallocations++
	f.res.NodeReallocations += len(f.due)
}

// traceStep writes the interval's fleet-trace records: the single flat
// record, or — hierarchically — one record per tree node in preorder, the
// root first. The root record spans all boards with the full budget and an
// empty node path, so a one-level tree's trace is byte-identical to the
// flat one.
func (f *fleetRun) traceStep(step int, realloc bool) {
	timeS := float64(step+1) * f.intervalS
	if f.tree == nil {
		f.opt.Trace.Add(fleetRecordRange(step, timeS, f.opt.Budget.TotalW,
			f.caps, f.boards, 0, f.n, realloc, f.cfg.BasePowerW, ""))
		return
	}
	for i := range f.tree.Nodes {
		nd := &f.tree.Nodes[i]
		f.opt.Trace.Add(fleetRecordRange(step, timeS, nd.BudgetW,
			f.caps, f.boards, nd.First, nd.Boards,
			realloc && f.tree.NodeRealloc(i, step), f.cfg.BasePowerW, nd.Path))
	}
}

// realloc runs the budget policy and actuates the resulting caps. It is
// invoked from the coordination goroutine only, between barriers, in both
// engines — the policy never races board stepping. A finished board's cap
// is zeroed exactly once (capZeroed); afterwards the board is skipped
// instead of being rewritten every period. The policy still sees the same
// telemetry it always did: caps[i] is read for telemetry before Allocate
// runs and zeroed only after, so the first post-completion reallocation
// observes the board's final pre-completion cap, exactly as the lockstep
// engine always has.
func (f *fleetRun) realloc() {
	for i, fb := range f.boards {
		f.tel[i] = fleetTelemetry(fb, f.caps[i], f.cfg.BasePowerW)
	}
	f.opt.Policy.Allocate(f.caps, f.opt.Budget, f.tel)
	f.actuate()
	f.res.Reallocations++
}

// actuate writes the freshly allocated caps to the boards. A finished
// board's cap is zeroed exactly once (capZeroed); afterwards the board is
// skipped instead of being rewritten every period.
func (f *fleetRun) actuate() {
	for i, fb := range f.boards {
		if fb.done {
			f.caps[i] = 0
			if !fb.capZeroed {
				fb.b.SetPowerCapW(0)
				fb.capZeroed = true
			}
			continue
		}
		fb.b.SetPowerCapW(f.caps[i])
	}
}

// stepBoard executes one control interval on one board: advance the fault
// injector, run the physics, invoke the board's scheme, feed the
// observation taps, and latch the fleet-trace sample when the event engine
// is buffering an epoch. It is the single definition of "one board
// interval" for both engines, so the fault RNG streams and every recorded
// value are consumed identically.
func (f *fleetRun) stepBoard(fb *fleetBoard, step int) {
	if fb.inj != nil {
		fb.inj.Advance(fb.b)
	}
	fb.sens = fb.b.Run(fb.w, f.opt.Interval)
	var t0 time.Time
	observe := fb.lat != nil || fb.trace != nil
	if observe {
		t0 = time.Now()
	}
	fb.sess.Step(fb.sens, fb.b, fb.w.Profile().Threads)
	if observe {
		latNS := time.Since(t0).Nanoseconds()
		if fb.lat != nil {
			fb.lat.Observe(float64(latNS) / 1e3)
		}
		if fb.trace != nil {
			recordInterval(fb.trace, step, fb.sens, fb.b,
				fb.inj, &fb.prevFaults, fb.hp, fb.fp, latNS)
		}
	}
	if fb.w.Done() {
		fb.done = true
		f.live.Add(-1)
	}
	if fb.samples != nil {
		fb.samples[step-fb.epochStart] = fleetSample{
			bigW:            fb.sens.BigPowerW,
			littleW:         fb.sens.LittlePowerW,
			bips:            fb.sens.BIPS,
			budgetThrottled: fb.b.BudgetThrottled(),
		}
	}
}

// finalize aggregates the per-board outcomes into the fleet result.
func (f *fleetRun) finalize(members []FleetMember) *FleetResult {
	res := f.res
	res.GeoExD = 1
	for i, fb := range f.boards {
		r := &res.Boards[i]
		r.Board = i
		r.App = members[i].Workload.Name()
		r.Scheme = members[i].Scheme.Name
		r.TimeS = fb.b.TimeS()
		r.EnergyJ = fb.b.EnergyJ()
		r.ExD = r.EnergyJ * r.TimeS
		r.Completed = fb.done
		r.BudgetEvents = fb.b.BudgetEvents()
		if fb.inj != nil {
			r.Faults = fb.inj.Stats()
		}
		res.EnergyJ += r.EnergyJ
		if r.TimeS > res.MakespanS {
			res.MakespanS = r.TimeS
		}
		res.GeoExD *= math.Pow(r.ExD, 1/float64(f.n))
	}
	res.EDP = res.EnergyJ * res.MakespanS
	if f.opt.Metrics != nil {
		m := f.opt.Metrics
		m.Counter("fleet_runs_total").Add(1)
		m.Counter("fleet_board_runs_total").Add(int64(f.n))
		m.Counter("fleet_reallocations_total").Add(int64(res.Reallocations))
	}
	return res
}

// fleetTelemetry distills one board's state into the policy's view. Sensor
// readings can be non-finite under fault injection (dropped power readings);
// the coordination layer substitutes the board's full cap for an unreadable
// draw — the conservative choice that never trims a board on garbage data —
// so policies may assume finite telemetry.
func fleetTelemetry(fb *fleetBoard, capW, baseW float64) fleet.Telemetry {
	power := fb.sens.BigPowerW + fb.sens.LittlePowerW + baseW
	if math.IsNaN(power) || math.IsInf(power, 0) {
		power = capW
	}
	bips := fb.sens.BIPS
	if math.IsNaN(bips) || math.IsInf(bips, 0) {
		bips = 0
	}
	return fleet.Telemetry{
		PowerW:    power,
		BIPS:      bips,
		CapW:      capW,
		Throttled: fb.b.BudgetThrottled(),
		Done:      fb.done,
	}
}

// fleetRecordRange aggregates one interval over one node's board range
// [first, first+count) into a fleet trace record — the whole fleet for the
// flat record (node ""), a subtree for a per-node record.
func fleetRecordRange(step int, timeS float64, budgetW float64, caps []float64,
	boards []*fleetBoard, first, count int, realloc bool, baseW float64,
	node string) obs.FleetRecord {

	rec := obs.FleetRecord{
		Step:    step,
		TimeS:   timeS,
		BudgetW: budgetW,
		Realloc: realloc,
		Node:    node,
	}
	for i := first; i < first+count; i++ {
		fb := boards[i]
		rec.AllocW += caps[i]
		if fb.done {
			rec.Done++
			continue
		}
		rec.Live++
		if caps[i] > 0 {
			if rec.CapMinW == 0 || caps[i] < rec.CapMinW {
				rec.CapMinW = caps[i]
			}
			if caps[i] > rec.CapMaxW {
				rec.CapMaxW = caps[i]
			}
		}
		if fb.b.BudgetThrottled() {
			rec.Throttled++
		}
		p := fb.sens.BigPowerW + fb.sens.LittlePowerW + baseW
		if !math.IsNaN(p) && !math.IsInf(p, 0) {
			rec.PowerW += p
		}
		b := fb.sens.BIPS
		if !math.IsNaN(b) && !math.IsInf(b, 0) {
			rec.BIPS += b
		}
	}
	return rec
}
