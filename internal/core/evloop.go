package core

import (
	"math"

	"yukta/internal/obs"
	"yukta/internal/pool"
	"yukta/internal/sched"
)

// runEvent is the fleet's discrete-event engine. Boards interact only
// through their power caps, and caps change only at reallocation points —
// every ReallocEvery intervals — so the reallocation barrier is the sole
// interaction point on the clock. Each epoch the coordinator pops one batch
// of simultaneous events off the heap: the reallocation (kind evRealloc,
// ordered first) followed by the wakes of the still-live boards (kind
// evWake, in board-index order). A woken board then executes every control
// interval up to the barrier in one uninterrupted batch on the worker pool —
// the controller still steps each interval, since its dynamics are
// per-interval state, but the per-interval pool barrier and the
// per-interval scan over all n boards are gone. A finished board schedules
// nothing and falls out of the clock entirely.
//
// Byte-identity with runLockstep holds because nothing observable moves:
// stepBoard is the shared interval body (fault RNG, physics, controller,
// per-board trace), realloc is the shared coordinator body and fires at the
// same instants with boards in the same states, and the fleet trace is
// reconstructed per interval from samples latched during the batches (see
// flushEpoch). The golden suite and TestEngineEquivalence pin this.
func (f *fleetRun) runEvent() error {
	if f.maxSteps <= 0 {
		return nil
	}
	nodes := 1
	if f.tree != nil {
		nodes = len(f.tree.Nodes)
	}
	h := sched.NewHeap(f.n + nodes)
	if f.tree != nil {
		// One reallocation event per tree node, each on its own cadence.
		// Event IDs are preorder node indices, so simultaneous events pop
		// parent-first and the due list reaches Tree.Realloc in preorder.
		for i := range f.tree.Nodes {
			h.Push(sched.Event{Time: 0, Kind: evRealloc, ID: int32(i)})
		}
	} else {
		h.Push(sched.Event{Time: 0, Kind: evRealloc})
	}
	for _, fb := range f.boards {
		fb.wokeEpoch = -1
		h.Push(sched.Event{Time: 0, Kind: evWake, ID: int32(fb.idx)})
	}
	if f.opt.Trace != nil {
		for _, fb := range f.boards {
			fb.samples = make([]fleetSample, f.epochLen)
		}
	}
	batch := make([]sched.Event, 0, f.n+nodes)
	ready := make([]*fleetBoard, 0, f.n)

	for h.Len() > 0 {
		// Lockstep stops stepping the instant the last board finishes; a
		// tree run can still hold future realloc events for slow-cadence
		// coordinators, which must not fire on an empty fleet.
		if f.live.Load() == 0 {
			break
		}
		batch = h.PopBatch(batch[:0])
		t := batch[0].Time
		barrier := t + f.epochLen
		if barrier > f.maxSteps {
			barrier = f.maxSteps
		}
		reallocFired := false
		ready = ready[:0]
		f.due = f.due[:0]
		for _, e := range batch {
			switch e.Kind {
			case evRealloc:
				if f.tree != nil {
					f.due = append(f.due, int(e.ID))
				} else {
					f.realloc()
					reallocFired = true
				}
			case evWake:
				fb := f.boards[e.ID]
				if !fb.done {
					fb.wokeEpoch = t
					ready = append(ready, fb)
				}
			}
		}
		if len(f.due) > 0 {
			f.reallocTree()
			reallocFired = true
		}
		if len(ready) == 0 {
			continue
		}
		err := pool.ForEachMetered(f.workers, len(ready), f.opt.Metrics, func(k int) error {
			f.runBatch(ready[k], t, barrier)
			return nil
		})
		if err != nil {
			return err
		}
		// Steps counts intervals on the shared clock, as in lockstep: an
		// interval happened if any board executed it.
		epochSteps := 0
		for _, fb := range ready {
			if fb.batchLen > epochSteps {
				epochSteps = fb.batchLen
			}
		}
		f.res.Steps += epochSteps
		if f.opt.Trace != nil {
			f.flushEpoch(t, epochSteps, reallocFired)
		}
		if f.live.Load() > 0 {
			if f.tree != nil {
				// Each node that fired reschedules on its own period; the
				// others' events are still pending in the heap.
				for _, i := range f.due {
					next := t + f.tree.Nodes[i].Period
					if next < f.maxSteps {
						h.Push(sched.Event{Time: next, Kind: evRealloc, ID: int32(i)})
					}
				}
			} else if barrier < f.maxSteps {
				h.Push(sched.Event{Time: barrier, Kind: evRealloc})
			}
			if barrier < f.maxSteps {
				for _, fb := range f.boards {
					if !fb.done {
						h.Push(sched.Event{Time: barrier, Kind: evWake, ID: int32(fb.idx)})
					}
				}
			}
		}
	}
	return nil
}

// runBatch executes one board's intervals from start up to the reallocation
// barrier, stopping early when the workload completes. Runs on a pool
// worker; touches only its own board.
func (f *fleetRun) runBatch(fb *fleetBoard, start, barrier int) {
	fb.epochStart = start
	fb.batchLen = 0
	for step := start; step < barrier; step++ {
		f.stepBoard(fb, step)
		fb.batchLen++
		if fb.done {
			break
		}
	}
}

// flushEpoch reconstructs the per-interval fleet-trace records for the epoch
// that started at t, from the samples the boards latched while running
// ahead of the coordinator. The records are byte-identical to the ones the
// lockstep engine writes inline:
//
//   - caps are constant within an epoch (they change only at realloc), so
//     AllocW and the cap min/max need no latching;
//   - a board that executed interval t+j contributes its latched sample,
//     exactly as lockstep reads the board's live state right after that
//     interval's barrier;
//   - a board counts Done from the very interval it finished (lockstep sets
//     fb.done during the step and records after), hence liveAt = batchLen-1
//     for a board that completed this epoch — its final interval is already
//     recorded as Done, contributing only its cap share, like in lockstep.
func (f *fleetRun) flushEpoch(t, epochSteps int, reallocFired bool) {
	for j := 0; j < epochSteps; j++ {
		if f.tree == nil {
			f.opt.Trace.Add(f.epochRecord(t, j, 0, f.n, f.opt.Budget.TotalW, "",
				j == 0 && reallocFired))
			continue
		}
		// One record per tree node, preorder (root first, node path ""),
		// exactly as the lockstep engine's traceStep writes them. Budgets
		// and caps changed only at the epoch start, so reading them at the
		// flush sees the same values every interval of the epoch saw.
		for i := range f.tree.Nodes {
			nd := &f.tree.Nodes[i]
			f.opt.Trace.Add(f.epochRecord(t, j, nd.First, nd.Boards, nd.BudgetW, nd.Path,
				j == 0 && reallocFired && f.tree.NodeRealloc(i, t)))
		}
	}
}

// epochRecord reconstructs one node-range record for interval t+j of the
// epoch that started at t, from the boards' latched samples.
func (f *fleetRun) epochRecord(t, j, first, count int, budgetW float64,
	node string, realloc bool) obs.FleetRecord {

	rec := obs.FleetRecord{
		Step:    t + j,
		TimeS:   float64(t+j+1) * f.intervalS,
		BudgetW: budgetW,
		Realloc: realloc,
		Node:    node,
	}
	for i := first; i < first+count; i++ {
		fb := f.boards[i]
		rec.AllocW += f.caps[i]
		liveAt := 0
		if fb.wokeEpoch == t {
			liveAt = fb.batchLen
			if fb.done {
				liveAt--
			}
		}
		if j >= liveAt {
			rec.Done++
			continue
		}
		rec.Live++
		if f.caps[i] > 0 {
			if rec.CapMinW == 0 || f.caps[i] < rec.CapMinW {
				rec.CapMinW = f.caps[i]
			}
			if f.caps[i] > rec.CapMaxW {
				rec.CapMaxW = f.caps[i]
			}
		}
		s := fb.samples[j]
		if s.budgetThrottled {
			rec.Throttled++
		}
		p := s.bigW + s.littleW + f.cfg.BasePowerW
		if !math.IsNaN(p) && !math.IsInf(p, 0) {
			rec.PowerW += p
		}
		b := s.bips
		if !math.IsNaN(b) && !math.IsInf(b, 0) {
			rec.BIPS += b
		}
	}
	return rec
}
