package core

import (
	"fmt"
	"time"

	"yukta/internal/board"
	"yukta/internal/fault"
	"yukta/internal/series"
	"yukta/internal/supervisor"
	"yukta/internal/workload"
)

// RunResult records one workload execution under one scheme.
type RunResult struct {
	App    string
	Scheme string

	// TimeS is the completion time (delay D) in seconds; EnergyJ the energy
	// E in joules; ExD their product in J·s.
	TimeS   float64
	EnergyJ float64
	ExD     float64

	Completed       bool
	EmergencyEvents int

	// IntervalS is the control interval the run executed at, in seconds
	// (converts the supervisor's step counts to time).
	IntervalS float64

	// Faults counts the faults actually injected when the run executed under
	// a fault plan (zero for clean runs).
	Faults fault.Stats

	// Supervisor holds the supervisory-layer accounting when the scheme was
	// wrapped by SupervisedScheme (nil otherwise).
	Supervisor *supervisor.Stats

	// Traces of the signals plotted in the paper's time-series figures.
	BigPower    *series.Series // Figure 10 / 17
	LittlePower *series.Series
	Perf        *series.Series // Figure 11 / 15(a)
	Temp        *series.Series
	BigFreq     *series.Series
}

// RunOptions bounds a run.
type RunOptions struct {
	// MaxTime aborts runs that fail to complete (a misbehaving controller
	// must not hang an experiment). Default 1200 s.
	MaxTime time.Duration
	// Interval is the control interval. Default 500 ms (§V-A).
	Interval time.Duration
	// Faults, when enabled, injects the plan's fault sequence into the run:
	// the board's sensor and actuator paths are tapped, forced TMU events are
	// scheduled, and the workload is wrapped with the plan's phase
	// disturbance. The injected sequence is fully determined by
	// (Faults.Seed, scheme name, app name), so identical runs see identical
	// faults at any experiment parallelism.
	Faults fault.Plan
}

// Run executes the workload to completion (or MaxTime) under the scheme on a
// fresh board and returns the measured result.
func Run(cfg board.Config, sch Scheme, w workload.Workload, opt RunOptions) (*RunResult, error) {
	if opt.MaxTime <= 0 {
		opt.MaxTime = 1200 * time.Second
	}
	if opt.Interval <= 0 {
		opt.Interval = 500 * time.Millisecond
	}
	sess, err := sch.New()
	if err != nil {
		return nil, fmt.Errorf("core: building scheme %q: %w", sch.Name, err)
	}
	var inj *fault.Injector
	if opt.Faults.Enabled() {
		runKey := fault.RunKey(sch.faultKey(), w.Name())
		inj = opt.Faults.NewInjector(runKey)
		w = opt.Faults.Disturb(w, runKey)
	}
	w.Reset()
	b := board.New(cfg)
	if inj != nil {
		b.AttachSensorTap(inj)
		b.AttachActuatorTap(inj)
	}

	res := &RunResult{
		App:         w.Name(),
		Scheme:      sch.Name,
		BigPower:    series.New("big_power_w"),
		LittlePower: series.New("little_power_w"),
		Perf:        series.New("bips"),
		Temp:        series.New("temp_c"),
		BigFreq:     series.New("big_freq_ghz"),
	}
	maxSteps := int(opt.MaxTime / opt.Interval)
	var sensors board.Sensors
	for i := 0; i < maxSteps && !w.Done(); i++ {
		if inj != nil {
			inj.Advance(b)
		}
		sensors = b.Run(w, opt.Interval)
		sess.Step(sensors, b, w.Profile().Threads)
		res.BigPower.Add(sensors.TimeS, sensors.BigPowerW)
		res.LittlePower.Add(sensors.TimeS, sensors.LittlePowerW)
		res.Perf.Add(sensors.TimeS, sensors.BIPS)
		res.Temp.Add(sensors.TimeS, sensors.TempC)
		res.BigFreq.Add(sensors.TimeS, b.EffectiveBigFreq())
	}
	res.Completed = w.Done()
	res.TimeS = b.TimeS()
	res.EnergyJ = b.EnergyJ()
	res.ExD = res.EnergyJ * res.TimeS
	res.EmergencyEvents = sensors.EmergencyEvents
	res.IntervalS = opt.Interval.Seconds()
	if inj != nil {
		res.Faults = inj.Stats()
	}
	if sr, ok := sess.(SupervisorReporter); ok {
		st := sr.SupervisorStats()
		res.Supervisor = &st
	}
	return res, nil
}

// FixedTargetSession drives the SSV layers with constant output targets
// instead of optimizers — the §VI-E1 experiment ("we set fixed targets for
// each of the outputs") and the §VI-E3 power-tracking experiment.
type FixedTargetSession struct {
	HW        Session
	OS        Session // optional
	hwTargets []float64
}

// Step implements Session.
func (f *FixedTargetSession) Step(s board.Sensors, b *board.Board, threads int) {
	f.HW.Step(s, b, threads)
	if f.OS != nil {
		f.OS.Step(s, b, threads)
	}
}

// NewFixedHWSession builds an SSV hardware session that tracks the given
// fixed targets [Perf, Power_big, Power_little, Temp].
func (p *Platform) NewFixedHWSession(hp HWParams, targets []float64) (Session, error) {
	ctl, err := p.SynthesizeHWSSV(hp)
	if err != nil {
		return nil, err
	}
	rt, err := p.NewHWRuntime(ctl)
	if err != nil {
		return nil, err
	}
	if err := rt.SetTargets(targets); err != nil {
		return nil, err
	}
	return &fixedHWSession{rt: rt}, nil
}

type fixedHWSession struct {
	rt interface {
		Step(meas, ext, applied []float64) ([]float64, error)
	}

	// Per-step scratch buffers.
	meas    [4]float64
	ext     [3]float64
	applied [4]float64
}

func (f *fixedHWSession) Step(s board.Sensors, b *board.Board, threads int) {
	p := b.Placement()
	f.meas = [4]float64{s.BIPS, s.BigPowerW, s.LittlePowerW, s.TempC}
	f.ext = [3]float64{float64(p.ThreadsBig), p.ThreadsPerBigCore, p.ThreadsPerLittleCore}
	f.applied = [4]float64{float64(b.BigCores()), float64(b.LittleCores()),
		b.EffectiveBigFreq(), b.EffectiveLittleFreq()}
	if u, err := f.rt.Step(f.meas[:], f.ext[:], f.applied[:]); err == nil {
		applyHW(b, u)
	}
}

// NewFixedOSSession builds an SSV software session tracking fixed targets
// [Perf_little, Perf_big, ΔSC].
func (p *Platform) NewFixedOSSession(op OSParams, targets []float64) (Session, error) {
	ctl, err := p.SynthesizeOSSSV(op)
	if err != nil {
		return nil, err
	}
	rt, err := p.NewOSRuntime(ctl)
	if err != nil {
		return nil, err
	}
	if err := rt.SetTargets(targets); err != nil {
		return nil, err
	}
	return &fixedOSSession{rt: rt}, nil
}

type fixedOSSession struct {
	rt interface {
		Step(meas, ext, applied []float64) ([]float64, error)
	}

	// Per-step scratch buffers.
	meas    [3]float64
	ext     [4]float64
	applied [3]float64
}

func (f *fixedOSSession) Step(s board.Sensors, b *board.Board, threads int) {
	f.meas = [3]float64{s.BIPSLittle, s.BIPSBig, deltaSpareCompute(b, threads)}
	f.ext = [4]float64{float64(b.BigCores()), float64(b.LittleCores()), b.BigFreq(), b.LittleFreq()}
	pl := b.Placement()
	f.applied = [3]float64{float64(pl.ThreadsBig), pl.ThreadsPerBigCore, pl.ThreadsPerLittleCore}
	if u, err := f.rt.Step(f.meas[:], f.ext[:], f.applied[:]); err == nil {
		applyOS(b, u, threads)
	}
}
