package core

import (
	"fmt"
	"time"

	"yukta/internal/board"
	"yukta/internal/fault"
	"yukta/internal/obs"
	"yukta/internal/series"
	"yukta/internal/supervisor"
	"yukta/internal/workload"
)

// RunResult records one workload execution under one scheme.
type RunResult struct {
	App    string
	Scheme string

	// TimeS is the completion time (delay D) in seconds; EnergyJ the energy
	// E in joules; ExD their product in J·s.
	TimeS   float64
	EnergyJ float64
	ExD     float64

	Completed       bool
	EmergencyEvents int

	// IntervalS is the control interval the run executed at, in seconds
	// (converts the supervisor's step counts to time).
	IntervalS float64

	// Faults counts the faults actually injected when the run executed under
	// a fault plan (zero for clean runs).
	Faults fault.Stats

	// Supervisor holds the supervisory-layer accounting when the scheme was
	// wrapped by SupervisedScheme (nil otherwise).
	Supervisor *supervisor.Stats

	// Traces of the signals plotted in the paper's time-series figures.
	// All five are nil when the run was executed with
	// RunOptions.SkipSeries — scalar-only sweeps opt out of the buffers
	// they would otherwise discard.
	BigPower    *series.Series // Figure 10 / 17
	LittlePower *series.Series
	Perf        *series.Series // Figure 11 / 15(a)
	Temp        *series.Series
	BigFreq     *series.Series
}

// RunOptions bounds a run.
type RunOptions struct {
	// MaxTime aborts runs that fail to complete (a misbehaving controller
	// must not hang an experiment). Default 1200 s.
	MaxTime time.Duration
	// Interval is the control interval. Default 500 ms (§V-A).
	Interval time.Duration
	// Faults, when enabled, injects the plan's fault sequence into the run:
	// the board's sensor and actuator paths are tapped, forced TMU events are
	// scheduled, and the workload is wrapped with the plan's phase
	// disturbance. The injected sequence is fully determined by
	// (Faults.Seed, scheme name, app name), so identical runs see identical
	// faults at any experiment parallelism.
	Faults fault.Plan
	// SkipSeries skips allocating and filling the five series.Series trace
	// buffers in RunResult. Scalar-only sweeps (degradation tables, bar
	// figures) set it so thousands of runs do not each retain a full
	// time-series trace they never read.
	SkipSeries bool
	// Engine selects the simulation core ("" = EngineEvent). Both engines
	// produce byte-identical results and traces; EngineLockstep is the
	// reference implementation kept for differential testing.
	Engine Engine
	// Trace, when non-nil, receives one obs.Record per control interval:
	// the sensor vector the controller saw, the commanded vs applied
	// actuation, the supervisory state and detector pressures, the faults
	// injected that interval, and the controller step latency. A Recorder
	// belongs to exactly one run. Nil (the default) keeps the control loop
	// free of any observation cost.
	Trace *obs.Recorder
	// Metrics, when non-nil, aggregates this run into the registry: a
	// per-scheme step-latency histogram plus run/fault/trip/fallback
	// counters. Unlike Trace, one Registry is shared across every run of an
	// experiment session (it is concurrency-safe).
	Metrics *obs.Registry
}

// Run executes the workload to completion (or MaxTime) under the scheme on a
// fresh board and returns the measured result.
func Run(cfg board.Config, sch Scheme, w workload.Workload, opt RunOptions) (*RunResult, error) {
	r, eng, err := newSoloRun(cfg, sch, w, opt)
	if err != nil {
		return nil, err
	}
	if eng == EngineLockstep {
		r.runLockstep()
	} else {
		r.runEvent()
	}
	res := r.finalize()
	r.countOnce()
	return res, nil
}

// newSoloRun performs the shared run setup — scheme instantiation, fault
// stream derivation, board construction, observation taps, engine
// resolution — for both the batch Run path and the incrementally driven
// StepRun path. The two paths execute the identical soloRun.step interval
// body afterwards, which is what makes a hosted session's trace
// byte-identical to the batch run of the same options.
func newSoloRun(cfg board.Config, sch Scheme, w workload.Workload, opt RunOptions) (*soloRun, Engine, error) {
	if opt.MaxTime <= 0 {
		opt.MaxTime = 1200 * time.Second
	}
	if opt.Interval <= 0 {
		opt.Interval = 500 * time.Millisecond
	}
	eng, err := opt.Engine.resolve()
	if err != nil {
		return nil, "", err
	}
	sess, err := sch.New()
	if err != nil {
		return nil, "", fmt.Errorf("core: building scheme %q: %w", sch.Name, err)
	}
	var inj *fault.Injector
	if opt.Faults.Enabled() {
		runKey := fault.RunKey(sch.faultKey(), w.Name())
		inj = opt.Faults.NewInjector(runKey)
		w = opt.Faults.Disturb(w, runKey)
	}
	w.Reset()
	b := board.New(cfg)
	if inj != nil {
		b.AttachSensorTap(inj)
		b.AttachActuatorTap(inj)
	}

	res := &RunResult{App: w.Name(), Scheme: sch.Name}
	if !opt.SkipSeries {
		res.BigPower = series.New("big_power_w")
		res.LittlePower = series.New("little_power_w")
		res.Perf = series.New("bips")
		res.Temp = series.New("temp_c")
		res.BigFreq = series.New("big_freq_ghz")
	}
	// Observation taps. Everything below is nil-guarded so a run without
	// Trace/Metrics takes no time.Now calls and no extra allocations in the
	// control loop.
	observe := opt.Trace != nil || opt.Metrics != nil
	var lat *obs.Histogram
	if opt.Metrics != nil {
		lat = opt.Metrics.Histogram("step_latency_us/"+sch.Name, obs.LatencyBucketsUS())
	}
	var hp healthProbe
	var fp flightProber
	if opt.Trace != nil {
		hp, _ = sess.(healthProbe)
		fp, _ = sess.(flightProber)
	}
	r := &soloRun{
		w: w, b: b, sess: sess, inj: inj, opt: &opt, res: res,
		observe: observe, lat: lat, hp: hp, fp: fp,
		maxSteps: int(opt.MaxTime / opt.Interval),
	}
	return r, eng, nil
}

// finalize distills the run's current state into its RunResult. It is the
// shared epilogue of Run and StepRun.Result and is safe to call mid-run (the
// serve layer reports live results); folding into the metrics registry is
// countOnce's job, so repeated finalize calls never double-count.
func (r *soloRun) finalize() *RunResult {
	res, b, w := r.res, r.b, r.w
	res.Completed = w.Done()
	res.TimeS = b.TimeS()
	res.EnergyJ = b.EnergyJ()
	res.ExD = res.EnergyJ * res.TimeS
	res.EmergencyEvents = r.sensors.EmergencyEvents
	res.IntervalS = r.opt.Interval.Seconds()
	if r.inj != nil {
		res.Faults = r.inj.Stats()
	}
	if sr, ok := r.sess.(SupervisorReporter); ok {
		st := sr.SupervisorStats()
		res.Supervisor = &st
	}
	return res
}

// countOnce folds the finished run into the metrics registry, at most once.
func (r *soloRun) countOnce() {
	if r.opt.Metrics != nil && !r.counted {
		r.counted = true
		countRun(r.opt.Metrics, r.res)
	}
}

// recordInterval distills one control interval into an obs.Record and
// appends it to the recorder. prevFaults latches the injector's cumulative
// stats so the record carries per-interval deltas (their sums over a run
// reproduce fault.Stats exactly).
func recordInterval(tr *obs.Recorder, step int, s board.Sensors, b *board.Board,
	inj *fault.Injector, prevFaults *fault.Stats, hp healthProbe, fp flightProber, latNS int64) {

	act := b.ActuatorState()
	rec := obs.Record{
		Step:             step,
		TimeS:            s.TimeS,
		BigPowerW:        s.BigPowerW,
		LittlePowerW:     s.LittlePowerW,
		TempC:            s.TempC,
		BIPS:             s.BIPS,
		BIPSBig:          s.BIPSBig,
		BIPSLittle:       s.BIPSLittle,
		Throttled:        s.Throttled,
		ThermalThrottled: s.ThermalThrottled,
		PowerCapW:        s.PowerCapW,
		BudgetThrottled:  s.BudgetThrottled,
		CmdBigCores:      act.BigCores,
		CmdLittleCores:   act.LittleCores,
		CmdBigGHz:        act.BigFreqGHz,
		CmdLittleGHz:     act.LittleFreqGHz,
		EffBigGHz:        act.EffBigFreqGHz,
		EffLittleGHz:     act.EffLittleFreqGHz,
		ThreadsBig:       act.ThreadsBig,
		LatencyNS:        latNS,
	}
	if inj != nil {
		cur := inj.Stats()
		rec.FaultDropped = cur.DroppedReadings - prevFaults.DroppedReadings
		rec.FaultStale = cur.StaleReadings - prevFaults.StaleReadings
		rec.FaultHeld = cur.HeldCommands - prevFaults.HeldCommands
		rec.FaultSkewed = cur.SkewedCommands - prevFaults.SkewedCommands
		rec.FaultForced = cur.ForcedThrottles - prevFaults.ForcedThrottles
		*prevFaults = cur
	}
	if hp != nil {
		h := hp.controllerHealth()
		rec.CtlGuardbandStreak = h.GuardbandStreak
		rec.CtlHeldSteps = h.HeldSteps
		rec.CtlRailed = h.Railed
		rec.CtlNonFinite = h.NonFinite
	}
	if fp != nil {
		p := fp.flightProbe()
		rec.SupState = p.State.String()
		rec.SupTripped = p.Tripped
		if p.Tripped {
			rec.SupCause = p.Cause.String()
		}
		rec.SupReengage = p.Reengage
		rec.SupBlockRaise = p.BlockRaise
		rec.DetSuspect = p.SuspectStreak
		rec.DetRail = p.RailStreak
		rec.DetChatter = p.ChatterCount
		rec.DetDropout = p.DropoutCount
		rec.DetMismatch = p.MismatchCount
		rec.DetThrottle = p.ThrottleCount
		rec.DetCostRatio = p.CostRatio
	}
	tr.Add(rec)
}

// countRun folds one completed run into the metrics registry.
func countRun(m *obs.Registry, res *RunResult) {
	m.Counter("runs_total").Add(1)
	if !res.Completed {
		m.Counter("runs_incomplete_total").Add(1)
	}
	f := res.Faults
	if n := f.DroppedReadings + f.StaleReadings + f.HeldCommands +
		f.SkewedCommands + f.ForcedThrottles; n > 0 {
		m.Counter("faults_injected_total").Add(int64(n))
		m.Counter("faults_dropped_total").Add(int64(f.DroppedReadings))
		m.Counter("faults_stale_total").Add(int64(f.StaleReadings))
		m.Counter("faults_held_total").Add(int64(f.HeldCommands))
		m.Counter("faults_skewed_total").Add(int64(f.SkewedCommands))
		m.Counter("faults_forced_total").Add(int64(f.ForcedThrottles))
	}
	if sup := res.Supervisor; sup != nil {
		m.Counter("supervised_runs_total").Add(1)
		m.Counter("supervisor_trips_total").Add(int64(sup.Trips))
		m.Counter("supervisor_fallback_steps_total").Add(int64(sup.FallbackSteps))
		m.Counter("supervisor_recoveries_total").Add(int64(sup.Recoveries))
		m.Counter("supervisor_frozen_steps_total").Add(int64(sup.FrozenSteps))
		m.Counter("supervisor_distrust_steps_total").Add(int64(sup.DistrustSteps))
	}
}

// FixedTargetSession drives the SSV layers with constant output targets
// instead of optimizers — the §VI-E1 experiment ("we set fixed targets for
// each of the outputs") and the §VI-E3 power-tracking experiment.
type FixedTargetSession struct {
	HW        Session
	OS        Session // optional
	hwTargets []float64
}

// Step implements Session.
func (f *FixedTargetSession) Step(s board.Sensors, b *board.Board, threads int) {
	f.HW.Step(s, b, threads)
	if f.OS != nil {
		f.OS.Step(s, b, threads)
	}
}

// NewFixedHWSession builds an SSV hardware session that tracks the given
// fixed targets [Perf, Power_big, Power_little, Temp].
func (p *Platform) NewFixedHWSession(hp HWParams, targets []float64) (Session, error) {
	ctl, err := p.SynthesizeHWSSV(hp)
	if err != nil {
		return nil, err
	}
	rt, err := p.NewHWRuntime(ctl)
	if err != nil {
		return nil, err
	}
	if err := rt.SetTargets(targets); err != nil {
		return nil, err
	}
	return &fixedHWSession{rt: rt}, nil
}

type fixedHWSession struct {
	rt interface {
		Step(meas, ext, applied []float64) ([]float64, error)
	}

	// Per-step scratch buffers.
	meas    [4]float64
	ext     [3]float64
	applied [4]float64
}

func (f *fixedHWSession) Step(s board.Sensors, b *board.Board, threads int) {
	p := b.Placement()
	f.meas = [4]float64{s.BIPS, s.BigPowerW, s.LittlePowerW, s.TempC}
	f.ext = [3]float64{float64(p.ThreadsBig), p.ThreadsPerBigCore, p.ThreadsPerLittleCore}
	f.applied = [4]float64{float64(b.BigCores()), float64(b.LittleCores()),
		b.EffectiveBigFreq(), b.EffectiveLittleFreq()}
	if u, err := f.rt.Step(f.meas[:], f.ext[:], f.applied[:]); err == nil {
		applyHW(b, u)
	}
}

// NewFixedOSSession builds an SSV software session tracking fixed targets
// [Perf_little, Perf_big, ΔSC].
func (p *Platform) NewFixedOSSession(op OSParams, targets []float64) (Session, error) {
	ctl, err := p.SynthesizeOSSSV(op)
	if err != nil {
		return nil, err
	}
	rt, err := p.NewOSRuntime(ctl)
	if err != nil {
		return nil, err
	}
	if err := rt.SetTargets(targets); err != nil {
		return nil, err
	}
	return &fixedOSSession{rt: rt}, nil
}

type fixedOSSession struct {
	rt interface {
		Step(meas, ext, applied []float64) ([]float64, error)
	}

	// Per-step scratch buffers.
	meas    [3]float64
	ext     [4]float64
	applied [3]float64
}

func (f *fixedOSSession) Step(s board.Sensors, b *board.Board, threads int) {
	f.meas = [3]float64{s.BIPSLittle, s.BIPSBig, deltaSpareCompute(b, threads)}
	f.ext = [4]float64{float64(b.BigCores()), float64(b.LittleCores()), b.BigFreq(), b.LittleFreq()}
	pl := b.Placement()
	f.applied = [3]float64{float64(pl.ThreadsBig), pl.ThreadsPerBigCore, pl.ThreadsPerLittleCore}
	if u, err := f.rt.Step(f.meas[:], f.ext[:], f.applied[:]); err == nil {
		applyOS(b, u, threads)
	}
}
