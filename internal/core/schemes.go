package core

import (
	"fmt"
	"math"

	"yukta/internal/board"
	"yukta/internal/heuristic"
	"yukta/internal/lqgctl"
	"yukta/internal/optimizer"
	"yukta/internal/ssvctl"
	"yukta/internal/supervisor"
)

// Session is one run's controller stack: it is invoked once per control
// interval (500 ms, §V-A) with the current sensor view and the number of
// runnable application threads, and actuates on the board.
type Session interface {
	Step(s board.Sensors, b *board.Board, threads int)
}

// Scheme names a controller stack and knows how to build a fresh Session
// (controllers are stateful, so every run needs its own).
type Scheme struct {
	// Name labels the scheme in every table.
	Name string
	// FaultKey, when non-empty, overrides the identity used to derive this
	// scheme's fault-injection RNG streams (fault.RunKey); empty uses Name.
	// Decorator schemes set it to their primary's identity so decorated and
	// bare runs face the same fault realization — a paired (common random
	// numbers) comparison that measures the decorator, not stream luck.
	FaultKey string
	// New builds a fresh Session for one run.
	New func() (Session, error)
}

// faultKey returns the identity fault streams are derived from.
func (s Scheme) faultKey() string {
	if s.FaultKey != "" {
		return s.FaultKey
	}
	return s.Name
}

// Scheme names, matching the paper's Table IV and §VI-B.
const (
	NameCoordHeur  = "Coordinated heuristic"
	NameDecoupHeur = "Decoupled heuristic"
	NameYuktaHW    = "Yukta: HW SSV+OS heuristic"
	NameYuktaFull  = "Yukta: HW SSV+OS SSV"
	NameDecoupLQG  = "Decoupled HW LQG+OS LQG"
	NameMonoLQG    = "Monolithic LQG"
)

// exdProxy returns the instantaneous E×D rate (total power over squared
// performance — E×D is proportional to Power/Perf², §IV-D).
func exdProxy(s board.Sensors, base float64) float64 {
	perf := s.BIPS
	if perf < 0.3 {
		perf = 0.3
	}
	return (s.BigPowerW + s.LittlePowerW + base) / (perf * perf)
}

// ssvHealth converts an SSV runtime's health snapshot to the supervisor's
// shape.
func ssvHealth(h ssvctl.Health) supervisor.Health {
	return supervisor.Health{GuardbandStreak: h.ExceedStreak,
		HeldSteps: h.HeldSteps, Railed: h.Railed, NonFinite: h.NonFinite}
}

// lqgHealth converts an LQG runtime's health snapshot to the supervisor's
// shape. The LQG runtime carries no guardband monitor (nothing was
// synthesized to guarantee), so its streak is always zero.
func lqgHealth(h lqgctl.Health) supervisor.Health {
	return supervisor.Health{
		HeldSteps: h.HeldSteps, Railed: h.Railed, NonFinite: h.NonFinite}
}

// mergeHealth combines two layers' health snapshots: boolean conditions OR,
// held counters add, streaks take the worst layer.
func mergeHealth(a, b supervisor.Health) supervisor.Health {
	return supervisor.Health{
		GuardbandStreak: maxInt(a.GuardbandStreak, b.GuardbandStreak),
		HeldSteps:       a.HeldSteps + b.HeldSteps,
		Railed:          a.Railed || b.Railed,
		NonFinite:       a.NonFinite || b.NonFinite,
	}
}

// maxInt returns the larger of a and b.
func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// costGuard keeps the E×D hill-climbing search sane under sensor dropout: a
// non-finite sample (the fault layer reports dropped power readings as NaN)
// is replaced by the last finite sample, so the optimizer pauses on a stale
// cost for the dropped interval instead of having its EMA poisoned forever.
type costGuard struct {
	last float64
	have bool
}

// guard returns exd if finite, otherwise the last finite sample seen (or a
// neutral constant before any good sample has arrived).
func (g *costGuard) guard(exd float64) float64 {
	if math.IsNaN(exd) || math.IsInf(exd, 0) {
		if g.have {
			return g.last
		}
		return 1
	}
	g.last, g.have = exd, true
	return exd
}

// ---- Heuristic schemes -------------------------------------------------

type heurSession struct {
	hw interface {
		Step(board.Sensors, *board.Board)
	}
	os interface {
		Step(board.Sensors, *board.Board, int)
	}
}

func (h *heurSession) Step(s board.Sensors, b *board.Board, threads int) {
	h.hw.Step(s, b)
	h.os.Step(s, b, threads)
}

// CoordinatedHeuristic is the paper's baseline scheme (Table IV a).
func (p *Platform) CoordinatedHeuristic() Scheme {
	return Scheme{Name: NameCoordHeur, New: func() (Session, error) {
		return &heurSession{
			hw: &heuristic.CoordinatedHW{Lim: p.Lim},
			os: &heuristic.CoordinatedOS{},
		}, nil
	}}
}

// DecoupledHeuristic is Table IV (b).
func (p *Platform) DecoupledHeuristic() Scheme {
	return Scheme{Name: NameDecoupHeur, New: func() (Session, error) {
		return &heurSession{
			hw: &heuristic.DecoupledHW{Lim: p.Lim},
			os: heuristic.DecoupledOS{},
		}, nil
	}}
}

// ---- SSV hardware layer -------------------------------------------------

// hwOptimizer builds the §IV-D optimizer for the hardware controller's
// targets [Perf, Power_big, Power_little]; the temperature target is held at
// a fixed safe value.
func (p *Platform) hwOptimizer() (*optimizer.Optimizer, error) {
	perfHi := p.Data.OutScales[outBIPS].Max * 0.9
	return optimizer.New(optimizer.Config{
		Initial:         []float64{7, 2.9, 0.25},
		UpStep:          []float64{0.7, 0.06, 0.008},
		DownStep:        []float64{0.25, 0.15, 0.02},
		Lo:              []float64{0.5, 0.5, 0.05},
		Hi:              []float64{perfHi, p.Lim.BigPowerW * 0.95, p.Lim.LittlePowerW * 0.92},
		SettleIntervals: 5,
		Smoothing:       0.7,
	})
}

const tempTargetC = 77 // fixed temperature target: bound ±3-4 °C keeps T below the 79 °C limit

type hwSSVSession struct {
	rt      *ssvctl.Runtime
	opt     *optimizer.Optimizer
	base    float64
	perfEMA float64
	cost    costGuard

	// Ablation switches (normal operation leaves both false).
	noExternals    bool // feed zeros instead of the OS layer's signals
	noConditioning bool // do not feed the applied command back

	// frozen pauses the E×D target search (supervisory freeze while firmware
	// throttling owns the operating point); targets hold at their last value.
	frozen bool

	// ceilBig/ceilLit cap the frequency commands before they reach the board
	// (the supervisory no-raise authority clamp); non-positive means
	// unlimited, so the zero value is an unclamped session. The cap sits in
	// the command path, not after it, so a clamped session settles at the
	// ceiling instead of thrashing the DVFS transition stall by re-raising
	// every interval.
	ceilBig, ceilLit float64

	// Per-step scratch (the control loop runs every 500 ms; see the
	// BenchmarkControllerStep allocation budget).
	tg      []float64
	targets [4]float64
	meas    [4]float64
	ext     [3]float64
	applied [4]float64
}

func (h *hwSSVSession) setSearchFrozen(f bool) { h.frozen = f }

func (h *hwSSVSession) setFreqCeiling(bigGHz, littleGHz float64) {
	h.ceilBig, h.ceilLit = bigGHz, littleGHz
}

func (h *hwSSVSession) reseed(s board.Sensors, b *board.Board) {
	h.applied = [4]float64{float64(b.BigCores()), float64(b.LittleCores()),
		b.EffectiveBigFreq(), b.EffectiveLittleFreq()}
	_ = h.rt.Reseed(h.applied[:])
	h.perfEMA = 0
	h.cost = costGuard{}
}

func (h *hwSSVSession) controllerHealth() supervisor.Health { return ssvHealth(h.rt.Health()) }

func (h *hwSSVSession) Step(s board.Sensors, b *board.Board, threads int) {
	tg := h.tg
	if !h.frozen || tg == nil {
		tg = h.opt.UpdateInto(h.tg, h.cost.guard(exdProxy(s, h.base)))
		h.tg = tg
	}
	// Reference governor: the optimizer raises the performance target from
	// the *measured* performance (§IV-D "keeps increasing Perf_0"), so the
	// reference never runs far ahead of what the plant is delivering — a
	// huge standing error would distort the controller's multi-output
	// compromise and violate the synthesis' TargetScale assumption.
	if h.perfEMA == 0 {
		h.perfEMA = s.BIPS
	}
	h.perfEMA = 0.7*h.perfEMA + 0.3*s.BIPS
	perfT := tg[0]
	if cap := h.perfEMA + 3.0; perfT > cap {
		perfT = cap
	}
	h.targets = [4]float64{perfT, tg[1], tg[2], tempTargetC}
	if err := h.rt.SetTargets(h.targets[:]); err != nil {
		return
	}
	p := b.Placement()
	h.meas = [4]float64{s.BIPS, s.BigPowerW, s.LittlePowerW, s.TempC}
	h.ext = [3]float64{float64(p.ThreadsBig), p.ThreadsPerBigCore, p.ThreadsPerLittleCore}
	if h.noExternals {
		h.ext = [3]float64{0, 1, 1} // pretend nothing is known about the OS layer
	}
	// What the hardware actually ran at during the measured interval,
	// including firmware throttle caps.
	h.applied = [4]float64{float64(b.BigCores()), float64(b.LittleCores()),
		b.EffectiveBigFreq(), b.EffectiveLittleFreq()}
	applied := h.applied[:]
	if h.noConditioning {
		applied = nil
	}
	u, err := h.rt.Step(h.meas[:], h.ext[:], applied)
	if err != nil {
		return
	}
	if h.ceilBig > 0 && u[2] > h.ceilBig {
		u[2] = h.ceilBig
	}
	if h.ceilLit > 0 && u[3] > h.ceilLit {
		u[3] = h.ceilLit
	}
	applyHW(b, u)
}

// newHWSSVSession assembles the SSV hardware layer from a synthesized
// controller.
func (p *Platform) newHWSSVSession(hp HWParams) (*hwSSVSession, error) {
	ctl, err := p.HWControllerValidated(hp)
	if err != nil {
		return nil, fmt.Errorf("core: HW SSV synthesis: %w", err)
	}
	rt, err := p.NewHWRuntime(ctl)
	if err != nil {
		return nil, err
	}
	opt, err := p.hwOptimizer()
	if err != nil {
		return nil, err
	}
	return &hwSSVSession{rt: rt, opt: opt, base: p.Cfg.BasePowerW}, nil
}

// YuktaHWSSVOSHeuristic is Table IV (c): SSV hardware controller plus the
// coordinated heuristic OS controller.
func (p *Platform) YuktaHWSSVOSHeuristic(hp HWParams) Scheme {
	return Scheme{Name: NameYuktaHW, New: func() (Session, error) {
		hw, err := p.newHWSSVSession(hp)
		if err != nil {
			return nil, err
		}
		return &splitSession{
			hw: hw,
			os: &heurOSAdapter{os: &heuristic.CoordinatedOS{}},
		}, nil
	}}
}

// ---- SSV software layer -------------------------------------------------

// osOptimizer builds the optimizer for the software controller's targets
// [Perf_little, Perf_big, ΔSC]. In the performance-seeking direction the
// ΔSC target moves toward zero/negative (spread threads over the on cores);
// in the power-saving direction it rises (pack threads on the big cluster so
// the HW layer can gate cores). The OS optimizer deliberately runs at a
// slower cadence than the HW optimizer so the two searches do not chase each
// other's transients (§III-D).
func (p *Platform) osOptimizer() (*optimizer.Optimizer, error) {
	hiL := p.Data.OutScales[outBIPSLittle].Max
	hiB := p.Data.OutScales[outBIPSBig].Max
	return optimizer.New(optimizer.Config{
		Initial:         []float64{1.5, 6.5, -1},
		UpStep:          []float64{0.1, 0.4, -0.15},
		DownStep:        []float64{0.04, 0.15, -0.15},
		Lo:              []float64{0, 0.2, -3},
		Hi:              []float64{hiL, hiB * 0.95, 3},
		SettleIntervals: 9,
		Smoothing:       0.7,
	})
}

type osSSVSession struct {
	rt     *ssvctl.Runtime
	opt    *optimizer.Optimizer
	base   float64
	emaL   float64
	emaB   float64
	inited bool
	cost   costGuard

	noExternals    bool
	noConditioning bool

	// frozen pauses the E×D target search (supervisory freeze).
	frozen bool

	// Per-step scratch buffers.
	tg      []float64
	meas    [3]float64
	ext     [4]float64
	applied [3]float64
}

func (o *osSSVSession) setSearchFrozen(f bool) { o.frozen = f }

func (o *osSSVSession) reseed(s board.Sensors, b *board.Board) {
	pl := b.Placement()
	o.applied = [3]float64{float64(pl.ThreadsBig), pl.ThreadsPerBigCore, pl.ThreadsPerLittleCore}
	_ = o.rt.Reseed(o.applied[:])
	o.inited = false
	o.cost = costGuard{}
}

func (o *osSSVSession) controllerHealth() supervisor.Health { return ssvHealth(o.rt.Health()) }

func (o *osSSVSession) Step(s board.Sensors, b *board.Board, threads int) {
	tg := o.tg
	if !o.frozen || tg == nil {
		tg = o.opt.UpdateInto(o.tg, o.cost.guard(exdProxy(s, o.base)))
		o.tg = tg
	}
	// Reference governor, as in the hardware layer: cluster performance
	// targets track measured values instead of running open-loop ahead.
	if !o.inited {
		o.emaL, o.emaB = s.BIPSLittle, s.BIPSBig
		o.inited = true
	}
	o.emaL = 0.7*o.emaL + 0.3*s.BIPSLittle
	o.emaB = 0.7*o.emaB + 0.3*s.BIPSBig
	if cap := o.emaL + 1.0; tg[0] > cap {
		tg[0] = cap
	}
	if cap := o.emaB + 2.5; tg[1] > cap {
		tg[1] = cap
	}
	if err := o.rt.SetTargets(tg); err != nil {
		return
	}
	o.meas = [3]float64{s.BIPSLittle, s.BIPSBig, deltaSpareCompute(b, threads)}
	o.ext = [4]float64{float64(b.BigCores()), float64(b.LittleCores()), b.BigFreq(), b.LittleFreq()}
	if o.noExternals {
		o.ext = [4]float64{2.5, 2.5, 1.1, 0.8} // mid-range guesses, no coordination
	}
	pl := b.Placement()
	o.applied = [3]float64{float64(pl.ThreadsBig), pl.ThreadsPerBigCore, pl.ThreadsPerLittleCore}
	applied := o.applied[:]
	if o.noConditioning {
		applied = nil
	}
	u, err := o.rt.Step(o.meas[:], o.ext[:], applied)
	if err != nil {
		return
	}
	applyOS(b, u, threads)
}

// YuktaFullSSV is Table IV (d): SSV controllers in both layers, each taking
// the other's actuations as external signals.
func (p *Platform) YuktaFullSSV(hp HWParams, op OSParams) Scheme {
	return Scheme{Name: NameYuktaFull, New: func() (Session, error) {
		hw, err := p.newHWSSVSession(hp)
		if err != nil {
			return nil, err
		}
		ctl, err := p.OSControllerValidated(op)
		if err != nil {
			return nil, fmt.Errorf("core: OS SSV synthesis: %w", err)
		}
		rt, err := p.NewOSRuntime(ctl)
		if err != nil {
			return nil, err
		}
		opt, err := p.osOptimizer()
		if err != nil {
			return nil, err
		}
		return &splitSession{
			hw: hw,
			os: &osSSVSession{rt: rt, opt: opt, base: p.Cfg.BasePowerW},
		}, nil
	}}
}

// YuktaFullAblated builds the full SSV scheme with ablation switches: with
// noExternals the controllers receive placeholder external signals (the
// "Decoupled SSV" the paper argues against in §III-A); with noConditioning
// the runtimes do not feed the applied actuator state back to their
// estimators. Both default-false switches reproduce YuktaFullSSV.
func (p *Platform) YuktaFullAblated(name string, noExternals, noConditioning bool) Scheme {
	return Scheme{Name: name, New: func() (Session, error) {
		hw, err := p.newHWSSVSession(DefaultHWParams())
		if err != nil {
			return nil, err
		}
		hw.noExternals = noExternals
		hw.noConditioning = noConditioning
		ctl, err := p.OSControllerValidated(DefaultOSParams())
		if err != nil {
			return nil, err
		}
		rt, err := p.NewOSRuntime(ctl)
		if err != nil {
			return nil, err
		}
		opt, err := p.osOptimizer()
		if err != nil {
			return nil, err
		}
		os := &osSSVSession{rt: rt, opt: opt, base: p.Cfg.BasePowerW,
			noExternals: noExternals, noConditioning: noConditioning}
		return &splitSession{hw: hw, os: os}, nil
	}}
}

// splitSession runs a hardware sub-session then a software sub-session.
type splitSession struct {
	hw, os Session
}

func (sp *splitSession) Step(s board.Sensors, b *board.Board, threads int) {
	sp.hw.Step(s, b, threads)
	sp.os.Step(s, b, threads)
}

func (sp *splitSession) setSearchFrozen(f bool) {
	if fz, ok := sp.hw.(searchFreezer); ok {
		fz.setSearchFrozen(f)
	}
	if fz, ok := sp.os.(searchFreezer); ok {
		fz.setSearchFrozen(f)
	}
}

func (sp *splitSession) setFreqCeiling(bigGHz, littleGHz float64) {
	if fl, ok := sp.hw.(freqLimiter); ok {
		fl.setFreqCeiling(bigGHz, littleGHz)
	}
	if fl, ok := sp.os.(freqLimiter); ok {
		fl.setFreqCeiling(bigGHz, littleGHz)
	}
}

func (sp *splitSession) reseed(s board.Sensors, b *board.Board) {
	if r, ok := sp.hw.(reseedable); ok {
		r.reseed(s, b)
	}
	if r, ok := sp.os.(reseedable); ok {
		r.reseed(s, b)
	}
}

func (sp *splitSession) controllerHealth() supervisor.Health {
	var h supervisor.Health
	if hp, ok := sp.hw.(healthProbe); ok {
		h = mergeHealth(h, hp.controllerHealth())
	}
	if hp, ok := sp.os.(healthProbe); ok {
		h = mergeHealth(h, hp.controllerHealth())
	}
	return h
}

// heurOSAdapter adapts a heuristic OS controller to the Session interface.
type heurOSAdapter struct {
	os interface {
		Step(board.Sensors, *board.Board, int)
	}
}

func (h *heurOSAdapter) Step(s board.Sensors, b *board.Board, threads int) {
	h.os.Step(s, b, threads)
}

// ---- LQG schemes ---------------------------------------------------------

type monoLQGSession struct {
	rt    *lqgctl.Runtime
	opt   *optimizer.Optimizer
	osOpt *optimizer.Optimizer
	base  float64
	cost  costGuard

	// frozen pauses both E×D target searches (supervisory freeze).
	frozen bool

	// Per-step scratch buffers.
	tg, og  []float64
	targets [7]float64
	meas    [7]float64
	applied [7]float64
}

func (m *monoLQGSession) setSearchFrozen(f bool) { m.frozen = f }

func (m *monoLQGSession) reseed(s board.Sensors, b *board.Board) {
	pl := b.Placement()
	m.applied = [7]float64{float64(b.BigCores()), float64(b.LittleCores()),
		b.EffectiveBigFreq(), b.EffectiveLittleFreq(),
		float64(pl.ThreadsBig), pl.ThreadsPerBigCore, pl.ThreadsPerLittleCore}
	_ = m.rt.Reseed(m.applied[:])
	m.cost = costGuard{}
}

func (m *monoLQGSession) controllerHealth() supervisor.Health { return lqgHealth(m.rt.Health()) }

func (m *monoLQGSession) Step(s board.Sensors, b *board.Board, threads int) {
	tg, og := m.tg, m.og
	if !m.frozen || tg == nil || og == nil {
		exd := m.cost.guard(exdProxy(s, m.base))
		tg = m.opt.UpdateInto(m.tg, exd)
		m.tg = tg
		og = m.osOpt.UpdateInto(m.og, exd)
		m.og = og
	}
	m.targets = [7]float64{tg[0], tg[1], tg[2], tempTargetC, og[0], og[1], og[2]}
	if err := m.rt.SetTargets(m.targets[:]); err != nil {
		return
	}
	m.meas = [7]float64{s.BIPS, s.BigPowerW, s.LittlePowerW, s.TempC,
		s.BIPSLittle, s.BIPSBig, deltaSpareCompute(b, threads)}
	u, err := m.rt.Step(m.meas[:], nil)
	if err != nil {
		return
	}
	applyHW(b, u[:4])
	applyOS(b, u[4:], threads)
}

// MonolithicLQG is the single-controller LQG scheme of §VI-B.
func (p *Platform) MonolithicLQG() Scheme {
	return Scheme{Name: NameMonoLQG, New: func() (Session, error) {
		ctl, err := p.MonolithicLQGController()
		if err != nil {
			return nil, fmt.Errorf("core: monolithic LQG synthesis: %w", err)
		}
		rt, err := p.newLQGRuntime(ctl, hwInCols, monoOutCols)
		if err != nil {
			return nil, err
		}
		opt, err := p.hwOptimizer()
		if err != nil {
			return nil, err
		}
		osOpt, err := p.osOptimizer()
		if err != nil {
			return nil, err
		}
		return &monoLQGSession{rt: rt, opt: opt, osOpt: osOpt, base: p.Cfg.BasePowerW}, nil
	}}
}

type decoupLQGSession struct {
	hw, os *lqgctl.Runtime
	hwOpt  *optimizer.Optimizer
	osOpt  *optimizer.Optimizer
	base   float64
	cost   costGuard

	// frozen pauses both E×D target searches (supervisory freeze).
	frozen bool

	// Per-step scratch buffers.
	tg, og    []float64
	hwTargets [4]float64
	hwMeas    [4]float64
	osMeas    [3]float64
	hwApplied [4]float64
	osApplied [3]float64
}

func (d *decoupLQGSession) setSearchFrozen(f bool) { d.frozen = f }

func (d *decoupLQGSession) reseed(s board.Sensors, b *board.Board) {
	pl := b.Placement()
	d.hwApplied = [4]float64{float64(b.BigCores()), float64(b.LittleCores()),
		b.EffectiveBigFreq(), b.EffectiveLittleFreq()}
	d.osApplied = [3]float64{float64(pl.ThreadsBig), pl.ThreadsPerBigCore, pl.ThreadsPerLittleCore}
	_ = d.hw.Reseed(d.hwApplied[:])
	_ = d.os.Reseed(d.osApplied[:])
	d.cost = costGuard{}
}

func (d *decoupLQGSession) controllerHealth() supervisor.Health {
	return mergeHealth(lqgHealth(d.hw.Health()), lqgHealth(d.os.Health()))
}

func (d *decoupLQGSession) Step(s board.Sensors, b *board.Board, threads int) {
	var exd float64
	haveExd := false
	if !d.frozen || d.tg == nil || d.og == nil {
		exd = d.cost.guard(exdProxy(s, d.base))
		haveExd = true
	}
	tg := d.tg
	if haveExd {
		tg = d.hwOpt.UpdateInto(d.tg, exd)
		d.tg = tg
	}
	d.hwTargets = [4]float64{tg[0], tg[1], tg[2], tempTargetC}
	if err := d.hw.SetTargets(d.hwTargets[:]); err != nil {
		return
	}
	d.hwMeas = [4]float64{s.BIPS, s.BigPowerW, s.LittlePowerW, s.TempC}
	if u, err := d.hw.Step(d.hwMeas[:], nil); err == nil {
		applyHW(b, u)
	}
	og := d.og
	if haveExd {
		og = d.osOpt.UpdateInto(d.og, exd)
		d.og = og
	}
	if err := d.os.SetTargets(og); err != nil {
		return
	}
	d.osMeas = [3]float64{s.BIPSLittle, s.BIPSBig, deltaSpareCompute(b, threads)}
	if u, err := d.os.Step(d.osMeas[:], nil); err == nil {
		applyOS(b, u, threads)
	}
}

// DecoupledLQG is the two-independent-LQG scheme of §VI-B.
func (p *Platform) DecoupledLQG() Scheme {
	return Scheme{Name: NameDecoupLQG, New: func() (Session, error) {
		hwCtl, osCtl, err := p.DecoupledLQGControllers()
		if err != nil {
			return nil, err
		}
		hwRT, err := p.newLQGRuntime(hwCtl, hwOnlyInCols, hwOutCols)
		if err != nil {
			return nil, err
		}
		osRT, err := p.newLQGRuntime(osCtl, osOnlyInCols, osOutCols)
		if err != nil {
			return nil, err
		}
		hwOpt, err := p.hwOptimizer()
		if err != nil {
			return nil, err
		}
		osOpt, err := p.osOptimizer()
		if err != nil {
			return nil, err
		}
		return &decoupLQGSession{hw: hwRT, os: osRT, hwOpt: hwOpt, osOpt: osOpt, base: p.Cfg.BasePowerW}, nil
	}}
}
