package core

import (
	"testing"
	"time"

	"yukta/internal/workload"
)

// runFor executes an app under a scheme with the standard options.
func runFor(t *testing.T, p *Platform, sch Scheme, app string) *RunResult {
	t.Helper()
	w := workload.MustLookup(app)
	res, err := Run(p.Cfg, sch, w, RunOptions{})
	if err != nil {
		t.Fatalf("%s on %s: %v", sch.Name, app, err)
	}
	if !res.Completed {
		t.Fatalf("%s on %s did not complete in %v", sch.Name, app, res.TimeS)
	}
	return res
}

// TestSchemeOrderingBlackscholes is the headline integration test: on the
// paper's showcase application the scheme ordering of Figures 9 and 12 must
// hold — both Yukta schemes and the monolithic LQG beat the coordinated
// heuristic baseline, and the decoupled heuristic is worse than the
// baseline.
func TestSchemeOrderingBlackscholes(t *testing.T) {
	p := testPlatform(t)
	base := runFor(t, p, p.CoordinatedHeuristic(), "blackscholes")
	full := runFor(t, p, p.YuktaFullSSV(DefaultHWParams(), DefaultOSParams()), "blackscholes")
	hwOnly := runFor(t, p, p.YuktaHWSSVOSHeuristic(DefaultHWParams()), "blackscholes")
	dec := runFor(t, p, p.DecoupledHeuristic(), "blackscholes")
	mono := runFor(t, p, p.MonolithicLQG(), "blackscholes")

	if full.ExD >= base.ExD {
		t.Errorf("Yukta full E×D %.0f should beat baseline %.0f", full.ExD, base.ExD)
	}
	if hwOnly.ExD >= base.ExD {
		t.Errorf("Yukta HW-only E×D %.0f should beat baseline %.0f", hwOnly.ExD, base.ExD)
	}
	if dec.ExD <= base.ExD {
		t.Errorf("decoupled E×D %.0f should be worse than baseline %.0f", dec.ExD, base.ExD)
	}
	if mono.ExD >= base.ExD {
		t.Errorf("monolithic LQG E×D %.0f should beat baseline %.0f", mono.ExD, base.ExD)
	}
	if full.ExD >= mono.ExD {
		t.Errorf("Yukta full E×D %.0f should beat monolithic LQG %.0f", full.ExD, mono.ExD)
	}
	// Yukta also finishes faster than the baseline (Fig. 9b).
	if full.TimeS >= base.TimeS {
		t.Errorf("Yukta full time %.1f should beat baseline %.1f", full.TimeS, base.TimeS)
	}
	t.Logf("ExD normalized to baseline: full=%.2f hwOnly=%.2f mono=%.2f decoupled=%.2f",
		full.ExD/base.ExD, hwOnly.ExD/base.ExD, mono.ExD/base.ExD, dec.ExD/base.ExD)
}

// TestYuktaPowerMorphology checks the Figure 10 narrative: the Yukta full
// scheme's big-cluster power has fewer large swings than the decoupled
// heuristic's.
func TestYuktaPowerMorphology(t *testing.T) {
	p := testPlatform(t)
	full := runFor(t, p, p.YuktaFullSSV(DefaultHWParams(), DefaultOSParams()), "blackscholes")
	dec := runFor(t, p, p.DecoupledHeuristic(), "blackscholes")
	if full.BigPower.Summarize().Std >= dec.BigPower.Summarize().Std {
		t.Errorf("Yukta power std %.2f should be below decoupled %.2f",
			full.BigPower.Summarize().Std, dec.BigPower.Summarize().Std)
	}
}

// TestFixedTargetTracking checks the §VI-E1 setup: with fixed feasible
// targets the SSV stack holds performance near the target.
func TestFixedTargetTracking(t *testing.T) {
	p := testPlatform(t)
	hw, err := p.NewFixedHWSession(DefaultHWParams(), []float64{5.5, 2.5, 0.2, 70})
	if err != nil {
		t.Fatal(err)
	}
	os, err := p.NewFixedOSSession(DefaultOSParams(), []float64{1, 4.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	sch := Scheme{Name: "fixed", New: func() (Session, error) {
		return &FixedTargetSession{HW: hw, OS: os}, nil
	}}
	w := workload.MustLookup("blackscholes")
	res, err := Run(p.Cfg, sch, w, RunOptions{MaxTime: 400 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// Ignore initialization and termination; mid-run performance should sit
	// near the 5.5 BIPS target (within the ±20% bound of its range would be
	// ±~2.6; demand much better than that on average).
	mid := res.Perf.MeanAbove(40)
	if mid < 3.8 || mid > 7.2 {
		t.Errorf("fixed-target performance settled at %.2f, want near 5.5", mid)
	}
}

// TestYuktaSurvivesSensorNoise is the failure-injection check: with noisy
// power/temperature sensors (±0.15 W on a 3.3 W signal) the SSV stack must
// still complete, stay clear of sustained firmware fights, and keep its E×D
// within a modest factor of the clean run — the robustness the uncertainty
// guardband pays for.
func TestYuktaSurvivesSensorNoise(t *testing.T) {
	p := testPlatform(t)
	clean := runFor(t, p, p.YuktaFullSSV(DefaultHWParams(), DefaultOSParams()), "blackscholes")

	noisyCfg := p.Cfg
	noisyCfg.SensorNoiseStd = 0.15
	noisyCfg.SensorNoiseSeed = 7
	w := workload.MustLookup("blackscholes")
	res, err := Run(noisyCfg, p.YuktaFullSSV(DefaultHWParams(), DefaultOSParams()), w, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("noisy run did not complete")
	}
	if res.ExD > clean.ExD*1.35 {
		t.Errorf("sensor noise degraded E×D %.0f -> %.0f (more than 35%%)", clean.ExD, res.ExD)
	}
	if res.EmergencyEvents > clean.EmergencyEvents+25 {
		t.Errorf("noise caused %d emergencies (clean: %d)", res.EmergencyEvents, clean.EmergencyEvents)
	}
}
