package core

import (
	"fmt"
	"time"

	"yukta/internal/board"
	"yukta/internal/fault"
	"yukta/internal/obs"
	"yukta/internal/sched"
	"yukta/internal/workload"
)

// Engine selects the simulation core that advances a run through time.
//
// Both engines execute identical per-interval physics and controller steps
// and are byte-identical in every observable output (results, per-board
// traces, fleet traces) at any parallelism; they differ only in how the
// clock finds the next board to step. The golden-trace suite and
// TestEngineEquivalence pin the equivalence.
type Engine string

const (
	// EngineEvent is the shared-clock discrete-event engine (the default).
	// Board wakes, budget reallocations and trace flushes are timed events
	// on a deterministic heap (internal/sched): a finished board falls out
	// of the clock entirely, and a live board batches every control
	// interval up to its next interaction point — the reallocation barrier
	// where its power cap can change — into a single wake, eliminating the
	// per-interval pool barrier and the per-interval scan over all boards.
	EngineEvent Engine = "event"
	// EngineLockstep is the reference engine: every board is visited on
	// every control interval under a per-interval pool barrier. It is kept
	// as the executable specification the event engine is tested against.
	EngineLockstep Engine = "lockstep"
)

// resolve maps the zero value to the default engine and rejects unknown
// names.
func (e Engine) resolve() (Engine, error) {
	switch e {
	case "", EngineEvent:
		return EngineEvent, nil
	case EngineLockstep:
		return EngineLockstep, nil
	}
	return "", fmt.Errorf("core: unknown engine %q (want %q or %q)", e, EngineEvent, EngineLockstep)
}

// ParseEngine validates an -engine flag value ("", "event" or "lockstep")
// and returns the Engine it selects.
func ParseEngine(s string) (Engine, error) { return Engine(s).resolve() }

// Event kinds of the simulation engines, in execution order within one
// instant: coordinator work (budget reallocation) strictly precedes the
// board wakes it influences, and board wakes at the same instant order by
// board index. This ordering is what makes the event engine a drop-in
// replacement for the lockstep loop's "reallocate, then step every board"
// interval structure.
const (
	evRealloc int8 = iota
	evWake
)

// soloRun is the per-run state shared by both engines of Run: the loop body
// is identical; only the schedule that invokes it differs.
type soloRun struct {
	w        workload.Workload
	b        *board.Board
	sess     Session
	inj      *fault.Injector
	opt      *RunOptions
	res      *RunResult
	observe  bool
	lat      *obs.Histogram
	hp       healthProbe
	fp       flightProber
	maxSteps int

	prevFaults fault.Stats
	sensors    board.Sensors

	// counted latches countOnce so a run folds into the metrics registry at
	// most once, however many times its result is finalized.
	counted bool
}

// step executes control interval i: advance the fault injector, run the
// board physics, invoke the controller stack, and feed the observation
// taps. It is the single definition of "one control interval" for both
// engines.
func (r *soloRun) step(i int) {
	if r.inj != nil {
		r.inj.Advance(r.b)
	}
	r.sensors = r.b.Run(r.w, r.opt.Interval)
	var t0 time.Time
	if r.observe {
		t0 = time.Now()
	}
	r.sess.Step(r.sensors, r.b, r.w.Profile().Threads)
	if r.observe {
		latNS := time.Since(t0).Nanoseconds()
		if r.lat != nil {
			r.lat.Observe(float64(latNS) / 1e3)
		}
		if r.opt.Trace != nil {
			recordInterval(r.opt.Trace, i, r.sensors, r.b, r.inj, &r.prevFaults, r.hp, r.fp, latNS)
		}
	}
	if !r.opt.SkipSeries {
		r.res.BigPower.Add(r.sensors.TimeS, r.sensors.BigPowerW)
		r.res.LittlePower.Add(r.sensors.TimeS, r.sensors.LittlePowerW)
		r.res.Perf.Add(r.sensors.TimeS, r.sensors.BIPS)
		r.res.Temp.Add(r.sensors.TimeS, r.sensors.TempC)
		r.res.BigFreq.Add(r.sensors.TimeS, r.b.EffectiveBigFreq())
	}
}

// runLockstep advances the run one interval at a time — the reference
// schedule.
func (r *soloRun) runLockstep() {
	for i := 0; i < r.maxSteps && !r.w.Done(); i++ {
		r.step(i)
	}
}

// runEvent advances the run on the discrete-event clock. A solo board has
// no external interaction points before MaxTime — no fleet layer can change
// its cap mid-run — so the next-wake computation degenerates to a single
// wake whose batch is every remaining interval: the controller still steps
// each interval (its dynamics are per-interval state, so anything coarser
// would change the trace), but the clock is consulted once instead of
// maxSteps times.
func (r *soloRun) runEvent() {
	h := sched.NewHeap(1)
	h.Push(sched.Event{Time: 0, Kind: evWake})
	for h.Len() > 0 {
		e := h.Pop()
		if e.Kind != evWake {
			continue
		}
		for i := e.Time; i < r.maxSteps && !r.w.Done(); i++ {
			r.step(i)
		}
		// Completion or MaxTime: nothing reschedules, the clock drains.
	}
}
