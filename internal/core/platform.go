package core

import (
	"fmt"
	"sync"

	"yukta/internal/board"
	"yukta/internal/heuristic"
	"yukta/internal/lqgctl"
	"yukta/internal/lti"
	"yukta/internal/obs"
	"yukta/internal/robust"
	"yukta/internal/ssvctl"
)

// Platform bundles everything derived from one identification campaign on
// one board configuration: the training data, the fitted models for every
// controller variant, and the signal scalings. Experiments construct it once
// and synthesize controllers from it.
type Platform struct {
	Cfg  board.Config
	Lim  heuristic.Limits
	Data *TrainingData

	HW, OS, HWOnly, OSOnly, Mono *lti.StateSpace

	// Caches of validated controllers: synthesis plus validation costs a few
	// seconds, and experiment sweeps reuse the same designs across many runs.
	// Each key holds a single-flight entry so that concurrent callers (the
	// experiment harness fans runs across a worker pool) synthesize a given
	// design exactly once and never serialize behind an unrelated key's
	// synthesis — the map mutex protects only the entry lookup.
	mu      sync.Mutex
	hwCache map[HWParams]*hwEntry
	osCache map[OSParams]*osEntry

	// Single-flight caches for the parameterless LQG baseline designs, so
	// concurrent runs of the §VI-B schemes share one synthesis.
	monoLQG   lqgEntry
	decoupLQG decoupEntry

	// metrics, when attached, counts controller-cache hits and misses
	// (synth_cache_hits_total / synth_cache_misses_total).
	metrics *obs.Registry
}

// AttachMetrics registers the registry the platform's controller caches
// count their hits and misses into (nil detaches). Safe to call
// concurrently with cache lookups, but conventionally done once right after
// NewPlatform.
func (p *Platform) AttachMetrics(r *obs.Registry) {
	p.mu.Lock()
	p.metrics = r
	p.mu.Unlock()
}

// countCache records one controller-cache access against the attached
// registry (m may be nil).
func countCache(m *obs.Registry, hit bool) {
	if m == nil {
		return
	}
	if hit {
		m.Counter("synth_cache_hits_total").Add(1)
	} else {
		m.Counter("synth_cache_misses_total").Add(1)
	}
}

// hwEntry is a single-flight cache slot for one hardware design.
type hwEntry struct {
	once sync.Once
	ctl  *robust.Controller
	err  error
}

// osEntry is a single-flight cache slot for one software design.
type osEntry struct {
	once sync.Once
	ctl  *robust.Controller
	err  error
}

// lqgEntry is a single-flight cache slot for the monolithic LQG design.
// seen (guarded by the platform mutex) marks the first access, for the
// cache hit/miss accounting.
type lqgEntry struct {
	once sync.Once
	ctl  *robust.Controller
	err  error
	seen bool
}

// decoupEntry is a single-flight cache slot for the decoupled LQG pair,
// with the same first-access marker as lqgEntry.
type decoupEntry struct {
	once   sync.Once
	hw, os *robust.Controller
	err    error
	seen   bool
}

// NewPlatform collects training data on the given board configuration and
// fits the four models used by the schemes.
func NewPlatform(cfg board.Config, opt IdentifyOptions) (*Platform, error) {
	td, err := CollectTrainingData(cfg, opt)
	if err != nil {
		return nil, err
	}
	p := &Platform{Cfg: cfg, Lim: heuristic.DefaultLimits(), Data: td}
	if p.HW, err = td.HWModel(); err != nil {
		return nil, err
	}
	if p.OS, err = td.OSModel(); err != nil {
		return nil, err
	}
	if p.HWOnly, err = td.HWOnlyModel(); err != nil {
		return nil, err
	}
	if p.OSOnly, err = td.OSOnlyModel(); err != nil {
		return nil, err
	}
	if p.Mono, err = td.MonoModel(); err != nil {
		return nil, err
	}
	return p, nil
}

// HWParams are the designer knobs of the hardware controller (Table II),
// exposed for the sensitivity studies of §VI-E.
type HWParams struct {
	// PerfBoundFrac is the performance deviation bound as a fraction of the
	// signal range (paper default ±20%).
	PerfBoundFrac float64
	// CriticalBoundFrac is the bound for the board-integrity outputs —
	// cluster powers and temperature (paper default ±10%).
	CriticalBoundFrac float64
	// Uncertainty is the guardband (paper default ±40%).
	Uncertainty float64
	// InputWeight applies to all four inputs (paper default 1; §VI-E3 sweeps
	// 0.5–2).
	InputWeight float64
}

// DefaultHWParams returns Table II's values.
func DefaultHWParams() HWParams {
	return HWParams{PerfBoundFrac: 0.2, CriticalBoundFrac: 0.1, Uncertainty: 0.4, InputWeight: 1}
}

// OSParams are the designer knobs of the software controller (Table III).
type OSParams struct {
	// BoundFrac is the deviation bound for all three outputs (paper ±20%).
	BoundFrac float64
	// Uncertainty is the guardband (paper ±50%).
	Uncertainty float64
	// InputWeight applies to all three inputs (paper 2 — twice the HW
	// controller's, §IV-B).
	InputWeight float64
}

// DefaultOSParams returns Table III's values.
func DefaultOSParams() OSParams {
	return OSParams{BoundFrac: 0.2, Uncertainty: 0.5, InputWeight: 2}
}

// fracToNorm converts "fraction of the physical range" to normalized units
// (the normalized range [-1,1] spans 2 units).
func fracToNorm(frac float64) float64 { return 2 * frac }

// quantaFor returns the normalized quantization step of the given input
// columns.
func (p *Platform) quantaFor(cols []int) []float64 {
	scales := inputScales(p.Cfg)
	levels := inputLevels(p.Cfg)
	out := make([]float64, len(cols))
	for i, c := range cols {
		step := 0.0
		if len(levels[c]) > 1 {
			step = levels[c][1] - levels[c][0]
		}
		out[i] = scales[c].QuantumNormalized(step)
	}
	return out
}

// SynthesizeHWSSV runs the SSV design loop for the hardware controller of
// Table II with the given designer knobs (without the Fig. 3 validation
// stage; see SynthesizeHWSSVValidated).
func (p *Platform) SynthesizeHWSSV(hp HWParams) (*robust.Controller, error) {
	return p.synthesizeHWSSVAt(hp, 0)
}

// DesignHWAtPenalty synthesizes a single hardware-controller candidate at a
// fixed penalty and reports its SSV (for the Fig. 16a sensitivity study).
func (p *Platform) DesignHWAtPenalty(hp HWParams, rho float64) (*robust.Controller, error) {
	return robust.DesignAtPenalty(p.hwSpec(hp, 0), rho)
}

// synthesizeHWSSVAt synthesizes with an explicit penalty floor.
func (p *Platform) synthesizeHWSSVAt(hp HWParams, minPenalty float64) (*robust.Controller, error) {
	return robust.Synthesize(p.hwSpec(hp, minPenalty))
}

// hwSpec builds the Table II specification.
func (p *Platform) hwSpec(hp HWParams, minPenalty float64) *robust.Spec {
	return &robust.Spec{
		Plant:       p.HW,
		NumControls: 4,
		InputWeights: []float64{
			hp.InputWeight, hp.InputWeight, hp.InputWeight, hp.InputWeight,
		},
		InputQuanta: p.quantaFor(hwInCols[:4]),
		OutputBounds: []float64{
			fracToNorm(hp.PerfBoundFrac),     // performance ±20%
			fracToNorm(hp.CriticalBoundFrac), // power big ±10%
			fracToNorm(hp.CriticalBoundFrac), // power little ±10%
			fracToNorm(hp.CriticalBoundFrac), // temperature ±10%
		},
		Uncertainty: hp.Uncertainty,
		// Reference magnitudes match the optimizer: performance and power
		// targets move in small steps, the temperature target is fixed.
		TargetScales: []float64{0.15, 0.12, 0.12, 0.02},
		MinPenalty:   minPenalty,
	}
}

// SynthesizeOSSSV runs the SSV design loop for the software controller of
// Table III (without the Fig. 3 validation stage).
func (p *Platform) SynthesizeOSSSV(op OSParams) (*robust.Controller, error) {
	return p.synthesizeOSSSVAt(op, 0)
}

// synthesizeOSSSVAt synthesizes with an explicit penalty floor.
func (p *Platform) synthesizeOSSSVAt(op OSParams, minPenalty float64) (*robust.Controller, error) {
	spec := &robust.Spec{
		Plant:        p.OS,
		NumControls:  3,
		InputWeights: []float64{op.InputWeight, op.InputWeight, op.InputWeight},
		InputQuanta:  p.quantaFor(osInCols[:3]),
		OutputBounds: []float64{
			fracToNorm(op.BoundFrac), fracToNorm(op.BoundFrac), fracToNorm(op.BoundFrac),
		},
		Uncertainty:  op.Uncertainty,
		TargetScales: []float64{0.1, 0.15, 0.1},
		MinPenalty:   minPenalty,
	}
	return robust.Synthesize(spec)
}

// HWControllerValidated returns the cached validated hardware controller
// for the given knobs, designing it on first use. Concurrent callers with
// the same knobs share one synthesis (single-flight); callers with different
// knobs synthesize in parallel.
func (p *Platform) HWControllerValidated(hp HWParams) (*robust.Controller, error) {
	p.mu.Lock()
	if p.hwCache == nil {
		p.hwCache = make(map[HWParams]*hwEntry)
	}
	e, ok := p.hwCache[hp]
	if !ok {
		e = &hwEntry{}
		p.hwCache[hp] = e
	}
	m := p.metrics
	p.mu.Unlock()
	countCache(m, ok)
	e.once.Do(func() { e.ctl, e.err = p.SynthesizeHWSSVValidated(hp) })
	return e.ctl, e.err
}

// OSControllerValidated returns the cached validated software controller for
// the given knobs, designing it on first use (validated against the default
// hardware controller). Single-flight per knob set, as for the hardware
// cache.
func (p *Platform) OSControllerValidated(op OSParams) (*robust.Controller, error) {
	hwCtl, err := p.HWControllerValidated(DefaultHWParams())
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	if p.osCache == nil {
		p.osCache = make(map[OSParams]*osEntry)
	}
	e, ok := p.osCache[op]
	if !ok {
		e = &osEntry{}
		p.osCache[op] = e
	}
	m := p.metrics
	p.mu.Unlock()
	countCache(m, ok)
	e.once.Do(func() { e.ctl, e.err = p.SynthesizeOSSSVValidated(op, hwCtl) })
	return e.ctl, e.err
}

// MonolithicLQGController returns the cached §VI-B monolithic LQG design,
// synthesizing it on first use (single-flight).
func (p *Platform) MonolithicLQGController() (*robust.Controller, error) {
	e := &p.monoLQG
	p.mu.Lock()
	m, hit := p.metrics, e.seen
	e.seen = true
	p.mu.Unlock()
	countCache(m, hit)
	e.once.Do(func() { e.ctl, e.err = p.SynthesizeMonolithicLQG() })
	return e.ctl, e.err
}

// DecoupledLQGControllers returns the cached §VI-B decoupled LQG pair,
// synthesizing it on first use (single-flight).
func (p *Platform) DecoupledLQGControllers() (hw, os *robust.Controller, err error) {
	e := &p.decoupLQG
	p.mu.Lock()
	m, hit := p.metrics, e.seen
	e.seen = true
	p.mu.Unlock()
	countCache(m, hit)
	e.once.Do(func() { e.hw, e.os, e.err = p.SynthesizeDecoupledLQG() })
	return e.hw, e.os, e.err
}

// WarmCaches pre-synthesizes the validated controllers for every given
// parameter set, plus (when warmLQG is set) the LQG baseline designs, using
// one goroutine per distinct design. It exists so a worker pool can fan out
// experiment runs immediately afterwards without any worker paying a
// synthesis on its critical path; the single-flight caches make concurrent
// warming (or warming concurrent with running) safe and duplicate-free. The
// first error encountered is returned, but every design is still attempted.
func (p *Platform) WarmCaches(hws []HWParams, ops []OSParams, warmLQG bool) error {
	var wg sync.WaitGroup
	errc := make(chan error, len(hws)+len(ops)+1)
	for _, hp := range hws {
		wg.Add(1)
		go func(hp HWParams) {
			defer wg.Done()
			if _, err := p.HWControllerValidated(hp); err != nil {
				errc <- err
			}
		}(hp)
	}
	for _, op := range ops {
		wg.Add(1)
		go func(op OSParams) {
			defer wg.Done()
			if _, err := p.OSControllerValidated(op); err != nil {
				errc <- err
			}
		}(op)
	}
	if warmLQG {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.MonolithicLQGController(); err != nil {
				errc <- err
				return
			}
			if _, _, err := p.DecoupledLQGControllers(); err != nil {
				errc <- err
			}
		}()
	}
	wg.Wait()
	close(errc)
	return <-errc
}

// NewHWRuntime wires a synthesized hardware controller to the board signals.
func (p *Platform) NewHWRuntime(ctl *robust.Controller) (*ssvctl.Runtime, error) {
	return ssvctl.New(ssvctl.Config{
		Controller:     ctl,
		OutputScales:   scalesFor(p.Data.OutScales, hwOutCols),
		ExternalScales: scalesFor(inputScales(p.Cfg), hwInCols[4:]),
		InputScales:    scalesFor(inputScales(p.Cfg), hwInCols[:4]),
		InputLevels:    levelsFor(inputLevels(p.Cfg), hwInCols[:4]),
		// Hotplug one core and at most two DVFS steps per interval.
		SlewLevels: []int{1, 1, 2, 2},
	})
}

// NewOSRuntime wires a synthesized software controller to the board signals.
func (p *Platform) NewOSRuntime(ctl *robust.Controller) (*ssvctl.Runtime, error) {
	return ssvctl.New(ssvctl.Config{
		Controller:     ctl,
		OutputScales:   scalesFor(p.Data.OutScales, osOutCols),
		ExternalScales: scalesFor(inputScales(p.Cfg), osInCols[3:]),
		InputScales:    scalesFor(inputScales(p.Cfg), osInCols[:3]),
		InputLevels:    levelsFor(inputLevels(p.Cfg), osInCols[:3]),
		// Migrate at most two threads and shift packing one level per
		// interval.
		SlewLevels: []int{2, 1, 1},
	})
}

// SynthesizeMonolithicLQG builds the single LQG controller that manages both
// layers (§VI-B, the use in [35]): all seven actuators are controls and all
// seven observable signals are outputs.
func (p *Platform) SynthesizeMonolithicLQG() (*robust.Controller, error) {
	weights := make([]float64, numInputs)
	for i := range weights {
		weights[i] = 1
	}
	return robust.SynthesizeLQG(&robust.Spec{
		Plant:        p.Mono, // 7 inputs → 7 outputs
		NumControls:  numInputs,
		InputWeights: weights,
		InputQuanta:  p.quantaFor(hwInCols),
		OutputBounds: []float64{
			fracToNorm(0.2), fracToNorm(0.1), fracToNorm(0.1), fracToNorm(0.1),
			fracToNorm(0.2), fracToNorm(0.2), fracToNorm(0.2),
		},
		Uncertainty: 0.4,
	})
}

// SynthesizeDecoupledLQG builds the two independent LQG controllers (no
// external signals) of the Decoupled HW LQG + OS LQG scheme.
func (p *Platform) SynthesizeDecoupledLQG() (hw, os *robust.Controller, err error) {
	hw, err = robust.SynthesizeLQG(&robust.Spec{
		Plant:        p.HWOnly,
		NumControls:  4,
		InputWeights: []float64{1, 1, 1, 1},
		InputQuanta:  p.quantaFor(hwOnlyInCols),
		OutputBounds: []float64{
			fracToNorm(0.2), fracToNorm(0.1), fracToNorm(0.1), fracToNorm(0.1),
		},
		Uncertainty: 0.4,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("core: decoupled HW LQG: %w", err)
	}
	os, err = robust.SynthesizeLQG(&robust.Spec{
		Plant:        p.OSOnly,
		NumControls:  3,
		InputWeights: []float64{2, 2, 2},
		InputQuanta:  p.quantaFor(osOnlyInCols),
		OutputBounds: []float64{fracToNorm(0.2), fracToNorm(0.2), fracToNorm(0.2)},
		Uncertainty:  0.5,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("core: decoupled OS LQG: %w", err)
	}
	return hw, os, nil
}

// NewDecoupledHWLQGRuntime wires the decoupled hardware LQG controller (no
// external signals) to the board signals — exposed for the §VI-B
// convergence experiment.
func (p *Platform) NewDecoupledHWLQGRuntime(ctl *robust.Controller) (*lqgctl.Runtime, error) {
	return p.newLQGRuntime(ctl, hwOnlyInCols, hwOutCols)
}

// newLQGRuntime wires an LQG controller to board signals given its column
// sets.
func (p *Platform) newLQGRuntime(ctl *robust.Controller, inCols, outCols []int) (*lqgctl.Runtime, error) {
	nu := ctl.NumCtrl
	return lqgctl.New(lqgctl.Config{
		Controller:     ctl,
		OutputScales:   scalesFor(p.Data.OutScales, outCols),
		ExternalScales: scalesFor(inputScales(p.Cfg), inCols[nu:]),
		InputScales:    scalesFor(inputScales(p.Cfg), inCols[:nu]),
		InputLevels:    levelsFor(inputLevels(p.Cfg), inCols[:nu]),
	})
}
