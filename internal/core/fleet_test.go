package core

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"yukta/internal/fault"
	"yukta/internal/fleet"
	"yukta/internal/obs"
	"yukta/internal/workload"
)

// fleetTestMembers builds a small heterogeneous fleet over the quick mix.
func fleetTestMembers(t *testing.T, p *Platform, n int, sch Scheme) []FleetMember {
	t.Helper()
	apps := []string{"gamess", "mcf", "blackscholes", "streamcluster"}
	members := make([]FleetMember, n)
	for i := range members {
		w, err := workload.Lookup(apps[i%len(apps)])
		if err != nil {
			t.Fatal(err)
		}
		members[i] = FleetMember{Scheme: sch, Workload: w}
	}
	return members
}

// fleetTestOptions is a short bounded run: 4 boards for 60 simulated seconds
// is enough for several reallocation periods and fault activity.
func fleetTestOptions(policy fleet.Policy) FleetOptions {
	return FleetOptions{
		Budget:  fleet.Budget{TotalW: 8.8, MinW: 1.0, MaxW: 4.5},
		Policy:  policy,
		MaxTime: 60 * time.Second,
	}
}

// TestFleetConservation is the cross-scheme conservation table: for every
// budget policy × fault class (plus clean) × scheme combination, the sum of
// allocated caps must stay within the fleet budget at every recorded
// interval. Run under -race in CI, this is also the fleet runner's data-race
// canary.
func TestFleetConservation(t *testing.T) {
	p := testPlatform(t)
	schemes := []Scheme{
		p.CoordinatedHeuristic(),
		p.YuktaFullSSV(DefaultHWParams(), DefaultOSParams()),
	}
	classes := append([]string{"clean"}, fault.ClassNames()...)
	for _, sch := range schemes {
		for _, polName := range []string{"equal", "feedback"} {
			for _, class := range classes {
				pol, err := fleet.NewPolicy(polName)
				if err != nil {
					t.Fatal(err)
				}
				opt := fleetTestOptions(pol)
				if class != "clean" {
					opt.Faults = fault.PresetClass(3, 1.0, class)
				}
				rec := obs.NewFleetRecorder(0)
				opt.Trace = rec
				res, err := FleetRun(p.Cfg, fleetTestMembers(t, p, 4, sch), opt)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", sch.Name, polName, class, err)
				}
				if rec.Len() != res.Steps {
					t.Fatalf("%s/%s/%s: %d records for %d steps", sch.Name, polName, class, rec.Len(), res.Steps)
				}
				for i := 0; i < rec.Len(); i++ {
					r := rec.At(i)
					if r.AllocW > r.BudgetW+1e-9 {
						t.Fatalf("%s/%s/%s: step %d allocates %.6f W over the %.1f W budget",
							sch.Name, polName, class, r.Step, r.AllocW, r.BudgetW)
					}
					if r.Live+r.Done != 4 {
						t.Fatalf("%s/%s/%s: step %d live %d + done %d != 4",
							sch.Name, polName, class, r.Step, r.Live, r.Done)
					}
					if r.CapMaxW > 4.5+1e-9 || (r.Live > 0 && r.CapMinW < 1.0-1e-9) {
						t.Fatalf("%s/%s/%s: step %d caps [%.3f, %.3f] outside bounds",
							sch.Name, polName, class, r.Step, r.CapMinW, r.CapMaxW)
					}
				}
				if res.Reallocations == 0 {
					t.Fatalf("%s/%s/%s: no reallocations in %d steps", sch.Name, polName, class, res.Steps)
				}
			}
		}
	}
}

// fleetTraces runs one faulted fleet and returns the fleet JSONL plus every
// per-board JSONL, concatenated deterministically.
func fleetTraces(t *testing.T, p *Platform, parallelism int) []byte {
	t.Helper()
	sch := p.YuktaFullSSV(DefaultHWParams(), DefaultOSParams())
	members := fleetTestMembers(t, p, 8, sch)
	pol, err := fleet.NewPolicy("feedback")
	if err != nil {
		t.Fatal(err)
	}
	opt := fleetTestOptions(pol)
	opt.Budget.TotalW = 17.6
	opt.Faults = fault.Preset(5, 1.0)
	opt.Parallelism = parallelism
	opt.Trace = obs.NewFleetRecorder(0)
	boardRecs := make([]*obs.Recorder, len(members))
	for i := range boardRecs {
		boardRecs[i] = obs.NewRecorder(0)
	}
	opt.BoardTraces = boardRecs
	if _, err := FleetRun(p.Cfg, members, opt); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := opt.Trace.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	for i, rec := range boardRecs {
		fmt.Fprintf(&buf, "--- board %d ---\n", i)
		if err := rec.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestFleetTraceParallelDeterminism asserts the fleet determinism contract:
// the coordination-layer trace and every per-board trace are byte-identical
// whether boards step sequentially or on eight workers.
func TestFleetTraceParallelDeterminism(t *testing.T) {
	p := testPlatform(t)
	seq := fleetTraces(t, p, 1)
	par := fleetTraces(t, p, 8)
	if len(seq) == 0 {
		t.Fatal("empty traces")
	}
	if !bytes.Equal(seq, par) {
		i := 0
		for i < len(seq) && i < len(par) && seq[i] == par[i] {
			i++
		}
		lo, hi := i-40, i+40
		if lo < 0 {
			lo = 0
		}
		if hi > len(seq) {
			hi = len(seq)
		}
		t.Fatalf("traces diverge at byte %d:\nseq: %q\npar: %q", i, seq[lo:hi], par[min(hi, len(par)):])
	}
}

// TestFleetBoardZeroPairsWithSolo asserts the common-random-numbers pairing:
// board 0 of a fleet derives the identical fault stream as the solo run of
// the same (scheme, app), because RunKey with board index 0 is byte-for-byte
// the historical two-argument key.
func TestFleetBoardZeroPairsWithSolo(t *testing.T) {
	if got, want := fault.RunKey("s", "a", 0), fault.RunKey("s", "a"); got != want {
		t.Fatalf("RunKey with board 0 = %q, want %q", got, want)
	}
	if fault.RunKey("s", "a", 1) == fault.RunKey("s", "a") {
		t.Fatal("board 1 must not alias the solo key")
	}
}

// TestFleetRunValidation exercises the entry-point guards.
func TestFleetRunValidation(t *testing.T) {
	p := testPlatform(t)
	sch := p.CoordinatedHeuristic()
	members := fleetTestMembers(t, p, 4, sch)
	if _, err := FleetRun(p.Cfg, nil, fleetTestOptions(fleet.EqualShare{})); err == nil {
		t.Fatal("empty fleet accepted")
	}
	opt := fleetTestOptions(nil)
	if _, err := FleetRun(p.Cfg, members, opt); err == nil {
		t.Fatal("nil policy accepted")
	}
	opt = fleetTestOptions(fleet.EqualShare{})
	opt.Budget.TotalW = 2 // cannot cover 4 × 1 W floors
	if _, err := FleetRun(p.Cfg, members, opt); err == nil {
		t.Fatal("infeasible budget accepted")
	}
	opt = fleetTestOptions(fleet.EqualShare{})
	opt.BoardTraces = make([]*obs.Recorder, 2)
	if _, err := FleetRun(p.Cfg, members, opt); err == nil {
		t.Fatal("mis-sized BoardTraces accepted")
	}
}
