package core

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"yukta/internal/fault"
	"yukta/internal/fleet"
	"yukta/internal/obs"
	"yukta/internal/workload"
)

// equivSchemes is the scheme set the cross-engine property test sweeps — the
// same five families the golden suite pins.
func equivSchemes(p *Platform) []Scheme {
	hp, op := DefaultHWParams(), DefaultOSParams()
	return []Scheme{
		p.CoordinatedHeuristic(),
		p.DecoupledHeuristic(),
		p.MonolithicLQG(),
		p.YuktaFullSSV(hp, op),
		p.SupervisedYuktaSSV(hp, op),
	}
}

// equivClasses is clean plus every isolated fault class.
func equivClasses() []string {
	return append([]string{"clean"}, fault.ClassNames()...)
}

// soloFingerprint executes one solo run on the given engine and returns its
// full observable output: the per-interval JSONL trace followed by every
// scalar of the result.
func soloFingerprint(t *testing.T, p *Platform, sch Scheme, class string, eng Engine) []byte {
	t.Helper()
	w, err := workload.Lookup("gamess")
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder(0)
	opt := RunOptions{
		MaxTime:    20 * time.Second,
		SkipSeries: true,
		Trace:      rec,
		Engine:     eng,
	}
	if class != "clean" {
		opt.Faults = fault.PresetClass(7, 1.0, class)
	}
	res, err := Run(p.Cfg, sch, w, opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&buf, "result: time=%v energy=%v exd=%v completed=%v emergencies=%d faults=%+v\n",
		res.TimeS, res.EnergyJ, res.ExD, res.Completed, res.EmergencyEvents, res.Faults)
	if res.Supervisor != nil {
		fmt.Fprintf(&buf, "supervisor: %+v\n", *res.Supervisor)
	}
	return buf.Bytes()
}

// fleetFingerprint executes one fleet run on the given engine and returns
// the fleet JSONL trace, every per-board JSONL trace, and every scalar of
// the result.
func fleetFingerprint(t *testing.T, p *Platform, sch Scheme, class string, n int, eng Engine) []byte {
	t.Helper()
	members := fleetTestMembers(t, p, n, sch)
	pol, err := fleet.NewPolicy("feedback")
	if err != nil {
		t.Fatal(err)
	}
	opt := FleetOptions{
		Budget:      fleet.Budget{TotalW: 2.2 * float64(n), MinW: 1.0, MaxW: 4.5},
		Policy:      pol,
		MaxTime:     30 * time.Second,
		Parallelism: 4,
		Engine:      eng,
	}
	if class != "clean" {
		opt.Faults = fault.PresetClass(7, 1.0, class)
	}
	opt.Trace = obs.NewFleetRecorder(0)
	boardRecs := make([]*obs.Recorder, n)
	for i := range boardRecs {
		boardRecs[i] = obs.NewRecorder(0)
	}
	opt.BoardTraces = boardRecs
	res, err := FleetRun(p.Cfg, members, opt)
	if err != nil {
		t.Fatal(err)
	}
	return fingerprintFleetOutput(t, opt.Trace, boardRecs, res)
}

// fingerprintFleetOutput serializes a fleet run's observable output — the
// fleet trace, every per-board trace, and the result scalars shared by flat
// and hierarchical runs — for byte-level comparison.
func fingerprintFleetOutput(t *testing.T, trace *obs.FleetRecorder,
	boardRecs []*obs.Recorder, res *FleetResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	for i, rec := range boardRecs {
		fmt.Fprintf(&buf, "--- board %d ---\n", i)
		if err := rec.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
	}
	fmt.Fprintf(&buf, "result: steps=%d reallocs=%d makespan=%v energy=%v edp=%v geoexd=%v\n",
		res.Steps, res.Reallocations, res.MakespanS, res.EnergyJ, res.EDP, res.GeoExD)
	for _, br := range res.Boards {
		fmt.Fprintf(&buf, "board %d: %+v\n", br.Board, br)
	}
	return buf.Bytes()
}

// diffFingerprints reports the first diverging byte with context.
func diffFingerprints(t *testing.T, name string, lock, ev []byte) {
	t.Helper()
	if bytes.Equal(lock, ev) {
		return
	}
	i := 0
	for i < len(lock) && i < len(ev) && lock[i] == ev[i] {
		i++
	}
	lo := i - 60
	if lo < 0 {
		lo = 0
	}
	clip := func(b []byte) []byte {
		hi := i + 60
		if hi > len(b) {
			hi = len(b)
		}
		if lo > len(b) {
			return nil
		}
		return b[lo:hi]
	}
	t.Fatalf("%s: engines diverge at byte %d:\nlockstep: %q\nevent:    %q", name, i, clip(lock), clip(ev))
}

// TestEngineEquivalence is the cross-engine property test: for every scheme ×
// fault class (clean plus every isolated class) × topology (solo, fleet
// N∈{1,4,16}), the lockstep and event engines must produce byte-identical
// observable output — every JSONL trace record and every result scalar. CI
// runs it under -race, so it also exercises the event engine's batch
// parallelism for races.
func TestEngineEquivalence(t *testing.T) {
	p := testPlatform(t)
	fleetNs := []int{1, 4, 16}
	for _, sch := range equivSchemes(p) {
		for ci, class := range equivClasses() {
			t.Run(sch.Name+"/"+class, func(t *testing.T) {
				t.Parallel()
				lock := soloFingerprint(t, p, sch, class, EngineLockstep)
				ev := soloFingerprint(t, p, sch, class, EngineEvent)
				if len(lock) == 0 {
					t.Fatal("empty solo fingerprint")
				}
				diffFingerprints(t, "solo", lock, ev)
				ns := fleetNs
				if testing.Short() {
					// Rotate one fleet size per cell in -short mode; the
					// full matrix still covers every N per scheme.
					ns = fleetNs[ci%3 : ci%3+1]
				}
				for _, n := range ns {
					lock := fleetFingerprint(t, p, sch, class, n, EngineLockstep)
					ev := fleetFingerprint(t, p, sch, class, n, EngineEvent)
					if len(lock) == 0 {
						t.Fatalf("empty fleet fingerprint at N=%d", n)
					}
					diffFingerprints(t, fmt.Sprintf("fleet N=%d", n), lock, ev)
				}
			})
		}
	}
}

// TestParseEngine pins the -engine flag surface: the zero value selects the
// event engine, both names round-trip, junk is rejected.
func TestParseEngine(t *testing.T) {
	if eng, err := ParseEngine(""); err != nil || eng != EngineEvent {
		t.Fatalf("ParseEngine(\"\") = %v, %v", eng, err)
	}
	if eng, err := ParseEngine("event"); err != nil || eng != EngineEvent {
		t.Fatalf("ParseEngine(event) = %v, %v", eng, err)
	}
	if eng, err := ParseEngine("lockstep"); err != nil || eng != EngineLockstep {
		t.Fatalf("ParseEngine(lockstep) = %v, %v", eng, err)
	}
	if _, err := ParseEngine("warp"); err == nil {
		t.Fatal("ParseEngine accepted an unknown engine")
	}
}
