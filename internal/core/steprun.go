package core

import (
	"fmt"

	"yukta/internal/board"
	"yukta/internal/supervisor"
	"yukta/internal/workload"
)

// StepRun is an incrementally driven run: the same setup, interval body and
// epilogue as the batch Run, but advanced by explicit Step calls instead of
// running to completion. It is the session primitive the yukta-serve daemon
// hosts — a long-running service owns many StepRuns and advances each on
// request.
//
// Determinism survives hosting: a StepRun advanced in arbitrary chunk sizes
// executes exactly the soloRun.step interval sequence the batch engines
// execute, so its RunResult scalars and attached obs.Recorder trace are
// byte-identical to Run with the same options (gated by
// TestStepRunMatchesBatch and the serve package's determinism test).
//
// A StepRun is not safe for concurrent use; like a controller session, it
// belongs to one owner (the serve layer serializes access per session).
type StepRun struct {
	r    *soloRun
	next int
	// hook, when set, observes each interval Step executes (see SetStepHook).
	hook func(step int)
}

// NewStepRun builds an incrementally driven run from the same inputs as Run.
// The Engine option is validated for parity with the batch path but does not
// change scheduling here: a hosted session has exactly one board, for which
// both engines degenerate to the same per-interval sequence (see
// soloRun.runEvent).
func NewStepRun(cfg board.Config, sch Scheme, w workload.Workload, opt RunOptions) (*StepRun, error) {
	r, _, err := newSoloRun(cfg, sch, w, opt)
	if err != nil {
		return nil, err
	}
	return &StepRun{r: r}, nil
}

// Step advances the run by up to n control intervals, stopping early at
// workload completion or the MaxTime step bound, and returns how many
// intervals actually executed (0 when the run is already finished, or when
// n <= 0).
func (s *StepRun) Step(n int) int {
	done := 0
	for ; done < n && s.next < s.r.maxSteps && !s.r.w.Done(); done++ {
		s.r.step(s.next)
		s.next++
		if s.hook != nil {
			s.hook(s.next - 1)
		}
	}
	return done
}

// SetStepHook installs fn to be called after every interval Step executes,
// with the index of the interval that just ran — the serve layer's live
// session streaming rides it. Pass nil to remove. The hook observes only: it
// runs after the interval body and the flight-recorder append, so it cannot
// perturb the simulation, and the deterministic-replay path (ReplayTo) never
// invokes it. When no hook is set the cost is one nil check per interval.
func (s *StepRun) SetStepHook(fn func(step int)) { s.hook = fn }

// ReplayTo advances the run to exactly step n, the recovery primitive of
// the serve layer's write-ahead log: because the interval sequence is
// deterministic, re-executing to a logged position reconstructs the exact
// pre-crash state (trace bytes, scalars, supervisory machine). Unlike Step
// it treats falling short as an error — if the run finishes before reaching
// n, the log and the execution disagree (corrupt log, changed catalog) and
// the caller must abandon the replay rather than serve a diverged session.
// A target behind the current position is likewise an error: a StepRun
// cannot rewind.
func (s *StepRun) ReplayTo(n int) error {
	if n < s.next {
		return fmt.Errorf("core: replay target %d is behind the run's current step %d", n, s.next)
	}
	for s.next < n {
		if s.Done() {
			return fmt.Errorf("core: replay diverged: run finished at step %d before reaching logged step %d", s.next, n)
		}
		s.r.step(s.next)
		s.next++
	}
	return nil
}

// Steps returns the number of control intervals executed so far.
func (s *StepRun) Steps() int { return s.next }

// MaxSteps returns the step bound implied by RunOptions.MaxTime and the
// control interval.
func (s *StepRun) MaxSteps() int { return s.r.maxSteps }

// Done reports whether the run is finished: the workload completed or the
// MaxTime step bound was reached.
func (s *StepRun) Done() bool { return s.r.w.Done() || s.next >= s.r.maxSteps }

// Supervised reports whether the run's scheme carries the supervisory safety
// layer (and therefore supports ForceTrip).
func (s *StepRun) Supervised() bool {
	_, ok := s.r.sess.(tripForcer)
	return ok
}

// ForceTrip arms an operator-forced supervisor trip: the next interval runs
// under the fallback with a bumpless transfer, exactly as a detector-
// confirmed trip would (supervisor.CauseOperator). It reports false when the
// scheme is unsupervised or the run is already finished. The serve layer's
// graceful drain and its POST /v1/sessions/{id}/trip endpoint both ride this
// path.
func (s *StepRun) ForceTrip() bool {
	tf, ok := s.r.sess.(tripForcer)
	if !ok || s.Done() {
		return false
	}
	tf.forceTrip()
	return true
}

// SupervisorState returns the supervisory state the next interval would run
// under, and true, for supervised schemes; the zero State and false
// otherwise.
func (s *StepRun) SupervisorState() (supervisor.State, bool) {
	sp, ok := s.r.sess.(stateProber)
	if !ok {
		return 0, false
	}
	return sp.supervisorState(), true
}

// Result finalizes and returns the run's measurements so far. It may be
// called at any point — the serve layer reports it live while a session is
// still being stepped — but the canonical read is after Done; only a Done
// run folds into the attached metrics registry (once).
func (s *StepRun) Result() *RunResult {
	res := s.r.finalize()
	if s.Done() {
		s.r.countOnce()
	}
	return res
}
