package core

import (
	"testing"

	"yukta/internal/board"
)

func TestSpareComputeEquation(t *testing.T) {
	// Paper equation (2): SC = #idle_cores_on − (#threads − #cores_on).
	cases := []struct {
		coresOn, threads int
		perCore          float64
		want             float64
	}{
		// 4 cores on, 4 threads spread 1/core: no idle, no overflow → 0.
		{4, 4, 1, 0},
		// 4 cores on, 4 threads packed 2/core: 2 idle cores on → +2.
		{4, 4, 2, 2},
		// 2 cores on, 6 threads: busy 2, idle 0, overflow 4 → -4.
		{2, 6, 1, -4},
		// 4 cores on, 0 threads: all idle, negative overflow → 4 - (0-4) = 8.
		{4, 0, 1, 8},
		// Degenerate packing below 1 clamps to 1.
		{4, 4, 0.5, 0},
	}
	for _, c := range cases {
		if got := spareCompute(c.coresOn, c.threads, c.perCore); got != c.want {
			t.Errorf("spareCompute(%d,%d,%v) = %v, want %v",
				c.coresOn, c.threads, c.perCore, got, c.want)
		}
	}
}

func TestDeltaSpareCompute(t *testing.T) {
	b := board.New(board.DefaultConfig())
	b.SetBigCores(4)
	b.SetLittleCores(4)
	b.Place(board.Placement{ThreadsBig: 4, ThreadsLittle: 4, ThreadsPerBigCore: 2, ThreadsPerLittleCore: 1})
	// SC_big: busy=2, idle=2, overflow 0 → 2. SC_little: busy=4, idle=0 → 0.
	if got := deltaSpareCompute(b, 8); got != 2 {
		t.Fatalf("dSC = %v, want 2", got)
	}
	// Fewer runnable threads than placed: tb clamps to the workload's count.
	// tb=2 packed 2/core: busy 1, idle 3, overflow -2 → SC_big = 5.
	// tl=0: busy 0, idle 4, overflow -4 → SC_little = 8. dSC = -3.
	if got := deltaSpareCompute(b, 2); got != -3 {
		t.Fatalf("dSC at 2 threads = %v, want -3", got)
	}
}

func TestApplyHWRoundsAndClamps(t *testing.T) {
	b := board.New(board.DefaultConfig())
	applyHW(b, []float64{2.6, 0.4, 1.74, 9.9})
	if b.BigCores() != 3 {
		t.Fatalf("bigCores = %d, want round(2.6)=3", b.BigCores())
	}
	if b.LittleCores() != 1 {
		t.Fatalf("littleCores = %d, want clamp to 1", b.LittleCores())
	}
	if b.BigFreq() != 1.7 {
		t.Fatalf("bigFreq = %v, want quantized 1.7", b.BigFreq())
	}
	if b.LittleFreq() != 1.4 {
		t.Fatalf("littleFreq = %v, want clamp to 1.4", b.LittleFreq())
	}
}

func TestApplyOSClampsToRunnable(t *testing.T) {
	b := board.New(board.DefaultConfig())
	applyOS(b, []float64{7.4, 1.6, 1.0}, 5)
	p := b.Placement()
	if p.ThreadsBig != 5 || p.ThreadsLittle != 0 {
		t.Fatalf("placement %+v, want tb clamped to 5", p)
	}
	if p.ThreadsPerBigCore != 1.6 {
		t.Fatalf("tpb = %v", p.ThreadsPerBigCore)
	}
	applyOS(b, []float64{-3, 1, 1}, 5)
	if b.Placement().ThreadsBig != 0 {
		t.Fatal("negative threadsBig must clamp to 0")
	}
}

func TestInputOutputVectorShapes(t *testing.T) {
	b := board.New(board.DefaultConfig())
	u := inputVector(b)
	if len(u) != numInputs {
		t.Fatalf("input vector has %d entries, want %d", len(u), numInputs)
	}
	s := board.Sensors{BIPS: 5, BigPowerW: 3, LittlePowerW: 0.2, TempC: 60, BIPSBig: 4, BIPSLittle: 1}
	y := outputVector(s, b, 8)
	if len(y) != numOutputs {
		t.Fatalf("output vector has %d entries, want %d", len(y), numOutputs)
	}
	if y[outBIPS] != 5 || y[outTemp] != 60 || y[outBIPSBig] != 4 {
		t.Fatalf("output vector misordered: %v", y)
	}
}
