// Package core wires the generic control machinery (sysid, robust, ssvctl,
// lqgctl, heuristic, optimizer) to the simulated ODROID XU3 board. It
// defines the two layers' signal sets (paper Tables II and III), runs the
// black-box system identification of §IV-C on the training applications,
// synthesizes the SSV and LQG controllers, assembles the schemes of Table IV
// plus the LQG comparison schemes of §VI-B, and provides the runner that
// executes a workload under a scheme and measures E×D.
//
// Coordination between layers happens exactly as in the paper's Figure 4:
// each controller reads, as external signals, the signals the other layer
// actuates on. In this implementation those signals live in the board's
// actuator state (cores, frequencies, thread placement), which both layers
// can observe but only one layer may set.
package core

import (
	"math"

	"yukta/internal/board"
	"yukta/internal/ssvctl"
	"yukta/internal/sysid"
)

// Signal column order, shared by identification and runtime.
//
// Inputs (all seven actuators, HW layer first):
//
//	0 #big cores   1 #little cores   2 freq_big   3 freq_little
//	4 #threads_big 5 threads/busy big core 6 threads/busy little core
//
// Outputs:
//
//	0 BIPS (total) 1 Power_big 2 Power_little 3 Temp
//	4 BIPS_little  5 BIPS_big  6 ΔSpareCompute(big-little)
const (
	inBigCores = iota
	inLittleCores
	inFreqBig
	inFreqLittle
	inThreadsBig
	inTPB
	inTPL
	numInputs
)

const (
	outBIPS = iota
	outPowerBig
	outPowerLittle
	outTemp
	outBIPSLittle
	outBIPSBig
	outDeltaSC
	numOutputs
)

// inputScales returns the physical ranges of the seven actuators.
func inputScales(cfg board.Config) []sysid.Scaling {
	return []sysid.Scaling{
		inBigCores:    {Min: 1, Max: float64(cfg.Big.MaxCores)},
		inLittleCores: {Min: 1, Max: float64(cfg.Little.MaxCores)},
		inFreqBig:     {Min: cfg.Big.FreqMinGHz, Max: cfg.Big.FreqMaxGHz},
		inFreqLittle:  {Min: cfg.Little.FreqMinGHz, Max: cfg.Little.FreqMaxGHz},
		inThreadsBig:  {Min: 0, Max: 8},
		inTPB:         {Min: 1, Max: 4},
		inTPL:         {Min: 1, Max: 4},
	}
}

// inputLevels returns the allowed discrete values of each actuator
// (saturation and quantization, paper §IV-A: cores 1-4, big frequency
// 0.2-2.0 GHz and little 0.2-1.4 GHz in 0.1 steps).
func inputLevels(cfg board.Config) [][]float64 {
	return [][]float64{
		inBigCores:    ssvctl.Levels(1, float64(cfg.Big.MaxCores), 1),
		inLittleCores: ssvctl.Levels(1, float64(cfg.Little.MaxCores), 1),
		inFreqBig:     ssvctl.Levels(cfg.Big.FreqMinGHz, cfg.Big.FreqMaxGHz, cfg.Big.FreqStepGHz),
		inFreqLittle:  ssvctl.Levels(cfg.Little.FreqMinGHz, cfg.Little.FreqMaxGHz, cfg.Little.FreqStepGHz),
		inThreadsBig:  ssvctl.Levels(0, 8, 1),
		inTPB:         ssvctl.Levels(1, 4, 0.5),
		inTPL:         ssvctl.Levels(1, 4, 0.5),
	}
}

// spareCompute returns a cluster's Spare Compute capacity per the paper's
// equation (2): SC = #idle_cores_on − (#threads − #cores_on).
func spareCompute(coresOn, threads int, perCore float64) float64 {
	if perCore < 1 {
		perCore = 1
	}
	busy := 0
	if threads > 0 {
		busy = int(math.Ceil(float64(threads) / perCore))
		if busy > coresOn {
			busy = coresOn
		}
	}
	idleOn := coresOn - busy
	return float64(idleOn) - float64(threads-coresOn)
}

// deltaSpareCompute returns SC_big − SC_little for the current board state
// and runnable thread count.
func deltaSpareCompute(b *board.Board, threads int) float64 {
	p := b.Placement()
	tb := p.ThreadsBig
	if tb > threads {
		tb = threads
	}
	tl := threads - tb
	scb := spareCompute(b.BigCores(), tb, p.ThreadsPerBigCore)
	scl := spareCompute(b.LittleCores(), tl, p.ThreadsPerLittleCore)
	return scb - scl
}

// inputVector reads the seven actuator values from the board. Frequencies
// are the effective (post-firmware-cap) values — on the real board this is
// what cpufreq's scaling_cur_freq reports, and logging the commanded value
// instead would poison the identification whenever the TMU throttles.
func inputVector(b *board.Board) []float64 {
	p := b.Placement()
	return []float64{
		inBigCores:    float64(b.BigCores()),
		inLittleCores: float64(b.LittleCores()),
		inFreqBig:     b.EffectiveBigFreq(),
		inFreqLittle:  b.EffectiveLittleFreq(),
		inThreadsBig:  float64(p.ThreadsBig),
		inTPB:         p.ThreadsPerBigCore,
		inTPL:         p.ThreadsPerLittleCore,
	}
}

// outputVector reads the seven observed signals from sensors and board.
func outputVector(s board.Sensors, b *board.Board, threads int) []float64 {
	return []float64{
		outBIPS:        s.BIPS,
		outPowerBig:    s.BigPowerW,
		outPowerLittle: s.LittlePowerW,
		outTemp:        s.TempC,
		outBIPSLittle:  s.BIPSLittle,
		outBIPSBig:     s.BIPSBig,
		outDeltaSC:     deltaSpareCompute(b, threads),
	}
}

// applyHW actuates the four hardware inputs.
func applyHW(b *board.Board, u []float64) {
	b.SetBigCores(int(math.Round(u[0])))
	b.SetLittleCores(int(math.Round(u[1])))
	b.SetBigFreq(u[2])
	b.SetLittleFreq(u[3])
}

// applyOS actuates the three scheduling inputs given the runnable threads.
func applyOS(b *board.Board, u []float64, threads int) {
	tb := int(math.Round(u[0]))
	if tb > threads {
		tb = threads
	}
	if tb < 0 {
		tb = 0
	}
	b.Place(board.Placement{
		ThreadsBig:           tb,
		ThreadsLittle:        threads - tb,
		ThreadsPerBigCore:    u[1],
		ThreadsPerLittleCore: u[2],
	})
}
