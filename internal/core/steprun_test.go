package core

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"yukta/internal/fault"
	"yukta/internal/obs"
	"yukta/internal/supervisor"
	"yukta/internal/workload"
)

// stepRunFingerprint drives a StepRun in the given chunk sizes (cycling) to
// completion and returns its trace + scalar fingerprint, shaped exactly like
// soloFingerprint's batch output.
func stepRunFingerprint(t *testing.T, p *Platform, sch Scheme, class string, chunks []int) []byte {
	t.Helper()
	w, err := workload.Lookup("gamess")
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder(0)
	opt := RunOptions{
		MaxTime:    20 * time.Second,
		SkipSeries: true,
		Trace:      rec,
	}
	if class != "clean" {
		opt.Faults = fault.PresetClass(7, 1.0, class)
	}
	sr, err := NewStepRun(p.Cfg, sch, w, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; !sr.Done(); i++ {
		if n := sr.Step(chunks[i%len(chunks)]); n == 0 && !sr.Done() {
			t.Fatal("Step made no progress on an unfinished run")
		}
	}
	res := sr.Result()
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	// Keep this format in lockstep with soloFingerprint so the byte diff is
	// apples-to-apples.
	fmt.Fprintf(&buf, "result: time=%v energy=%v exd=%v completed=%v emergencies=%d faults=%+v\n",
		res.TimeS, res.EnergyJ, res.ExD, res.Completed, res.EmergencyEvents, res.Faults)
	if res.Supervisor != nil {
		fmt.Fprintf(&buf, "supervisor: %+v\n", *res.Supervisor)
	}
	return buf.Bytes()
}

// TestStepRunMatchesBatch is the determinism-under-hosting gate at the core
// level: a run advanced incrementally in arbitrary chunk sizes must produce
// a byte-identical JSONL trace and identical result scalars to the batch
// Run of the same options, for a plain scheme and a supervised one, clean
// and under fault injection.
func TestStepRunMatchesBatch(t *testing.T) {
	p := testPlatform(t)
	hp, op := DefaultHWParams(), DefaultOSParams()
	schemes := []Scheme{p.CoordinatedHeuristic(), p.SupervisedYuktaSSV(hp, op)}
	chunkings := [][]int{{1}, {7}, {1, 13, 2}, {1000}}
	for _, sch := range schemes {
		for _, class := range []string{"clean", "all"} {
			batch := soloFingerprint(t, p, sch, class, EngineEvent)
			for _, chunks := range chunkings {
				got := stepRunFingerprint(t, p, sch, class, chunks)
				diffFingerprints(t, sch.Name+"/"+class, batch, got)
			}
		}
	}
}

// TestStepRunForceTrip exercises the operator-forced trip: after ForceTrip
// on a supervised run, the next interval runs under the fallback, its record
// carries the trip with cause "operator", and the run's supervisor stats
// count exactly the trips the trace shows.
func TestStepRunForceTrip(t *testing.T) {
	p := testPlatform(t)
	w, err := workload.Lookup("gamess")
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder(0)
	sch := p.SupervisedYuktaSSV(DefaultHWParams(), DefaultOSParams())
	sr, err := NewStepRun(p.Cfg, sch, w, RunOptions{
		MaxTime: 20 * time.Second, SkipSeries: true, Trace: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sr.Supervised() {
		t.Fatal("supervised scheme not recognized as Supervised")
	}
	sr.Step(5)
	if st, ok := sr.SupervisorState(); !ok || st != supervisor.Nominal {
		t.Fatalf("pre-trip state = %v, %v; want Nominal", st, ok)
	}
	if !sr.ForceTrip() {
		t.Fatal("ForceTrip refused on a live supervised run")
	}
	sr.Step(1)
	if st, _ := sr.SupervisorState(); st != supervisor.Fallback {
		t.Fatalf("post-trip state = %v; want Fallback", st)
	}
	tripRec := rec.At(rec.Len() - 1)
	if !tripRec.SupTripped || tripRec.SupCause != "operator" || tripRec.SupState != "fallback" {
		t.Fatalf("trip record = tripped=%v cause=%q state=%q; want operator trip in fallback",
			tripRec.SupTripped, tripRec.SupCause, tripRec.SupState)
	}
	// Forcing again while already in fallback must not double-count.
	sr.ForceTrip()
	sr.Step(1)
	res := sr.Result()
	if res.Supervisor == nil || res.Supervisor.Trips != 1 ||
		res.Supervisor.Causes[supervisor.CauseOperator] != 1 {
		t.Fatalf("supervisor stats = %+v; want exactly one operator trip", res.Supervisor)
	}
	trips := 0
	for i := 0; i < rec.Len(); i++ {
		if rec.At(i).SupTripped {
			trips++
		}
	}
	if trips != 1 {
		t.Fatalf("trace shows %d trips; want 1", trips)
	}

	// An unsupervised run must refuse the trip.
	w2, _ := workload.Lookup("gamess")
	plain, err := NewStepRun(p.Cfg, p.CoordinatedHeuristic(), w2, RunOptions{
		MaxTime: 5 * time.Second, SkipSeries: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Supervised() || plain.ForceTrip() {
		t.Fatal("unsupervised run accepted ForceTrip")
	}
}

// replayOpt builds the shared options of the ReplayTo gate, with a fresh
// recorder per run.
func replayOpt(rec *obs.Recorder) RunOptions {
	return RunOptions{
		MaxTime:    20 * time.Second,
		SkipSeries: true,
		Trace:      rec,
		Faults:     fault.PresetClass(7, 1.0, "all"),
	}
}

// TestReplayToReconstructsCrashedRun is the core-level crash-recovery gate:
// a run "killed" at step k and rebuilt by ReplayTo(k) on a fresh StepRun,
// then driven the same way from there (operator trip included), must end
// byte-identical to a run that was never interrupted — the determinism
// property the serve layer's write-ahead-log recovery rides.
func TestReplayToReconstructsCrashedRun(t *testing.T) {
	p := testPlatform(t)
	sch := p.SupervisedYuktaSSV(DefaultHWParams(), DefaultOSParams())
	finish := func(sr *StepRun, rec *obs.Recorder) []byte {
		t.Helper()
		sr.Step(4)
		if !sr.ForceTrip() {
			t.Fatal("ForceTrip refused")
		}
		for !sr.Done() {
			sr.Step(9)
		}
		res := sr.Result()
		var buf bytes.Buffer
		if err := rec.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&buf, "result: time=%v energy=%v exd=%v completed=%v emergencies=%d faults=%+v\n",
			res.TimeS, res.EnergyJ, res.ExD, res.Completed, res.EmergencyEvents, res.Faults)
		fmt.Fprintf(&buf, "supervisor: %+v\n", *res.Supervisor)
		return buf.Bytes()
	}
	mk := func() (*StepRun, *obs.Recorder) {
		t.Helper()
		w, err := workload.Lookup("gamess")
		if err != nil {
			t.Fatal(err)
		}
		rec := obs.NewRecorder(0)
		sr, err := NewStepRun(p.Cfg, sch, w, replayOpt(rec))
		if err != nil {
			t.Fatal(err)
		}
		return sr, rec
	}

	// Uninterrupted reference: step to 13, then finish.
	ref, refRec := mk()
	if n := ref.Step(13); n != 13 {
		t.Fatalf("reference advanced %d steps; want 13", n)
	}
	want := finish(ref, refRec)

	// Crash at step 13: a fresh run replayed to the same position and driven
	// identically from there must match byte for byte.
	const kill = 13
	crashed, crashedRec := mk()
	if err := crashed.ReplayTo(kill); err != nil {
		t.Fatalf("ReplayTo(%d): %v", kill, err)
	}
	if crashed.Steps() != kill {
		t.Fatalf("ReplayTo(%d) left the run at step %d", kill, crashed.Steps())
	}
	got := finish(crashed, crashedRec)
	diffFingerprints(t, fmt.Sprintf("replay@%d", kill), want, got)

	// Rewind and divergence are errors, not silent corruption: the finished
	// run refuses both a target behind its position and one past its end.
	if err := crashed.ReplayTo(3); err == nil {
		t.Fatal("ReplayTo accepted a target behind the current step")
	}
	if err := crashed.ReplayTo(crashed.MaxSteps() + 1000); err == nil {
		t.Fatal("ReplayTo accepted a target beyond the run's end")
	}
}
