package core

import (
	"fmt"
	"strconv"
	"testing"
	"time"

	"yukta/internal/fault"
	"yukta/internal/fleet"
	"yukta/internal/obs"
)

// treeFleetFingerprint executes one hierarchical fleet run and returns the
// same observable output fleetFingerprint captures for flat runs: the fleet
// JSONL trace, every per-board JSONL trace, and the shared result scalars.
func treeFleetFingerprint(t *testing.T, p *Platform, sch Scheme, class string,
	n int, topo *fleet.Topology, eng Engine) []byte {
	t.Helper()
	members := fleetTestMembers(t, p, n, sch)
	opt := FleetOptions{
		Budget:   fleet.Budget{TotalW: 2.2 * float64(n), MinW: 1.0, MaxW: 4.5},
		Topology: topo,
		TreePolicy: func() fleet.Policy {
			pol, err := fleet.NewPolicy("feedback")
			if err != nil {
				panic(err)
			}
			return pol
		},
		MaxTime:     30 * time.Second,
		Parallelism: 4,
		Engine:      eng,
	}
	if class != "clean" {
		opt.Faults = fault.PresetClass(7, 1.0, class)
	}
	opt.Trace = obs.NewFleetRecorder(0)
	boardRecs := make([]*obs.Recorder, n)
	for i := range boardRecs {
		boardRecs[i] = obs.NewRecorder(0)
	}
	opt.BoardTraces = boardRecs
	res, err := FleetRun(p.Cfg, members, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Topology != topo.Spec || res.Nodes != len(topo.Nodes) || res.Depth != topo.Depth {
		t.Fatalf("tree result metadata %q/%d/%d, want %q/%d/%d",
			res.Topology, res.Nodes, res.Depth, topo.Spec, len(topo.Nodes), topo.Depth)
	}
	if res.NodeReallocations < res.Reallocations {
		t.Fatalf("node reallocations %d < realloc instants %d", res.NodeReallocations, res.Reallocations)
	}
	return fingerprintFleetOutput(t, opt.Trace, boardRecs, res)
}

// TestFlatTreeMatchesLegacyFleet is the degenerate-tree equivalence gate: a
// one-level topology must reproduce the flat FleetRun byte-identically —
// every fleet trace record, every per-board trace record, every shared
// result scalar, every fault stream — for every scheme × fault class ×
// N∈{1,4,16}.
func TestFlatTreeMatchesLegacyFleet(t *testing.T) {
	p := testPlatform(t)
	fleetNs := []int{1, 4, 16}
	for _, sch := range equivSchemes(p) {
		for ci, class := range equivClasses() {
			t.Run(sch.Name+"/"+class, func(t *testing.T) {
				t.Parallel()
				ns := fleetNs
				if testing.Short() {
					// Rotate one fleet size per cell in -short mode, like
					// TestEngineEquivalence; the full matrix still covers
					// every N per scheme.
					ns = fleetNs[ci%3 : ci%3+1]
				}
				for _, n := range ns {
					topo, err := fleet.ParseTopology(strconv.Itoa(n))
					if err != nil {
						t.Fatal(err)
					}
					flat := fleetFingerprint(t, p, sch, class, n, EngineEvent)
					tree := treeFleetFingerprint(t, p, sch, class, n, topo, EngineEvent)
					if len(flat) == 0 {
						t.Fatalf("empty fingerprint at N=%d", n)
					}
					diffFingerprints(t, fmt.Sprintf("flat-vs-tree N=%d", n), flat, tree)
				}
			})
		}
	}
	// Spot-check the lockstep engine on one cell: the degenerate tree must
	// be flat-identical on the reference engine too.
	sch := equivSchemes(p)[0]
	topo, err := fleet.ParseTopology("4")
	if err != nil {
		t.Fatal(err)
	}
	flat := fleetFingerprint(t, p, sch, "all", 4, EngineLockstep)
	tree := treeFleetFingerprint(t, p, sch, "all", 4, topo, EngineLockstep)
	diffFingerprints(t, "flat-vs-tree lockstep", flat, tree)
}

// TestTreeEngineEquivalence extends the cross-engine gate to hierarchical
// runs: for depth-2 and depth-3 (ragged) topologies, the lockstep and event
// engines must produce byte-identical observable output, fault classes
// included.
func TestTreeEngineEquivalence(t *testing.T) {
	p := testPlatform(t)
	topos := []string{"4x4", "2x2x2", "root=a,b;a=6;b=r1,r2;r1=3;r2=3"}
	schemes := equivSchemes(p)
	for ti, spec := range topos {
		for ci, class := range equivClasses() {
			if testing.Short() && ci%2 == 1 {
				continue
			}
			sch := schemes[(ti+ci)%len(schemes)]
			t.Run(fmt.Sprintf("%s/%s", spec, class), func(t *testing.T) {
				t.Parallel()
				topo, err := fleet.ParseTopology(spec)
				if err != nil {
					t.Fatal(err)
				}
				lock := treeFleetFingerprint(t, p, sch, class, topo.Boards, topo, EngineLockstep)
				ev := treeFleetFingerprint(t, p, sch, class, topo.Boards, topo, EngineEvent)
				if len(lock) == 0 {
					t.Fatal("empty tree fingerprint")
				}
				diffFingerprints(t, "tree "+spec, lock, ev)
			})
		}
	}
}

// TestHierarchicalFleetTrace pins the per-node trace shape and the recorded
// conservation invariant on a depth-2 run: every interval emits one record
// per tree node with the root (empty node path) first, per-node allocations
// never exceed the node's budget, and higher-level realloc marks thin out
// by the cadence factor.
func TestHierarchicalFleetTrace(t *testing.T) {
	p := testPlatform(t)
	topo, err := fleet.ParseTopology("2x2")
	if err != nil {
		t.Fatal(err)
	}
	sch := equivSchemes(p)[0]
	members := fleetTestMembers(t, p, 4, sch)
	rec := obs.NewFleetRecorder(0)
	opt := FleetOptions{
		Budget:   fleet.Budget{TotalW: 8.8, MinW: 1.0, MaxW: 4.5},
		Topology: topo,
		TreePolicy: func() fleet.Policy {
			pol, _ := fleet.NewPolicy("feedback")
			return pol
		},
		ReallocEvery: 10,
		MaxTime:      30 * time.Second,
		Trace:        rec,
	}
	res, err := FleetRun(p.Cfg, members, opt)
	if err != nil {
		t.Fatal(err)
	}
	nodes := len(topo.Nodes)
	if rec.Total() != res.Steps*nodes {
		t.Fatalf("trace has %d records for %d steps × %d nodes", rec.Total(), res.Steps, nodes)
	}
	rootReallocs, nodeReallocs := 0, 0
	for i := 0; i < rec.Len(); i++ {
		r := rec.At(i)
		if wantNode := topo.Nodes[i%nodes].Path; r.Node != wantNode {
			t.Fatalf("record %d node %q, want %q", i, r.Node, wantNode)
		}
		if r.Step != i/nodes {
			t.Fatalf("record %d step %d, want %d", i, r.Step, i/nodes)
		}
		if r.AllocW > r.BudgetW+1e-9 {
			t.Fatalf("record %d (node %q): alloc %.9f exceeds budget %.9f", i, r.Node, r.AllocW, r.BudgetW)
		}
		if r.Realloc {
			nodeReallocs++
			if r.Node == "" {
				rootReallocs++
				if r.Step%(10*fleet.DefaultCadenceFactor) != 0 {
					t.Fatalf("root realloc marked at step %d off its cadence", r.Step)
				}
			}
		}
	}
	if rootReallocs == 0 || nodeReallocs <= rootReallocs {
		t.Fatalf("realloc marks: root %d, total %d", rootReallocs, nodeReallocs)
	}
	if res.NodeReallocations <= res.Reallocations {
		t.Fatalf("node reallocations %d vs instants %d on a depth-2 tree",
			res.NodeReallocations, res.Reallocations)
	}
}
