package core

import (
	"math"

	"yukta/internal/board"
	"yukta/internal/heuristic"
	"yukta/internal/supervisor"
)

// NameSupervisedSSV names the supervised full-SSV scheme: YuktaFullSSV
// wrapped by the supervisory safety layer with the coordinated heuristic as
// its fallback.
const NameSupervisedSSV = "Yukta: supervised SSV"

// reseedable is implemented by primary sessions that can re-seed their
// controller state from the plant's current operating point (bumpless
// re-engagement after a fallback episode).
type reseedable interface {
	reseed(s board.Sensors, b *board.Board)
}

// healthProbe is implemented by primary sessions that expose their
// controller runtimes' health snapshots to the supervisory layer.
type healthProbe interface {
	controllerHealth() supervisor.Health
}

// searchFreezer is implemented by primary sessions whose E×D target search
// can be paused — the supervisor freezes it while the sensor view carries no
// fresh data, so the hill climb does not learn from fabricated costs.
type searchFreezer interface {
	setSearchFrozen(bool)
}

// freqLimiter is implemented by primary sessions whose frequency commands can
// be capped in the command path (the supervisory no-raise authority clamp).
// +Inf lifts the cap.
type freqLimiter interface {
	setFreqCeiling(bigGHz, littleGHz float64)
}

// flightProber is implemented by sessions that expose a supervisory
// flight-recorder probe; the runner uses it to fill the sup_*/det_* fields
// of each interval's obs.Record.
type flightProber interface {
	flightProbe() supervisor.Probe
}

// tripForcer is implemented by supervised sessions whose trip can be forced
// by an operator (StepRun.ForceTrip → the serve layer's trip endpoint and
// graceful drain): the next interval runs under the fallback with the same
// bumpless transfer a detector-confirmed trip performs.
type tripForcer interface {
	forceTrip()
}

// stateProber is implemented by supervised sessions; it exposes the
// supervisory state the next interval runs under (StepRun.SupervisorState).
type stateProber interface {
	supervisorState() supervisor.State
}

// SupervisorReporter is implemented by supervised sessions; the runner uses
// it to surface the supervisory accounting in RunResult.
type SupervisorReporter interface {
	// SupervisorStats returns the session's supervisory accounting so far.
	SupervisorStats() supervisor.Stats
}

// supervisedSession wraps a primary session with the supervisory state
// machine and a coordinated-heuristic fallback at the same layer split.
type supervisedSession struct {
	primary Session
	fbHW    *heuristic.CoordinatedHW
	fbOS    *heuristic.CoordinatedOS
	fb      *heurSession
	mon     *supervisor.Monitor
	base    float64

	// lastGood is the per-field hold-last-good sensor latch behind the
	// fallback path: the heuristic has no non-finite handling of its own, so
	// it always sees a sanitized view.
	lastGood board.Sensors

	// prevBigW/prevLitW hold the previous interval's raw power readings for
	// stale detection (bit-for-bit repeats mean a latched sensor register).
	prevBigW, prevLitW float64
	havePrevPower      bool

	// lastMism is the board's cumulative actuator-mismatch count after the
	// previous step, for detecting this step's write-verification failures.
	lastMism int

	// lastRan is the supervisory state the latest interval ran under and
	// lastAct the action it produced — the flight recorder's view of this
	// interval (the monitor itself already reports the NEXT interval's
	// state after Observe).
	lastRan supervisor.State
	lastAct supervisor.Action

	// blockRaise carries the monitor's no-raise clamp verdict from the
	// previous interval into this one (distrusted evidence is only knowable
	// once the interval that produced it has completed); ceilBig/ceilLit are
	// the armed clamp's frequency ceilings (NaN while disarmed).
	blockRaise       bool
	ceilBig, ceilLit float64

	// pendingForce arms an operator-forced trip (forceTrip): the next Step
	// performs the transfer before the interval runs, so the interval
	// executes under the fallback and its record carries the trip.
	pendingForce bool
}

// stalePower reports whether both raw power readings repeat the previous
// interval's bit-for-bit, and advances the latch.
func (v *supervisedSession) stalePower(s board.Sensors) bool {
	stale := v.havePrevPower && s.BigPowerW == v.prevBigW && s.LittlePowerW == v.prevLitW
	if !math.IsNaN(s.BigPowerW) && !math.IsNaN(s.LittlePowerW) {
		v.prevBigW, v.prevLitW = s.BigPowerW, s.LittlePowerW
		v.havePrevPower = true
	}
	return stale
}

// Step implements Session: route the interval to whichever authority the
// monitor granted it to, then feed the observed interval back.
func (v *supervisedSession) Step(s board.Sensors, b *board.Board, threads int) {
	san, finite := v.sanitize(s)
	cfg := v.mon.Config()
	forced := false
	if v.pendingForce {
		v.pendingForce = false
		if v.mon.State() != supervisor.Fallback {
			// Operator-forced trip: transfer authority before this interval
			// runs, with the same bumpless hand-off a detector-confirmed trip
			// performs, so the interval executes under the fallback.
			v.mon.ForceTrip(supervisor.CauseOperator)
			v.bumplessTransfer(b, cfg)
			forced = true
		}
	}
	smp := supervisor.Sample{
		SensorsFinite:    finite,
		PowerStale:       v.stalePower(s),
		Throttled:        s.Throttled,
		ThermalThrottled: s.ThermalThrottled,
		TempC:            s.TempC,
		CostProxy:        exdProxy(s, v.base),
	}
	if f, ok := v.primary.(searchFreezer); ok {
		// The search is frozen when this interval's cost sample is not the
		// primary's to learn from: the sensor view carries no fresh data, so
		// held or stale power readings would fabricate the cost.
		f.setSearchFrozen(cfg.FreezeSearchOnDropout && smp.NoFreshData())
	}
	preEffBig, preEffLit := b.EffectiveBigFreq(), b.EffectiveLittleFreq()
	state := v.mon.State()
	if fl, ok := v.primary.(freqLimiter); ok {
		// No-raise authority clamp: while evidence is distrusted the primary
		// may shed frequency but not add it. The ceiling arms at the lower of
		// the requested and EFFECTIVE operating points — a firmware cap the
		// controller is racing against becomes the level it settles at — and
		// afterwards follows only the controller's own downward moves, so a
		// deep transient firmware cap does not drag the ceiling to the floor
		// of the range. It is lifted the interval after distrust expires.
		if v.blockRaise && state != supervisor.Fallback {
			if math.IsNaN(v.ceilBig) {
				v.ceilBig = math.Min(b.BigFreq(), preEffBig)
				v.ceilLit = math.Min(b.LittleFreq(), preEffLit)
			} else {
				v.ceilBig = math.Min(v.ceilBig, b.BigFreq())
				v.ceilLit = math.Min(v.ceilLit, b.LittleFreq())
			}
			fl.setFreqCeiling(v.ceilBig, v.ceilLit)
		} else if !math.IsNaN(v.ceilBig) {
			v.ceilBig, v.ceilLit = math.NaN(), math.NaN()
			fl.setFreqCeiling(math.Inf(1), math.Inf(1))
		}
	}
	switch state {
	case supervisor.Fallback:
		v.fb.Step(san, b, threads)
	case supervisor.Recovering:
		// Staged re-engagement, mirroring the TMU's one-step-per-period
		// un-throttle: the primary runs with raw sensors (its runtimes carry
		// their own hold-last-good degradation), but its authority over the
		// hardware actuators is clamped to one level per interval around the
		// pre-step operating point. Placement is deliberately not clamped —
		// the coordinated OS scheduler's migration rate limit already moves
		// one thread per interval.
		pre := snapshotActuators(b)
		v.primary.Step(s, b, threads)
		stageClamp(b, pre)
	default:
		v.primary.Step(s, b, threads)
	}
	smp.Commands = [4]float64{float64(b.BigCores()), float64(b.LittleCores()),
		b.BigFreq(), b.LittleFreq()}
	if mism := b.ActuatorMismatches(); mism != v.lastMism {
		smp.CommandMismatch = true
		v.lastMism = mism
	}
	if state != supervisor.Fallback {
		if hp, ok := v.primary.(healthProbe); ok {
			smp.Health = hp.controllerHealth()
		}
	}
	act := v.mon.Observe(smp)
	v.lastRan, v.lastAct = state, act
	if forced {
		// The forced trip happened before this interval ran; surface it on
		// this interval's flight record so summing sup_tripped over a run
		// still reproduces supervisor.Stats.Trips exactly.
		v.lastAct.Tripped = true
		v.lastAct.Cause = supervisor.CauseOperator
	}
	v.blockRaise = act.BlockRaise
	if act.Tripped {
		v.bumplessTransfer(b, cfg)
	}
	if act.Reengage {
		if r, ok := v.primary.(reseedable); ok {
			r.reseed(san, b)
		}
	}
}

// bumplessTransfer seeds the fallback from the operating point in effect
// right now — the hand-off performed on every transfer of authority, whether
// detector-confirmed or operator-forced. The heuristic's HW layer is
// relative by construction (it moves frequency from the board's current
// value), so the frequency path needs no state hand-off — but its
// conservative ceiling is pinned a mild derate below the frequencies in
// effect (post-throttle), and the OS scheduler's rate-limited placement
// state is seeded from the split in effect. The derate is the safety
// posture: the trip-time point is whatever the sick controller last
// commanded, and the fallback should shed its aggression, not preserve it.
func (v *supervisedSession) bumplessTransfer(b *board.Board, cfg supervisor.Config) {
	bcfg := b.Config()
	derate := float64(cfg.FallbackDerateSteps)
	ceil := func(eff, step, min float64) float64 {
		return math.Max(eff-derate*step, min)
	}
	v.fbHW.SeedCeiling(
		ceil(b.EffectiveBigFreq(), bcfg.Big.FreqStepGHz, bcfg.Big.FreqMinGHz),
		ceil(b.EffectiveLittleFreq(), bcfg.Little.FreqStepGHz, bcfg.Little.FreqMinGHz))
	v.fbOS.SeedPlacement(b.Placement().ThreadsBig)
}

// forceTrip implements tripForcer: arm an operator-forced trip for the next
// interval.
func (v *supervisedSession) forceTrip() { v.pendingForce = true }

// supervisorState implements stateProber.
func (v *supervisedSession) supervisorState() supervisor.State { return v.mon.State() }

// SupervisorStats implements SupervisorReporter.
func (v *supervisedSession) SupervisorStats() supervisor.Stats { return v.mon.Stats() }

// flightProbe implements flightProber: the monitor's live detector
// pressures, overlaid with the state the latest interval actually ran under
// and the one-shot transfer flags its observation produced.
func (v *supervisedSession) flightProbe() supervisor.Probe {
	p := v.mon.Probe()
	p.State = v.lastRan
	p.Tripped = v.lastAct.Tripped
	p.Cause = v.lastAct.Cause
	p.Reengage = v.lastAct.Reengage
	p.BlockRaise = v.lastAct.BlockRaise
	return p
}

// sanitize replaces non-finite sensor fields with the last finite value seen
// (or a neutral default before any), and reports whether the raw view was
// fully finite.
func (v *supervisedSession) sanitize(s board.Sensors) (board.Sensors, bool) {
	finite := true
	fix := func(val, last *float64) {
		if math.IsNaN(*val) || math.IsInf(*val, 0) {
			*val = *last
			finite = false
			return
		}
		*last = *val
	}
	fix(&s.BigPowerW, &v.lastGood.BigPowerW)
	fix(&s.LittlePowerW, &v.lastGood.LittlePowerW)
	fix(&s.TempC, &v.lastGood.TempC)
	fix(&s.BIPS, &v.lastGood.BIPS)
	fix(&s.BIPSBig, &v.lastGood.BIPSBig)
	fix(&s.BIPSLittle, &v.lastGood.BIPSLittle)
	return s, finite
}

// actSnapshot is the requested hardware actuator state at the start of a
// recovering interval.
type actSnapshot struct {
	bigC, litC int
	bigF, litF float64
}

// snapshotActuators reads the requested hardware operating point.
func snapshotActuators(b *board.Board) actSnapshot {
	return actSnapshot{bigC: b.BigCores(), litC: b.LittleCores(),
		bigF: b.BigFreq(), litF: b.LittleFreq()}
}

// stageClamp bounds the post-step hardware actuator state to one core and
// one frequency step per cluster around the pre-step operating point.
func stageClamp(b *board.Board, pre actSnapshot) {
	if d := b.BigCores() - pre.bigC; d > 1 {
		b.SetBigCores(pre.bigC + 1)
	} else if d < -1 {
		b.SetBigCores(pre.bigC - 1)
	}
	if d := b.LittleCores() - pre.litC; d > 1 {
		b.SetLittleCores(pre.litC + 1)
	} else if d < -1 {
		b.SetLittleCores(pre.litC - 1)
	}
	cfg := b.Config()
	clampFreq := func(cur, pre, step float64, set func(float64)) {
		if d := cur - pre; d > step+1e-9 {
			set(pre + step)
		} else if d < -step-1e-9 {
			set(pre - step)
		}
	}
	clampFreq(b.BigFreq(), pre.bigF, cfg.Big.FreqStepGHz, b.SetBigFreq)
	clampFreq(b.LittleFreq(), pre.litF, cfg.Little.FreqStepGHz, b.SetLittleFreq)
}

// SupervisedScheme wraps primary with the supervisory safety layer: the
// monitor built from cfg decides each interval whether the primary or the
// coordinated-heuristic fallback has authority, performing bumpless
// transfer on trip and staged re-engagement after quarantine (DESIGN.md §7).
//
// The wrapper inherits the primary's fault-stream identity (Scheme.FaultKey),
// so a supervised run and its bare-primary counterpart face the same injected
// fault realization — the supervised-vs-unsupervised tables are paired
// comparisons, not draws from two different fault sequences.
func (p *Platform) SupervisedScheme(name string, primary Scheme, cfg supervisor.Config) Scheme {
	return Scheme{Name: name, FaultKey: primary.faultKey(), New: func() (Session, error) {
		inner, err := primary.New()
		if err != nil {
			return nil, err
		}
		fbHW := &heuristic.CoordinatedHW{Lim: p.Lim, Conservative: true}
		fbOS := &heuristic.CoordinatedOS{}
		return &supervisedSession{
			primary: inner,
			fbHW:    fbHW,
			fbOS:    fbOS,
			fb:      &heurSession{hw: fbHW, os: fbOS},
			mon:     supervisor.New(cfg),
			base:    p.Cfg.BasePowerW,
			ceilBig: math.NaN(),
			ceilLit: math.NaN(),
			// Neutral pre-first-sample defaults for the sanitizer: mid-range
			// values no fallback decision reacts violently to.
			lastGood: board.Sensors{BigPowerW: 2, LittlePowerW: 0.2, TempC: 60,
				BIPS: 4, BIPSBig: 3, BIPSLittle: 1},
		}, nil
	}}
}

// SupervisedYuktaSSV is the shipped supervised scheme: the full SSV stack
// under the default supervisor configuration.
func (p *Platform) SupervisedYuktaSSV(hp HWParams, op OSParams) Scheme {
	return p.SupervisedScheme(NameSupervisedSSV, p.YuktaFullSSV(hp, op), supervisor.DefaultConfig())
}
