package core

import (
	"fmt"
	"math/rand"
	"time"

	"yukta/internal/board"
	"yukta/internal/lti"
	"yukta/internal/sysid"
	"yukta/internal/workload"
)

// TrainingData is the raw record of the identification experiments: one row
// of all seven inputs and all seven observable outputs per control interval,
// in physical units, plus the output scalings derived from the observed
// ranges (the paper sets deviation bounds as percentages of these ranges,
// §IV-A).
type TrainingData struct {
	U, Y      [][]float64
	InScales  []sysid.Scaling
	OutScales []sysid.Scaling
}

// IdentifyOptions configures the identification experiments.
type IdentifyOptions struct {
	// SamplesPerApp is the number of 500 ms control intervals recorded per
	// training application.
	SamplesPerApp int
	// Hold is how many intervals each staircase level is held.
	Hold int
	// Seed drives the staircase excitation.
	Seed int64
}

// DefaultIdentifyOptions returns the options used throughout the evaluation.
func DefaultIdentifyOptions() IdentifyOptions {
	return IdentifyOptions{SamplesPerApp: 420, Hold: 3, Seed: 20180601}
}

// CollectTrainingData runs the System Identification experiments of §IV-C:
// each training application executes on a fresh board while all seven
// actuators are driven through staircase patterns over their allowed levels,
// and every control interval's inputs and outputs are recorded.
func CollectTrainingData(cfg board.Config, opt IdentifyOptions) (*TrainingData, error) {
	rng := rand.New(rand.NewSource(opt.Seed))
	levels := identExcitationLevels(cfg)
	td := &TrainingData{InScales: inputScales(cfg)}

	for _, name := range workload.TrainingSet() {
		w, err := workload.Lookup(name)
		if err != nil {
			return nil, fmt.Errorf("core: training set: %w", err)
		}
		b := board.New(cfg)
		// Excitation: the run is divided into segments. In half of the
		// segments all inputs follow independent random staircases (joint
		// excitation); in the other half a single input toggles quickly
		// while the rest hold a random level (one-factor-at-a-time), which
		// sharpens the small marginal channels (e.g. the little cluster's
		// frequency) that joint excitation buries under the big cluster's
		// variance.
		const segment = 8
		u := make([]float64, numInputs)
		for i := range u {
			u[i] = levels[i][rng.Intn(len(levels[i]))]
		}
		focus := -1
		for t := 0; t < opt.SamplesPerApp && !w.Done(); t++ {
			if t%segment == 0 {
				if rng.Intn(2) == 0 {
					focus = rng.Intn(numInputs)
				} else {
					focus = -1
				}
				for i := range u {
					u[i] = levels[i][rng.Intn(len(levels[i]))]
				}
			}
			switch {
			case focus >= 0 && t%2 == 0:
				u[focus] = levels[focus][rng.Intn(len(levels[focus]))]
			case focus < 0 && t%opt.Hold == 0:
				for i := range u {
					u[i] = levels[i][rng.Intn(len(levels[i]))]
				}
			}
			applyHW(b, u[:4])
			threads := w.Profile().Threads
			applyOS(b, u[4:], threads)
			// Record the values actually actuated (clamped thread counts,
			// effective frequencies).
			actual := inputVector(b)
			s := b.Run(w, 500*time.Millisecond)
			td.U = append(td.U, actual)
			td.Y = append(td.Y, outputVector(s, b, w.Profile().Threads))
		}
	}
	if len(td.U) < 50 {
		return nil, fmt.Errorf("core: identification collected only %d samples", len(td.U))
	}
	td.OutScales = outputScalesFrom(td.Y)
	return td, nil
}

// identExcitationLevels returns the staircase level sets used during
// identification. The actuator ranges are the full physical ones (see
// inputLevels), but the excitation concentrates on the region where a
// controller actually operates — most threads runnable, light packing —
// so the linear fit captures the local input-output slopes there instead of
// averaging them against degenerate corners (e.g. an empty big cluster,
// where no actuator has any effect).
func identExcitationLevels(cfg board.Config) [][]float64 {
	lv := inputLevels(cfg)
	// Duplicated entries weight the draw toward the heavy-big placements
	// that both the HMP-style scheduler and the SSV scheduler visit most.
	lv[inThreadsBig] = []float64{3, 4, 4, 5, 6, 7, 8, 8}
	lv[inTPB] = []float64{1, 1, 1.5, 2, 2}
	lv[inTPL] = []float64{1, 1, 1.5, 2}
	return lv
}

// outputScalesFrom derives each output's scaling from its observed range,
// with a small pad so runtime values slightly beyond the training range stay
// in the normalized band.
func outputScalesFrom(y [][]float64) []sysid.Scaling {
	scales := make([]sysid.Scaling, numOutputs)
	for j := 0; j < numOutputs; j++ {
		mn, mx := y[0][j], y[0][j]
		for _, row := range y {
			if row[j] < mn {
				mn = row[j]
			}
			if row[j] > mx {
				mx = row[j]
			}
		}
		pad := 0.05 * (mx - mn)
		if pad == 0 {
			pad = 0.5
		}
		scales[j] = sysid.Scaling{Min: mn - pad, Max: mx + pad}
	}
	return scales
}

// modelFor fits an order-4 MIMO ARX model over the selected input and output
// columns, stabilizes it, and reduces it to at most maxOrder states.
func (td *TrainingData) modelFor(inCols, outCols []int, maxOrder int) (*lti.StateSpace, error) {
	d := &sysid.Dataset{}
	for t := range td.U {
		u := make([]float64, len(inCols))
		for i, c := range inCols {
			u[i] = td.InScales[c].Normalize(td.U[t][c])
		}
		y := make([]float64, len(outCols))
		for i, c := range outCols {
			y[i] = td.OutScales[c].Normalize(td.Y[t][c])
		}
		d.Append(u, y)
	}
	m, err := sysid.Identify(d, sysid.PaperOrders, 0.5)
	if err != nil {
		return nil, fmt.Errorf("core: identification failed: %w", err)
	}
	m.Stabilize()
	return m.ReducedStateSpace(maxOrder), nil
}

// Column sets for the five models used by the schemes.
var (
	hwInCols  = []int{inBigCores, inLittleCores, inFreqBig, inFreqLittle, inThreadsBig, inTPB, inTPL}
	hwOutCols = []int{outBIPS, outPowerBig, outPowerLittle, outTemp}

	osInCols  = []int{inThreadsBig, inTPB, inTPL, inBigCores, inLittleCores, inFreqBig, inFreqLittle}
	osOutCols = []int{outBIPSLittle, outBIPSBig, outDeltaSC}

	hwOnlyInCols = []int{inBigCores, inLittleCores, inFreqBig, inFreqLittle}
	osOnlyInCols = []int{inThreadsBig, inTPB, inTPL}

	monoOutCols = []int{outBIPS, outPowerBig, outPowerLittle, outTemp,
		outBIPSLittle, outBIPSBig, outDeltaSC}
)

// HWModel fits the hardware layer's model: 4 controls + 3 external signals
// (the OS's actuations) → the 4 outputs of Table II.
func (td *TrainingData) HWModel() (*lti.StateSpace, error) {
	// Reduced to 16 states, so the synthesized controller (model + 4 output
	// integrators) has the paper's N = 20.
	return td.modelFor(hwInCols, hwOutCols, 16)
}

// OSModel fits the software layer's model: 3 controls + 4 external signals
// (the HW's actuations) → the 3 outputs of Table III.
func (td *TrainingData) OSModel() (*lti.StateSpace, error) {
	return td.modelFor(osInCols, osOutCols, 12)
}

// MonoModel fits the monolithic controller's model: all seven actuators →
// all seven observable outputs, the single-controller view of [35].
func (td *TrainingData) MonoModel() (*lti.StateSpace, error) {
	return td.modelFor(hwInCols, monoOutCols, 21)
}

// HWOnlyModel fits a hardware model without external signals, for the
// decoupled LQG scheme.
func (td *TrainingData) HWOnlyModel() (*lti.StateSpace, error) {
	return td.modelFor(hwOnlyInCols, hwOutCols, 16)
}

// OSOnlyModel fits a scheduling model without external signals, for the
// decoupled LQG scheme.
func (td *TrainingData) OSOnlyModel() (*lti.StateSpace, error) {
	return td.modelFor(osOnlyInCols, osOutCols, 12)
}

// SelectHWOrder runs cross-validated ARX order selection (§IV-C's "dimension
// four" justified empirically) over the hardware layer's signals.
func (p *Platform) SelectHWOrder(maxOrder int) ([]sysid.OrderScore, sysid.Orders, error) {
	d := &sysid.Dataset{}
	td := p.Data
	for t := range td.U {
		u := make([]float64, len(hwInCols))
		for i, c := range hwInCols {
			u[i] = td.InScales[c].Normalize(td.U[t][c])
		}
		y := make([]float64, len(hwOutCols))
		for i, c := range hwOutCols {
			y[i] = td.OutScales[c].Normalize(td.Y[t][c])
		}
		d.Append(u, y)
	}
	return sysid.SelectOrder(d, maxOrder, 0.5)
}

// scalesFor projects the stored scalings onto column sets.
func scalesFor(all []sysid.Scaling, cols []int) []sysid.Scaling {
	out := make([]sysid.Scaling, len(cols))
	for i, c := range cols {
		out[i] = all[c]
	}
	return out
}

// levelsFor projects level sets onto column sets.
func levelsFor(all [][]float64, cols []int) [][]float64 {
	out := make([][]float64, len(cols))
	for i, c := range cols {
		out[i] = all[c]
	}
	return out
}
