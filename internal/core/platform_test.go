package core

import (
	"sync"
	"testing"

	"yukta/internal/board"
)

var (
	platOnce sync.Once
	plat     *Platform
	platErr  error
)

// testPlatform builds the shared Platform (identification is deterministic,
// so all tests can reuse it).
func testPlatform(t *testing.T) *Platform {
	t.Helper()
	platOnce.Do(func() {
		plat, platErr = NewPlatform(board.DefaultConfig(), DefaultIdentifyOptions())
	})
	if platErr != nil {
		t.Fatal(platErr)
	}
	return plat
}

func TestCollectTrainingData(t *testing.T) {
	p := testPlatform(t)
	if len(p.Data.U) < 1000 {
		t.Fatalf("only %d training samples", len(p.Data.U))
	}
	// Output scalings must be sane: BIPS range positive, temp above ambient.
	bips := p.Data.OutScales[outBIPS]
	if bips.Max <= bips.Min || bips.Max < 5 {
		t.Fatalf("BIPS scale %+v implausible", bips)
	}
	temp := p.Data.OutScales[outTemp]
	if temp.Min < 30 || temp.Max > 120 {
		t.Fatalf("temperature scale %+v implausible", temp)
	}
}

func TestIdentifiedModelsStableAndSized(t *testing.T) {
	p := testPlatform(t)
	cases := []struct {
		name          string
		in, out, omax int
	}{
		{"HW", 7, 4, 16},
		{"OS", 7, 3, 12},
		{"HWOnly", 4, 4, 16},
		{"OSOnly", 3, 3, 12},
	}
	models := []interface {
		Inputs() int
		Outputs() int
		Order() int
		IsStable() bool
	}{p.HW, p.OS, p.HWOnly, p.OSOnly}
	for i, c := range cases {
		m := models[i]
		if m.Inputs() != c.in || m.Outputs() != c.out {
			t.Fatalf("%s model shape %dx%d, want %dx%d", c.name, m.Outputs(), m.Inputs(), c.out, c.in)
		}
		if m.Order() > c.omax {
			t.Fatalf("%s model order %d exceeds %d", c.name, m.Order(), c.omax)
		}
		if !m.IsStable() {
			t.Fatalf("%s model unstable", c.name)
		}
	}
}

func TestHWModelPredictsFrequencyEffect(t *testing.T) {
	// The identified model must capture first-order physics: raising the big
	// frequency raises performance and big power at steady state.
	p := testPlatform(t)
	dc, err := p.HW.DCGain()
	if err != nil {
		t.Fatal(err)
	}
	// Column inFreqBig (=2): effect on BIPS (row 0) and PowerBig (row 1).
	if dc.At(0, 2) <= 0 {
		t.Fatalf("model says more big frequency lowers performance: %v", dc.At(0, 2))
	}
	if dc.At(1, 2) <= 0 {
		t.Fatalf("model says more big frequency lowers big power: %v", dc.At(1, 2))
	}
}

func TestHWSSVSynthesisMeetsPaperShape(t *testing.T) {
	p := testPlatform(t)
	ctl, err := p.SynthesizeHWSSV(DefaultHWParams())
	if err != nil {
		t.Fatal(err)
	}
	// Paper §VI-D: N=20 (model 16 + 4 integrators), I=4, O=4, E=3.
	if ctl.Report.StateDim != p.HW.Order()+4 {
		t.Fatalf("controller N=%d, want %d", ctl.Report.StateDim, p.HW.Order()+4)
	}
	if ctl.NumCtrl != 4 || ctl.NumOut != 4 || ctl.NumExt != 3 {
		t.Fatalf("controller I/O/E = %d/%d/%d, want 4/4/3", ctl.NumCtrl, ctl.NumOut, ctl.NumExt)
	}
	t.Logf("HW SSV: SSV=%.3f rho=%v iters=%d", ctl.Report.SSV, ctl.Report.ControlPenalty, ctl.Report.Iterations)
}

func TestOSSSVSynthesis(t *testing.T) {
	p := testPlatform(t)
	ctl, err := p.SynthesizeOSSSV(DefaultOSParams())
	if err != nil {
		t.Fatal(err)
	}
	if ctl.NumCtrl != 3 || ctl.NumOut != 3 || ctl.NumExt != 4 {
		t.Fatalf("controller I/O/E = %d/%d/%d, want 3/3/4", ctl.NumCtrl, ctl.NumOut, ctl.NumExt)
	}
	t.Logf("OS SSV: SSV=%.3f rho=%v", ctl.Report.SSV, ctl.Report.ControlPenalty)
}

func TestLQGSyntheses(t *testing.T) {
	p := testPlatform(t)
	if _, err := p.SynthesizeMonolithicLQG(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.SynthesizeDecoupledLQG(); err != nil {
		t.Fatal(err)
	}
}

func TestSelectHWOrder(t *testing.T) {
	p := testPlatform(t)
	scores, best, err := p.SelectHWOrder(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) < 3 {
		t.Fatalf("only %d candidate orders fit", len(scores))
	}
	if best.NA < 1 || best.NA > 5 {
		t.Fatalf("selected order %d out of range", best.NA)
	}
	// The board has real dynamics (thermal memory): order >= 2 should beat
	// order 1 on held-out prediction.
	var r1, rBest float64
	for _, s := range scores {
		if s.Orders.NA == 1 {
			r1 = s.ValRMSE
		}
		if s.Orders == best {
			rBest = s.ValRMSE
		}
	}
	if best.NA > 1 && rBest >= r1 {
		t.Fatalf("selected order %d RMSE %v not better than order 1 %v", best.NA, rBest, r1)
	}
	t.Logf("selected order %d (paper uses 4); scores=%+v", best.NA, scores)
}
