package supervisor

import (
	"math"
	"testing"
)

// healthySample is a nominal interval: finite sensors, cool, steady cost,
// constant commands, clean controller health.
func healthySample() Sample {
	return Sample{
		SensorsFinite: true,
		TempC:         55,
		CostProxy:     1.0,
		Commands:      [4]float64{4, 4, 1.8, 1.2},
	}
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.WarmupSteps = 10
	cfg.ConfirmSteps = 3
	cfg.QuarantineSteps = 5
	cfg.RecoverySteps = 4
	cfg.GraceSteps = 6
	cfg.BaselineWindow = 16
	cfg.ShortWindow = 4
	// The guardband detector ships disabled (the simulated plant's bounds are
	// not clean-separable); enable it here to exercise the detector path.
	cfg.GuardbandSteps = 6
	return cfg
}

func TestHealthyStreamNeverTrips(t *testing.T) {
	m := New(testConfig())
	for i := 0; i < 2000; i++ {
		act := m.Observe(healthySample())
		if act.Tripped || act.State != Nominal {
			t.Fatalf("step %d: unexpected %+v", i, act)
		}
	}
	if st := m.Stats(); st.Trips != 0 || st.FallbackSteps != 0 {
		t.Fatalf("stats = %+v, want zero trips", st)
	}
}

func TestNonFiniteTripsImmediatelyEvenDuringWarmup(t *testing.T) {
	m := New(testConfig())
	smp := healthySample()
	smp.Commands[2] = math.NaN()
	act := m.Observe(smp)
	if !act.Tripped || act.Cause != CauseNonFinite || act.State != Fallback {
		t.Fatalf("act = %+v, want immediate non-finite trip", act)
	}
}

func TestGuardbandTripNeedsConfirmation(t *testing.T) {
	cfg := testConfig()
	m := New(cfg)
	for i := 0; i < cfg.WarmupSteps; i++ {
		m.Observe(healthySample())
	}
	bad := healthySample()
	bad.Health.GuardbandStreak = cfg.GuardbandSteps
	for i := 0; i < cfg.ConfirmSteps-1; i++ {
		act := m.Observe(bad)
		if act.Tripped {
			t.Fatalf("confirm step %d tripped early", i)
		}
		if act.State != Suspect {
			t.Fatalf("confirm step %d: state %v, want suspect", i, act.State)
		}
	}
	// A clean interval clears the suspicion.
	if act := m.Observe(healthySample()); act.State != Nominal {
		t.Fatalf("state after clean interval = %v, want nominal", act.State)
	}
	// A full confirm streak trips.
	var act Action
	for i := 0; i < cfg.ConfirmSteps; i++ {
		act = m.Observe(bad)
	}
	if !act.Tripped || act.Cause != CauseGuardband {
		t.Fatalf("act = %+v, want guardband trip", act)
	}
}

func TestQuarantineReengageAndRecovery(t *testing.T) {
	cfg := testConfig()
	m := New(cfg)
	for i := 0; i < cfg.WarmupSteps; i++ {
		m.Observe(healthySample())
	}
	bad := healthySample()
	bad.Health.GuardbandStreak = cfg.GuardbandSteps
	for m.State() != Fallback {
		m.Observe(bad)
	}
	// Throttled fallback intervals must not count toward quarantine.
	throttled := healthySample()
	throttled.Throttled = true
	for i := 0; i < 3; i++ {
		if act := m.Observe(throttled); act.Reengage {
			t.Fatal("reengaged while throttled")
		}
	}
	var act Action
	for i := 0; i < cfg.QuarantineSteps; i++ {
		act = m.Observe(healthySample())
	}
	if !act.Reengage || act.State != Recovering {
		t.Fatalf("act = %+v, want reengage into recovering", act)
	}
	for i := 0; i < cfg.RecoverySteps; i++ {
		act = m.Observe(healthySample())
	}
	if act.State != Nominal {
		t.Fatalf("state after recovery window = %v, want nominal", act.State)
	}
	st := m.Stats()
	if st.Trips != 1 || st.Recoveries != 1 {
		t.Fatalf("stats = %+v, want 1 trip / 1 recovery", st)
	}
	if st.RecoveryLatencySteps <= 0 || st.MeanRecoverySteps() <= 0 {
		t.Fatalf("stats = %+v, want positive recovery latency", st)
	}
	if st.FallbackSteps < cfg.QuarantineSteps {
		t.Fatalf("FallbackSteps = %d, want ≥ quarantine %d", st.FallbackSteps, cfg.QuarantineSteps)
	}
}

func TestNonFiniteRetripDuringRecovery(t *testing.T) {
	cfg := testConfig()
	m := New(cfg)
	for i := 0; i < cfg.WarmupSteps; i++ {
		m.Observe(healthySample())
	}
	nan := healthySample()
	nan.Health.NonFinite = true
	m.Observe(nan) // trip 1
	for m.State() == Fallback {
		m.Observe(healthySample())
	}
	if m.State() != Recovering {
		t.Fatalf("state = %v, want recovering", m.State())
	}
	act := m.Observe(nan)
	if !act.Tripped || act.State != Fallback {
		t.Fatalf("act = %+v, want re-trip during recovery", act)
	}
	if st := m.Stats(); st.Trips != 2 || st.Recoveries != 0 {
		t.Fatalf("stats = %+v, want 2 trips / 0 recoveries", st)
	}
}

func TestGraceSuppressesSoftDetectorsAfterRecovery(t *testing.T) {
	cfg := testConfig()
	m := New(cfg)
	for i := 0; i < cfg.WarmupSteps; i++ {
		m.Observe(healthySample())
	}
	bad := healthySample()
	bad.Health.GuardbandStreak = cfg.GuardbandSteps
	for m.State() != Fallback {
		m.Observe(bad)
	}
	for m.State() != Nominal {
		m.Observe(healthySample())
	}
	// Soft conditions during grace must not even enter Suspect.
	for i := 0; i < cfg.GraceSteps; i++ {
		if act := m.Observe(bad); act.State != Nominal || act.Tripped {
			t.Fatalf("grace step %d: act = %+v", i, act)
		}
	}
	// Once grace expires the same condition trips again.
	var act Action
	for i := 0; i < cfg.ConfirmSteps; i++ {
		act = m.Observe(bad)
	}
	if !act.Tripped {
		t.Fatalf("act = %+v, want trip after grace expiry", act)
	}
}

func TestDivergenceTrip(t *testing.T) {
	cfg := testConfig()
	m := New(cfg)
	// Build the baseline well past warmup and window formation.
	for i := 0; i < cfg.WarmupSteps+2*cfg.BaselineWindow; i++ {
		m.Observe(healthySample())
	}
	exp := healthySample()
	exp.CostProxy = 50 // 50× the baseline of 1.0
	var act Action
	for i := 0; i < cfg.ShortWindow+cfg.ConfirmSteps+4; i++ {
		act = m.Observe(exp)
		if act.Tripped {
			break
		}
	}
	if !act.Tripped || act.Cause != CauseDivergence {
		t.Fatalf("act = %+v, want divergence trip", act)
	}
}

func TestChatterTrip(t *testing.T) {
	cfg := testConfig()
	cfg.ChatterWindow = 8
	cfg.ChatterReversals = 6
	m := New(cfg)
	for i := 0; i < cfg.WarmupSteps; i++ {
		m.Observe(healthySample())
	}
	var act Action
	for i := 0; i < 40; i++ {
		smp := healthySample()
		// Big frequency bounces between two levels every interval.
		if i%2 == 0 {
			smp.Commands[2] = 1.8
		} else {
			smp.Commands[2] = 1.7
		}
		act = m.Observe(smp)
		if act.Tripped {
			break
		}
	}
	if !act.Tripped || act.Cause != CauseChatter {
		t.Fatalf("act = %+v, want chatter trip", act)
	}
}

func TestDropoutTrip(t *testing.T) {
	cfg := testConfig()
	cfg.DropoutWindow = 16
	cfg.DropoutTrip = 8
	m := New(cfg)
	for i := 0; i < cfg.WarmupSteps; i++ {
		m.Observe(healthySample())
	}
	var act Action
	held := 0
	for i := 0; i < 40; i++ {
		smp := healthySample()
		smp.SensorsFinite = false
		smp.CostProxy = math.NaN()
		held++
		smp.Health.HeldSteps = held
		act = m.Observe(smp)
		if act.Tripped {
			break
		}
	}
	if !act.Tripped || act.Cause != CauseDropout {
		t.Fatalf("act = %+v, want dropout trip", act)
	}
}

func TestRailTrip(t *testing.T) {
	cfg := testConfig()
	m := New(cfg)
	for i := 0; i < cfg.WarmupSteps; i++ {
		m.Observe(healthySample())
	}
	railed := healthySample()
	railed.Health.Railed = true
	var act Action
	for i := 0; i < cfg.RailSteps+cfg.ConfirmSteps+2; i++ {
		act = m.Observe(railed)
		if act.Tripped {
			break
		}
	}
	if !act.Tripped || act.Cause != CauseRail {
		t.Fatalf("act = %+v, want rail trip", act)
	}
}

func TestThrottleStormTrip(t *testing.T) {
	cfg := testConfig()
	cfg.ThrottleWindow = 8
	cfg.ThrottleTrip = 6
	m := New(cfg)
	for i := 0; i < cfg.WarmupSteps; i++ {
		m.Observe(healthySample())
	}
	// A suspicious storm: thermal path engaged while the diode reads cool.
	storm := healthySample()
	storm.Throttled = true
	storm.ThermalThrottled = true
	var act Action
	for i := 0; i < cfg.ThrottleTrip+cfg.ConfirmSteps+2; i++ {
		act = m.Observe(storm)
		if act.Tripped {
			break
		}
	}
	if !act.Tripped || act.Cause != CauseThrottle {
		t.Fatalf("act = %+v, want throttle-storm trip", act)
	}
	// An organic thermal emergency — throttled while genuinely hot — is not
	// suspicious and must never trip, no matter how dense.
	m2 := New(cfg)
	for i := 0; i < cfg.WarmupSteps; i++ {
		m2.Observe(healthySample())
	}
	hot := healthySample()
	hot.Throttled = true
	hot.ThermalThrottled = true
	hot.TempC = cfg.SuspectTempC + 3
	for i := 0; i < 100; i++ {
		if act := m2.Observe(hot); act.Tripped {
			t.Fatalf("step %d: organic (hot) throttling tripped: %+v", i, act)
		}
	}
	// A power-path emergency (thermal path idle) is likewise not suspicious.
	m3 := New(cfg)
	for i := 0; i < cfg.WarmupSteps; i++ {
		m3.Observe(healthySample())
	}
	for i := 0; i < 100; i++ {
		smp := healthySample()
		smp.Throttled = true // power emergency only
		if act := m3.Observe(smp); act.Tripped {
			t.Fatalf("step %d: power-path throttling tripped: %+v", i, act)
		}
	}
}

func TestStaleReadingsCountAsDropout(t *testing.T) {
	cfg := testConfig()
	m := New(cfg)
	for i := 0; i < cfg.WarmupSteps; i++ {
		m.Observe(healthySample())
	}
	stale := healthySample()
	stale.PowerStale = true
	var act Action
	for i := 0; i < cfg.DropoutTrip+cfg.ConfirmSteps+2; i++ {
		act = m.Observe(stale)
		if act.Tripped {
			break
		}
	}
	if !act.Tripped || act.Cause != CauseDropout {
		t.Fatalf("act = %+v, want dropout trip from stale readings", act)
	}
}

func TestPeaksRecorded(t *testing.T) {
	cfg := testConfig()
	cfg.GuardbandSteps = 0 // passive: record pressure without tripping
	m := New(cfg)
	for i := 0; i < cfg.WarmupSteps; i++ {
		m.Observe(healthySample()) // peaks arm with the detectors, post-warmup
	}
	smp := healthySample()
	smp.Health.GuardbandStreak = 7
	smp.Throttled = true
	smp.ThermalThrottled = true // cool sample ⇒ suspicious
	for i := 0; i < 5; i++ {
		m.Observe(smp)
	}
	pk := m.Stats().Peaks
	if pk.GuardbandStreak != 7 {
		t.Fatalf("peak guardband streak = %d, want 7", pk.GuardbandStreak)
	}
	if pk.ThrottleCount != 5 {
		t.Fatalf("peak throttle count = %d, want 5", pk.ThrottleCount)
	}
	var agg Stats
	agg.Add(m.Stats())
	if agg.Peaks.GuardbandStreak != 7 {
		t.Fatalf("aggregated peak = %+v, want streak 7", agg.Peaks)
	}
}

func TestStatsAddAndStrings(t *testing.T) {
	var a, b Stats
	a.Trips, a.Causes[CauseGuardband], a.FallbackSteps = 1, 1, 10
	b.Trips, b.Causes[CauseDropout], b.Recoveries, b.RecoveryLatencySteps = 2, 2, 1, 30
	a.Add(b)
	if a.Trips != 3 || a.Causes[CauseDropout] != 2 || a.FallbackSteps != 10 {
		t.Fatalf("merged stats = %+v", a)
	}
	if a.MeanRecoverySteps() != 30 {
		t.Fatalf("mean recovery = %v, want 30", a.MeanRecoverySteps())
	}
	for s := Nominal; s <= Recovering; s++ {
		if s.String() == "" {
			t.Fatalf("state %d has empty name", s)
		}
	}
	for c := CauseNone; c < CauseCount; c++ {
		if c.String() == "" {
			t.Fatalf("cause %d has empty name", c)
		}
	}
}

func TestFreezeAccounting(t *testing.T) {
	cfg := testConfig()
	m := New(cfg)
	smp := healthySample()
	smp.PowerStale = true // no fresh data ⇒ frozen
	for i := 0; i < 5; i++ {
		m.Observe(smp)
	}
	if st := m.Stats(); st.FrozenSteps != 5 {
		t.Fatalf("FrozenSteps = %d, want 5", st.FrozenSteps)
	}
	cfg.FreezeSearchOnDropout = false
	m2 := New(cfg)
	for i := 0; i < 5; i++ {
		m2.Observe(smp)
	}
	if st := m2.Stats(); st.FrozenSteps != 0 {
		t.Fatalf("FrozenSteps = %d, want 0 when freezing disabled", st.FrozenSteps)
	}
}

func TestMismatchTrip(t *testing.T) {
	cfg := testConfig()
	cfg.MismatchWindow = 16
	cfg.MismatchTrip = 8
	m := New(cfg)
	for i := 0; i < cfg.WarmupSteps; i++ {
		m.Observe(healthySample())
	}
	bad := healthySample()
	bad.CommandMismatch = true
	var act Action
	for i := 0; i < cfg.MismatchTrip+cfg.ConfirmSteps+2; i++ {
		act = m.Observe(bad)
		if act.Tripped {
			break
		}
	}
	if !act.Tripped || act.Cause != CauseActuation {
		t.Fatalf("act = %+v, want actuation-fault trip", act)
	}
}

func TestDistrustClampArmsAndExpires(t *testing.T) {
	cfg := testConfig()
	cfg.DistrustHoldSteps = 3
	m := New(cfg)
	// A healthy stream never arms the clamp.
	for i := 0; i < 20; i++ {
		if act := m.Observe(healthySample()); act.BlockRaise {
			t.Fatalf("step %d: clamp armed on healthy sample", i)
		}
	}
	if st := m.Stats(); st.DistrustSteps != 0 {
		t.Fatalf("DistrustSteps = %d, want 0 on healthy stream", st.DistrustSteps)
	}
	// One distrusted interval arms it for exactly DistrustHoldSteps.
	bad := healthySample()
	bad.CommandMismatch = true
	if act := m.Observe(bad); !act.BlockRaise {
		t.Fatal("clamp not armed on the distrusted interval itself")
	}
	for i := 0; i < cfg.DistrustHoldSteps-1; i++ {
		if act := m.Observe(healthySample()); !act.BlockRaise {
			t.Fatalf("hold step %d: clamp released early", i)
		}
	}
	if act := m.Observe(healthySample()); act.BlockRaise {
		t.Fatal("clamp still armed past the hold window")
	}
	if st := m.Stats(); st.DistrustSteps != cfg.DistrustHoldSteps {
		t.Fatalf("DistrustSteps = %d, want %d", st.DistrustSteps, cfg.DistrustHoldSteps)
	}
	// Disabled clamp never arms.
	cfg.DistrustHoldSteps = 0
	m2 := New(cfg)
	if act := m2.Observe(bad); act.BlockRaise {
		t.Fatal("clamp armed while disabled")
	}
}
