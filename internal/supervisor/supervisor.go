// Package supervisor is the supervisory safety layer above a controller
// stack: a per-session state machine that watches controller health every
// control interval and, when the model-based controller leaves its validity
// envelope, hands the actuators to a safe fallback and later re-engages the
// primary in stages (DESIGN.md §7).
//
// The paper ships the ODROID firmware's emergency heuristics underneath its
// controllers as a last line of defense (§II, §V); this package is the layer
// between the two — it reacts to controller sickness (non-finite or
// rail-pinned commands, exhausted guardbands, divergence from the run's own
// cost baseline, actuator chatter, sustained sensor dropout) before the
// firmware has to, and unlike the firmware it restores the primary
// controller deliberately: a quarantine of healthy fallback steps, a
// bumpless state re-seed, and a slew-limited re-engagement window mirroring
// the TMU's one-step-at-a-time un-throttle.
//
// The package is deliberately free of board and controller imports: the
// wrapper (core's SupervisedScheme) distills each control interval into a
// Sample, and the Monitor answers with the state the next interval must run
// under. Everything is deterministic — no clocks, no RNG — so supervised
// experiment sweeps stay byte-identical at any parallelism.
package supervisor

import (
	"fmt"
	"math"
	"math/bits"
)

// State is the supervisory state machine's position:
//
//	Nominal → Suspect → Fallback → Recovering → Nominal
//	   ↑________________________________|  (re-trip during recovery)
//
// Nominal and Suspect run the primary controller (Suspect means a soft trip
// condition is active but not yet confirmed); Fallback runs the safe
// fallback scheme; Recovering runs the re-seeded primary under a staged
// authority clamp.
type State int

// The supervisory states, in transition order.
const (
	// Nominal: the primary controller is healthy and in authority.
	Nominal State = iota
	// Suspect: a soft trip condition is active; the primary keeps authority
	// while the condition is confirmed over ConfirmSteps intervals.
	Suspect
	// Fallback: the primary tripped; the safe fallback scheme has authority.
	Fallback
	// Recovering: quarantine completed; the re-seeded primary has authority
	// under a staged (slew-limited) re-engagement clamp.
	Recovering
)

// String names the state for tables and logs.
func (s State) String() string {
	switch s {
	case Nominal:
		return "nominal"
	case Suspect:
		return "suspect"
	case Fallback:
		return "fallback"
	case Recovering:
		return "recovering"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Cause identifies which health detector confirmed a trip.
type Cause int

// Trip causes, in detector-priority order (the order they are evaluated and
// the order stats tables report them).
const (
	// CauseNone means no trip.
	CauseNone Cause = iota
	// CauseNonFinite: the active controller emitted a NaN/Inf command, or the
	// requested actuator state itself went non-finite. Trips immediately.
	CauseNonFinite
	// CauseGuardband: the runtime's guardband monitor latched — deviations
	// persistently exceeded the synthesis' guaranteed bounds, so the modeled
	// uncertainty is exhausted (paper §II-B).
	CauseGuardband
	// CauseRail: the raw (pre-saturation) command stayed pinned far beyond
	// the physical actuator range for RailSteps consecutive intervals.
	CauseRail
	// CauseDivergence: the short-window cost proxy diverged from the run's
	// own long-window baseline by more than DivergenceFactor.
	CauseDivergence
	// CauseChatter: an actuator channel reversed direction nearly every
	// interval (a quantizer/controller limit cycle).
	CauseChatter
	// CauseDropout: the sensor path delivered no fresh data — non-finite or
	// bit-for-bit stale readings — for DropoutTrip of the last DropoutWindow
	// intervals. The primary is flying blind more than it is controlling.
	CauseDropout
	// CauseActuation: actuator write-verification failed — the applied
	// operating point differed from the commanded one — for MismatchTrip of
	// the last MismatchWindow intervals. The command path, not the
	// controller, is broken, but the controller's authority is meaningless
	// while its commands do not land.
	CauseActuation
	// CauseThrottle: suspicious firmware throttling — the thermal emergency
	// path engaged while the temperature reading sat cool (a misreading
	// diode or an externally forced cap) — persisted for ThrottleTrip of the
	// last ThrottleWindow intervals. The firmware, not the primary, owns the
	// operating point, so authority belongs with the fallback until the
	// storm passes.
	CauseThrottle
	// CauseOperator: an operator (the serve layer's trip endpoint or its
	// graceful-drain walk) forced the transfer. No detector fired — the trip
	// is a command, not a diagnosis — but the transfer mechanics (bumpless
	// hand-off, quarantine, staged re-engagement) are identical to a
	// detector-confirmed trip.
	CauseOperator
	// CauseCount bounds the Cause enum (for stats arrays).
	CauseCount
)

// String names the cause for tables and logs.
func (c Cause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseNonFinite:
		return "non-finite"
	case CauseGuardband:
		return "guardband"
	case CauseRail:
		return "rail-pinned"
	case CauseDivergence:
		return "divergence"
	case CauseChatter:
		return "chatter"
	case CauseDropout:
		return "dropout"
	case CauseActuation:
		return "actuation-fault"
	case CauseThrottle:
		return "throttle-storm"
	case CauseOperator:
		return "operator"
	}
	return fmt.Sprintf("cause(%d)", int(c))
}

// Health is the controller-health snapshot the wrapper polls from the active
// controller runtime(s) each interval (ssvctl.Runtime.Health and
// lqgctl.Runtime.Health, merged across layers).
type Health struct {
	// GuardbandStreak is the runtime's current run of consecutive intervals
	// whose deviations exceeded the synthesis' guaranteed bounds (it resets
	// to zero the moment one interval is back inside them). The supervisor
	// keys on this streak, not the runtime's latched exceeded flag: a single
	// workload phase change early in a run must not condemn the controller
	// for the rest of it.
	GuardbandStreak int
	// HeldSteps is the cumulative count of intervals the runtime skipped
	// because its sensor view was non-finite.
	HeldSteps int
	// Railed reports that the latest raw command of some channel sat far
	// beyond its physical level range.
	Railed bool
	// NonFinite reports that the latest raw command contained NaN/Inf.
	NonFinite bool
}

// Sample distills one control interval for the monitor. The wrapper fills it
// after the active session (primary or fallback) has stepped.
type Sample struct {
	// SensorsFinite reports whether every sensor reading was finite.
	SensorsFinite bool
	// PowerStale reports that both power readings repeated the previous
	// interval's values bit-for-bit. The physical sense path never does that
	// — powers are continuous functions of a continuously evolving plant —
	// so an exact repeat is the signature of a latched sensor register; the
	// interval carries no fresh power information.
	PowerStale bool
	// Throttled reports whether firmware emergency throttling is engaged.
	Throttled bool
	// ThermalThrottled reports whether specifically the thermal emergency
	// path is engaged.
	ThermalThrottled bool
	// CommandMismatch reports that some actuator write this interval failed
	// read-back verification: the applied value differed from the (clamped,
	// quantized) requested one. Impossible on a healthy command path.
	CommandMismatch bool
	// TempC is the temperature reading (may be NaN under fault injection).
	TempC float64
	// CostProxy is the instantaneous E×D rate proxy (power over squared
	// performance); may be non-finite when the sensor path dropped.
	CostProxy float64
	// Commands is the requested actuator state after the step:
	// [bigCores, littleCores, bigFreqGHz, littleFreqGHz].
	Commands [4]float64
	// Health is the active controller's health snapshot (zero during
	// Fallback — the heuristic has no runtime monitor).
	Health Health
}

// Action is the monitor's verdict for one observed interval. State is the
// state the NEXT interval must run under; the two flags tell the wrapper
// which one-shot transfer work to perform before that interval.
type Action struct {
	// State the next control interval runs under.
	State State
	// Tripped: this step confirmed a trip. The wrapper must bumpless-
	// initialize the fallback from the last physical commands now.
	Tripped bool
	// Cause of the trip when Tripped is set.
	Cause Cause
	// Reengage: quarantine completed this step. The wrapper must re-seed the
	// primary's state from current measurements now.
	Reengage bool
	// BlockRaise: the no-raise authority clamp is armed for the next
	// interval — the wrapper must veto upward frequency moves (see
	// Config.DistrustHoldSteps).
	BlockRaise bool
}

// Config tunes the monitor's detectors and recovery policy. All window and
// streak lengths are in control intervals. The zero value is not usable;
// start from DefaultConfig.
type Config struct {
	// WarmupSteps disarms the soft detectors for the first part of a run,
	// while targets converge and the cost baseline forms.
	WarmupSteps int
	// ConfirmSteps is how many consecutive intervals a soft condition must
	// persist (the Suspect state) before it trips.
	ConfirmSteps int
	// QuarantineSteps is how many consecutive healthy fallback intervals are
	// required before the primary is re-engaged.
	QuarantineSteps int
	// RecoverySteps is the length of the staged re-engagement window during
	// which the wrapper slew-limits the primary's authority.
	RecoverySteps int
	// GraceSteps disarms the soft detectors after a completed recovery, so
	// the re-seeded primary's settling transient cannot re-trip it.
	GraceSteps int
	// GuardbandSteps trips CauseGuardband when the runtime's current
	// over-bound streak (Health.GuardbandStreak) reaches this length; 0
	// disables the detector. It must sit above the longest streak clean runs
	// produce during workload phase changes (calibration in DESIGN.md §7).
	GuardbandSteps int
	// DivergenceFactor trips when the short-window cost proxy exceeds the
	// long-window baseline by this factor.
	DivergenceFactor float64
	// BaselineWindow is the long cost-EMA window (and the number of finite
	// cost samples required before the divergence detector arms).
	BaselineWindow int
	// ShortWindow is the short cost-EMA window.
	ShortWindow int
	// RailSteps is the consecutive rail-pinned intervals that trip
	// CauseRail; 0 disables the detector.
	RailSteps int
	// ChatterWindow is the sliding window (≤ 32) over which actuator
	// direction reversals are counted.
	ChatterWindow int
	// ChatterReversals trips CauseChatter when any channel reverses at least
	// this many times within ChatterWindow; 0 disables the detector.
	ChatterReversals int
	// DropoutWindow is the sliding window (≤ 64) over which intervals
	// without fresh sensor data — held (non-finite view) or stale
	// (bit-for-bit repeated power readings) — are counted.
	DropoutWindow int
	// DropoutTrip trips CauseDropout when at least this many of the last
	// DropoutWindow intervals carried no fresh sensor data; 0 disables the
	// detector.
	DropoutTrip int
	// MismatchWindow is the sliding window (≤ 64) over which actuator
	// write-verification failures are counted.
	MismatchWindow int
	// MismatchTrip trips CauseActuation when at least this many of the last
	// MismatchWindow intervals had an actuator write whose applied value
	// differed from the requested one; 0 disables the detector.
	MismatchTrip int
	// ThrottleWindow is the sliding window (≤ 64) over which suspicious
	// throttle intervals are counted.
	ThrottleWindow int
	// ThrottleTrip trips CauseThrottle when at least this many of the last
	// ThrottleWindow intervals were suspiciously throttled (thermal path
	// engaged below SuspectTempC); 0 disables the detector.
	ThrottleTrip int
	// SuspectTempC qualifies a throttle interval as suspicious: the thermal
	// emergency path engaged while the temperature reading sat below this.
	// Organic thermal emergencies live within the firmware's hysteresis band
	// of the trip threshold; a thermal throttle reported well below it means
	// the diode and the firmware disagree — a misread or a forced cap.
	// 0 disables suspicion entirely (no throttle interval is suspicious).
	SuspectTempC float64
	// TempLimitC is the temperature below which a fallback interval counts
	// as healthy for quarantine purposes.
	TempLimitC float64
	// FallbackDerateSteps is how many frequency quantizer steps below the
	// trip-time effective frequencies the fallback's conservative ceiling is
	// seeded (per cluster). A sick controller's last operating point is often
	// an aggressive one; the safe posture is a mild derate of it, not a hold.
	// 0 holds the trip-time point exactly.
	FallbackDerateSteps int
	// FreezeSearchOnDropout pauses the primary's target search (the §IV-D
	// optimizers) while the interval carries no fresh sensor data (held or
	// stale readings), so the hill climb cannot learn from a fabricated cost
	// sample. Purely advisory: the wrapper implements it, the monitor only
	// accounts for it.
	FreezeSearchOnDropout bool
	// DistrustHoldSteps arms the no-raise authority clamp: after an interval
	// whose evidence is distrusted — a suspicious firmware throttle, an
	// actuator write that failed verification, or no fresh sensor data — the
	// wrapper blocks upward frequency moves for this many subsequent
	// intervals (downward moves stay free). A controller acting on evidence
	// it cannot trust may shed power but may not add it: the fail-safe bias
	// keeps a possibly-stuck or possibly-hot operating point on the safe
	// side until trustworthy evidence returns. 0 disables the clamp.
	DistrustHoldSteps int
}

// DefaultConfig returns the shipped supervisor tuning. The calibration
// principle (measurements in DESIGN.md §7): trips hand authority to a crude
// fallback whose E×D rate is a multiple of the primary's, so they are
// reserved for signals that mean the CONTROLLER is sick — non-finite
// commands, rail pinning, cost divergence, actuator chatter, and near-total
// sensor dropout — and every threshold clears the worst pressure clean runs
// produce with margin, so clean (fault-free) runs record zero trips.
// Fault-owned environmental signals (suspicious throttling, actuator
// write-verification failures, partial dropout) get the graduated responses
// instead: the search freeze and the no-raise authority clamp, both of
// which fire only under injected faults and measurably beat both doing
// nothing and falling back.
//
// The guardband-streak detector ships disabled because the simulated plant
// cannot separate it cleanly: clean SSV runs of memory-bound apps hold
// deviations outside the guaranteed bounds for hundreds of intervals — the
// synthesis' bounds are simply not honest there. The throttle-storm and
// actuation-fault trip detectors likewise ship disabled: transferring to
// the fallback for the duration of an environmental storm was measured to
// cost more E×D than the storm itself (the clamp handles both). All three
// remain available as knobs. The throttle-storm detector keys on
// *suspicious* throttle only (thermal path engaged below SuspectTempC):
// organic thermal emergencies run inside the firmware's hysteresis band, so
// clean runs contribute nothing to its window no matter how densely they
// throttle.
func DefaultConfig() Config {
	return Config{
		WarmupSteps:           48,
		ConfirmSteps:          4,
		QuarantineSteps:       24,
		RecoverySteps:         12,
		GraceSteps:            32,
		GuardbandSteps:        0,
		DivergenceFactor:      3.0,
		BaselineWindow:        64,
		ShortWindow:           8,
		RailSteps:             8,
		ChatterWindow:         32,
		ChatterReversals:      16,
		DropoutWindow:         32,
		DropoutTrip:           28,
		MismatchWindow:        32,
		MismatchTrip:          0,
		ThrottleWindow:        32,
		ThrottleTrip:          0,
		SuspectTempC:          76,
		TempLimitC:            79,
		FallbackDerateSteps:   2,
		FreezeSearchOnDropout: true,
		DistrustHoldSteps:     20,
	}
}

// Suspicious reports whether a sample's throttle state is suspicious: the
// thermal emergency path engaged while the temperature reading sat below
// SuspectTempC (NaN readings are not suspicious — absence of evidence).
func (c Config) Suspicious(smp Sample) bool {
	return c.SuspectTempC > 0 && smp.ThermalThrottled &&
		!math.IsNaN(smp.TempC) && smp.TempC < c.SuspectTempC
}

// NoFreshData reports whether a sample carried no fresh sensor information:
// a non-finite view (held) or bit-for-bit repeated power readings (stale).
func (smp Sample) NoFreshData() bool { return !smp.SensorsFinite || smp.PowerStale }

// Distrusted reports whether a sample's evidence is distrusted: a suspicious
// firmware throttle, a failed actuator write-verification, or no fresh sensor
// data. Distrusted intervals arm the no-raise clamp (DistrustHoldSteps).
func (c Config) Distrusted(smp Sample) bool {
	return c.Suspicious(smp) || smp.CommandMismatch || smp.NoFreshData()
}

// Stats is the accounting a supervised run reports: how often the primary
// tripped and why, how long the fallback held authority, and how quickly the
// primary was restored.
type Stats struct {
	// Trips counts confirmed transfers to the fallback (including re-trips
	// during recovery).
	Trips int
	// Causes counts trips per Cause (indexed by the Cause constants).
	Causes [CauseCount]int
	// FallbackSteps counts control intervals the fallback held authority.
	FallbackSteps int
	// RecoveringSteps counts control intervals spent in the staged
	// re-engagement window.
	RecoveringSteps int
	// Recoveries counts completed trips-to-nominal round trips.
	Recoveries int
	// RecoveryLatencySteps sums, over completed recoveries, the interval
	// count from trip to return-to-nominal.
	RecoveryLatencySteps int
	// FrozenSteps counts intervals the primary's target search was paused
	// because the sensor view carried no fresh data.
	FrozenSteps int
	// DistrustSteps counts intervals the no-raise authority clamp was armed
	// while the primary held authority.
	DistrustSteps int
	// Peaks records the maximum detector pressure seen while the primary
	// held authority — the data the calibration margins in DESIGN.md §7
	// come from.
	Peaks Peaks
}

// Peaks is the maximum pressure each soft detector saw while the primary
// held authority. A clean run's peaks tell how much margin the shipped trip
// thresholds have; a faulted run's peaks tell how far past them it went.
type Peaks struct {
	// GuardbandStreak is the longest over-bound streak observed.
	GuardbandStreak int
	// RailStreak is the longest rail-pinned streak observed.
	RailStreak int
	// ChatterCount is the largest per-window reversal count observed.
	ChatterCount int
	// HeldCount is the largest per-window no-fresh-data interval count
	// observed.
	HeldCount int
	// MismatchCount is the largest per-window actuator write-verification
	// failure count observed.
	MismatchCount int
	// ThrottleCount is the largest per-window suspicious-throttle interval
	// count observed.
	ThrottleCount int
}

// take folds one interval's detector pressure into the peaks.
func (p *Peaks) take(guardband, rail, chatter, held, mismatch, throttle int) {
	if guardband > p.GuardbandStreak {
		p.GuardbandStreak = guardband
	}
	if rail > p.RailStreak {
		p.RailStreak = rail
	}
	if chatter > p.ChatterCount {
		p.ChatterCount = chatter
	}
	if held > p.HeldCount {
		p.HeldCount = held
	}
	if mismatch > p.MismatchCount {
		p.MismatchCount = mismatch
	}
	if throttle > p.ThrottleCount {
		p.ThrottleCount = throttle
	}
}

// Add accumulates o into s (aggregation across runs).
func (s *Stats) Add(o Stats) {
	s.Trips += o.Trips
	for i := range s.Causes {
		s.Causes[i] += o.Causes[i]
	}
	s.FallbackSteps += o.FallbackSteps
	s.RecoveringSteps += o.RecoveringSteps
	s.Recoveries += o.Recoveries
	s.RecoveryLatencySteps += o.RecoveryLatencySteps
	s.FrozenSteps += o.FrozenSteps
	s.DistrustSteps += o.DistrustSteps
	s.Peaks.take(o.Peaks.GuardbandStreak, o.Peaks.RailStreak,
		o.Peaks.ChatterCount, o.Peaks.HeldCount, o.Peaks.MismatchCount,
		o.Peaks.ThrottleCount)
}

// MeanRecoverySteps is the mean trip-to-nominal latency in control
// intervals (0 when no recovery completed).
func (s Stats) MeanRecoverySteps() float64 {
	if s.Recoveries == 0 {
		return 0
	}
	return float64(s.RecoveryLatencySteps) / float64(s.Recoveries)
}

// Probe is the monitor's point-in-time detector view for the flight
// recorder (DESIGN.md §8): the live pressure of every soft detector against
// its trip threshold. State and the one-shot transfer flags are filled by
// the wrapper (which knows the state the recorded interval actually ran
// under and the action it produced); the counts come from Monitor.Probe.
type Probe struct {
	// State is the supervisory state the recorded interval ran under.
	State State
	// Tripped reports that the interval confirmed a trip.
	Tripped bool
	// Cause is the confirmed trip's cause when Tripped is set.
	Cause Cause
	// Reengage reports that quarantine completed this interval.
	Reengage bool
	// BlockRaise reports that the no-raise clamp is armed for the next
	// interval.
	BlockRaise bool
	// SuspectStreak is the current consecutive-soft-condition streak
	// (confirms a trip at Config.ConfirmSteps).
	SuspectStreak int
	// RailStreak is the current consecutive rail-pinned streak (trips at
	// Config.RailSteps).
	RailStreak int
	// ChatterCount is the worst channel's reversal count in the chatter
	// window (trips at Config.ChatterReversals).
	ChatterCount int
	// DropoutCount is the no-fresh-data interval count in the dropout
	// window (trips at Config.DropoutTrip).
	DropoutCount int
	// MismatchCount is the actuator write-verification failure count in the
	// mismatch window (trips at Config.MismatchTrip).
	MismatchCount int
	// ThrottleCount is the suspicious-throttle interval count in the
	// throttle window (trips at Config.ThrottleTrip).
	ThrottleCount int
	// CostRatio is the short-window cost EMA over the long-window baseline
	// (trips at Config.DivergenceFactor); 0 until the baseline has formed.
	CostRatio float64
}

// Probe returns the detector pressures after the latest Observe. The State
// and transfer-flag fields are zero — the wrapper overlays them from the
// interval it recorded.
func (m *Monitor) Probe() Probe {
	p := Probe{
		SuspectStreak: m.suspectStreak,
		RailStreak:    m.railStreak,
		ChatterCount:  m.chatterCount(),
		DropoutCount:  m.heldCount(),
		MismatchCount: m.mismatchCount(),
		ThrottleCount: m.throttleCount(),
	}
	if m.emaN >= m.cfg.BaselineWindow && m.baseEMA > 0 {
		p.CostRatio = m.shortEMA / m.baseEMA
	}
	return p
}

// Monitor is the per-session supervisory state machine. It is not safe for
// concurrent use; like a controller runtime, one Monitor belongs to exactly
// one run.
type Monitor struct {
	cfg   Config
	state State
	step  int
	grace int

	// Soft-condition confirmation.
	suspectStreak int
	railStreak    int

	// Cost-divergence EMAs.
	baseEMA, shortEMA float64
	emaN              int

	// Fallback quarantine and staged recovery.
	quarGood    int
	recoverLeft int
	tripStep    int

	// No-raise clamp countdown (DistrustHoldSteps).
	distrustLeft int

	// Sliding windows.
	lastHeld     int
	heldMask     uint64
	mismatchMask uint64
	throttleMask uint64
	chat         [4]chatterTrack

	stats Stats
}

// chatterTrack counts direction reversals of one actuator channel over a
// sliding bit window.
type chatterTrack struct {
	prev float64
	dir  int
	have bool
	mask uint32
}

// New builds a monitor in the Nominal state. Out-of-range window lengths are
// clamped to their representable maxima (32 for ChatterWindow, 64 for
// DropoutWindow, minimum 1 everywhere).
func New(cfg Config) *Monitor {
	clampMin := func(v *int, lo int) {
		if *v < lo {
			*v = lo
		}
	}
	clampMin(&cfg.ConfirmSteps, 1)
	clampMin(&cfg.QuarantineSteps, 1)
	clampMin(&cfg.RecoverySteps, 1)
	clampMin(&cfg.BaselineWindow, 1)
	clampMin(&cfg.ShortWindow, 1)
	if cfg.ChatterWindow < 1 || cfg.ChatterWindow > 32 {
		if cfg.ChatterWindow > 32 {
			cfg.ChatterWindow = 32
		} else {
			cfg.ChatterWindow = 1
		}
	}
	if cfg.DropoutWindow < 1 || cfg.DropoutWindow > 64 {
		if cfg.DropoutWindow > 64 {
			cfg.DropoutWindow = 64
		} else {
			cfg.DropoutWindow = 1
		}
	}
	if cfg.MismatchWindow < 1 || cfg.MismatchWindow > 64 {
		if cfg.MismatchWindow > 64 {
			cfg.MismatchWindow = 64
		} else {
			cfg.MismatchWindow = 1
		}
	}
	if cfg.ThrottleWindow < 1 || cfg.ThrottleWindow > 64 {
		if cfg.ThrottleWindow > 64 {
			cfg.ThrottleWindow = 64
		} else {
			cfg.ThrottleWindow = 1
		}
	}
	return &Monitor{cfg: cfg}
}

// State returns the state the next observed interval runs under.
func (m *Monitor) State() State { return m.state }

// Stats returns the accounting so far.
func (m *Monitor) Stats() Stats { return m.stats }

// Config returns the monitor's (clamped) configuration.
func (m *Monitor) Config() Config { return m.cfg }

// Observe feeds one control interval's sample and returns the action for the
// next interval. The wrapper calls it exactly once per interval, after the
// active session has stepped.
func (m *Monitor) Observe(smp Sample) Action {
	m.step++
	var act Action
	if m.cfg.FreezeSearchOnDropout && smp.NoFreshData() && m.state != Fallback {
		m.stats.FrozenSteps++
	}
	if m.cfg.DistrustHoldSteps > 0 && m.cfg.Distrusted(smp) {
		m.distrustLeft = m.cfg.DistrustHoldSteps
	}
	m.observeCommands(smp.Commands)
	m.observeHeld(smp.Health.HeldSteps, smp.PowerStale)
	m.observeMismatch(smp.CommandMismatch)
	m.observeThrottle(m.cfg.Suspicious(smp))
	if finite(smp.CostProxy) {
		if m.emaN == 0 {
			m.baseEMA, m.shortEMA = smp.CostProxy, smp.CostProxy
		} else {
			m.baseEMA += (smp.CostProxy - m.baseEMA) / float64(m.cfg.BaselineWindow)
			m.shortEMA += (smp.CostProxy - m.shortEMA) / float64(m.cfg.ShortWindow)
		}
		m.emaN++
	}
	switch m.state {
	case Nominal, Suspect:
		m.watchPrimary(smp, &act)
	case Fallback:
		m.stats.FallbackSteps++
		if m.fallbackHealthy(smp) {
			m.quarGood++
		} else {
			m.quarGood = 0
		}
		if m.quarGood >= m.cfg.QuarantineSteps {
			m.state = Recovering
			m.recoverLeft = m.cfg.RecoverySteps
			m.resetWindows()
			// The short EMA has converged to the fallback's cost; restart it
			// from the baseline so a pre-trip divergence cannot re-trip the
			// primary before it has produced a single new sample.
			m.shortEMA = m.baseEMA
			act.Reengage = true
		}
	case Recovering:
		m.stats.RecoveringSteps++
		m.watchPrimary(smp, &act)
		if m.state == Recovering {
			m.recoverLeft--
			if m.recoverLeft <= 0 {
				m.state = Nominal
				m.grace = m.cfg.GraceSteps
				m.stats.Recoveries++
				m.stats.RecoveryLatencySteps += m.step - m.tripStep
			}
		}
	}
	if m.distrustLeft > 0 {
		m.distrustLeft--
		if m.state != Fallback {
			act.BlockRaise = true
			m.stats.DistrustSteps++
		}
	}
	act.State = m.state
	return act
}

// watchPrimary evaluates the trip detectors while the primary has authority
// (Nominal, Suspect or Recovering).
func (m *Monitor) watchPrimary(smp Sample, act *Action) {
	// Hard condition: a non-finite command is never tolerable, warmup or not.
	if smp.Health.NonFinite || !finite4(smp.Commands) {
		m.trip(CauseNonFinite, act)
		return
	}
	if smp.Health.Railed {
		m.railStreak++
	} else {
		m.railStreak = 0
	}
	if m.step <= m.cfg.WarmupSteps || m.grace > 0 {
		if m.grace > 0 {
			m.grace--
		}
		return
	}
	// Peaks are recorded exactly where the detectors are armed, so a clean
	// run's peaks are directly comparable to the trip thresholds.
	m.stats.Peaks.take(smp.Health.GuardbandStreak, m.railStreak,
		m.chatterCount(), m.heldCount(), m.mismatchCount(), m.throttleCount())
	cause := CauseNone
	switch {
	case m.cfg.GuardbandSteps > 0 && smp.Health.GuardbandStreak >= m.cfg.GuardbandSteps:
		cause = CauseGuardband
	case m.cfg.ThrottleTrip > 0 && m.throttleCount() >= m.cfg.ThrottleTrip:
		cause = CauseThrottle
	case m.cfg.RailSteps > 0 && m.railStreak >= m.cfg.RailSteps:
		cause = CauseRail
	case m.divergent():
		cause = CauseDivergence
	case m.cfg.ChatterReversals > 0 && m.chatterCount() >= m.cfg.ChatterReversals:
		cause = CauseChatter
	case m.cfg.DropoutTrip > 0 && m.heldCount() >= m.cfg.DropoutTrip:
		cause = CauseDropout
	case m.cfg.MismatchTrip > 0 && m.mismatchCount() >= m.cfg.MismatchTrip:
		cause = CauseActuation
	}
	if cause == CauseNone {
		if m.state == Suspect {
			m.state = Nominal
		}
		m.suspectStreak = 0
		return
	}
	m.suspectStreak++
	if m.state == Nominal {
		m.state = Suspect
	}
	if m.suspectStreak >= m.cfg.ConfirmSteps {
		m.trip(cause, act)
	}
}

// ForceTrip transfers authority to the fallback immediately, outside the
// detector path — the operator-commanded trip behind the serve layer's trip
// endpoint and graceful drain. It performs exactly the transfer-to-fallback
// bookkeeping of a detector-confirmed trip (stats, quarantine reset, window
// reset) and returns the resulting one-shot Action (Tripped set, with the
// given cause) so the wrapper can run its bumpless hand-off. Forcing while
// already in Fallback is a no-op returning the current state.
func (m *Monitor) ForceTrip(cause Cause) Action {
	act := Action{State: m.state}
	if m.state == Fallback {
		return act
	}
	m.trip(cause, &act)
	act.State = m.state
	return act
}

// trip performs the transfer-to-fallback bookkeeping.
func (m *Monitor) trip(cause Cause, act *Action) {
	m.state = Fallback
	m.stats.Trips++
	m.stats.Causes[cause]++
	m.tripStep = m.step
	m.quarGood = 0
	m.suspectStreak = 0
	m.railStreak = 0
	m.resetWindows()
	act.Tripped = true
	act.Cause = cause
}

// fallbackHealthy reports whether a fallback interval counts toward the
// re-engagement quarantine: no firmware emergency engaged and the (finite)
// temperature below the limit. Sensor dropout does not reset quarantine —
// the sanitized fallback tolerates it, and requiring a long fully-finite
// streak would strand the session in fallback under sustained dropout.
func (m *Monitor) fallbackHealthy(smp Sample) bool {
	if smp.Throttled {
		return false
	}
	if !math.IsNaN(smp.TempC) && smp.TempC >= m.cfg.TempLimitC {
		return false
	}
	return true
}

// divergent reports the cost-divergence condition once the baseline has
// formed.
func (m *Monitor) divergent() bool {
	return m.emaN >= m.cfg.BaselineWindow &&
		m.shortEMA > m.cfg.DivergenceFactor*m.baseEMA
}

// observeCommands advances the per-channel reversal windows.
func (m *Monitor) observeCommands(cmd [4]float64) {
	for i := range m.chat {
		c := &m.chat[i]
		bit := uint32(0)
		if c.have {
			d := cmd[i] - c.prev
			dir := 0
			switch {
			case d > 1e-9:
				dir = 1
			case d < -1e-9:
				dir = -1
			}
			if dir != 0 {
				if c.dir != 0 && dir == -c.dir {
					bit = 1
				}
				c.dir = dir
			}
		}
		c.mask = ((c.mask << 1) | bit) & windowMask32(m.cfg.ChatterWindow)
		c.prev = cmd[i]
		c.have = true
	}
}

// chatterCount returns the worst channel's reversal count in the window.
func (m *Monitor) chatterCount() int {
	worst := 0
	for i := range m.chat {
		if n := bits.OnesCount32(m.chat[i].mask); n > worst {
			worst = n
		}
	}
	return worst
}

// observeHeld advances the no-fresh-data window from the cumulative held
// counter (a decrease means the runtime was re-seeded; treat as no hold) and
// the stale-reading flag.
func (m *Monitor) observeHeld(held int, stale bool) {
	bit := uint64(0)
	if held > m.lastHeld || stale {
		bit = 1
	}
	m.lastHeld = held
	m.heldMask = ((m.heldMask << 1) | bit) & windowMask64(m.cfg.DropoutWindow)
}

// heldCount returns the no-fresh-data intervals within the dropout window.
func (m *Monitor) heldCount() int { return bits.OnesCount64(m.heldMask) }

// observeMismatch advances the actuator write-verification window.
func (m *Monitor) observeMismatch(mismatch bool) {
	bit := uint64(0)
	if mismatch {
		bit = 1
	}
	m.mismatchMask = ((m.mismatchMask << 1) | bit) & windowMask64(m.cfg.MismatchWindow)
}

// mismatchCount returns the write-verification failures within the window.
func (m *Monitor) mismatchCount() int { return bits.OnesCount64(m.mismatchMask) }

// observeThrottle advances the suspicious-throttle window.
func (m *Monitor) observeThrottle(suspicious bool) {
	bit := uint64(0)
	if suspicious {
		bit = 1
	}
	m.throttleMask = ((m.throttleMask << 1) | bit) & windowMask64(m.cfg.ThrottleWindow)
}

// throttleCount returns the suspicious-throttle intervals within the window.
func (m *Monitor) throttleCount() int { return bits.OnesCount64(m.throttleMask) }

// resetWindows clears the sliding windows on a state transfer so one
// authority's signal cannot be attributed to the next.
func (m *Monitor) resetWindows() {
	for i := range m.chat {
		m.chat[i] = chatterTrack{}
	}
	m.heldMask = 0
	m.mismatchMask = 0
	m.throttleMask = 0
	m.railStreak = 0
	m.distrustLeft = 0
}

// windowMask32 returns a mask with the low w bits set (w in 1..32).
func windowMask32(w int) uint32 {
	if w >= 32 {
		return ^uint32(0)
	}
	return (1 << uint(w)) - 1
}

// windowMask64 returns a mask with the low w bits set (w in 1..64).
func windowMask64(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (1 << uint(w)) - 1
}

// finite reports whether v is a finite number.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// finite4 reports whether every element of v is finite.
func finite4(v [4]float64) bool {
	for _, x := range v {
		if !finite(x) {
			return false
		}
	}
	return true
}
