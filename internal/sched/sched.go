// Package sched is the shared-clock discrete-event core under the simulation
// runners: a deterministic min-heap of timed events keyed by (time, kind,
// id). The engines in internal/core use it to advance a set of boards
// without polling every board on every control interval — a board schedules
// its next wake, and anything with no scheduled event simply does not exist
// as far as the clock is concerned.
//
// Determinism is the design constraint. Events at the same instant pop in
// (kind, id) order — coordinator events (reallocation, probes) before board
// wakes, board wakes in board-index order — so the engine's behaviour is a
// pure function of the event set, never of heap-internal layout or of which
// worker finished first. The heap is allocation-free in steady state: Push
// reuses the backing array (growing only past the initial capacity) and
// PopBatch fills a caller-owned buffer, so the event path adds zero
// allocations per simulated interval (gated by TestHeapZeroAlloc).
package sched

// Event is one scheduled wake on the shared clock.
type Event struct {
	// Time is the discrete time of the event, in control-interval indices
	// since the start of the run.
	Time int
	// Kind orders events that share an instant: lower kinds run first. The
	// engines use it to run coordinator events (budget reallocation, trace
	// flushes, supervisor probes) before the board wakes they influence.
	Kind int8
	// ID breaks the final tie deterministically; the engines use the board
	// index. Events identical in (Time, Kind, ID) are allowed and pop in an
	// arbitrary order among themselves — callers must not schedule
	// distinguishable work under fully identical keys.
	ID int32
}

// less is the heap's total order: (Time, Kind, ID) lexicographically.
func less(a, b Event) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	return a.ID < b.ID
}

// Heap is a binary min-heap of Events. It is not safe for concurrent use:
// the engines push and pop only from the coordination goroutine, between
// worker-pool barriers — that single-threaded discipline is part of the
// determinism contract, not an implementation accident.
type Heap struct {
	ev []Event
}

// NewHeap returns a heap with room for capacity events before the backing
// array must grow.
func NewHeap(capacity int) *Heap {
	if capacity < 0 {
		capacity = 0
	}
	return &Heap{ev: make([]Event, 0, capacity)}
}

// Len returns the number of scheduled events.
func (h *Heap) Len() int { return len(h.ev) }

// MinTime returns the time of the earliest event. It must not be called on
// an empty heap.
func (h *Heap) MinTime() int { return h.ev[0].Time }

// Push schedules e.
func (h *Heap) Push(e Event) {
	h.ev = append(h.ev, e)
	i := len(h.ev) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !less(h.ev[i], h.ev[parent]) {
			break
		}
		h.ev[i], h.ev[parent] = h.ev[parent], h.ev[i]
		i = parent
	}
}

// Pop removes and returns the earliest event (ties broken by kind, then id).
// It must not be called on an empty heap.
func (h *Heap) Pop() Event {
	top := h.ev[0]
	last := len(h.ev) - 1
	h.ev[0] = h.ev[last]
	h.ev = h.ev[:last]
	h.siftDown(0)
	return top
}

// siftDown restores the heap property from index i downward.
func (h *Heap) siftDown(i int) {
	n := len(h.ev)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && less(h.ev[l], h.ev[smallest]) {
			smallest = l
		}
		if r < n && less(h.ev[r], h.ev[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.ev[i], h.ev[smallest] = h.ev[smallest], h.ev[i]
		i = smallest
	}
}

// PopBatch removes every event scheduled at the earliest time and appends
// them to buf (pass buf[:0] to reuse a buffer), returning the extended
// slice in (kind, id) order. An empty heap returns buf unchanged. The
// engines drain the clock one batch at a time: everything in a batch is
// simultaneous, so ready board wakes may execute in parallel while
// coordinator events have already run first.
func (h *Heap) PopBatch(buf []Event) []Event {
	if len(h.ev) == 0 {
		return buf
	}
	t := h.ev[0].Time
	for len(h.ev) > 0 && h.ev[0].Time == t {
		buf = append(buf, h.Pop())
	}
	return buf
}
