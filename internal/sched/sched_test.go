package sched

import (
	"math/rand"
	"sort"
	"testing"
)

// TestHeapOrdering pushes a shuffled event set and requires pops to come out
// in exact (time, kind, id) order — the determinism contract the engines
// build on.
func TestHeapOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		events := make([]Event, n)
		for i := range events {
			events[i] = Event{
				Time: rng.Intn(20),
				Kind: int8(rng.Intn(3)),
				ID:   int32(rng.Intn(30)),
			}
		}
		h := NewHeap(n)
		for _, e := range events {
			h.Push(e)
		}
		want := append([]Event(nil), events...)
		sort.SliceStable(want, func(i, j int) bool { return less(want[i], want[j]) })
		for i, w := range want {
			if h.Len() != n-i {
				t.Fatalf("trial %d: Len = %d, want %d", trial, h.Len(), n-i)
			}
			if got := h.MinTime(); got != w.Time {
				t.Fatalf("trial %d: MinTime = %d, want %d", trial, got, w.Time)
			}
			got := h.Pop()
			if got.Time != w.Time || got.Kind != w.Kind {
				t.Fatalf("trial %d pop %d: got %+v, want (time,kind)=(%d,%d)", trial, i, got, w.Time, w.Kind)
			}
			// IDs can collide with equal keys; require non-decreasing ID
			// within an equal (time, kind) run.
			if got.Time == w.Time && got.Kind == w.Kind && got.ID != w.ID {
				// Equal-key events are interchangeable only if fully equal.
				if less(got, w) || less(w, got) {
					t.Fatalf("trial %d pop %d: got %+v, want %+v", trial, i, got, w)
				}
			}
		}
	}
}

// TestPopBatch requires PopBatch to drain exactly the earliest instant, in
// (kind, id) order, reusing the caller's buffer.
func TestPopBatch(t *testing.T) {
	h := NewHeap(8)
	h.Push(Event{Time: 3, Kind: 1, ID: 0})
	h.Push(Event{Time: 1, Kind: 2, ID: 7})
	h.Push(Event{Time: 1, Kind: 0, ID: 3})
	h.Push(Event{Time: 1, Kind: 2, ID: 2})
	h.Push(Event{Time: 2, Kind: 0, ID: 1})

	buf := make([]Event, 0, 8)
	got := h.PopBatch(buf[:0])
	want := []Event{{1, 0, 3}, {1, 2, 2}, {1, 2, 7}}
	if len(got) != len(want) {
		t.Fatalf("batch = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("batch[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	if got := h.PopBatch(buf[:0]); len(got) != 1 || got[0] != (Event{2, 0, 1}) {
		t.Fatalf("second batch = %v", got)
	}
	if got := h.PopBatch(buf[:0]); len(got) != 1 || got[0] != (Event{3, 1, 0}) {
		t.Fatalf("third batch = %v", got)
	}
	if got := h.PopBatch(buf[:0]); len(got) != 0 {
		t.Fatalf("empty heap returned %v", got)
	}
}

// TestHeapZeroAlloc is the allocs-per-event gate for the engine hot path: a
// heap operating within its initial capacity must not allocate on Push, Pop
// or PopBatch. CI runs this alongside the controller-step 0 allocs/op gate.
func TestHeapZeroAlloc(t *testing.T) {
	h := NewHeap(64)
	buf := make([]Event, 0, 64)
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 32; i++ {
			h.Push(Event{Time: i % 5, Kind: int8(i % 3), ID: int32(i)})
		}
		for h.Len() > 0 {
			buf = h.PopBatch(buf[:0])
		}
	})
	if allocs != 0 {
		t.Fatalf("heap path allocates %.1f times per push/pop cycle, want 0", allocs)
	}
}

// BenchmarkEventHeap measures the per-event cost of the heap path (push one
// wake, pop one batch) — the fixed overhead the event engine adds per board
// epoch. Run with -benchmem: the report must show 0 allocs/op.
func BenchmarkEventHeap(b *testing.B) {
	h := NewHeap(1024)
	buf := make([]Event, 0, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			h.Push(Event{Time: i + j%8, Kind: int8(j % 3), ID: int32(j)})
		}
		for h.Len() > 0 {
			buf = h.PopBatch(buf[:0])
		}
	}
}
