package exp

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"testing"

	"yukta/internal/core"
	"yukta/internal/fault"
	"yukta/internal/obs"
	"yukta/internal/workload"
)

// readTraceDir returns the sorted names and contents of every file in dir.
func readTraceDir(t *testing.T, dir string) (names []string, contents map[string][]byte) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	contents = map[string][]byte{}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		names = append(names, e.Name())
		contents[e.Name()] = data
	}
	sort.Strings(names)
	return names, contents
}

// TestTraceDeterminismAcrossParallelism runs the supervised fault sweep with
// tracing at parallelism 1 and 8 and requires every recorded file to come out
// byte-identical — the flight recorder must not observe worker scheduling.
func TestTraceDeterminismAcrossParallelism(t *testing.T) {
	base := testContext(t)
	run := func(parallelism int) (names []string, contents map[string][]byte) {
		dir := t.TempDir()
		c := &Context{P: base.P, Parallelism: parallelism, Seed: 1, Supervise: true, TraceDir: dir}
		if _, err := c.RobustnessSweep([]string{"gamess"}, []float64{1.0}); err != nil {
			t.Fatal(err)
		}
		return readTraceDir(t, dir)
	}
	seqNames, seqFiles := run(1)
	parNames, parFiles := run(8)
	if len(seqNames) == 0 {
		t.Fatal("sweep wrote no trace files")
	}
	if len(seqNames) != len(parNames) {
		t.Fatalf("file sets differ: %v vs %v", seqNames, parNames)
	}
	for _, name := range seqNames {
		if !bytes.Equal(seqFiles[name], parFiles[name]) {
			t.Errorf("%s differs between parallelism 1 and 8", name)
		}
	}
}

// TestTraceMatchesAggregates attaches a recorder to one supervised faulted
// run and requires the per-interval records to reproduce the run's aggregate
// supervisor and fault statistics exactly.
func TestTraceMatchesAggregates(t *testing.T) {
	c := testContext(t)
	sch := c.P.SupervisedYuktaSSV(core.DefaultHWParams(), core.DefaultOSParams())
	w, err := workload.Lookup("gamess")
	if err != nil {
		t.Fatal(err)
	}
	opt := runOpts()
	opt.SkipSeries = true
	opt.Faults = fault.Preset(1, 2.0)
	rec := obs.NewRecorder(traceCapacity(opt))
	opt.Trace = rec
	res, err := core.Run(c.P.Cfg, sch, w, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Dropped() != 0 {
		t.Fatalf("recorder dropped %d records; capacity must cover the horizon", rec.Dropped())
	}
	steps := int(res.TimeS/res.IntervalS + 0.5)
	if rec.Len() != steps {
		t.Fatalf("recorded %d intervals, run executed %d", rec.Len(), steps)
	}

	var trips, fallback int
	var f fault.Stats
	for i := 0; i < rec.Len(); i++ {
		r := rec.At(i)
		if r.SupTripped {
			trips++
		}
		if r.SupState == "fallback" {
			fallback++
		}
		f.DroppedReadings += r.FaultDropped
		f.StaleReadings += r.FaultStale
		f.HeldCommands += r.FaultHeld
		f.SkewedCommands += r.FaultSkewed
		f.ForcedThrottles += r.FaultForced
	}
	sup := res.Supervisor
	if sup == nil {
		t.Fatal("supervised run returned no supervisor stats")
	}
	if sup.Trips == 0 {
		t.Fatal("combined campaign at intensity 2.0 tripped zero times; test needs a tripping run")
	}
	if trips != sup.Trips {
		t.Errorf("record trip sum %d != supervisor.Stats.Trips %d", trips, sup.Trips)
	}
	if fallback != sup.FallbackSteps {
		t.Errorf("fallback-state records %d != supervisor.Stats.FallbackSteps %d", fallback, sup.FallbackSteps)
	}
	if f != res.Faults {
		t.Errorf("fault delta sums %+v != fault.Stats %+v", f, res.Faults)
	}

	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := obs.ValidateJSONL(&buf)
	if err != nil {
		t.Fatalf("exported trace fails schema validation: %v", err)
	}
	if n != rec.Len() {
		t.Fatalf("validator counted %d records, recorder holds %d", n, rec.Len())
	}
}

// TestMetricsUnderPool hammers forEachMetered with a registry and checks the
// pool accounting is exact; run under -race this also exercises the registry
// for data races.
func TestMetricsUnderPool(t *testing.T) {
	reg := obs.NewRegistry()
	const n = 200
	var ran atomic.Int64
	err := forEachMetered(8, n, reg, func(i int) error {
		ran.Add(1)
		reg.Histogram("work", obs.LatencyBucketsUS()).Observe(float64(i))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != n {
		t.Fatalf("ran %d jobs, want %d", ran.Load(), n)
	}
	if got := reg.Counter("pool_jobs_total").Value(); got != n {
		t.Fatalf("pool_jobs_total = %d, want %d", got, n)
	}
	g := reg.Gauge("pool_workers_active")
	if g.Value() != 0 {
		t.Fatalf("pool_workers_active settled at %d, want 0", g.Value())
	}
	if g.Max() < 1 || g.Max() > 8 {
		t.Fatalf("pool_workers_active max = %d, want within [1,8]", g.Max())
	}
	if got := reg.Histogram("work", nil).Count(); got != n {
		t.Fatalf("histogram count = %d, want %d", got, n)
	}
}

// TestSkipSeriesScalarEquality checks the SkipSeries opt-out changes nothing
// but the presence of the trace buffers.
func TestSkipSeriesScalarEquality(t *testing.T) {
	c := testContext(t)
	sch := c.P.CoordinatedHeuristic()
	run := func(skip bool) *core.RunResult {
		w, err := workload.Lookup("gamess")
		if err != nil {
			t.Fatal(err)
		}
		opt := runOpts()
		opt.SkipSeries = skip
		res, err := core.Run(c.P.Cfg, sch, w, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	full, skipped := run(false), run(true)
	if skipped.BigPower != nil || skipped.Perf != nil {
		t.Fatal("SkipSeries run still carries series buffers")
	}
	if full.BigPower == nil {
		t.Fatal("normal run lost its series buffers")
	}
	if full.ExD != skipped.ExD || full.TimeS != skipped.TimeS || full.EnergyJ != skipped.EnergyJ {
		t.Fatalf("scalar results differ with SkipSeries: ExD %g vs %g, T %g vs %g, E %g vs %g",
			full.ExD, skipped.ExD, full.TimeS, skipped.TimeS, full.EnergyJ, skipped.EnergyJ)
	}
}
