package exp

import (
	"fmt"
	"math"
	"time"

	"yukta/internal/board"
	"yukta/internal/core"
	"yukta/internal/workload"
)

// Convergence reproduces the §VI-B response-time comparison between the SSV
// and LQG hardware controllers. The paper reports that after a target step
// the LQG controller needs ≈6 sampling intervals to converge the big-cluster
// power where the SSV controller needs ≈2, and that the E×D optimizer needs
// ≈90 intervals to settle its targets with LQG against ≈30 with SSV.
type Convergence struct {
	// StepIntervals is the number of 500 ms control intervals each
	// controller needs to bring the big-cluster power within the tolerance
	// band of a stepped target.
	SSVStepIntervals, LQGStepIntervals int
	// OptimizerIntervals is the number of intervals until the measured E×D
	// rate first comes within 10% of the run's best sustained value.
	SSVOptimizerIntervals, LQGOptimizerIntervals int
}

// stepSession abstracts the two runtimes for the power-step measurement.
type stepSession interface {
	SetTargets(phys []float64) error
	Step(meas, ext, applied []float64) ([]float64, error)
}

// lqgStepAdapter adapts the LQG runtime (which takes no applied-command
// feedback) to the stepSession shape.
type lqgStepAdapter struct {
	rt interface {
		SetTargets(phys []float64) error
		Step(meas, ext []float64) ([]float64, error)
	}
}

func (a lqgStepAdapter) SetTargets(p []float64) error { return a.rt.SetTargets(p) }
func (a lqgStepAdapter) Step(meas, ext, applied []float64) ([]float64, error) {
	return a.rt.Step(meas, ext)
}

// measureStep runs blackscholes' parallel phase under the controller with a
// fixed target set, steps the big-power target from lo to hi at mid-run, and
// counts the intervals until the sensed power stays within tol of hi for
// three consecutive intervals.
func (c *Context) measureStep(sess stepSession, ext bool) (int, error) {
	const (
		lo, hi, tol = 2.2, 2.9, 0.18
		warmup      = 60
		budget      = 80
	)
	b := board.New(c.P.Cfg)
	w, err := workload.Lookup("blackscholes")
	if err != nil {
		return 0, err
	}
	w.Advance(w.Total() * 0.06) // into the parallel phase
	if err := sess.SetTargets([]float64{5.5, lo, 0.2, 70}); err != nil {
		return 0, err
	}
	step := func(s board.Sensors) error {
		pl := b.Placement()
		meas := []float64{s.BIPS, s.BigPowerW, s.LittlePowerW, s.TempC}
		var e []float64
		if ext {
			e = []float64{float64(pl.ThreadsBig), pl.ThreadsPerBigCore, pl.ThreadsPerLittleCore}
		}
		applied := []float64{float64(b.BigCores()), float64(b.LittleCores()),
			b.EffectiveBigFreq(), b.EffectiveLittleFreq()}
		u, err := sess.Step(meas, e, applied)
		if err != nil {
			return err
		}
		b.SetBigCores(int(math.Round(u[0])))
		b.SetLittleCores(int(math.Round(u[1])))
		b.SetBigFreq(u[2])
		b.SetLittleFreq(u[3])
		return nil
	}
	// Keep a fixed reasonable placement so only the HW loop is measured.
	b.Place(board.Placement{ThreadsBig: 8, ThreadsLittle: 0, ThreadsPerBigCore: 2, ThreadsPerLittleCore: 1})
	for i := 0; i < warmup && !w.Done(); i++ {
		s := b.Run(w, 500*time.Millisecond)
		if err := step(s); err != nil {
			return 0, err
		}
	}
	if err := sess.SetTargets([]float64{5.5, hi, 0.2, 70}); err != nil {
		return 0, err
	}
	// Record the post-step trajectory, then measure convergence to the
	// controller's own new steady state (the bounded-input compromise means
	// the settled power is near, not exactly at, the commanded target).
	trace := make([]float64, 0, budget)
	for i := 1; i <= budget && !w.Done(); i++ {
		s := b.Run(w, 500*time.Millisecond)
		if err := step(s); err != nil {
			return 0, err
		}
		trace = append(trace, s.BigPowerW)
	}
	if len(trace) < 12 {
		return budget, nil
	}
	var final float64
	for _, v := range trace[len(trace)-10:] {
		final += v
	}
	final /= 10
	inBand := 0
	for i, v := range trace {
		if math.Abs(v-final) <= tol {
			inBand++
			if inBand >= 3 {
				return i - 1, nil
			}
		} else {
			inBand = 0
		}
	}
	return budget, nil
}

// optimizerSettle runs a full scheme on blackscholes and returns the number
// of intervals until the 10-interval moving E×D rate first comes within 10%
// of the run's best sustained value.
func (c *Context) optimizerSettle(sch core.Scheme) (int, error) {
	w, err := workload.Lookup("blackscholes")
	if err != nil {
		return 0, err
	}
	res, err := core.Run(c.P.Cfg, sch, w, c.traceOpts())
	if err != nil {
		return 0, err
	}
	// E×D rate per interval from the traces: (Pb + Pl + base)/BIPS².
	n := res.Perf.Len()
	if n < 30 {
		return 0, fmt.Errorf("exp: run too short (%d intervals)", n)
	}
	rate := make([]float64, n)
	for i := 0; i < n; i++ {
		perf := math.Max(res.Perf.V[i], 0.3)
		rate[i] = (res.BigPower.V[i] + res.LittlePower.V[i] + c.P.Cfg.BasePowerW) / (perf * perf)
	}
	const win = 10
	smooth := make([]float64, 0, n-win)
	for i := 0; i+win <= n; i++ {
		var s float64
		for j := i; j < i+win; j++ {
			s += rate[j]
		}
		smooth = append(smooth, s/win)
	}
	best := math.Inf(1)
	for _, v := range smooth[:len(smooth)-5] {
		if v < best {
			best = v
		}
	}
	for i, v := range smooth {
		if v <= best*1.10 {
			return i + win, nil
		}
	}
	return n, nil
}

// ConvergenceReport measures the §VI-B response-time comparison. The four
// measurements are independent (each runs on its own board), so they fan
// out across the worker pool; each job writes its own field of the report.
func (c *Context) ConvergenceReport() (*Convergence, error) {
	out := &Convergence{}
	jobs := []func() error{
		// Power-step response: SSV hardware controller.
		func() error {
			ssvCtl, err := c.P.HWControllerValidated(core.DefaultHWParams())
			if err != nil {
				return err
			}
			ssvRT, err := c.P.NewHWRuntime(ssvCtl)
			if err != nil {
				return err
			}
			out.SSVStepIntervals, err = c.measureStep(ssvRT, true)
			return err
		},
		// Power-step response: decoupled hardware LQG (no external signals).
		func() error {
			lqgHW, _, err := c.P.DecoupledLQGControllers()
			if err != nil {
				return err
			}
			lqgRT, err := c.P.NewDecoupledHWLQGRuntime(lqgHW)
			if err != nil {
				return err
			}
			out.LQGStepIntervals, err = c.measureStep(lqgStepAdapter{rt: lqgRT}, false)
			return err
		},
		// Optimizer settling: full Yukta vs monolithic LQG.
		func() error {
			var err error
			out.SSVOptimizerIntervals, err = c.optimizerSettle(
				c.P.YuktaFullSSV(core.DefaultHWParams(), core.DefaultOSParams()))
			return err
		},
		func() error {
			var err error
			out.LQGOptimizerIntervals, err = c.optimizerSettle(c.P.MonolithicLQG())
			return err
		},
	}
	if err := c.forEach(len(jobs), func(i int) error { return jobs[i]() }); err != nil {
		return nil, err
	}
	return out, nil
}

// RenderConvergence renders the §VI-B comparison.
func RenderConvergence(cv *Convergence) string {
	var sb stringsBuilder
	sb.WriteString("§VI-B convergence comparison (500 ms control intervals)\n")
	fmt.Fprintf(&sb, "  big-power target step:  SSV %d intervals, LQG %d intervals (paper: 2 vs 6)\n",
		cv.SSVStepIntervals, cv.LQGStepIntervals)
	fmt.Fprintf(&sb, "  optimizer settling:     SSV %d intervals, LQG %d intervals (paper: 30 vs 90)\n",
		cv.SSVOptimizerIntervals, cv.LQGOptimizerIntervals)
	return sb.String()
}
