package exp

import (
	"strings"
	"sync"
	"testing"
)

var (
	ctxOnce sync.Once
	ctx     *Context
	ctxErr  error
)

func testContext(t *testing.T) *Context {
	t.Helper()
	ctxOnce.Do(func() { ctx, ctxErr = NewContext() })
	if ctxErr != nil {
		t.Fatal(ctxErr)
	}
	return ctx
}

// quickApps is a representative subset (compute-bound SPEC, memory-bound
// SPEC, ramping PARSEC, memory-bound PARSEC) so integration tests stay fast.
var quickApps = []string{"gamess", "mcf", "blackscholes", "streamcluster"}

func TestFig9Subset(t *testing.T) {
	c := testContext(t)
	exd, times, err := c.Fig9(quickApps)
	if err != nil {
		t.Fatal(err)
	}
	// The qualitative Figure 9 shape: averaged over the subset, Yukta full
	// is the best scheme and beats the baseline clearly; the decoupled
	// heuristic does not beat the baseline meaningfully.
	_, _, full := exd.Averages("Yukta: HW SSV+OS SSV")
	_, _, dec := exd.Averages("Decoupled heuristic")
	if full >= 0.9 {
		t.Errorf("Yukta full normalized E×D %.2f, want clearly below 1", full)
	}
	if dec < 0.95 {
		t.Errorf("decoupled normalized E×D %.2f, should not beat the baseline", dec)
	}
	_, _, fullT := times.Averages("Yukta: HW SSV+OS SSV")
	if fullT >= 1.0 {
		t.Errorf("Yukta full normalized time %.2f, want below 1", fullT)
	}
	out := exd.Render()
	if !strings.Contains(out, "Avg") || !strings.Contains(out, "blackscholes") {
		t.Fatalf("render output malformed:\n%s", out)
	}
	t.Logf("\n%s", out)
}

func TestFig10And11Traces(t *testing.T) {
	c := testContext(t)
	f10, err := c.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	if len(f10.Series) != 4 {
		t.Fatalf("Fig10 has %d traces, want 4", len(f10.Series))
	}
	// Decoupled must swing more than Yukta full (the Fig. 10 story).
	dec := f10.Series["Decoupled heuristic"].Summarize()
	full := f10.Series["Yukta: HW SSV+OS SSV"].Summarize()
	if dec.Std <= full.Std {
		t.Errorf("decoupled power std %.2f should exceed Yukta full %.2f", dec.Std, full.Std)
	}
	f11, err := c.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	// Yukta full must finish sooner than the baseline (Fig. 11 story).
	base := f11.Series["Coordinated heuristic"]
	fullPerf := f11.Series["Yukta: HW SSV+OS SSV"]
	if fullPerf.T[len(fullPerf.T)-1] >= base.T[len(base.T)-1] {
		t.Errorf("Yukta full finished at %.1fs, baseline %.1fs",
			fullPerf.T[len(fullPerf.T)-1], base.T[len(base.T)-1])
	}
	if !strings.Contains(f10.Render(), "blackscholes") {
		t.Fatal("Fig10 render missing title")
	}
}

func TestFig12Subset(t *testing.T) {
	c := testContext(t)
	exd, _, err := c.Fig12and13([]string{"blackscholes", "gamess"})
	if err != nil {
		t.Fatal(err)
	}
	_, _, mono := exd.Averages("Monolithic LQG")
	_, _, full := exd.Averages("Yukta: HW SSV+OS SSV")
	if full >= mono {
		t.Errorf("Yukta full (%.2f) should beat monolithic LQG (%.2f)", full, mono)
	}
}

func TestFig14Mixes(t *testing.T) {
	c := testContext(t)
	exd, err := c.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	if len(exd.Apps) != 4 {
		t.Fatalf("Fig14 has %d mixes, want 4", len(exd.Apps))
	}
	// Yukta full stays the best scheme on the heterogeneous mixes (§VI-C).
	norm := exd.Normalized()
	full := norm["Yukta: HW SSV+OS SSV"]
	var avg float64
	for _, a := range exd.Apps {
		avg += full[a]
	}
	avg /= float64(len(exd.Apps))
	if avg >= 1.0 {
		t.Errorf("Yukta full on mixes: normalized E×D %.2f, want below baseline", avg)
	}
}

func TestFig15a(t *testing.T) {
	c := testContext(t)
	tr, err := c.Fig15a()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Series) != 3 {
		t.Fatalf("Fig15a has %d traces, want 3", len(tr.Series))
	}
	// Tighter bounds keep performance closer to the 5.5 BIPS target: the
	// default-bounds trace's mid-run mean must be within the loosest
	// variant's deviation.
	tight := tr.Series["±20% (paper default)"].MeanAbove(40)
	if tight < 3.9 || tight > 7.1 {
		t.Errorf("tight-bounds performance %.2f, want near 5.5", tight)
	}
}

func TestFig16a(t *testing.T) {
	c := testContext(t)
	points, err := c.Fig16a()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 4 {
		t.Fatalf("Fig16a has %d points", len(points))
	}
	// Bounds grow monotonically (weakly) with the guardband, and only
	// slowly at moderate guardbands (the robust-control headline).
	for i := 1; i < len(points); i++ {
		if points[i].BoundsGrowth+1e-9 < points[i-1].BoundsGrowth {
			t.Errorf("guaranteed bounds shrank: %+v", points)
		}
	}
	if points[0].BoundsGrowth != 1 {
		t.Errorf("reference point not normalized: %+v", points[0])
	}
	if points[1].BoundsGrowth > 3 {
		t.Errorf("bounds at ±100%% grew %vx — should grow slowly", points[1].BoundsGrowth)
	}
	t.Logf("\n%s", RenderGuardbandPoints(points))
}

func TestFig17(t *testing.T) {
	c := testContext(t)
	tr, err := c.Fig17()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Series) != 3 {
		t.Fatalf("Fig17 has %d traces, want 3", len(tr.Series))
	}
	// Heavier input weights react more slowly; the weight-0.5 controller is
	// the most ripply (§VI-E3). Compare power swing counts.
	fast := tr.Series["input weights 0.5"].Summarize()
	slow := tr.Series["input weights 2.0"].Summarize()
	if fast.Std < slow.Std {
		t.Errorf("weight 0.5 std %.3f should be >= weight 2 std %.3f", fast.Std, slow.Std)
	}
}

func TestHWCostReport(t *testing.T) {
	c := testContext(t)
	h, err := c.HWCostReport()
	if err != nil {
		t.Fatal(err)
	}
	// §VI-D: N=20, I=4, O=4, E=3, ~700 fixed-point ops, ~2.6 KB.
	if h.StateDim != 20 {
		t.Errorf("N = %d, want 20", h.StateDim)
	}
	if h.Inputs != 4 || h.Outputs != 4 || h.Exts != 3 {
		t.Errorf("I/O/E = %d/%d/%d, want 4/4/3", h.Inputs, h.Outputs, h.Exts)
	}
	if h.OpsPerInvocation < 500 || h.OpsPerInvocation > 2500 {
		t.Errorf("ops %d outside §VI-D ballpark", h.OpsPerInvocation)
	}
	if kb := float64(h.StorageBytes) / 1024; kb < 1 || kb > 8 {
		t.Errorf("storage %.1f KB outside §VI-D ballpark", kb)
	}
	t.Logf("\n%s", RenderHWCost(h))
}

func TestTablesRender(t *testing.T) {
	for name, s := range map[string]string{
		"I": TableI(), "II": TableII(), "III": TableIII(), "IV": TableIV(),
	} {
		if len(s) < 100 || !strings.Contains(s, "Table") {
			t.Errorf("table %s render too small:\n%s", name, s)
		}
	}
	if !strings.Contains(TableII(), "±40%") || !strings.Contains(TableIII(), "±50%") {
		t.Error("guardband annotations missing")
	}
}

func TestAblation(t *testing.T) {
	c := testContext(t)
	a, err := c.AblationReport([]string{"blackscholes", "mcf"})
	if err != nil {
		t.Fatal(err)
	}
	// Guard the measured ablation landscape (see EXPERIMENTS.md): removing
	// self-conditioning must not help, and the external-signal ablation sits
	// in a band — in this reproduction the runtime feedforward is mildly
	// counterproductive (the coordination value lives in the design-time
	// interface), but it must not be catastrophic either way.
	if a.NoConditioning < 0.95 {
		t.Errorf("removing self-conditioning improved E×D to %.2f", a.NoConditioning)
	}
	if a.NoExternals < 0.6 || a.NoExternals > 1.4 {
		t.Errorf("external-signal ablation %.2f outside the expected band", a.NoExternals)
	}
	t.Logf("\n%s", RenderAblation(a))
}
