package exp

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"yukta/internal/core"
	"yukta/internal/fault"
	"yukta/internal/fleet"
	"yukta/internal/obs"
	"yukta/internal/workload"
)

// updateGolden regenerates the fixtures under testdata/golden instead of
// diffing against them: go test ./internal/exp -run Golden -update
var updateGolden = flag.Bool("update", false, "rewrite the golden trace fixtures under testdata/golden")

// goldenDir is where the fixtures live, relative to this package.
const goldenDir = "testdata/golden"

// goldenRun is the short deterministic run every per-scheme fixture captures:
// one minute of gamess under a mild mixed fault campaign, long enough to
// exercise sensor dropouts, actuator holds and a forced throttle, short
// enough that five fixtures stay a few hundred KB total.
func goldenRun(rec *obs.Recorder) core.RunOptions {
	return core.RunOptions{
		MaxTime:    60 * time.Second,
		Faults:     fault.Preset(1, 0.5),
		SkipSeries: true,
		Trace:      rec,
	}
}

// goldenSchemes lists every scheme covered by the regression suite, keyed by
// fixture stem.
func goldenSchemes(c *Context) []struct {
	Stem   string
	Scheme core.Scheme
} {
	hp, op := core.DefaultHWParams(), core.DefaultOSParams()
	return []struct {
		Stem   string
		Scheme core.Scheme
	}{
		{"coordinated-heuristic", c.P.CoordinatedHeuristic()},
		{"decoupled-heuristic", c.P.DecoupledHeuristic()},
		{"monolithic-lqg", c.P.MonolithicLQG()},
		{"yukta-full-ssv", c.P.YuktaFullSSV(hp, op)},
		{"supervised-ssv", c.P.SupervisedYuktaSSV(hp, op)},
	}
}

// compareGolden diffs got against the fixture <stem>.jsonl byte for byte.
// With -update it rewrites the fixture instead. On a mismatch it writes the
// observed trace next to the fixture as <stem>.got.jsonl (CI uploads these as
// the golden-diff artifact) and reports the first diverging line.
func compareGolden(t *testing.T, stem string, got []byte) {
	t.Helper()
	path := filepath.Join(goldenDir, stem+".jsonl")
	if *updateGolden {
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture %s (regenerate with -update): %v", path, err)
	}
	if bytes.Equal(got, want) {
		return
	}
	gotPath := filepath.Join(goldenDir, stem+".got.jsonl")
	if err := os.WriteFile(gotPath, got, 0o644); err != nil {
		t.Errorf("writing %s: %v", gotPath, err)
	}
	gotLines := bytes.Split(got, []byte("\n"))
	wantLines := bytes.Split(want, []byte("\n"))
	for i := range gotLines {
		if i >= len(wantLines) || !bytes.Equal(gotLines[i], wantLines[i]) {
			wantLine := []byte("<missing>")
			if i < len(wantLines) {
				wantLine = wantLines[i]
			}
			t.Fatalf("%s diverges from golden at line %d:\n got: %s\nwant: %s\n(observed trace saved as %s; if the change is intended, regenerate with -update)",
				stem, i+1, clip(gotLines[i]), clip(wantLine), gotPath)
		}
	}
	t.Fatalf("%s shorter than golden: %d vs %d lines (observed trace saved as %s)",
		stem, len(gotLines), len(wantLines), gotPath)
}

// clip bounds one diff line for the failure message.
func clip(b []byte) string {
	const max = 240
	if len(b) > max {
		return string(b[:max]) + "..."
	}
	return string(b)
}

// TestGoldenTraces is the golden-trace regression suite: for every scheme it
// replays the same short deterministic faulted run and requires the flight
// recorder's JSONL to match the committed fixture byte for byte. Any change
// to controller numerics, the fault derivation, the supervisor's decisions or
// the export format shows up here as a precise first-divergence diff.
func TestGoldenTraces(t *testing.T) {
	c := testContext(t)
	w, err := workload.Lookup("gamess")
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range goldenSchemes(c) {
		g := g
		t.Run(g.Stem, func(t *testing.T) {
			rec := obs.NewRecorder(0)
			if _, err := core.Run(c.P.Cfg, g.Scheme, w, goldenRun(rec)); err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := rec.WriteJSONL(&buf); err != nil {
				t.Fatal(err)
			}
			if buf.Len() == 0 {
				t.Fatal("empty trace")
			}
			compareGolden(t, g.Stem, buf.Bytes())
		})
	}
}

// TestGoldenFleetTrace extends the suite one layer up: a four-board
// heterogeneous fleet under the slack-feedback policy, pinned by both its
// coordination-layer trace and every per-board trace.
func TestGoldenFleetTrace(t *testing.T) {
	c := testContext(t)
	sch := c.P.YuktaFullSSV(core.DefaultHWParams(), core.DefaultOSParams())
	members := make([]core.FleetMember, 4)
	for i, app := range quickApps {
		w, err := workload.Lookup(app)
		if err != nil {
			t.Fatal(err)
		}
		members[i] = core.FleetMember{Scheme: sch, Workload: w}
	}
	rec := obs.NewFleetRecorder(0)
	boardRecs := make([]*obs.Recorder, len(members))
	for i := range boardRecs {
		boardRecs[i] = obs.NewRecorder(0)
	}
	opt := core.FleetOptions{
		Budget:      fleet.Budget{TotalW: 8.8, MinW: 1.0, MaxW: 4.5},
		Policy:      fleet.NewSlackFeedback(),
		MaxTime:     60 * time.Second,
		Faults:      fault.Preset(1, 0.5),
		Trace:       rec,
		BoardTraces: boardRecs,
	}
	if _, err := core.FleetRun(c.P.Cfg, members, opt); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "fleet-feedback-n4.fleet", buf.Bytes())
	for i, br := range boardRecs {
		var bb bytes.Buffer
		if err := br.WriteJSONL(&bb); err != nil {
			t.Fatal(err)
		}
		compareGolden(t, fmt.Sprintf("fleet-feedback-n4-board%d", i), bb.Bytes())
	}
}

// TestGoldenHierarchicalFleetTrace pins the coordinator-tree layer: the same
// four-board fleet as TestGoldenFleetTrace, but run under a 2×2 rack topology
// with one slack-feedback policy per node. The fleet fixture carries three
// records per interval (DC root plus two racks, the racks tagged with their
// node paths) and the per-board fixtures pin that rack-local budget division
// reaches board physics deterministically.
func TestGoldenHierarchicalFleetTrace(t *testing.T) {
	c := testContext(t)
	topo, err := fleet.ParseTopology("2x2")
	if err != nil {
		t.Fatal(err)
	}
	sch := c.P.YuktaFullSSV(core.DefaultHWParams(), core.DefaultOSParams())
	members := make([]core.FleetMember, 4)
	for i, app := range quickApps {
		w, err := workload.Lookup(app)
		if err != nil {
			t.Fatal(err)
		}
		members[i] = core.FleetMember{Scheme: sch, Workload: w}
	}
	rec := obs.NewFleetRecorder(0)
	boardRecs := make([]*obs.Recorder, len(members))
	for i := range boardRecs {
		boardRecs[i] = obs.NewRecorder(0)
	}
	opt := core.FleetOptions{
		Budget:   fleet.Budget{TotalW: 8.8, MinW: 1.0, MaxW: 4.5},
		Topology: topo,
		TreePolicy: func() fleet.Policy {
			return fleet.NewSlackFeedback()
		},
		MaxTime:     60 * time.Second,
		Faults:      fault.Preset(1, 0.5),
		Trace:       rec,
		BoardTraces: boardRecs,
	}
	if _, err := core.FleetRun(c.P.Cfg, members, opt); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "fleet-tree-2x2.fleet", buf.Bytes())
	for i, br := range boardRecs {
		var bb bytes.Buffer
		if err := br.WriteJSONL(&bb); err != nil {
			t.Fatal(err)
		}
		compareGolden(t, fmt.Sprintf("fleet-tree-2x2-board%d", i), bb.Bytes())
	}
}
