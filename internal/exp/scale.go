package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"yukta/internal/core"
	"yukta/internal/fleet"
	"yukta/internal/series"
	"yukta/internal/workload"
)

// Fleet scaling-curve benchmark: wall-clock and EDP of both simulation
// engines versus fleet size, on a done-heavy board mix. Half the boards run
// a short workload that completes in roughly the first quarter of the run
// and then sits quiescent; the other half run a long workload that never
// completes before MaxTime. The mix is what separates the engines: both
// step live boards identically, but the lockstep engine keeps dispatching
// (and skipping) every done board on every control interval, while the
// event engine drops finished boards off the clock entirely and batches
// each live board's epoch into one cache-warm run.
const (
	// scaleMaxTime bounds one scale-point run (in simulated time).
	scaleMaxTime = 120 * time.Second
	// scaleShortGInst sizes the short app so it completes near the first
	// quarter of the run at the default per-board budget; scaleLongGInst
	// sizes the long app so it cannot complete before MaxTime.
	scaleShortGInst = 100
	scaleLongGInst  = 5000
	// scaleWorkers is the benchmark's canonical pool width when the context
	// does not pin one: the scaling curve measures the engines under pooled
	// board stepping — the fleet runner's intended configuration, and the
	// regime where the lockstep engine's per-interval barrier actually
	// costs (spawn + channel rendezvous per interval, versus once per
	// reallocation epoch on the event engine). Sequential stepping differs
	// only by the done-board scan, which is noise next to board physics.
	scaleWorkers = 4
	// scaleReps runs each (engine, size) cell this many times and keeps the
	// fastest wall-clock — standard minimum-of-k timing to shed scheduler
	// noise. Repetitions alternate lockstep/event so a transient host load
	// spike lands on both engines instead of biasing one cell. Simulation
	// outputs are identical across reps by construction.
	scaleReps = 5
)

// scaleApp builds one synthetic steady-phase board workload.
func scaleApp(name string, gInst float64) (workload.Workload, error) {
	return workload.NewApp(name, "SCALE", gInst, []workload.Phase{
		{WorkFrac: 1.0, Threads: 8, MemBound: 0.25, IPCBig: 1.4, IPCLittle: 0.70},
	})
}

// scaleMembers builds the done-heavy fleet: even boards short, odd boards
// long, every board running the coordinated heuristic (the cheapest
// controller, so the measurement exposes engine overhead rather than
// controller arithmetic).
func (c *Context) scaleMembers(n int) ([]core.FleetMember, error) {
	sch := c.P.CoordinatedHeuristic()
	members := make([]core.FleetMember, n)
	for i := range members {
		name, g := "scale-short", float64(scaleShortGInst)
		if i%2 == 1 {
			name, g = "scale-long", float64(scaleLongGInst)
		}
		w, err := scaleApp(name, g)
		if err != nil {
			return nil, err
		}
		members[i] = core.FleetMember{Scheme: sch, Workload: w}
	}
	return members, nil
}

// FleetScalePoint is one (engine, fleet size) measurement.
type FleetScalePoint struct {
	Engine string `json:"engine"`
	Boards int    `json:"boards"`
	// WallMS is the host wall-clock of the fleet run in milliseconds.
	WallMS float64 `json:"wall_ms"`
	// Steps and Reallocations are the simulation's own counters (identical
	// across engines — the engines differ in wall-clock, never in results).
	Steps         int `json:"steps"`
	Reallocations int `json:"reallocations"`
	// MakespanS, EnergyJ and EDP summarize the simulated outcome.
	MakespanS float64 `json:"makespan_s"`
	EnergyJ   float64 `json:"energy_j"`
	EDP       float64 `json:"edp_js"`
	// DoneBoardFrac is the fraction of boards that completed before MaxTime;
	// QuiescentFrac is the fraction of (board × clock-interval) slots that
	// were quiescent — a done board sitting out the rest of the run. The
	// scaling gate requires QuiescentFrac ≥ 0.25, the regime the event
	// engine is built for.
	DoneBoardFrac float64 `json:"done_board_frac"`
	QuiescentFrac float64 `json:"quiescent_frac"`
}

// FleetScaleReport is the scaling-curve benchmark result across engines and
// fleet sizes, with enough host context to interpret the wall-clocks.
type FleetScaleReport struct {
	GOOS        string  `json:"goos"`
	GOARCH      string  `json:"goarch"`
	NumCPU      int     `json:"num_cpu"`
	Parallelism int     `json:"parallelism"`
	MaxTimeS    float64 `json:"max_time_s"`
	Scheme      string  `json:"scheme"`
	Policy      string  `json:"policy"`
	// Points holds, for every fleet size, the lockstep point followed by
	// the event point.
	Points []FleetScalePoint `json:"points"`
}

// scaleParallelism resolves the pool width of one scale run.
func (c *Context) scaleParallelism() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return scaleWorkers
}

// fleetScaleRun executes the done-heavy scale scenario once on the given
// engine.
func (c *Context) fleetScaleRun(n int, eng core.Engine) (*core.FleetResult, error) {
	members, err := c.scaleMembers(n)
	if err != nil {
		return nil, err
	}
	pol, err := fleet.NewPolicy("feedback")
	if err != nil {
		return nil, err
	}
	opt := core.FleetOptions{
		Budget: fleet.Budget{
			TotalW: DefaultFleetBoardBudgetW * float64(n),
			MinW:   DefaultFleetMinCapW,
			MaxW:   DefaultFleetMaxCapW,
		},
		Policy:      pol,
		MaxTime:     scaleMaxTime,
		Parallelism: c.scaleParallelism(),
		Engine:      eng,
	}
	return core.FleetRun(c.P.Cfg, members, opt)
}

// FleetScaleRun executes the scaling benchmark's done-heavy scenario once on
// the named engine ("event" or "lockstep"); BenchmarkFleetStep times it.
func (c *Context) FleetScaleRun(n int, engine string) (*core.FleetResult, error) {
	eng, err := core.ParseEngine(engine)
	if err != nil {
		return nil, err
	}
	return c.fleetScaleRun(n, eng)
}

// fleetScalePair times both engines at one fleet size, interleaving the
// repetitions (lockstep, event, lockstep, event, ...) and keeping each
// engine's fastest wall-clock.
func (c *Context) fleetScalePair(n int) (lock, ev FleetScalePoint, err error) {
	var lockRes, evRes *core.FleetResult
	var lockWall, evWall time.Duration
	for rep := 0; rep < scaleReps; rep++ {
		start := time.Now()
		lr, lerr := c.fleetScaleRun(n, core.EngineLockstep)
		lw := time.Since(start)
		if lerr != nil {
			return lock, ev, fmt.Errorf("exp: fleet scale N=%d lockstep: %w", n, lerr)
		}
		if lockRes == nil || lw < lockWall {
			lockRes, lockWall = lr, lw
		}
		start = time.Now()
		er, eerr := c.fleetScaleRun(n, core.EngineEvent)
		ew := time.Since(start)
		if eerr != nil {
			return lock, ev, fmt.Errorf("exp: fleet scale N=%d event: %w", n, eerr)
		}
		if evRes == nil || ew < evWall {
			evRes, evWall = er, ew
		}
	}
	lock = makeScalePoint(core.EngineLockstep, n, lockRes, lockWall)
	ev = makeScalePoint(core.EngineEvent, n, evRes, evWall)
	return lock, ev, nil
}

// makeScalePoint folds one cell's fastest run into its report row.
func makeScalePoint(eng core.Engine, n int, res *core.FleetResult, wall time.Duration) FleetScalePoint {
	pt := FleetScalePoint{
		Engine:        string(eng),
		Boards:        n,
		WallMS:        float64(wall.Nanoseconds()) / 1e6,
		Steps:         res.Steps,
		Reallocations: res.Reallocations,
		MakespanS:     res.MakespanS,
		EnergyJ:       res.EnergyJ,
		EDP:           res.EDP,
	}
	// Quiescence: a board's physics time advances only while it is stepped,
	// so TimeS / interval is exactly the number of intervals it executed.
	intervalS := 0.5
	var executed float64
	done := 0
	for _, br := range res.Boards {
		executed += br.TimeS / intervalS
		if br.Completed {
			done++
		}
	}
	pt.DoneBoardFrac = float64(done) / float64(n)
	if res.Steps > 0 {
		pt.QuiescentFrac = 1 - executed/float64(n*res.Steps)
	}
	return pt
}

// FleetScale runs the scaling-curve benchmark over the given fleet sizes
// (default {16, 64, 256}): for each size it times the identical done-heavy
// fleet run on the lockstep and the event engine and cross-checks that the
// simulated outcomes match exactly — the engines may only differ in
// wall-clock.
func (c *Context) FleetScale(ns []int) (*FleetScaleReport, error) {
	if len(ns) == 0 {
		ns = []int{16, 64, 256}
	}
	rep := &FleetScaleReport{
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Parallelism: c.scaleParallelism(),
		MaxTimeS:    scaleMaxTime.Seconds(),
		Scheme:      "coordinated-heuristic",
		Policy:      "feedback",
	}
	for _, n := range ns {
		lock, ev, err := c.fleetScalePair(n)
		if err != nil {
			return nil, err
		}
		if lock.Steps != ev.Steps || lock.EDP != ev.EDP || lock.EnergyJ != ev.EnergyJ ||
			lock.MakespanS != ev.MakespanS || lock.Reallocations != ev.Reallocations {
			return nil, fmt.Errorf("exp: engines disagree at N=%d: lockstep %+v vs event %+v", n, lock, ev)
		}
		rep.Points = append(rep.Points, lock, ev)
	}
	return rep, nil
}

// Check enforces the scaling gate on the report's largest fleet size: the
// scenario must be meaningfully done-heavy (≥25% quiescent board-intervals)
// and the event engine must be strictly faster than lockstep there. Smaller
// sizes are reported but not gated — at small N both engines are dominated
// by board physics and the difference is noise-level.
func (r *FleetScaleReport) Check() error {
	if len(r.Points) < 2 {
		return fmt.Errorf("exp: scale report has no points")
	}
	lock, ev := r.Points[len(r.Points)-2], r.Points[len(r.Points)-1]
	if lock.Engine != string(core.EngineLockstep) || ev.Engine != string(core.EngineEvent) || lock.Boards != ev.Boards {
		return fmt.Errorf("exp: malformed scale report tail: %+v, %+v", lock, ev)
	}
	if ev.QuiescentFrac < 0.25 {
		return fmt.Errorf("exp: scale scenario at N=%d is only %.1f%% quiescent, want ≥25%%",
			ev.Boards, 100*ev.QuiescentFrac)
	}
	if ev.WallMS >= lock.WallMS {
		return fmt.Errorf("exp: event engine not faster at N=%d: %.1f ms vs lockstep %.1f ms",
			ev.Boards, ev.WallMS, lock.WallMS)
	}
	return nil
}

// WriteJSON writes the report as indented JSON.
func (r *FleetScaleReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Render draws the scaling curve as an aligned table with the event/lockstep
// speedup per fleet size.
func (r *FleetScaleReport) Render() string {
	tab := &series.Table{Header: []string{
		"boards", "engine", "wall ms", "speedup", "steps", "quiescent", "done boards", "EDP J·s"}}
	for i := 0; i < len(r.Points); i += 2 {
		lock, ev := r.Points[i], r.Points[i+1]
		tab.AddRow(fmt.Sprintf("%d", lock.Boards), lock.Engine,
			fmt.Sprintf("%.1f", lock.WallMS), "1.00",
			fmt.Sprintf("%d", lock.Steps),
			fmt.Sprintf("%.0f%%", 100*lock.QuiescentFrac),
			fmt.Sprintf("%.0f%%", 100*lock.DoneBoardFrac),
			fmt.Sprintf("%.0f", lock.EDP))
		speedup := 0.0
		if ev.WallMS > 0 {
			speedup = lock.WallMS / ev.WallMS
		}
		tab.AddRow("", ev.Engine,
			fmt.Sprintf("%.1f", ev.WallMS), fmt.Sprintf("%.2f", speedup),
			fmt.Sprintf("%d", ev.Steps),
			fmt.Sprintf("%.0f%%", 100*ev.QuiescentFrac),
			fmt.Sprintf("%.0f%%", 100*ev.DoneBoardFrac),
			fmt.Sprintf("%.0f", ev.EDP))
	}
	var sb stringsBuilder
	fmt.Fprintf(&sb, "Fleet scaling curve (%s/%s, %d CPUs, parallelism %d, %s scheme, %s policy, %.0f s simulated)\n",
		r.GOOS, r.GOARCH, r.NumCPU, r.Parallelism, r.Scheme, r.Policy, r.MaxTimeS)
	tab.Render(&sb)
	return sb.String()
}
