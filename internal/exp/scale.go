package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"time"

	"yukta/internal/core"
	"yukta/internal/fleet"
	"yukta/internal/series"
	"yukta/internal/workload"
)

// Fleet scaling-curve benchmark: wall-clock and EDP of both simulation
// engines versus fleet size, on a done-heavy board mix. Half the boards run
// a short workload that completes in roughly the first quarter of the run
// and then sits quiescent; the other half run a long workload that never
// completes before MaxTime. The mix is what separates the engines: both
// step live boards identically, but the lockstep engine keeps dispatching
// (and skipping) every done board on every control interval, while the
// event engine drops finished boards off the clock entirely and batches
// each live board's epoch into one cache-warm run.
const (
	// scaleMaxTime bounds one scale-point run (in simulated time).
	scaleMaxTime = 120 * time.Second
	// scaleShortGInst sizes the short app so it completes near the first
	// quarter of the run at the default per-board budget; scaleLongGInst
	// sizes the long app so it cannot complete before MaxTime.
	scaleShortGInst = 100
	scaleLongGInst  = 5000
	// scaleWorkers is the benchmark's canonical pool width when the context
	// does not pin one: the scaling curve measures the engines under pooled
	// board stepping — the fleet runner's intended configuration, and the
	// regime where the lockstep engine's per-interval barrier actually
	// costs (spawn + channel rendezvous per interval, versus once per
	// reallocation epoch on the event engine). Sequential stepping differs
	// only by the done-board scan, which is noise next to board physics.
	scaleWorkers = 4
	// scaleReps runs each (engine, size) cell this many times and keeps the
	// fastest wall-clock — standard minimum-of-k timing to shed scheduler
	// noise. Repetitions alternate lockstep/event so a transient host load
	// spike lands on both engines instead of biasing one cell. Simulation
	// outputs are identical across reps by construction.
	scaleReps = 5
	// treeScaleReps is the minimum-of-k width for the hierarchical points:
	// the depth axis multiplies the cell count, and the tree points feed a
	// curve rather than an engine-vs-engine gate, so fewer repetitions
	// suffice.
	treeScaleReps = 3
)

// scaleApp builds one synthetic steady-phase board workload.
func scaleApp(name string, gInst float64) (workload.Workload, error) {
	return workload.NewApp(name, "SCALE", gInst, []workload.Phase{
		{WorkFrac: 1.0, Threads: 8, MemBound: 0.25, IPCBig: 1.4, IPCLittle: 0.70},
	})
}

// scaleMembers builds the done-heavy fleet: even boards short, odd boards
// long, every board running the coordinated heuristic (the cheapest
// controller, so the measurement exposes engine overhead rather than
// controller arithmetic).
func (c *Context) scaleMembers(n int) ([]core.FleetMember, error) {
	sch := c.P.CoordinatedHeuristic()
	members := make([]core.FleetMember, n)
	for i := range members {
		name, g := "scale-short", float64(scaleShortGInst)
		if i%2 == 1 {
			name, g = "scale-long", float64(scaleLongGInst)
		}
		w, err := scaleApp(name, g)
		if err != nil {
			return nil, err
		}
		members[i] = core.FleetMember{Scheme: sch, Workload: w}
	}
	return members, nil
}

// FleetScalePoint is one (engine, fleet size) measurement.
type FleetScalePoint struct {
	Engine string `json:"engine"`
	Boards int    `json:"boards"`
	// WallMS is the host wall-clock of the fleet run in milliseconds.
	WallMS float64 `json:"wall_ms"`
	// Steps and Reallocations are the simulation's own counters (identical
	// across engines — the engines differ in wall-clock, never in results).
	Steps         int `json:"steps"`
	Reallocations int `json:"reallocations"`
	// MakespanS, EnergyJ and EDP summarize the simulated outcome.
	MakespanS float64 `json:"makespan_s"`
	EnergyJ   float64 `json:"energy_j"`
	EDP       float64 `json:"edp_js"`
	// DoneBoardFrac is the fraction of boards that completed before MaxTime;
	// QuiescentFrac is the fraction of (board × clock-interval) slots that
	// were quiescent — a done board sitting out the rest of the run. The
	// scaling gate requires QuiescentFrac ≥ 0.25, the regime the event
	// engine is built for.
	DoneBoardFrac float64 `json:"done_board_frac"`
	QuiescentFrac float64 `json:"quiescent_frac"`
}

// FleetTreeScalePoint is one hierarchical measurement of the same done-heavy
// scale scenario: the fleet run under a balanced coordinator tree
// (fleet.Uniform) of the given depth, on the event engine. Depth 1 is the
// degenerate single-coordinator tree and must reproduce the flat event
// point's simulated outcome exactly; deeper trees re-divide the budget
// recursively, so their EDP may differ — that delta is the hierarchy's cost
// or gain, and the wall-clock column its overhead.
type FleetTreeScalePoint struct {
	Boards int `json:"boards"`
	// Depth is the coordinator tree's level count; Topo its spec and Nodes
	// its coordinator count.
	Depth int    `json:"depth"`
	Topo  string `json:"topo"`
	Nodes int    `json:"nodes"`
	// WallMS is the fastest host wall-clock over treeScaleReps runs.
	WallMS float64 `json:"wall_ms"`
	// Steps and Reallocations mirror the flat points; NodeReallocations
	// counts per-node policy invocations across the whole tree.
	Steps             int `json:"steps"`
	Reallocations     int `json:"reallocations"`
	NodeReallocations int `json:"node_reallocations"`
	// MakespanS, EnergyJ and EDP summarize the simulated outcome.
	MakespanS float64 `json:"makespan_s"`
	EnergyJ   float64 `json:"energy_j"`
	EDP       float64 `json:"edp_js"`
}

// FleetScaleReport is the scaling-curve benchmark result across engines and
// fleet sizes, with enough host context to interpret the wall-clocks.
type FleetScaleReport struct {
	GOOS        string  `json:"goos"`
	GOARCH      string  `json:"goarch"`
	NumCPU      int     `json:"num_cpu"`
	Parallelism int     `json:"parallelism"`
	MaxTimeS    float64 `json:"max_time_s"`
	Scheme      string  `json:"scheme"`
	Policy      string  `json:"policy"`
	// Points holds, for every fleet size, the lockstep point followed by
	// the event point.
	Points []FleetScalePoint `json:"points"`
	// TreePoints holds the hierarchical points (FleetScaleTree), ordered by
	// fleet size then depth; empty for engine-only reports.
	TreePoints []FleetTreeScalePoint `json:"tree_points,omitempty"`
}

// scaleParallelism resolves the pool width of one scale run.
func (c *Context) scaleParallelism() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return scaleWorkers
}

// fleetScaleRun executes the done-heavy scale scenario once on the given
// engine.
func (c *Context) fleetScaleRun(n int, eng core.Engine) (*core.FleetResult, error) {
	members, err := c.scaleMembers(n)
	if err != nil {
		return nil, err
	}
	pol, err := fleet.NewPolicy("feedback")
	if err != nil {
		return nil, err
	}
	opt := core.FleetOptions{
		Budget: fleet.Budget{
			TotalW: DefaultFleetBoardBudgetW * float64(n),
			MinW:   DefaultFleetMinCapW,
			MaxW:   DefaultFleetMaxCapW,
		},
		Policy:      pol,
		MaxTime:     scaleMaxTime,
		Parallelism: c.scaleParallelism(),
		Engine:      eng,
	}
	return core.FleetRun(c.P.Cfg, members, opt)
}

// FleetScaleRun executes the scaling benchmark's done-heavy scenario once on
// the named engine ("event" or "lockstep"); BenchmarkFleetStep times it.
func (c *Context) FleetScaleRun(n int, engine string) (*core.FleetResult, error) {
	eng, err := core.ParseEngine(engine)
	if err != nil {
		return nil, err
	}
	return c.fleetScaleRun(n, eng)
}

// fleetScalePair times both engines at one fleet size, interleaving the
// repetitions (lockstep, event, lockstep, event, ...) and keeping each
// engine's fastest wall-clock.
func (c *Context) fleetScalePair(n int) (lock, ev FleetScalePoint, err error) {
	var lockRes, evRes *core.FleetResult
	var lockWall, evWall time.Duration
	for rep := 0; rep < scaleReps; rep++ {
		start := time.Now()
		lr, lerr := c.fleetScaleRun(n, core.EngineLockstep)
		lw := time.Since(start)
		if lerr != nil {
			return lock, ev, fmt.Errorf("exp: fleet scale N=%d lockstep: %w", n, lerr)
		}
		if lockRes == nil || lw < lockWall {
			lockRes, lockWall = lr, lw
		}
		start = time.Now()
		er, eerr := c.fleetScaleRun(n, core.EngineEvent)
		ew := time.Since(start)
		if eerr != nil {
			return lock, ev, fmt.Errorf("exp: fleet scale N=%d event: %w", n, eerr)
		}
		if evRes == nil || ew < evWall {
			evRes, evWall = er, ew
		}
	}
	lock = makeScalePoint(core.EngineLockstep, n, lockRes, lockWall)
	ev = makeScalePoint(core.EngineEvent, n, evRes, evWall)
	return lock, ev, nil
}

// makeScalePoint folds one cell's fastest run into its report row.
func makeScalePoint(eng core.Engine, n int, res *core.FleetResult, wall time.Duration) FleetScalePoint {
	pt := FleetScalePoint{
		Engine:        string(eng),
		Boards:        n,
		WallMS:        float64(wall.Nanoseconds()) / 1e6,
		Steps:         res.Steps,
		Reallocations: res.Reallocations,
		MakespanS:     res.MakespanS,
		EnergyJ:       res.EnergyJ,
		EDP:           res.EDP,
	}
	// Quiescence: a board's physics time advances only while it is stepped,
	// so TimeS / interval is exactly the number of intervals it executed.
	intervalS := 0.5
	var executed float64
	done := 0
	for _, br := range res.Boards {
		executed += br.TimeS / intervalS
		if br.Completed {
			done++
		}
	}
	pt.DoneBoardFrac = float64(done) / float64(n)
	if res.Steps > 0 {
		pt.QuiescentFrac = 1 - executed/float64(n*res.Steps)
	}
	return pt
}

// FleetScale runs the scaling-curve benchmark over the given fleet sizes
// (default {16, 64, 256}): for each size it times the identical done-heavy
// fleet run on the lockstep and the event engine and cross-checks that the
// simulated outcomes match exactly — the engines may only differ in
// wall-clock.
func (c *Context) FleetScale(ns []int) (*FleetScaleReport, error) {
	if len(ns) == 0 {
		ns = []int{16, 64, 256}
	}
	rep := &FleetScaleReport{
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Parallelism: c.scaleParallelism(),
		MaxTimeS:    scaleMaxTime.Seconds(),
		Scheme:      "coordinated-heuristic",
		Policy:      "feedback",
	}
	for _, n := range ns {
		lock, ev, err := c.fleetScalePair(n)
		if err != nil {
			return nil, err
		}
		if lock.Steps != ev.Steps || lock.EDP != ev.EDP || lock.EnergyJ != ev.EnergyJ ||
			lock.MakespanS != ev.MakespanS || lock.Reallocations != ev.Reallocations {
			return nil, fmt.Errorf("exp: engines disagree at N=%d: lockstep %+v vs event %+v", n, lock, ev)
		}
		rep.Points = append(rep.Points, lock, ev)
	}
	return rep, nil
}

// fleetTreeScaleRun executes the done-heavy scale scenario once under the
// given coordinator topology on the event engine, with one fresh feedback
// policy per tree node.
func (c *Context) fleetTreeScaleRun(topo *fleet.Topology) (*core.FleetResult, error) {
	members, err := c.scaleMembers(topo.Boards)
	if err != nil {
		return nil, err
	}
	opt := core.FleetOptions{
		Budget: fleet.Budget{
			TotalW: DefaultFleetBoardBudgetW * float64(topo.Boards),
			MinW:   DefaultFleetMinCapW,
			MaxW:   DefaultFleetMaxCapW,
		},
		Topology:    topo,
		TreePolicy:  treePolicyFactory("feedback"),
		MaxTime:     scaleMaxTime,
		Parallelism: c.scaleParallelism(),
		Engine:      core.EngineEvent,
	}
	return core.FleetRun(c.P.Cfg, members, opt)
}

// fleetTreeScalePoint times the scenario under one topology, keeping the
// fastest of treeScaleReps wall-clocks.
func (c *Context) fleetTreeScalePoint(topo *fleet.Topology) (FleetTreeScalePoint, error) {
	var best *core.FleetResult
	var bestWall time.Duration
	for rep := 0; rep < treeScaleReps; rep++ {
		start := time.Now()
		res, err := c.fleetTreeScaleRun(topo)
		wall := time.Since(start)
		if err != nil {
			return FleetTreeScalePoint{}, fmt.Errorf("exp: tree scale %q: %w", topo.Spec, err)
		}
		if best == nil || wall < bestWall {
			best, bestWall = res, wall
		}
	}
	return FleetTreeScalePoint{
		Boards:            topo.Boards,
		Depth:             topo.Depth,
		Topo:              topo.Spec,
		Nodes:             len(topo.Nodes),
		WallMS:            float64(bestWall.Nanoseconds()) / 1e6,
		Steps:             best.Steps,
		Reallocations:     best.Reallocations,
		NodeReallocations: best.NodeReallocations,
		MakespanS:         best.MakespanS,
		EnergyJ:           best.EnergyJ,
		EDP:               best.EDP,
	}, nil
}

// FleetScaleTree extends the scaling benchmark with the hierarchy axis: after
// the flat engine curve it measures the same scenario under a balanced
// coordinator tree (fleet.Uniform) at every (fleet size, depth) pair. Depth-1
// points are cross-checked against the flat event points — the degenerate
// tree must reproduce the flat run's simulated outcome exactly; deeper
// points record the hierarchy's EDP delta and wall-clock overhead. Empty
// arguments select the FleetScale default sizes and depths {1, 2}.
func (c *Context) FleetScaleTree(ns, depths []int) (*FleetScaleReport, error) {
	if len(ns) == 0 {
		ns = []int{16, 64, 256}
	}
	if len(depths) == 0 {
		depths = []int{1, 2}
	}
	rep, err := c.FleetScale(ns)
	if err != nil {
		return nil, err
	}
	for ni, n := range ns {
		flat := rep.Points[2*ni+1] // the event point at this size
		for _, d := range depths {
			topo, err := fleet.Uniform(n, d)
			if err != nil {
				return nil, err
			}
			pt, err := c.fleetTreeScalePoint(topo)
			if err != nil {
				return nil, err
			}
			if d == 1 && (pt.Steps != flat.Steps || pt.EDP != flat.EDP ||
				pt.EnergyJ != flat.EnergyJ || pt.Reallocations != flat.Reallocations) {
				return nil, fmt.Errorf(
					"exp: depth-1 tree diverges from flat event run at N=%d: %+v vs %+v", n, pt, flat)
			}
			rep.TreePoints = append(rep.TreePoints, pt)
		}
	}
	return rep, nil
}

// TreeGuard is the hierarchical regression gate: it re-runs the done-heavy
// scale scenario under the given topology spec and checks the outcome
// against the committed report's matching tree point. The simulation is
// deterministic, so steps and reallocation counts must match exactly and the
// EDP to 1e-9 relative (JSON round-trip slack); the wall-clock may drift
// with the host but not past 5× the committed value.
func (c *Context) TreeGuard(spec string, committed *FleetScaleReport) error {
	topo, err := fleet.ParseTopology(spec)
	if err != nil {
		return err
	}
	want := committed.findTreePoint(topo)
	if want == nil {
		return fmt.Errorf("exp: committed report has no tree point for %d boards at depth %d",
			topo.Boards, topo.Depth)
	}
	start := time.Now()
	res, err := c.fleetTreeScaleRun(topo)
	if err != nil {
		return err
	}
	wallMS := float64(time.Since(start).Nanoseconds()) / 1e6
	if res.Steps != want.Steps || res.Reallocations != want.Reallocations ||
		res.NodeReallocations != want.NodeReallocations {
		return fmt.Errorf("exp: tree run %q counters diverge from committed point: steps %d/%d reallocs %d/%d node reallocs %d/%d",
			spec, res.Steps, want.Steps, res.Reallocations, want.Reallocations,
			res.NodeReallocations, want.NodeReallocations)
	}
	if relDiff(res.EDP, want.EDP) > 1e-9 {
		return fmt.Errorf("exp: tree run %q EDP %.9g diverges from committed %.9g", spec, res.EDP, want.EDP)
	}
	if want.WallMS > 0 && wallMS > 5*want.WallMS {
		return fmt.Errorf("exp: tree run %q took %.1f ms, over 5x the committed %.1f ms",
			spec, wallMS, want.WallMS)
	}
	return nil
}

// findTreePoint locates the committed point a guard run compares against:
// an exact topology-spec match wins, else the first point with the same
// board count and depth (fleet.Uniform and the AxB shorthand generate
// identical balanced shapes under different spec strings).
func (r *FleetScaleReport) findTreePoint(topo *fleet.Topology) *FleetTreeScalePoint {
	for i := range r.TreePoints {
		if r.TreePoints[i].Topo == topo.Spec {
			return &r.TreePoints[i]
		}
	}
	for i := range r.TreePoints {
		if r.TreePoints[i].Boards == topo.Boards && r.TreePoints[i].Depth == topo.Depth {
			return &r.TreePoints[i]
		}
	}
	return nil
}

// relDiff is the symmetric relative difference, 0 when both values are 0.
func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return 0
	}
	return d / m
}

// ReadFleetScaleReport loads a committed scaling report (BENCH_evloop.json)
// for guard comparisons.
func ReadFleetScaleReport(path string) (*FleetScaleReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r FleetScaleReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("exp: parsing %s: %w", path, err)
	}
	return &r, nil
}

// Check enforces the scaling gate on the report's largest fleet size: the
// scenario must be meaningfully done-heavy (≥25% quiescent board-intervals)
// and the event engine must be strictly faster than lockstep there. Smaller
// sizes are reported but not gated — at small N both engines are dominated
// by board physics and the difference is noise-level.
func (r *FleetScaleReport) Check() error {
	if len(r.Points) < 2 {
		return fmt.Errorf("exp: scale report has no points")
	}
	lock, ev := r.Points[len(r.Points)-2], r.Points[len(r.Points)-1]
	if lock.Engine != string(core.EngineLockstep) || ev.Engine != string(core.EngineEvent) || lock.Boards != ev.Boards {
		return fmt.Errorf("exp: malformed scale report tail: %+v, %+v", lock, ev)
	}
	if ev.QuiescentFrac < 0.25 {
		return fmt.Errorf("exp: scale scenario at N=%d is only %.1f%% quiescent, want ≥25%%",
			ev.Boards, 100*ev.QuiescentFrac)
	}
	if ev.WallMS >= lock.WallMS {
		return fmt.Errorf("exp: event engine not faster at N=%d: %.1f ms vs lockstep %.1f ms",
			ev.Boards, ev.WallMS, lock.WallMS)
	}
	return nil
}

// WriteJSON writes the report as indented JSON.
func (r *FleetScaleReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Render draws the scaling curve as an aligned table with the event/lockstep
// speedup per fleet size.
func (r *FleetScaleReport) Render() string {
	tab := &series.Table{Header: []string{
		"boards", "engine", "wall ms", "speedup", "steps", "quiescent", "done boards", "EDP J·s"}}
	for i := 0; i < len(r.Points); i += 2 {
		lock, ev := r.Points[i], r.Points[i+1]
		tab.AddRow(fmt.Sprintf("%d", lock.Boards), lock.Engine,
			fmt.Sprintf("%.1f", lock.WallMS), "1.00",
			fmt.Sprintf("%d", lock.Steps),
			fmt.Sprintf("%.0f%%", 100*lock.QuiescentFrac),
			fmt.Sprintf("%.0f%%", 100*lock.DoneBoardFrac),
			fmt.Sprintf("%.0f", lock.EDP))
		speedup := 0.0
		if ev.WallMS > 0 {
			speedup = lock.WallMS / ev.WallMS
		}
		tab.AddRow("", ev.Engine,
			fmt.Sprintf("%.1f", ev.WallMS), fmt.Sprintf("%.2f", speedup),
			fmt.Sprintf("%d", ev.Steps),
			fmt.Sprintf("%.0f%%", 100*ev.QuiescentFrac),
			fmt.Sprintf("%.0f%%", 100*ev.DoneBoardFrac),
			fmt.Sprintf("%.0f", ev.EDP))
	}
	var sb stringsBuilder
	fmt.Fprintf(&sb, "Fleet scaling curve (%s/%s, %d CPUs, parallelism %d, %s scheme, %s policy, %.0f s simulated)\n",
		r.GOOS, r.GOARCH, r.NumCPU, r.Parallelism, r.Scheme, r.Policy, r.MaxTimeS)
	tab.Render(&sb)
	if len(r.TreePoints) > 0 {
		sb.WriteString("\n")
		sb.WriteString(r.renderTreePoints())
	}
	return sb.String()
}

// renderTreePoints draws the hierarchical points as a second table, with each
// point's EDP and wall-clock relative to the flat event point at the same
// fleet size (when the report contains one).
func (r *FleetScaleReport) renderTreePoints() string {
	flatWall := map[int]float64{}
	flatEDP := map[int]float64{}
	for _, p := range r.Points {
		if p.Engine == string(core.EngineEvent) {
			flatWall[p.Boards] = p.WallMS
			flatEDP[p.Boards] = p.EDP
		}
	}
	tab := &series.Table{Header: []string{
		"boards", "depth", "topology", "nodes", "wall ms", "vs flat", "node reallocs", "EDP J·s", "EDP vs flat"}}
	for _, p := range r.TreePoints {
		wallRel, edpRel := "-", "-"
		if w := flatWall[p.Boards]; w > 0 && p.WallMS > 0 {
			wallRel = fmt.Sprintf("%.2fx", p.WallMS/w)
		}
		if e := flatEDP[p.Boards]; e > 0 {
			edpRel = fmt.Sprintf("%+.3f%%", 100*(p.EDP-e)/e)
		}
		tab.AddRow(fmt.Sprintf("%d", p.Boards), fmt.Sprintf("%d", p.Depth),
			p.Topo, fmt.Sprintf("%d", p.Nodes),
			fmt.Sprintf("%.1f", p.WallMS), wallRel,
			fmt.Sprintf("%d", p.NodeReallocations),
			fmt.Sprintf("%.0f", p.EDP), edpRel)
	}
	var sb stringsBuilder
	sb.WriteString("Hierarchical coordinator points (event engine, balanced trees, feedback policy per node)\n")
	tab.Render(&sb)
	return sb.String()
}
