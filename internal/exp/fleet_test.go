package exp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"yukta/internal/obs"
)

// TestFleetSweepFeedbackWins gates the fleet coordination headline (ISSUE 5,
// as TestSupervisedClassSweep gates PR 3's): on the heterogeneous quick mix
// at N=16 under the default shared budget, the slack-feedback reallocator
// must beat the static equal-share baseline on fleet EDP.
func TestFleetSweepFeedbackWins(t *testing.T) {
	c := testContext(t)
	tab, err := c.FleetSweep([]int{16}, []string{"equal", "feedback"}, []string{"clean"})
	if err != nil {
		t.Fatal(err)
	}
	eq := tab.Cell("clean", 16, "equal-share")
	fb := tab.Cell("clean", 16, "slack-feedback")
	if eq == nil || fb == nil {
		t.Fatalf("missing cells: equal=%v feedback=%v", eq, fb)
	}
	if eq.Incomplete > 0 || fb.Incomplete > 0 {
		t.Fatalf("boards hit the time limit: equal=%d feedback=%d", eq.Incomplete, fb.Incomplete)
	}
	if fb.EDP >= eq.EDP {
		t.Errorf("slack-feedback EDP %.0f J·s should beat equal-share %.0f J·s",
			fb.EDP, eq.EDP)
	}
	out := tab.Render()
	if !strings.Contains(out, "slack-feedback") || !strings.Contains(out, "equal-share") {
		t.Fatalf("render output malformed:\n%s", out)
	}
	t.Logf("\n%s", out)
}

// TestFleetSweepTopology runs the sweep hierarchically (2 racks × 2 boards)
// and checks the tree-specific surface end to end: per-node reallocation
// accounting in the cells, the topology line and column in the render, and a
// schema-valid coordination trace whose records carry the rack node paths.
func TestFleetSweepTopology(t *testing.T) {
	c := *testContext(t)
	c.FleetTopo = "2x2"
	c.TraceDir = t.TempDir()
	tab, err := c.FleetSweep([]int{4}, []string{"feedback"}, []string{"clean"})
	if err != nil {
		t.Fatal(err)
	}
	cell := tab.Cell("clean", 4, "slack-feedback")
	if cell == nil {
		t.Fatalf("missing feedback cell: %+v", tab)
	}
	if cell.EDP <= 0 || cell.Reallocations == 0 {
		t.Fatalf("degenerate cell %+v", cell)
	}
	if cell.NodeReallocations <= cell.Reallocations {
		t.Fatalf("node reallocations %d should exceed realloc instants %d on a depth-2 tree",
			cell.NodeReallocations, cell.Reallocations)
	}
	out := tab.Render()
	if !strings.Contains(out, "coordinator topology: 2x2") || !strings.Contains(out, "node reallocs") {
		t.Fatalf("render missing topology surface:\n%s", out)
	}
	path := filepath.Join(c.TraceDir, "fleet-clean-n4-feedback-2x2.fleet.jsonl")
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("topology trace not written: %v", err)
	}
	defer f.Close()
	n, err := obs.ValidateFleetJSONL(f)
	if err != nil {
		t.Fatalf("topology trace invalid: %v", err)
	}
	if n == 0 || n%3 != 0 {
		t.Fatalf("trace has %d records, want a positive multiple of the 3 tree nodes", n)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, rack := range []string{`"node":"0"`, `"node":"1"`} {
		if got := strings.Count(string(data), rack); got != n/3 {
			t.Fatalf("rack marker %s on %d of %d records, want one per interval", rack, got, n/3)
		}
	}
}

// TestFleetSweepTopologyMismatch pins the board-count check: a topology that
// does not cover the sweep size must fail option assembly, not the run.
func TestFleetSweepTopologyMismatch(t *testing.T) {
	c := *testContext(t)
	c.FleetTopo = "2x2"
	if _, err := c.FleetSweep([]int{8}, []string{"feedback"}, []string{"clean"}); err == nil {
		t.Fatal("sweep accepted a 4-board topology for an 8-board fleet")
	}
}

// TestFleetSweepDefaults exercises the default axes at the small size only
// (N=4) and checks the structural invariants of the table.
func TestFleetSweepDefaults(t *testing.T) {
	c := testContext(t)
	tab, err := c.FleetSweep([]int{4}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Policies) != 2 || len(tab.Classes) != 1 {
		t.Fatalf("unexpected default axes: %v %v", tab.Policies, tab.Classes)
	}
	for ci := range tab.Classes {
		for ni := range tab.Ns {
			for pi := range tab.Policies {
				cell := tab.Cells[ci][ni][pi]
				if cell.EDP <= 0 || cell.MakespanS <= 0 || cell.EnergyJ <= 0 {
					t.Errorf("degenerate cell %+v", cell)
				}
				if cell.Reallocations == 0 {
					t.Errorf("policy %s never reallocated", cell.Policy)
				}
			}
		}
	}
}
