package exp

import (
	"strings"
	"testing"
)

// TestFleetSweepFeedbackWins gates the fleet coordination headline (ISSUE 5,
// as TestSupervisedClassSweep gates PR 3's): on the heterogeneous quick mix
// at N=16 under the default shared budget, the slack-feedback reallocator
// must beat the static equal-share baseline on fleet EDP.
func TestFleetSweepFeedbackWins(t *testing.T) {
	c := testContext(t)
	tab, err := c.FleetSweep([]int{16}, []string{"equal", "feedback"}, []string{"clean"})
	if err != nil {
		t.Fatal(err)
	}
	eq := tab.Cell("clean", 16, "equal-share")
	fb := tab.Cell("clean", 16, "slack-feedback")
	if eq == nil || fb == nil {
		t.Fatalf("missing cells: equal=%v feedback=%v", eq, fb)
	}
	if eq.Incomplete > 0 || fb.Incomplete > 0 {
		t.Fatalf("boards hit the time limit: equal=%d feedback=%d", eq.Incomplete, fb.Incomplete)
	}
	if fb.EDP >= eq.EDP {
		t.Errorf("slack-feedback EDP %.0f J·s should beat equal-share %.0f J·s",
			fb.EDP, eq.EDP)
	}
	out := tab.Render()
	if !strings.Contains(out, "slack-feedback") || !strings.Contains(out, "equal-share") {
		t.Fatalf("render output malformed:\n%s", out)
	}
	t.Logf("\n%s", out)
}

// TestFleetSweepDefaults exercises the default axes at the small size only
// (N=4) and checks the structural invariants of the table.
func TestFleetSweepDefaults(t *testing.T) {
	c := testContext(t)
	tab, err := c.FleetSweep([]int{4}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Policies) != 2 || len(tab.Classes) != 1 {
		t.Fatalf("unexpected default axes: %v %v", tab.Policies, tab.Classes)
	}
	for ci := range tab.Classes {
		for ni := range tab.Ns {
			for pi := range tab.Policies {
				cell := tab.Cells[ci][ni][pi]
				if cell.EDP <= 0 || cell.MakespanS <= 0 || cell.EnergyJ <= 0 {
					t.Errorf("degenerate cell %+v", cell)
				}
				if cell.Reallocations == 0 {
					t.Errorf("policy %s never reallocated", cell.Policy)
				}
			}
		}
	}
}
