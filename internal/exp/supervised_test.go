package exp

import (
	"strings"
	"testing"
)

// TestSupervisedClassSweep is the acceptance gate of the supervisory layer:
// at the shipped class intensity, supervised SSV must degrade strictly less
// than unsupervised SSV for the dropout, actuator and thermal (forced TMU)
// classes, and the clean supervised runs must record zero trips.
func TestSupervisedClassSweep(t *testing.T) {
	c := testContext(t)
	ct, err := c.SupervisedClassSweep(quickApps, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ct.CleanStats.Trips != 0 {
		t.Errorf("clean supervised runs recorded %d trips, want 0", ct.CleanStats.Trips)
	}
	idx := map[string]int{}
	for k, cls := range ct.Classes {
		idx[cls] = k
	}
	for _, cls := range []string{"dropout", "actuator", "thermal"} {
		k, ok := idx[cls]
		if !ok {
			t.Fatalf("class %q missing from sweep", cls)
		}
		if ct.SupDegradation[k] >= ct.UnsupDegradation[k] {
			t.Errorf("%s: supervised %.3f not strictly below unsupervised %.3f",
				cls, ct.SupDegradation[k], ct.UnsupDegradation[k])
		}
	}
	out := ct.Render()
	for _, want := range []string{"dropout", "trips / fallback / recovery", "clean supervised runs"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	t.Logf("\n%s", out)
}

// TestSupervisedSweepParallelDeterminism extends the harness determinism
// guarantee to the supervised sweep: the supervisory state machine lives
// inside each session, so the rendered class table must be byte-identical
// run sequentially and with a worker pool.
func TestSupervisedSweepParallelDeterminism(t *testing.T) {
	c := testContext(t)
	apps := []string{"gamess", "streamcluster"}
	seq := &Context{P: c.P, Seed: c.Seed, Parallelism: 1}
	par := &Context{P: c.P, Seed: c.Seed, Parallelism: 3}

	ctS, err := seq.SupervisedClassSweep(apps, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctP, err := par.SupervisedClassSweep(apps, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ctP.Render(), ctS.Render(); got != want {
		t.Errorf("rendered class tables differ:\n--- sequential ---\n%s\n--- parallel ---\n%s", want, got)
	}
}
