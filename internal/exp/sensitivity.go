package exp

import (
	"fmt"
	"time"

	"yukta/internal/core"
	"yukta/internal/series"
	"yukta/internal/ssvctl"
	"yukta/internal/workload"
)

// boundsVariants are the §VI-E1 output-deviation-bound settings: the paper's
// default ±20% performance bound (±1 BIPS in their absolute terms), then
// ±30% and ±50%, with the critical outputs scaled proportionally.
func boundsVariants() []struct {
	Label string
	HW    core.HWParams
	OS    core.OSParams
} {
	mk := func(label string, scale float64) struct {
		Label string
		HW    core.HWParams
		OS    core.OSParams
	} {
		hw := core.DefaultHWParams()
		hw.PerfBoundFrac *= scale
		hw.CriticalBoundFrac *= scale
		os := core.DefaultOSParams()
		os.BoundFrac *= scale
		return struct {
			Label string
			HW    core.HWParams
			OS    core.OSParams
		}{label, hw, os}
	}
	return []struct {
		Label string
		HW    core.HWParams
		OS    core.OSParams
	}{
		mk("±20% (paper default)", 1.0),
		mk("±30%", 1.5),
		mk("±50%", 2.5),
	}
}

// Fig15a reproduces Figure 15(a): performance of blackscholes versus time
// with fixed output targets, for the three output-deviation-bound settings.
// Targets follow §VI-E1: Perf 5.5 BIPS, big power 2.5 W, little power 0.2 W,
// temperature 70 °C; OS targets 1 / 4.5 BIPS and ΔSC = 1.
func (c *Context) Fig15a() (*TraceSet, error) {
	out := &TraceSet{Title: "Figure 15(a): fixed-target tracking, blackscholes (target 5.5 BIPS)",
		Series: map[string]*series.Series{}}
	vs := boundsVariants()
	traces := make([]*series.Series, len(vs))
	err := c.forEach(len(vs), func(i int) error {
		v := vs[i]
		hw, err := c.P.NewFixedHWSession(v.HW, []float64{5.5, 2.5, 0.2, 70})
		if err != nil {
			return err
		}
		os, err := c.P.NewFixedOSSession(v.OS, []float64{1, 4.5, 1})
		if err != nil {
			return err
		}
		sch := core.Scheme{Name: v.Label, New: func() (core.Session, error) {
			return &core.FixedTargetSession{HW: hw, OS: os}, nil
		}}
		w, err := workload.Lookup("blackscholes")
		if err != nil {
			return err
		}
		res, err := core.Run(c.P.Cfg, sch, w,
			core.RunOptions{MaxTime: 500 * time.Second, Metrics: c.Metrics, Engine: c.Engine})
		if err != nil {
			return err
		}
		traces[i] = res.Perf
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, v := range vs {
		out.Order = append(out.Order, v.Label)
		out.Series[v.Label] = traces[i]
	}
	return out, nil
}

// Fig15b reproduces Figure 15(b): average E×D of Yukta: HW SSV+OS SSV for
// the three bound settings, normalized to the Coordinated heuristic (pass
// nil for the full suite).
func (c *Context) Fig15b(apps []string) (*BarSet, error) {
	if apps == nil {
		apps = EvalApps()
	}
	schemes := []core.Scheme{c.P.CoordinatedHeuristic()}
	for _, v := range boundsVariants() {
		v := v
		sch := c.P.YuktaFullSSV(v.HW, v.OS)
		sch.Name = "Yukta " + v.Label
		schemes = append(schemes, sch)
	}
	exd, _, err := c.runMatrix("Figure 15(b): E×D vs output bounds", schemes, apps, appLoader)
	return exd, err
}

// GuardbandPoint is one sample of the Figure 16 sweep.
type GuardbandPoint struct {
	Guardband float64
	// BoundsGrowth is the guaranteed output-deviation bound relative to the
	// ±40% design (Fig. 16a).
	BoundsGrowth float64
	// SSV and penalty document the synthesized design.
	SSV     float64
	Penalty float64
}

// Fig16a reproduces Figure 16(a): how the guaranteed output deviation
// bounds grow as the uncertainty guardband increases from the default ±40%.
func (c *Context) Fig16a() ([]GuardbandPoint, error) {
	gbs := []float64{0.4, 1.0, 1.5, 2.5, 5.0}
	out := make([]GuardbandPoint, len(gbs))
	err := c.forEach(len(gbs), func(i int) error {
		gb := gbs[i]
		hp := core.DefaultHWParams()
		hp.Uncertainty = gb
		// Hold the controller's aggressiveness (W, B) fixed at the default
		// design's penalty: the growing guardband then shows up directly as
		// growing guaranteed bounds (min(s) < 1), the paper's reading of the
		// sweep.
		ctl, err := c.P.DesignHWAtPenalty(hp, 1)
		if err != nil {
			return fmt.Errorf("exp: guardband %.0f%%: %w", gb*100, err)
		}
		out[i] = GuardbandPoint{
			Guardband:    gb,
			BoundsGrowth: ctl.Report.GuaranteedBounds[0],
			SSV:          ctl.Report.SSV,
			Penalty:      ctl.Report.ControlPenalty,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Normalize to the first (default-guardband) design after all points are
	// in, so the reference does not depend on completion order.
	ref := out[0].BoundsGrowth
	if ref != 0 {
		for i := range out {
			out[i].BoundsGrowth /= ref
		}
	}
	return out, nil
}

// Fig16b reproduces Figure 16(b): E×D of Yukta: HW SSV+OS SSV for different
// uncertainty guardbands, normalized to the Coordinated heuristic.
func (c *Context) Fig16b(apps []string) (*BarSet, error) {
	if apps == nil {
		apps = EvalApps()
	}
	schemes := []core.Scheme{c.P.CoordinatedHeuristic()}
	for _, gb := range []float64{0.4, 1.5, 2.5, 5.0} {
		hp := core.DefaultHWParams()
		hp.Uncertainty = gb
		op := core.DefaultOSParams()
		sch := c.P.YuktaFullSSV(hp, op)
		sch.Name = fmt.Sprintf("Yukta ±%.0f%% guardband", gb*100)
		schemes = append(schemes, sch)
	}
	exd, _, err := c.runMatrix("Figure 16(b): E×D vs uncertainty guardband", schemes, apps, appLoader)
	return exd, err
}

// Fig17 reproduces Figure 17: big-cluster power versus time when tracking a
// fixed 2.5 W big-power target, for input weights 0.5, 1 and 2.
func (c *Context) Fig17() (*TraceSet, error) {
	out := &TraceSet{Title: "Figure 17: big-cluster power (W) tracking 2.5 W, by input weight",
		Series: map[string]*series.Series{}}
	weights := []float64{0.5, 1, 2}
	labels := make([]string, len(weights))
	traces := make([]*series.Series, len(weights))
	err := c.forEach(len(weights), func(i int) error {
		w := weights[i]
		hp := core.DefaultHWParams()
		hp.InputWeight = w
		hw, err := c.P.NewFixedHWSession(hp, []float64{5.5, 2.5, 0.2, 70})
		if err != nil {
			return err
		}
		os, err := c.P.NewFixedOSSession(core.DefaultOSParams(), []float64{1, 4.5, 1})
		if err != nil {
			return err
		}
		label := fmt.Sprintf("input weights %.1f", w)
		sch := core.Scheme{Name: label, New: func() (core.Session, error) {
			return &core.FixedTargetSession{HW: hw, OS: os}, nil
		}}
		wk, err := workload.Lookup("blackscholes")
		if err != nil {
			return err
		}
		res, err := core.Run(c.P.Cfg, sch, wk,
			core.RunOptions{MaxTime: 500 * time.Second, Metrics: c.Metrics, Engine: c.Engine})
		if err != nil {
			return err
		}
		labels[i] = label
		traces[i] = res.BigPower
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := range weights {
		out.Order = append(out.Order, labels[i])
		out.Series[labels[i]] = traces[i]
	}
	return out, nil
}

// HWCost reproduces §VI-D: the hardware-implementation characteristics of
// the hardware SSV controller.
type HWCost struct {
	StateDim              int
	Inputs, Outputs, Exts int
	OpsPerInvocation      int
	StorageBytes          int
}

// HWCostReport computes the §VI-D metrics for the default hardware
// controller.
func (c *Context) HWCostReport() (*HWCost, error) {
	ctl, err := c.P.HWControllerValidated(core.DefaultHWParams())
	if err != nil {
		return nil, err
	}
	rt, err := c.P.NewHWRuntime(ctl)
	if err != nil {
		return nil, err
	}
	return &HWCost{
		StateDim:         ctl.Report.StateDim,
		Inputs:           ctl.NumCtrl,
		Outputs:          ctl.NumOut,
		Exts:             ctl.NumExt,
		OpsPerInvocation: rt.OpsPerStep(),
		StorageBytes:     rt.StateBytes(),
	}, nil
}

// NewHWStepRuntime returns a ready runtime for micro-benchmarking one
// controller invocation (§VI-D measures ~28 µs on a Cortex-A7).
func (c *Context) NewHWStepRuntime() (*ssvctl.Runtime, error) {
	ctl, err := c.P.HWControllerValidated(core.DefaultHWParams())
	if err != nil {
		return nil, err
	}
	return c.P.NewHWRuntime(ctl)
}
