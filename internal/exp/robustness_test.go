package exp

import (
	"strings"
	"testing"

	"yukta/internal/core"
)

// TestRobustnessSweep covers the fault-harness acceptance criteria on the
// default grid (the same one `yukta-bench -faults -quick` runs): the
// rendered degradation table is byte-identical across parallelism settings
// for a fixed seed, every fault class actually delivers, and the SSV stack
// degrades no worse than the LQG and heuristic baselines at every swept
// intensity.
func TestRobustnessSweep(t *testing.T) {
	c := testContext(t)

	oldPar, oldSeed := c.Parallelism, c.Seed
	defer func() { c.Parallelism, c.Seed = oldPar, oldSeed }()
	c.Seed = 1

	c.Parallelism = 1
	seq, err := c.RobustnessSweep(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Parallelism = 3
	par, err := c.RobustnessSweep(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Render() != par.Render() {
		t.Fatalf("sweep not deterministic across parallelism:\n--- sequential ---\n%s\n--- parallel ---\n%s",
			seq.Render(), par.Render())
	}

	for k, f := range seq.Faults {
		if f.DroppedReadings == 0 || f.StaleReadings == 0 || f.HeldCommands == 0 ||
			f.SkewedCommands == 0 || f.ForcedThrottles == 0 {
			t.Errorf("intensity %.2f delivered no faults in some class: %+v", seq.Intensities[k], f)
		}
	}
	for k, s := range seq.Intensities {
		ssv := seq.Degradation[core.NameYuktaFull][k]
		heur := seq.Degradation[core.NameCoordHeur][k]
		lqg := seq.Degradation[core.NameMonoLQG][k]
		if ssv > heur+0.01 || ssv > lqg+0.01 {
			t.Errorf("at intensity %.2f SSV degrades %.3f vs heuristic %.3f / LQG %.3f",
				s, ssv, heur, lqg)
		}
	}
	out := seq.Render()
	if !strings.Contains(out, "forced TMU") || !strings.Contains(out, "seed 1") {
		t.Fatalf("render output malformed:\n%s", out)
	}
	t.Logf("\n%s", out)
}
