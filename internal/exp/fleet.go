package exp

import (
	"fmt"
	"time"

	"yukta/internal/core"
	"yukta/internal/fault"
	"yukta/internal/fleet"
	"yukta/internal/obs"
	"yukta/internal/series"
	"yukta/internal/workload"
)

// Default fleet-budget calibration. Under its own two-layer controllers
// every quick-mix board settles near ≈2.8 W, so the per-board share is set
// below that: under equal share every board is genuinely constrained, but
// the cap stretches frequency-sensitive programs (gamess) far more than
// memory-bound ones (mcf, whose throughput barely responds to the lost
// frequency) — the asymmetry a reallocating coordination layer can exploit.
// The floor keeps a board's base power and little cluster alive; the
// per-board cap bounds what a single board can usefully absorb.
const (
	// DefaultFleetBoardBudgetW is the per-board share of the fleet budget
	// (TotalW = N × this).
	DefaultFleetBoardBudgetW = 2.2
	// DefaultFleetMinCapW is the smallest cap a live board may be assigned.
	DefaultFleetMinCapW = 1.0
	// DefaultFleetMaxCapW bounds any single board's cap.
	DefaultFleetMaxCapW = 4.5
)

// FleetApps returns the heterogeneous app mix fleet sweeps cycle boards
// through: two compute-leaning programs (gamess, blackscholes) interleaved
// with two memory-bound ones (mcf, streamcluster), so every fleet contains
// both watt-hungry boards and potential donors.
func FleetApps() []string {
	return []string{"gamess", "mcf", "blackscholes", "streamcluster"}
}

// FleetCell is one fleet run's aggregate outcome within the sweep table.
type FleetCell struct {
	// Policy names the budget policy.
	Policy string
	// EDP is the fleet energy-delay product (total energy × makespan), in
	// J·s; MakespanS and EnergyJ its factors; GeoExD the geometric mean of
	// the per-board E×D products.
	EDP       float64
	MakespanS float64
	EnergyJ   float64
	GeoExD    float64
	// Reallocations counts policy invocations; Incomplete boards that hit
	// the time limit.
	Reallocations int
	Incomplete    int
	// NodeReallocations counts per-node policy invocations across the
	// coordinator tree of a hierarchical run (0 for flat runs).
	NodeReallocations int
}

// FleetTable is the fleet sweep result: boards × policies × fault classes,
// every cell one FleetRun over the same heterogeneous app mix under the same
// per-board budget share.
type FleetTable struct {
	// Title heads the rendered table.
	Title string
	// Seed is the fault campaign seed (fleet boards draw per-board streams).
	Seed int64
	// BoardBudgetW is the per-board share of the fleet budget.
	BoardBudgetW float64
	// Ns, Policies and Classes give the sweep axes in run order ("clean"
	// means no faults).
	Ns       []int
	Policies []string
	Classes  []string
	// Apps is the mix boards cycle through.
	Apps []string
	// Topo is the coordinator topology spec every cell ran under, or "" for
	// the flat single-coordinator path.
	Topo string
	// Cells[ci][ni][pi] is the outcome for Classes[ci], Ns[ni], Policies[pi].
	Cells [][][]FleetCell
}

// Cell returns the outcome for (class, n, policy), or nil when the sweep did
// not cover that combination.
func (t *FleetTable) Cell(class string, n int, policy string) *FleetCell {
	for ci, c := range t.Classes {
		if c != class {
			continue
		}
		for ni, nn := range t.Ns {
			if nn != n {
				continue
			}
			for pi := range t.Policies {
				if t.Cells[ci][ni][pi].Policy == policy {
					return &t.Cells[ci][ni][pi]
				}
			}
		}
	}
	return nil
}

// Render writes the sweep as an aligned table, one row per (class, N,
// policy) with the EDP ratio against the row group's first policy.
func (t *FleetTable) Render() string {
	header := []string{"faults", "N", "policy", "EDP (J·s)",
		"vs " + t.Policies[0], "makespan (s)", "energy (J)", "reallocs", "incomplete"}
	if t.Topo != "" {
		header = append(header, "node reallocs")
	}
	tab := &series.Table{Header: header}
	for ci, cls := range t.Classes {
		for ni, n := range t.Ns {
			base := t.Cells[ci][ni][0].EDP
			for pi := range t.Policies {
				c := t.Cells[ci][ni][pi]
				ratio := "-"
				if pi > 0 && base > 0 {
					ratio = fmt.Sprintf("%.3f", c.EDP/base)
				}
				row := []string{cls, fmt.Sprintf("%d", n), c.Policy,
					fmt.Sprintf("%.0f", c.EDP), ratio,
					fmt.Sprintf("%.1f", c.MakespanS),
					fmt.Sprintf("%.1f", c.EnergyJ),
					fmt.Sprintf("%d", c.Reallocations),
					fmt.Sprintf("%d", c.Incomplete)}
				if t.Topo != "" {
					row = append(row, fmt.Sprintf("%d", c.NodeReallocations))
				}
				tab.AddRow(row...)
			}
		}
	}
	var sb stringsBuilder
	fmt.Fprintf(&sb, "%s (seed %d, %.1f W/board, apps: %v)\n", t.Title, t.Seed, t.BoardBudgetW, t.Apps)
	if t.Topo != "" {
		fmt.Fprintf(&sb, "coordinator topology: %s\n", t.Topo)
	}
	tab.Render(&sb)
	return sb.String()
}

// fleetMembers builds the n-board assignment: every board runs the full SSV
// stack (synthesis is cached on the platform) on the mix app at its index,
// cycled.
func (c *Context) fleetMembers(n int, apps []string) ([]core.FleetMember, error) {
	sch := c.P.YuktaFullSSV(core.DefaultHWParams(), core.DefaultOSParams())
	members := make([]core.FleetMember, n)
	for i := range members {
		w, err := workload.Lookup(apps[i%len(apps)])
		if err != nil {
			return nil, err
		}
		members[i] = core.FleetMember{Scheme: sch, Workload: w}
	}
	return members, nil
}

// fleetOpts assembles one fleet run's options for the given size, policy and
// fault class ("clean" = no faults). With a FleetTopo set on the context the
// run is hierarchical: the topology is parsed per cell and every tree node
// gets a fresh instance of the named policy.
func (c *Context) fleetOpts(n int, policyName, class string, boardBudgetW float64) (core.FleetOptions, error) {
	opt := core.FleetOptions{
		Budget: fleet.Budget{
			TotalW: boardBudgetW * float64(n),
			MinW:   DefaultFleetMinCapW,
			MaxW:   DefaultFleetMaxCapW,
		},
		MaxTime:     1500 * time.Second,
		Interval:    500 * time.Millisecond,
		Parallelism: c.Parallelism,
		Metrics:     c.Metrics,
		Engine:      c.Engine,
	}
	if c.FleetTopo != "" {
		topo, err := fleet.ParseTopology(c.FleetTopo)
		if err != nil {
			return core.FleetOptions{}, err
		}
		if topo.Boards != n {
			return core.FleetOptions{}, fmt.Errorf(
				"exp: fleet topology %q covers %d boards, sweep size is %d", c.FleetTopo, topo.Boards, n)
		}
		if _, err := fleet.NewPolicy(policyName); err != nil {
			return core.FleetOptions{}, err
		}
		opt.Topology = topo
		opt.TreePolicy = treePolicyFactory(policyName)
	} else {
		pol, err := fleet.NewPolicy(policyName)
		if err != nil {
			return core.FleetOptions{}, err
		}
		opt.Policy = pol
	}
	if class != "clean" {
		opt.Faults = fault.PresetClass(c.Seed, DefaultClassIntensity, class)
	}
	return opt, nil
}

// treePolicyFactory returns the per-node policy constructor for hierarchical
// runs. Callers validate the policy name before building the factory, so a
// bad name surfaces as an error from option assembly instead of a panic
// inside the tree.
func treePolicyFactory(policyName string) func() fleet.Policy {
	return func() fleet.Policy {
		pol, err := fleet.NewPolicy(policyName)
		if err != nil {
			// Unreachable when the name was validated by the caller via
			// fleet.NewPolicy/ParsePolicy; a factory cannot return an error.
			panic(err)
		}
		return pol
	}
}

// FleetSweep runs the fleet coordination experiment: for every (fault class,
// fleet size, budget policy) combination it simulates the fleet to
// completion over the heterogeneous FleetApps mix under a shared budget of
// BoardBudgetW per board, and tabulates the fleet EDP. Nil/zero arguments
// select the defaults: ns {4, 16}, both policies, clean only.
//
// The sweep fans fleet runs across the worker pool (cells are independent),
// and each fleet run fans its per-interval board stepping across the same
// pool budget; results are deterministic at any Parallelism. With a TraceDir
// set, each cell writes its coordination-layer trace as
// fleet-<class>-n<N>-<policy>.fleet.jsonl. With a FleetTopo set on the
// context every cell runs hierarchically under that topology (its board
// count must equal each sweep size): trace records then carry the node path
// of the coordinator they describe, and the stem gains a topology suffix.
func (c *Context) FleetSweep(ns []int, policies []string, classes []string) (*FleetTable, error) {
	if len(ns) == 0 {
		ns = []int{4, 16}
	}
	if len(policies) == 0 {
		policies = []string{"equal", "feedback"}
	}
	if len(classes) == 0 {
		classes = []string{"clean"}
	}
	apps := FleetApps()
	boardBudgetW := c.FleetBudgetW
	if boardBudgetW <= 0 {
		boardBudgetW = DefaultFleetBoardBudgetW
	}
	// One scheme serves every board; warm its synthesis once so concurrent
	// cells do not pile up on the cache single-flight.
	if err := c.warmSchemes([]core.Scheme{
		c.P.YuktaFullSSV(core.DefaultHWParams(), core.DefaultOSParams())}); err != nil {
		return nil, err
	}

	type job struct {
		ci, ni, pi int
	}
	jobs := make([]job, 0, len(classes)*len(ns)*len(policies))
	for ci := range classes {
		for ni := range ns {
			for pi := range policies {
				jobs = append(jobs, job{ci, ni, pi})
			}
		}
	}
	out := &FleetTable{
		Title:        "Fleet budget policies: EDP under a shared power budget",
		Seed:         c.Seed,
		BoardBudgetW: boardBudgetW,
		Ns:           ns,
		Policies:     policies,
		Classes:      classes,
		Apps:         apps,
		Topo:         c.FleetTopo,
		Cells:        make([][][]FleetCell, len(classes)),
	}
	for ci := range classes {
		out.Cells[ci] = make([][]FleetCell, len(ns))
		for ni := range ns {
			out.Cells[ci][ni] = make([]FleetCell, len(policies))
		}
	}
	err := c.forEach(len(jobs), func(i int) error {
		j := jobs[i]
		n, policyName, class := ns[j.ni], policies[j.pi], classes[j.ci]
		members, err := c.fleetMembers(n, apps)
		if err != nil {
			return err
		}
		opt, err := c.fleetOpts(n, policyName, class, out.BoardBudgetW)
		if err != nil {
			return err
		}
		var rec *obs.FleetRecorder
		if c.TraceDir != "" {
			rec = obs.NewFleetRecorder(int(opt.MaxTime/opt.Interval) + 1)
			opt.Trace = rec
		}
		res, err := core.FleetRun(c.P.Cfg, members, opt)
		if err != nil {
			return fmt.Errorf("exp: fleet n=%d policy=%s class=%s: %w", n, policyName, class, err)
		}
		if rec != nil {
			stem := fmt.Sprintf("fleet-%s-n%d-%s", cleanName(class), n, cleanName(policyName))
			if c.FleetTopo != "" {
				stem += "-" + cleanName(c.FleetTopo)
			}
			if err := c.writeFleetTrace(stem, rec); err != nil {
				return err
			}
		}
		cell := FleetCell{
			Policy:            res.Policy,
			EDP:               res.EDP,
			MakespanS:         res.MakespanS,
			EnergyJ:           res.EnergyJ,
			GeoExD:            res.GeoExD,
			Reallocations:     res.Reallocations,
			NodeReallocations: res.NodeReallocations,
		}
		for _, br := range res.Boards {
			if !br.Completed {
				cell.Incomplete++
			}
		}
		out.Cells[j.ci][j.ni][j.pi] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
