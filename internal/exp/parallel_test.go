package exp

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 8, 50} {
		const n = 37
		counts := make([]int, n)
		var mu sync.Mutex
		err := forEach(workers, n, func(i int) error {
			mu.Lock()
			counts[i]++
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
	if err := forEach(4, 0, func(int) error { t.Fatal("ran on n=0"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachReturnsTheFailingJobsError(t *testing.T) {
	want := errors.New("job 7 failed")
	for _, workers := range []int{1, 4} {
		err := forEach(workers, 20, func(i int) error {
			if i == 7 {
				return want
			}
			return nil
		})
		if !errors.Is(err, want) {
			t.Fatalf("workers=%d: got %v, want %v", workers, err, want)
		}
	}
}

func TestForEachSequentialStopsAtFirstError(t *testing.T) {
	calls := 0
	err := forEach(1, 10, func(i int) error {
		calls++
		if i == 3 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil || calls != 4 {
		t.Fatalf("got err=%v after %d calls, want error after 4", err, calls)
	}
}

func TestForEachParallelReturnsLowestRecordedError(t *testing.T) {
	// Every job fails; whatever subset runs before the failed flag stops the
	// rest, the error that comes back must be the lowest-index one recorded —
	// and since job 0 always runs, that is deterministic here.
	err := forEach(4, 16, func(i int) error { return fmt.Errorf("err-%02d", i) })
	if err == nil || err.Error() != "err-00" {
		t.Fatalf("got %v, want err-00", err)
	}
}

// TestParallelMatchesSequential is the harness determinism guarantee: the
// same figure run fully sequentially and with a large worker pool must
// produce identical values and byte-identical rendered tables.
func TestParallelMatchesSequential(t *testing.T) {
	c := testContext(t)
	apps := []string{"gamess", "blackscholes"}
	seq := &Context{P: c.P, Parallelism: 1}
	par := &Context{P: c.P, Parallelism: 8}

	exdS, timesS, err := seq.Fig9(apps)
	if err != nil {
		t.Fatal(err)
	}
	exdP, timesP, err := par.Fig9(apps)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(exdS.Values, exdP.Values) {
		t.Errorf("E×D values differ between sequential and parallel runs:\nseq: %+v\npar: %+v",
			exdS.Values, exdP.Values)
	}
	if got, want := exdP.Render(), exdS.Render(); got != want {
		t.Errorf("rendered E×D tables differ:\n--- sequential ---\n%s\n--- parallel ---\n%s", want, got)
	}
	if got, want := timesP.Render(), timesS.Render(); got != want {
		t.Errorf("rendered time tables differ:\n--- sequential ---\n%s\n--- parallel ---\n%s", want, got)
	}
}
