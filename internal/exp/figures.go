package exp

import (
	"fmt"

	"yukta/internal/core"
	"yukta/internal/series"
	"yukta/internal/workload"
)

// fourSchemes returns the Table IV schemes (a)-(d) in order.
func (c *Context) fourSchemes() []core.Scheme {
	return []core.Scheme{
		c.P.CoordinatedHeuristic(),
		c.P.DecoupledHeuristic(),
		c.P.YuktaHWSSVOSHeuristic(core.DefaultHWParams()),
		c.P.YuktaFullSSV(core.DefaultHWParams(), core.DefaultOSParams()),
	}
}

// lqgSchemes returns the §VI-B comparison set.
func (c *Context) lqgSchemes() []core.Scheme {
	return []core.Scheme{
		c.P.CoordinatedHeuristic(),
		c.P.DecoupledLQG(),
		c.P.MonolithicLQG(),
		c.P.YuktaFullSSV(core.DefaultHWParams(), core.DefaultOSParams()),
	}
}

// allSchemes returns every implemented scheme (for Figure 14).
func (c *Context) allSchemes() []core.Scheme {
	return []core.Scheme{
		c.P.CoordinatedHeuristic(),
		c.P.DecoupledHeuristic(),
		c.P.YuktaHWSSVOSHeuristic(core.DefaultHWParams()),
		c.P.YuktaFullSSV(core.DefaultHWParams(), core.DefaultOSParams()),
		c.P.DecoupledLQG(),
		c.P.MonolithicLQG(),
	}
}

// runMatrix executes every scheme on every app and fills two BarSets (E×D
// and execution time). The (scheme, app) runs are independent — each gets a
// fresh board and its own workload from the loader — so they fan out across
// the context's worker pool; results land in an index-addressed slice and
// are assembled in the sequential nesting order, keeping the rendered
// tables byte-identical at any parallelism.
func (c *Context) runMatrix(title string, schemes []core.Scheme, apps []string,
	loader func(string) (workload.Workload, error)) (exd, times *BarSet, err error) {

	names := make([]string, len(schemes))
	for i, s := range schemes {
		names[i] = s.Name
	}
	exd = &BarSet{Title: title + " E×D", Metric: "Energy×Delay", Apps: apps, Schemes: names,
		Values: map[string]map[string]float64{}}
	times = &BarSet{Title: title + " execution time", Metric: "seconds", Apps: apps, Schemes: names,
		Values: map[string]map[string]float64{}}
	if c.workers() > 1 {
		if err := c.warmSchemes(schemes); err != nil {
			return nil, nil, err
		}
	}
	type cell struct{ exd, time float64 }
	results := make([]cell, len(schemes)*len(apps))
	err = c.forEach(len(results), func(i int) error {
		sch := schemes[i/len(apps)]
		app := apps[i%len(apps)]
		w, err := loader(app)
		if err != nil {
			return err
		}
		res, err := core.Run(c.P.Cfg, sch, w, c.scalarOpts())
		if err != nil {
			return fmt.Errorf("exp: %s on %s: %w", sch.Name, app, err)
		}
		results[i] = cell{exd: res.ExD, time: res.TimeS}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	for si, sch := range schemes {
		exd.Values[sch.Name] = map[string]float64{}
		times.Values[sch.Name] = map[string]float64{}
		for ai, app := range apps {
			r := results[si*len(apps)+ai]
			exd.Values[sch.Name][app] = r.exd
			times.Values[sch.Name][app] = r.time
		}
	}
	return exd, times, nil
}

func appLoader(name string) (workload.Workload, error) {
	return workload.Lookup(name)
}

// Fig9 reproduces Figure 9: E×D (a) and execution time (b) of the four
// two-layer schemes over the given applications (pass nil for the full
// evaluation suite).
func (c *Context) Fig9(apps []string) (exd, times *BarSet, err error) {
	if apps == nil {
		apps = EvalApps()
	}
	return c.runMatrix("Figure 9", c.fourSchemes(), apps, appLoader)
}

// Fig10 reproduces Figure 10: the big-cluster power of blackscholes versus
// time under the four schemes.
func (c *Context) Fig10() (*TraceSet, error) {
	return c.traceFigure("Figure 10: big-cluster power (W), blackscholes", c.fourSchemes(),
		func(r *core.RunResult) *series.Series { return r.BigPower })
}

// Fig11 reproduces Figure 11: the performance (BIPS) of blackscholes versus
// time under the four schemes.
func (c *Context) Fig11() (*TraceSet, error) {
	return c.traceFigure("Figure 11: performance (BIPS), blackscholes", c.fourSchemes(),
		func(r *core.RunResult) *series.Series { return r.Perf })
}

func (c *Context) traceFigure(title string, schemes []core.Scheme,
	pick func(*core.RunResult) *series.Series) (*TraceSet, error) {

	out := &TraceSet{Title: title, Series: map[string]*series.Series{}}
	if c.workers() > 1 {
		if err := c.warmSchemes(schemes); err != nil {
			return nil, err
		}
	}
	traces := make([]*series.Series, len(schemes))
	err := c.forEach(len(schemes), func(i int) error {
		w, err := workload.Lookup("blackscholes")
		if err != nil {
			return err
		}
		res, err := core.Run(c.P.Cfg, schemes[i], w, c.traceOpts())
		if err != nil {
			return err
		}
		traces[i] = pick(res)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, sch := range schemes {
		out.Order = append(out.Order, sch.Name)
		out.Series[sch.Name] = traces[i]
	}
	return out, nil
}

// Fig12and13 reproduces Figures 12 and 13: E×D and execution time of the
// LQG-based designs versus the baseline and Yukta (pass nil for the full
// suite).
func (c *Context) Fig12and13(apps []string) (exd, times *BarSet, err error) {
	if apps == nil {
		apps = EvalApps()
	}
	return c.runMatrix("Figures 12/13", c.lqgSchemes(), apps, appLoader)
}

// Fig14 reproduces Figure 14: E×D of the heterogeneous mixes under every
// scheme.
func (c *Context) Fig14() (*BarSet, error) {
	mixes := workload.HeterogeneousMixes()
	apps := make([]string, len(mixes))
	byName := map[string]*workload.Mix{}
	for i, m := range mixes {
		apps[i] = m.Name()
		byName[m.Name()] = m
	}
	loader := func(name string) (workload.Workload, error) {
		m, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("exp: unknown mix %q", name)
		}
		// Clone per run: handing out the shared *Mix would let every scheme
		// (and, under the worker pool, concurrent runs) advance the same
		// progress state.
		return m.Clone(), nil
	}
	exd, _, err := c.runMatrix("Figure 14 (heterogeneous mixes)", c.allSchemes(), apps, loader)
	return exd, err
}
