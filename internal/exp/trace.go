package exp

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"time"

	"yukta/internal/core"
	"yukta/internal/obs"
)

// attachRecorder allocates a flight recorder sized to opt's horizon and sets
// it as opt.Trace when the context has a TraceDir; it returns nil (leaving
// opt untouched) otherwise. Each run gets its own recorder, so parallel
// sweeps never interleave records.
func (c *Context) attachRecorder(opt *core.RunOptions) *obs.Recorder {
	if c.TraceDir == "" {
		return nil
	}
	rec := obs.NewRecorder(traceCapacity(*opt))
	opt.Trace = rec
	return rec
}

// traceCapacity sizes a recorder to hold every interval of a run bounded by
// opt (using core.Run's defaults for unset fields), so sweep traces never
// drop records.
func traceCapacity(opt core.RunOptions) int {
	maxTime := opt.MaxTime
	if maxTime <= 0 {
		maxTime = 1200 * time.Second
	}
	interval := opt.Interval
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	return int(maxTime/interval) + 1
}

// cleanName maps a scheme or app name to a filename-safe stem fragment.
func cleanName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, s)
}

// writeTrace persists one run's recorder into the context's TraceDir as
// <stem>.jsonl (the schema-validatable decision log) and
// <stem>.timeline.txt (the terminal rendering).
func (c *Context) writeTrace(stem string, rec *obs.Recorder) error {
	if err := os.MkdirAll(c.TraceDir, 0o755); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(c.TraceDir, stem+".jsonl"), buf.Bytes(), 0o644); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(c.TraceDir, stem+".timeline.txt"),
		[]byte(rec.Timeline(100)), 0o644)
}

// writeFleetTrace persists one fleet run's coordination-layer recorder into
// the context's TraceDir as <stem>.fleet.jsonl. The .fleet.jsonl suffix is
// the dispatch key between the per-board and fleet schemas for validation
// tooling (obs.ValidateFleetJSONL vs obs.ValidateJSONL).
func (c *Context) writeFleetTrace(stem string, rec *obs.FleetRecorder) error {
	if err := os.MkdirAll(c.TraceDir, 0o755); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(c.TraceDir, stem+".fleet.jsonl"), buf.Bytes(), 0o644)
}
