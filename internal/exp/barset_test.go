package exp

import (
	"strings"
	"testing"

	"yukta/internal/series"
)

func TestBarSetNormalizedAndAverages(t *testing.T) {
	b := &BarSet{
		Title:   "test",
		Metric:  "E×D",
		Apps:    []string{"mcf", "blackscholes"},
		Schemes: []string{"base", "yukta"},
		Values: map[string]map[string]float64{
			"base":  {"mcf": 100, "blackscholes": 200},
			"yukta": {"mcf": 50, "blackscholes": 150},
		},
	}
	norm := b.Normalized()
	if norm["base"]["mcf"] != 1 || norm["yukta"]["mcf"] != 0.5 {
		t.Fatalf("normalized %v", norm)
	}
	sav, pav, avg := b.Averages("yukta")
	// mcf is SPEC, blackscholes is PARSEC.
	if sav != 0.5 || pav != 0.75 || avg != 0.625 {
		t.Fatalf("averages %v %v %v", sav, pav, avg)
	}
	out := b.Render()
	if !strings.Contains(out, "0.50") || !strings.Contains(out, "SAv") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestBarSetZeroBaseline(t *testing.T) {
	b := &BarSet{
		Apps:    []string{"x"},
		Schemes: []string{"base", "other"},
		Values: map[string]map[string]float64{
			"base":  {"x": 0},
			"other": {"x": 5},
		},
	}
	norm := b.Normalized()
	if _, ok := norm["other"]["x"]; ok {
		t.Fatal("zero baseline must not produce a normalized value")
	}
}

func TestTraceSetRenderOrder(t *testing.T) {
	a := series.New("a")
	a.Add(0, 1)
	a.Add(1, 2)
	b := series.New("b")
	b.Add(0, 3)
	tr := &TraceSet{
		Title:  "ordered traces",
		Order:  []string{"second", "first"},
		Series: map[string]*series.Series{"first": a, "second": b},
	}
	out := tr.Render()
	if !strings.Contains(out, "ordered traces") {
		t.Fatalf("render missing title: %s", out)
	}
	if strings.Index(out, "[second]") > strings.Index(out, "[first]") {
		t.Fatal("explicit order not honoured")
	}
	// Unlisted keys are skipped silently; unknown order entries ignored.
	tr.Order = []string{"first", "ghost"}
	if out := tr.Render(); strings.Contains(out, "ghost") {
		t.Fatal("ghost trace rendered")
	}
}
