package exp

import (
	"fmt"
	"math"

	"yukta/internal/core"
	"yukta/internal/fault"
	"yukta/internal/series"
	"yukta/internal/supervisor"
	"yukta/internal/workload"
)

// DefaultClassIntensity is the fault intensity the per-class supervised
// sweep ships at — deliberately above the robustness sweep's harshest grid
// point, because the supervised-vs-unsupervised comparison is only
// interesting where the primary controller genuinely leaves its validity
// envelope.
const DefaultClassIntensity = 2.0

// SupervisorAgg aggregates the supervisory accounting of one table cell
// (one scheme × fault level, across apps), converted to seconds.
type SupervisorAgg struct {
	// Trips is the total confirmed transfers to the fallback.
	Trips int
	// Recoveries is the total completed trip-to-nominal round trips.
	Recoveries int
	// FallbackS is the total simulated time the fallback held authority.
	FallbackS float64
	// MeanRecoveryS is the mean trip-to-nominal latency in simulated
	// seconds over completed recoveries (0 when none completed).
	MeanRecoveryS float64

	latencySteps int
	intervalS    float64
}

// add accumulates one run's supervisory stats into the cell aggregate.
func (a *SupervisorAgg) add(st supervisor.Stats, intervalS float64) {
	a.Trips += st.Trips
	a.Recoveries += st.Recoveries
	a.FallbackS += float64(st.FallbackSteps) * intervalS
	a.latencySteps += st.RecoveryLatencySteps
	a.intervalS = intervalS
	if a.Recoveries > 0 {
		a.MeanRecoveryS = float64(a.latencySteps) / float64(a.Recoveries) * a.intervalS
	}
}

// render formats the aggregate as "trips/fallback/recovery" cell text.
func (a SupervisorAgg) render() string {
	rec := "-"
	if a.Recoveries > 0 {
		rec = fmt.Sprintf("%.1fs", a.MeanRecoveryS)
	}
	return fmt.Sprintf("%d / %.1fs / %s", a.Trips, a.FallbackS, rec)
}

// ClassTable is the supervised-vs-unsupervised degradation table, one row
// per isolated fault class at a single (high) intensity. Degradation is
// faulted E×D over the same scheme's clean E×D, geometric mean across apps.
type ClassTable struct {
	// Title heads the rendered table.
	Title string
	// Seed is the fault campaign seed; Intensity the single intensity used.
	Seed      int64
	Intensity float64
	// Classes and Apps give the rows and the aggregation set in run order.
	Classes []string
	Apps    []string
	// Unsupervised and Supervised hold the scheme names compared.
	Unsupervised, Supervised string
	// UnsupDegradation[k] and SupDegradation[k] are the geomean E×D ratios
	// for Classes[k].
	UnsupDegradation, SupDegradation []float64
	// SupStats[k] aggregates the supervisor accounting for Classes[k].
	SupStats []SupervisorAgg
	// CleanStats aggregates the supervisor accounting of the clean
	// (fault-free) supervised runs; the safety layer must record zero trips
	// here.
	CleanStats SupervisorAgg
	// Incomplete counts runs that hit the MaxTime abort.
	Incomplete int
}

// Render writes the per-class comparison and the clean-run trip check as
// aligned text.
func (t *ClassTable) Render() string {
	tab := &series.Table{Header: []string{"fault class", "unsupervised ×", "supervised ×",
		"trips / fallback / recovery"}}
	for k, cls := range t.Classes {
		tab.AddRow(cls,
			fmt.Sprintf("%.3f", t.UnsupDegradation[k]),
			fmt.Sprintf("%.3f", t.SupDegradation[k]),
			t.SupStats[k].render())
	}
	var sb stringsBuilder
	fmt.Fprintf(&sb, "%s (seed %d, intensity %.2f, apps: %v)\n", t.Title, t.Seed, t.Intensity, t.Apps)
	fmt.Fprintf(&sb, "unsupervised = %q, supervised = %q\n", t.Unsupervised, t.Supervised)
	tab.Render(&sb)
	fmt.Fprintf(&sb, "\nclean supervised runs: %s\n", t.CleanStats.render())
	if t.Incomplete > 0 {
		fmt.Fprintf(&sb, "%d run(s) aborted at the time limit.\n", t.Incomplete)
	}
	return sb.String()
}

// SupervisedClassSweep compares the full SSV stack with and without the
// supervisory safety layer under each isolated fault class at one (high)
// intensity. Pass nil apps for the quick four-app subset and intensity <= 0
// for DefaultClassIntensity. Deterministic at any Parallelism, like every
// sweep in this package.
func (c *Context) SupervisedClassSweep(apps []string, intensity float64) (*ClassTable, error) {
	if apps == nil {
		apps = []string{"gamess", "mcf", "blackscholes", "streamcluster"}
	}
	if intensity <= 0 {
		intensity = DefaultClassIntensity
	}
	schemes := []core.Scheme{
		c.P.YuktaFullSSV(core.DefaultHWParams(), core.DefaultOSParams()),
		c.P.SupervisedYuktaSSV(core.DefaultHWParams(), core.DefaultOSParams()),
	}
	if c.workers() > 1 {
		if err := c.warmSchemes(schemes); err != nil {
			return nil, err
		}
	}
	classes := fault.ClassNames()

	// Jobs: level-major (clean first, then each class), then scheme, then app.
	levels := append([]string{"clean"}, classes...)
	type cell struct {
		exd       float64
		completed bool
		sup       *supervisor.Stats
		intervalS float64
	}
	nPer := len(schemes) * len(apps)
	results := make([]cell, len(levels)*nPer)
	err := c.forEach(len(results), func(i int) error {
		level := levels[i/nPer]
		sch := schemes[(i%nPer)/len(apps)]
		app := apps[i%len(apps)]
		w, err := workload.Lookup(app)
		if err != nil {
			return err
		}
		opt := c.scalarOpts()
		if level != "clean" {
			opt.Faults = fault.PresetClass(c.Seed, intensity, level)
		}
		rec := c.attachRecorder(&opt)
		res, err := core.Run(c.P.Cfg, sch, w, opt)
		if err != nil {
			return fmt.Errorf("exp: %s on %s under %s faults: %w", sch.Name, app, level, err)
		}
		if rec != nil {
			stem := fmt.Sprintf("class-%s-%s-%s", cleanName(level), cleanName(sch.Name), cleanName(app))
			if err := c.writeTrace(stem, rec); err != nil {
				return err
			}
		}
		results[i] = cell{exd: res.ExD, completed: res.Completed,
			sup: res.Supervisor, intervalS: res.IntervalS}
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := &ClassTable{
		Title:            "Supervised vs unsupervised SSV: E×D degradation per fault class",
		Seed:             c.Seed,
		Intensity:        intensity,
		Classes:          classes,
		Apps:             apps,
		Unsupervised:     schemes[0].Name,
		Supervised:       schemes[1].Name,
		UnsupDegradation: make([]float64, len(classes)),
		SupDegradation:   make([]float64, len(classes)),
		SupStats:         make([]SupervisorAgg, len(classes)),
	}
	at := func(level, si, ai int) cell { return results[level*nPer+si*len(apps)+ai] }
	for _, si := range []int{0, 1} {
		for ai := range apps {
			cl := at(0, si, ai)
			if !cl.completed {
				out.Incomplete++
			}
			if si == 1 && cl.sup != nil {
				out.CleanStats.add(*cl.sup, cl.intervalS)
			}
		}
	}
	for k := range classes {
		for si, dst := range []*[]float64{&out.UnsupDegradation, &out.SupDegradation} {
			logSum := 0.0
			for ai := range apps {
				f := at(k+1, si, ai)
				if !f.completed {
					out.Incomplete++
				}
				logSum += math.Log(f.exd / at(0, si, ai).exd)
				if si == 1 && f.sup != nil {
					out.SupStats[k].add(*f.sup, f.intervalS)
				}
			}
			(*dst)[k] = math.Exp(logSum / float64(len(apps)))
		}
	}
	return out, nil
}
