package exp

import (
	"strings"
	"testing"
)

func TestConvergenceReport(t *testing.T) {
	c := testContext(t)
	cv, err := c.ConvergenceReport()
	if err != nil {
		t.Fatal(err)
	}
	// The §VI-B direction: the SSV controller converges the power step at
	// least as fast as the detuned LQG, and the Yukta optimizer settles no
	// slower than the monolithic LQG's.
	if cv.SSVStepIntervals > cv.LQGStepIntervals {
		t.Errorf("SSV step %d intervals, LQG %d — SSV should be no slower",
			cv.SSVStepIntervals, cv.LQGStepIntervals)
	}
	if cv.SSVStepIntervals < 1 || cv.SSVStepIntervals > 30 {
		t.Errorf("SSV step convergence %d intervals implausible", cv.SSVStepIntervals)
	}
	out := RenderConvergence(cv)
	if !strings.Contains(out, "paper: 2 vs 6") {
		t.Fatalf("render malformed:\n%s", out)
	}
	t.Logf("\n%s", out)
}
