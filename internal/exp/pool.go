package exp

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"yukta/internal/core"
)

// Options configures the experiment harness.
type Options struct {
	// Parallelism is the number of worker goroutines the drivers use to fan
	// independent (scheme, app) simulations out. 0 means runtime.NumCPU();
	// 1 runs every experiment sequentially.
	Parallelism int

	// Seed is the base seed for every seeded component of the harness (the
	// robustness sweep's fault campaign and its workload disturbances). Runs
	// derive their own streams from it, so one seed fixes every random draw
	// in the harness regardless of parallelism. 0 means seed 1.
	Seed int64

	// Supervise adds the supervised SSV scheme (the supervisory safety layer
	// wrapping the full SSV stack) to the robustness sweep and enables the
	// supervisor-accounting section of its table.
	Supervise bool
}

// workers resolves the context's parallelism setting to a concrete count.
func (c *Context) workers() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.NumCPU()
}

// forEach runs fn(0) … fn(n-1) on up to workers goroutines and waits for all
// of them. Each simulation is independent (fresh board, fresh workload clone,
// per-board seeded RNG), so callers write results into index i of a
// preallocated slice and assemble them in the original order afterwards —
// the rendered tables come out byte-identical to a sequential run.
//
// Error handling is deterministic too: every job's error is recorded per
// index and the lowest-index failure is returned, regardless of which worker
// hit an error first. After any failure the remaining unstarted jobs are
// skipped.
func forEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	jobs := make(chan int)
	errs := make([]error, n)
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				if failed.Load() {
					continue
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// warmSchemes builds one session per scheme concurrently before the run
// matrix fans out. Controller synthesis is the expensive part of a session
// and is single-flighted in the Platform caches, so without this step every
// worker that picks up the first scheme's jobs would block on the same
// cache entry; warming instead synthesizes the distinct controllers in
// parallel, once each.
func (c *Context) warmSchemes(schemes []core.Scheme) error {
	return forEach(c.workers(), len(schemes), func(i int) error {
		if _, err := schemes[i].New(); err != nil {
			return fmt.Errorf("exp: warming scheme %q: %w", schemes[i].Name, err)
		}
		return nil
	})
}
