package exp

import (
	"fmt"
	"runtime"

	"yukta/internal/core"
	"yukta/internal/obs"
	"yukta/internal/pool"
)

// Options configures the experiment harness.
type Options struct {
	// Parallelism is the number of worker goroutines the drivers use to fan
	// independent (scheme, app) simulations out. 0 means runtime.NumCPU();
	// 1 runs every experiment sequentially.
	Parallelism int

	// Seed is the base seed for every seeded component of the harness (the
	// robustness sweep's fault campaign and its workload disturbances). Runs
	// derive their own streams from it, so one seed fixes every random draw
	// in the harness regardless of parallelism. 0 means seed 1.
	Seed int64

	// Supervise adds the supervised SSV scheme (the supervisory safety layer
	// wrapping the full SSV stack) to the robustness sweep and enables the
	// supervisor-accounting section of its table.
	Supervise bool

	// TraceDir, when non-empty, makes the fault sweeps attach a flight
	// recorder to every run and write one <stem>.jsonl decision log plus a
	// <stem>.timeline.txt rendering per (level, scheme, app) into this
	// directory. Traces are byte-identical at any Parallelism.
	TraceDir string

	// Metrics, when true, creates an obs.Registry on the Context and threads
	// it through every run and the worker pool, accumulating step-latency
	// histograms, cache hit rates, fault/trip counters and pool occupancy.
	Metrics bool

	// FleetBudgetW overrides the per-board share of the shared fleet power
	// budget used by FleetSweep; 0 means DefaultFleetBoardBudgetW.
	FleetBudgetW float64

	// FleetTopo, when non-empty, runs every fleet sweep cell hierarchically
	// under this coordinator topology (fleet.ParseTopology grammar, e.g.
	// "4x8" or "root=a,b;a=4;b=4"). The topology's board count must equal
	// the sweep's fleet size. Empty keeps the flat single-coordinator path.
	FleetTopo string

	// Engine selects the simulation core for every run the harness launches
	// ("" = the event engine). Results and traces are byte-identical across
	// engines; the lockstep engine exists for differential testing and
	// engine benchmarking.
	Engine core.Engine
}

// workers resolves the context's parallelism setting to a concrete count.
func (c *Context) workers() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.NumCPU()
}

// forEach runs fn(0) … fn(n-1) on up to workers goroutines and waits for all
// of them. Each simulation is independent (fresh board, fresh workload clone,
// per-board seeded RNG), so callers write results into index i of a
// preallocated slice and assemble them in the original order afterwards —
// the rendered tables come out byte-identical to a sequential run.
//
// The implementation lives in internal/pool (it is shared with the fleet
// runner); this wrapper keeps the harness call sites unchanged.
func forEach(workers, n int, fn func(i int) error) error {
	return pool.ForEach(workers, n, fn)
}

// forEachMetered is forEach with optional pool instrumentation; see
// pool.ForEachMetered.
func forEachMetered(workers, n int, m *obs.Registry, fn func(i int) error) error {
	return pool.ForEachMetered(workers, n, m, fn)
}

// forEach is the Context-level fan-out: it uses the context's worker count
// and its metrics registry (nil when metrics are off).
func (c *Context) forEach(n int, fn func(i int) error) error {
	return pool.ForEachMetered(c.workers(), n, c.Metrics, fn)
}

// warmSchemes builds one session per scheme concurrently before the run
// matrix fans out. Controller synthesis is the expensive part of a session
// and is single-flighted in the Platform caches, so without this step every
// worker that picks up the first scheme's jobs would block on the same
// cache entry; warming instead synthesizes the distinct controllers in
// parallel, once each.
func (c *Context) warmSchemes(schemes []core.Scheme) error {
	return c.forEach(len(schemes), func(i int) error {
		if _, err := schemes[i].New(); err != nil {
			return fmt.Errorf("exp: warming scheme %q: %w", schemes[i].Name, err)
		}
		return nil
	})
}
