package exp

import (
	"fmt"
	"math"

	"yukta/internal/core"
	"yukta/internal/fault"
	"yukta/internal/series"
	"yukta/internal/supervisor"
	"yukta/internal/workload"
)

// DefaultIntensities is the fault-intensity grid the robustness sweep uses
// when the caller passes none (the clean baseline at intensity 0 is always
// run in addition).
func DefaultIntensities() []float64 { return []float64{0.25, 0.5, 1.0} }

// robustSchemes returns the controller families the fault sweep compares:
// the heuristic baseline, the LQG baseline and the full SSV stack — plus,
// when Context.Supervise is set, the SSV stack under the supervisory safety
// layer.
func (c *Context) robustSchemes() []core.Scheme {
	schemes := []core.Scheme{
		c.P.CoordinatedHeuristic(),
		c.P.MonolithicLQG(),
		c.P.YuktaFullSSV(core.DefaultHWParams(), core.DefaultOSParams()),
	}
	if c.Supervise {
		schemes = append(schemes, c.P.SupervisedYuktaSSV(core.DefaultHWParams(), core.DefaultOSParams()))
	}
	return schemes
}

// RobustnessTable is the scheme × fault-intensity degradation table the
// robustness sweep produces. Degradation is each scheme's faulted E×D over
// its own clean E×D (geometric mean across apps), so 1.00 means the faults
// cost nothing and 1.30 means E×D inflated 30%.
type RobustnessTable struct {
	// Title heads the rendered table.
	Title string
	// Seed is the fault campaign seed the table was produced with.
	Seed int64
	// Intensities is the swept fault-intensity grid (clean = 0 is implicit).
	Intensities []float64
	// Schemes and Apps give the row and aggregation sets in run order.
	Schemes []string
	Apps    []string
	// CleanExD[scheme] is the geometric-mean clean E×D in J·s.
	CleanExD map[string]float64
	// Degradation[scheme][k] is the geometric-mean E×D ratio at
	// Intensities[k].
	Degradation map[string][]float64
	// Faults[k] totals the injected faults at Intensities[k] across all
	// schemes and apps.
	Faults []fault.Stats
	// Supervised[scheme][k] aggregates the supervisory accounting of a
	// supervised scheme's runs: index 0 is the clean level, then one entry
	// per intensity. Empty for sweeps without supervised schemes, keeping
	// their rendered tables unchanged.
	Supervised map[string][]SupervisorAgg
	// Incomplete counts runs that hit the MaxTime abort instead of
	// finishing their work (their E×D still enters the table, charged at
	// the aborted horizon).
	Incomplete int
}

// Render writes the degradation table, the injected-fault totals and the
// exact reproduction command as aligned text.
func (r *RobustnessTable) Render() string {
	tab := &series.Table{Header: append([]string{"scheme", "clean E×D (J·s)"},
		func() []string {
			h := make([]string, len(r.Intensities))
			for i, s := range r.Intensities {
				h[i] = fmt.Sprintf("×@s=%.2f", s)
			}
			return h
		}()...)}
	for _, sch := range r.Schemes {
		row := []string{sch, fmt.Sprintf("%.0f", r.CleanExD[sch])}
		for _, d := range r.Degradation[sch] {
			row = append(row, fmt.Sprintf("%.3f", d))
		}
		tab.AddRow(row...)
	}
	var sb stringsBuilder
	fmt.Fprintf(&sb, "%s (seed %d, apps: %v)\n", r.Title, r.Seed, r.Apps)
	tab.Render(&sb)
	sb.WriteString("\ninjected faults per intensity (all schemes × apps):\n")
	ft := &series.Table{Header: []string{"s", "dropped", "stale", "held cmds", "skewed cmds", "forced TMU"}}
	for i, s := range r.Intensities {
		f := r.Faults[i]
		ft.AddRow(fmt.Sprintf("%.2f", s), fmt.Sprint(f.DroppedReadings), fmt.Sprint(f.StaleReadings),
			fmt.Sprint(f.HeldCommands), fmt.Sprint(f.SkewedCommands), fmt.Sprint(f.ForcedThrottles))
	}
	ft.Render(&sb)
	if len(r.Supervised) > 0 {
		sb.WriteString("\nsupervisor accounting (trips / time-in-fallback / mean recovery latency):\n")
		st := &series.Table{Header: append([]string{"scheme", "clean"},
			func() []string {
				h := make([]string, len(r.Intensities))
				for i, s := range r.Intensities {
					h[i] = fmt.Sprintf("s=%.2f", s)
				}
				return h
			}()...)}
		for _, sch := range r.Schemes {
			aggs, ok := r.Supervised[sch]
			if !ok {
				continue
			}
			row := []string{sch}
			for _, a := range aggs {
				row = append(row, a.render())
			}
			st.AddRow(row...)
		}
		st.Render(&sb)
	}
	if r.Incomplete > 0 {
		fmt.Fprintf(&sb, "\n%d run(s) aborted at the time limit.\n", r.Incomplete)
	}
	return sb.String()
}

// RobustnessSweep runs every scheme × app at the clean operating point and at
// each fault intensity, and returns the per-scheme degradation table. Pass
// nil apps for the quick four-app subset and nil intensities for
// DefaultIntensities. The injected fault sequences are fully determined by
// (Context.Seed, scheme, app, intensity), so the rendered table is
// byte-identical at any Parallelism setting.
func (c *Context) RobustnessSweep(apps []string, intensities []float64) (*RobustnessTable, error) {
	if apps == nil {
		apps = []string{"gamess", "mcf", "blackscholes", "streamcluster"}
	}
	if intensities == nil {
		intensities = DefaultIntensities()
	}
	schemes := c.robustSchemes()
	names := make([]string, len(schemes))
	for i, s := range schemes {
		names[i] = s.Name
	}
	if c.workers() > 1 {
		if err := c.warmSchemes(schemes); err != nil {
			return nil, err
		}
	}

	// Jobs: intensity-major (clean level first), then scheme, then app.
	levels := append([]float64{0}, intensities...)
	type cell struct {
		exd       float64
		completed bool
		stats     fault.Stats
		sup       *supervisor.Stats
		intervalS float64
	}
	nPer := len(schemes) * len(apps)
	results := make([]cell, len(levels)*nPer)
	err := c.forEach(len(results), func(i int) error {
		s := levels[i/nPer]
		sch := schemes[(i%nPer)/len(apps)]
		app := apps[i%len(apps)]
		w, err := workload.Lookup(app)
		if err != nil {
			return err
		}
		opt := c.scalarOpts()
		opt.Faults = fault.Preset(c.Seed, s)
		rec := c.attachRecorder(&opt)
		res, err := core.Run(c.P.Cfg, sch, w, opt)
		if err != nil {
			return fmt.Errorf("exp: %s on %s at intensity %.2f: %w", sch.Name, app, s, err)
		}
		if rec != nil {
			stem := fmt.Sprintf("robust-s%.2f-%s-%s", s, cleanName(sch.Name), cleanName(app))
			if err := c.writeTrace(stem, rec); err != nil {
				return err
			}
		}
		results[i] = cell{exd: res.ExD, completed: res.Completed, stats: res.Faults,
			sup: res.Supervisor, intervalS: res.IntervalS}
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := &RobustnessTable{
		Title:       "Robustness sweep: E×D degradation vs fault intensity",
		Seed:        c.Seed,
		Intensities: intensities,
		Schemes:     names,
		Apps:        apps,
		CleanExD:    map[string]float64{},
		Degradation: map[string][]float64{},
		Faults:      make([]fault.Stats, len(intensities)),
	}
	at := func(level, si, ai int) cell { return results[level*nPer+si*len(apps)+ai] }
	for si, name := range names {
		logSum := 0.0
		for ai := range apps {
			cl := at(0, si, ai)
			if !cl.completed {
				out.Incomplete++
			}
			logSum += math.Log(cl.exd)
		}
		out.CleanExD[name] = math.Exp(logSum / float64(len(apps)))
		degr := make([]float64, len(intensities))
		for k := range intensities {
			logSum := 0.0
			for ai := range apps {
				f := at(k+1, si, ai)
				if !f.completed {
					out.Incomplete++
				}
				logSum += math.Log(f.exd / at(0, si, ai).exd)
			}
			degr[k] = math.Exp(logSum / float64(len(apps)))
		}
		out.Degradation[name] = degr
	}
	for k := range intensities {
		var tot fault.Stats
		for si := range schemes {
			for ai := range apps {
				st := at(k+1, si, ai).stats
				tot.DroppedReadings += st.DroppedReadings
				tot.StaleReadings += st.StaleReadings
				tot.HeldCommands += st.HeldCommands
				tot.SkewedCommands += st.SkewedCommands
				tot.ForcedThrottles += st.ForcedThrottles
			}
		}
		out.Faults[k] = tot
	}
	for si, name := range names {
		supervised := false
		aggs := make([]SupervisorAgg, len(levels))
		for level := range levels {
			for ai := range apps {
				c := at(level, si, ai)
				if c.sup != nil {
					supervised = true
					aggs[level].add(*c.sup, c.intervalS)
				}
			}
		}
		if supervised {
			if out.Supervised == nil {
				out.Supervised = map[string][]SupervisorAgg{}
			}
			out.Supervised[name] = aggs
		}
	}
	return out, nil
}
