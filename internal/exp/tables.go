package exp

import (
	"fmt"

	"yukta/internal/series"
)

// TableI renders the paper's design-space taxonomy (Table I), with the
// choices Yukta selects marked by asterisks.
func TableI() string {
	t := &series.Table{Header: []string{"Axis", "Choices (* = Yukta's)"}}
	t.AddRow("Modeling", "White Box (Analytical), *Black Box (Data Driven)*, Gray Box")
	t.AddRow("Mode", "SISO, MISO, SIMO, *MIMO*")
	t.AddRow("Organization", "Decoupled, Centralized, Cascaded, *Collaborative*")
	t.AddRow("Approach", "Classical, *Robust*, Gain Scheduling, Adaptive")
	t.AddRow("Type", "PID, LQG, MPC, *SSV*")
	var sb stringsBuilder
	sb.WriteString("Table I: space of design choices from control theory\n")
	t.Render(&sb)
	return sb.String()
}

// TableII renders the hardware controller's design parameters (paper
// Table II).
func TableII() string {
	t := &series.Table{Header: []string{"Input", "Weight", "Allowed values"}}
	t.AddRow("#big cores", "1", "1..4")
	t.AddRow("#little cores", "1", "1..4")
	t.AddRow("frequency_big", "1", "0.2..2.0 GHz, 0.1 steps")
	t.AddRow("frequency_little", "1", "0.2..1.4 GHz, 0.1 steps")
	var sb stringsBuilder
	sb.WriteString("Table II: hardware controller (goal: minimize E×D s.t. power/temp limits)\n")
	t.Render(&sb)
	o := &series.Table{Header: []string{"Output", "Bound"}}
	o.AddRow("Performance (BIPS)", "±20% of range")
	o.AddRow("Power_big", "±10% of range")
	o.AddRow("Power_little", "±10% of range")
	o.AddRow("Temperature", "±10% of range")
	o.Render(&sb)
	sb.WriteString("External signals: #threads_big, threads/busy big core, threads/busy little core\n")
	sb.WriteString("Uncertainty guardband: ±40%\n")
	return sb.String()
}

// TableIII renders the software controller's design parameters (paper
// Table III).
func TableIII() string {
	t := &series.Table{Header: []string{"Input", "Weight", "Allowed values"}}
	t.AddRow("#threads_big", "2", "0..8")
	t.AddRow("threads/busy big core", "2", "1..4, 0.5 steps")
	t.AddRow("threads/busy little core", "2", "1..4, 0.5 steps")
	var sb stringsBuilder
	sb.WriteString("Table III: software controller (goal: minimize E×D)\n")
	t.Render(&sb)
	o := &series.Table{Header: []string{"Output", "Bound"}}
	o.AddRow("Performance_little (BIPS)", "±20% of range")
	o.AddRow("Performance_big (BIPS)", "±20% of range")
	o.AddRow("ΔSpareCompute (big-little)", "±20% of range")
	o.Render(&sb)
	sb.WriteString("External signals: #big cores, #little cores, frequency_big, frequency_little\n")
	sb.WriteString("Uncertainty guardband: ±50%\n")
	return sb.String()
}

// TableIV renders the scheme descriptions (paper Table IV plus the §VI-B
// LQG schemes).
func TableIV() string {
	t := &series.Table{Header: []string{"Scheme", "OS controller", "HW controller"}}
	t.AddRow("(a) Coordinated heuristic",
		"HMP-derived big-first scheduler; packs ≤2 threads/big core; rate-limited balancing",
		"races frequency/cores while safe, crude fractional backoff on violations")
	t.AddRow("(b) Decoupled heuristic",
		"round-robin, type-blind, reshuffles every period",
		"Performance governor: maximum always; firmware handles violations")
	t.AddRow("(c) Yukta: HW SSV+OS heuristic",
		"same as (a)",
		"SSV controller of Table II + E×D optimizer")
	t.AddRow("(d) Yukta: HW SSV+OS SSV",
		"SSV controller of Table III + E×D optimizer",
		"SSV controller of Table II + E×D optimizer")
	t.AddRow("Decoupled HW LQG+OS LQG",
		"LQG (no external signals) + optimizer",
		"LQG (no external signals) + optimizer")
	t.AddRow("Monolithic LQG",
		"single LQG over all 7 actuators and 7 outputs + optimizers", "(same controller)")
	var sb stringsBuilder
	sb.WriteString("Table IV: controller schemes\n")
	t.Render(&sb)
	return sb.String()
}

// RenderGuardbandPoints renders the Figure 16(a) sweep.
func RenderGuardbandPoints(points []GuardbandPoint) string {
	t := &series.Table{Header: []string{"guardband", "guaranteed bounds (rel. ±40%)", "SSV", "penalty"}}
	for _, p := range points {
		t.AddRow(
			fmt.Sprintf("±%.0f%%", p.Guardband*100),
			fmt.Sprintf("%.2f×", p.BoundsGrowth),
			fmt.Sprintf("%.2f", p.SSV),
			fmt.Sprintf("%g", p.Penalty),
		)
	}
	var sb stringsBuilder
	sb.WriteString("Figure 16(a): guaranteed output deviation bounds vs uncertainty guardband\n")
	t.Render(&sb)
	return sb.String()
}

// RenderHWCost renders the §VI-D hardware-cost summary.
func RenderHWCost(h *HWCost) string {
	var sb stringsBuilder
	sb.WriteString("§VI-D hardware implementation of the HW SSV controller\n")
	fmt.Fprintf(&sb, "  state dimension N = %d (I=%d, O=%d, E=%d)\n", h.StateDim, h.Inputs, h.Outputs, h.Exts)
	fmt.Fprintf(&sb, "  fixed-point operations per invocation ≈ %d\n", h.OpsPerInvocation)
	fmt.Fprintf(&sb, "  storage ≈ %.1f KB\n", float64(h.StorageBytes)/1024)
	return sb.String()
}
