package exp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFleetScaleTree runs the hierarchical scaling benchmark at one small
// size and pins its contract: the depth-1 point reproduces the flat event
// point exactly (enforced internally, re-checked here), deeper points carry
// the tree metadata, the report round-trips through JSON, and TreeGuard
// accepts the fresh report while rejecting tampered or uncovered points.
func TestFleetScaleTree(t *testing.T) {
	if testing.Short() {
		t.Skip("repeated fleet runs; skipped in -short")
	}
	c := testContext(t)
	rep, err := c.FleetScaleTree([]int{9}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 || len(rep.TreePoints) != 2 {
		t.Fatalf("report has %d flat / %d tree points, want 2/2", len(rep.Points), len(rep.TreePoints))
	}
	flat, d1, d2 := rep.Points[1], rep.TreePoints[0], rep.TreePoints[1]
	if d1.Depth != 1 || d1.Nodes != 1 || d1.EDP != flat.EDP || d1.Steps != flat.Steps {
		t.Fatalf("depth-1 point diverges from flat event point: %+v vs %+v", d1, flat)
	}
	if d2.Depth != 2 || d2.Nodes <= 1 || d2.Boards != 9 {
		t.Fatalf("depth-2 point malformed: %+v", d2)
	}
	if d2.NodeReallocations <= d2.Reallocations {
		t.Fatalf("depth-2 node reallocations %d should exceed realloc instants %d",
			d2.NodeReallocations, d2.Reallocations)
	}
	out := rep.Render()
	if !strings.Contains(out, "Hierarchical coordinator points") || !strings.Contains(out, d2.Topo) {
		t.Fatalf("render missing tree table:\n%s", out)
	}

	path := filepath.Join(t.TempDir(), "bench.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	committed, err := ReadFleetScaleReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(committed.TreePoints) != 2 || committed.TreePoints[1] != d2 {
		t.Fatalf("JSON round-trip lost tree points: %+v", committed.TreePoints)
	}

	// Uniform(9, 2) is the balanced 3×3 tree, so the shorthand spec must
	// resolve to the same committed point via the boards+depth fallback.
	if err := c.TreeGuard("3x3", committed); err != nil {
		t.Fatalf("guard rejected a byte-identical re-run: %v", err)
	}
	tampered := *committed
	tampered.TreePoints = append([]FleetTreeScalePoint(nil), committed.TreePoints...)
	tampered.TreePoints[1].EDP *= 1.001
	if err := c.TreeGuard("3x3", &tampered); err == nil {
		t.Fatal("guard accepted a tampered EDP")
	}
	if err := c.TreeGuard("2x2", committed); err == nil {
		t.Fatal("guard accepted a topology with no committed point")
	}
}
