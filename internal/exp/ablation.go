package exp

import (
	"fmt"

	"yukta/internal/core"
	"yukta/internal/workload"
)

// Ablation quantifies the contribution of the two design choices DESIGN.md
// calls out, by removing each from the full Yukta stack and re-measuring
// E×D (averaged over the given applications, normalized to the intact
// stack):
//
//   - external signals (the coordination channel of §III-B) — without them
//     the two SSV controllers are the "decoupled" organization the paper
//     argues against;
//   - self-conditioning (feeding the applied actuator state back to the
//     controller's estimator) — without it, saturation, quantization and
//     firmware overrides can wind the controllers up.
type Ablation struct {
	// Values are average E×D normalized to the intact Yukta full stack
	// (> 1 means the removal hurt).
	NoExternals     float64
	NoConditioning  float64
	IntactExDperApp map[string]float64
}

// AblationReport runs the ablations over the given apps (nil = a
// representative subset).
func (c *Context) AblationReport(apps []string) (*Ablation, error) {
	if apps == nil {
		apps = []string{"gamess", "mcf", "blackscholes", "streamcluster"}
	}
	variants := []core.Scheme{
		c.P.YuktaFullSSV(core.DefaultHWParams(), core.DefaultOSParams()),
		c.P.YuktaFullAblated("no external signals", true, false),
		c.P.YuktaFullAblated("no self-conditioning", false, true),
	}
	if c.workers() > 1 {
		if err := c.warmSchemes(variants); err != nil {
			return nil, err
		}
	}
	grid := make([]float64, len(variants)*len(apps))
	err := c.forEach(len(grid), func(i int) error {
		sch := variants[i/len(apps)]
		app := apps[i%len(apps)]
		w, err := workload.Lookup(app)
		if err != nil {
			return err
		}
		res, err := core.Run(c.P.Cfg, sch, w, c.scalarOpts())
		if err != nil {
			return fmt.Errorf("exp: ablation %q on %s: %w", sch.Name, app, err)
		}
		grid[i] = res.ExD
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Sum in the sequential nesting order so the float totals (and therefore
	// the reported ratios) do not depend on worker scheduling.
	totals := make([]float64, len(variants))
	out := &Ablation{IntactExDperApp: map[string]float64{}}
	for vi := range variants {
		for ai, app := range apps {
			exd := grid[vi*len(apps)+ai]
			totals[vi] += exd
			if vi == 0 {
				out.IntactExDperApp[app] = exd
			}
		}
	}
	out.NoExternals = totals[1] / totals[0]
	out.NoConditioning = totals[2] / totals[0]
	return out, nil
}

// RenderAblation renders the ablation summary.
func RenderAblation(a *Ablation) string {
	var sb stringsBuilder
	sb.WriteString("Ablations of the full Yukta stack (E×D relative to intact = 1.00)\n")
	fmt.Fprintf(&sb, "  without external signals (decoupled SSV): %.2f\n", a.NoExternals)
	fmt.Fprintf(&sb, "  without self-conditioning (naive runtime): %.2f\n", a.NoConditioning)
	return sb.String()
}
