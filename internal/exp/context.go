// Package exp is the experiment harness: it contains one driver per table
// and figure of the paper's evaluation (Section VI), each returning the data
// that regenerates the corresponding artifact — the rows of a bar chart
// normalized to the Coordinated heuristic baseline, a set of time series, or
// a sensitivity sweep. The cmd/yukta-bench tool and the repository-level
// benchmarks are thin wrappers over this package.
package exp

import (
	"fmt"
	"time"

	"yukta/internal/board"
	"yukta/internal/core"
	"yukta/internal/obs"
	"yukta/internal/series"
	"yukta/internal/workload"
)

// Context carries the expensive shared state: the identified platform with
// its cached, validated controllers.
type Context struct {
	P *core.Platform

	// Parallelism is the worker count used to fan independent (scheme, app)
	// simulations across goroutines; 0 means runtime.NumCPU(), 1 runs
	// sequentially. Results are always assembled in the sequential order, so
	// rendered figures are identical at any setting.
	Parallelism int

	// Seed is the base seed of the harness's seeded components (fault
	// campaigns and workload disturbances); see Options.Seed.
	Seed int64

	// Supervise adds the supervised SSV scheme to the robustness sweep; see
	// Options.Supervise.
	Supervise bool

	// TraceDir, when non-empty, directs the fault sweeps to write per-run
	// flight-recorder traces here; see Options.TraceDir.
	TraceDir string

	// Metrics is the harness-wide metrics registry threaded into every run
	// and the worker pool, or nil when metrics collection is off; see
	// Options.Metrics.
	Metrics *obs.Registry

	// FleetBudgetW is the per-board share of the fleet power budget used by
	// FleetSweep; 0 means DefaultFleetBoardBudgetW. See Options.FleetBudgetW.
	FleetBudgetW float64

	// FleetTopo is the coordinator topology spec applied to every fleet
	// sweep cell, or "" for the flat path; see Options.FleetTopo.
	FleetTopo string

	// Engine is the simulation core threaded into every run; see
	// Options.Engine.
	Engine core.Engine
}

// NewContext builds the platform (identification plus model fitting) with
// the default options.
func NewContext() (*Context, error) {
	return NewContextWithOptions(Options{})
}

// NewContextWithOptions builds the platform and applies harness options.
func NewContextWithOptions(opt Options) (*Context, error) {
	p, err := core.NewPlatform(board.DefaultConfig(), core.DefaultIdentifyOptions())
	if err != nil {
		return nil, err
	}
	seed := opt.Seed
	if seed == 0 {
		seed = 1
	}
	c := &Context{
		P:            p,
		Parallelism:  opt.Parallelism,
		Seed:         seed,
		Supervise:    opt.Supervise,
		TraceDir:     opt.TraceDir,
		FleetBudgetW: opt.FleetBudgetW,
		FleetTopo:    opt.FleetTopo,
		Engine:       opt.Engine,
	}
	if opt.Metrics {
		c.Metrics = obs.NewRegistry()
		p.AttachMetrics(c.Metrics)
	}
	return c, nil
}

// DefaultHWParamsForBench re-exports the Table II defaults for the
// repository-level benchmarks (which cannot import internal/core directly
// through the public facade without a cycle).
func DefaultHWParamsForBench() core.HWParams { return core.DefaultHWParams() }

// EvalApps returns the evaluation programs in the paper's Figure 9 order:
// SPEC first, then PARSEC.
func EvalApps() []string {
	return append(workload.EvaluationSPEC(), workload.EvaluationPARSEC()...)
}

// runOpts is the standard per-run limit.
func runOpts() core.RunOptions {
	return core.RunOptions{MaxTime: 1500 * time.Second}
}

// scalarOpts is runOpts for drivers that only consume scalar results
// (energy, mean power, completion): the per-run series buffers are skipped
// and the context's metrics registry and engine selection are attached.
func (c *Context) scalarOpts() core.RunOptions {
	opt := runOpts()
	opt.SkipSeries = true
	opt.Metrics = c.Metrics
	opt.Engine = c.Engine
	return opt
}

// traceOpts is runOpts with the context's metrics registry and engine
// selection attached, keeping the series buffers for drivers that plot
// signals over time.
func (c *Context) traceOpts() core.RunOptions {
	opt := runOpts()
	opt.Metrics = c.Metrics
	opt.Engine = c.Engine
	return opt
}

// BarSet holds one bar-chart figure: per scheme, per app, a metric value.
// Values are raw (physical); Normalized() converts to the paper's
// baseline-relative bars.
type BarSet struct {
	Title   string
	Metric  string
	Apps    []string
	Schemes []string
	// Values[scheme][app] = metric.
	Values map[string]map[string]float64
}

// Normalized returns Values divided by the first scheme's (the baseline's)
// value for the same app.
func (b *BarSet) Normalized() map[string]map[string]float64 {
	base := b.Values[b.Schemes[0]]
	out := make(map[string]map[string]float64, len(b.Schemes))
	for _, s := range b.Schemes {
		out[s] = make(map[string]float64, len(b.Apps))
		for _, a := range b.Apps {
			if base[a] != 0 {
				out[s][a] = b.Values[s][a] / base[a]
			}
		}
	}
	return out
}

// Averages returns the paper's SAv / PAv / Avg summary values of the
// normalized bars for one scheme: the mean over the SPEC apps present, the
// PARSEC apps present, and all apps present.
func (b *BarSet) Averages(scheme string) (sav, pav, avg float64) {
	norm := b.Normalized()[scheme]
	spec := map[string]bool{}
	for _, a := range workload.EvaluationSPEC() {
		spec[a] = true
	}
	var sSum, pSum float64
	var sN, pN int
	for _, a := range b.Apps {
		v, ok := norm[a]
		if !ok {
			continue
		}
		if spec[a] {
			sSum += v
			sN++
		} else {
			pSum += v
			pN++
		}
	}
	if sN > 0 {
		sav = sSum / float64(sN)
	}
	if pN > 0 {
		pav = pSum / float64(pN)
	}
	if sN+pN > 0 {
		avg = (sSum + pSum) / float64(sN+pN)
	}
	return sav, pav, avg
}

// Render writes the figure as an aligned text table of normalized bars with
// the SAv/PAv/Avg columns.
func (b *BarSet) Render() string {
	tab := &series.Table{Header: append([]string{"scheme"}, append(append([]string{}, b.Apps...), "SAv", "PAv", "Avg")...)}
	norm := b.Normalized()
	for _, s := range b.Schemes {
		row := []string{s}
		for _, a := range b.Apps {
			row = append(row, fmt.Sprintf("%.2f", norm[s][a]))
		}
		sav, pav, avg := b.Averages(s)
		row = append(row, fmt.Sprintf("%.2f", sav), fmt.Sprintf("%.2f", pav), fmt.Sprintf("%.2f", avg))
		tab.AddRow(row...)
	}
	var sb stringsBuilder
	fmt.Fprintf(&sb, "%s (%s, normalized to %q)\n", b.Title, b.Metric, b.Schemes[0])
	tab.Render(&sb)
	return sb.String()
}

// TraceSet holds one time-series figure: one series per scheme or variant.
type TraceSet struct {
	Title  string
	Order  []string
	Series map[string]*series.Series
}

// Render draws each trace as an ASCII chart in order.
func (tr *TraceSet) Render() string {
	var sb stringsBuilder
	fmt.Fprintf(&sb, "%s\n", tr.Title)
	keys := tr.Order
	if keys == nil {
		keys = series.SortedKeys(tr.Series)
	}
	for _, k := range keys {
		s, ok := tr.Series[k]
		if !ok {
			continue
		}
		st := s.Summarize()
		fmt.Fprintf(&sb, "\n[%s]  mean=%.3g  swings=%d\n", k, st.Mean, st.Oscillations)
		sb.WriteString(s.RenderASCII(72, 9))
	}
	return sb.String()
}

// stringsBuilder is a tiny alias so exp files avoid importing strings
// everywhere.
type stringsBuilder struct{ b []byte }

func (s *stringsBuilder) Write(p []byte) (int, error) {
	s.b = append(s.b, p...)
	return len(p), nil
}

func (s *stringsBuilder) WriteString(v string) { s.b = append(s.b, v...) }
func (s *stringsBuilder) String() string       { return string(s.b) }
