package fleet

import "fmt"

// DefaultCadenceFactor is the per-level reallocation slowdown: a node at
// height h reallocates every ReallocEvery × factor^(h−1) intervals, so rack
// coordinators run faster than row coordinators, which run faster than the
// DC root — the same fast-inner/slow-outer layering the paper applies
// between the HW and OS layers on one board.
const DefaultCadenceFactor = 2

// TreeNode is one coordinator's runtime state inside a Tree.
type TreeNode struct {
	// TopoNode is the node's static shape (ID, Path, parent/children,
	// board range, height).
	TopoNode

	// Period is the node's reallocation period in control intervals. A
	// child's period always divides its parent's, so whenever a parent
	// re-divides its budget every descendant re-divides in the same
	// instant, top-down — a child never spends a fresh parent budget with
	// a stale split.
	Period int

	// BudgetW is the node's current incoming power budget: TotalW for the
	// root, the parent's latest allocation for everyone else.
	BudgetW float64

	// AllocLiveW is the live board weight of the node's subtree at the
	// instant its budget was last allocated. The conservation checker
	// bounds BudgetW against this latched weight rather than the current
	// one, because boards may finish between parent reallocations.
	AllocLiveW float64

	// Reallocs counts this node's policy invocations.
	Reallocs int

	policy Policy

	// Scratch for internal nodes: the per-child pseudo-board telemetry and
	// shares, allocated once at construction.
	childTel    []Telemetry
	childShares []float64
}

// Tree is the runtime coordinator hierarchy: every node re-divides its
// incoming budget over its children (or, at a leaf, over its boards) with
// its own Policy instance, on its own cadence. Conservation, floors and
// ceilings compose recursively: each allocation obeys the Policy contract,
// so Σ child budgets ≤ node budget at every level and every live board cap
// stays in [MinW, MaxW].
//
// A one-level tree (Depth 1) is the degenerate case: its single node runs
// the policy over all boards with the full budget — bit-identical to the
// flat fleet path, which the golden suite pins.
//
// Methods are not safe for concurrent use; the fleet runner calls them from
// its coordination goroutine between stepping barriers, like the flat
// policy.
type Tree struct {
	// Topo is the validated shape the tree was built from.
	Topo *Topology
	// Nodes holds the runtime nodes in preorder (Nodes[i] corresponds to
	// Topo.Nodes[i]).
	Nodes []TreeNode

	budget       Budget
	reallocEvery int
	factor       int
	leafOf       []int // board index -> leaf node index
}

// NewTree builds the runtime tree for a topology. budget is the root budget
// and the per-board bounds; reallocEvery the leaf reallocation period in
// control intervals; cadenceFactor the per-level slowdown (0 ⇒
// DefaultCadenceFactor, 1 ⇒ every node on the leaf cadence); newPolicy
// constructs one policy instance per node (stateful policies must not be
// shared across nodes).
func NewTree(topo *Topology, budget Budget, reallocEvery, cadenceFactor int, newPolicy func() Policy) (*Tree, error) {
	if topo == nil || len(topo.Nodes) == 0 {
		return nil, fmt.Errorf("fleet: tree needs a topology")
	}
	if newPolicy == nil {
		return nil, fmt.Errorf("fleet: tree needs a policy factory")
	}
	if budget.TotalW <= 0 || budget.MinW <= 0 || budget.MaxW < budget.MinW {
		return nil, fmt.Errorf("fleet: invalid tree budget %+v", budget)
	}
	if budget.TotalW < budget.MinW*float64(topo.Boards) {
		return nil, fmt.Errorf("fleet: tree budget %.1f W cannot cover the %.1f W floor for %d boards",
			budget.TotalW, budget.MinW, topo.Boards)
	}
	if reallocEvery <= 0 {
		return nil, fmt.Errorf("fleet: tree realloc period %d must be positive", reallocEvery)
	}
	if cadenceFactor == 0 {
		cadenceFactor = DefaultCadenceFactor
	}
	if cadenceFactor < 1 {
		return nil, fmt.Errorf("fleet: tree cadence factor %d must be >= 1", cadenceFactor)
	}

	t := &Tree{
		Topo:         topo,
		Nodes:        make([]TreeNode, len(topo.Nodes)),
		budget:       budget,
		reallocEvery: reallocEvery,
		factor:       cadenceFactor,
		leafOf:       make([]int, topo.Boards),
	}
	for i := range topo.Nodes {
		n := &t.Nodes[i]
		n.TopoNode = topo.Nodes[i]
		n.policy = newPolicy()
		if n.policy == nil {
			return nil, fmt.Errorf("fleet: tree policy factory returned nil")
		}
		period := reallocEvery
		for h := 1; h < n.Height; h++ {
			period *= cadenceFactor
		}
		n.Period = period
		n.AllocLiveW = float64(n.Boards)
		if len(n.Children) > 0 {
			n.childTel = make([]Telemetry, len(n.Children))
			n.childShares = make([]float64, len(n.Children))
		} else {
			for b := n.First; b < n.First+n.Boards; b++ {
				t.leafOf[b] = i
			}
		}
	}
	t.Nodes[0].BudgetW = budget.TotalW
	return t, nil
}

// PolicyName returns the name of the per-node policy.
func (t *Tree) PolicyName() string { return t.Nodes[0].policy.Name() }

// Budget returns the root budget and per-board bounds the tree divides.
func (t *Tree) Budget() Budget { return t.budget }

// BoardCoord maps a global board index to its leaf coordinator's Path and
// the board's leaf-local index. In a one-level tree the Path is "" and the
// local index is the global index, so flat fault RunKey streams are
// preserved exactly.
func (t *Tree) BoardCoord(board int) (path string, local int) {
	n := &t.Nodes[t.leafOf[board]]
	return n.Path, board - n.First
}

// Due appends (to buf) the preorder indices of the nodes whose reallocation
// period divides step, and returns the extended slice. Every leaf is due at
// every multiple of reallocEvery; higher nodes thin out by the cadence
// factor. Because a child's period divides its parent's, a due parent
// implies every descendant is due — reallocation always propagates top-down
// within one instant.
func (t *Tree) Due(step int, buf []int) []int {
	for i := range t.Nodes {
		if step%t.Nodes[i].Period == 0 {
			buf = append(buf, i)
		}
	}
	return buf
}

// NodeRealloc reports whether node i reallocates at the given step.
func (t *Tree) NodeRealloc(i, step int) bool { return step%t.Nodes[i].Period == 0 }

// Realloc runs the due nodes' policies in preorder: each internal node
// re-divides its budget over its children (each child presented as one
// pseudo-board whose telemetry aggregates its subtree, weighted by its live
// board count), and each leaf divides its budget over its boards, writing
// caps[First:First+Boards]. due must come from Due (preorder order —
// parents re-divide before their children spend). boardTel holds one entry
// per global board; caps is the global cap vector.
func (t *Tree) Realloc(due []int, boardTel []Telemetry, caps []float64) {
	for _, i := range due {
		n := &t.Nodes[i]
		b := Budget{TotalW: n.BudgetW, MinW: t.budget.MinW, MaxW: t.budget.MaxW}
		if len(n.Children) == 0 {
			n.policy.Allocate(caps[n.First:n.First+n.Boards], b, boardTel[n.First:n.First+n.Boards])
			n.Reallocs++
			continue
		}
		for k, ci := range n.Children {
			c := &t.Nodes[ci]
			n.childTel[k] = t.aggregate(c, boardTel)
			n.childShares[k] = c.BudgetW
		}
		n.policy.Allocate(n.childShares, b, n.childTel)
		for k, ci := range n.Children {
			c := &t.Nodes[ci]
			c.BudgetW = n.childShares[k]
			c.AllocLiveW = 0
			if !n.childTel[k].Done {
				c.AllocLiveW = n.childTel[k].Weight
			}
		}
		n.Reallocs++
	}
}

// aggregate distills a child subtree into the single weighted pseudo-board
// telemetry its parent's policy sees: live board count as the weight, sums
// of live power and throughput, the child's current budget as its "cap",
// pressed if any live board is throttled, done when no board is live.
func (t *Tree) aggregate(c *TreeNode, boardTel []Telemetry) Telemetry {
	agg := Telemetry{CapW: c.BudgetW}
	liveW := 0.0
	for b := c.First; b < c.First+c.Boards; b++ {
		bt := boardTel[b]
		if bt.Done {
			continue
		}
		liveW++
		agg.PowerW += bt.PowerW
		agg.BIPS += bt.BIPS
		if bt.Throttled {
			agg.Throttled = true
		}
	}
	agg.Weight = liveW
	agg.Done = liveW == 0
	return agg
}

// CheckConservation verifies the composed invariants at every level of the
// tree against the current budgets and board caps: the root budget is
// intact; every internal node's child budgets sum within its own budget;
// every leaf's board caps sum within its budget; every live board cap lies
// in [MinW, MaxW] and every done board cap is zero; and every non-root
// budget lies in the weighted band [AllocLiveW·MinW, AllocLiveW·MaxW]
// latched at its allocation instant. It returns the first violation found,
// or nil. boardTel supplies per-board liveness; eps absorbs the rescaling
// arithmetic (1e-9 is appropriate).
func (t *Tree) CheckConservation(boardTel []Telemetry, caps []float64, eps float64) error {
	if got := t.Nodes[0].BudgetW; got != t.budget.TotalW {
		return fmt.Errorf("fleet: root budget %.9f != configured %.9f", got, t.budget.TotalW)
	}
	for i := range t.Nodes {
		n := &t.Nodes[i]
		if len(n.Children) > 0 {
			sum := 0.0
			for _, ci := range n.Children {
				sum += t.Nodes[ci].BudgetW
			}
			if sum > n.BudgetW+eps {
				return fmt.Errorf("fleet: node %q child budgets %.9f W exceed its budget %.9f W",
					nodeLabel(n), sum, n.BudgetW)
			}
		} else {
			sum := 0.0
			for b := n.First; b < n.First+n.Boards; b++ {
				sum += caps[b]
			}
			if sum > n.BudgetW+eps {
				return fmt.Errorf("fleet: leaf %q board caps %.9f W exceed its budget %.9f W",
					nodeLabel(n), sum, n.BudgetW)
			}
			for b := n.First; b < n.First+n.Boards; b++ {
				if boardTel[b].Done {
					if caps[b] != 0 {
						return fmt.Errorf("fleet: leaf %q done board %d holds %.9f W", nodeLabel(n), b, caps[b])
					}
					continue
				}
				if caps[b] < t.budget.MinW-eps {
					return fmt.Errorf("fleet: leaf %q board %d cap %.9f W below floor %.9f W",
						nodeLabel(n), b, caps[b], t.budget.MinW)
				}
				if caps[b] > t.budget.MaxW+eps {
					return fmt.Errorf("fleet: leaf %q board %d cap %.9f W above ceiling %.9f W",
						nodeLabel(n), b, caps[b], t.budget.MaxW)
				}
			}
		}
		if n.Parent >= 0 {
			if n.AllocLiveW == 0 {
				if n.BudgetW != 0 {
					return fmt.Errorf("fleet: node %q has %.9f W with no live boards at allocation",
						nodeLabel(n), n.BudgetW)
				}
				continue
			}
			if n.BudgetW < n.AllocLiveW*t.budget.MinW-eps {
				return fmt.Errorf("fleet: node %q budget %.9f W below weighted floor %.9f W",
					nodeLabel(n), n.BudgetW, n.AllocLiveW*t.budget.MinW)
			}
			if n.BudgetW > n.AllocLiveW*t.budget.MaxW+eps {
				return fmt.Errorf("fleet: node %q budget %.9f W above weighted ceiling %.9f W",
					nodeLabel(n), n.BudgetW, n.AllocLiveW*t.budget.MaxW)
			}
		}
	}
	return nil
}

// nodeLabel names a node in error messages; the root's empty Path prints as
// its ID.
func nodeLabel(n *TreeNode) string {
	if n.Path == "" {
		return n.ID
	}
	return n.Path
}
