package fleet

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// randomTopology generates a random (possibly ragged) explicit topology
// spec with depth ≤ 4 and fan-out ≤ 32, the shape class the tree runner
// must hold its invariants over.
func randomTopology(rng *rand.Rand) *Topology {
	next := 0
	var entries []string
	var gen func(depth int) string
	gen = func(depth int) string {
		id := fmt.Sprintf("n%d", next)
		next++
		if depth >= 4 || rng.Intn(3) == 0 {
			entries = append(entries, fmt.Sprintf("%s=%d", id, 1+rng.Intn(6)))
			return id
		}
		fan := 1 + rng.Intn(32)
		if fan > 6 {
			fan = 1 + rng.Intn(6) // keep most trees small so many run per test
		}
		kids := make([]string, fan)
		for i := range kids {
			kids[i] = gen(depth + 1)
		}
		// Children are generated before the parent entry, so reorder at the
		// end: the parser requires the root to come first.
		entries = append(entries, id+"="+strings.Join(kids, ","))
		return id
	}
	root := gen(1)
	// Put the root entry first; everything else can stay in any order.
	for i, e := range entries {
		if strings.HasPrefix(e, root+"=") {
			entries[0], entries[i] = entries[i], entries[0]
			break
		}
	}
	topo, err := ParseTopology(strings.Join(entries, ";"))
	if err != nil {
		panic(err)
	}
	return topo
}

// TestTreeConservationEveryLevel is the property test for the composed
// invariant: over random topologies (depth ≤ 4, fan-out ≤ 32), random
// budgets/floors/ceilings and random telemetry with monotone board
// completion, conservation (Σ child budgets ≤ parent budget, Σ board caps ≤
// leaf budget), floors and ceilings hold at every node of the tree after
// every reallocation. Trials run as parallel subtests so the race detector
// crosses tree reallocation with concurrent trials.
func TestTreeConservationEveryLevel(t *testing.T) {
	for _, policy := range []string{"equal", "feedback"} {
		t.Run(policy, func(t *testing.T) {
			for trial := 0; trial < 24; trial++ {
				trial := trial
				t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
					t.Parallel()
					rng := rand.New(rand.NewSource(int64(1000*trial) + 17))
					topo := randomTopology(rng)
					n := topo.Boards

					b := Budget{MinW: 0.5 + rng.Float64(), MaxW: 0}
					b.MaxW = b.MinW*(1.5+2*rng.Float64()) + rng.Float64()
					b.TotalW = b.MinW*float64(n) + rng.Float64()*float64(n)*(b.MaxW-b.MinW)
					reallocEvery := 1 + rng.Intn(4)
					factor := 1 + rng.Intn(3)

					tree, err := NewTree(topo, b, reallocEvery, factor, func() Policy {
						p, err := NewPolicy(policy)
						if err != nil {
							panic(err)
						}
						return p
					})
					if err != nil {
						t.Fatal(err)
					}

					tel := make([]Telemetry, n)
					caps := make([]float64, n)
					var due []int
					for step := 0; step < 40*reallocEvery; step++ {
						for i := range tel {
							done := tel[i].Done || (step > 10 && rng.Intn(30) == 0)
							tel[i] = Telemetry{
								PowerW:    rng.Float64() * b.MaxW * 1.5,
								BIPS:      rng.Float64() * 8,
								CapW:      caps[i],
								Throttled: rng.Intn(3) == 0,
								Done:      done,
							}
						}
						due = tree.Due(step, due[:0])
						if len(due) == 0 {
							continue
						}
						tree.Realloc(due, tel, caps)
						if err := tree.CheckConservation(tel, caps, 1e-9); err != nil {
							t.Fatalf("step %d (topology %q): %v", step, topo.Spec, err)
						}
					}
				})
			}
		})
	}
}

// TestTreeCadence pins the cadence rule: Period = ReallocEvery ×
// factor^(Height−1), every leaf on the base cadence, and a due parent
// implying every descendant due in the same instant.
func TestTreeCadence(t *testing.T) {
	topo, err := ParseTopology("2x3x2")
	if err != nil {
		t.Fatal(err)
	}
	b := Budget{TotalW: 40, MinW: 1, MaxW: 5}
	tree, err := NewTree(topo, b, 5, 2, func() Policy { return EqualShare{} })
	if err != nil {
		t.Fatal(err)
	}
	for i := range tree.Nodes {
		n := &tree.Nodes[i]
		want := 5 // leaves (height 1)
		switch n.Height {
		case 2:
			want = 10
		case 3:
			want = 20
		}
		if n.Period != want {
			t.Fatalf("node %q height %d period %d, want %d", n.Path, n.Height, n.Period, want)
		}
	}
	var due []int
	for step := 0; step <= 60; step++ {
		due = tree.Due(step, due[:0])
		inDue := make(map[int]bool, len(due))
		for _, i := range due {
			inDue[i] = true
			if !tree.NodeRealloc(i, step) {
				t.Fatalf("step %d: node %d due but NodeRealloc false", step, i)
			}
		}
		for _, i := range due {
			for _, ci := range tree.Nodes[i].Children {
				if !inDue[ci] {
					t.Fatalf("step %d: parent %d due, child %d not", step, i, ci)
				}
			}
		}
		for k := 1; k < len(due); k++ {
			if due[k] <= due[k-1] {
				t.Fatalf("step %d: due list %v not preorder-sorted", step, due)
			}
		}
	}
}

// TestOneLevelTreeMatchesFlatPolicy pins the degenerate case at the fleet
// layer: a one-level tree's reallocation must be bit-identical to calling
// the flat policy directly — the foundation of the byte-identity gate the
// core layer builds on.
func TestOneLevelTreeMatchesFlatPolicy(t *testing.T) {
	for _, policy := range []string{"equal", "feedback"} {
		topo, err := ParseTopology("9")
		if err != nil {
			t.Fatal(err)
		}
		b := Budget{TotalW: 20, MinW: 1, MaxW: 4.5}
		tree, err := NewTree(topo, b, 10, 2, func() Policy {
			p, _ := NewPolicy(policy)
			return p
		})
		if err != nil {
			t.Fatal(err)
		}
		flat, err := NewPolicy(policy)
		if err != nil {
			t.Fatal(err)
		}

		rng := rand.New(rand.NewSource(99))
		tel := make([]Telemetry, 9)
		treeCaps := make([]float64, 9)
		flatCaps := make([]float64, 9)
		var due []int
		for step := 0; step < 200; step += 10 {
			for i := range tel {
				tel[i] = Telemetry{
					PowerW:    rng.Float64() * 5,
					BIPS:      rng.Float64() * 8,
					CapW:      treeCaps[i],
					Throttled: rng.Intn(3) == 0,
					Done:      step > 100 && rng.Intn(4) == 0,
				}
			}
			due = tree.Due(step, due[:0])
			if len(due) != 1 || due[0] != 0 {
				t.Fatalf("one-level tree due %v at step %d", due, step)
			}
			tree.Realloc(due, tel, treeCaps)
			flat.Allocate(flatCaps, b, tel)
			for i := range treeCaps {
				if treeCaps[i] != flatCaps[i] {
					t.Fatalf("%s step %d board %d: tree %.17g != flat %.17g",
						policy, step, i, treeCaps[i], flatCaps[i])
				}
			}
		}
		path, local := tree.BoardCoord(4)
		if path != "" || local != 4 {
			t.Fatalf("one-level BoardCoord(4) = (%q, %d), want (\"\", 4)", path, local)
		}
	}
}

// TestBoardCoord pins the path/local-index mapping on a nested tree.
func TestBoardCoord(t *testing.T) {
	topo, err := ParseTopology("root=a,b;a=4;b=row-1,row-2;row-1=2;row-2=2")
	if err != nil {
		t.Fatal(err)
	}
	tree, err := NewTree(topo, Budget{TotalW: 40, MinW: 1, MaxW: 5}, 10, 2,
		func() Policy { return EqualShare{} })
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		board int
		path  string
		local int
	}{
		{0, "a", 0}, {3, "a", 3}, {4, "b/row-1", 0}, {5, "b/row-1", 1},
		{6, "b/row-2", 0}, {7, "b/row-2", 1},
	}
	for _, tc := range cases {
		path, local := tree.BoardCoord(tc.board)
		if path != tc.path || local != tc.local {
			t.Fatalf("BoardCoord(%d) = (%q, %d), want (%q, %d)",
				tc.board, path, local, tc.path, tc.local)
		}
	}
}

// TestNewTreeRejections drives the constructor's validation paths.
func TestNewTreeRejections(t *testing.T) {
	topo, err := ParseTopology("2x2")
	if err != nil {
		t.Fatal(err)
	}
	ok := Budget{TotalW: 10, MinW: 1, MaxW: 4}
	pol := func() Policy { return EqualShare{} }
	cases := []struct {
		name string
		err  func() error
	}{
		{"nil-topology", func() error { _, e := NewTree(nil, ok, 10, 2, pol); return e }},
		{"nil-factory", func() error { _, e := NewTree(topo, ok, 10, 2, nil); return e }},
		{"bad-budget", func() error {
			_, e := NewTree(topo, Budget{TotalW: -1, MinW: 1, MaxW: 4}, 10, 2, pol)
			return e
		}},
		{"infeasible-floor", func() error {
			_, e := NewTree(topo, Budget{TotalW: 3, MinW: 1, MaxW: 4}, 10, 2, pol)
			return e
		}},
		{"zero-period", func() error { _, e := NewTree(topo, ok, 0, 2, pol); return e }},
		{"negative-factor", func() error { _, e := NewTree(topo, ok, 10, -1, pol); return e }},
		{"nil-policy", func() error {
			_, e := NewTree(topo, ok, 10, 2, func() Policy { return nil })
			return e
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.err() == nil {
				t.Fatal("accepted")
			}
		})
	}
	// cadenceFactor 0 selects the default rather than erroring.
	tree, err := NewTree(topo, ok, 10, 0, pol)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Nodes[0].Period; got != 10*DefaultCadenceFactor {
		t.Fatalf("default cadence root period %d, want %d", got, 10*DefaultCadenceFactor)
	}
	if tree.PolicyName() != (EqualShare{}).Name() {
		t.Fatalf("policy name %q", tree.PolicyName())
	}
	if tree.Budget() != ok {
		t.Fatalf("budget %+v", tree.Budget())
	}
}
