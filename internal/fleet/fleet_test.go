package fleet

import (
	"math"
	"math/rand"
	"testing"
)

func sum(xs []float64) float64 {
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t
}

// checkInvariants asserts the Policy contract on one allocation.
func checkInvariants(t *testing.T, name string, dst []float64, b Budget, tel []Telemetry) {
	t.Helper()
	if got := sum(dst); got > b.TotalW+1e-9 {
		t.Fatalf("%s: Σ caps %.6f exceeds budget %.6f", name, got, b.TotalW)
	}
	for i, w := range dst {
		if tel[i].Done {
			if w != 0 {
				t.Fatalf("%s: done board %d allocated %.3f W", name, i, w)
			}
			continue
		}
		if w < b.MinW-1e-9 {
			t.Fatalf("%s: board %d cap %.3f below floor %.3f", name, i, w, b.MinW)
		}
		if w > b.MaxW+1e-9 {
			t.Fatalf("%s: board %d cap %.3f above max %.3f", name, i, w, b.MaxW)
		}
		if math.IsNaN(w) || math.IsInf(w, 0) {
			t.Fatalf("%s: board %d cap %v not finite", name, i, w)
		}
	}
}

// TestPolicyInvariantsRandomized drives both policies over seeded random
// telemetry sequences and asserts conservation, floors and ceilings on every
// allocation — the property the fleet runner's correctness rests on.
func TestPolicyInvariantsRandomized(t *testing.T) {
	for _, name := range []string{"equal", "feedback"} {
		pol, err := NewPolicy(name)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 200; trial++ {
			n := 1 + rng.Intn(12)
			b := Budget{MinW: 0.5 + rng.Float64(), MaxW: 3 + 3*rng.Float64()}
			b.TotalW = b.MinW*float64(n) + rng.Float64()*float64(n)*2
			tel := make([]Telemetry, n)
			dst := make([]float64, n)
			for step := 0; step < 10; step++ {
				for i := range tel {
					tel[i] = Telemetry{
						PowerW:    rng.Float64() * 5,
						BIPS:      rng.Float64() * 8,
						CapW:      dst[i],
						Throttled: rng.Intn(3) == 0,
						Done:      step > 5 && rng.Intn(4) == 0,
					}
				}
				pol.Allocate(dst, b, tel)
				checkInvariants(t, pol.Name(), dst, b, tel)
			}
		}
	}
}

func TestEqualShareSplitsEvenly(t *testing.T) {
	b := Budget{TotalW: 8, MinW: 1, MaxW: 4}
	tel := make([]Telemetry, 4)
	dst := make([]float64, 4)
	EqualShare{}.Allocate(dst, b, tel)
	for i, w := range dst {
		if math.Abs(w-2) > 1e-12 {
			t.Fatalf("board %d got %.3f W, want 2", i, w)
		}
	}
	// A done board releases its share to the others.
	tel[3].Done = true
	EqualShare{}.Allocate(dst, b, tel)
	for i := 0; i < 3; i++ {
		if math.Abs(dst[i]-8.0/3) > 1e-12 {
			t.Fatalf("board %d got %.3f W, want %.3f", i, dst[i], 8.0/3)
		}
	}
	if dst[3] != 0 {
		t.Fatalf("done board got %.3f W", dst[3])
	}
}

func TestSlackFeedbackShiftsTowardSlack(t *testing.T) {
	p := NewSlackFeedback()
	b := Budget{TotalW: 5, MinW: 1, MaxW: 4}
	dst := make([]float64, 2)
	// Establish peaks: board 0 has demonstrated 6 BIPS, board 1 runs 1.5.
	tel := []Telemetry{
		{PowerW: 2.0, BIPS: 6.0, CapW: 2.0},
		{PowerW: 2.0, BIPS: 1.5, CapW: 2.0},
	}
	p.Allocate(dst, b, tel)
	// Now board 0 is throttled and far below its peak; board 1 sits at its
	// peak, also throttled. Watts must flow to board 0.
	tel = []Telemetry{
		{PowerW: 2.0, BIPS: 3.0, CapW: dst[0], Throttled: true},
		{PowerW: 2.0, BIPS: 1.5, CapW: dst[1], Throttled: true},
	}
	p.Allocate(dst, b, tel)
	checkInvariants(t, "slack-feedback", dst, b, tel)
	if dst[0] <= dst[1] {
		t.Fatalf("slack board got %.3f W, at-peak board %.3f W — want more toward slack", dst[0], dst[1])
	}
}

func TestSlackFeedbackTrimsDonors(t *testing.T) {
	p := NewSlackFeedback()
	b := Budget{TotalW: 6, MinW: 1, MaxW: 4}
	dst := make([]float64, 2)
	// Board 0 unpressed at 1.5 W draw under a 3 W cap: it is a donor and
	// keeps only draw + reserve. Board 1 throttled: it collects the rest.
	tel := []Telemetry{
		{PowerW: 1.5, BIPS: 1.0, CapW: 3.0},
		{PowerW: 3.0, BIPS: 4.0, CapW: 3.0, Throttled: true},
	}
	p.Allocate(dst, b, tel) // warm peaks
	tel[1].BIPS = 2.0       // throttled board falls below its peak
	p.Allocate(dst, b, tel)
	checkInvariants(t, "slack-feedback", dst, b, tel)
	donorKeep := 1.5*donorMargin + donorReserveW
	if math.Abs(dst[0]-donorKeep) > 1e-9 {
		t.Fatalf("donor kept %.3f W, want %.3f", dst[0], donorKeep)
	}
	if dst[1] < 3.5 {
		t.Fatalf("pressed board got %.3f W, want the donated watts", dst[1])
	}
}

func TestNewPolicyRejectsUnknown(t *testing.T) {
	if _, err := NewPolicy("round-robin"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
