package fleet

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// MaxTopologyBoards bounds the total board count a topology may declare —
// the budget-overflow guard for the parser (a fleet budget is boards ×
// per-board watts; past 2^20 boards the arithmetic and the simulation are
// out of this system's scope).
const MaxTopologyBoards = 1 << 20

// MaxTopologyDepth bounds the number of coordinator levels. Real
// datacenters are boards → racks → rows → DC (depth 3–4); 8 leaves
// generous headroom without admitting degenerate chain topologies.
const MaxTopologyDepth = 8

// RootID is the node ID given to the root coordinator of generated
// (shorthand or Uniform) topologies. The root's Path is always "" no matter
// its ID, so renaming the root never changes trace or fault streams.
const RootID = "dc"

// TopoNode is one coordinator in a topology, either an internal node that
// re-divides its budget over child coordinators or a leaf coordinator that
// divides its budget directly over a contiguous range of boards.
type TopoNode struct {
	// ID is the node's name: parsed from an explicit spec, or the node's
	// index path (RootID for the root) in generated topologies.
	ID string

	// Path identifies the node within the tree as the "/"-joined IDs from
	// the root's child down to the node; the root's Path is "". It keys
	// per-node trace records and extends per-board fault RunKeys, and is
	// root-exclusive so a one-level tree's single node has Path "" — the
	// degenerate tree stays byte-identical to the flat fleet.
	Path string

	// Parent is the index of the parent node in Topology.Nodes (-1 for the
	// root).
	Parent int

	// Children holds the indices of the node's child coordinators in
	// Topology.Nodes (empty for a leaf).
	Children []int

	// First is the start of the node's contiguous global board range
	// [First, First+Boards).
	First int

	// Boards counts the boards under the node: the boards a leaf governs
	// directly, or the union of an internal node's subtree.
	Boards int

	// Height is the node's distance from its furthest leaf coordinator
	// plus one: a leaf coordinator has Height 1. Reallocation cadence
	// slows with height (see Tree).
	Height int
}

// Topology is a validated coordinator tree shape: nodes in preorder (the
// root first, every parent before its children), with contiguous board
// ranges. Build one with ParseTopology or Uniform.
type Topology struct {
	// Spec is the canonical spec string the topology was built from.
	Spec string
	// Nodes holds the coordinators in preorder; Nodes[0] is the root.
	Nodes []TopoNode
	// Boards is the total board count across all leaves.
	Boards int
	// Depth is the number of coordinator levels (the root's Height);
	// 1 means flat — a single coordinator over all boards.
	Depth int
}

// Leaf reports whether node i is a leaf coordinator.
func (t *Topology) Leaf(i int) bool { return len(t.Nodes[i].Children) == 0 }

// ParseTopology parses a fleet topology spec. Two grammars are accepted:
//
// Shorthand — "×"-separated fan-outs written with 'x', e.g. "32x32" (one
// root over 32 rack coordinators of 32 boards each, depth 2) or "4x8x2"
// (depth 3). A single factor, e.g. "64", is the flat one-level tree. Node
// IDs are generated as index paths under a root named RootID.
//
// Explicit — ';'-separated "id=value" entries, e.g. "root=a,b;a=4;b=8".
// The first entry is the root; a value that is a comma-separated ID list
// makes an internal node, a positive integer makes a leaf coordinator with
// that many boards. IDs must start with a letter (so counts and IDs cannot
// be confused) and may contain letters, digits, '_', '.' and '-'.
//
// Every structural defect is rejected with a distinct error: empty specs,
// malformed factors or IDs, zero or negative board counts, duplicate node
// definitions, references to undefined nodes, nodes claimed by two parents,
// cycles, zero-fanout internal nodes, unreachable nodes, depth beyond
// MaxTopologyDepth, and board totals beyond MaxTopologyBoards.
func ParseTopology(spec string) (*Topology, error) {
	s := strings.TrimSpace(spec)
	if s == "" {
		return nil, fmt.Errorf("fleet: empty topology spec")
	}
	if strings.Contains(s, "=") {
		return parseExplicit(s)
	}
	return parseShorthand(s)
}

// parseShorthand builds the uniform tree "f1xf2x...xfd".
func parseShorthand(s string) (*Topology, error) {
	parts := strings.Split(s, "x")
	factors := make([]int, len(parts))
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("fleet: topology %q: factor %q is not an integer", s, p)
		}
		if n <= 0 {
			return nil, fmt.Errorf("fleet: topology %q: factor %d must be positive", s, n)
		}
		factors[i] = n
	}
	if len(factors) > MaxTopologyDepth {
		return nil, fmt.Errorf("fleet: topology %q: depth %d exceeds max %d", s, len(factors), MaxTopologyDepth)
	}
	boards := 1
	for _, f := range factors {
		if f > MaxTopologyBoards/boards {
			return nil, fmt.Errorf("fleet: topology %q: total boards exceed max %d", s, MaxTopologyBoards)
		}
		boards *= f
	}
	t := &Topology{Spec: s}
	buildUniformNode(t, RootID, "", -1, factors)
	finishTopology(t)
	return t, nil
}

// buildUniformNode appends the subtree for the given remaining fan-out
// factors and returns its node index. factors[0] is this node's fan-out
// (or, when it is the last factor, its direct board count).
func buildUniformNode(t *Topology, id, path string, parent int, factors []int) int {
	idx := len(t.Nodes)
	t.Nodes = append(t.Nodes, TopoNode{ID: id, Path: path, Parent: parent, First: t.Boards})
	if len(factors) == 1 {
		t.Nodes[idx].Boards = factors[0]
		t.Boards += factors[0]
		return idx
	}
	for c := 0; c < factors[0]; c++ {
		cid := strconv.Itoa(c)
		cpath := cid
		if path != "" {
			cpath = path + "/" + cid
		}
		ci := buildUniformNode(t, cid, cpath, idx, factors[1:])
		t.Nodes[idx].Children = append(t.Nodes[idx].Children, ci)
	}
	return idx
}

// parseExplicit builds a tree from "root=a,b;a=4;b=8"-style entries.
func parseExplicit(s string) (*Topology, error) {
	type entry struct {
		children []string // nil for a leaf
		boards   int
	}
	defs := make(map[string]entry)
	order := []string{}
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("fleet: topology entry %q: want id=value", part)
		}
		id = strings.TrimSpace(id)
		if err := checkNodeID(id); err != nil {
			return nil, err
		}
		if _, dup := defs[id]; dup {
			return nil, fmt.Errorf("fleet: topology node %q defined twice", id)
		}
		val = strings.TrimSpace(val)
		if val == "" {
			return nil, fmt.Errorf("fleet: topology node %q has zero fan-out (empty value)", id)
		}
		if n, err := strconv.Atoi(val); err == nil {
			if n <= 0 {
				return nil, fmt.Errorf("fleet: topology node %q: board count %d must be positive", id, n)
			}
			defs[id] = entry{boards: n}
		} else {
			var kids []string
			for _, c := range strings.Split(val, ",") {
				c = strings.TrimSpace(c)
				if err := checkNodeID(c); err != nil {
					return nil, fmt.Errorf("fleet: topology node %q: %w", id, err)
				}
				kids = append(kids, c)
			}
			defs[id] = entry{children: kids}
		}
		order = append(order, id)
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("fleet: empty topology spec")
	}

	t := &Topology{Spec: s}
	visited := make(map[string]int, len(defs)) // id -> node index
	onStack := make(map[string]bool, len(defs))
	var build func(id, path string, parent, depth int) (int, error)
	build = func(id, path string, parent, depth int) (int, error) {
		if depth > MaxTopologyDepth {
			return 0, fmt.Errorf("fleet: topology %q: depth exceeds max %d", s, MaxTopologyDepth)
		}
		if onStack[id] {
			return 0, fmt.Errorf("fleet: topology node %q is part of a cycle", id)
		}
		if _, seen := visited[id]; seen {
			return 0, fmt.Errorf("fleet: topology node %q referenced by two parents", id)
		}
		def, ok := defs[id]
		if !ok {
			return 0, fmt.Errorf("fleet: topology references undefined node %q", id)
		}
		idx := len(t.Nodes)
		visited[id] = idx
		onStack[id] = true
		t.Nodes = append(t.Nodes, TopoNode{ID: id, Path: path, Parent: parent, First: t.Boards})
		if def.children == nil {
			if t.Boards+def.boards > MaxTopologyBoards {
				return 0, fmt.Errorf("fleet: topology %q: total boards exceed max %d", s, MaxTopologyBoards)
			}
			t.Nodes[idx].Boards = def.boards
			t.Boards += def.boards
		} else {
			for _, cid := range def.children {
				cpath := cid
				if path != "" {
					cpath = path + "/" + cid
				}
				ci, err := build(cid, cpath, idx, depth+1)
				if err != nil {
					return 0, err
				}
				t.Nodes[idx].Children = append(t.Nodes[idx].Children, ci)
			}
		}
		onStack[id] = false
		return idx, nil
	}
	if _, err := build(order[0], "", -1, 1); err != nil {
		return nil, err
	}
	for _, id := range order {
		if _, ok := visited[id]; !ok {
			return nil, fmt.Errorf("fleet: topology node %q is unreachable from the root", id)
		}
	}
	finishTopology(t)
	return t, nil
}

// checkNodeID validates an explicit-spec node ID: it must start with a
// letter (so IDs can never be confused with board counts) and contain only
// letters, digits, '_', '.' and '-'.
func checkNodeID(id string) error {
	if id == "" {
		return fmt.Errorf("fleet: empty topology node ID")
	}
	c := id[0]
	if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z') {
		return fmt.Errorf("fleet: topology node ID %q must start with a letter", id)
	}
	for i := 1; i < len(id); i++ {
		c := id[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
			c >= '0' && c <= '9' || c == '_' || c == '.' || c == '-'
		if !ok {
			return fmt.Errorf("fleet: topology node ID %q contains invalid character %q", id, string(c))
		}
	}
	return nil
}

// finishTopology computes subtree board counts, heights and the overall
// depth once the preorder node list is in place.
func finishTopology(t *Topology) {
	// Preorder guarantees children follow parents, so a reverse sweep sees
	// every child before its parent.
	for i := len(t.Nodes) - 1; i >= 0; i-- {
		n := &t.Nodes[i]
		if len(n.Children) == 0 {
			n.Height = 1
			continue
		}
		n.Boards = 0
		n.Height = 0
		for _, ci := range n.Children {
			c := &t.Nodes[ci]
			n.Boards += c.Boards
			if c.Height >= n.Height {
				n.Height = c.Height + 1
			}
		}
	}
	t.Depth = t.Nodes[0].Height
}

// Uniform builds the near-balanced topology over the given board count at
// the given coordinator depth: each level splits its boards over
// round(n^(1/levels)) children as evenly as possible. Perfect powers give
// exact grids — Uniform(1024, 2) is 32 racks × 32 boards, the same shape as
// ParseTopology("32x32") — and Uniform(n, 1) is the flat one-level tree.
func Uniform(boards, depth int) (*Topology, error) {
	if boards <= 0 {
		return nil, fmt.Errorf("fleet: uniform topology needs a positive board count, got %d", boards)
	}
	if boards > MaxTopologyBoards {
		return nil, fmt.Errorf("fleet: uniform topology: %d boards exceed max %d", boards, MaxTopologyBoards)
	}
	if depth <= 0 || depth > MaxTopologyDepth {
		return nil, fmt.Errorf("fleet: uniform topology depth %d out of range [1, %d]", depth, MaxTopologyDepth)
	}
	t := &Topology{Spec: fmt.Sprintf("uniform:%dd%d", boards, depth)}
	buildBalancedNode(t, RootID, "", -1, boards, depth)
	finishTopology(t)
	return t, nil
}

// buildBalancedNode appends a subtree dividing n boards over the remaining
// levels and returns its node index.
func buildBalancedNode(t *Topology, id, path string, parent, n, levels int) int {
	idx := len(t.Nodes)
	t.Nodes = append(t.Nodes, TopoNode{ID: id, Path: path, Parent: parent, First: t.Boards})
	if levels == 1 || n == 1 {
		t.Nodes[idx].Boards = n
		t.Boards += n
		return idx
	}
	k := int(math.Round(math.Pow(float64(n), 1/float64(levels))))
	if k < 2 {
		k = 2
	}
	if k > n {
		k = n
	}
	base, extra := n/k, n%k
	for c := 0; c < k; c++ {
		sub := base
		if c < extra {
			sub++
		}
		cid := strconv.Itoa(c)
		cpath := cid
		if path != "" {
			cpath = path + "/" + cid
		}
		ci := buildBalancedNode(t, cid, cpath, idx, sub, levels-1)
		t.Nodes[idx].Children = append(t.Nodes[idx].Children, ci)
	}
	return idx
}
