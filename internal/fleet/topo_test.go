package fleet

import (
	"strings"
	"testing"
)

// TestParseTopologyRejections drives every rejection path of the parser
// with a table of malformed specs.
func TestParseTopologyRejections(t *testing.T) {
	cases := []struct {
		name, spec, want string
	}{
		{"empty", "", "empty topology spec"},
		{"whitespace", "   ", "empty topology spec"},
		{"bad-factor", "4xfoo", "not an integer"},
		{"zero-factor", "4x0", "must be positive"},
		{"negative-factor", "-4", "must be positive"},
		{"too-deep-shorthand", "2x2x2x2x2x2x2x2x2", "depth 9 exceeds max 8"},
		{"board-overflow-shorthand", "2048x2048", "total boards exceed max"},
		{"board-overflow-huge-factor", "9999999999", "total boards exceed max"},
		{"missing-equals", "root=a;a", "want id=value"},
		{"empty-id", "=4", "empty topology node ID"},
		{"digit-id", "root=a;a=4;7=2", "must start with a letter"},
		{"bad-id-char", "ro/ot=4", "invalid character"},
		{"bad-child-char", "root=a!b", "invalid character"},
		{"duplicate-def", "root=a,b;a=4;b=2;a=8", "defined twice"},
		{"zero-fanout-internal", "root=a,b;a=;b=4", "zero fan-out"},
		{"zero-board-leaf", "root=a;a=0", "board count 0 must be positive"},
		{"negative-board-leaf", "root=a;a=-3", "must be positive"},
		{"undefined-child", "root=a,b;a=4", "undefined node \"b\""},
		{"self-cycle", "root=root", "part of a cycle"},
		{"deep-cycle", "root=a;a=b;b=root", "part of a cycle"},
		{"multi-parent", "root=a,b;a=c;b=c;c=4", "referenced by two parents"},
		{"unreachable", "root=a;a=4;b=8", "unreachable from the root"},
		{"too-deep-explicit", "n0=n1;n1=n2;n2=n3;n3=n4;n4=n5;n5=n6;n6=n7;n7=n8;n8=4", "depth exceeds max"},
		{"board-overflow-explicit", "root=a,b;a=1000000;b=1000000", "total boards exceed max"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			topo, err := ParseTopology(tc.spec)
			if err == nil {
				t.Fatalf("spec %q accepted: %+v", tc.spec, topo)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("spec %q: error %q does not mention %q", tc.spec, err, tc.want)
			}
		})
	}
}

// checkTopologyInvariants asserts the structural contract every accepted
// topology must satisfy; shared by the unit tests and the fuzzer.
func checkTopologyInvariants(t *testing.T, topo *Topology) {
	t.Helper()
	if len(topo.Nodes) == 0 {
		t.Fatal("no nodes")
	}
	root := &topo.Nodes[0]
	if root.Parent != -1 || root.Path != "" {
		t.Fatalf("root parent=%d path=%q, want -1 and \"\"", root.Parent, root.Path)
	}
	if topo.Depth != root.Height {
		t.Fatalf("depth %d != root height %d", topo.Depth, root.Height)
	}
	if topo.Depth < 1 || topo.Depth > MaxTopologyDepth {
		t.Fatalf("depth %d out of range", topo.Depth)
	}
	if topo.Boards < 1 || topo.Boards > MaxTopologyBoards {
		t.Fatalf("boards %d out of range", topo.Boards)
	}
	if root.Boards != topo.Boards || root.First != 0 {
		t.Fatalf("root range [%d,+%d), want [0,+%d)", root.First, root.Boards, topo.Boards)
	}
	paths := make(map[string]bool, len(topo.Nodes))
	for i := range topo.Nodes {
		n := &topo.Nodes[i]
		if paths[n.Path] {
			t.Fatalf("duplicate node path %q", n.Path)
		}
		paths[n.Path] = true
		if n.Boards < 1 {
			t.Fatalf("node %q has %d boards", n.Path, n.Boards)
		}
		if i > 0 && (n.Parent < 0 || n.Parent >= i) {
			t.Fatalf("node %q parent %d not before it (preorder)", n.Path, n.Parent)
		}
		if len(n.Children) == 0 {
			if n.Height != 1 {
				t.Fatalf("leaf %q height %d", n.Path, n.Height)
			}
			continue
		}
		sum, first, h := 0, n.First, 0
		for _, ci := range n.Children {
			c := &topo.Nodes[ci]
			if ci <= i {
				t.Fatalf("node %q child %d not after it (preorder)", n.Path, ci)
			}
			if c.Parent != i {
				t.Fatalf("node %q child %q has parent %d", n.Path, c.Path, c.Parent)
			}
			if c.First != first {
				t.Fatalf("node %q child %q starts at %d, want contiguous %d", n.Path, c.Path, c.First, first)
			}
			first += c.Boards
			sum += c.Boards
			if c.Height > h {
				h = c.Height
			}
		}
		if sum != n.Boards {
			t.Fatalf("node %q children cover %d of %d boards", n.Path, sum, n.Boards)
		}
		if n.Height != h+1 {
			t.Fatalf("node %q height %d, children max %d", n.Path, n.Height, h)
		}
	}
}

// TestParseTopologyShapes pins the accepted grammars' shapes.
func TestParseTopologyShapes(t *testing.T) {
	flat, err := ParseTopology("64")
	if err != nil {
		t.Fatal(err)
	}
	checkTopologyInvariants(t, flat)
	if len(flat.Nodes) != 1 || flat.Depth != 1 || flat.Boards != 64 {
		t.Fatalf("flat: %d nodes depth %d boards %d", len(flat.Nodes), flat.Depth, flat.Boards)
	}

	grid, err := ParseTopology("32x32")
	if err != nil {
		t.Fatal(err)
	}
	checkTopologyInvariants(t, grid)
	if len(grid.Nodes) != 33 || grid.Depth != 2 || grid.Boards != 1024 {
		t.Fatalf("grid: %d nodes depth %d boards %d", len(grid.Nodes), grid.Depth, grid.Boards)
	}
	if grid.Nodes[0].ID != RootID || grid.Nodes[1].Path != "0" || grid.Nodes[32].Path != "31" {
		t.Fatalf("grid naming: root %q, first child %q", grid.Nodes[0].ID, grid.Nodes[1].Path)
	}

	exp, err := ParseTopology("root=a,b;a=4;b=row-1,row-2;row-1=2;row-2=2")
	if err != nil {
		t.Fatal(err)
	}
	checkTopologyInvariants(t, exp)
	if exp.Depth != 3 || exp.Boards != 8 || len(exp.Nodes) != 5 {
		t.Fatalf("explicit: depth %d boards %d nodes %d", exp.Depth, exp.Boards, len(exp.Nodes))
	}
	if exp.Nodes[3].Path != "b/row-1" {
		t.Fatalf("explicit path: %q", exp.Nodes[3].Path)
	}
}

// TestUniformMatchesShorthand pins that Uniform on a perfect power produces
// the same shape (and the same node paths) as the parsed shorthand grid, so
// -fleet-topo specs and programmatic scaling curves agree.
func TestUniformMatchesShorthand(t *testing.T) {
	u, err := Uniform(1024, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkTopologyInvariants(t, u)
	g, err := ParseTopology("32x32")
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Nodes) != len(g.Nodes) {
		t.Fatalf("uniform has %d nodes, shorthand %d", len(u.Nodes), len(g.Nodes))
	}
	for i := range u.Nodes {
		un, gn := &u.Nodes[i], &g.Nodes[i]
		if un.Path != gn.Path || un.First != gn.First || un.Boards != gn.Boards || un.Height != gn.Height {
			t.Fatalf("node %d: uniform %+v != shorthand %+v", i, un, gn)
		}
	}

	big, err := Uniform(10000, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkTopologyInvariants(t, big)
	if len(big.Nodes) != 101 || big.Nodes[1].Boards != 100 {
		t.Fatalf("uniform 10000d2: %d nodes, first leaf %d boards", len(big.Nodes), big.Nodes[1].Boards)
	}

	for _, tc := range []struct{ n, d int }{{1, 1}, {1, 3}, {7, 3}, {1000, 3}, {10000, 4}} {
		topo, err := Uniform(tc.n, tc.d)
		if err != nil {
			t.Fatalf("Uniform(%d,%d): %v", tc.n, tc.d, err)
		}
		checkTopologyInvariants(t, topo)
		if topo.Boards != tc.n {
			t.Fatalf("Uniform(%d,%d) covers %d boards", tc.n, tc.d, topo.Boards)
		}
	}

	if _, err := Uniform(0, 2); err == nil {
		t.Fatal("Uniform(0,2) accepted")
	}
	if _, err := Uniform(4, 0); err == nil {
		t.Fatal("Uniform(4,0) accepted")
	}
	if _, err := Uniform(MaxTopologyBoards+1, 2); err == nil {
		t.Fatal("oversized Uniform accepted")
	}
}

// FuzzTopologySpec fuzzes the parser: any accepted spec must satisfy the
// full structural contract, and no input may panic or hang the parser.
func FuzzTopologySpec(f *testing.F) {
	for _, seed := range []string{
		"64", "32x32", "4x8x2", "root=a,b;a=4;b=8",
		"root=a,b;a=c,d;c=2;d=2;b=8", "root=root", "a=b;b=a",
		"root=a,a;a=1", "r=x;x=", "2048x2048", "1x1x1x1x1x1x1x1",
		"dc=r1,r2;r1=16;r2=16",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		topo, err := ParseTopology(spec)
		if err != nil {
			return
		}
		checkTopologyInvariants(t, topo)
	})
}
