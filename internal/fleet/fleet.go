// Package fleet is the third coordination layer of the Yukta stack: a
// cluster-level budget allocator sitting above many per-board two-layer
// controllers. The paper (§II) builds its argument on two layers inside one
// ODROID board and frames the methodology as extensible; this package adds
// the next layer up, in the mold of ControlPULP's hierarchical power
// controller and Makridis et al.'s robust datacenter CPU provisioning: N
// boards advance in lockstep under a shared fleet power budget, and a budget
// policy periodically re-divides the budget across boards.
//
// The layering contract mirrors how the OS layer constrains the HW layer on
// a single board: the fleet layer never reaches into a board's controllers.
// Its only actuator is each board's power cap (board.SetPowerCapW), and its
// only inputs are the same sensor vocabulary the per-board controllers see.
// Every policy must satisfy the conservation invariant — the sum of
// allocated caps never exceeds the fleet budget — at every reallocation.
package fleet

import "fmt"

// Telemetry is the per-board observation a budget policy receives at each
// reallocation point. It is deliberately a subset of board.Sensors plus the
// board's current allocation: policies speak the same sensor vocabulary as
// the per-board controllers and get no privileged internal state.
type Telemetry struct {
	// PowerW is the board's sensed total power draw (big + little + base),
	// in watts, from the most recent control interval.
	PowerW float64

	// BIPS is the board's aggregate instruction throughput over the most
	// recent control interval (billions of instructions per second).
	BIPS float64

	// CapW is the power cap currently allocated to the board (watts).
	CapW float64

	// Throttled reports whether the board's budget governor is actively
	// holding frequency down to enforce CapW — the board wants more power
	// than its allocation.
	Throttled bool

	// Done reports that the board's workload has finished; a done board
	// draws only idle power and is a pure donor.
	Done bool

	// Weight is the allocation weight of this entry: the number of live
	// boards it stands for. Per-board telemetry leaves it zero (treated as
	// 1). The tree runner sets it when an entry is a child coordinator
	// aggregating a whole subtree, so floors, ceilings and shares scale
	// with subtree size: a live entry's cap must land in
	// [Weight·MinW, Weight·MaxW].
	Weight float64
}

// weightOf returns a telemetry entry's allocation weight, defaulting to 1
// for plain per-board entries (Weight unset).
func weightOf(t Telemetry) float64 {
	if t.Weight <= 0 {
		return 1
	}
	return t.Weight
}

// Budget is the shared fleet power budget and the per-board bounds every
// allocation must respect.
type Budget struct {
	// TotalW is the fleet-wide power budget in watts. The conservation
	// invariant is Σ caps ≤ TotalW at every reallocation.
	TotalW float64

	// MinW is the smallest cap a live (not Done) board may be assigned —
	// the floor that keeps a board's base power and little cluster alive so
	// it can report telemetry and make forward progress.
	MinW float64

	// MaxW caps any single board's allocation (a board cannot use more
	// than its uncapped peak draw, so watts above MaxW are wasted on it).
	MaxW float64
}

// Policy divides a fleet budget across boards. Implementations must be
// deterministic pure functions of (Budget, telemetry history): the fleet
// runner calls Allocate from a single goroutine at reallocation points, and
// the determinism contract (byte-identical fleet traces at any parallelism)
// extends through any state a policy keeps.
type Policy interface {
	// Name identifies the policy in tables, traces and the CLI.
	Name() string

	// Allocate writes the per-board power caps for the next reallocation
	// period into dst (len(dst) == len(tel); dst[i] is board i's cap in
	// watts). Implementations must guarantee Σ dst ≤ b.TotalW, dst[i] ≥
	// wᵢ·b.MinW for live boards, and dst[i] ≤ wᵢ·b.MaxW, where wᵢ is the
	// entry's Telemetry.Weight (1 when unset). Plain per-board fleets have
	// all weights 1; the tree runner reuses the same contract one level up
	// by presenting each child subtree as a weighted pseudo-board.
	Allocate(dst []float64, b Budget, tel []Telemetry)
}

// NewPolicy returns the budget policy with the given CLI name: "equal" for
// the static equal-share baseline, "feedback" for the slack-feedback
// reallocator.
func NewPolicy(name string) (Policy, error) {
	switch name {
	case "equal":
		return EqualShare{}, nil
	case "feedback":
		return NewSlackFeedback(), nil
	default:
		return nil, fmt.Errorf("fleet: unknown budget policy %q (want \"equal\" or \"feedback\")", name)
	}
}

// clampShareW bounds one live entry's cap to its weighted band
// [w·MinW, w·MaxW]. At weight 1 the bounds multiply out exactly (1.0·x == x
// in IEEE 754), so weighted policies stay bit-identical to the historical
// flat arithmetic — the property the golden-trace suite pins.
func clampShareW(v, w float64, b Budget) float64 {
	lo := w * b.MinW
	hi := w * b.MaxW
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return v
}

// conserve rescales the above-floor part of every live allocation so that
// the total fits the budget, preserving relative priorities. It is the final
// pass of every policy: whatever heuristic produced dst, conservation is
// enforced here by construction. Done boards keep their zero caps. Floors
// and ceilings are per-entry weighted; with all weights 1 (plain per-board
// fleets) every expression reduces bit-identically to the flat form —
// summing unit weights counts in exact float64 increments, so liveW equals
// float64(live).
func conserve(dst []float64, b Budget, tel []Telemetry) {
	total := 0.0
	liveW := 0.0
	for i := range dst {
		if tel[i].Done {
			dst[i] = 0
			continue
		}
		dst[i] = clampShareW(dst[i], weightOf(tel[i]), b)
		total += dst[i]
		liveW += weightOf(tel[i])
	}
	if liveW == 0 || total <= b.TotalW {
		return
	}
	// Shrink only the part above the per-entry floor; the floors themselves
	// are assumed feasible (TotalW ≥ liveW*MinW — the runner validates this
	// at the root, and the policy contract preserves it down the tree).
	floor := liveW * b.MinW
	excess := total - floor
	avail := b.TotalW - floor
	if excess <= 0 || avail < 0 {
		return
	}
	scale := avail / excess
	for i := range dst {
		if tel[i].Done {
			continue
		}
		lo := weightOf(tel[i]) * b.MinW
		dst[i] = lo + (dst[i]-lo)*scale
	}
}

// EqualShare is the static baseline: every live board gets the same cap,
// min(MaxW, TotalW/live). It ignores telemetry beyond liveness, so it models
// the uncoordinated datacenter default of provisioning identical per-node
// power limits.
type EqualShare struct{}

// Name implements Policy.
func (EqualShare) Name() string { return "equal-share" }

// Allocate implements Policy.
func (EqualShare) Allocate(dst []float64, b Budget, tel []Telemetry) {
	liveW := 0.0
	for i := range tel {
		if !tel[i].Done {
			liveW += weightOf(tel[i])
		}
	}
	share := b.MaxW
	if liveW > 0 {
		share = b.TotalW / liveW
	}
	for i := range dst {
		if tel[i].Done {
			dst[i] = 0
		} else {
			dst[i] = weightOf(tel[i]) * share
		}
	}
	conserve(dst, b, tel)
}

// SlackFeedback is the feedback reallocator: it shifts watts toward boards
// with the worst performance-target slack. Each board's performance target
// is its own observed peak throughput (the best BIPS it has demonstrated so
// far, an online estimate of what the workload could sustain uncapped), and
// its slack is how far current throughput has fallen below that peak — in
// absolute BIPS, so a watt flows to wherever it recovers the most
// instruction throughput. Unpressed boards (governor disengaged, comfortable
// power headroom) are donors: they keep their observed draw plus a reserve,
// and nothing more. The rest of the budget is divided among the pressed
// boards as a floor plus a slack-proportional share, so a
// frequency-sensitive board strangled by its cap recovers watts from
// memory-bound neighbours whose throughput barely responds to frequency —
// the cross-layer coordination argument of the paper, one layer up. The
// division stays a feedback law rather than a one-shot split: as a pressed
// board catches up to its peak its slack shrinks and its extra share flows
// on to whoever is now furthest behind.
type SlackFeedback struct {
	peakBIPS []float64
}

// NewSlackFeedback returns a fresh slack-feedback policy. The policy is
// stateful (it tracks each board's observed peak throughput), so a new
// instance is needed per fleet run.
func NewSlackFeedback() *SlackFeedback { return &SlackFeedback{} }

// Name implements Policy.
func (p *SlackFeedback) Name() string { return "slack-feedback" }

// headroomPct is the power headroom below which a board counts as pressed
// even if its governor has not engaged yet (it is about to).
const headroomPct = 0.08

// donorMargin is the multiplicative reserve a donor keeps above its observed
// draw, so normal workload variation does not immediately re-press it.
const donorMargin = 1.05

// donorReserveW is the additive reserve on top of the donor margin.
const donorReserveW = 0.10

// slackFloorBIPS is the minimum slack weight a pressed board carries, so a
// board whose peak estimate is still forming is never starved outright.
const slackFloorBIPS = 0.05

// pressed reports whether a board wants more power than its allocation: its
// governor is actively enforcing the cap, or its draw is within headroomPct
// of the cap (the governor is about to engage).
func pressed(t Telemetry) bool {
	return t.Throttled || (t.CapW > 0 && t.CapW-t.PowerW < headroomPct*t.CapW)
}

// Allocate implements Policy.
func (p *SlackFeedback) Allocate(dst []float64, b Budget, tel []Telemetry) {
	n := len(tel)
	if len(p.peakBIPS) != n {
		p.peakBIPS = make([]float64, n)
	}
	for i := range tel {
		if tel[i].BIPS > p.peakBIPS[i] {
			p.peakBIPS[i] = tel[i].BIPS
		}
	}

	// Cold start (no telemetry yet): equal share.
	cold := true
	for i := range tel {
		if tel[i].PowerW > 0 || tel[i].BIPS > 0 {
			cold = false
			break
		}
	}
	if cold {
		EqualShare{}.Allocate(dst, b, tel)
		return
	}

	// Donors keep their observed draw plus a reserve; pressed boards start
	// at the floor. What remains of the budget is the contested pot. All
	// reserves, floors and ceilings scale with the entry's weight so a
	// child coordinator standing for w boards is treated as w boards; at
	// weight 1 every expression is bit-identical to the flat form.
	pot := b.TotalW
	nPressed := 0
	for i := range tel {
		t := tel[i]
		w := weightOf(t)
		switch {
		case t.Done:
			dst[i] = 0
		case pressed(t):
			dst[i] = w * b.MinW
			nPressed++
			pot -= dst[i]
		default:
			dst[i] = clampShareW(t.PowerW*donorMargin+w*donorReserveW, w, b)
			pot -= dst[i]
		}
	}

	if nPressed > 0 && pot > 0 {
		// Divide the pot among pressed boards in proportion to performance
		// slack. Watts that would push a board past its (weighted) MaxW
		// spill over to the remaining pressed boards.
		totalSlack := 0.0
		slack := make([]float64, n)
		for i := range tel {
			if tel[i].Done || !pressed(tel[i]) {
				continue
			}
			s := p.peakBIPS[i] - tel[i].BIPS
			if lo := weightOf(tel[i]) * slackFloorBIPS; s < lo {
				s = lo
			}
			slack[i] = s
			totalSlack += s
		}
		for pass := 0; pass < 2 && pot > 1e-9 && totalSlack > 0; pass++ {
			share := pot
			pot = 0
			remSlack := 0.0
			for i := range tel {
				if slack[i] == 0 {
					continue
				}
				hi := weightOf(tel[i]) * b.MaxW
				want := dst[i] + share*slack[i]/totalSlack
				if want >= hi {
					pot += want - hi
					dst[i] = hi
					slack[i] = 0
					continue
				}
				dst[i] = want
				remSlack += slack[i]
			}
			totalSlack = remSlack
		}
	} else if nPressed == 0 && pot > 0 {
		// Nothing is pressed: spread the idle watts evenly (per unit of
		// weight) so caps drift back up after a transient instead of
		// ratcheting down.
		liveW := 0.0
		for i := range tel {
			if !tel[i].Done {
				liveW += weightOf(tel[i])
			}
		}
		if liveW > 0 {
			for i := range tel {
				if !tel[i].Done {
					w := weightOf(tel[i])
					dst[i] = clampShareW(dst[i]+pot*w/liveW, w, b)
				}
			}
		}
	}
	conserve(dst, b, tel)
}
