// Package pool is the bounded worker pool shared by the experiment harness
// (fan-out over independent runs) and the fleet runner (fan-out over boards
// inside one lockstep control interval). It was extracted from internal/exp
// so internal/core could reuse it without an import cycle.
//
// The pool preserves the harness's determinism contract: jobs are identified
// by index, callers write results into index i of a preallocated slice, and
// error handling is index-deterministic — the lowest-index failure is
// returned regardless of which worker hit an error first.
package pool

import (
	"sync"
	"sync/atomic"

	"yukta/internal/obs"
)

// ForEach runs fn(0) … fn(n-1) on up to workers goroutines and waits for all
// of them. workers <= 1 runs the jobs sequentially on the calling goroutine.
// After any failure the remaining unstarted jobs are skipped, and the
// lowest-index error is returned.
func ForEach(workers, n int, fn func(i int) error) error {
	return ForEachMetered(workers, n, nil, fn)
}

// ForEachMetered is ForEach with optional pool instrumentation: when m is
// non-nil every executed job increments pool_jobs_total and holds the
// pool_workers_active gauge (whose high-water mark records the peak
// occupancy) for the duration of fn. Instrumentation never changes
// scheduling, so traces and tables stay byte-identical with it on.
func ForEachMetered(workers, n int, m *obs.Registry, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	run := fn
	if m != nil {
		jobs := m.Counter("pool_jobs_total")
		active := m.Gauge("pool_workers_active")
		run = func(i int) error {
			jobs.Add(1)
			active.Add(1)
			defer active.Add(-1)
			return fn(i)
		}
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := run(i); err != nil {
				return err
			}
		}
		return nil
	}
	jobs := make(chan int)
	errs := make([]error, n)
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				if failed.Load() {
					continue
				}
				if err := run(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
