package pool

import "sync"

// Slots is a bounded slot counter — the serving-side face of the pool's
// bounding discipline. Where ForEach bounds how many of a known job set run
// at once, Slots bounds how many long-lived occupants (yukta-serve board
// sessions) exist at once: Acquire is non-blocking admission, not queueing,
// because an over-capacity session request must be rejected at the front
// door (HTTP 429/503), never parked. All methods are safe for concurrent
// use.
type Slots struct {
	mu    sync.Mutex
	inUse int
	cap   int
}

// NewSlots returns a slot counter admitting at most capacity concurrent
// occupants (capacity <= 0 admits nobody).
func NewSlots(capacity int) *Slots {
	return &Slots{cap: capacity}
}

// Acquire claims one slot, reporting false (and claiming nothing) when all
// slots are occupied.
func (s *Slots) Acquire() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inUse >= s.cap {
		return false
	}
	s.inUse++
	return true
}

// Release returns one slot. Releasing more than was acquired is a caller
// bug; the count is floored at zero so the pool stays usable.
func (s *Slots) Release() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inUse > 0 {
		s.inUse--
	}
}

// InUse returns the number of occupied slots.
func (s *Slots) InUse() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inUse
}

// Cap returns the slot capacity.
func (s *Slots) Cap() int { return s.cap }
