package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSpanNilSafe pins the nil-receiver contract: every Span method must be
// a no-op (and Time must still run its function) so instrumented code paths
// never branch on telemetry being enabled.
func TestSpanNilSafe(t *testing.T) {
	var s *Span
	s.Add("x", time.Second)
	ran := false
	s.Time("x", func() { ran = true })
	if !ran {
		t.Error("nil Span.Time did not run its function")
	}
	if got := s.Stages(); got != nil {
		t.Errorf("nil Span.Stages() = %v, want nil", got)
	}
	s.ObserveInto(NewRegistry(), "p") // must not panic
	(&Span{}).ObserveInto(nil, "p")   // nil registry likewise
}

// TestSpanFoldsRepeats checks that repeated stage names accumulate into one
// entry (a chunked step loop records many step_exec segments) and that
// Stages returns them name-sorted.
func TestSpanFoldsRepeats(t *testing.T) {
	s := &Span{}
	s.Add("step_exec", 2*time.Millisecond)
	s.Add("wal_append", 1*time.Millisecond)
	s.Add("step_exec", 3*time.Millisecond)
	s.Add("admission", 4*time.Microsecond)
	got := s.Stages()
	if len(got) != 3 {
		t.Fatalf("got %d stages, want 3: %v", len(got), got)
	}
	want := []Stage{
		{"admission", 4 * time.Microsecond},
		{"step_exec", 5 * time.Millisecond},
		{"wal_append", 1 * time.Millisecond},
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("stage %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestSpanObserveInto checks the registry fan-out: one histogram per stage
// under prefix/<name>, sampled in microseconds.
func TestSpanObserveInto(t *testing.T) {
	s := &Span{}
	s.Add("wal_append", 1500*time.Microsecond)
	s.Add("step_exec", 2*time.Microsecond)
	r := NewRegistry()
	s.ObserveInto(r, "serve_stage_us")
	h := r.Histogram("serve_stage_us/wal_append", StageBucketsUS())
	if h.Count() != 1 || h.Sum() != 1500 {
		t.Errorf("wal_append histogram count=%d sum=%g, want 1/1500", h.Count(), h.Sum())
	}
	if got := r.Histogram("serve_stage_us/step_exec", StageBucketsUS()).Sum(); got != 2 {
		t.Errorf("step_exec sum = %g, want 2", got)
	}
}

// TestSpanConcurrent exercises concurrent Add/Stages under -race (drain
// walks can time stages from worker goroutines).
func TestSpanConcurrent(t *testing.T) {
	s := &Span{}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 1000; n++ {
				s.Add("step_exec", time.Microsecond)
				_ = s.Stages()
			}
		}()
	}
	wg.Wait()
	if got := s.Stages()[0].D; got != 4000*time.Microsecond {
		t.Errorf("accumulated %v, want 4ms", got)
	}
}

// TestAppendRecordJSONMatchesJSONL pins the shared-encoder guarantee the
// /watch stream depends on: AppendRecordJSON must produce exactly the bytes
// WriteJSONL writes for the same record (latency field excluded), so a
// watched record is byte-identical to its /trace line.
func TestAppendRecordJSONMatchesJSONL(t *testing.T) {
	recs := []Record{
		{Step: 0, TimeS: 0.5, BigPowerW: 3.25, TempC: 61.5, BIPS: 1.875,
			CmdBigCores: 4, CmdBigGHz: 2.0, EffBigGHz: 1.8, ThreadsBig: 4},
		{Step: 1, TimeS: 1, LittlePowerW: 0.75, Throttled: true,
			SupState: "fallback", SupTripped: true, SupCause: "rail",
			DetSuspect: 3, DetCostRatio: 1.25, PowerCapW: 6.5,
			BudgetThrottled: true},
	}
	rec := NewRecorder(len(recs))
	for _, r := range recs {
		rec.Add(r)
	}
	var jsonl bytes.Buffer
	if err := rec.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(jsonl.String(), "\n"), "\n")
	if len(lines) != len(recs) {
		t.Fatalf("got %d JSONL lines, want %d", len(lines), len(recs))
	}
	for i := range recs {
		got := string(AppendRecordJSON(nil, &recs[i]))
		if got != lines[i] {
			t.Errorf("record %d:\nAppendRecordJSON: %s\nWriteJSONL line:  %s", i, got, lines[i])
		}
	}
}
