package obs

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

// promRegistry builds a registry exercising every metric kind plus the
// family/key naming convention and a name needing sanitization.
func promRegistry() *Registry {
	r := NewRegistry()
	r.Counter("serve_steps_total").Add(7)
	r.Counter("serve_steps_total/tenant-a").Add(3)
	r.Counter("weird.name/with spaces").Add(1)
	g := r.Gauge("serve_sessions_live")
	g.Set(5)
	g.Set(2)
	h := r.Histogram("step_latency_us/mcf", LatencyBucketsUS())
	for _, v := range []float64{0.5, 3, 40, 40, 2500} {
		h.Observe(v)
	}
	r.Histogram("serve_stage_us/wal_append", StageBucketsUS()).Observe(120)
	return r
}

// TestWritePrometheusRoundTrip renders a populated registry and feeds the
// output back through the strict parser: TYPE discipline, label syntax,
// bucket cumulativity and +Inf == _count are all enforced by the parse.
func TestWritePrometheusRoundTrip(t *testing.T) {
	r := promRegistry()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	samples, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatalf("exposition did not parse: %v\n%s", err, text)
	}
	byKey := map[string]float64{}
	for _, s := range samples {
		byKey[s.Key()] = s.Value
	}
	// Counter naming: bare name and family/key → family{key="..."}.
	if got := byKey["serve_steps_total"]; got != 7 {
		t.Errorf("serve_steps_total = %g, want 7", got)
	}
	if got := byKey[`serve_steps_total{key="tenant-a"}`]; got != 3 {
		t.Errorf(`serve_steps_total{key="tenant-a"} = %g, want 3`, got)
	}
	// Illegal characters in the family sanitize to '_'; the key stays a
	// label value verbatim.
	if got := byKey[`weird_name{key="with spaces"}`]; got != 1 {
		t.Errorf("sanitized counter = %g, want 1", got)
	}
	// Gauges emit value plus _max high-water.
	if got := byKey["serve_sessions_live"]; got != 2 {
		t.Errorf("gauge value = %g, want 2", got)
	}
	if got := byKey["serve_sessions_live_max"]; got != 5 {
		t.Errorf("gauge max = %g, want 5", got)
	}
	// Histogram sum/count.
	if got := byKey[`step_latency_us_count{key="mcf"}`]; got != 5 {
		t.Errorf("histogram _count = %g, want 5", got)
	}
	if got := byKey[`step_latency_us_sum{key="mcf"}`]; got != 0.5+3+40+40+2500 {
		t.Errorf("histogram _sum = %g", got)
	}
	// Deterministic render for a quiescent registry.
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != text {
		t.Error("two renders of a quiescent registry differ")
	}
}

// TestWritePrometheusEmpty checks the degenerate render: no metrics, no
// output, and the parser accepts the empty document.
func TestWritePrometheusEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("empty registry rendered %q", buf.String())
	}
	samples, err := ParsePrometheus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 0 {
		t.Errorf("parsed %d samples from empty exposition", len(samples))
	}
}

// TestParsePrometheusRejects feeds the strict parser malformed expositions
// that a lenient scrape would let through.
func TestParsePrometheusRejects(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string
	}{
		{"no type declaration", "foo 1\n", "no preceding # TYPE"},
		{"bad type", "# TYPE foo widget\nfoo 1\n", "invalid metric type"},
		{"duplicate family", "# TYPE foo counter\n# TYPE foo counter\nfoo 1\n", "declared twice"},
		{"malformed type comment", "# TYPE foo\nfoo 1\n", "malformed TYPE comment"},
		{"bad metric name", "# TYPE foo counter\n1foo 2\n", "invalid metric name"},
		{"missing value", "# TYPE foo counter\nfoo\n", "no value in sample"},
		{"bad value", "# TYPE foo counter\nfoo pants\n", "unparseable sample value"},
		{"unterminated labels", "# TYPE foo counter\nfoo{key=\"a\" 1\n", "unterminated"},
		{"unquoted label value", "# TYPE foo counter\nfoo{key=a} 1\n", "unquoted value"},
		{"empty label block", "# TYPE foo counter\nfoo{} 1\n", "empty label block"},
		{"missing comma", "# TYPE foo counter\nfoo{a=\"1\" b=\"2\"} 1\n", "missing comma"},
		{
			"non-cumulative buckets",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
			"not cumulative",
		},
		{
			"buckets out of order",
			"# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
			"out of le order",
		},
		{
			"inf bucket disagrees with count",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
			"!= _count",
		},
		{
			"count without inf bucket",
			"# TYPE h histogram\nh_sum 1\nh_count 3\n",
			"no +Inf bucket",
		},
		{
			"bucket without le",
			"# TYPE h histogram\nh_bucket{key=\"a\"} 1\n",
			"without le label",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParsePrometheus(strings.NewReader(tc.text))
			if err == nil {
				t.Fatalf("parser accepted %q", tc.text)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestParsePrometheusAccepts covers valid constructs beyond what
// WritePrometheus emits: timestamps, escaped label values, special float
// spellings, HELP comments.
func TestParsePrometheusAccepts(t *testing.T) {
	text := "# HELP foo a counter\n" +
		"# TYPE foo counter\n" +
		"foo{key=\"a\\\"b\\\\c,d\"} 3 1700000000\n" +
		"# TYPE bar gauge\n" +
		"bar +Inf\n" +
		"bar{key=\"x\"} NaN\n"
	samples, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3 {
		t.Fatalf("got %d samples, want 3", len(samples))
	}
	if !math.IsInf(samples[1].Value, 1) {
		t.Errorf("bar = %g, want +Inf", samples[1].Value)
	}
	if !math.IsNaN(samples[2].Value) {
		t.Error("bar{key=x} should parse as NaN")
	}
}

// TestPromNameSanitize pins the metric-name rewrite rules.
func TestPromNameSanitize(t *testing.T) {
	cases := map[string]string{
		"serve_steps_total": "serve_steps_total",
		"weird.name":        "weird_name",
		"1leading":          "_leading",
		"":                  "_",
		"a:b":               "a:b",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestWritePrometheusConcurrent hammers one registry with observers while
// scrapers render and strictly parse the exposition — under -race this
// doubles as the data-race check, and every scrape must satisfy the
// histogram self-consistency invariants even mid-update.
func TestWritePrometheusConcurrent(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := r.Histogram(fmt.Sprintf("hammer_us/worker-%d", i), StageBucketsUS())
			c := r.Counter("hammer_total")
			g := r.Gauge("hammer_live")
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				h.Observe(float64(n % 10000))
				c.Add(1)
				g.Set(int64(n % 7))
			}
		}(i)
	}
	// Concurrent readers of the other render paths share the same tables.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = r.Render()
			_ = r.Snapshot()
		}
	}()
	for scrape := 0; scrape < 50; scrape++ {
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := ParsePrometheus(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("scrape %d inconsistent: %v\n%s", scrape, err, buf.String())
		}
	}
	close(stop)
	wg.Wait()
}
