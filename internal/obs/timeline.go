package obs

import (
	"fmt"
	"strings"
)

// Timeline renders the retained records as a compact terminal timeline of
// the given width (minimum 16 columns): one character column per time
// bucket, with rows for the supervisory state, trip/re-engage events,
// injected faults, firmware throttling and the applied big-cluster
// frequency. It is the alignment view for the paper's time-series figures —
// trips and fault bursts line up against the frequency trajectory the way
// Figures 10/11/17 line power against time.
func (r *Recorder) Timeline(width int) string {
	if width < 16 {
		width = 16
	}
	n := r.Len()
	var out strings.Builder
	if n == 0 {
		return "flight recorder: no records\n"
	}
	first, last := r.At(0), r.At(n-1)
	fmt.Fprintf(&out, "flight recorder: %d records (%d dropped), t=%.1fs..%.1fs\n",
		n, r.Dropped(), first.TimeS, last.TimeS)

	supervised := false
	minF, maxF := first.EffBigGHz, first.EffBigGHz
	for i := 0; i < n; i++ {
		rec := r.At(i)
		if rec.SupState != "" {
			supervised = true
		}
		if rec.EffBigGHz < minF {
			minF = rec.EffBigGHz
		}
		if rec.EffBigGHz > maxF {
			maxF = rec.EffBigGHz
		}
	}

	bucket := func(i int) int {
		if n <= 1 {
			return 0
		}
		return i * width / n
	}
	state := fillRow(width, '.')
	events := fillRow(width, '.')
	faults := fillRow(width, '.')
	throttle := fillRow(width, '.')
	freq := fillRow(width, ' ')
	var trips []string
	for i := 0; i < n; i++ {
		rec := r.At(i)
		b := bucket(i)
		if supervised {
			takeWorse(&state[b], stateChar(rec.SupState))
		}
		if rec.SupTripped {
			events[b] = 'T'
			if len(trips) < 16 {
				trips = append(trips, fmt.Sprintf("%s@t=%.1fs", rec.SupCause, rec.TimeS))
			}
		} else if rec.SupReengage && events[b] == '.' {
			events[b] = 'R'
		}
		takeWorse(&faults[b], faultChar(rec))
		if rec.Throttled {
			throttle[b] = '#'
		}
		if span := maxF - minF; span > 0 {
			d := int(9 * (rec.EffBigGHz - minF) / span)
			c := byte('0' + d)
			if freq[b] == ' ' || c > freq[b] {
				freq[b] = c
			}
		} else {
			freq[b] = '5'
		}
	}
	if supervised {
		fmt.Fprintf(&out, "state    |%s|  N=nominal S=suspect F=fallback R=recovering\n", state)
		fmt.Fprintf(&out, "events   |%s|  T=trip R=re-engage\n", events)
	}
	fmt.Fprintf(&out, "faults   |%s|  E=forced-TMU x=dropped h=held-cmd k=skewed-cmd s=stale\n", faults)
	fmt.Fprintf(&out, "throttle |%s|  #=firmware emergency engaged\n", throttle)
	fmt.Fprintf(&out, "bigGHz   |%s|  0..9 over [%.2f..%.2f] GHz (applied)\n", freq, minF, maxF)
	if len(trips) > 0 {
		fmt.Fprintf(&out, "trips: %s\n", strings.Join(trips, ", "))
	}
	return out.String()
}

// fillRow returns a width-length byte row filled with c.
func fillRow(width int, c byte) []byte {
	b := make([]byte, width)
	for i := range b {
		b[i] = c
	}
	return b
}

// stateChar maps a supervisory state name to its timeline character.
func stateChar(state string) byte {
	switch state {
	case "suspect":
		return 'S'
	case "fallback":
		return 'F'
	case "recovering":
		return 'R'
	case "nominal":
		return 'N'
	}
	return '.'
}

// severity orders timeline characters so a bucket covering several intervals
// shows its most severe one.
var severity = map[byte]int{
	'.': 0, ' ': 0,
	'N': 1, 's': 1,
	'S': 2, 'k': 2,
	'R': 3, 'h': 3,
	'F': 4, 'x': 4,
	'E': 5,
}

// takeWorse overwrites *dst with c when c is more severe.
func takeWorse(dst *byte, c byte) {
	if severity[c] > severity[*dst] {
		*dst = c
	}
}

// faultChar maps a record's injected faults to a single character, worst
// first: forced TMU throttle, dropped reading, held command, skewed command,
// stale reading.
func faultChar(rec Record) byte {
	switch {
	case rec.FaultForced > 0:
		return 'E'
	case rec.FaultDropped > 0:
		return 'x'
	case rec.FaultHeld > 0:
		return 'h'
	case rec.FaultSkewed > 0:
		return 'k'
	case rec.FaultStale > 0:
		return 's'
	}
	return '.'
}
