package obs

import (
	"sort"
	"sync"
	"time"
)

// Span accumulates named per-stage durations for one request: the serve
// layer opens a Span per HTTP request, each stage it passes through
// (admission, WAL append, step execution, trace encode, replay) records its
// wall time into it, and the request middleware flushes the stages into
// per-stage registry histograms and the structured request log line.
//
// A nil *Span is valid and ignores every call, so instrumented code paths
// need no telemetry-enabled checks — the disabled case is a nil receiver
// test and nothing else. All methods are safe for concurrent use (stages of
// one request can run on different goroutines during a drain walk).
type Span struct {
	mu     sync.Mutex
	stages []Stage
}

// Stage is one named timed segment of a request.
type Stage struct {
	// Name identifies the segment (for example "wal_append" or "step_exec").
	Name string
	// D is the segment's accumulated wall time.
	D time.Duration
}

// Add records d against the named stage, folding repeats of the same name
// into one accumulated duration (a chunked step loop appends many step_exec
// segments; the log line wants their sum).
func (s *Span) Add(name string, d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.stages {
		if s.stages[i].Name == name {
			s.stages[i].D += d
			return
		}
	}
	s.stages = append(s.stages, Stage{Name: name, D: d})
}

// Time runs fn and records its wall time against the named stage. It is the
// convenience form of Add for contiguous segments.
func (s *Span) Time(name string, fn func()) {
	if s == nil {
		fn()
		return
	}
	t0 := time.Now()
	fn()
	s.Add(name, time.Since(t0))
}

// Stages returns the recorded stages sorted by name (a copy; safe to retain).
func (s *Span) Stages() []Stage {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	out := append([]Stage(nil), s.stages...)
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ObserveInto records every stage into the registry as a per-stage histogram
// sample, in microseconds, under "<prefix>/<stage name>" with the
// StageBucketsUS bounds. A nil span or nil registry is a no-op.
func (s *Span) ObserveInto(r *Registry, prefix string) {
	if s == nil || r == nil {
		return
	}
	for _, st := range s.Stages() {
		r.Histogram(prefix+"/"+st.Name, StageBucketsUS()).
			Observe(float64(st.D.Microseconds()))
	}
}
