// Package obs is the observability layer of the control stack: a
// zero/low-alloc flight recorder that captures one Record per control
// interval (sensor vector, commanded vs applied actuation, supervisory
// state and detector pressures, fault injections, controller step latency)
// with JSONL/CSV export and a terminal timeline renderer, plus a
// stdlib-only metrics registry (counters, gauges, fixed-bucket histograms,
// expvar-published) that aggregates across the parallel experiment pool.
//
// The package deliberately imports nothing from the rest of the repository
// — the runner (internal/core) distills board, fault and supervisor state
// into the flat Record — and nothing beyond the standard library, so it can
// sit underneath every other layer. Everything the recorder emits is
// deterministic: records carry only simulation-derived values, floats are
// formatted with strconv's shortest round-trip representation, and the
// nondeterministic wall-clock step latency is excluded from JSONL export
// unless Recorder.IncludeLatency is set — so per-run JSONL files are
// byte-identical at any experiment parallelism (DESIGN.md §8).
package obs

// Record is one control interval's flight-recorder entry: everything the
// paper's time-series figures plot, plus the supervisory and fault-injection
// state this reproduction adds. It is a flat value struct so the recorder
// ring can store it without per-interval allocation.
//
// Float fields may be NaN under fault injection (dropped sensor readings);
// JSONL export writes non-finite floats as null.
type Record struct {
	// Step is the 0-based control interval index within the run.
	Step int
	// TimeS is the simulated time at the end of the interval, in seconds.
	TimeS float64

	// BigPowerW is the big-cluster power reading the controller saw (post
	// fault taps), in watts.
	BigPowerW float64
	// LittlePowerW is the LITTLE-cluster power reading, in watts.
	LittlePowerW float64
	// TempC is the temperature reading, in °C.
	TempC float64
	// BIPS is the aggregate performance reading, in billions of
	// instructions per second.
	BIPS float64
	// BIPSBig is the big-cluster share of BIPS.
	BIPSBig float64
	// BIPSLittle is the LITTLE-cluster share of BIPS.
	BIPSLittle float64
	// Throttled reports whether firmware emergency throttling was engaged.
	Throttled bool
	// ThermalThrottled reports whether specifically the thermal emergency
	// path was engaged.
	ThermalThrottled bool
	// PowerCapW is the board power budget imposed by the fleet layer this
	// interval (0 = uncapped solo run).
	PowerCapW float64
	// BudgetThrottled reports whether the budget governor was holding
	// frequency down to enforce PowerCapW.
	BudgetThrottled bool

	// CmdBigCores is the commanded (requested) big-cluster core count after
	// the controller stepped.
	CmdBigCores int
	// CmdLittleCores is the commanded LITTLE-cluster core count.
	CmdLittleCores int
	// CmdBigGHz is the commanded big-cluster frequency, in GHz.
	CmdBigGHz float64
	// CmdLittleGHz is the commanded LITTLE-cluster frequency, in GHz.
	CmdLittleGHz float64
	// EffBigGHz is the applied (effective, post-TMU-cap) big-cluster
	// frequency — commanded vs applied divergence is the firmware override
	// the paper's §II warns about.
	EffBigGHz float64
	// EffLittleGHz is the applied LITTLE-cluster frequency, in GHz.
	EffLittleGHz float64
	// ThreadsBig is the number of threads placed on the big cluster.
	ThreadsBig int

	// CtlGuardbandStreak is the active controller's current run of intervals
	// whose deviations exceeded the synthesis' guaranteed bounds (zero for
	// sessions without an SSV/LQG runtime).
	CtlGuardbandStreak int
	// CtlHeldSteps is the cumulative count of intervals the controller
	// runtime skipped because its sensor view was non-finite.
	CtlHeldSteps int
	// CtlRailed reports that the latest raw command sat pinned far beyond
	// the physical actuator range.
	CtlRailed bool
	// CtlNonFinite reports that the latest raw command contained NaN/Inf.
	CtlNonFinite bool

	// SupState names the supervisory state this interval ran under
	// ("nominal", "suspect", "fallback", "recovering"); empty for
	// unsupervised runs.
	SupState string
	// SupTripped reports that this interval confirmed a trip (transfer of
	// authority to the fallback). Summing SupTripped over a run's records
	// reproduces supervisor.Stats.Trips exactly.
	SupTripped bool
	// SupCause names the confirmed trip's cause when SupTripped is set
	// (supervisor.Cause.String()); empty otherwise.
	SupCause string
	// SupReengage reports that quarantine completed this interval and the
	// primary was re-seeded.
	SupReengage bool
	// SupBlockRaise reports that the no-raise authority clamp is armed for
	// the next interval.
	SupBlockRaise bool

	// DetSuspect is the supervisor's consecutive-soft-condition streak.
	DetSuspect int
	// DetRail is the consecutive rail-pinned interval streak.
	DetRail int
	// DetChatter is the worst per-channel reversal count in the chatter
	// window.
	DetChatter int
	// DetDropout is the no-fresh-data interval count in the dropout window.
	DetDropout int
	// DetMismatch is the actuator write-verification failure count in the
	// mismatch window.
	DetMismatch int
	// DetThrottle is the suspicious-throttle interval count in the throttle
	// window.
	DetThrottle int
	// DetCostRatio is the short-window cost EMA over the long-window
	// baseline (the divergence detector's ratio); 0 until the baseline has
	// formed.
	DetCostRatio float64

	// FaultDropped counts sensor readings dropped (NaN) this interval.
	FaultDropped int
	// FaultStale counts sensor readings served stale this interval.
	FaultStale int
	// FaultHeld counts actuator commands held (ignored) this interval.
	FaultHeld int
	// FaultSkewed counts actuator commands skewed this interval.
	FaultSkewed int
	// FaultForced counts forced TMU emergency throttles injected this
	// interval.
	FaultForced int

	// LatencyNS is the wall-clock controller step latency in nanoseconds.
	// It is nondeterministic, so JSONL export omits it unless
	// Recorder.IncludeLatency is set; CSV export always carries it.
	LatencyNS int64
}

// DefaultCapacity is the ring capacity NewRecorder uses when the caller
// passes none. It covers the experiment harness's longest run (1500 s at the
// 500 ms control interval = 3000 intervals) with headroom, so sweeps retain
// every interval and aggregate cross-checks against supervisor.Stats and
// fault.Stats are exact.
const DefaultCapacity = 4096

// Recorder is a fixed-capacity ring buffer of Records. All memory is
// allocated up front in NewRecorder; Add never allocates, so an attached
// recorder adds only a struct copy per control interval to the hot loop.
// A Recorder belongs to exactly one run and is not safe for concurrent use
// (the experiment pool attaches one fresh Recorder per run).
type Recorder struct {
	// IncludeLatency makes WriteJSONL emit the lat_ns field. It is off by
	// default because wall-clock latency is nondeterministic and would break
	// the byte-identical-at-any-parallelism guarantee of the JSONL export;
	// latency is still always available via CSV export and the metrics
	// registry's per-scheme histograms.
	IncludeLatency bool

	buf   []Record
	total int
}

// NewRecorder returns a recorder retaining the last capacity records
// (DefaultCapacity when capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{buf: make([]Record, capacity)}
}

// Add appends one interval's record, overwriting the oldest retained record
// once the ring is full. It performs no allocation.
func (r *Recorder) Add(rec Record) {
	r.buf[r.total%len(r.buf)] = rec
	r.total++
}

// Len returns the number of records currently retained.
func (r *Recorder) Len() int {
	if r.total < len(r.buf) {
		return r.total
	}
	return len(r.buf)
}

// Total returns the number of records ever added.
func (r *Recorder) Total() int { return r.total }

// Dropped returns how many early records the ring has overwritten.
func (r *Recorder) Dropped() int {
	if d := r.total - len(r.buf); d > 0 {
		return d
	}
	return 0
}

// At returns the i-th oldest retained record (0 <= i < Len()).
func (r *Recorder) At(i int) Record {
	return r.buf[(r.total-r.Len()+i)%len(r.buf)]
}
