package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// fieldKind classifies a schema field for export formatting and validation.
type fieldKind int

const (
	// kindInt is a JSON number holding an integer.
	kindInt fieldKind = iota
	// kindFloat is a JSON number, or null for a non-finite value (NaN
	// sensor readings under fault injection).
	kindFloat
	// kindBool is a JSON boolean.
	kindBool
	// kindString is a JSON string, optionally restricted to an enum.
	kindString
)

// fieldSpec is one field of a record schema: its JSONL/CSV name, its kind,
// the enum of permitted values for string fields, whether a line may omit
// it, and the extractor that appends its JSON encoding. It is generic over
// the record type so the flight-record and fleet-record schemas share one
// exporter and one validator.
type fieldSpec[T any] struct {
	name     string
	kind     fieldKind
	enum     []string
	optional bool
	// emitIf, when set, decides per record whether the (optional) field is
	// emitted, overriding the writer's includeOptional switch — used for
	// fields that must appear exactly when they carry information (the
	// fleet "node" path) so that records without them stay byte-identical
	// to the schema's previous revision.
	emitIf   func(r *T) bool
	appendTo func(b []byte, r *T) []byte
}

// stateEnum and causeEnum are the permitted values of the supervisory
// string fields (empty string = unsupervised run / no trip).
var (
	stateEnum = []string{"", "nominal", "suspect", "fallback", "recovering"}
	causeEnum = []string{"", "non-finite", "guardband", "rail-pinned",
		"divergence", "chatter", "dropout", "actuation-fault", "throttle-storm",
		"operator"}
)

// intF, floatF, boolF and strF build fieldSpecs for the four kinds.
func intF[T any](name string, get func(*T) int) fieldSpec[T] {
	return fieldSpec[T]{name: name, kind: kindInt,
		appendTo: func(b []byte, r *T) []byte { return strconv.AppendInt(b, int64(get(r)), 10) }}
}

func floatF[T any](name string, get func(*T) float64) fieldSpec[T] {
	return fieldSpec[T]{name: name, kind: kindFloat,
		appendTo: func(b []byte, r *T) []byte { return appendJSONFloat(b, get(r)) }}
}

func boolF[T any](name string, get func(*T) bool) fieldSpec[T] {
	return fieldSpec[T]{name: name, kind: kindBool,
		appendTo: func(b []byte, r *T) []byte { return strconv.AppendBool(b, get(r)) }}
}

func strF[T any](name string, enum []string, get func(*T) string) fieldSpec[T] {
	return fieldSpec[T]{name: name, kind: kindString, enum: enum,
		appendTo: func(b []byte, r *T) []byte { return strconv.AppendQuote(b, get(r)) }}
}

// strFOpt builds an optional free-form string field that is emitted only
// when non-empty, so records that never set it are byte-identical to the
// schema without it.
func strFOpt[T any](name string, get func(*T) string) fieldSpec[T] {
	return fieldSpec[T]{name: name, kind: kindString, optional: true,
		emitIf:   func(r *T) bool { return get(r) != "" },
		appendTo: func(b []byte, r *T) []byte { return strconv.AppendQuote(b, get(r)) }}
}

// schema is the flight-record line schema, in emission order. The JSONL
// writer and ValidateJSONL share this single table, so the exporter cannot
// drift from the validator.
var schema = []fieldSpec[Record]{
	intF("step", func(r *Record) int { return r.Step }),
	floatF("t_s", func(r *Record) float64 { return r.TimeS }),
	floatF("big_w", func(r *Record) float64 { return r.BigPowerW }),
	floatF("little_w", func(r *Record) float64 { return r.LittlePowerW }),
	floatF("temp_c", func(r *Record) float64 { return r.TempC }),
	floatF("bips", func(r *Record) float64 { return r.BIPS }),
	floatF("bips_big", func(r *Record) float64 { return r.BIPSBig }),
	floatF("bips_little", func(r *Record) float64 { return r.BIPSLittle }),
	boolF("throttled", func(r *Record) bool { return r.Throttled }),
	boolF("thermal_throttled", func(r *Record) bool { return r.ThermalThrottled }),
	floatF("cap_w", func(r *Record) float64 { return r.PowerCapW }),
	boolF("budget_throttled", func(r *Record) bool { return r.BudgetThrottled }),
	intF("cmd_big_cores", func(r *Record) int { return r.CmdBigCores }),
	intF("cmd_little_cores", func(r *Record) int { return r.CmdLittleCores }),
	floatF("cmd_big_ghz", func(r *Record) float64 { return r.CmdBigGHz }),
	floatF("cmd_little_ghz", func(r *Record) float64 { return r.CmdLittleGHz }),
	floatF("eff_big_ghz", func(r *Record) float64 { return r.EffBigGHz }),
	floatF("eff_little_ghz", func(r *Record) float64 { return r.EffLittleGHz }),
	intF("threads_big", func(r *Record) int { return r.ThreadsBig }),
	intF("ctl_guardband_streak", func(r *Record) int { return r.CtlGuardbandStreak }),
	intF("ctl_held_steps", func(r *Record) int { return r.CtlHeldSteps }),
	boolF("ctl_railed", func(r *Record) bool { return r.CtlRailed }),
	boolF("ctl_nonfinite", func(r *Record) bool { return r.CtlNonFinite }),
	strF("sup_state", stateEnum, func(r *Record) string { return r.SupState }),
	boolF("sup_tripped", func(r *Record) bool { return r.SupTripped }),
	strF("sup_cause", causeEnum, func(r *Record) string { return r.SupCause }),
	boolF("sup_reengage", func(r *Record) bool { return r.SupReengage }),
	boolF("sup_block_raise", func(r *Record) bool { return r.SupBlockRaise }),
	intF("det_suspect", func(r *Record) int { return r.DetSuspect }),
	intF("det_rail", func(r *Record) int { return r.DetRail }),
	intF("det_chatter", func(r *Record) int { return r.DetChatter }),
	intF("det_dropout", func(r *Record) int { return r.DetDropout }),
	intF("det_mismatch", func(r *Record) int { return r.DetMismatch }),
	intF("det_throttle", func(r *Record) int { return r.DetThrottle }),
	floatF("det_cost_ratio", func(r *Record) float64 { return r.DetCostRatio }),
	intF("fault_dropped", func(r *Record) int { return r.FaultDropped }),
	intF("fault_stale", func(r *Record) int { return r.FaultStale }),
	intF("fault_held", func(r *Record) int { return r.FaultHeld }),
	intF("fault_skewed", func(r *Record) int { return r.FaultSkewed }),
	intF("fault_forced", func(r *Record) int { return r.FaultForced }),
	{name: "lat_ns", kind: kindInt, optional: true,
		appendTo: func(b []byte, r *Record) []byte { return strconv.AppendInt(b, r.LatencyNS, 10) }},
}

// appendJSONFloat appends v's shortest round-trip decimal form, or null when
// v is not finite (JSON cannot represent NaN/Inf).
func appendJSONFloat(b []byte, v float64) []byte {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return append(b, "null"...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// fieldNames returns a schema's JSONL field names in emission order.
func fieldNames[T any](schema []fieldSpec[T]) []string {
	out := make([]string, len(schema))
	for i := range schema {
		out[i] = schema[i].name
	}
	return out
}

// SchemaFields returns the JSONL field names in emission order (the last,
// "lat_ns", is optional — see Recorder.IncludeLatency). Exposed for tests
// and documentation tooling.
func SchemaFields() []string { return fieldNames(schema) }

// appendJSONObject appends one record's JSON object encoding (no trailing
// newline), fields in schema order, skipping optional fields unless
// includeOptional is set. The single encoder behind WriteJSONL and
// AppendRecordJSON, so a live-streamed record and a trace line cannot differ.
func appendJSONObject[T any](buf []byte, schema []fieldSpec[T], rec *T,
	includeOptional bool) []byte {

	start := len(buf)
	buf = append(buf, '{')
	for fi := range schema {
		f := &schema[fi]
		if f.emitIf != nil {
			if !f.emitIf(rec) {
				continue
			}
		} else if f.optional && !includeOptional {
			continue
		}
		if len(buf) > start+1 {
			buf = append(buf, ',')
		}
		buf = append(buf, '"')
		buf = append(buf, f.name...)
		buf = append(buf, '"', ':')
		buf = f.appendTo(buf, rec)
	}
	return append(buf, '}')
}

// AppendRecordJSON appends one flight record's JSONL encoding (without the
// trailing newline) to buf and returns the extended slice. The encoding is
// byte-identical to the corresponding WriteJSONL line with IncludeLatency
// unset — live session streaming uses it so a watched record matches the
// trace export exactly.
func AppendRecordJSON(buf []byte, r *Record) []byte {
	return appendJSONObject(buf, schema, r, false)
}

// writeJSONLTable writes n records as one JSON object per line, fields in
// schema order, skipping optional fields unless includeOptional is set.
func writeJSONLTable[T any](w io.Writer, schema []fieldSpec[T], n int,
	at func(int) T, includeOptional bool) error {

	buf := make([]byte, 0, 1024)
	for i := 0; i < n; i++ {
		rec := at(i)
		buf = appendJSONObject(buf[:0], schema, &rec, includeOptional)
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSONL writes the retained records as one JSON object per line, fields
// in schema order. Output is deterministic: floats use the shortest
// round-trip formatting, non-finite values become null, and the
// nondeterministic lat_ns field is emitted only when IncludeLatency is set.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	return writeJSONLTable(w, schema, r.Len(), r.At, r.IncludeLatency)
}

// WriteCSV writes the retained records as CSV with a header row, fields in
// schema order (lat_ns always included — CSV is the local-analysis format,
// not the determinism-checked one). Non-finite floats print as NaN/±Inf.
func (r *Recorder) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(strings.Join(SchemaFields(), ",") + "\n"); err != nil {
		return err
	}
	buf := make([]byte, 0, 1024)
	for i := 0; i < r.Len(); i++ {
		rec := r.At(i)
		buf = buf[:0]
		for fi := range schema {
			if fi > 0 {
				buf = append(buf, ',')
			}
			buf = appendCSVField(buf, &schema[fi], &rec)
		}
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// appendCSVField appends one field's CSV form (strings unquoted — the enum
// values contain no commas; floats in native Go form so NaN survives).
func appendCSVField[T any](b []byte, f *fieldSpec[T], rec *T) []byte {
	j := f.appendTo(nil, rec)
	switch f.kind {
	case kindString:
		s, err := strconv.Unquote(string(j))
		if err != nil {
			s = string(j)
		}
		return append(b, s...)
	case kindFloat:
		if string(j) == "null" {
			return append(b, "NaN"...)
		}
	}
	return append(b, j...)
}

// validateJSONLTable checks a JSONL stream against a schema: each line must
// be a JSON object carrying exactly the schema's fields (optional fields may
// be absent), with the right JSON types, integer fields integral, and string
// fields within their enums. It returns the number of valid records and the
// first violation found.
func validateJSONLTable[T any](rd io.Reader, schema []fieldSpec[T]) (int, error) {
	byName := make(map[string]*fieldSpec[T], len(schema))
	for i := range schema {
		byName[schema[i].name] = &schema[i]
	}
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	n := 0
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		dec := json.NewDecoder(strings.NewReader(text))
		dec.UseNumber()
		var objAny map[string]any
		if err := dec.Decode(&objAny); err != nil {
			return n, fmt.Errorf("obs: line %d: not a JSON object: %w", line, err)
		}
		for name := range objAny {
			if byName[name] == nil {
				return n, fmt.Errorf("obs: line %d: unknown field %q", line, name)
			}
		}
		for i := range schema {
			f := &schema[i]
			v, ok := objAny[f.name]
			if !ok {
				if f.optional {
					continue
				}
				return n, fmt.Errorf("obs: line %d: missing field %q", line, f.name)
			}
			if err := checkField(f, v); err != nil {
				return n, fmt.Errorf("obs: line %d: field %q: %w", line, f.name, err)
			}
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return n, err
	}
	return n, nil
}

// ValidateJSONL checks a JSONL stream against the flight-record schema: each
// line must be a JSON object carrying exactly the schema's fields (the
// optional lat_ns field may be absent), with the right JSON types, integer
// fields integral, and string fields within their enums. It returns the
// number of valid records and the first violation found.
func ValidateJSONL(rd io.Reader) (int, error) {
	return validateJSONLTable(rd, schema)
}

// checkField validates one decoded JSON value against its field spec.
func checkField[T any](f *fieldSpec[T], v any) error {
	switch f.kind {
	case kindInt:
		num, ok := v.(json.Number)
		if !ok {
			return fmt.Errorf("want integer, got %T", v)
		}
		if _, err := num.Int64(); err != nil {
			return fmt.Errorf("want integer, got %v", num)
		}
	case kindFloat:
		if v == nil {
			return nil // null encodes a non-finite reading
		}
		num, ok := v.(json.Number)
		if !ok {
			return fmt.Errorf("want number or null, got %T", v)
		}
		if _, err := num.Float64(); err != nil {
			return fmt.Errorf("want number, got %v", num)
		}
	case kindBool:
		if _, ok := v.(bool); !ok {
			return fmt.Errorf("want bool, got %T", v)
		}
	case kindString:
		s, ok := v.(string)
		if !ok {
			return fmt.Errorf("want string, got %T", v)
		}
		if f.enum != nil {
			for _, e := range f.enum {
				if s == e {
					return nil
				}
			}
			return fmt.Errorf("value %q not in enum %v", s, f.enum)
		}
	}
	return nil
}
