package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func sampleRecord(step int) Record {
	return Record{
		Step: step, TimeS: float64(step) * 0.5,
		BigPowerW: 2.5, LittlePowerW: 0.2, TempC: 55.5,
		BIPS: 5.25, BIPSBig: 4.5, BIPSLittle: 0.75,
		CmdBigCores: 4, CmdLittleCores: 4,
		CmdBigGHz: 1.8, CmdLittleGHz: 1.2,
		EffBigGHz: 1.8, EffLittleGHz: 1.2,
		ThreadsBig: 4,
		SupState:   "nominal",
		LatencyNS:  1234,
	}
}

func TestRecorderRingWrap(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Add(sampleRecord(i))
	}
	if r.Len() != 4 || r.Total() != 10 || r.Dropped() != 6 {
		t.Fatalf("Len=%d Total=%d Dropped=%d, want 4/10/6", r.Len(), r.Total(), r.Dropped())
	}
	for i := 0; i < r.Len(); i++ {
		if got := r.At(i).Step; got != 6+i {
			t.Fatalf("At(%d).Step = %d, want %d", i, got, 6+i)
		}
	}
}

func TestRecorderAddDoesNotAllocate(t *testing.T) {
	r := NewRecorder(16)
	rec := sampleRecord(0)
	allocs := testing.AllocsPerRun(100, func() {
		r.Add(rec)
	})
	if allocs != 0 {
		t.Fatalf("Add allocates %.1f objects per call, want 0", allocs)
	}
}

func TestWriteJSONLValidatesAndIsDeterministic(t *testing.T) {
	r := NewRecorder(8)
	for i := 0; i < 5; i++ {
		rec := sampleRecord(i)
		if i == 2 {
			rec.SupState = "fallback"
			rec.SupTripped = true
			rec.SupCause = "guardband"
			rec.FaultDropped = 3
		}
		r.Add(rec)
	}
	var a, b bytes.Buffer
	if err := r.WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two JSONL exports of the same recorder differ")
	}
	if strings.Contains(a.String(), "lat_ns") {
		t.Fatal("JSONL carries lat_ns without IncludeLatency")
	}
	n, err := ValidateJSONL(&a)
	if err != nil {
		t.Fatalf("ValidateJSONL: %v", err)
	}
	if n != 5 {
		t.Fatalf("ValidateJSONL counted %d records, want 5", n)
	}
}

func TestWriteJSONLIncludeLatency(t *testing.T) {
	r := NewRecorder(4)
	r.IncludeLatency = true
	r.Add(sampleRecord(0))
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"lat_ns":1234`) {
		t.Fatalf("JSONL missing lat_ns: %s", buf.String())
	}
	if n, err := ValidateJSONL(&buf); err != nil || n != 1 {
		t.Fatalf("ValidateJSONL: n=%d err=%v", n, err)
	}
}

func TestWriteJSONLNaNBecomesNull(t *testing.T) {
	r := NewRecorder(4)
	rec := sampleRecord(0)
	rec.BigPowerW = math.NaN()
	rec.TempC = math.Inf(1)
	r.Add(rec)
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, `"big_w":null`) || !strings.Contains(s, `"temp_c":null`) {
		t.Fatalf("non-finite floats not encoded as null: %s", s)
	}
	if n, err := ValidateJSONL(strings.NewReader(s)); err != nil || n != 1 {
		t.Fatalf("ValidateJSONL rejects null floats: n=%d err=%v", n, err)
	}
}

func TestValidateJSONLRejections(t *testing.T) {
	// Build one valid line to mutate.
	r := NewRecorder(1)
	r.Add(sampleRecord(0))
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	valid := strings.TrimSpace(buf.String())

	cases := map[string]string{
		"not JSON":      "nonsense",
		"unknown field": strings.Replace(valid, `"step":0`, `"step":0,"bogus":1`, 1),
		"missing field": strings.Replace(valid, `"step":0,`, ``, 1),
		"wrong type":    strings.Replace(valid, `"step":0`, `"step":"zero"`, 1),
		"non-integral":  strings.Replace(valid, `"step":0`, `"step":0.5`, 1),
		"enum":          strings.Replace(valid, `"sup_state":"nominal"`, `"sup_state":"confused"`, 1),
	}
	for name, line := range cases {
		if _, err := ValidateJSONL(strings.NewReader(line)); err == nil {
			t.Errorf("%s: ValidateJSONL accepted %q", name, line)
		}
	}
	if n, err := ValidateJSONL(strings.NewReader(valid)); err != nil || n != 1 {
		t.Fatalf("control: valid line rejected: n=%d err=%v", n, err)
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRecorder(4)
	rec := sampleRecord(0)
	rec.LittlePowerW = math.NaN()
	r.Add(rec)
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV has %d lines, want header + 1 row", len(lines))
	}
	header := strings.Split(lines[0], ",")
	row := strings.Split(lines[1], ",")
	fields := SchemaFields()
	if len(header) != len(fields) || len(row) != len(fields) {
		t.Fatalf("CSV width %d/%d, want %d columns", len(header), len(row), len(fields))
	}
	byName := map[string]string{}
	for i, h := range header {
		byName[h] = row[i]
	}
	if byName["little_w"] != "NaN" {
		t.Fatalf("NaN float exported as %q, want NaN", byName["little_w"])
	}
	if byName["lat_ns"] != "1234" {
		t.Fatalf("lat_ns exported as %q, want 1234 (CSV always carries latency)", byName["lat_ns"])
	}
	if byName["sup_state"] != "nominal" {
		t.Fatalf("sup_state exported as %q, want unquoted nominal", byName["sup_state"])
	}
}

func TestTimeline(t *testing.T) {
	r := NewRecorder(64)
	for i := 0; i < 40; i++ {
		rec := sampleRecord(i)
		switch {
		case i == 10:
			rec.SupState = "fallback"
			rec.SupTripped = true
			rec.SupCause = "dropout"
		case i > 10 && i < 20:
			rec.SupState = "fallback"
		case i >= 20 && i < 25:
			rec.SupState = "recovering"
			rec.SupReengage = i == 20
		}
		if i == 12 {
			rec.FaultDropped = 2
		}
		r.Add(rec)
	}
	tl := r.Timeline(40)
	for _, want := range []string{"flight recorder: 40 records", "state", "T", "dropout"} {
		if !strings.Contains(tl, want) {
			t.Errorf("timeline missing %q:\n%s", want, tl)
		}
	}
}

func TestTimelineUnsupervised(t *testing.T) {
	r := NewRecorder(8)
	rec := sampleRecord(0)
	rec.SupState = ""
	r.Add(rec)
	tl := r.Timeline(40)
	if strings.Contains(tl, "state ") {
		t.Errorf("unsupervised timeline shows a state lane:\n%s", tl)
	}
}

func BenchmarkRecorderAdd(b *testing.B) {
	r := NewRecorder(DefaultCapacity)
	rec := sampleRecord(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Add(rec)
	}
}
