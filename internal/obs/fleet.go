package obs

import "io"

// FleetRecord is one control interval's fleet-aggregate flight-recorder
// entry: the shared budget, the allocation the policy has outstanding, and
// the fleet-wide sensor aggregates. Per-board detail lives in the per-board
// Record traces; this record is the coordination layer's own view, at the
// same cadence. Like Record it is a flat value struct so the ring can store
// it without per-interval allocation, and everything it carries is
// simulation-derived, so fleet JSONL traces are byte-identical at any
// parallelism.
type FleetRecord struct {
	// Step is the 0-based control interval index within the fleet run.
	Step int
	// TimeS is the simulated time at the end of the interval, in seconds.
	TimeS float64

	// BudgetW is the fleet-wide power budget in watts.
	BudgetW float64
	// AllocW is the sum of the per-board power caps outstanding this
	// interval, in watts. The conservation invariant is AllocW ≤ BudgetW on
	// every record.
	AllocW float64
	// CapMinW and CapMaxW are the smallest and largest per-board caps among
	// live boards (0 when no board is live).
	CapMinW, CapMaxW float64

	// PowerW is the sum of the boards' sensed total power draws, in watts.
	PowerW float64
	// BIPS is the sum of the boards' instruction throughputs (billions of
	// instructions per second).
	BIPS float64

	// Live is the number of boards still running their workload.
	Live int
	// Throttled is the number of boards whose budget governor was actively
	// enforcing its cap this interval.
	Throttled int
	// Done is the number of boards whose workload has finished.
	Done int

	// Realloc reports that the budget policy ran at the start of this
	// interval (reallocation points recur every FleetOptions.ReallocEvery
	// intervals). On per-node records it reports that this node's own
	// coordinator fired — higher tree levels fire on slower cadences.
	Realloc bool

	// Node is the coordinator tree path this record aggregates ("" for the
	// root / flat fleet view; e.g. "3/7" for rack 7 of row 3). Hierarchical
	// runs emit one record per tree node per interval, the root first; flat
	// runs leave Node empty and their traces are byte-identical to the
	// pre-tree schema — the "node" field is only emitted when non-empty.
	// For a non-root node, BudgetW is the node's currently allocated budget
	// and every aggregate spans only the node's board range.
	Node string
}

// fleetSchema is the fleet-record line schema, in emission order, sharing
// the exporter/validator machinery with the per-board schema.
var fleetSchema = []fieldSpec[FleetRecord]{
	intF("step", func(r *FleetRecord) int { return r.Step }),
	floatF("t_s", func(r *FleetRecord) float64 { return r.TimeS }),
	strFOpt("node", func(r *FleetRecord) string { return r.Node }),
	floatF("budget_w", func(r *FleetRecord) float64 { return r.BudgetW }),
	floatF("alloc_w", func(r *FleetRecord) float64 { return r.AllocW }),
	floatF("cap_min_w", func(r *FleetRecord) float64 { return r.CapMinW }),
	floatF("cap_max_w", func(r *FleetRecord) float64 { return r.CapMaxW }),
	floatF("power_w", func(r *FleetRecord) float64 { return r.PowerW }),
	floatF("bips", func(r *FleetRecord) float64 { return r.BIPS }),
	intF("live", func(r *FleetRecord) int { return r.Live }),
	intF("throttled", func(r *FleetRecord) int { return r.Throttled }),
	intF("done", func(r *FleetRecord) int { return r.Done }),
	boolF("realloc", func(r *FleetRecord) bool { return r.Realloc }),
}

// FleetSchemaFields returns the fleet-record JSONL field names in emission
// order. Exposed for tests and documentation tooling.
func FleetSchemaFields() []string { return fieldNames(fleetSchema) }

// FleetRecorder is a fixed-capacity ring buffer of FleetRecords, with the
// same contract as Recorder: all memory up front, Add never allocates, one
// recorder per fleet run, not safe for concurrent use (the fleet runner adds
// from its single coordination goroutine).
type FleetRecorder struct {
	buf   []FleetRecord
	total int
}

// NewFleetRecorder returns a recorder retaining the last capacity records
// (DefaultCapacity when capacity <= 0).
func NewFleetRecorder(capacity int) *FleetRecorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &FleetRecorder{buf: make([]FleetRecord, capacity)}
}

// Add appends one interval's record, overwriting the oldest retained record
// once the ring is full. It performs no allocation.
func (r *FleetRecorder) Add(rec FleetRecord) {
	r.buf[r.total%len(r.buf)] = rec
	r.total++
}

// Len returns the number of records currently retained.
func (r *FleetRecorder) Len() int {
	if r.total < len(r.buf) {
		return r.total
	}
	return len(r.buf)
}

// Total returns the number of records ever added.
func (r *FleetRecorder) Total() int { return r.total }

// Dropped returns how many early records the ring has overwritten.
func (r *FleetRecorder) Dropped() int {
	if d := r.total - len(r.buf); d > 0 {
		return d
	}
	return 0
}

// At returns the i-th oldest retained record (0 <= i < Len()).
func (r *FleetRecorder) At(i int) FleetRecord {
	return r.buf[(r.total-r.Len()+i)%len(r.buf)]
}

// WriteJSONL writes the retained fleet records as one JSON object per line,
// fields in fleet-schema order, with the same determinism guarantees as
// Recorder.WriteJSONL.
func (r *FleetRecorder) WriteJSONL(w io.Writer) error {
	return writeJSONLTable(w, fleetSchema, r.Len(), r.At, false)
}

// ValidateFleetJSONL checks a JSONL stream against the fleet-record schema,
// returning the number of valid records and the first violation found. Fleet
// traces are written as <stem>.fleet.jsonl so tooling can dispatch between
// the two schemas by filename.
func ValidateFleetJSONL(rd io.Reader) (int, error) {
	return validateJSONLTable(rd, fleetSchema)
}
