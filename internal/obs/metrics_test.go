package obs

import (
	"expvar"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs")
	c.Add(3)
	r.Counter("jobs").Add(2)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5 (same counter shared by name)", got)
	}
	g := r.Gauge("active")
	g.Add(4)
	g.Add(-3)
	if g.Value() != 1 || g.Max() != 4 {
		t.Fatalf("gauge value=%d max=%d, want 1 and 4", g.Value(), g.Max())
	}
	g.Set(2)
	if g.Value() != 2 || g.Max() != 4 {
		t.Fatalf("after Set: value=%d max=%d, want 2 and 4", g.Value(), g.Max())
	}
}

func TestHistogramBasics(t *testing.T) {
	h := newHistogram([]float64{1, 2, 5})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram quantile should be NaN")
	}
	for _, v := range []float64{0.5, 1.5, 1.5, 4, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 107.5; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	if h.Min() != 0.5 || h.Max() != 100 {
		t.Fatalf("min=%g max=%g, want 0.5 and 100", h.Min(), h.Max())
	}
	// Overflow-bucket samples report the exact tracked maximum.
	if got := h.Quantile(1); got != 100 {
		t.Fatalf("p100 = %g, want 100", got)
	}
	// The median lands in the (1,2] bucket.
	if got := h.Quantile(0.5); got <= 1 || got > 2 {
		t.Fatalf("p50 = %g, want within (1,2]", got)
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("n").Add(1)
				g := r.Gauge("g")
				g.Add(1)
				r.Histogram("h", LatencyBucketsUS()).Observe(float64(i % 50))
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("h", nil).Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	g := r.Gauge("g")
	if g.Value() != 0 {
		t.Fatalf("gauge settled at %d, want 0", g.Value())
	}
	if g.Max() < 1 || g.Max() > workers {
		t.Fatalf("gauge max = %d, want within [1,%d]", g.Max(), workers)
	}
}

func TestRenderAndSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs_total").Add(7)
	r.Gauge("pool_workers_active").Set(3)
	r.Histogram("step_latency_us/x", LatencyBucketsUS()).Observe(4)
	out := r.Render()
	for _, want := range []string{"runs_total", "7", "pool_workers_active", "step_latency_us/x", "count=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	snap := r.Snapshot()
	if snap["runs_total"] != int64(7) {
		t.Fatalf("snapshot runs_total = %v, want 7", snap["runs_total"])
	}
}

func TestPublish(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(1)
	r.Publish("yukta_test_metrics")
	// Publishing a second registry under the same name must not panic.
	NewRegistry().Publish("yukta_test_metrics")
	v := expvar.Get("yukta_test_metrics")
	if v == nil {
		t.Fatal("expvar.Get returned nil after Publish")
	}
	if !strings.Contains(v.String(), `"c":1`) {
		t.Fatalf("published expvar = %s, want it to carry counter c", v.String())
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := newHistogram(LatencyBucketsUS())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 100))
	}
}
