package obs

import (
	"expvar"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All methods are safe for
// concurrent use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous level metric that also tracks its high-water
// mark (worker-pool occupancy is its canonical use). All methods are safe
// for concurrent use.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Add moves the gauge by d (negative to decrement) and folds the new level
// into the high-water mark.
func (g *Gauge) Add(d int64) {
	n := g.v.Add(d)
	for {
		m := g.max.Load()
		if n <= m || g.max.CompareAndSwap(m, n) {
			return
		}
	}
}

// Set forces the gauge to v and folds it into the high-water mark.
func (g *Gauge) Set(v int64) {
	g.v.Store(v)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Max returns the high-water mark.
func (g *Gauge) Max() int64 { return g.max.Load() }

// Histogram is a fixed-bucket histogram: observations are counted into the
// bucket of the first upper bound they do not exceed, with an implicit
// +Inf overflow bucket, and the count, sum, minimum and maximum are tracked
// exactly. All methods are safe for concurrent use; Observe is lock-free.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
	minBits atomic.Uint64
	maxBits atomic.Uint64
}

// newHistogram builds a histogram over the given ascending upper bounds.
func newHistogram(bounds []float64) *Histogram {
	h := &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		s := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(s)) {
			break
		}
	}
	for {
		old := h.minBits.Load()
		if v >= math.Float64frombits(old) || h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) || h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Min returns the smallest observation (+Inf when empty).
func (h *Histogram) Min() float64 { return math.Float64frombits(h.minBits.Load()) }

// Max returns the largest observation (-Inf when empty).
func (h *Histogram) Max() float64 { return math.Float64frombits(h.maxBits.Load()) }

// Bounds returns the histogram's upper bucket bounds (a copy; the implicit
// +Inf overflow bucket is not included).
func (h *Histogram) Bounds() []float64 {
	return append([]float64(nil), h.bounds...)
}

// BucketCounts returns the current per-bucket observation counts, one per
// bound plus the trailing +Inf overflow bucket. Each count is an atomic load;
// a snapshot taken while observations race may momentarily disagree with
// Count, but the per-bucket values themselves are exact.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// within the bucket containing it; samples in the overflow bucket report the
// exact tracked maximum. Returns NaN when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.Count()
	if n == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(n)
	var cum int64
	lower := 0.0
	for i := range h.buckets {
		cnt := h.buckets[i].Load()
		if cnt > 0 && float64(cum+cnt) >= rank {
			if i >= len(h.bounds) {
				return h.Max()
			}
			upper := h.bounds[i]
			frac := (rank - float64(cum)) / float64(cnt)
			if frac < 0 {
				frac = 0
			}
			return lower + frac*(upper-lower)
		}
		cum += cnt
		if i < len(h.bounds) {
			lower = h.bounds[i]
		}
	}
	return h.Max()
}

// LatencyBucketsUS returns the standard per-scheme step-latency bucket
// bounds, in microseconds: controller steps run single-digit µs in steady
// state with synthesis-sized outliers on the first interval.
func LatencyBucketsUS() []float64 {
	return []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000}
}

// StageBucketsUS returns the bucket bounds for per-request stage latencies,
// in microseconds. Stages span a much wider range than controller steps —
// admission checks are sub-microsecond, step batches run milliseconds, a WAL
// append+fsync can take tens of milliseconds on slow disks — so the bounds
// run 1µs to 1s.
func StageBucketsUS() []float64 {
	return []float64{1, 5, 10, 50, 100, 500, 1000, 5000, 10000, 50000, 100000, 500000, 1e6}
}

// SecondsBuckets returns the standard bucket bounds for seconds-scale
// latencies (crash-recovery session replay is the canonical use: replay
// runs milliseconds for short sessions up to seconds for long faulted
// ones).
func SecondsBuckets() []float64 {
	return []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 2, 5, 10, 30}
}

// Registry is a stdlib-only metrics registry: named counters, gauges and
// histograms created on first use and shared by name afterwards. One
// Registry aggregates across every run and worker of an experiment session;
// all methods are safe for concurrent use. The registry never touches the
// control loop unless explicitly attached (core.RunOptions.Metrics), so
// disabled observability costs nothing.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use (later calls return the existing histogram and ignore
// bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot returns the registry's current state as a plain map (counters as
// int64, gauges as {value,max}, histograms as {count,mean,p50,p90,p99,max})
// — the expvar publication format.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := map[string]any{}
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = map[string]int64{"value": g.Value(), "max": g.Max()}
	}
	for name, h := range r.hists {
		if h.Count() == 0 {
			out[name] = map[string]any{"count": int64(0)}
			continue
		}
		out[name] = map[string]any{
			"count": h.Count(),
			"mean":  h.Mean(),
			"p50":   h.Quantile(0.5),
			"p90":   h.Quantile(0.9),
			"p99":   h.Quantile(0.99),
			"max":   h.Max(),
		}
	}
	return out
}

// Publish exposes the registry on the process-wide expvar namespace under
// the given name (readable via the expvar HTTP handler or expvar.Get). The
// first registry published under a name wins; later calls with the same
// name are no-ops, since expvar forbids re-publication.
func (r *Registry) Publish(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// Render formats the registry as an aligned, name-sorted text block:
// counters, then gauges (value and high-water mark), then histograms
// (count, mean and tail quantiles).
func (r *Registry) Render() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out strings.Builder
	out.WriteString("metrics registry\n")
	section := func(title string, names []string, row func(string) string) {
		if len(names) == 0 {
			return
		}
		sort.Strings(names)
		fmt.Fprintf(&out, "  %s:\n", title)
		for _, n := range names {
			fmt.Fprintf(&out, "    %-40s %s\n", n, row(n))
		}
	}
	section("counters", keys(r.counters), func(n string) string {
		return fmt.Sprintf("%d", r.counters[n].Value())
	})
	section("gauges", keys(r.gauges), func(n string) string {
		g := r.gauges[n]
		return fmt.Sprintf("%d (max %d)", g.Value(), g.Max())
	})
	section("histograms", keys(r.hists), func(n string) string {
		h := r.hists[n]
		if h.Count() == 0 {
			return "count=0"
		}
		return fmt.Sprintf("count=%d mean=%.3g p50=%.3g p90=%.3g p99=%.3g max=%.3g",
			h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99), h.Max())
	})
	return out.String()
}

// keys returns a map's keys (unsorted; callers sort).
func keys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
