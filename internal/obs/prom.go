package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) generated straight from
// the Registry's live metric tables — the same single source the JSON
// snapshot (Snapshot) and the expvar publication render, so the Prometheus
// view cannot drift from the /v1/metrics view (the serve layer gates this
// with a scrape-vs-snapshot equality test).
//
// Naming: the registry's keying convention "family/key" (for example
// "serve_steps_total/tenant-a" or "step_latency_us/yukta-full") maps onto a
// Prometheus family with one label, `family{key="tenant-a"}`; names without a
// slash render bare. Characters illegal in a Prometheus metric name are
// rewritten to '_'; the key part is carried as a label *value*, where any
// UTF-8 goes (escaped per the exposition format).

// promName sanitizes a registry family name into a legal Prometheus metric
// name ([a-zA-Z_:][a-zA-Z0-9_:]*).
func promName(name string) string {
	var b strings.Builder
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if ok {
			b.WriteRune(c)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promEscape escapes a label value per the exposition format: backslash,
// double quote and newline.
func promEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// promFloat renders a float64 sample value (Prometheus accepts Go's 'g'
// formatting, plus +Inf/-Inf/NaN spellings).
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// splitFamily splits a registry name into its Prometheus family and key-label
// value ("" when the name carries no slash).
func splitFamily(name string) (family, key string) {
	family, key, _ = strings.Cut(name, "/")
	return promName(family), key
}

// promSeries is one family's samples, collected before rendering so the
// output is grouped under a single # TYPE line and sorted within the family.
type promSeries struct {
	kind  string // counter | gauge | histogram
	lines []promLine
}

// promLine is one rendered sample carrying its sort key: bucket series sort
// by (label set, numeric le) — a plain string sort would put le="10" before
// le="2" and break the exposition format's cumulative bucket ordering.
type promLine struct {
	key  string  // label set, le excluded
	le   float64 // bucket bound; 0 for non-bucket samples
	text string
}

// sample appends one rendered sample line to a family, creating the family
// on first use.
func sample(fams map[string]*promSeries, order *[]string, family, kind string, line promLine) {
	f := fams[family]
	if f == nil {
		f = &promSeries{kind: kind}
		fams[family] = f
		*order = append(*order, family)
	}
	f.lines = append(f.lines, line)
}

// labels renders a label set: the optional key label plus any extra
// (name, value) pair, in that order.
func labels(key string, extra ...string) string {
	var parts []string
	if key != "" {
		parts = append(parts, fmt.Sprintf(`key=%q`, promEscape(key)))
	}
	for i := 0; i+1 < len(extra); i += 2 {
		parts = append(parts, fmt.Sprintf(`%s=%q`, extra[i], promEscape(extra[i+1])))
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format: counters as `<name>` counter families, gauges as `<name>` plus a
// `<name>_max` high-water family, histograms as cumulative `_bucket` series
// with `_sum` and `_count`. Families and samples are emitted in sorted order
// so scrapes are deterministic for a quiescent registry. Histogram `_count`
// and the +Inf bucket are computed from the same per-bucket loads, so every
// scrape is self-consistent even while observations race the render.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	fams := map[string]*promSeries{}
	var order []string

	for _, name := range sortedKeys(counters) {
		family, key := splitFamily(name)
		sample(fams, &order, family, "counter", promLine{key: labels(key),
			text: fmt.Sprintf("%s%s %d", family, labels(key), counters[name].Value())})
	}
	for _, name := range sortedKeys(gauges) {
		family, key := splitFamily(name)
		g := gauges[name]
		sample(fams, &order, family, "gauge", promLine{key: labels(key),
			text: fmt.Sprintf("%s%s %d", family, labels(key), g.Value())})
		sample(fams, &order, family+"_max", "gauge", promLine{key: labels(key),
			text: fmt.Sprintf("%s_max%s %d", family, labels(key), g.Max())})
	}
	for _, name := range sortedKeys(hists) {
		family, key := splitFamily(name)
		h := hists[name]
		bounds, counts := h.Bounds(), h.BucketCounts()
		var cum int64
		for i, bound := range bounds {
			cum += counts[i]
			sample(fams, &order, family+"_bucket", "histogram",
				promLine{key: labels(key), le: bound,
					text: fmt.Sprintf("%s_bucket%s %d", family, labels(key, "le", promFloat(bound)), cum)})
		}
		cum += counts[len(bounds)]
		sample(fams, &order, family+"_bucket", "histogram",
			promLine{key: labels(key), le: math.Inf(1),
				text: fmt.Sprintf("%s_bucket%s %d", family, labels(key, "le", "+Inf"), cum)})
		sample(fams, &order, family+"_sum", "histogram", promLine{key: labels(key),
			text: fmt.Sprintf("%s_sum%s %s", family, labels(key), promFloat(h.Sum()))})
		sample(fams, &order, family+"_count", "histogram", promLine{key: labels(key),
			text: fmt.Sprintf("%s_count%s %d", family, labels(key), cum)})
	}

	sort.Strings(order)
	bw := bufio.NewWriter(w)
	for _, family := range order {
		f := fams[family]
		// The three histogram sub-families share one declared family name:
		// strip the sub-family suffix for the TYPE line and declare it once,
		// on the _bucket series (sorted first alphabetically among the three
		// only when no other family interleaves — so declare per sub-family
		// base instead, which the format permits via the parent family name).
		typeName := family
		if f.kind == "histogram" {
			typeName = strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(family,
				"_bucket"), "_sum"), "_count")
		}
		if f.kind != "histogram" || strings.HasSuffix(family, "_bucket") {
			if _, err := fmt.Fprintf(bw, "# TYPE %s %s\n", typeName, f.kind); err != nil {
				return err
			}
		}
		sort.Slice(f.lines, func(i, j int) bool {
			a, b := f.lines[i], f.lines[j]
			if a.key != b.key {
				return a.key < b.key
			}
			if a.le != b.le {
				return a.le < b.le
			}
			return a.text < b.text
		})
		for _, line := range f.lines {
			if _, err := fmt.Fprintln(bw, line.text); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// sortedKeys returns a map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	out := keys(m)
	sort.Strings(out)
	return out
}

// PromSample is one parsed sample of a Prometheus text exposition: the metric
// name, its label set rendered canonically (exactly as written, brace block
// included), and the value.
type PromSample struct {
	// Name is the sample's metric name (family plus any _bucket/_sum/_count
	// suffix).
	Name string
	// Labels is the literal label block, "{k=\"v\",...}" or "" when the
	// sample carries none.
	Labels string
	// Value is the sample value.
	Value float64
}

// Key returns the canonical sample key, Name immediately followed by the
// label block.
func (s PromSample) Key() string { return s.Name + s.Labels }

// ParsePrometheus is a strict parser for the subset of the Prometheus text
// exposition format WritePrometheus emits; it is the shared checker behind
// the exposition-format tests and the serve smoke test. It enforces:
//
//   - every non-comment line is `name[{labels}] value` with a legal metric
//     name, a well-formed label block and a parseable value;
//   - every sample's family is declared by a preceding # TYPE line with a
//     valid type (counter, gauge, histogram, summary, untyped), and no
//     family is declared twice;
//   - histogram bucket series are cumulative (non-decreasing in le order)
//     and their +Inf bucket equals the family's _count sample.
//
// It returns the samples in file order.
func ParsePrometheus(rd io.Reader) ([]PromSample, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	typed := map[string]string{}
	var samples []PromSample
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("obs: line %d: malformed TYPE comment %q", lineNo, line)
				}
				name, kind := fields[2], fields[3]
				if !validPromName(name) {
					return nil, fmt.Errorf("obs: line %d: invalid metric name %q", lineNo, name)
				}
				switch kind {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("obs: line %d: invalid metric type %q", lineNo, kind)
				}
				if _, dup := typed[name]; dup {
					return nil, fmt.Errorf("obs: line %d: family %q declared twice", lineNo, name)
				}
				typed[name] = kind
			}
			continue
		}
		s, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		if familyOf(s.Name, typed) == "" {
			return nil, fmt.Errorf("obs: line %d: sample %q has no preceding # TYPE declaration", lineNo, s.Name)
		}
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := checkPromHistograms(samples, typed); err != nil {
		return nil, err
	}
	return samples, nil
}

// validPromName reports whether name is a legal Prometheus metric name.
func validPromName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

// familyOf resolves the declared family a sample name belongs to: the name
// itself, or — for histogram sub-series — the name with its _bucket/_sum/
// _count suffix stripped.
func familyOf(name string, typed map[string]string) string {
	if _, ok := typed[name]; ok {
		return name
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name && typed[base] == "histogram" {
			return base
		}
	}
	return ""
}

// parsePromSample parses one `name[{labels}] value` line.
func parsePromSample(line string) (PromSample, error) {
	var s PromSample
	rest := line
	brace := strings.IndexByte(rest, '{')
	space := strings.IndexByte(rest, ' ')
	if brace >= 0 && (space < 0 || brace < space) {
		close := strings.LastIndexByte(rest, '}')
		if close < brace {
			return s, fmt.Errorf("unterminated label block in %q", line)
		}
		s.Name = rest[:brace]
		s.Labels = rest[brace : close+1]
		if err := checkLabelBlock(s.Labels); err != nil {
			return s, fmt.Errorf("%w in %q", err, line)
		}
		rest = strings.TrimSpace(rest[close+1:])
	} else {
		if space < 0 {
			return s, fmt.Errorf("no value in sample %q", line)
		}
		s.Name = rest[:space]
		rest = strings.TrimSpace(rest[space+1:])
	}
	if !validPromName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return s, fmt.Errorf("want `value [timestamp]`, got %q", rest)
	}
	v, err := parsePromValue(fields[0])
	if err != nil {
		return s, err
	}
	s.Value = v
	return s, nil
}

// parsePromValue parses a sample value, accepting the +Inf/-Inf/NaN
// spellings.
func parsePromValue(text string) (float64, error) {
	switch text {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return 0, fmt.Errorf("unparseable sample value %q", text)
	}
	return v, nil
}

// checkLabelBlock validates a `{k="v",...}` block: names legal, values
// quoted, commas between pairs.
func checkLabelBlock(block string) error {
	inner := strings.TrimSuffix(strings.TrimPrefix(block, "{"), "}")
	if inner == "" {
		return fmt.Errorf("empty label block")
	}
	for len(inner) > 0 {
		eq := strings.IndexByte(inner, '=')
		if eq <= 0 {
			return fmt.Errorf("malformed label pair")
		}
		name := inner[:eq]
		if !validPromName(name) {
			return fmt.Errorf("invalid label name %q", name)
		}
		rest := inner[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return fmt.Errorf("unquoted value for label %q", name)
		}
		// Scan the quoted value, honoring backslash escapes.
		i := 1
		for i < len(rest) {
			if rest[i] == '\\' {
				i += 2
				continue
			}
			if rest[i] == '"' {
				break
			}
			i++
		}
		if i >= len(rest) {
			return fmt.Errorf("unterminated value for label %q", name)
		}
		inner = rest[i+1:]
		if strings.HasPrefix(inner, ",") {
			inner = inner[1:]
			if inner == "" {
				return fmt.Errorf("trailing comma in label block")
			}
		} else if inner != "" {
			return fmt.Errorf("missing comma after label %q", name)
		}
	}
	return nil
}

// checkPromHistograms verifies bucket cumulativity and the +Inf == _count
// invariant for every histogram family present in the sample stream.
func checkPromHistograms(samples []PromSample, typed map[string]string) error {
	type histState struct {
		last    float64
		lastLe  float64
		inf     map[string]float64 // label set (le stripped) -> +Inf bucket
		started bool
	}
	// Cumulativity per (family, non-le labels): track in file order.
	cum := map[string]*histState{}
	infBuckets := map[string]float64{}
	counts := map[string]float64{}
	for _, s := range samples {
		if strings.HasSuffix(s.Name, "_bucket") && typed[strings.TrimSuffix(s.Name, "_bucket")] == "histogram" {
			le, rest, err := extractLe(s.Labels)
			if err != nil {
				return fmt.Errorf("obs: %s%s: %w", s.Name, s.Labels, err)
			}
			key := s.Name + rest
			st := cum[key]
			if st == nil {
				st = &histState{}
				cum[key] = st
			}
			if st.started && le < st.lastLe {
				return fmt.Errorf("obs: %s%s: buckets out of le order", s.Name, s.Labels)
			}
			if st.started && s.Value < st.last {
				return fmt.Errorf("obs: %s%s: bucket counts not cumulative", s.Name, s.Labels)
			}
			st.last, st.lastLe, st.started = s.Value, le, true
			if math.IsInf(le, 1) {
				infBuckets[key] = s.Value
			}
		}
		if strings.HasSuffix(s.Name, "_count") && typed[strings.TrimSuffix(s.Name, "_count")] == "histogram" {
			counts[strings.TrimSuffix(s.Name, "_count")+"_bucket"+s.Labels] = s.Value
		}
	}
	for key, count := range counts {
		inf, ok := infBuckets[key]
		if !ok {
			return fmt.Errorf("obs: histogram series %s has a _count but no +Inf bucket", key)
		}
		if inf != count {
			return fmt.Errorf("obs: histogram series %s: +Inf bucket %g != _count %g", key, inf, count)
		}
	}
	return nil
}

// extractLe pulls the le label out of a bucket's label block, returning its
// parsed bound and the block with le removed (canonicalized for keying).
func extractLe(block string) (float64, string, error) {
	inner := strings.TrimSuffix(strings.TrimPrefix(block, "{"), "}")
	parts := splitLabelPairs(inner)
	le := math.NaN()
	var rest []string
	for _, p := range parts {
		name, val, _ := strings.Cut(p, "=")
		if name == "le" {
			unq, err := strconv.Unquote(val)
			if err != nil {
				return 0, "", fmt.Errorf("bad le value %s", val)
			}
			v, err := parsePromValue(unq)
			if err != nil {
				return 0, "", err
			}
			le = v
			continue
		}
		rest = append(rest, p)
	}
	if math.IsNaN(le) {
		return 0, "", fmt.Errorf("bucket sample without le label")
	}
	if len(rest) == 0 {
		return le, "", nil
	}
	return le, "{" + strings.Join(rest, ",") + "}", nil
}

// splitLabelPairs splits a label block's interior on commas outside quotes.
func splitLabelPairs(inner string) []string {
	var out []string
	start, inQuote := 0, false
	for i := 0; i < len(inner); i++ {
		switch inner[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case ',':
			if !inQuote {
				out = append(out, inner[start:i])
				start = i + 1
			}
		}
	}
	if start < len(inner) {
		out = append(out, inner[start:])
	}
	return out
}
