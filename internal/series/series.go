// Package series provides time-series recording, summary statistics, CSV
// export and terminal (ASCII) rendering for the experiment harness. Every
// figure in the paper that plots a signal versus time (Figures 10, 11, 15a,
// 17) is produced through this package.
package series

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is a named, uniformly usable sequence of (time, value) samples.
type Series struct {
	// Name labels the series in CSV headers and chart titles.
	Name string
	// T holds the sample times in seconds, parallel to V.
	T []float64
	// V holds the sample values, parallel to T.
	V []float64
}

// New returns an empty series.
func New(name string) *Series {
	return &Series{Name: name}
}

// Add appends one sample.
func (s *Series) Add(t, v float64) {
	s.T = append(s.T, t)
	s.V = append(s.V, v)
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.V) }

// Stats summarizes a series. Non-finite samples (NaN readings from faulted
// sensors) are excluded from every statistic and counted in NaNs.
type Stats struct {
	// Min, Max, Mean and Std are the extrema, mean and population standard
	// deviation of the finite samples.
	Min, Max, Mean, Std float64
	// Oscillation counts direction reversals whose amplitude exceeds 5% of
	// the series range — the "peaks and valleys" metric used to discuss
	// Figure 10.
	Oscillations int
	// NaNs counts the non-finite samples the other statistics excluded.
	NaNs int
}

// Summarize computes summary statistics over the finite samples. A nil,
// empty or all-non-finite series returns a zero Stats (with NaNs counting
// the excluded samples); a single finite sample yields Min = Max = Mean
// with zero Std and no oscillations.
func (s *Series) Summarize() Stats {
	var st Stats
	if s == nil || len(s.V) == 0 {
		return st
	}
	st.Min, st.Max = math.Inf(1), math.Inf(-1)
	var sum float64
	n := 0
	for _, v := range s.V {
		if !finite(v) {
			st.NaNs++
			continue
		}
		st.Min = math.Min(st.Min, v)
		st.Max = math.Max(st.Max, v)
		sum += v
		n++
	}
	if n == 0 {
		return Stats{NaNs: st.NaNs}
	}
	st.Mean = sum / float64(n)
	var ss float64
	for _, v := range s.V {
		if !finite(v) {
			continue
		}
		d := v - st.Mean
		ss += d * d
	}
	st.Std = math.Sqrt(ss / float64(n))
	// Count significant direction reversals over the finite samples.
	thresh := 0.05 * (st.Max - st.Min)
	if thresh > 0 {
		lastExtreme := math.NaN()
		dir := 0
		for _, v := range s.V {
			if !finite(v) {
				continue
			}
			if math.IsNaN(lastExtreme) {
				lastExtreme = v
				continue
			}
			d := v - lastExtreme
			switch {
			case d > thresh:
				if dir < 0 {
					st.Oscillations++
				}
				dir = 1
				lastExtreme = v
			case d < -thresh:
				if dir > 0 {
					st.Oscillations++
				}
				dir = -1
				lastExtreme = v
			default:
				if (dir > 0 && v > lastExtreme) || (dir < 0 && v < lastExtreme) {
					lastExtreme = v
				}
			}
		}
	}
	return st
}

// Quantile returns the q-quantile (clamped to [0, 1]) of the series' finite
// values using linear interpolation between order statistics: q = 0 is the
// minimum, q = 1 the maximum, q = 0.5 the median. Non-finite samples are
// ignored. It returns NaN when the series is nil, empty or has no finite
// sample — never a silent 0.
func (s *Series) Quantile(q float64) float64 {
	if s == nil {
		return math.NaN()
	}
	vals := make([]float64, 0, len(s.V))
	for _, v := range s.V {
		if finite(v) {
			vals = append(vals, v)
		}
	}
	if len(vals) == 0 {
		return math.NaN()
	}
	sort.Float64s(vals)
	if q <= 0 {
		return vals[0]
	}
	if q >= 1 {
		return vals[len(vals)-1]
	}
	pos := q * float64(len(vals)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(vals) {
		return vals[len(vals)-1]
	}
	return vals[lo] + frac*(vals[lo+1]-vals[lo])
}

// MeanAbove returns the mean of finite samples with t >= t0 (for
// steady-state analysis past an initialization transient). NaN samples from
// faulted sensors are excluded; 0 when no finite sample qualifies.
func (s *Series) MeanAbove(t0 float64) float64 {
	var sum float64
	var n int
	for i, t := range s.T {
		if t >= t0 && finite(s.V[i]) {
			sum += s.V[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// ErrNilSeries is returned by WriteCSV when the receiver is nil (a run
// executed with core.RunOptions.SkipSeries has nil trace series).
var ErrNilSeries = errors.New("series: cannot export a nil series")

// WriteCSV emits "time,value" rows with a header. A nil receiver returns
// ErrNilSeries instead of silently writing nothing.
func (s *Series) WriteCSV(w io.Writer) error {
	if s == nil {
		return ErrNilSeries
	}
	if _, err := fmt.Fprintf(w, "time_s,%s\n", s.Name); err != nil {
		return err
	}
	for i := range s.T {
		if _, err := fmt.Fprintf(w, "%.3f,%.6g\n", s.T[i], s.V[i]); err != nil {
			return err
		}
	}
	return nil
}

// finite reports whether v is a finite number.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// RenderASCII draws the series as a compact ASCII chart of the given width
// and height, with min/max labels — enough to eyeball the oscillation
// structure of Figures 10/11/17 in a terminal.
func (s *Series) RenderASCII(width, height int) string {
	if len(s.V) == 0 || width < 8 || height < 2 {
		return "(empty series)\n"
	}
	st := s.Summarize()
	lo, hi := st.Min, st.Max
	if hi == lo {
		hi = lo + 1
	}
	// Downsample to width buckets by mean.
	buckets := make([]float64, width)
	counts := make([]int, width)
	t0, t1 := s.T[0], s.T[len(s.T)-1]
	span := t1 - t0
	if span <= 0 {
		span = 1
	}
	for i, t := range s.T {
		if !finite(s.V[i]) {
			continue
		}
		b := int(float64(width-1) * (t - t0) / span)
		buckets[b] += s.V[i]
		counts[b]++
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for b := 0; b < width; b++ {
		if counts[b] == 0 {
			continue
		}
		v := buckets[b] / float64(counts[b])
		r := int(float64(height-1) * (hi - v) / (hi - lo))
		grid[r][b] = '*'
	}
	var out strings.Builder
	fmt.Fprintf(&out, "%s  [%.3g .. %.3g]\n", s.Name, lo, hi)
	for _, row := range grid {
		out.WriteString("|")
		out.Write(row)
		out.WriteString("|\n")
	}
	fmt.Fprintf(&out, " t: %.1fs .. %.1fs\n", t0, t1)
	return out.String()
}

// Table renders a simple aligned text table: the harness uses it to print
// each figure's bar data as rows.
type Table struct {
	// Header holds the column titles.
	Header []string
	// Rows holds the body cells, one slice per row.
	Rows [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i >= len(widths) {
				break
			}
			fmt.Fprintf(w, "%-*s  ", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
}

// Normalize returns values divided by the value at key in baseline order —
// a helper for the paper's "normalized to Coordinated heuristic" bars.
func Normalize(values map[string]float64, baseline string) map[string]float64 {
	out := make(map[string]float64, len(values))
	base := values[baseline]
	for k, v := range values {
		if base != 0 {
			out[k] = v / base
		}
	}
	return out
}

// SortedKeys returns the map's keys in sorted order (stable table output).
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
