// Package series provides time-series recording, summary statistics, CSV
// export and terminal (ASCII) rendering for the experiment harness. Every
// figure in the paper that plots a signal versus time (Figures 10, 11, 15a,
// 17) is produced through this package.
package series

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is a named, uniformly usable sequence of (time, value) samples.
type Series struct {
	Name string
	T    []float64
	V    []float64
}

// New returns an empty series.
func New(name string) *Series {
	return &Series{Name: name}
}

// Add appends one sample.
func (s *Series) Add(t, v float64) {
	s.T = append(s.T, t)
	s.V = append(s.V, v)
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.V) }

// Stats summarizes a series.
type Stats struct {
	Min, Max, Mean, Std float64
	// Oscillation counts direction reversals whose amplitude exceeds 5% of
	// the series range — the "peaks and valleys" metric used to discuss
	// Figure 10.
	Oscillations int
}

// Summarize computes summary statistics.
func (s *Series) Summarize() Stats {
	if len(s.V) == 0 {
		return Stats{}
	}
	st := Stats{Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, v := range s.V {
		st.Min = math.Min(st.Min, v)
		st.Max = math.Max(st.Max, v)
		sum += v
	}
	st.Mean = sum / float64(len(s.V))
	var ss float64
	for _, v := range s.V {
		d := v - st.Mean
		ss += d * d
	}
	st.Std = math.Sqrt(ss / float64(len(s.V)))
	// Count significant direction reversals.
	thresh := 0.05 * (st.Max - st.Min)
	if thresh > 0 {
		lastExtreme := s.V[0]
		dir := 0
		for _, v := range s.V[1:] {
			d := v - lastExtreme
			switch {
			case d > thresh:
				if dir < 0 {
					st.Oscillations++
				}
				dir = 1
				lastExtreme = v
			case d < -thresh:
				if dir > 0 {
					st.Oscillations++
				}
				dir = -1
				lastExtreme = v
			default:
				if (dir > 0 && v > lastExtreme) || (dir < 0 && v < lastExtreme) {
					lastExtreme = v
				}
			}
		}
	}
	return st
}

// MeanAbove returns the mean of samples with t >= t0 (for steady-state
// analysis past an initialization transient).
func (s *Series) MeanAbove(t0 float64) float64 {
	var sum float64
	var n int
	for i, t := range s.T {
		if t >= t0 {
			sum += s.V[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// WriteCSV emits "time,value" rows with a header.
func (s *Series) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "time_s,%s\n", s.Name); err != nil {
		return err
	}
	for i := range s.T {
		if _, err := fmt.Fprintf(w, "%.3f,%.6g\n", s.T[i], s.V[i]); err != nil {
			return err
		}
	}
	return nil
}

// RenderASCII draws the series as a compact ASCII chart of the given width
// and height, with min/max labels — enough to eyeball the oscillation
// structure of Figures 10/11/17 in a terminal.
func (s *Series) RenderASCII(width, height int) string {
	if len(s.V) == 0 || width < 8 || height < 2 {
		return "(empty series)\n"
	}
	st := s.Summarize()
	lo, hi := st.Min, st.Max
	if hi == lo {
		hi = lo + 1
	}
	// Downsample to width buckets by mean.
	buckets := make([]float64, width)
	counts := make([]int, width)
	t0, t1 := s.T[0], s.T[len(s.T)-1]
	span := t1 - t0
	if span <= 0 {
		span = 1
	}
	for i, t := range s.T {
		b := int(float64(width-1) * (t - t0) / span)
		buckets[b] += s.V[i]
		counts[b]++
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for b := 0; b < width; b++ {
		if counts[b] == 0 {
			continue
		}
		v := buckets[b] / float64(counts[b])
		r := int(float64(height-1) * (hi - v) / (hi - lo))
		grid[r][b] = '*'
	}
	var out strings.Builder
	fmt.Fprintf(&out, "%s  [%.3g .. %.3g]\n", s.Name, lo, hi)
	for _, row := range grid {
		out.WriteString("|")
		out.Write(row)
		out.WriteString("|\n")
	}
	fmt.Fprintf(&out, " t: %.1fs .. %.1fs\n", t0, t1)
	return out.String()
}

// Table renders a simple aligned text table: the harness uses it to print
// each figure's bar data as rows.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i >= len(widths) {
				break
			}
			fmt.Fprintf(w, "%-*s  ", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
}

// Normalize returns values divided by the value at key in baseline order —
// a helper for the paper's "normalized to Coordinated heuristic" bars.
func Normalize(values map[string]float64, baseline string) map[string]float64 {
	out := make(map[string]float64, len(values))
	base := values[baseline]
	for k, v := range values {
		if base != 0 {
			out[k] = v / base
		}
	}
	return out
}

// SortedKeys returns the map's keys in sorted order (stable table output).
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
