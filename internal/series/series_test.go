package series

import (
	"math"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := New("p")
	for i := 0; i < 10; i++ {
		s.Add(float64(i), float64(i%2)) // 0,1,0,1,...
	}
	st := s.Summarize()
	if st.Min != 0 || st.Max != 1 {
		t.Fatalf("min/max %v/%v", st.Min, st.Max)
	}
	if math.Abs(st.Mean-0.5) > 1e-12 {
		t.Fatalf("mean %v", st.Mean)
	}
	if st.Oscillations < 7 {
		t.Fatalf("oscillations %d, want ~8", st.Oscillations)
	}
}

func TestSummarizeFlat(t *testing.T) {
	s := New("flat")
	for i := 0; i < 5; i++ {
		s.Add(float64(i), 3.3)
	}
	st := s.Summarize()
	if st.Oscillations != 0 || st.Std != 0 {
		t.Fatalf("flat series: %+v", st)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if st := New("e").Summarize(); st.Mean != 0 {
		t.Fatalf("empty stats %+v", st)
	}
}

func TestMeanAbove(t *testing.T) {
	s := New("x")
	s.Add(0, 100) // init transient
	s.Add(1, 2)
	s.Add(2, 4)
	if got := s.MeanAbove(1); math.Abs(got-3) > 1e-12 {
		t.Fatalf("MeanAbove = %v, want 3", got)
	}
	if got := s.MeanAbove(99); got != 0 {
		t.Fatalf("MeanAbove past end = %v, want 0", got)
	}
}

func TestWriteCSV(t *testing.T) {
	s := New("power_w")
	s.Add(0.5, 3.3)
	var b strings.Builder
	if err := s.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "time_s,power_w\n") || !strings.Contains(out, "0.500,3.3") {
		t.Fatalf("csv output %q", out)
	}
}

func TestRenderASCII(t *testing.T) {
	s := New("sine")
	for i := 0; i < 200; i++ {
		s.Add(float64(i)*0.5, math.Sin(float64(i)*0.1))
	}
	out := s.RenderASCII(60, 10)
	if !strings.Contains(out, "sine") || strings.Count(out, "\n") < 10 {
		t.Fatalf("render output:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Fatal("chart has no points")
	}
}

func TestRenderASCIIEmpty(t *testing.T) {
	if out := New("e").RenderASCII(40, 8); !strings.Contains(out, "empty") {
		t.Fatalf("got %q", out)
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{Header: []string{"app", "ExD"}}
	tab.AddRow("blackscholes", "0.50")
	tab.AddRow("mcf", "0.61")
	var b strings.Builder
	tab.Render(&b)
	out := b.String()
	if !strings.Contains(out, "blackscholes") || !strings.Contains(out, "---") {
		t.Fatalf("table output:\n%s", out)
	}
}

func TestNormalize(t *testing.T) {
	n := Normalize(map[string]float64{"a": 2, "b": 4}, "a")
	if n["a"] != 1 || n["b"] != 2 {
		t.Fatalf("normalize %v", n)
	}
}

func TestSortedKeys(t *testing.T) {
	keys := SortedKeys(map[string]int{"c": 1, "a": 2, "b": 3})
	if strings.Join(keys, "") != "abc" {
		t.Fatalf("keys %v", keys)
	}
}

func TestSummarizeSingleSample(t *testing.T) {
	s := New("one")
	s.Add(0, 3.5)
	st := s.Summarize()
	if st.Min != 3.5 || st.Max != 3.5 || st.Mean != 3.5 || st.Std != 0 || st.Oscillations != 0 {
		t.Fatalf("single-sample stats %+v", st)
	}
}

func TestSummarizeSkipsNaN(t *testing.T) {
	s := New("faulted")
	for i, v := range []float64{1, math.NaN(), 3, math.Inf(1), 5} {
		s.Add(float64(i), v)
	}
	st := s.Summarize()
	if st.NaNs != 2 {
		t.Fatalf("NaNs = %d, want 2", st.NaNs)
	}
	if st.Min != 1 || st.Max != 5 || st.Mean != 3 {
		t.Fatalf("finite stats wrong: %+v", st)
	}
	if math.IsNaN(st.Std) {
		t.Fatal("Std is NaN")
	}
}

func TestSummarizeAllNaN(t *testing.T) {
	s := New("dead")
	s.Add(0, math.NaN())
	s.Add(1, math.NaN())
	st := s.Summarize()
	if st.NaNs != 2 || st.Min != 0 || st.Max != 0 || st.Mean != 0 {
		t.Fatalf("all-NaN stats %+v", st)
	}
}

func TestQuantile(t *testing.T) {
	s := New("q")
	for i, v := range []float64{4, 1, math.NaN(), 3, 2} {
		s.Add(float64(i), v)
	}
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("q0 = %g, want 1", got)
	}
	if got := s.Quantile(1); got != 4 {
		t.Fatalf("q1 = %g, want 4", got)
	}
	if got := s.Quantile(0.5); got != 2.5 {
		t.Fatalf("median = %g, want 2.5 (interpolated over 1,2,3,4)", got)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var nilSeries *Series
	if got := nilSeries.Quantile(0.5); !math.IsNaN(got) {
		t.Fatalf("nil series quantile = %g, want NaN", got)
	}
	if got := New("e").Quantile(0.5); !math.IsNaN(got) {
		t.Fatalf("empty series quantile = %g, want NaN", got)
	}
	s := New("nan")
	s.Add(0, math.NaN())
	if got := s.Quantile(0.5); !math.IsNaN(got) {
		t.Fatalf("all-NaN quantile = %g, want NaN", got)
	}
	one := New("one")
	one.Add(0, 7)
	if got := one.Quantile(0.5); got != 7 {
		t.Fatalf("single-sample quantile = %g, want 7", got)
	}
}

func TestMeanAboveSkipsNaN(t *testing.T) {
	s := New("m")
	s.Add(0, 10)
	s.Add(1, math.NaN())
	s.Add(2, 4)
	if got := s.MeanAbove(1); got != 4 {
		t.Fatalf("MeanAbove = %g, want 4", got)
	}
}

func TestWriteCSVNil(t *testing.T) {
	var s *Series
	var b strings.Builder
	if err := s.WriteCSV(&b); err != ErrNilSeries {
		t.Fatalf("nil WriteCSV error = %v, want ErrNilSeries", err)
	}
}

func TestRenderASCIISkipsNaN(t *testing.T) {
	s := New("gap")
	for i := 0; i < 40; i++ {
		v := math.Sin(float64(i) / 5)
		if i%7 == 0 {
			v = math.NaN()
		}
		s.Add(float64(i), v)
	}
	out := s.RenderASCII(40, 8)
	if strings.Contains(out, "NaN") {
		t.Fatalf("render leaked NaN:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Fatalf("chart has no points:\n%s", out)
	}
}
