package lqgctl

import (
	"math"
	"testing"

	"yukta/internal/lti"
	"yukta/internal/mat"
	"yukta/internal/robust"
	"yukta/internal/sysid"
)

func lqgController(t *testing.T) *robust.Controller {
	t.Helper()
	a := mat.FromRows([][]float64{{0.7, 0.1}, {0.0, 0.6}})
	b := mat.FromRows([][]float64{{0.5, 0.05}, {0.2, 0.02}})
	c := mat.FromRows([][]float64{{1, 0.3}})
	d := mat.Zeros(1, 2)
	plant := lti.MustStateSpace(a, b, c, d, 0.5)
	ctl, err := robust.SynthesizeLQG(&robust.Spec{
		Plant:        plant,
		NumControls:  1,
		InputWeights: []float64{1},
		InputQuanta:  []float64{0.1},
		OutputBounds: []float64{0.2},
		Uncertainty:  0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ctl
}

func runtimeFor(t *testing.T, ctl *robust.Controller) *Runtime {
	t.Helper()
	r, err := New(Config{
		Controller:     ctl,
		OutputScales:   []sysid.Scaling{{Min: 0, Max: 10}},
		ExternalScales: []sysid.Scaling{{Min: 0, Max: 8}},
		InputScales:    []sysid.Scaling{{Min: 0.2, Max: 2.0}},
		InputLevels:    [][]float64{{0.2, 0.6, 1.0, 1.4, 1.8, 2.0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSynthesizeLQGShape(t *testing.T) {
	ctl := lqgController(t)
	if !math.IsNaN(ctl.Report.SSV) {
		t.Fatal("LQG must not carry an SSV certificate")
	}
	if ctl.Report.StateDim != 3 { // 2 plant states + 1 output integrator
		t.Fatalf("state dim %d, want 3", ctl.Report.StateDim)
	}
}

func TestLQGTracks(t *testing.T) {
	// LQG still works nominally: with a persistent error it pushes the input
	// in the correct direction.
	r := runtimeFor(t, lqgController(t))
	if err := r.SetTargets([]float64{8}); err != nil {
		t.Fatal(err)
	}
	var first, last float64
	for i := 0; i < 20; i++ {
		u, err := r.Step([]float64{2}, []float64{0})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = u[0]
		}
		last = u[0]
	}
	if last <= first {
		t.Fatalf("LQG input did not rise: %v -> %v", first, last)
	}
}

func TestLQGWindsUpUnderSaturation(t *testing.T) {
	// The deliberate deficiency: under persistent saturation LQG takes much
	// longer to recover than the SSV runtime (no anti-windup).
	r := runtimeFor(t, lqgController(t))
	if err := r.SetTargets([]float64{5}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := r.Step([]float64{0}, []float64{0}); err != nil {
			t.Fatal(err)
		}
	}
	if r.WastedFraction() == 0 {
		t.Fatal("saturated intervals must count as wasted")
	}
	// Error flips: LQG stays pinned for many intervals.
	pinned := 0
	for i := 0; i < 30; i++ {
		u, err := r.Step([]float64{10}, []float64{0})
		if err != nil {
			t.Fatal(err)
		}
		if u[0] >= 2.0-1e-9 {
			pinned++
		} else {
			break
		}
	}
	if pinned < 5 {
		t.Fatalf("LQG unwound suspiciously fast (%d pinned steps); windup modeling lost", pinned)
	}
}

func TestLQGQuantizesOnlyAtOutput(t *testing.T) {
	r := runtimeFor(t, lqgController(t))
	if err := r.SetTargets([]float64{6}); err != nil {
		t.Fatal(err)
	}
	u, err := r.Step([]float64{5}, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	allowed := map[float64]bool{0.2: true, 0.6: true, 1.0: true, 1.4: true, 1.8: true, 2.0: true}
	if !allowed[u[0]] {
		t.Fatalf("output %v not on the level set", u[0])
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("expected nil controller error")
	}
	ctl := lqgController(t)
	if _, err := New(Config{Controller: ctl}); err == nil {
		t.Fatal("expected arity error")
	}
	r := runtimeFor(t, ctl)
	if _, err := r.Step([]float64{1, 2}, []float64{0}); err == nil {
		t.Fatal("expected measurement arity error")
	}
	if err := r.SetTargets([]float64{1, 2}); err == nil {
		t.Fatal("expected target arity error")
	}
}

func TestLQGStepHoldsOnNonFiniteInputs(t *testing.T) {
	ctl := lqgController(t)
	r := runtimeFor(t, ctl)
	twin := runtimeFor(t, ctl)
	step := func(rt *Runtime, m float64) float64 {
		u, err := rt.Step([]float64{m}, []float64{2})
		if err != nil {
			t.Fatal(err)
		}
		return u[0]
	}
	var last float64
	for i := 0; i < 5; i++ {
		last = step(r, 4)
		step(twin, 4)
	}
	if got := step(r, math.NaN()); got != last {
		t.Fatalf("held command %v, want last good %v", got, last)
	}
	if r.HeldSteps() != 1 {
		t.Fatalf("HeldSteps() = %d, want 1", r.HeldSteps())
	}
	// State frozen during the hold: resumes in lockstep with the clean twin.
	for i := 0; i < 5; i++ {
		if a, b := step(r, 6), step(twin, 6); a != b {
			t.Fatalf("post-dropout step %d: %v vs unfaulted %v", i, a, b)
		}
	}
	// First-interval dropout falls back to the mid-range level.
	fresh := runtimeFor(t, ctl)
	u, err := fresh.Step([]float64{math.NaN()}, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if u[0] != 1.4 { // levels {0.2,0.6,1.0,1.4,1.8,2.0}, index 3
		t.Fatalf("first-interval dropout command %v, want 1.4", u[0])
	}
}

func TestLQGReseedAndHealth(t *testing.T) {
	r := runtimeFor(t, lqgController(t))
	if err := r.SetTargets([]float64{5}); err != nil {
		t.Fatal(err)
	}
	if h := r.Health(); h != (Health{}) {
		t.Fatalf("fresh Health = %+v, want zero", h)
	}
	// Wind up hard, then confirm the health snapshot sees the rail.
	for i := 0; i < 200; i++ {
		if _, err := r.Step([]float64{0}, []float64{0}); err != nil {
			t.Fatal(err)
		}
	}
	if !r.Health().Railed {
		t.Fatal("wound-up LQG must report Railed (no anti-windup)")
	}
	// Reseed: health clears, and a dropout on the first post-reseed interval
	// repeats the seeded operating point instead of the mid-range default.
	if err := r.Reseed([]float64{0.55}); err != nil {
		t.Fatal(err)
	}
	if h := r.Health(); h != (Health{}) {
		t.Fatalf("Health after Reseed = %+v, want zero", h)
	}
	u, err := r.Step([]float64{math.NaN()}, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if u[0] != 0.6 {
		t.Fatalf("post-reseed dropout command %v, want seeded level 0.6", u[0])
	}
	if err := r.Reseed([]float64{1, 2}); err == nil {
		t.Fatal("expected arity error")
	}
	if err := r.Reseed(nil); err != nil {
		t.Fatal(err)
	}
	// White-box classification: NaN raw reads as NonFinite, not Railed.
	if _, err := r.Step([]float64{5}, []float64{0}); err != nil {
		t.Fatal(err)
	}
	r.lastRaw[0] = math.NaN()
	if h := r.Health(); !h.NonFinite || h.Railed {
		t.Fatalf("NaN raw Health = %+v, want NonFinite only", h)
	}
}
