// Package lqgctl is the runtime for the paper's LQG baseline (§VI-B): the
// same state-machine stepping as an SSV controller, but with the
// deficiencies the paper attributes to LQG designs — the controller assumes
// inputs are continuous and unbounded, so it has no saturation awareness
// (its internal state keeps winding while an actuator is pinned at its
// physical limit, wasting intervals "trying to change an input beyond its
// limit and observing no change"), and it has no notion of the actuators'
// discrete level sets (commands are rounded only at the very end, outside
// the controller's knowledge).
package lqgctl

import (
	"fmt"
	"math"

	"yukta/internal/robust"
	"yukta/internal/sysid"
)

// Runtime executes an LQG controller against physical signals.
type Runtime struct {
	ctl *robust.Controller

	outScale []sysid.Scaling
	extScale []sysid.Scaling
	inScale  []sysid.Scaling
	levels   [][]float64

	state   []float64
	targets []float64

	wastedSteps int
	totalSteps  int

	// Hold-last-good state: even the deficient LQG baseline is assumed to be
	// implemented competently enough not to feed NaN into its state machine,
	// so on a dropped sensor reading it repeats its previous command.
	lastPhys  []float64
	havePhys  bool
	heldSteps int

	// lastRaw is the previous raw (pre-rounding) physical command, kept for
	// health introspection.
	lastRaw []float64
	stepped bool

	// Per-step scratch buffers so the 500 ms control loop does not allocate.
	dy, u, du, ax, bdy, phys []float64
}

// Config wires the controller to its physical signals; identical shape to
// the SSV runtime so schemes can be built uniformly.
type Config struct {
	// Controller is the synthesized LQG controller to run.
	Controller *robust.Controller
	// OutputScales, ExternalScales and InputScales give the physical range
	// of each signal in the order the model was identified.
	OutputScales   []sysid.Scaling
	ExternalScales []sysid.Scaling // physical range of each external input
	InputScales    []sysid.Scaling // physical range of each control input
	// InputLevels lists the allowed physical values of each control input.
	InputLevels [][]float64
}

// New validates the wiring.
func New(cfg Config) (*Runtime, error) {
	c := cfg.Controller
	if c == nil {
		return nil, fmt.Errorf("lqgctl: nil controller")
	}
	if len(cfg.OutputScales) != c.NumOut || len(cfg.ExternalScales) != c.NumExt ||
		len(cfg.InputScales) != c.NumCtrl || len(cfg.InputLevels) != c.NumCtrl {
		return nil, fmt.Errorf("lqgctl: scale/level arity mismatch for %d/%d/%d controller",
			c.NumOut, c.NumExt, c.NumCtrl)
	}
	for i, ls := range cfg.InputLevels {
		if len(ls) == 0 {
			return nil, fmt.Errorf("lqgctl: empty level set for input %d", i)
		}
	}
	return &Runtime{
		ctl:      c,
		outScale: append([]sysid.Scaling(nil), cfg.OutputScales...),
		extScale: append([]sysid.Scaling(nil), cfg.ExternalScales...),
		inScale:  append([]sysid.Scaling(nil), cfg.InputScales...),
		levels:   cfg.InputLevels,
		state:    make([]float64, c.K.Order()),
		targets:  make([]float64, c.NumOut),
		dy:       make([]float64, c.NumOut+c.NumExt),
		u:        make([]float64, c.NumCtrl),
		du:       make([]float64, c.NumCtrl),
		ax:       make([]float64, c.K.Order()),
		bdy:      make([]float64, c.K.Order()),
		phys:     make([]float64, c.NumCtrl),
		lastRaw:  make([]float64, c.NumCtrl),
	}, nil
}

// SetTargets sets output targets in physical units.
func (r *Runtime) SetTargets(phys []float64) error {
	if len(phys) != len(r.targets) {
		return fmt.Errorf("lqgctl: %d targets for %d outputs", len(phys), len(r.targets))
	}
	for i, p := range phys {
		r.targets[i] = r.outScale[i].Normalize(p)
	}
	return nil
}

// Step runs one control interval. The returned inputs are physical values
// rounded to the nearest allowed level — but, unlike the SSV runtime, the
// controller state evolves as if the unbounded command had been applied.
//
// The returned slice is a per-runtime scratch buffer, valid until the next
// Step call; callers that need to keep it must copy.
func (r *Runtime) Step(measurements, externals []float64) ([]float64, error) {
	c := r.ctl
	if len(measurements) != c.NumOut || len(externals) != c.NumExt {
		return nil, fmt.Errorf("lqgctl: arity mismatch (%d meas, %d ext)", len(measurements), len(externals))
	}
	// Graceful degradation on faulted inputs: hold the previous command and
	// freeze the state rather than stepping on non-finite readings. Note the
	// windup deficiency remains — the held state is whatever the controller
	// had wound itself to.
	if !finiteAll(measurements) || !finiteAll(externals) {
		r.heldSteps++
		if r.havePhys {
			copy(r.phys, r.lastPhys)
			return r.phys, nil
		}
		for i := range r.phys {
			lv := r.levels[i]
			r.phys[i] = lv[len(lv)/2]
		}
		return r.phys, nil
	}
	dy := r.dy
	for i, m := range measurements {
		dy[i] = r.outScale[i].Normalize(m) - r.targets[i]
	}
	for i, e := range externals {
		dy[c.NumOut+i] = r.extScale[i].Normalize(e)
	}
	u := c.K.C.MulVecTo(r.u, r.state)
	du := c.K.D.MulVecTo(r.du, dy)
	for i := range u {
		u[i] += du[i]
	}
	ax := c.K.A.MulVecTo(r.ax, r.state)
	bdy := c.K.B.MulVecTo(r.bdy, dy)
	for i := range ax {
		r.state[i] = ax[i] + bdy[i]
	}

	phys := r.phys
	wasted := false
	for i := range phys {
		raw := r.inScale[i].Denormalize(u[i])
		r.lastRaw[i] = raw
		lv := r.levels[i]
		if raw < lv[0]-0.25*(lv[len(lv)-1]-lv[0]) || raw > lv[len(lv)-1]+0.25*(lv[len(lv)-1]-lv[0]) {
			// The controller is commanding far beyond the physical range:
			// this interval is spent "changing an input beyond its limit and
			// observing no change" (§VI-B).
			wasted = true
		}
		phys[i] = nearest(lv, raw)
	}
	r.totalSteps++
	r.stepped = true
	if wasted {
		r.wastedSteps++
	}
	if r.lastPhys == nil {
		r.lastPhys = make([]float64, len(phys))
	}
	copy(r.lastPhys, phys)
	r.havePhys = true
	return phys, nil
}

// HeldSteps returns how many control intervals were skipped because the
// sensor path delivered non-finite readings.
func (r *Runtime) HeldSteps() int { return r.heldSteps }

// WastedFraction reports the fraction of control intervals spent commanding
// actuators beyond their physical limits — the paper measures 9% for
// bodytrack under LQG.
func (r *Runtime) WastedFraction() float64 {
	if r.totalSteps == 0 {
		return 0
	}
	return float64(r.wastedSteps) / float64(r.totalSteps)
}

// Reset clears the controller state.
func (r *Runtime) Reset() {
	for i := range r.state {
		r.state[i] = 0
	}
	r.wastedSteps, r.totalSteps = 0, 0
	r.lastPhys = nil
	r.havePhys = false
	r.heldSteps = 0
	r.stepped = false
	for i := range r.lastRaw {
		r.lastRaw[i] = 0
	}
}

// Reseed prepares the runtime for bumpless re-engagement: Reset plus
// hold-last-good state seeded from the actuator values currently applied to
// the plant (snapped to each input's level set), so a sensor dropout on the
// very first post-reseed interval repeats the plant's real operating point.
// Unlike the SSV runtime there is no quantizer hysteresis to seed — the LQG
// baseline rounds from scratch every interval. A nil applied behaves exactly
// like Reset.
func (r *Runtime) Reseed(applied []float64) error {
	if applied != nil && len(applied) != len(r.levels) {
		return fmt.Errorf("lqgctl: %d applied values for %d controls", len(applied), len(r.levels))
	}
	r.Reset()
	if applied == nil {
		return nil
	}
	r.lastPhys = make([]float64, len(applied))
	for i, v := range applied {
		r.lastPhys[i] = nearest(r.levels[i], v)
	}
	r.havePhys = true
	return nil
}

// Health is the runtime's self-diagnosis snapshot for a supervisory layer;
// the same shape as the SSV runtime's so a wrapper can merge the two. The
// baseline has no guardband monitor, so GuardbandExceeded is always false.
type Health struct {
	// GuardbandExceeded is always false (no guardband synthesis for LQG).
	GuardbandExceeded bool
	// HeldSteps mirrors HeldSteps().
	HeldSteps int
	// Railed reports a raw command beyond the physical level range by more
	// than half the range's span.
	Railed bool
	// NonFinite reports NaN/Inf in the latest raw command.
	NonFinite bool
}

// Health returns the runtime's current health snapshot.
func (r *Runtime) Health() Health {
	h := Health{HeldSteps: r.heldSteps}
	if !r.stepped {
		return h
	}
	for i, raw := range r.lastRaw {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			h.NonFinite = true
			continue
		}
		lv := r.levels[i]
		lo, hi := lv[0], lv[len(lv)-1]
		span := hi - lo
		if span <= 0 {
			span = math.Max(math.Abs(hi), 1)
		}
		if raw < lo-0.5*span || raw > hi+0.5*span {
			h.Railed = true
		}
	}
	return h
}

// finiteAll reports whether every element of v is a finite number.
func finiteAll(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

func nearest(levels []float64, v float64) float64 {
	best := levels[0]
	bd := math.Abs(v - best)
	for _, l := range levels[1:] {
		if d := math.Abs(v - l); d < bd {
			best, bd = l, d
		}
	}
	return best
}
