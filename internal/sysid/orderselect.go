package sysid

import (
	"fmt"
	"math"
)

// OrderScore records the cross-validated fit of one candidate model order.
type OrderScore struct {
	Orders Orders
	// ValRMSE is the mean one-step prediction RMSE over the held-out tail,
	// averaged across outputs.
	ValRMSE float64
	// TrainRMSE is the same metric on the training split.
	TrainRMSE float64
}

// SelectOrder fits candidate ARX orders 1..maxOrder (with NB = NA) on the
// first 70% of the dataset and scores one-step prediction on the held-out
// 30%, returning the scores and the order with the best validation RMSE.
// The paper's §IV-C picks order 4; this is the experiment a practitioner
// runs to justify that choice.
func SelectOrder(d *Dataset, maxOrder int, ts float64) ([]OrderScore, Orders, error) {
	if maxOrder < 1 {
		return nil, Orders{}, fmt.Errorf("sysid: maxOrder must be positive")
	}
	n := d.Len()
	split := n * 7 / 10
	if split < 20 || n-split < 20 {
		return nil, Orders{}, fmt.Errorf("%w: %d samples is too short for order selection", ErrData, n)
	}
	train := &Dataset{U: d.U[:split], Y: d.Y[:split]}
	val := &Dataset{U: d.U[split:], Y: d.Y[split:]}

	var scores []OrderScore
	best := Orders{}
	bestRMSE := math.Inf(1)
	for k := 1; k <= maxOrder; k++ {
		ord := Orders{NA: k, NB: k}
		m, err := Identify(train, ord, ts)
		if err != nil {
			continue
		}
		tm, err := m.Evaluate(train)
		if err != nil {
			continue
		}
		vm, err := m.Evaluate(val)
		if err != nil {
			continue
		}
		s := OrderScore{Orders: ord, ValRMSE: meanOf(vm.RMSE), TrainRMSE: meanOf(tm.RMSE)}
		scores = append(scores, s)
		if s.ValRMSE < bestRMSE {
			bestRMSE = s.ValRMSE
			best = ord
		}
	}
	if len(scores) == 0 {
		return nil, Orders{}, fmt.Errorf("%w: no candidate order could be fit", ErrData)
	}
	return scores, best, nil
}

func meanOf(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}
