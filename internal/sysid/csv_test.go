package sysid

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestDatasetCSVRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	d, _ := synthData(rng, 50, 0.01)
	var sb strings.Builder
	if err := d.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() {
		t.Fatalf("round trip length %d, want %d", back.Len(), d.Len())
	}
	for i := range d.U {
		for j := range d.U[i] {
			if math.Abs(back.U[i][j]-d.U[i][j]) > 1e-12 {
				t.Fatalf("u[%d][%d] mismatch", i, j)
			}
		}
		for j := range d.Y[i] {
			if math.Abs(back.Y[i][j]-d.Y[i][j]) > 1e-12 {
				t.Fatalf("y[%d][%d] mismatch", i, j)
			}
		}
	}
}

func TestCSVErrors(t *testing.T) {
	if err := (&Dataset{}).WriteCSV(&strings.Builder{}); err == nil {
		t.Fatal("expected error for empty dataset")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1,2\n")); err == nil {
		t.Fatal("expected error for header without u*/y*")
	}
	if _, err := ReadCSV(strings.NewReader("u0,y0\n1\n")); err == nil {
		t.Fatal("expected error for short row")
	}
	if _, err := ReadCSV(strings.NewReader("u0,y0\nx,2\n")); err == nil {
		t.Fatal("expected error for non-numeric field")
	}
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Fatal("expected error for empty input")
	}
}
