package sysid

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the dataset as rows of u0..uN,y0..yM with a header, the
// interchange format for inspecting identification experiments in external
// tools (or re-running MATLAB's routines on the same data, as the paper's
// authors would).
func (d *Dataset) WriteCSV(w io.Writer) error {
	if d.Len() == 0 {
		return fmt.Errorf("%w: empty dataset", ErrData)
	}
	cw := csv.NewWriter(w)
	nu, ny := len(d.U[0]), len(d.Y[0])
	header := make([]string, 0, nu+ny)
	for i := 0; i < nu; i++ {
		header = append(header, fmt.Sprintf("u%d", i))
	}
	for i := 0; i < ny; i++ {
		header = append(header, fmt.Sprintf("y%d", i))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, nu+ny)
	for t := 0; t < d.Len(); t++ {
		for i, v := range d.U[t] {
			row[i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		for i, v := range d.Y[t] {
			row[nu+i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset written by WriteCSV. The header determines the
// input/output split (u* columns then y* columns).
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("sysid: reading CSV header: %w", err)
	}
	nu := 0
	for _, h := range header {
		if len(h) > 0 && h[0] == 'u' {
			nu++
		}
	}
	ny := len(header) - nu
	if nu == 0 || ny == 0 {
		return nil, fmt.Errorf("%w: header %v has no u*/y* split", ErrData, header)
	}
	d := &Dataset{}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("sysid: reading CSV row: %w", err)
		}
		if len(rec) != nu+ny {
			return nil, fmt.Errorf("%w: row has %d fields, want %d", ErrData, len(rec), nu+ny)
		}
		u := make([]float64, nu)
		y := make([]float64, ny)
		for i := 0; i < nu; i++ {
			if u[i], err = strconv.ParseFloat(rec[i], 64); err != nil {
				return nil, fmt.Errorf("sysid: parsing %q: %w", rec[i], err)
			}
		}
		for i := 0; i < ny; i++ {
			if y[i], err = strconv.ParseFloat(rec[nu+i], 64); err != nil {
				return nil, fmt.Errorf("sysid: parsing %q: %w", rec[nu+i], err)
			}
		}
		d.U = append(d.U, u)
		d.Y = append(d.Y, y)
	}
	return d, nil
}
