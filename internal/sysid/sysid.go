// Package sysid implements the black-box System Identification methodology
// of the paper's Section IV-C: excite the controlled system with a training
// workload while varying the would-be controller inputs, record the outputs,
// and fit a MIMO polynomial (ARX / Box-Jenkins family) model of order 4 that
// predicts each output at time T from all outputs at T-1..T-4 and all inputs
// at T..T-3. The fitted model converts to a state-space realization consumed
// by the robust-control synthesis.
//
// All identification happens in normalized units: Scaling maps each physical
// signal range onto [-1, 1], so that deviation bounds and guardbands are
// fractions of range exactly as the paper specifies them.
package sysid

import (
	"errors"
	"fmt"
	"math"

	"yukta/internal/lti"
	"yukta/internal/mat"
)

// ErrData reports an unusable identification dataset.
var ErrData = errors.New("sysid: unusable dataset")

// Scaling maps a physical signal range [Min, Max] onto the normalized range
// [-1, 1] used by identification and control.
type Scaling struct {
	Min, Max float64
}

// Normalize maps a physical value into normalized units.
func (s Scaling) Normalize(x float64) float64 {
	if s.Max == s.Min {
		return 0
	}
	return 2*(x-s.Min)/(s.Max-s.Min) - 1
}

// Denormalize maps a normalized value back to physical units.
func (s Scaling) Denormalize(n float64) float64 {
	return s.Min + (n+1)*(s.Max-s.Min)/2
}

// QuantumNormalized converts a physical quantization step to normalized units.
func (s Scaling) QuantumNormalized(step float64) float64 {
	if s.Max == s.Min {
		return 0
	}
	return 2 * step / (s.Max - s.Min)
}

// Range returns Max - Min.
func (s Scaling) Range() float64 { return s.Max - s.Min }

// Dataset is a recorded identification experiment: U[t] are the inputs
// applied at sample t and Y[t] the outputs observed at sample t, both in
// normalized units.
type Dataset struct {
	U [][]float64
	Y [][]float64
}

// Append adds one sample to the dataset.
func (d *Dataset) Append(u, y []float64) {
	uc := make([]float64, len(u))
	copy(uc, u)
	yc := make([]float64, len(y))
	copy(yc, y)
	d.U = append(d.U, uc)
	d.Y = append(d.Y, yc)
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Y) }

// Orders selects the polynomial model structure. NA is the number of output
// lags (y(T-1)..y(T-NA)); NB is the number of input taps (u(T)..u(T-NB+1)),
// so NB includes the direct feedthrough term.
type Orders struct {
	NA, NB int
}

// PaperOrders is the order-4 structure of Section IV-C.
var PaperOrders = Orders{NA: 4, NB: 4}

// Model is a fitted MIMO ARX model
//
//	y(T) = C0 + Σ_{k=1..NA} A_k y(T-k) + Σ_{k=0..NB-1} B_k u(T-k)
//
// in normalized units, with sampling interval Ts. C0 is the affine intercept
// capturing the operating point; the state-space realization used for
// controller synthesis drops it (controllers act on deviations), but
// including it in the regression keeps the dynamic coefficients unbiased.
type Model struct {
	A  []*mat.Matrix // NA matrices, each NY×NY
	B  []*mat.Matrix // NB matrices, each NY×NU; B[0] is the direct term
	C0 []float64     // NY intercepts
	NY int
	NU int
	Ts float64
}

// Identify fits a MIMO ARX model of the given orders to the dataset by
// linear least squares (QR with ridge fallback), the Go counterpart of
// passing recorded data to MATLAB's Box-Jenkins routine.
func Identify(d *Dataset, ord Orders, ts float64) (*Model, error) {
	if ord.NA < 1 || ord.NB < 1 {
		return nil, fmt.Errorf("sysid: orders must be at least 1, got %+v", ord)
	}
	n := d.Len()
	if n == 0 || len(d.U) != n {
		return nil, fmt.Errorf("%w: %d outputs, %d inputs", ErrData, n, len(d.U))
	}
	ny := len(d.Y[0])
	nu := len(d.U[0])
	start := ord.NA
	if ord.NB-1 > start {
		start = ord.NB - 1
	}
	rows := n - start
	regs := ord.NA*ny + ord.NB*nu + 1 // +1 for the intercept column
	if rows < 2*regs {
		return nil, fmt.Errorf("%w: %d usable samples for %d regressors", ErrData, rows, regs)
	}
	phi := mat.Zeros(rows, regs)
	tgt := mat.Zeros(rows, ny)
	for t := start; t < n; t++ {
		r := t - start
		col := 0
		for k := 1; k <= ord.NA; k++ {
			for j := 0; j < ny; j++ {
				phi.Set(r, col, d.Y[t-k][j])
				col++
			}
		}
		for k := 0; k < ord.NB; k++ {
			for j := 0; j < nu; j++ {
				phi.Set(r, col, d.U[t-k][j])
				col++
			}
		}
		phi.Set(r, col, 1) // intercept
		for j := 0; j < ny; j++ {
			tgt.Set(r, j, d.Y[t][j])
		}
	}
	theta, err := mat.LeastSquares(phi, tgt)
	if err != nil {
		return nil, fmt.Errorf("sysid: least squares failed: %w", err)
	}
	m := &Model{NY: ny, NU: nu, Ts: ts}
	col := 0
	for k := 0; k < ord.NA; k++ {
		ak := mat.Zeros(ny, ny)
		for j := 0; j < ny; j++ {
			for i := 0; i < ny; i++ {
				ak.Set(i, j, theta.At(col+j, i))
			}
		}
		m.A = append(m.A, ak)
		col += ny
	}
	for k := 0; k < ord.NB; k++ {
		bk := mat.Zeros(ny, nu)
		for j := 0; j < nu; j++ {
			for i := 0; i < ny; i++ {
				bk.Set(i, j, theta.At(col+j, i))
			}
		}
		m.B = append(m.B, bk)
		col += nu
	}
	m.C0 = make([]float64, ny)
	for i := 0; i < ny; i++ {
		m.C0[i] = theta.At(col, i)
	}
	return m, nil
}

// Predict returns the one-step-ahead prediction of y(t) given the dataset's
// history (used for fit metrics). t must be at least max(NA, NB-1).
func (m *Model) Predict(d *Dataset, t int) []float64 {
	y := make([]float64, m.NY)
	if m.C0 != nil {
		copy(y, m.C0)
	}
	for k := 1; k <= len(m.A); k++ {
		yk := m.A[k-1].MulVec(d.Y[t-k])
		for i := range y {
			y[i] += yk[i]
		}
	}
	for k := 0; k < len(m.B); k++ {
		uk := m.B[k].MulVec(d.U[t-k])
		for i := range y {
			y[i] += uk[i]
		}
	}
	return y
}

// Simulate runs the model open loop over the input sequence u, starting from
// zero history, and returns the simulated outputs.
func (m *Model) Simulate(u [][]float64) [][]float64 {
	ss := m.StateSpace()
	y, err := ss.Simulate(nil, u)
	if err != nil {
		return nil
	}
	return y
}

// StateSpace converts the ARX model to a block-companion state-space
// realization with state [y(T-1)..y(T-NA); u(T-1)..u(T-NB+1)] and direct
// feedthrough D = B_0.
func (m *Model) StateSpace() *lti.StateSpace {
	na, nb := len(m.A), len(m.B)
	ny, nu := m.NY, m.NU
	n := na*ny + (nb-1)*nu
	a := mat.Zeros(n, n)
	b := mat.Zeros(n, nu)
	c := mat.Zeros(ny, n)
	d := m.B[0].Clone()

	// C row block: y(T) = Σ A_k y(T-k) + Σ_{k>=1} B_k u(T-k) + B_0 u(T).
	for k := 0; k < na; k++ {
		c.SetSlice(0, k*ny, m.A[k])
	}
	for k := 1; k < nb; k++ {
		c.SetSlice(0, na*ny+(k-1)*nu, m.B[k])
	}
	// State update: the y(T) register receives C x + D u; lower registers shift.
	a.SetSlice(0, 0, c)
	b.SetSlice(0, 0, d)
	for k := 1; k < na; k++ {
		a.SetSlice(k*ny, (k-1)*ny, mat.Identity(ny))
	}
	// u(T) register.
	if nb > 1 {
		b.SetSlice(na*ny, 0, mat.Identity(nu))
		for k := 1; k < nb-1; k++ {
			a.SetSlice(na*ny+k*nu, na*ny+(k-1)*nu, mat.Identity(nu))
		}
	}
	return lti.MustStateSpace(a, b, c, d, m.Ts)
}

// ReducedStateSpace converts the model to state space and, when the
// realization is stable, reduces it to at most maxOrder states by balanced
// truncation. Reduction keeps the synthesized controller's dimension close
// to the paper's N=20 even for wide models.
func (m *Model) ReducedStateSpace(maxOrder int) *lti.StateSpace {
	ss := m.StateSpace()
	if ss.Order() <= maxOrder || !ss.IsStable() {
		return ss
	}
	red, err := ss.BalancedTruncation(maxOrder)
	if err != nil || !red.IsStable() {
		return ss
	}
	return red
}

// Stabilize shrinks the autoregressive part of the model until its
// state-space realization has spectral radius at most 0.99. Physical boards
// are open-loop stable, so an unstable or near-marginal fit is an artifact
// of noise; shrinking toward the static gain preserves the steady-state
// behaviour, and the 0.99 margin keeps the Lyapunov solves used for model
// reduction and H2 synthesis well conditioned.
func (m *Model) Stabilize() {
	for iter := 0; iter < 120; iter++ {
		r, err := mat.SpectralRadius(m.StateSpace().A)
		if err == nil && r <= 0.99 {
			return
		}
		for _, ak := range m.A {
			for i := 0; i < ak.Rows(); i++ {
				for j := 0; j < ak.Cols(); j++ {
					ak.Set(i, j, ak.At(i, j)*0.97)
				}
			}
		}
	}
}

// Metrics holds per-output fit quality for a model on a dataset.
type Metrics struct {
	RMSE []float64 // root-mean-square one-step prediction error
	R2   []float64 // coefficient of determination per output
}

// Evaluate computes one-step-ahead prediction metrics of the model on d.
func (m *Model) Evaluate(d *Dataset) (Metrics, error) {
	start := len(m.A)
	if len(m.B)-1 > start {
		start = len(m.B) - 1
	}
	n := d.Len()
	if n <= start {
		return Metrics{}, fmt.Errorf("%w: %d samples with startup %d", ErrData, n, start)
	}
	ny := m.NY
	sse := make([]float64, ny)
	mean := make([]float64, ny)
	for t := start; t < n; t++ {
		for j := 0; j < ny; j++ {
			mean[j] += d.Y[t][j]
		}
	}
	cnt := float64(n - start)
	for j := range mean {
		mean[j] /= cnt
	}
	sst := make([]float64, ny)
	for t := start; t < n; t++ {
		pred := m.Predict(d, t)
		for j := 0; j < ny; j++ {
			e := d.Y[t][j] - pred[j]
			sse[j] += e * e
			dm := d.Y[t][j] - mean[j]
			sst[j] += dm * dm
		}
	}
	met := Metrics{RMSE: make([]float64, ny), R2: make([]float64, ny)}
	for j := 0; j < ny; j++ {
		met.RMSE[j] = math.Sqrt(sse[j] / cnt)
		if sst[j] > 0 {
			met.R2[j] = 1 - sse[j]/sst[j]
		}
	}
	return met, nil
}
