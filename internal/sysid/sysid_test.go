package sysid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"yukta/internal/mat"
)

func TestScalingRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mn := rng.NormFloat64() * 100
		span := math.Abs(rng.NormFloat64()*100) + 0.1
		s := Scaling{Min: mn, Max: mn + span}
		x := mn + rng.Float64()*span
		back := s.Denormalize(s.Normalize(x))
		return math.Abs(back-x) < 1e-9*(1+math.Abs(x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScalingEndpoints(t *testing.T) {
	s := Scaling{Min: 0.2, Max: 2.0}
	if n := s.Normalize(0.2); math.Abs(n+1) > 1e-12 {
		t.Fatalf("Normalize(Min) = %v, want -1", n)
	}
	if n := s.Normalize(2.0); math.Abs(n-1) > 1e-12 {
		t.Fatalf("Normalize(Max) = %v, want 1", n)
	}
	if n := s.Normalize(1.1); math.Abs(n) > 1e-12 {
		t.Fatalf("Normalize(mid) = %v, want 0", n)
	}
	// A 0.1 step on the 1.8 range is 2*0.1/1.8 in normalized units.
	if q := s.QuantumNormalized(0.1); math.Abs(q-2*0.1/1.8) > 1e-12 {
		t.Fatalf("QuantumNormalized = %v", q)
	}
}

func TestScalingDegenerate(t *testing.T) {
	s := Scaling{Min: 1, Max: 1}
	if s.Normalize(1) != 0 || s.QuantumNormalized(0.1) != 0 {
		t.Fatal("degenerate scaling must map to zero")
	}
}

// synthData generates data from a known ARX system plus optional noise.
func synthData(rng *rand.Rand, n int, noise float64) (*Dataset, *Model) {
	true_ := &Model{
		NY: 2, NU: 2, Ts: 0.5,
		A: []*mat.Matrix{
			mat.FromRows([][]float64{{0.5, 0.1}, {0.0, 0.4}}),
			mat.FromRows([][]float64{{0.1, 0.0}, {0.05, 0.1}}),
		},
		B: []*mat.Matrix{
			mat.FromRows([][]float64{{0.3, 0.0}, {0.1, 0.2}}),
			mat.FromRows([][]float64{{0.1, 0.05}, {0.0, 0.1}}),
		},
	}
	d := &Dataset{}
	yHist := [][]float64{{0, 0}, {0, 0}}
	uHist := [][]float64{{0, 0}, {0, 0}}
	u1 := PRBS(n, 3, 0.8, rng)
	u2 := PRBS(n, 5, 0.8, rng)
	for t := 0; t < n; t++ {
		u := []float64{u1[t], u2[t]}
		y := make([]float64, 2)
		for k := 0; k < 2; k++ {
			ay := true_.A[k].MulVec(yHist[len(yHist)-1-k])
			for i := range y {
				y[i] += ay[i]
			}
		}
		bu := true_.B[0].MulVec(u)
		b1 := true_.B[1].MulVec(uHist[len(uHist)-1])
		for i := range y {
			y[i] += bu[i] + b1[i] + noise*rng.NormFloat64()
		}
		d.Append(u, y)
		yHist = append(yHist, y)
		uHist = append(uHist, u)
	}
	return d, true_
}

func TestIdentifyRecoversKnownSystem(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d, true_ := synthData(rng, 600, 0)
	m, err := Identify(d, Orders{NA: 2, NB: 2}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for k := range true_.A {
		if !m.A[k].Equal(true_.A[k], 1e-6) {
			t.Fatalf("A[%d] mismatch:\n%v\nwant\n%v", k, m.A[k], true_.A[k])
		}
	}
	for k := range true_.B {
		if !m.B[k].Equal(true_.B[k], 1e-6) {
			t.Fatalf("B[%d] mismatch:\n%v\nwant\n%v", k, m.B[k], true_.B[k])
		}
	}
}

func TestIdentifyNoisyStillAccurate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d, true_ := synthData(rng, 3000, 0.05)
	m, err := Identify(d, Orders{NA: 2, NB: 2}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for k := range true_.A {
		if !m.A[k].Equal(true_.A[k], 0.05) {
			t.Fatalf("noisy A[%d] off:\n%v\nwant\n%v", k, m.A[k], true_.A[k])
		}
	}
	met, err := m.Evaluate(d)
	if err != nil {
		t.Fatal(err)
	}
	for j, r2 := range met.R2 {
		if r2 < 0.9 {
			t.Fatalf("R2[%d] = %v, want > 0.9", j, r2)
		}
	}
}

func TestStateSpaceMatchesARXSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d, _ := synthData(rng, 400, 0)
	m, err := Identify(d, Orders{NA: 2, NB: 2}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ss := m.StateSpace()
	if ss.Inputs() != 2 || ss.Outputs() != 2 {
		t.Fatalf("state space shape %dx%d", ss.Outputs(), ss.Inputs())
	}
	// Drive both representations with the same input; outputs must agree.
	u := make([][]float64, 50)
	for t := range u {
		u[t] = []float64{math.Sin(float64(t) * 0.3), math.Cos(float64(t) * 0.17)}
	}
	ySS, err := ss.Simulate(nil, u)
	if err != nil {
		t.Fatal(err)
	}
	// ARX recursion with zero history.
	yARX := make([][]float64, len(u))
	hist := &Dataset{}
	hist.Append([]float64{0, 0}, []float64{0, 0})
	hist.Append([]float64{0, 0}, []float64{0, 0})
	for t := range u {
		y := make([]float64, 2)
		nHist := hist.Len()
		for k := 1; k <= 2; k++ {
			ay := m.A[k-1].MulVec(hist.Y[nHist-k])
			for i := range y {
				y[i] += ay[i]
			}
		}
		b0 := m.B[0].MulVec(u[t])
		b1 := m.B[1].MulVec(hist.U[nHist-1])
		for i := range y {
			y[i] += b0[i] + b1[i]
		}
		yARX[t] = y
		hist.Append(u[t], y)
	}
	for ti := range u {
		for j := 0; j < 2; j++ {
			if math.Abs(ySS[ti][j]-yARX[ti][j]) > 1e-9 {
				t.Fatalf("t=%d output %d: SS %v vs ARX %v", ti, j, ySS[ti][j], yARX[ti][j])
			}
		}
	}
}

func TestIdentifyOrder4Shape(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d, _ := synthData(rng, 800, 0.01)
	m, err := Identify(d, PaperOrders, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.A) != 4 || len(m.B) != 4 {
		t.Fatalf("orders %d/%d, want 4/4", len(m.A), len(m.B))
	}
	ss := m.StateSpace()
	// 4 output lags * 2 outputs + 3 input lags * 2 inputs = 14 states.
	if ss.Order() != 14 {
		t.Fatalf("state order %d, want 14", ss.Order())
	}
}

func TestReducedStateSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d, _ := synthData(rng, 800, 0.01)
	m, err := Identify(d, PaperOrders, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	m.Stabilize()
	red := m.ReducedStateSpace(8)
	if red.Order() > 8 && m.StateSpace().IsStable() {
		t.Fatalf("reduction kept %d states", red.Order())
	}
}

func TestIdentifyErrors(t *testing.T) {
	if _, err := Identify(&Dataset{}, PaperOrders, 0.5); err == nil {
		t.Fatal("expected error on empty dataset")
	}
	d := &Dataset{}
	for i := 0; i < 5; i++ {
		d.Append([]float64{0}, []float64{0})
	}
	if _, err := Identify(d, PaperOrders, 0.5); err == nil {
		t.Fatal("expected error on too-short dataset")
	}
	if _, err := Identify(d, Orders{NA: 0, NB: 1}, 0.5); err == nil {
		t.Fatal("expected error on zero order")
	}
}

func TestStabilize(t *testing.T) {
	m := &Model{
		NY: 1, NU: 1, Ts: 0.5,
		A: []*mat.Matrix{mat.New(1, 1, []float64{1.3})},
		B: []*mat.Matrix{mat.New(1, 1, []float64{1})},
	}
	if m.StateSpace().IsStable() {
		t.Fatal("test premise broken: model should start unstable")
	}
	m.Stabilize()
	if !m.StateSpace().IsStable() {
		t.Fatal("Stabilize failed to produce a stable model")
	}
}

func TestPRBSProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	seq := PRBS(1000, 4, 0.7, rng)
	for i, v := range seq {
		if v != 0.7 && v != -0.7 {
			t.Fatalf("PRBS[%d] = %v, want ±0.7", i, v)
		}
	}
	// Holds for 4 samples.
	for i := 0; i+3 < len(seq); i += 4 {
		if seq[i] != seq[i+1] || seq[i] != seq[i+3] {
			t.Fatalf("PRBS does not hold at %d", i)
		}
	}
	// Roughly balanced.
	var pos int
	for _, v := range seq {
		if v > 0 {
			pos++
		}
	}
	if pos < 300 || pos > 700 {
		t.Fatalf("PRBS unbalanced: %d positive of %d", pos, len(seq))
	}
}

func TestStaircaseLevels(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	levels := []float64{-1, -0.5, 0, 0.5, 1}
	seq := Staircase(500, 6, levels, rng)
	allowed := map[float64]bool{}
	for _, l := range levels {
		allowed[l] = true
	}
	seen := map[float64]bool{}
	for i, v := range seq {
		if !allowed[v] {
			t.Fatalf("Staircase[%d] = %v not in levels", i, v)
		}
		seen[v] = true
	}
	if len(seen) < 3 {
		t.Fatalf("staircase visited only %d levels", len(seen))
	}
}
