package sysid

import "math/rand"

// PRBS returns a pseudo-random binary sequence of length n taking values
// ±amplitude, holding each value for hold samples. PRBS excitation is the
// standard input for black-box identification: it is persistently exciting
// across a wide frequency band.
func PRBS(n, hold int, amplitude float64, rng *rand.Rand) []float64 {
	if hold < 1 {
		hold = 1
	}
	out := make([]float64, n)
	v := amplitude
	for i := 0; i < n; i++ {
		if i%hold == 0 {
			if rng.Intn(2) == 0 {
				v = amplitude
			} else {
				v = -amplitude
			}
		}
		out[i] = v
	}
	return out
}

// Staircase returns a sequence of length n that holds randomly chosen levels
// from the given set, switching every hold samples. It matches how
// identification drives quantized actuators such as frequency steps and core
// counts (the paper sets inputs "in a variety of ways").
func Staircase(n, hold int, levels []float64, rng *rand.Rand) []float64 {
	if hold < 1 {
		hold = 1
	}
	out := make([]float64, n)
	v := levels[rng.Intn(len(levels))]
	for i := 0; i < n; i++ {
		if i%hold == 0 {
			v = levels[rng.Intn(len(levels))]
		}
		out[i] = v
	}
	return out
}
