package sysid

import (
	"math/rand"
	"testing"
)

func TestSelectOrderFindsTrueOrder(t *testing.T) {
	// Data from a known order-2 system: order selection should prefer
	// orders >= 2 over order 1, and not reward over-fitting much beyond.
	rng := rand.New(rand.NewSource(12))
	d, _ := synthData(rng, 2500, 0.03)
	scores, best, err := SelectOrder(d, 5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 5 {
		t.Fatalf("got %d scores, want 5", len(scores))
	}
	if best.NA < 2 {
		t.Fatalf("selected order %d, want >= 2 (true order 2)", best.NA)
	}
	// Validation error at the true order must clearly beat order 1.
	var rmse1, rmse2 float64
	for _, s := range scores {
		if s.Orders.NA == 1 {
			rmse1 = s.ValRMSE
		}
		if s.Orders.NA == 2 {
			rmse2 = s.ValRMSE
		}
	}
	if rmse2 >= rmse1 {
		t.Fatalf("order 2 RMSE %v should beat order 1 RMSE %v", rmse2, rmse1)
	}
}

func TestSelectOrderValidationGuards(t *testing.T) {
	if _, _, err := SelectOrder(&Dataset{}, 4, 0.5); err == nil {
		t.Fatal("expected error on empty dataset")
	}
	rng := rand.New(rand.NewSource(13))
	d, _ := synthData(rng, 400, 0.01)
	if _, _, err := SelectOrder(d, 0, 0.5); err == nil {
		t.Fatal("expected error on zero maxOrder")
	}
}

func TestSelectOrderTrainBeatsValidation(t *testing.T) {
	// Training RMSE should not exceed validation RMSE systematically for the
	// well-specified orders (sanity of the split bookkeeping).
	rng := rand.New(rand.NewSource(14))
	d, _ := synthData(rng, 2000, 0.05)
	scores, _, err := SelectOrder(d, 4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range scores {
		if s.TrainRMSE > s.ValRMSE*1.5 {
			t.Fatalf("order %d: train RMSE %v wildly above validation %v",
				s.Orders.NA, s.TrainRMSE, s.ValRMSE)
		}
	}
}
