package optimizer

import (
	"math"
	"testing"
)

func cfg() Config {
	return Config{
		Initial:         []float64{4, 2.0, 0.2}, // perf, bigW, littleW
		UpStep:          []float64{0.8, 0.15, 0.015},
		DownStep:        []float64{0.25, 0.4, 0.04},
		Lo:              []float64{0.5, 0.5, 0.05},
		Hi:              []float64{12, 3.0, 0.3},
		SettleIntervals: 2,
		Smoothing:       0.5,
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("expected error on empty config")
	}
	c := cfg()
	c.UpStep = c.UpStep[:2]
	if _, err := New(c); err == nil {
		t.Fatal("expected arity error")
	}
	c = cfg()
	c.Lo[0] = 100
	if _, err := New(c); err == nil {
		t.Fatal("expected Lo>Hi error")
	}
}

func TestClimbsWhileImproving(t *testing.T) {
	o, err := New(cfg())
	if err != nil {
		t.Fatal(err)
	}
	// Feed monotonically improving E×D: the optimizer must keep raising the
	// performance target.
	exd := 10.0
	start := o.Targets()[0]
	for i := 0; i < 40; i++ {
		exd *= 0.97
		o.Update(exd)
	}
	if got := o.Targets()[0]; got <= start {
		t.Fatalf("perf target %v did not climb from %v", got, start)
	}
	if o.Moves() == 0 {
		t.Fatal("no moves issued")
	}
}

func TestConvergesToBowlMinimum(t *testing.T) {
	// E×D responds to the targets through a quadratic bowl with its minimum
	// at perf = 6: the optimizer must settle near it rather than pinning at
	// a clamp.
	c := cfg()
	c.Smoothing = 0 // direct feedback
	o, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	bowl := func(perf float64) float64 { return (perf-6)*(perf-6) + 1 }
	for i := 0; i < 400; i++ {
		o.Update(bowl(o.Targets()[0]))
	}
	got := o.Targets()[0]
	if math.Abs(got-6) > 1.5 {
		t.Fatalf("perf target settled at %v, want near 6", got)
	}
}

func TestTargetsStayClamped(t *testing.T) {
	// E×D genuinely improves with the perf target all the way to the clamp:
	// the optimizer must ride up to (and hover at) Hi without ever leaving
	// the clamp box.
	c := cfg()
	c.Smoothing = 0
	o, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		o.Update(100 / (1 + o.Targets()[0]))
		for j, v := range o.Targets() {
			if v < c.Lo[j]-1e-12 || v > c.Hi[j]+1e-12 {
				t.Fatalf("target %d = %v outside [%v,%v]", j, v, c.Lo[j], c.Hi[j])
			}
		}
	}
	if got := o.Targets()[0]; got < c.Hi[0]-3*c.UpStep[0] {
		t.Fatalf("perf target %v should hover near the clamp %v", got, c.Hi[0])
	}
}

func TestSettlePeriodHoldsTargets(t *testing.T) {
	c := cfg()
	c.SettleIntervals = 5
	o, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	before := o.Targets()
	for i := 0; i < 4; i++ {
		o.Update(5)
	}
	after := o.Targets()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("targets moved before the settle period elapsed")
		}
	}
	o.Update(5) // 5th tick triggers a move
	if o.Moves() != 1 {
		t.Fatalf("moves = %d, want 1", o.Moves())
	}
}

func TestInitialTargetsClamped(t *testing.T) {
	c := cfg()
	c.Initial[1] = 99
	o, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	if got := o.Targets()[1]; got != c.Hi[1] {
		t.Fatalf("initial target not clamped: %v", got)
	}
}
