// Package optimizer implements the target-search module of the paper's
// Section IV-D. Each SSV controller is paired with an optimizer that reads
// the measured outputs, computes the resulting E×D, and nudges the output
// targets handed to the controller toward lower E×D: while a move improves
// E×D the optimizer keeps pushing in that direction (raise performance a
// lot, allow a little more power); when a move degrades E×D it reverts the
// move and walks the other way (give up a little performance, reclaim a lot
// of power).
package optimizer

import "fmt"

// Config describes one optimizer instance.
type Config struct {
	// Initial are the starting targets in physical units.
	Initial []float64
	// UpStep is added to each target when optimizing "up" (the
	// performance-seeking direction); DownStep is subtracted when walking
	// back. Per §IV-D the performance entry is large in UpStep and small in
	// DownStep, while power entries are the reverse.
	UpStep, DownStep []float64
	// Lo and Hi clamp each target (e.g. power targets stay below the safe
	// limits, §V-A).
	Lo, Hi []float64
	// SettleIntervals is how many control intervals to wait between moves so
	// the controller can converge to the last targets first.
	SettleIntervals int
	// Smoothing is the exponential factor applied to the measured E×D rate
	// (0 = no smoothing).
	Smoothing float64
}

// Optimizer walks output targets toward lower E×D.
type Optimizer struct {
	cfg     Config
	targets []float64
	prev    []float64

	dirUp    bool
	lastExD  float64
	haveBase bool
	ema      float64
	emaInit  bool
	tick     int
	moves    int
}

// New validates the configuration and returns an optimizer positioned at the
// initial targets, optimizing upward first.
func New(cfg Config) (*Optimizer, error) {
	n := len(cfg.Initial)
	if n == 0 {
		return nil, fmt.Errorf("optimizer: no targets")
	}
	for name, s := range map[string][]float64{
		"UpStep": cfg.UpStep, "DownStep": cfg.DownStep, "Lo": cfg.Lo, "Hi": cfg.Hi,
	} {
		if len(s) != n {
			return nil, fmt.Errorf("optimizer: %s has %d entries, want %d", name, len(s), n)
		}
	}
	for i := range cfg.Initial {
		if cfg.Lo[i] > cfg.Hi[i] {
			return nil, fmt.Errorf("optimizer: Lo[%d] > Hi[%d]", i, i)
		}
	}
	if cfg.SettleIntervals < 1 {
		cfg.SettleIntervals = 4
	}
	o := &Optimizer{
		cfg:     cfg,
		targets: clampAll(append([]float64(nil), cfg.Initial...), cfg.Lo, cfg.Hi),
		dirUp:   true,
	}
	o.prev = append([]float64(nil), o.targets...)
	return o, nil
}

// Targets returns the current physical targets.
func (o *Optimizer) Targets() []float64 {
	return append([]float64(nil), o.targets...)
}

// Moves returns how many target moves have been issued (the paper compares
// optimizer convergence between SSV and LQG in §VI-B using this count).
func (o *Optimizer) Moves() int { return o.moves }

// Update feeds one control interval's measured E×D rate (e.g. instantaneous
// Power/Perf², which is proportional to E×D) and returns the targets for the
// next interval — usually unchanged, moving only after the settle period.
func (o *Optimizer) Update(exd float64) []float64 {
	return o.UpdateInto(make([]float64, len(o.targets)), exd)
}

// UpdateInto is Update writing the next targets into dst (grown if needed)
// instead of allocating; sessions call it every control interval with a
// per-session scratch slice. The returned slice is dst, safe for the caller
// to modify.
func (o *Optimizer) UpdateInto(dst []float64, exd float64) []float64 {
	if !o.emaInit {
		o.ema = exd
		o.emaInit = true
	} else {
		a := o.cfg.Smoothing
		o.ema = a*o.ema + (1-a)*exd
	}
	o.tick++
	if o.tick < o.cfg.SettleIntervals {
		return o.targetsInto(dst)
	}
	o.tick = 0

	switch {
	case !o.haveBase:
		o.lastExD = o.ema
		o.haveBase = true
	case o.ema <= o.lastExD*0.99:
		// Strict improvement: keep direction, move the baseline.
		o.lastExD = o.ema
	default:
		// Flat or worse: revert the move and walk the other way. Without
		// the flat case, targets pinned at a clamp would register as
		// "improving" forever and the optimizer would never back off.
		copy(o.targets, o.prev)
		o.dirUp = !o.dirUp
		o.lastExD = o.ema
	}
	copy(o.prev, o.targets)
	if o.dirUp {
		for i := range o.targets {
			o.targets[i] += o.cfg.UpStep[i]
		}
	} else {
		for i := range o.targets {
			o.targets[i] -= o.cfg.DownStep[i]
		}
	}
	o.targets = clampAll(o.targets, o.cfg.Lo, o.cfg.Hi)
	// A move fully absorbed by the clamps is a no-op: flip so the next move
	// explores the feasible side instead of idling at the boundary.
	pinned := true
	for i := range o.targets {
		if o.targets[i] != o.prev[i] {
			pinned = false
			break
		}
	}
	if pinned {
		o.dirUp = !o.dirUp
	}
	o.moves++
	return o.targetsInto(dst)
}

// targetsInto copies the current targets into dst, growing it if needed.
func (o *Optimizer) targetsInto(dst []float64) []float64 {
	if cap(dst) < len(o.targets) {
		dst = make([]float64, len(o.targets))
	}
	dst = dst[:len(o.targets)]
	copy(dst, o.targets)
	return dst
}

func clampAll(v, lo, hi []float64) []float64 {
	for i := range v {
		if v[i] < lo[i] {
			v[i] = lo[i]
		}
		if v[i] > hi[i] {
			v[i] = hi[i]
		}
	}
	return v
}
