package heuristic

import (
	"testing"
	"time"

	"yukta/internal/board"
	"yukta/internal/series"
	"yukta/internal/workload"
)

// runScheme executes an app under the given OS+HW heuristic pair and
// returns the big-power series and final sensors.
func runScheme(t *testing.T, hw interface {
	Step(board.Sensors, *board.Board)
}, os interface {
	Step(board.Sensors, *board.Board, int)
}, appName string, maxSteps int) (*series.Series, board.Sensors, *board.Board) {
	t.Helper()
	b := board.New(board.DefaultConfig())
	w := workload.MustLookup(appName)
	pow := series.New("bigW")
	var s board.Sensors
	for i := 0; i < maxSteps && !w.Done(); i++ {
		s = b.Run(w, 500*time.Millisecond)
		hw.Step(s, b)
		os.Step(s, b, w.Profile().Threads)
		pow.Add(s.TimeS, s.BigPowerW)
	}
	return pow, s, b
}

func TestCoordinatedKeepsPowerNearLimit(t *testing.T) {
	pow, s, _ := runScheme(t, &CoordinatedHW{Lim: DefaultLimits()}, &CoordinatedOS{}, "blackscholes", 1200)
	// Steady-state power should sit near (but mostly under) the 3.3 W limit.
	mean := pow.MeanAbove(20)
	if mean < 1.5 || mean > 3.6 {
		t.Fatalf("steady big power %v W, want near 3.3", mean)
	}
	// Transient spikes at phase changes are expected (Fig. 10a shows them),
	// but sustained violation is not: only a small fraction of samples may
	// exceed the limit by more than 20%.
	var high int
	for _, v := range pow.V {
		if v > 1.2*DefaultLimits().BigPowerW {
			high++
		}
	}
	if frac := float64(high) / float64(pow.Len()); frac > 0.08 {
		t.Fatalf("%.0f%% of samples far above the power limit", frac*100)
	}
	_ = s
}

func TestDecoupledOscillatesMore(t *testing.T) {
	powC, _, _ := runScheme(t, &CoordinatedHW{Lim: DefaultLimits()}, &CoordinatedOS{}, "blackscholes", 1200)
	powD, sD, _ := runScheme(t, &DecoupledHW{Lim: DefaultLimits()}, DecoupledOS{}, "blackscholes", 1200)
	// The decoupled scheme's power sweeps are larger: it races to maximum
	// and lets the firmware throttle it, so its swings span a wider range
	// than the coordinated governor's sawtooth around the limit.
	stC := powC.Summarize()
	stD := powD.Summarize()
	if stD.Std <= stC.Std {
		t.Fatalf("decoupled power std (%v) should exceed coordinated (%v)", stD.Std, stC.Std)
	}
	// And it fights the firmware: emergencies fire.
	if sD.EmergencyEvents == 0 {
		t.Fatal("decoupled heuristic should trigger firmware emergencies")
	}
}

func TestDecoupledSlowerThanCoordinated(t *testing.T) {
	_, sC, bC := runScheme(t, &CoordinatedHW{Lim: DefaultLimits()}, &CoordinatedOS{}, "blackscholes", 3000)
	_, sD, bD := runScheme(t, &DecoupledHW{Lim: DefaultLimits()}, DecoupledOS{}, "blackscholes", 3000)
	if sD.TimeS <= sC.TimeS {
		t.Fatalf("decoupled (%v s) should be slower than coordinated (%v s)", sD.TimeS, sC.TimeS)
	}
	// And less energy-efficient in E×D.
	exdC := bC.EnergyJ() * sC.TimeS
	exdD := bD.EnergyJ() * sD.TimeS
	if exdD <= exdC {
		t.Fatalf("decoupled E×D (%v) should exceed coordinated (%v)", exdD, exdC)
	}
}

func TestCoordinatedOSSplitsByCapacity(t *testing.T) {
	b := board.New(board.DefaultConfig())
	osc := &CoordinatedOS{}
	s := board.Sensors{}
	osc.Step(s, b, 8)
	p := b.Placement()
	// HMP big-first up-migration: all 8 CPU-heavy threads fit within two per
	// big core, so the big cluster takes everything.
	if p.ThreadsBig != 8 || p.ThreadsLittle != 0 {
		t.Fatalf("threadsBig = %d / little %d, want 8/0 (big-first)", p.ThreadsBig, p.ThreadsLittle)
	}
	if p.ThreadsPerBigCore != 2 {
		t.Fatalf("tpb = %v, want 2", p.ThreadsPerBigCore)
	}
	// Beyond two per big core the scheduler spills to little.
	osc.Step(s, b, 10)
	if p := b.Placement(); p.ThreadsLittle != 2 {
		t.Fatalf("little overflow = %d, want 2", p.ThreadsLittle)
	}
	// Zero threads: placement resets.
	osc.Step(s, b, 0)
	if b.Placement().ThreadsBig != 0 {
		t.Fatal("zero threads must clear placement")
	}
}

func TestDecoupledOSRoundRobin(t *testing.T) {
	b := board.New(board.DefaultConfig())
	DecoupledOS{}.Step(board.Sensors{}, b, 8)
	p := b.Placement()
	// 8 cores, 8 threads: 4 each, one per core.
	if p.ThreadsBig != 4 {
		t.Fatalf("threadsBig = %d, want 4", p.ThreadsBig)
	}
	if p.ThreadsPerBigCore != 1 || p.ThreadsPerLittleCore != 1 {
		t.Fatalf("round robin should spread one per core: %+v", p)
	}
}

func TestCoordinatedHWShedsIdleCores(t *testing.T) {
	b := board.New(board.DefaultConfig())
	// OS placed only 2 threads on big, packed 1/core.
	b.Place(board.Placement{ThreadsBig: 2, ThreadsPerBigCore: 1, ThreadsPerLittleCore: 1})
	hw := &CoordinatedHW{Lim: DefaultLimits()}
	hw.Step(board.Sensors{BigPowerW: 1, LittlePowerW: 0.1, TempC: 50}, b)
	if b.BigCores() > 2 {
		t.Fatalf("bigCores = %d after demand of 2 threads", b.BigCores())
	}
}

func TestCoordinatedHWBacksOffOnViolation(t *testing.T) {
	b := board.New(board.DefaultConfig())
	b.Place(board.Placement{ThreadsBig: 8, ThreadsPerBigCore: 2, ThreadsPerLittleCore: 1})
	hw := &CoordinatedHW{Lim: DefaultLimits()}
	f0 := b.BigFreq()
	hw.Step(board.Sensors{BigPowerW: 4.5, LittlePowerW: 0.1, TempC: 60}, b)
	if b.BigFreq() >= f0 {
		t.Fatalf("frequency %v did not drop on power violation", b.BigFreq())
	}
	// The safe frequency should be a single decisive move, not a tiny step.
	if b.BigFreq() > f0-0.1 {
		t.Fatalf("backoff too timid: %v from %v", b.BigFreq(), f0)
	}
}

func TestDecoupledHWRequestsMax(t *testing.T) {
	// The Performance governor requests the maximum operating point
	// unconditionally — violations are the firmware's problem.
	cfg := board.DefaultConfig()
	b := board.New(cfg)
	b.SetBigFreq(1.0)
	b.SetBigCores(2)
	hw := &DecoupledHW{Lim: DefaultLimits()}
	hw.Step(board.Sensors{BigPowerW: 4.0, TempC: 85}, b)
	if b.BigFreq() != cfg.Big.FreqMaxGHz || b.BigCores() != cfg.Big.MaxCores {
		t.Fatalf("governor should request max: %v GHz, %d cores", b.BigFreq(), b.BigCores())
	}
}

func TestCoordinatedOSSeedPlacement(t *testing.T) {
	b := board.New(board.DefaultConfig())
	osc := &CoordinatedOS{}
	// Seeded at 2 big threads, the rate-limited balancer must walk toward
	// the 8-thread big-first target one migration per interval, not snap.
	osc.SeedPlacement(2)
	osc.Step(board.Sensors{}, b, 8)
	if p := b.Placement(); p.ThreadsBig != 3 {
		t.Fatalf("threadsBig after one step = %d, want 3 (seeded 2 + one migration)", p.ThreadsBig)
	}
	// Negative seeds clamp to zero.
	osc2 := &CoordinatedOS{}
	osc2.SeedPlacement(-4)
	osc2.Step(board.Sensors{}, b, 8)
	if p := b.Placement(); p.ThreadsBig != 1 {
		t.Fatalf("threadsBig after negative seed = %d, want 1", p.ThreadsBig)
	}
}
