// Package heuristic implements the two heuristic baseline schemes of the
// paper's Table IV:
//
//   - Coordinated heuristic — an HMP-derived OS scheduler that uses the
//     number, type and frequency of the available cores to place threads,
//     paired with a hardware controller that raises frequency and core count
//     while operation is safe and uses the thread distribution to pick a
//     lower safe frequency on a violation. This is the paper's baseline,
//     representative of industry controllers in big.LITTLE systems.
//
//   - Decoupled heuristic — a round-robin OS scheduler and a
//     Performance-governor-style hardware controller that pins frequency and
//     core count at maximum and, on a violation, temporarily backs off
//     frequency first and then cores, irrespective of the thread
//     distribution.
package heuristic

import (
	"math"

	"yukta/internal/board"
)

// Limits are the safe operating limits the evaluation uses (paper §V-A:
// 3.3 W big, 0.33 W little, 79 °C — just below the firmware emergency
// thresholds).
type Limits struct {
	// BigPowerW, LittlePowerW and TempC are the per-cluster power caps in
	// watts and the temperature cap in °C.
	BigPowerW, LittlePowerW, TempC float64
}

// DefaultLimits returns the paper's evaluation limits.
func DefaultLimits() Limits {
	return Limits{BigPowerW: 3.3, LittlePowerW: 0.33, TempC: 79}
}

// CoordinatedHW raises frequency and core count while operation is safe and
// finds a lower safe frequency when power or temperature exceed the limits,
// using the thread distribution (the OS layer's actuations) to decide how
// many cores each cluster needs.
type CoordinatedHW struct {
	// Lim holds the safe operating limits the controller enforces.
	Lim Limits
	// Conservative bounds the racing climb by a frequency ceiling captured
	// at engagement (SeedCeiling): the controller still backs off on
	// violations and recovers toward the ceiling when safe, but never
	// chases performance above the operating point it was handed. This is
	// the posture a supervisory fallback wants — hold the last point the
	// plant is known to tolerate rather than race into a compromised one.
	Conservative bool

	ceilBig, ceilLittle float64
	haveCeil            bool
	tick                int
}

// SeedCeiling sets the conservative climb ceiling from the frequencies
// currently in effect on the plant (a supervisory bumpless transfer passes
// the effective, post-throttle values). Non-positive values leave the
// corresponding cluster unbounded.
func (c *CoordinatedHW) SeedCeiling(bigGHz, littleGHz float64) {
	c.ceilBig, c.ceilLittle = bigGHz, littleGHz
	c.haveCeil = true
}

// Step implements one control interval.
func (c *CoordinatedHW) Step(s board.Sensors, b *board.Board) {
	cfg := b.Config()
	place := b.Placement()

	// Cores follow thread demand: keep just enough cores online to host the
	// OS's placement at its chosen packing. The thread distribution is the
	// coordination signal from the OS layer.
	needBig := coresFor(place.ThreadsBig, place.ThreadsPerBigCore, cfg.Big.MaxCores)
	b.SetBigCores(needBig)
	needLittle := coresFor(place.ThreadsLittle, place.ThreadsPerLittleCore, cfg.Little.MaxCores)
	b.SetLittleCores(needLittle)

	// Frequency: race up while safe, back off crudely on a violation. Like
	// the interactive/ondemand governors this heuristic derives from, the
	// climb is aggressive (several steps per sampling period — "race to
	// idle") and the backoff is a fixed fraction, not a calibrated power
	// model, so the power rides a sawtooth around the limit with the
	// overshoot peaks and valleys of the paper's Figure 10(a).
	c.tick++
	adjust := func(power, limit, freq, step, fmax float64, set func(float64)) {
		switch {
		case power > limit:
			set(math.Max(freq*0.85, 0.2))
		default:
			set(math.Min(freq+2*step, fmax))
		}
	}
	fmaxBig, fmaxLittle := cfg.Big.FreqMaxGHz, cfg.Little.FreqMaxGHz
	if c.Conservative && c.haveCeil {
		if c.ceilBig > 0 {
			fmaxBig = math.Min(fmaxBig, c.ceilBig)
		}
		if c.ceilLittle > 0 {
			fmaxLittle = math.Min(fmaxLittle, c.ceilLittle)
		}
	}
	adjust(s.BigPowerW, c.Lim.BigPowerW, b.BigFreq(), cfg.Big.FreqStepGHz, fmaxBig, b.SetBigFreq)
	adjust(s.LittlePowerW, c.Lim.LittlePowerW, b.LittleFreq(), cfg.Little.FreqStepGHz, fmaxLittle, b.SetLittleFreq)

	// Temperature overrides: the big cluster dominates the hot spot.
	if s.TempC > c.Lim.TempC {
		b.SetBigFreq(b.BigFreq() - 3*cfg.Big.FreqStepGHz)
	} else if s.TempC > c.Lim.TempC-1.5 {
		b.SetBigFreq(b.BigFreq() - cfg.Big.FreqStepGHz)
	}
}

// CoordinatedOS is the HMP-derived scheduler modified to optimize E×D: it
// reads the number, type and frequency of the available cores (the HW
// layer's actuations) and splits threads by cluster capacity, packing
// threads when that frees cores to power down.
type CoordinatedOS struct {
	// BigLittleIPCRatio approximates how much faster a big core executes a
	// thread than a little core at equal frequency.
	BigLittleIPCRatio float64

	tbNow   int
	started bool
}

// SeedPlacement initializes the migration-rate-limited placement state from
// the split currently in effect on the board, so a scheduler engaged
// mid-run (a supervisory bumpless transfer) walks from the plant's real
// thread distribution instead of snapping to its own cold-start target in
// one interval.
func (c *CoordinatedOS) SeedPlacement(threadsBig int) {
	if threadsBig < 0 {
		threadsBig = 0
	}
	c.tbNow = threadsBig
	c.started = true
}

// Step implements one control interval; threads is the number of runnable
// application threads the scheduler sees.
//
// Placement follows HMP's big-first up-migration: CPU-intensive threads are
// classified as "big" tasks and migrate to the big cluster, packing up to
// two per core before any spill to the little cores; the little cluster is
// used only for overflow. This is the documented behaviour of the
// ARM/Linaro/Samsung global-task-scheduling stack the paper's baseline
// derives from — and the reason the baseline leaves the near-free little
// cluster underused, which is a large part of the headroom Yukta recovers.
// The coordination signals are still honoured: the split adapts to the core
// counts the HW layer brings online, and packing tightens under power
// pressure so the HW layer can gate cores (the consolidation of [24]).
func (c *CoordinatedOS) Step(s board.Sensors, b *board.Board, threads int) {
	cfg := b.Config()
	if threads == 0 {
		b.Place(board.Placement{ThreadsPerBigCore: 1, ThreadsPerLittleCore: 1})
		return
	}
	maxBig := cfg.Big.MaxCores
	maxLittle := float64(cfg.Little.MaxCores)
	// Big-first up-migration: every CPU-intensive thread classifies as a
	// "big" task and migrates to the big cluster, packing up to two per
	// online core before any spill to little — the documented behaviour of
	// the HMP/GTS stack for CPU-bound multithreaded workloads, and the
	// reason the baseline leaves the near-free little cluster idle.
	bigSlots := 2 * b.BigCores()
	tbTarget := clampInt(threads, 0, clampInt(bigSlots, 1, 2*maxBig))
	// Cross-cluster migration is rate-limited (the balancer moves one task
	// per rebalance period): the placement chases the capacity target. A
	// steady hardware layer lets it converge; a sawtoothing governor drags
	// the target around faster than the balancer can follow, so threads
	// sit on the wrong cluster much of the time.
	if !c.started {
		c.tbNow = tbTarget
		c.started = true
	}
	switch {
	case c.tbNow < tbTarget:
		c.tbNow++
	case c.tbNow > tbTarget:
		c.tbNow--
	}
	if c.tbNow > threads {
		c.tbNow = threads
	}
	tb := c.tbNow
	tl := threads - tb
	tpb := math.Max(1, float64(tb)/float64(maxBig))
	if tb > 0 && tb <= maxBig/2 && s.BigPowerW > 0.8*DefaultLimits().BigPowerW {
		tpb = 2.0
	}
	tpl := math.Max(1, float64(tl)/maxLittle)
	b.Place(board.Placement{
		ThreadsBig:           tb,
		ThreadsLittle:        tl,
		ThreadsPerBigCore:    tpb,
		ThreadsPerLittleCore: tpl,
	})
}

// DecoupledHW is the Performance-governor controller: it requests maximum
// frequency and core count unconditionally and leaves violations to the
// firmware emergency heuristics, whose sustained-violation throttling and
// slow release produce the large power sawtooth of Fig. 10(b). On a
// sustained deep throttle it additionally offlines a big core ("reduces
// frequency first, then #cores"), restoring it once the cap clears.
type DecoupledHW struct {
	// Lim holds the limits the firmware heuristics underneath enforce.
	Lim Limits

	deepThrottleIntervals int
}

// Step implements one control interval.
func (d *DecoupledHW) Step(s board.Sensors, b *board.Board) {
	cfg := b.Config()
	b.SetBigFreq(cfg.Big.FreqMaxGHz)
	b.SetLittleFreq(cfg.Little.FreqMaxGHz)
	b.SetLittleCores(cfg.Little.MaxCores)

	// Track how long the firmware has been holding the big cluster far
	// below the requested frequency.
	if b.EffectiveBigFreq() < 0.6*cfg.Big.FreqMaxGHz {
		d.deepThrottleIntervals++
	} else {
		d.deepThrottleIntervals = 0
	}
	switch {
	case d.deepThrottleIntervals >= 4:
		b.SetBigCores(b.BigCores() - 1)
		d.deepThrottleIntervals = 0
	case !s.Throttled:
		b.SetBigCores(cfg.Big.MaxCores)
	}
}

// DecoupledOS is the round-robin scheduler: it spreads threads evenly over
// all cores of both clusters, one per core where possible, ignoring core
// type, frequency and power entirely. Because assignments rotate every
// period (threads have no affinity), roughly half the threads cross the
// cluster boundary each interval and pay the migration/cache-warmup cost.
type DecoupledOS struct{}

// Step implements one control interval.
func (DecoupledOS) Step(s board.Sensors, b *board.Board, threads int) {
	b.ChargeMigrations(threads)
	total := b.BigCores() + b.LittleCores()
	if total == 0 || threads == 0 {
		b.Place(board.Placement{ThreadsBig: 0, ThreadsPerBigCore: 1, ThreadsPerLittleCore: 1})
		return
	}
	tb := threads * b.BigCores() / total
	tl := threads - tb
	tpb := math.Max(1, math.Ceil(float64(tb)/float64(b.BigCores())))
	tpl := math.Max(1, math.Ceil(float64(tl)/float64(b.LittleCores())))
	b.Place(board.Placement{
		ThreadsBig:           tb,
		ThreadsLittle:        tl,
		ThreadsPerBigCore:    tpb,
		ThreadsPerLittleCore: tpl,
	})
}

// coresFor returns the number of cores needed to host n threads at the given
// packing, clamped to [1, max].
func coresFor(n int, perCore float64, max int) int {
	if perCore < 1 {
		perCore = 1
	}
	c := int(math.Ceil(float64(n) / perCore))
	return clampInt(c, 1, max)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
