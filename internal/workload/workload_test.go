package workload

import (
	"math"
	"testing"
)

func TestNewAppValidation(t *testing.T) {
	ok := []Phase{{WorkFrac: 1, Threads: 4, MemBound: 0.2, IPCBig: 1, IPCLittle: 0.5}}
	if _, err := NewApp("x", "T", 0, ok); err == nil {
		t.Fatal("expected error for zero total")
	}
	if _, err := NewApp("x", "T", 10, nil); err == nil {
		t.Fatal("expected error for no phases")
	}
	bad := []Phase{{WorkFrac: 0.5, Threads: 4, MemBound: 0.2, IPCBig: 1, IPCLittle: 0.5}}
	if _, err := NewApp("x", "T", 10, bad); err == nil {
		t.Fatal("expected error for fractions not summing to 1")
	}
	bad2 := []Phase{{WorkFrac: 1, Threads: 0, MemBound: 0.2, IPCBig: 1, IPCLittle: 0.5}}
	if _, err := NewApp("x", "T", 10, bad2); err == nil {
		t.Fatal("expected error for zero threads")
	}
}

func TestAppPhaseProgression(t *testing.T) {
	a := MustLookup("blackscholes")
	// Starts in the single-thread ramp phase.
	if p := a.Profile(); p.Threads != 1 {
		t.Fatalf("initial threads = %d, want 1", p.Threads)
	}
	// Consume past 5% of the work: switches to 8 threads.
	a.Advance(a.Total() * 0.06)
	if p := a.Profile(); p.Threads != 8 {
		t.Fatalf("parallel-phase threads = %d, want 8", p.Threads)
	}
	if a.Done() {
		t.Fatal("not done yet")
	}
	a.Advance(a.Total())
	if !a.Done() {
		t.Fatal("should be done")
	}
	if p := a.Profile(); p.Threads != 0 {
		t.Fatalf("done profile threads = %d, want 0", p.Threads)
	}
}

func TestAppAdvanceConservation(t *testing.T) {
	a := MustLookup("gamess")
	total := a.Total()
	var consumed float64
	for !a.Done() {
		step := 37.5
		if r := a.Remaining(); step > r {
			step = r
		}
		a.Advance(step)
		consumed += step
	}
	if math.Abs(consumed-total) > 1e-9 {
		t.Fatalf("consumed %v, total %v", consumed, total)
	}
	a.Reset()
	if a.Done() || a.Remaining() != total {
		t.Fatal("reset did not rewind")
	}
}

func TestAppAdvanceNegativeIgnored(t *testing.T) {
	a := MustLookup("mcf")
	a.Advance(-10)
	if a.Remaining() != a.Total() {
		t.Fatal("negative advance must be ignored")
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("doom3"); err == nil {
		t.Fatal("expected error for unknown app")
	}
}

func TestLookupReturnsFreshInstances(t *testing.T) {
	a := MustLookup("mcf")
	a.Advance(a.Total())
	b := MustLookup("mcf")
	if b.Done() {
		t.Fatal("Lookup must return fresh instances")
	}
}

func TestSuitesComplete(t *testing.T) {
	if len(EvaluationSPEC()) != 6 {
		t.Fatalf("want 6 SPEC programs, got %d", len(EvaluationSPEC()))
	}
	if len(EvaluationPARSEC()) != 8 {
		t.Fatalf("want 8 PARSEC programs, got %d", len(EvaluationPARSEC()))
	}
	if len(TrainingSet()) != 6 {
		t.Fatalf("want 6 training programs, got %d", len(TrainingSet()))
	}
	for _, n := range append(append(EvaluationSPEC(), EvaluationPARSEC()...), TrainingSet()...) {
		if _, err := Lookup(n); err != nil {
			t.Fatalf("catalog missing %s: %v", n, err)
		}
	}
	// Training set must not overlap the evaluation set (paper §V-A).
	eval := map[string]bool{}
	for _, n := range append(EvaluationSPEC(), EvaluationPARSEC()...) {
		eval[n] = true
	}
	for _, n := range TrainingSet() {
		if eval[n] {
			t.Fatalf("training app %s overlaps evaluation set", n)
		}
	}
}

func TestMixAggregation(t *testing.T) {
	mixes := HeterogeneousMixes()
	if len(mixes) != 4 {
		t.Fatalf("want 4 mixes, got %d", len(mixes))
	}
	blmc := mixes[0]
	if blmc.Name() != "blmc" {
		t.Fatalf("first mix %s, want blmc", blmc.Name())
	}
	p := blmc.Profile()
	// blackscholes contributes 1 thread (ramp phase) + mcf 4 copies.
	if p.Threads != 5 {
		t.Fatalf("initial mix threads = %d, want 5", p.Threads)
	}
	// MemBound must lie between the components'.
	if p.MemBound <= 0.10 || p.MemBound >= 0.78 {
		t.Fatalf("mix membound %v outside component range", p.MemBound)
	}
}

func TestMixCompletesBothComponents(t *testing.T) {
	m := NewMix("test", MustLookup("mcf"), MustLookup("gamess"))
	total := m.Total()
	steps := 0
	for !m.Done() && steps < 100000 {
		m.Advance(10)
		steps++
	}
	if !m.Done() {
		t.Fatal("mix never completed")
	}
	if m.Remaining() != 0 {
		t.Fatalf("remaining %v after done", m.Remaining())
	}
	if total <= 0 {
		t.Fatal("total must be positive")
	}
}

func TestMixProfileDropsFinishedComponents(t *testing.T) {
	m := NewMix("test", MustLookup("mcf"), MustLookup("gamess"))
	// Run until mcf (the small one) finishes.
	for steps := 0; steps < 100000; steps++ {
		p := m.Profile()
		if p.Threads == 8 {
			// Only gamess (8 copies) remains: profile must match gamess.
			if math.Abs(p.MemBound-0.08) > 1e-9 {
				t.Fatalf("after mcf done, membound %v, want 0.08", p.MemBound)
			}
			return
		}
		m.Advance(20)
		if m.Done() {
			break
		}
	}
	t.Fatal("never reached single-component state")
}

func TestHalfThreadsMixes(t *testing.T) {
	// Mix components use 4 threads (4-threaded PARSEC / 4 SPEC copies).
	m := HeterogeneousMixes()[3] // mcga
	p := m.Profile()
	if p.Threads != 8 {
		t.Fatalf("mcga threads = %d, want 8 (4+4)", p.Threads)
	}
}

func TestCappedWorkload(t *testing.T) {
	c := NewCapped(MustLookup("gamess"))
	if c.Profile().Threads != 8 {
		t.Fatalf("uncapped threads = %d, want 8", c.Profile().Threads)
	}
	c.SetCap(3)
	if c.Profile().Threads != 3 {
		t.Fatalf("capped threads = %d, want 3", c.Profile().Threads)
	}
	if c.Cap() != 3 {
		t.Fatalf("cap = %d", c.Cap())
	}
	c.SetCap(0)
	if c.Profile().Threads != 1 {
		t.Fatal("cap must clamp to >= 1")
	}
	// Work accounting passes through.
	before := c.Remaining()
	c.Advance(10)
	if c.Remaining() >= before {
		t.Fatal("Advance did not consume work")
	}
	c.Reset()
	if c.Remaining() != c.Total() {
		t.Fatal("Reset did not rewind")
	}
	if c.Name() != "gamess+cap" {
		t.Fatalf("name %q", c.Name())
	}
}
