package workload

import "fmt"

// mustApp builds a catalog application, panicking on construction errors
// (catalog entries are compile-time constants).
func mustApp(name, suite string, total float64, phases []Phase) *App {
	a, err := NewApp(name, suite, total, phases)
	if err != nil {
		panic(err)
	}
	return a
}

// catalog holds the evaluation and training applications (paper §V-A).
// Total instruction counts are calibrated so execution times on the
// simulated board land in the 100-350 s range the paper reports;
// memory-boundedness and IPC values reflect the published characterization
// of each benchmark (compute-bound blackscholes/gamess vs memory-bound
// mcf/streamcluster/canneal).
var catalog = map[string]*App{
	// 8-threaded PARSEC with native inputs.
	"blackscholes": mustApp("blackscholes", "PARSEC", 1050, []Phase{
		{WorkFrac: 0.05, Threads: 1, MemBound: 0.10, IPCBig: 1.7, IPCLittle: 0.85},
		{WorkFrac: 0.95, Threads: 8, MemBound: 0.12, IPCBig: 1.6, IPCLittle: 0.80},
	}),
	"bodytrack": mustApp("bodytrack", "PARSEC", 900, []Phase{
		{WorkFrac: 0.08, Threads: 2, MemBound: 0.25, IPCBig: 1.3, IPCLittle: 0.65},
		{WorkFrac: 0.50, Threads: 8, MemBound: 0.30, IPCBig: 1.2, IPCLittle: 0.60},
		{WorkFrac: 0.42, Threads: 8, MemBound: 0.35, IPCBig: 1.1, IPCLittle: 0.55},
	}),
	"facesim": mustApp("facesim", "PARSEC", 980, []Phase{
		{WorkFrac: 0.10, Threads: 4, MemBound: 0.30, IPCBig: 1.2, IPCLittle: 0.60},
		{WorkFrac: 0.90, Threads: 8, MemBound: 0.38, IPCBig: 1.1, IPCLittle: 0.55},
	}),
	"fluidanimate": mustApp("fluidanimate", "PARSEC", 920, []Phase{
		{WorkFrac: 1.0, Threads: 8, MemBound: 0.42, IPCBig: 1.0, IPCLittle: 0.52},
	}),
	"raytrace": mustApp("raytrace", "PARSEC", 1100, []Phase{
		{WorkFrac: 0.06, Threads: 1, MemBound: 0.15, IPCBig: 1.5, IPCLittle: 0.75},
		{WorkFrac: 0.94, Threads: 8, MemBound: 0.18, IPCBig: 1.5, IPCLittle: 0.72},
	}),
	"x264": mustApp("x264", "PARSEC", 850, []Phase{
		{WorkFrac: 0.30, Threads: 6, MemBound: 0.25, IPCBig: 1.4, IPCLittle: 0.68},
		{WorkFrac: 0.40, Threads: 8, MemBound: 0.28, IPCBig: 1.3, IPCLittle: 0.64},
		{WorkFrac: 0.30, Threads: 5, MemBound: 0.22, IPCBig: 1.4, IPCLittle: 0.68},
	}),
	"canneal": mustApp("canneal", "PARSEC", 620, []Phase{
		{WorkFrac: 1.0, Threads: 8, MemBound: 0.60, IPCBig: 0.6, IPCLittle: 0.35},
	}),
	"streamcluster": mustApp("streamcluster", "PARSEC", 560, []Phase{
		{WorkFrac: 1.0, Threads: 8, MemBound: 0.66, IPCBig: 0.55, IPCLittle: 0.32},
	}),

	// 8 copies of SPEC CPU2006 programs with train inputs: thread count is
	// constant at 8 (independent copies), phases capture input-set behaviour.
	"h264ref": mustApp("h264ref", "SPEC06", 1150, []Phase{
		{WorkFrac: 1.0, Threads: 8, MemBound: 0.20, IPCBig: 1.7, IPCLittle: 0.82},
	}),
	"mcf": mustApp("mcf", "SPEC06", 420, []Phase{
		{WorkFrac: 1.0, Threads: 8, MemBound: 0.78, IPCBig: 0.40, IPCLittle: 0.25},
	}),
	"omnetpp": mustApp("omnetpp", "SPEC06", 560, []Phase{
		{WorkFrac: 1.0, Threads: 8, MemBound: 0.55, IPCBig: 0.70, IPCLittle: 0.40},
	}),
	"gamess": mustApp("gamess", "SPEC06", 1350, []Phase{
		{WorkFrac: 1.0, Threads: 8, MemBound: 0.08, IPCBig: 2.0, IPCLittle: 0.95},
	}),
	"gromacs": mustApp("gromacs", "SPEC06", 1250, []Phase{
		{WorkFrac: 1.0, Threads: 8, MemBound: 0.14, IPCBig: 1.8, IPCLittle: 0.85},
	}),
	"dealII": mustApp("dealII", "SPEC06", 1050, []Phase{
		{WorkFrac: 1.0, Threads: 8, MemBound: 0.30, IPCBig: 1.5, IPCLittle: 0.70},
	}),

	// Training set (paper §V-A): different programs from the evaluation set.
	"swaptions": mustApp("swaptions", "TRAIN", 950, []Phase{
		{WorkFrac: 0.04, Threads: 1, MemBound: 0.08, IPCBig: 1.8, IPCLittle: 0.88},
		{WorkFrac: 0.96, Threads: 8, MemBound: 0.10, IPCBig: 1.7, IPCLittle: 0.84},
	}),
	"vips": mustApp("vips", "TRAIN", 880, []Phase{
		{WorkFrac: 0.50, Threads: 8, MemBound: 0.28, IPCBig: 1.3, IPCLittle: 0.62},
		{WorkFrac: 0.50, Threads: 6, MemBound: 0.33, IPCBig: 1.2, IPCLittle: 0.58},
	}),
	"astar": mustApp("astar", "TRAIN", 540, []Phase{
		{WorkFrac: 1.0, Threads: 8, MemBound: 0.50, IPCBig: 0.8, IPCLittle: 0.45},
	}),
	"perlbench": mustApp("perlbench", "TRAIN", 980, []Phase{
		{WorkFrac: 1.0, Threads: 8, MemBound: 0.25, IPCBig: 1.5, IPCLittle: 0.72},
	}),
	"milc": mustApp("milc", "TRAIN", 460, []Phase{
		{WorkFrac: 1.0, Threads: 8, MemBound: 0.70, IPCBig: 0.5, IPCLittle: 0.30},
	}),
	"namd": mustApp("namd", "TRAIN", 1200, []Phase{
		{WorkFrac: 1.0, Threads: 8, MemBound: 0.12, IPCBig: 1.8, IPCLittle: 0.86},
	}),
}

// Lookup returns a fresh instance of a named application.
func Lookup(name string) (*App, error) {
	a, ok := catalog[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown application %q", name)
	}
	return a.Clone(), nil
}

// MustLookup is Lookup for known-good names in tests and experiment tables.
func MustLookup(name string) *App {
	a, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return a
}

// EvaluationSPEC lists the SPEC06 evaluation programs in the paper's order.
func EvaluationSPEC() []string {
	return []string{"h264ref", "mcf", "omnetpp", "gamess", "gromacs", "dealII"}
}

// EvaluationPARSEC lists the PARSEC evaluation programs in the paper's order.
func EvaluationPARSEC() []string {
	return []string{"blackscholes", "bodytrack", "facesim", "fluidanimate",
		"raytrace", "x264", "canneal", "streamcluster"}
}

// TrainingSet lists the identification training programs.
func TrainingSet() []string {
	return []string{"swaptions", "vips", "astar", "perlbench", "milc", "namd"}
}

// halfThreads returns a copy of an app with its thread counts halved
// (4-threaded PARSEC / 4 SPEC copies for the heterogeneous mixes).
func halfThreads(a *App) *App {
	c := a.Clone()
	for i := range c.phases {
		th := c.phases[i].Threads / 2
		if th < 1 {
			th = 1
		}
		c.phases[i].Threads = th
	}
	c.total /= 2
	return c
}

// HeterogeneousMixes returns the four mixes of §VI-C: blmc, stga, blst, mcga.
func HeterogeneousMixes() []*Mix {
	bl := func() *App { return halfThreads(MustLookup("blackscholes")) }
	mc := func() *App { return halfThreads(MustLookup("mcf")) }
	st := func() *App { return halfThreads(MustLookup("streamcluster")) }
	ga := func() *App { return halfThreads(MustLookup("gamess")) }
	return []*Mix{
		NewMix("blmc", bl(), mc()),
		NewMix("stga", st(), ga()),
		NewMix("blst", bl(), st()),
		NewMix("mcga", mc(), ga()),
	}
}
