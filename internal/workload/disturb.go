package workload

import (
	"math"
	"math/rand"
)

// Disturbance parameterizes mid-run workload phase disturbances: windows in
// which part of the thread pool blocks (an I/O stall, a lock convoy, a
// garbage-collection pause) and memory-boundedness surges (a working-set
// shift evicting the caches). Windows are scheduled over executed work, not
// wall-clock time, so a disturbed run stays deterministic regardless of how
// fast the controllers let the workload progress.
//
// All randomness comes from the explicit seed handed to NewDisturbed — the
// workload package owns no package-level RNG — so the same seed reproduces
// the same disturbance schedule in every run, at any experiment parallelism.
type Disturbance struct {
	// MeanPeriodG is the mean executed work (billions of instructions)
	// between disturbance windows; inter-arrival gaps are exponential.
	MeanPeriodG float64
	// DurationG is the executed work each window spans.
	DurationG float64
	// ThreadFrac multiplies the runnable thread count during a window
	// (0 < ThreadFrac <= 1; at least one thread always stays runnable).
	ThreadFrac float64
	// MemBoundAdd is added to the phase's memory-boundedness during a
	// window (the result is capped below 0.9).
	MemBoundAdd float64
}

// enabled reports whether the disturbance would ever perturb a profile.
func (d Disturbance) enabled() bool {
	return d.MeanPeriodG > 0 && d.DurationG > 0 &&
		((d.ThreadFrac > 0 && d.ThreadFrac < 1) || d.MemBoundAdd > 0)
}

// Disturbed wraps a workload with a deterministic, seed-driven schedule of
// phase disturbances. Progress state is shared with the wrapped workload;
// only the reported Profile is perturbed while a window is active.
type Disturbed struct {
	// Inner is the wrapped workload.
	Inner Workload

	d    Disturbance
	seed int64
	rng  *rand.Rand

	doneG  float64 // executed work observed through Advance
	nextG  float64 // work point at which the next window opens
	endG   float64 // work point at which the current window closes
	active bool
	count  int
}

// NewDisturbed wraps w with the given disturbance schedule. The seed fully
// determines the schedule; the zero-valued Disturbance yields a wrapper that
// never perturbs. The wrapper is reset (via Reset) to replay the identical
// schedule from the start.
func NewDisturbed(w Workload, d Disturbance, seed int64) *Disturbed {
	dw := &Disturbed{Inner: w, d: d, seed: seed}
	dw.rewind()
	return dw
}

// rewind restarts the disturbance schedule from the seed.
func (dw *Disturbed) rewind() {
	dw.rng = rand.New(rand.NewSource(dw.seed))
	dw.doneG, dw.endG = 0, 0
	dw.active = false
	dw.count = 0
	if dw.d.enabled() {
		dw.nextG = dw.rng.ExpFloat64() * dw.d.MeanPeriodG
	} else {
		dw.nextG = math.Inf(1)
	}
}

// Name implements Workload; the wrapped name is kept so experiment tables
// key disturbed and clean runs of the same app identically.
func (dw *Disturbed) Name() string { return dw.Inner.Name() }

// Profile implements Workload, applying the active window's perturbation.
func (dw *Disturbed) Profile() Profile {
	p := dw.Inner.Profile()
	if !dw.active || p.Threads == 0 {
		return p
	}
	if dw.d.ThreadFrac > 0 && dw.d.ThreadFrac < 1 {
		t := int(math.Round(float64(p.Threads) * dw.d.ThreadFrac))
		if t < 1 {
			t = 1
		}
		p.Threads = t
	}
	if dw.d.MemBoundAdd > 0 {
		p.MemBound = math.Min(0.9, p.MemBound+dw.d.MemBoundAdd)
	}
	return p
}

// Advance implements Workload, moving the window state machine along the
// executed-work axis before forwarding to the wrapped workload.
func (dw *Disturbed) Advance(gInst float64) bool {
	if gInst > 0 {
		dw.doneG += gInst
	}
	switch {
	case !dw.active && dw.doneG >= dw.nextG:
		dw.active = true
		dw.count++
		dw.endG = dw.doneG + dw.d.DurationG
	case dw.active && dw.doneG >= dw.endG:
		dw.active = false
		dw.nextG = dw.doneG + dw.rng.ExpFloat64()*dw.d.MeanPeriodG
	}
	return dw.Inner.Advance(gInst)
}

// Remaining implements Workload.
func (dw *Disturbed) Remaining() float64 { return dw.Inner.Remaining() }

// Total implements Workload.
func (dw *Disturbed) Total() float64 { return dw.Inner.Total() }

// Done implements Workload.
func (dw *Disturbed) Done() bool { return dw.Inner.Done() }

// Reset implements Workload, rewinding both the wrapped workload and the
// disturbance schedule (the same seed replays the same windows).
func (dw *Disturbed) Reset() {
	dw.Inner.Reset()
	dw.rewind()
}

// Disturbances returns how many windows have opened so far.
func (dw *Disturbed) Disturbances() int { return dw.count }
