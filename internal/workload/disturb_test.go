package workload

import (
	"math"
	"testing"
)

func testApp(t *testing.T) *App {
	t.Helper()
	a, err := NewApp("steady", "TEST", 100, []Phase{
		{WorkFrac: 1, Threads: 8, MemBound: 0.2, IPCBig: 1.5, IPCLittle: 0.7},
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// profileTrace advances dw in fixed work quanta and records the thread count
// seen at each step.
func profileTrace(dw *Disturbed, steps int, quantum float64) []int {
	out := make([]int, steps)
	for i := 0; i < steps; i++ {
		out[i] = dw.Profile().Threads
		dw.Advance(quantum)
	}
	return out
}

func TestDisturbedSameSeedSameSchedule(t *testing.T) {
	d := Disturbance{MeanPeriodG: 10, DurationG: 4, ThreadFrac: 0.5, MemBoundAdd: 0.2}
	a := profileTrace(NewDisturbed(testApp(t), d, 7), 80, 1)
	b := profileTrace(NewDisturbed(testApp(t), d, 7), 80, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d: %d vs %d — schedule not deterministic", i, a[i], b[i])
		}
	}
	c := profileTrace(NewDisturbed(testApp(t), d, 8), 80, 1)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestDisturbedPerturbsAndRecovers(t *testing.T) {
	d := Disturbance{MeanPeriodG: 8, DurationG: 5, ThreadFrac: 0.5, MemBoundAdd: 0.3}
	dw := NewDisturbed(testApp(t), d, 3)
	sawClean, sawDisturbed := false, false
	for i := 0; i < 90 && !dw.Done(); i++ {
		p := dw.Profile()
		switch p.Threads {
		case 8:
			sawClean = true
			if p.MemBound != 0.2 {
				t.Fatalf("clean profile has perturbed MemBound %v", p.MemBound)
			}
		case 4:
			sawDisturbed = true
			if math.Abs(p.MemBound-0.5) > 1e-12 {
				t.Fatalf("disturbed MemBound %v, want 0.5", p.MemBound)
			}
		default:
			t.Fatalf("unexpected thread count %d", p.Threads)
		}
		dw.Advance(1)
	}
	if !sawClean || !sawDisturbed {
		t.Fatalf("trace missing states: clean=%v disturbed=%v (%d windows)",
			sawClean, sawDisturbed, dw.Disturbances())
	}
	if dw.Disturbances() == 0 {
		t.Fatal("no disturbance windows opened")
	}
}

func TestDisturbedResetReplaysSchedule(t *testing.T) {
	d := Disturbance{MeanPeriodG: 6, DurationG: 3, ThreadFrac: 0.25}
	dw := NewDisturbed(testApp(t), d, 11)
	first := profileTrace(dw, 50, 1)
	dw.Reset()
	if dw.Disturbances() != 0 {
		t.Fatal("Reset did not clear the window count")
	}
	second := profileTrace(dw, 50, 1)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("step %d after Reset: %d vs %d", i, second[i], first[i])
		}
	}
}

func TestDisturbedZeroValueIsTransparent(t *testing.T) {
	dw := NewDisturbed(testApp(t), Disturbance{}, 1)
	for i := 0; i < 30; i++ {
		if p := dw.Profile(); p.Threads != 8 || p.MemBound != 0.2 {
			t.Fatalf("zero-valued disturbance perturbed the profile: %+v", p)
		}
		dw.Advance(1)
	}
	if dw.Disturbances() != 0 {
		t.Fatal("zero-valued disturbance opened a window")
	}
}

func TestDisturbedKeepsInnerName(t *testing.T) {
	dw := NewDisturbed(testApp(t), Disturbance{MeanPeriodG: 5, DurationG: 2, ThreadFrac: 0.5}, 1)
	if dw.Name() != "steady" {
		t.Fatalf("Name() = %q, want inner name", dw.Name())
	}
}
