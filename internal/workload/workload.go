// Package workload models the benchmark applications the paper evaluates:
// 8-threaded PARSEC programs with native inputs, 8 copies of SPEC CPU2006
// programs with train inputs, the training set used for system
// identification, and the heterogeneous program mixes of Section VI-C.
//
// The real binaries are replaced by phase-structured application models (the
// substitution documented in DESIGN.md): each program is a sequence of
// phases with a thread count, a memory-boundedness factor and per-core-type
// IPC values. This preserves the control-relevant structure — e.g.
// blackscholes starts with a single thread and then runs 8 parallel threads
// with steady work, mcf is memory-bound with low IPC, gamess is compute
// bound — without requiring the SPEC/PARSEC sources.
package workload

import "fmt"

// Phase is one execution phase of an application.
type Phase struct {
	// WorkFrac is the fraction of the application's total instructions that
	// this phase covers. Fractions over an app must sum to 1.
	WorkFrac float64
	// Threads is the number of runnable threads during the phase.
	Threads int
	// MemBound is the fraction of execution stalled on memory at the
	// reference frequency (0 = pure compute, towards 1 = bandwidth bound).
	MemBound float64
	// IPCBig and IPCLittle are the per-thread instructions per cycle on a
	// big (Cortex-A15-class) and little (Cortex-A7-class) core.
	IPCBig, IPCLittle float64
}

// Profile is the aggregate execution profile a board simulator needs at one
// instant: how many threads are runnable and how they execute. Per the
// paper's software controller (§IV-B), threads are treated as
// interchangeable, so the profile aggregates over applications in a mix.
type Profile struct {
	Threads           int
	MemBound          float64
	IPCBig, IPCLittle float64
}

// Workload is a running instance of an application or mix.
type Workload interface {
	// Name identifies the workload (e.g. "blackscholes", "blmc").
	Name() string
	// Profile returns the current aggregate execution profile.
	Profile() Profile
	// Advance consumes executed instructions (in billions) and reports
	// whether the workload has completed.
	Advance(gInst float64) bool
	// Remaining returns the remaining work in billions of instructions.
	Remaining() float64
	// Total returns the total work in billions of instructions.
	Total() float64
	// Done reports completion.
	Done() bool
	// Reset rewinds the workload to its start.
	Reset()
}

// App is a phase-structured application model.
type App struct {
	name   string
	suite  string
	phases []Phase
	total  float64 // billions of instructions

	done float64 // consumed billions
}

// NewApp builds an application from its phase list. Phase work fractions
// must sum to 1 within 1e-6.
func NewApp(name, suite string, totalGInst float64, phases []Phase) (*App, error) {
	if totalGInst <= 0 {
		return nil, fmt.Errorf("workload: %s: total instructions must be positive", name)
	}
	if len(phases) == 0 {
		return nil, fmt.Errorf("workload: %s: no phases", name)
	}
	var sum float64
	for i, p := range phases {
		if p.WorkFrac <= 0 || p.Threads < 1 || p.MemBound < 0 || p.MemBound >= 1 ||
			p.IPCBig <= 0 || p.IPCLittle <= 0 {
			return nil, fmt.Errorf("workload: %s: invalid phase %d: %+v", name, i, p)
		}
		sum += p.WorkFrac
	}
	if sum < 1-1e-6 || sum > 1+1e-6 {
		return nil, fmt.Errorf("workload: %s: phase fractions sum to %v", name, sum)
	}
	ph := make([]Phase, len(phases))
	copy(ph, phases)
	return &App{name: name, suite: suite, phases: ph, total: totalGInst}, nil
}

// Name returns the application name.
func (a *App) Name() string { return a.name }

// Suite returns "PARSEC", "SPEC06" or "TRAIN".
func (a *App) Suite() string { return a.suite }

// Total returns total work in billions of instructions.
func (a *App) Total() float64 { return a.total }

// Remaining returns outstanding work in billions of instructions.
func (a *App) Remaining() float64 {
	r := a.total - a.done
	if r < 0 {
		return 0
	}
	return r
}

// Done reports completion.
func (a *App) Done() bool { return a.done >= a.total }

// Reset rewinds to the start.
func (a *App) Reset() { a.done = 0 }

// currentPhase returns the phase covering the current progress point.
func (a *App) currentPhase() Phase {
	frac := a.done / a.total
	var cum float64
	for _, p := range a.phases {
		cum += p.WorkFrac
		if frac < cum {
			return p
		}
	}
	return a.phases[len(a.phases)-1]
}

// Profile returns the current phase's profile.
func (a *App) Profile() Profile {
	if a.Done() {
		return Profile{}
	}
	p := a.currentPhase()
	return Profile{Threads: p.Threads, MemBound: p.MemBound, IPCBig: p.IPCBig, IPCLittle: p.IPCLittle}
}

// Advance consumes gInst billions of instructions.
func (a *App) Advance(gInst float64) bool {
	if gInst < 0 {
		gInst = 0
	}
	a.done += gInst
	if a.done > a.total {
		a.done = a.total
	}
	return a.Done()
}

// Clone returns a fresh (reset) copy of the application.
func (a *App) Clone() *App {
	ph := make([]Phase, len(a.phases))
	copy(ph, a.phases)
	return &App{name: a.name, suite: a.suite, phases: ph, total: a.total}
}

// Mix runs several applications concurrently (the heterogeneous workloads of
// §VI-C). Work is distributed across the live components in proportion to
// their thread counts; the mix completes when every component completes.
type Mix struct {
	name string
	apps []*App
}

// NewMix combines applications under the given name.
func NewMix(name string, apps ...*App) *Mix {
	cl := make([]*App, len(apps))
	for i, a := range apps {
		cl[i] = a.Clone()
	}
	return &Mix{name: name, apps: cl}
}

// Clone returns a fresh (reset) copy of the mix with no shared state, so
// concurrent runs of the same named mix never advance each other's progress.
func (m *Mix) Clone() *Mix {
	return NewMix(m.name, m.apps...)
}

// Name returns the mix name.
func (m *Mix) Name() string { return m.name }

// Total returns the summed work of all components.
func (m *Mix) Total() float64 {
	var s float64
	for _, a := range m.apps {
		s += a.Total()
	}
	return s
}

// Remaining returns the summed outstanding work.
func (m *Mix) Remaining() float64 {
	var s float64
	for _, a := range m.apps {
		s += a.Remaining()
	}
	return s
}

// Done reports whether every component completed.
func (m *Mix) Done() bool {
	for _, a := range m.apps {
		if !a.Done() {
			return false
		}
	}
	return true
}

// Reset rewinds every component.
func (m *Mix) Reset() {
	for _, a := range m.apps {
		a.Reset()
	}
}

// Profile aggregates the live components: thread counts add, per-thread
// characteristics are thread-weighted averages.
func (m *Mix) Profile() Profile {
	var out Profile
	var wsum float64
	for _, a := range m.apps {
		if a.Done() {
			continue
		}
		p := a.Profile()
		w := float64(p.Threads)
		out.Threads += p.Threads
		out.MemBound += w * p.MemBound
		out.IPCBig += w * p.IPCBig
		out.IPCLittle += w * p.IPCLittle
		wsum += w
	}
	if wsum > 0 {
		out.MemBound /= wsum
		out.IPCBig /= wsum
		out.IPCLittle /= wsum
	}
	return out
}

// Advance distributes executed instructions across live components in
// proportion to their runnable thread counts.
func (m *Mix) Advance(gInst float64) bool {
	var wsum float64
	for _, a := range m.apps {
		if !a.Done() {
			wsum += float64(a.Profile().Threads)
		}
	}
	if wsum == 0 {
		return true
	}
	for _, a := range m.apps {
		if !a.Done() {
			share := float64(a.Profile().Threads) / wsum
			a.Advance(gInst * share)
		}
	}
	return m.Done()
}

// Capped limits the number of threads a workload exposes as runnable — the
// actuator of an application-level controller layer (e.g. a thread-pool
// resizer). Work still completes, just with bounded parallelism. A Capped
// wrapper shares the progress state of the wrapped workload.
type Capped struct {
	Inner Workload
	cap   int
}

// NewCapped wraps w with an initially unlimited cap.
func NewCapped(w Workload) *Capped {
	return &Capped{Inner: w, cap: 1 << 30}
}

// SetCap bounds the runnable thread count (minimum 1).
func (c *Capped) SetCap(n int) {
	if n < 1 {
		n = 1
	}
	c.cap = n
}

// Cap returns the current bound.
func (c *Capped) Cap() int { return c.cap }

// Name implements Workload.
func (c *Capped) Name() string { return c.Inner.Name() + "+cap" }

// Profile implements Workload, clamping the thread count.
func (c *Capped) Profile() Profile {
	p := c.Inner.Profile()
	if p.Threads > c.cap {
		p.Threads = c.cap
	}
	return p
}

// Advance implements Workload.
func (c *Capped) Advance(gInst float64) bool { return c.Inner.Advance(gInst) }

// Remaining implements Workload.
func (c *Capped) Remaining() float64 { return c.Inner.Remaining() }

// Total implements Workload.
func (c *Capped) Total() float64 { return c.Inner.Total() }

// Done implements Workload.
func (c *Capped) Done() bool { return c.Inner.Done() }

// Reset implements Workload (the cap is preserved).
func (c *Capped) Reset() { c.Inner.Reset() }
