package workload

import "testing"

// TestCatalogCharacterization asserts the control-relevant character of the
// catalog entries: compute-bound apps have high IPC and low memory
// boundedness, memory-bound apps the opposite, and the training set spans
// both regimes (otherwise identification would not excite the dynamics the
// evaluation needs).
func TestCatalogCharacterization(t *testing.T) {
	profile := func(name string) Profile {
		a := MustLookup(name)
		a.Advance(a.Total() * 0.5) // mid-run phase
		return a.Profile()
	}
	computeBound := []string{"gamess", "gromacs", "h264ref", "blackscholes", "raytrace", "swaptions", "namd"}
	memoryBound := []string{"mcf", "streamcluster", "canneal", "milc"}
	for _, n := range computeBound {
		p := profile(n)
		if p.MemBound > 0.3 {
			t.Errorf("%s: memBound %.2f too high for a compute-bound app", n, p.MemBound)
		}
		if p.IPCBig < 1.2 {
			t.Errorf("%s: IPC %.2f too low for a compute-bound app", n, p.IPCBig)
		}
	}
	for _, n := range memoryBound {
		p := profile(n)
		if p.MemBound < 0.5 {
			t.Errorf("%s: memBound %.2f too low for a memory-bound app", n, p.MemBound)
		}
		if p.IPCBig > 1.0 {
			t.Errorf("%s: IPC %.2f too high for a memory-bound app", n, p.IPCBig)
		}
	}
	// Big cores must out-execute little cores per thread for every app.
	for name := range catalog {
		p := profile(name)
		if p.IPCBig <= p.IPCLittle {
			t.Errorf("%s: IPCBig %.2f <= IPCLittle %.2f", name, p.IPCBig, p.IPCLittle)
		}
	}
}
