package ssvctl

import (
	"math"
	"testing"

	"yukta/internal/lti"
	"yukta/internal/mat"
	"yukta/internal/robust"
	"yukta/internal/sysid"
)

// synthController builds a small real controller via the robust package.
func synthController(t *testing.T) *robust.Controller {
	t.Helper()
	a := mat.FromRows([][]float64{{0.7, 0.1}, {0.0, 0.6}})
	b := mat.FromRows([][]float64{{0.5, 0.05}, {0.2, 0.02}}) // control, external
	c := mat.FromRows([][]float64{{1, 0.3}})
	d := mat.Zeros(1, 2)
	plant := lti.MustStateSpace(a, b, c, d, 0.5)
	ctl, err := robust.Synthesize(&robust.Spec{
		Plant:        plant,
		NumControls:  1,
		InputWeights: []float64{1},
		InputQuanta:  []float64{0.1},
		OutputBounds: []float64{0.2},
		Uncertainty:  0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ctl
}

func runtimeFor(t *testing.T, ctl *robust.Controller) *Runtime {
	t.Helper()
	r, err := New(Config{
		Controller:     ctl,
		OutputScales:   []sysid.Scaling{{Min: 0, Max: 10}},
		ExternalScales: []sysid.Scaling{{Min: 0, Max: 8}},
		InputScales:    []sysid.Scaling{{Min: 0.2, Max: 2.0}},
		InputLevels:    [][]float64{Levels(0.2, 2.0, 0.1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestLevels(t *testing.T) {
	l := Levels(0.2, 2.0, 0.1)
	if len(l) != 19 {
		t.Fatalf("level count %d, want 19", len(l))
	}
	if l[0] != 0.2 || l[len(l)-1] != 2.0 {
		t.Fatalf("level endpoints %v %v", l[0], l[len(l)-1])
	}
	if got := Levels(1, 4, 1); len(got) != 4 {
		t.Fatalf("core levels %v", got)
	}
	if got := Levels(3, 1, 1); len(got) != 1 {
		t.Fatal("degenerate levels must return lone lo")
	}
}

func TestNearestLevel(t *testing.T) {
	l := []float64{1, 2, 3, 4}
	cases := []struct{ in, want float64 }{
		{0.2, 1}, {1.4, 1}, {1.6, 2}, {3.7, 4}, {9, 4}, {-5, 1},
	}
	for _, c := range cases {
		if got := nearestLevel(l, c.in); got != c.want {
			t.Fatalf("nearestLevel(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNewValidation(t *testing.T) {
	ctl := synthController(t)
	bad := Config{
		Controller:     ctl,
		OutputScales:   []sysid.Scaling{{Min: 0, Max: 10}, {Min: 0, Max: 1}}, // too many
		ExternalScales: []sysid.Scaling{{Min: 0, Max: 8}},
		InputScales:    []sysid.Scaling{{Min: 0.2, Max: 2.0}},
		InputLevels:    [][]float64{Levels(0.2, 2.0, 0.1)},
	}
	if _, err := New(bad); err == nil {
		t.Fatal("expected output-scale count error")
	}
	if _, err := New(Config{}); err == nil {
		t.Fatal("expected nil controller error")
	}
}

func TestStepProducesAllowedLevels(t *testing.T) {
	r := runtimeFor(t, synthController(t))
	if err := r.SetTargets([]float64{7}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		u, err := r.Step([]float64{3 + float64(i%3)}, []float64{4}, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Every output must be on the 0.1 grid within [0.2, 2.0].
		v := u[0]
		if v < 0.2-1e-9 || v > 2.0+1e-9 {
			t.Fatalf("input %v out of range", v)
		}
		steps := (v - 0.2) / 0.1
		if math.Abs(steps-math.Round(steps)) > 1e-6 {
			t.Fatalf("input %v not on quantization grid", v)
		}
	}
}

func TestStepErrorsOnWrongArity(t *testing.T) {
	r := runtimeFor(t, synthController(t))
	if _, err := r.Step([]float64{1, 2}, []float64{0}, nil); err == nil {
		t.Fatal("expected measurement arity error")
	}
	if _, err := r.Step([]float64{1}, nil, nil); err == nil {
		t.Fatal("expected externals arity error")
	}
}

func TestControllerPushesTowardTarget(t *testing.T) {
	// When the measurement is below target, an SSV controller for a plant
	// with positive DC gain must raise its input over time.
	r := runtimeFor(t, synthController(t))
	if err := r.SetTargets([]float64{9}); err != nil {
		t.Fatal(err)
	}
	var first, last float64
	for i := 0; i < 30; i++ {
		u, err := r.Step([]float64{2}, []float64{0}, nil) // persistently below target
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = u[0]
		}
		last = u[0]
	}
	if last <= first {
		t.Fatalf("input did not rise under persistent error: first %v last %v", first, last)
	}
}

func TestAntiWindupRecovers(t *testing.T) {
	// Saturate hard for a while, then flip the error sign: a controller with
	// anti-windup reacts within a few steps instead of staying pinned.
	r := runtimeFor(t, synthController(t))
	if err := r.SetTargets([]float64{5}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := r.Step([]float64{0}, []float64{0}, nil); err != nil { // massive positive error
			t.Fatal(err)
		}
	}
	// Now the measurement jumps above target.
	stepsToReact := -1
	for i := 0; i < 40; i++ {
		u, err := r.Step([]float64{10}, []float64{0}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if u[0] < 2.0-1e-9 {
			stepsToReact = i
			break
		}
	}
	if stepsToReact < 0 || stepsToReact > 25 {
		t.Fatalf("controller stayed wound up for %d steps", stepsToReact)
	}
}

func TestGuardbandMonitor(t *testing.T) {
	r := runtimeFor(t, synthController(t))
	if err := r.SetTargets([]float64{5}); err != nil {
		t.Fatal(err)
	}
	if r.GuardbandExceeded() {
		t.Fatal("fresh runtime must not report exhaustion")
	}
	// Persistent wild deviations far beyond the guaranteed bounds.
	for i := 0; i < 20; i++ {
		if _, err := r.Step([]float64{10}, []float64{0}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if !r.GuardbandExceeded() {
		t.Fatal("guardband monitor did not trip")
	}
	r.Reset()
	if r.GuardbandExceeded() {
		t.Fatal("Reset must clear the monitor")
	}
}

func TestTargetsRoundTrip(t *testing.T) {
	r := runtimeFor(t, synthController(t))
	if err := r.SetTargets([]float64{6.5}); err != nil {
		t.Fatal(err)
	}
	got := r.Targets()
	if math.Abs(got[0]-6.5) > 1e-9 {
		t.Fatalf("targets round trip %v", got)
	}
	if err := r.SetTargets([]float64{1, 2}); err == nil {
		t.Fatal("expected arity error")
	}
}

func TestCostAccounting(t *testing.T) {
	r := runtimeFor(t, synthController(t))
	if r.OpsPerStep() <= 0 || r.StateBytes() <= 0 {
		t.Fatal("cost accounting must be positive")
	}
	// For the paper's dimensions (N=20, I=4, O=4, E=3) the op count is
	// ~1100 MACs i.e. "nearly 700" operations order of magnitude; our
	// formula must reproduce the same scale for those dimensions.
	n, i, o, e := 20, 4, 4, 3
	ops := 2 * (n*n + n*(o+e) + i*n + i*(o+e))
	if ops < 600 || ops > 1400 {
		t.Fatalf("paper-dimension op count %d out of the §VI-D ballpark", ops)
	}
}

func TestStepHoldsOnNonFiniteInputs(t *testing.T) {
	ctl := synthController(t)
	r := runtimeFor(t, ctl)
	twin := runtimeFor(t, ctl)
	if err := r.SetTargets([]float64{5}); err != nil {
		t.Fatal(err)
	}
	if err := twin.SetTargets([]float64{5}); err != nil {
		t.Fatal(err)
	}
	step := func(rt *Runtime, m float64) float64 {
		u, err := rt.Step([]float64{m}, []float64{2}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return u[0]
	}
	var last float64
	for i := 0; i < 5; i++ {
		last = step(r, 4)
		step(twin, 4)
	}
	// Dropped reading: the command holds and the state freezes.
	if got := step(r, math.NaN()); got != last {
		t.Fatalf("held command %v, want last good %v", got, last)
	}
	if got := step(r, math.Inf(1)); got != last {
		t.Fatalf("held command %v under +Inf, want %v", got, last)
	}
	if r.HeldSteps() != 2 {
		t.Fatalf("HeldSteps() = %d, want 2", r.HeldSteps())
	}
	// After the dropout the runtime resumes exactly where the unfaulted twin
	// is: held intervals must not have advanced any internal state.
	for i := 0; i < 5; i++ {
		if a, b := step(r, 6), step(twin, 6); a != b {
			t.Fatalf("post-dropout step %d: %v vs unfaulted %v", i, a, b)
		}
	}
	// Non-finite externals hold too.
	before := step(r, 6)
	if u, err := r.Step([]float64{6}, []float64{math.NaN()}, nil); err != nil || u[0] != before {
		t.Fatalf("NaN external: u=%v err=%v, want held %v", u, err, before)
	}
	// A dropout on the very first interval yields the mid-range level.
	fresh := runtimeFor(t, ctl)
	u, err := fresh.Step([]float64{math.NaN()}, []float64{2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	lv := Levels(0.2, 2.0, 0.1)
	if u[0] != lv[len(lv)/2] {
		t.Fatalf("first-interval dropout command %v, want mid-range %v", u[0], lv[len(lv)/2])
	}
	if fresh.GuardbandExceeded() {
		t.Fatal("held intervals must not trip the guardband monitor")
	}
	fresh.Reset()
	if fresh.HeldSteps() != 0 {
		t.Fatal("Reset did not clear HeldSteps")
	}
}

func TestResetClearsHealthCounters(t *testing.T) {
	// Regression: a reused session must not inherit stale health signals.
	// Reset has to clear the sticky guardband latch, the partial exceed
	// streak, and the held-interval counter.
	r := runtimeFor(t, synthController(t))
	if err := r.SetTargets([]float64{5}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := r.Step([]float64{10}, []float64{0}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Step([]float64{math.NaN()}, []float64{0}, nil); err != nil {
		t.Fatal(err)
	}
	if !r.GuardbandExceeded() || r.HeldSteps() != 1 {
		t.Fatalf("precondition: exceeded=%v held=%d", r.GuardbandExceeded(), r.HeldSteps())
	}
	r.Reset()
	if r.GuardbandExceeded() || r.HeldSteps() != 0 {
		t.Fatalf("Reset left stale health: exceeded=%v held=%d", r.GuardbandExceeded(), r.HeldSteps())
	}
	if h := r.Health(); h.GuardbandExceeded || h.HeldSteps != 0 || h.Railed || h.NonFinite {
		t.Fatalf("Reset left stale Health() = %+v", h)
	}
	// The exceed streak must also restart from zero: 7 post-Reset wild
	// intervals (one short of the 8-interval streak) must not latch even
	// though 20 pre-Reset intervals came right before.
	for i := 0; i < 7; i++ {
		if _, err := r.Step([]float64{10}, []float64{0}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if r.GuardbandExceeded() {
		t.Fatal("exceed streak survived Reset")
	}
}

func TestReseedIsBumpless(t *testing.T) {
	r := runtimeFor(t, synthController(t))
	if err := r.SetTargets([]float64{5}); err != nil {
		t.Fatal(err)
	}
	// Wind the controller toward high commands.
	for i := 0; i < 50; i++ {
		if _, err := r.Step([]float64{0}, []float64{0}, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Re-engage with the plant parked at a low operating point.
	if err := r.Reseed([]float64{0.43}); err != nil {
		t.Fatal(err)
	}
	u, err := r.Step([]float64{5}, []float64{0}, nil) // on target: no error signal
	if err != nil {
		t.Fatal(err)
	}
	// The first post-reseed command must stay near the applied point (the
	// quantizer hysteresis holds 0.4, snapped from 0.43), not jump back to
	// the wound-up pre-reseed command.
	if math.Abs(u[0]-0.4) > 0.11 {
		t.Fatalf("first post-reseed command %v, want near seeded 0.4", u[0])
	}
	if err := r.Reseed([]float64{1, 2}); err == nil {
		t.Fatal("expected arity error")
	}
	// Nil applied degrades to a plain Reset.
	if err := r.Reseed(nil); err != nil {
		t.Fatal(err)
	}
	if r.Health() != (Health{}) {
		t.Fatalf("Health after nil Reseed = %+v, want zero", r.Health())
	}
}

func TestHealthReportsRail(t *testing.T) {
	r := runtimeFor(t, synthController(t))
	if err := r.SetTargets([]float64{5}); err != nil {
		t.Fatal(err)
	}
	if h := r.Health(); h != (Health{}) {
		t.Fatalf("fresh Health = %+v, want zero", h)
	}
	if _, err := r.Step([]float64{4}, []float64{0}, nil); err != nil {
		t.Fatal(err)
	}
	if h := r.Health(); h.Railed || h.NonFinite {
		t.Fatalf("healthy step Health = %+v", h)
	}
	// White-box: classify the rail and non-finite conditions directly. The
	// level range is [0.2, 2.0] (span 1.8), so the rail margin is ±0.9.
	r.lastRaw[0] = 2.95
	if !r.Health().Railed {
		t.Fatal("raw 2.95 (past 2.0+0.9) must report Railed")
	}
	r.lastRaw[0] = 2.5
	if r.Health().Railed {
		t.Fatal("raw 2.5 (within the half-span margin) must not report Railed")
	}
	r.lastRaw[0] = math.NaN()
	if h := r.Health(); !h.NonFinite || h.Railed {
		t.Fatalf("NaN raw Health = %+v, want NonFinite only", h)
	}
}
