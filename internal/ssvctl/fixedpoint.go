package ssvctl

import (
	"fmt"

	"yukta/internal/robust"
)

// This file implements the §VI-D hardware view of an SSV controller: the
// state machine x(T+1) = A x(T) + B Δy(T), u(T) = C x(T) + D Δy(T) computed
// in 32-bit fixed-point arithmetic ("nearly 700 32-bit fixed-point
// operations ... ≈2.6KB of data"). FixedPointController quantizes the
// controller matrices to Q16.16 and steps the recurrence with integer
// multiply-accumulate only, which is what the envisioned few-mW hardware
// state machine would do. It exists both as an implementability demonstration
// and to measure how little precision the control law actually needs.

// fracBits is the fractional width of the Q16.16 representation.
const fracBits = 16

// fixed is a Q16.16 fixed-point number.
type fixed int32

func toFixed(v float64) fixed {
	return fixed(v * (1 << fracBits))
}

func (f fixed) float() float64 {
	return float64(f) / (1 << fracBits)
}

// mul multiplies two Q16.16 values with an int64 intermediate, as a 32×32→64
// hardware multiplier would.
func (f fixed) mul(g fixed) fixed {
	return fixed((int64(f) * int64(g)) >> fracBits)
}

// FixedPointController is the §VI-D hardware realization of a synthesized
// controller: matrices quantized to Q16.16, state held in Q16.16.
type FixedPointController struct {
	n, nin, nout int
	a, b, c, d   []fixed // row-major
	x            []fixed
}

// NewFixedPointController quantizes the controller's realization. It returns
// an error if any matrix entry overflows the Q16.16 range (|v| >= 32768),
// which would indicate a realization unsuitable for fixed-point hardware.
func NewFixedPointController(ctl *robust.Controller) (*FixedPointController, error) {
	k := ctl.K
	n, nin, nout := k.Order(), k.Inputs(), k.Outputs()
	f := &FixedPointController{
		n: n, nin: nin, nout: nout,
		a: make([]fixed, n*n),
		b: make([]fixed, n*nin),
		c: make([]fixed, nout*n),
		d: make([]fixed, nout*nin),
		x: make([]fixed, n),
	}
	const limit = 32767.0
	conv := func(dst []fixed, rows, cols int, at func(i, j int) float64) error {
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				v := at(i, j)
				if v > limit || v < -limit {
					return fmt.Errorf("ssvctl: matrix entry %g overflows Q16.16", v)
				}
				dst[i*cols+j] = toFixed(v)
			}
		}
		return nil
	}
	if err := conv(f.a, n, n, k.A.At); err != nil {
		return nil, err
	}
	if err := conv(f.b, n, nin, k.B.At); err != nil {
		return nil, err
	}
	if err := conv(f.c, nout, n, k.C.At); err != nil {
		return nil, err
	}
	if err := conv(f.d, nout, nin, k.D.At); err != nil {
		return nil, err
	}
	return f, nil
}

// Step advances the state machine by one control interval. dy is the
// normalized input vector (deviations, externals and — for self-conditioned
// realizations — the applied command); the returned u is the normalized
// command vector. All arithmetic is 32-bit fixed point.
func (f *FixedPointController) Step(dy []float64) ([]float64, error) {
	if len(dy) != f.nin {
		return nil, fmt.Errorf("ssvctl: fixed-point step got %d inputs, want %d", len(dy), f.nin)
	}
	dyF := make([]fixed, f.nin)
	for i, v := range dy {
		dyF[i] = toFixed(v)
	}
	// u = C x + D dy.
	u := make([]float64, f.nout)
	for i := 0; i < f.nout; i++ {
		var acc fixed
		for j := 0; j < f.n; j++ {
			acc += f.c[i*f.n+j].mul(f.x[j])
		}
		for j := 0; j < f.nin; j++ {
			acc += f.d[i*f.nin+j].mul(dyF[j])
		}
		u[i] = acc.float()
	}
	// x+ = A x + B dy.
	next := make([]fixed, f.n)
	for i := 0; i < f.n; i++ {
		var acc fixed
		for j := 0; j < f.n; j++ {
			acc += f.a[i*f.n+j].mul(f.x[j])
		}
		for j := 0; j < f.nin; j++ {
			acc += f.b[i*f.nin+j].mul(dyF[j])
		}
		next[i] = acc
	}
	f.x = next
	return u, nil
}

// Reset zeroes the state.
func (f *FixedPointController) Reset() {
	for i := range f.x {
		f.x[i] = 0
	}
}

// Ops returns the multiply and add operation count of one invocation —
// the quantity §VI-D reports as "nearly 700 32-bit fixed-point operations".
func (f *FixedPointController) Ops() int {
	mac := f.n*(f.n+f.nin) + f.nout*(f.n+f.nin)
	return 2 * mac // one multiply + one add each
}

// StorageBytes returns the matrix plus state storage in bytes (4-byte
// words), §VI-D's ≈2.6 KB.
func (f *FixedPointController) StorageBytes() int {
	return 4 * (len(f.a) + len(f.b) + len(f.c) + len(f.d) + len(f.x))
}
