// Package ssvctl is the runtime form of a synthesized SSV controller: the
// small state machine of the paper's Section VI-D,
//
//	x(T+1) = A x(T) + B Δy(T)
//	u(T)   = C x(T) + D Δy(T)
//
// wrapped with the signal conditioning a real deployment needs — scaling
// between physical and normalized units, quantization of each input to its
// allowed discrete levels, saturation with anti-windup on the controller's
// integrator states, and the runtime guardband monitor that detects when the
// modeled uncertainty is exhausted (paper §II-B).
package ssvctl

import (
	"fmt"
	"math"

	"yukta/internal/mat"
	"yukta/internal/robust"
	"yukta/internal/sysid"
)

// dwellSteps is the anti-chatter window: a level change cannot be reversed
// for this many control intervals.
const dwellSteps = 3

// Runtime executes a synthesized SSV controller against physical signals.
type Runtime struct {
	ctl *robust.Controller

	outScale []sysid.Scaling // physical ranges of the controlled outputs
	extScale []sysid.Scaling // physical ranges of the external signals
	inScale  []sysid.Scaling // physical ranges of the control inputs
	levels   [][]float64     // allowed physical values per control input
	slew     []int           // per-channel max level movement per step

	state    []float64   // controller state x
	targets  []float64   // normalized output targets
	intInv   *mat.Matrix // pseudo-inverse of the integrator output block
	lastU    []float64   // previous quantized command (hysteresis state)
	prevU    []float64   // level before the most recent change, per channel
	changeAt []int       // step index of the most recent level change
	step     int
	lastRaw  []float64 // previous raw (pre-quantization) physical command
	haveU    bool

	// Guardband monitoring.
	exceedStreak int
	exceeded     bool

	// heldSteps counts intervals skipped because the sensor path delivered
	// non-finite readings (graceful degradation under fault injection).
	heldSteps int

	opsPerStep int
	bytesState int

	// Per-step scratch buffers: Step runs every 500 ms control interval of
	// every simulated run, so the hot loop reuses these instead of
	// allocating (steady-state Step is allocation-free).
	dy, u, du      []float64
	ax, bdy, nextX []float64
	phys, diff     []float64
	corr           []float64
}

// Config wires a synthesized controller to its physical signals.
type Config struct {
	// Controller is the synthesized SSV controller to run.
	Controller *robust.Controller
	// OutputScales, ExternalScales and InputScales give the physical range
	// of each signal in the order the model was identified.
	OutputScales   []sysid.Scaling
	ExternalScales []sysid.Scaling // physical range of each external input
	InputScales    []sysid.Scaling // physical range of each control input
	// InputLevels lists the allowed physical values of each control input
	// (saturation and quantization, paper §II-B).
	InputLevels [][]float64
	// SlewLevels optionally bounds how many levels each input may move per
	// control interval (0 = unlimited). Real actuators are slew-limited —
	// cpufreq ramps through intermediate operating points and hotplug
	// brings cores up one at a time — and the bound also caps the power
	// transient a single controller move can cause.
	SlewLevels []int
}

// New validates the wiring and returns a runtime with zero initial state and
// mid-range targets.
func New(cfg Config) (*Runtime, error) {
	c := cfg.Controller
	if c == nil {
		return nil, fmt.Errorf("ssvctl: nil controller")
	}
	if len(cfg.OutputScales) != c.NumOut {
		return nil, fmt.Errorf("ssvctl: %d output scales for %d outputs", len(cfg.OutputScales), c.NumOut)
	}
	if len(cfg.ExternalScales) != c.NumExt {
		return nil, fmt.Errorf("ssvctl: %d external scales for %d externals", len(cfg.ExternalScales), c.NumExt)
	}
	if len(cfg.InputScales) != c.NumCtrl {
		return nil, fmt.Errorf("ssvctl: %d input scales for %d controls", len(cfg.InputScales), c.NumCtrl)
	}
	if len(cfg.InputLevels) != c.NumCtrl {
		return nil, fmt.Errorf("ssvctl: %d level sets for %d controls", len(cfg.InputLevels), c.NumCtrl)
	}
	for i, ls := range cfg.InputLevels {
		if len(ls) == 0 {
			return nil, fmt.Errorf("ssvctl: empty level set for input %d", i)
		}
	}
	n := c.K.Order()
	no, ne, ni := c.NumOut, c.NumExt, c.NumCtrl
	if cfg.SlewLevels != nil && len(cfg.SlewLevels) != c.NumCtrl {
		return nil, fmt.Errorf("ssvctl: %d slew bounds for %d controls", len(cfg.SlewLevels), c.NumCtrl)
	}
	r := &Runtime{
		ctl:      c,
		outScale: append([]sysid.Scaling(nil), cfg.OutputScales...),
		extScale: append([]sysid.Scaling(nil), cfg.ExternalScales...),
		inScale:  append([]sysid.Scaling(nil), cfg.InputScales...),
		levels:   cfg.InputLevels,
		slew:     append([]int(nil), cfg.SlewLevels...),
		state:    make([]float64, n),
		targets:  make([]float64, no),
		// Multiply-accumulate count of equations (3)-(4): the §VI-D cost.
		opsPerStep: 2 * (n*n + n*(no+ne) + ni*n + ni*(no+ne)),
		bytesState: 8 * (n*n + n*(no+ne) + ni*n + ni*(no+ne) + n),

		dy:      make([]float64, c.K.Inputs()),
		u:       make([]float64, ni),
		du:      make([]float64, ni),
		ax:      make([]float64, n),
		bdy:     make([]float64, n),
		nextX:   make([]float64, n),
		phys:    make([]float64, ni),
		diff:    make([]float64, ni),
		corr:    make([]float64, c.IntCount),
		lastRaw: make([]float64, ni),
	}
	// Integrator back-calculation gain: the integrator block contributes
	// Ki = -C[:, IntStart:IntStart+IntCount] to the command, and because
	// those states are pure (leaky) accumulators, correcting them by
	// Ki^+ (u_sat - u_raw) moves the command exactly onto the realizable
	// value with no transient re-injection.
	if c.IntCount > 0 {
		ki := c.K.C.Slice(0, ni, c.IntStart, c.IntStart+c.IntCount).Scale(-1)
		kkt := ki.Mul(ki.T())
		for i := 0; i < kkt.Rows(); i++ {
			kkt.Set(i, i, kkt.At(i, i)+1e-9)
		}
		inv, err := mat.Inverse(kkt)
		if err == nil {
			r.intInv = ki.T().Mul(inv) // IntCount×ni pseudo-inverse
		}
	}
	return r, nil
}

// SetTargets sets the output targets in physical units.
func (r *Runtime) SetTargets(phys []float64) error {
	if len(phys) != len(r.targets) {
		return fmt.Errorf("ssvctl: %d targets for %d outputs", len(phys), len(r.targets))
	}
	for i, p := range phys {
		r.targets[i] = r.outScale[i].Normalize(p)
	}
	return nil
}

// Targets returns the current targets in physical units.
func (r *Runtime) Targets() []float64 {
	out := make([]float64, len(r.targets))
	for i, t := range r.targets {
		out[i] = r.outScale[i].Denormalize(t)
	}
	return out
}

// Step runs one control interval: measurements and external signals arrive
// in physical units; the returned control inputs are physical values drawn
// from each input's allowed level set.
//
// applied reports the actuator values that were actually in effect during
// the interval the measurements cover (e.g. the effective frequency after
// any firmware throttle cap). Self-conditioned realizations feed it to the
// internal estimator, so neither saturation, quantization, nor firmware
// overrides can wind the controller up or blind it to why its command had
// no effect. Pass nil to fall back to the controller's own quantized
// command.
//
// The returned slice is a per-runtime scratch buffer, valid until the next
// Step call; callers that need to keep it must copy.
func (r *Runtime) Step(measurements, externals, applied []float64) ([]float64, error) {
	c := r.ctl
	if len(measurements) != c.NumOut {
		return nil, fmt.Errorf("ssvctl: %d measurements for %d outputs", len(measurements), c.NumOut)
	}
	if len(externals) != c.NumExt {
		return nil, fmt.Errorf("ssvctl: %d externals for %d external signals", len(externals), c.NumExt)
	}
	if applied != nil && len(applied) != c.NumCtrl {
		return nil, fmt.Errorf("ssvctl: %d applied values for %d controls", len(applied), c.NumCtrl)
	}
	// Graceful degradation on faulted inputs: a non-finite reading means the
	// sensor path dropped this interval. Stepping the state machine on NaN
	// would poison the state vector permanently, so the runtime holds its
	// last good command and freezes its state, integrators and guardband
	// monitor; the next good reading resumes control from where it left off.
	if !finiteAll(measurements) || !finiteAll(externals) {
		r.heldSteps++
		if r.haveU {
			copy(r.phys, r.lastU)
			return r.phys, nil
		}
		// No command issued yet: hold each actuator at its mid-range level.
		for i := range r.phys {
			ls := r.levels[i]
			r.phys[i] = ls[len(ls)/2]
		}
		return r.phys, nil
	}
	// Build the input vector: normalized deviations, then externals, then —
	// for self-conditioned realizations — the applied command (filled in
	// after quantization).
	dy := r.dy
	for i, m := range measurements {
		dy[i] = r.outScale[i].Normalize(m) - r.targets[i]
	}
	for i, e := range externals {
		dy[c.NumOut+i] = r.extScale[i].Normalize(e)
	}

	// u = C x + D Δy.
	u := c.K.C.MulVecTo(r.u, r.state)
	du := c.K.D.MulVecTo(r.du, dy)
	for i := range u {
		u[i] += du[i]
	}

	// Denormalize, saturate and quantize each input to its level set, with
	// hysteresis: the command only moves to a different level when the raw
	// value clears 60% of the gap toward it. Plain nearest-level rounding
	// invites limit cycles when the continuous command sits near a level
	// boundary — the quantizer flips every interval and, for coarse levels
	// like thread counts, each flip is a large plant perturbation.
	if !r.haveU {
		r.lastU = make([]float64, c.NumCtrl)
		r.prevU = make([]float64, c.NumCtrl)
		r.changeAt = make([]int, c.NumCtrl)
		for i := range r.lastU {
			r.lastU[i] = nearestLevel(r.levels[i], r.inScale[i].Denormalize(u[i]))
			r.prevU[i] = r.lastU[i]
			r.changeAt[i] = -dwellSteps
		}
		r.haveU = true
	}
	r.step++
	phys := r.phys
	diff := r.diff // range-clamp excess, normalized
	for i := range diff {
		diff[i] = 0
	}
	saturated := false
	for i := range phys {
		raw := r.inScale[i].Denormalize(u[i])
		r.lastRaw[i] = raw
		cand := nearestLevel(r.levels[i], raw)
		prev := r.lastU[i]
		if cand != prev && math.Abs(raw-prev) < 0.6*math.Abs(cand-prev) {
			// Not yet decisively across the boundary: hold the old level.
			cand = prev
		}
		// Slew limiting: move at most slew[i] levels per interval.
		if cand != prev && r.slew != nil && r.slew[i] > 0 {
			pi := levelIndex(r.levels[i], prev)
			ci := levelIndex(r.levels[i], cand)
			if d := ci - pi; d > r.slew[i] {
				cand = r.levels[i][pi+r.slew[i]]
			} else if d < -r.slew[i] {
				cand = r.levels[i][pi-r.slew[i]]
			}
		}
		// Anti-chatter dwell: undoing the previous change within a few
		// intervals is the signature of a quantizer limit cycle (the raw
		// command rides a level boundary); suppress the reversal the way
		// hotplug governors use hysteresis counters.
		if cand != prev && cand == r.prevU[i] && r.step-r.changeAt[i] < dwellSteps {
			cand = prev
		}
		if cand != prev {
			r.prevU[i] = prev
			r.changeAt[i] = r.step
		}
		phys[i] = cand
		r.lastU[i] = cand
		lo, hi := r.levels[i][0], r.levels[i][len(r.levels[i])-1]
		if raw < lo || raw > hi {
			saturated = true
			clamped := math.Max(lo, math.Min(hi, raw))
			diff[i] = r.inScale[i].Normalize(clamped) - u[i]
		}
	}

	// Advance the state. Self-conditioned realizations receive the applied
	// command as trailing inputs, so the internal estimator tracks what the
	// plant actually got and saturation cannot wind it up.
	if c.UFeedback {
		for i := range phys {
			v := phys[i]
			if applied != nil {
				v = applied[i]
			}
			dy[c.NumOut+c.NumExt+i] = r.inScale[i].Normalize(v)
		}
	}
	ax := c.K.A.MulVecTo(r.ax, r.state)
	bdy := c.K.B.MulVecTo(r.bdy, dy)
	next := r.nextX
	for i := range ax {
		next[i] = ax[i] + bdy[i]
	}

	// Integrator back-calculation: move the accumulators so the command
	// lands on the range-clamped value. Exact (Ki Δxi = diff), so in-range
	// channels keep accumulating toward their next quantization level
	// undisturbed.
	if saturated && r.intInv != nil {
		// u = -Ki xi, so moving the command by diff needs Δxi = -Ki^+ diff.
		corr := r.intInv.MulVecTo(r.corr, diff)
		for i := 0; i < c.IntCount; i++ {
			next[c.IntStart+i] -= corr[i]
		}
	}
	r.state, r.nextX = next, r.state

	// Guardband monitor: if deviations persistently exceed the guaranteed
	// bounds, the modeled uncertainty has been exhausted.
	over := false
	for i := 0; i < c.NumOut; i++ {
		if math.Abs(dy[i]) > c.Report.GuaranteedBounds[i]*1.5 {
			over = true
			break
		}
	}
	if over {
		r.exceedStreak++
		if r.exceedStreak >= 8 {
			r.exceeded = true
		}
	} else {
		r.exceedStreak = 0
	}
	return phys, nil
}

// LastRawCommand returns the physical-unit command of the most recent Step
// before saturation and quantization — a diagnostic for inspecting how hard
// the controller is pushing against its actuator limits.
func (r *Runtime) LastRawCommand() []float64 {
	return append([]float64(nil), r.lastRaw...)
}

// GuardbandExceeded reports whether the runtime has detected sustained
// deviations beyond the controller's guaranteed bounds — the paper's "the
// controller detects it dynamically" behaviour.
func (r *Runtime) GuardbandExceeded() bool { return r.exceeded }

// HeldSteps returns how many control intervals were skipped because the
// sensor path delivered non-finite readings.
func (r *Runtime) HeldSteps() int { return r.heldSteps }

// Reset clears the controller state, the quantizer hysteresis and the
// guardband monitor.
func (r *Runtime) Reset() {
	for i := range r.state {
		r.state[i] = 0
	}
	r.lastU = nil
	r.prevU = nil
	r.changeAt = nil
	r.step = 0
	r.haveU = false
	r.exceedStreak = 0
	r.exceeded = false
	r.heldSteps = 0
}

// Reseed prepares the runtime for bumpless re-engagement after a fallback
// episode: it clears the controller state, integrators and health monitors
// like Reset, then seeds the quantizer hysteresis from the actuator values
// currently applied to the plant (snapped to each input's level set). The
// first post-reseed Step therefore moves relative to the plant's real
// operating point instead of jumping to whatever the stale state vector
// would command. A nil applied behaves exactly like Reset.
func (r *Runtime) Reseed(applied []float64) error {
	if applied != nil && len(applied) != len(r.levels) {
		return fmt.Errorf("ssvctl: %d applied values for %d controls", len(applied), len(r.levels))
	}
	r.Reset()
	if applied == nil {
		return nil
	}
	n := len(r.levels)
	r.lastU = make([]float64, n)
	r.prevU = make([]float64, n)
	r.changeAt = make([]int, n)
	for i := range r.lastU {
		r.lastU[i] = nearestLevel(r.levels[i], applied[i])
		r.prevU[i] = r.lastU[i]
		r.changeAt[i] = -dwellSteps
		r.lastRaw[i] = r.lastU[i]
	}
	r.haveU = true
	// Bumpless transfer: move the integrator states so the re-engaged
	// controller's zero-deviation command equals the applied operating point
	// (u = -Ki xi, so xi = -Ki^+ u_applied — the same pseudo-inverse the
	// anti-windup correction uses). Without this the first post-reseed
	// command would snap to the mid-range the zero state encodes.
	if r.intInv != nil {
		for i := range r.diff {
			r.diff[i] = r.inScale[i].Normalize(r.lastU[i])
		}
		corr := r.intInv.MulVecTo(r.corr, r.diff)
		for i := 0; i < r.ctl.IntCount; i++ {
			r.state[r.ctl.IntStart+i] -= corr[i]
		}
	}
	return nil
}

// Health is the runtime's self-diagnosis snapshot for a supervisory layer.
type Health struct {
	// GuardbandExceeded mirrors GuardbandExceeded(): sustained deviations
	// beyond the synthesis' guaranteed bounds.
	GuardbandExceeded bool
	// ExceedStreak is the current run of consecutive intervals whose
	// deviations exceeded the guaranteed bounds (zero when the latest
	// interval was back inside them). Unlike the latched GuardbandExceeded,
	// it distinguishes an ongoing excursion from an old one.
	ExceedStreak int
	// HeldSteps mirrors HeldSteps(): cumulative intervals skipped on
	// non-finite sensor readings.
	HeldSteps int
	// Railed reports that some channel's latest raw command sat beyond its
	// physical level range by more than half the range's span — the
	// controller is not merely saturating but pushing far outside the
	// actuator's reality.
	Railed bool
	// NonFinite reports that the latest raw command contained NaN/Inf.
	NonFinite bool
}

// Health returns the runtime's current health snapshot.
func (r *Runtime) Health() Health {
	h := Health{GuardbandExceeded: r.exceeded, ExceedStreak: r.exceedStreak, HeldSteps: r.heldSteps}
	if r.step == 0 {
		return h
	}
	for i, raw := range r.lastRaw {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			h.NonFinite = true
			continue
		}
		ls := r.levels[i]
		lo, hi := ls[0], ls[len(ls)-1]
		span := hi - lo
		if span <= 0 {
			span = math.Max(math.Abs(hi), 1)
		}
		if raw < lo-0.5*span || raw > hi+0.5*span {
			h.Railed = true
		}
	}
	return h
}

// finiteAll reports whether every element of v is a finite number.
func finiteAll(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// OpsPerStep returns the number of fixed-point multiply/add operations one
// invocation performs — the §VI-D hardware-cost estimate.
func (r *Runtime) OpsPerStep() int { return r.opsPerStep }

// StateBytes returns the storage footprint of the controller matrices and
// state (§VI-D reports ≈2.6 KB for N=20, I=4, O=4, E=3).
func (r *Runtime) StateBytes() int { return r.bytesState }

// Report exposes the synthesis report of the wrapped controller.
func (r *Runtime) Report() robust.Report { return r.ctl.Report }

// levelIndex returns the index of level v in the sorted level set.
func levelIndex(levels []float64, v float64) int {
	best, bd := 0, math.Abs(v-levels[0])
	for i, l := range levels[1:] {
		if d := math.Abs(v - l); d < bd {
			best, bd = i+1, d
		}
	}
	return best
}

// nearestLevel returns the closest allowed level to v. Levels must be sorted
// ascending; ties resolve to the lower level.
func nearestLevel(levels []float64, v float64) float64 {
	best := levels[0]
	bd := math.Abs(v - best)
	for _, l := range levels[1:] {
		if d := math.Abs(v - l); d < bd {
			best, bd = l, d
		}
	}
	return best
}

// Levels builds an ascending level set from lo to hi in the given step.
func Levels(lo, hi, step float64) []float64 {
	if step <= 0 || hi < lo {
		return []float64{lo}
	}
	var out []float64
	for v := lo; v <= hi+1e-9; v += step {
		out = append(out, math.Round(v*1e6)/1e6)
	}
	return out
}
