package ssvctl

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFixedConversionRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		v := float64(seed%65536) / 97.0
		return math.Abs(toFixed(v).float()-v) <= 1.0/(1<<fracBits)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFixedMul(t *testing.T) {
	cases := [][3]float64{
		{1, 1, 1}, {2, 0.5, 1}, {-3, 0.25, -0.75}, {1.5, 1.5, 2.25}, {0, 5, 0},
	}
	for _, c := range cases {
		got := toFixed(c[0]).mul(toFixed(c[1])).float()
		if math.Abs(got-c[2]) > 1e-3 {
			t.Fatalf("%v*%v = %v, want %v", c[0], c[1], got, c[2])
		}
	}
}

func TestFixedPointMatchesFloat(t *testing.T) {
	// The fixed-point state machine must track the floating-point stepping
	// of the same controller to within quantization error over a long run —
	// the §VI-D claim that a 32-bit fixed-point state machine suffices.
	ctl := synthController(t)
	fp, err := NewFixedPointController(ctl)
	if err != nil {
		t.Fatal(err)
	}
	k := ctl.K
	xf := make([]float64, k.Order())
	var maxDiff float64
	for step := 0; step < 300; step++ {
		// A mildly varying bounded input (deviation + external + applied).
		dy := []float64{
			0.3 * math.Sin(float64(step)*0.11),
			0.2 * math.Cos(float64(step)*0.07),
			0.1 * math.Sin(float64(step)*0.031),
		}
		uFix, err := fp.Step(dy)
		if err != nil {
			t.Fatal(err)
		}
		uFloat := k.C.MulVec(xf)
		du := k.D.MulVec(dy)
		for i := range uFloat {
			uFloat[i] += du[i]
		}
		ax := k.A.MulVec(xf)
		bdy := k.B.MulVec(dy)
		for i := range ax {
			xf[i] = ax[i] + bdy[i]
		}
		for i := range uFix {
			if d := math.Abs(uFix[i] - uFloat[i]); d > maxDiff {
				maxDiff = d
			}
		}
	}
	if maxDiff > 0.01 {
		t.Fatalf("fixed-point drifted %.4f from float (normalized units)", maxDiff)
	}
}

func TestFixedPointCostAccounting(t *testing.T) {
	ctl := synthController(t)
	fp, err := NewFixedPointController(ctl)
	if err != nil {
		t.Fatal(err)
	}
	if fp.Ops() <= 0 || fp.StorageBytes() <= 0 {
		t.Fatal("cost accounting must be positive")
	}
	// For the paper's dimensions the §VI-D numbers are ~700 ops and ~2.6 KB;
	// our controller realization carries the extra self-conditioning inputs,
	// so allow the same order of magnitude.
	n, nin, nout := 20, 11, 4
	mac := n*(n+nin) + nout*(n+nin)
	if ops := 2 * mac; ops < 700 || ops > 3000 {
		t.Fatalf("paper-dimension fixed-point ops %d out of range", ops)
	}
}

func TestFixedPointReset(t *testing.T) {
	ctl := synthController(t)
	fp, err := NewFixedPointController(ctl)
	if err != nil {
		t.Fatal(err)
	}
	u1, err := fp.Step([]float64{0.5, 0.1, 0})
	if err != nil {
		t.Fatal(err)
	}
	fp.Step([]float64{0.5, 0.1, 0})
	fp.Reset()
	u2, err := fp.Step([]float64{0.5, 0.1, 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := range u1 {
		if u1[i] != u2[i] {
			t.Fatal("Reset did not restore the initial state")
		}
	}
}

func TestFixedPointArityError(t *testing.T) {
	ctl := synthController(t)
	fp, err := NewFixedPointController(ctl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fp.Step([]float64{1}); err == nil {
		t.Fatal("expected arity error")
	}
}
