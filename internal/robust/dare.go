// Package robust implements the robust-control machinery behind Yukta's SSV
// controllers: the discrete algebraic Riccati equation (DARE), LQR and
// Kalman gains built on it, the structured singular value (SSV, μ) upper
// bound via diagonal scaling, and the iterative SSV controller synthesis
// described in Section II-C of the paper (propose a controller, evaluate the
// SSV of the closed loop against the designer's Δ/B/W, and adjust until the
// scaling factor min(s) exceeds 1).
package robust

import (
	"errors"
	"fmt"

	"yukta/internal/mat"
)

// ErrSynthesis reports that a controller satisfying the specification could
// not be constructed.
var ErrSynthesis = errors.New("robust: synthesis failed")

// SolveDARE computes the stabilizing solution X of the discrete algebraic
// Riccati equation
//
//	X = A^T X A - A^T X B (R + B^T X B)^-1 B^T X A + Q
//
// using the structure-preserving doubling algorithm (SDA), which converges
// quadratically when (A,B) is stabilizable and (A,Q^{1/2}) is detectable.
func SolveDARE(a, b, q, r *mat.Matrix) (*mat.Matrix, error) {
	n := a.Rows()
	if a.Cols() != n || b.Rows() != n || q.Rows() != n || q.Cols() != n ||
		r.Rows() != b.Cols() || r.Cols() != b.Cols() {
		return nil, fmt.Errorf("robust: DARE dimension mismatch (A %dx%d, B %dx%d, Q %dx%d, R %dx%d)",
			a.Rows(), a.Cols(), b.Rows(), b.Cols(), q.Rows(), q.Cols(), r.Rows(), r.Cols())
	}
	rInv, err := mat.Inverse(r)
	if err != nil {
		return nil, fmt.Errorf("robust: R is singular: %w", err)
	}
	// SDA initialization: A0 = A, G0 = B R^-1 B^T, H0 = Q.
	ak := a.Clone()
	gk := b.Mul(rInv).Mul(b.T())
	hk := q.Clone()
	eye := mat.Identity(n)
	for iter := 0; iter < 120; iter++ {
		w := eye.Add(gk.Mul(hk))
		wInv, err := mat.Inverse(w)
		if err != nil {
			return nil, fmt.Errorf("robust: DARE doubling became singular at iteration %d: %w", iter, err)
		}
		awi := ak.Mul(wInv)
		a1 := awi.Mul(ak)
		g1 := gk.Add(awi.Mul(gk).Mul(ak.T()))
		h1 := hk.Add(ak.T().Mul(hk).Mul(wInv).Mul(ak))
		dh := h1.Sub(hk).MaxAbs()
		ak, gk, hk = a1, g1, h1
		if dh <= 1e-13*(1+hk.MaxAbs()) {
			// Symmetrize to clean up roundoff.
			x := hk.Add(hk.T()).Scale(0.5)
			return x, nil
		}
	}
	return nil, mat.ErrNoConvergence
}

// LQRGain returns the optimal state-feedback gain K for the discrete LQR
// problem minimizing sum x^T Q x + u^T R u subject to x+ = A x + B u, with
// u = -K x, together with the Riccati solution X.
func LQRGain(a, b, q, r *mat.Matrix) (k, x *mat.Matrix, err error) {
	x, err = SolveDARE(a, b, q, r)
	if err != nil {
		return nil, nil, err
	}
	btxb := r.Add(b.T().Mul(x).Mul(b))
	rhs := b.T().Mul(x).Mul(a)
	k, err = mat.Solve(btxb, rhs)
	if err != nil {
		return nil, nil, fmt.Errorf("robust: LQR gain solve: %w", err)
	}
	return k, x, nil
}

// KalmanGain returns the steady-state (predictor form) Kalman gain L for
//
//	x+ = A x + w,   y = C x + v,   cov(w)=W, cov(v)=V
//
// such that the estimator  xhat+ = A xhat + B u + L (y - C xhat)  is optimal,
// together with the error covariance P.
func KalmanGain(a, c, w, v *mat.Matrix) (l, p *mat.Matrix, err error) {
	// Duality: filter DARE is the control DARE with (A^T, C^T, W, V).
	p, err = SolveDARE(a.T(), c.T(), w, v)
	if err != nil {
		return nil, nil, err
	}
	cpct := v.Add(c.Mul(p).Mul(c.T()))
	rhs := c.Mul(p).Mul(a.T())
	lt, err := mat.Solve(cpct, rhs)
	if err != nil {
		return nil, nil, fmt.Errorf("robust: Kalman gain solve: %w", err)
	}
	return lt.T(), p, nil
}
