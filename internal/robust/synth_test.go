package robust

import (
	"math"
	"testing"

	"yukta/internal/lti"
	"yukta/internal/mat"
)

// testPlant returns a stable 2-input/1-external/2-output coupled plant used
// across the synthesis tests (normalized units, Ts = 0.5 s).
func testPlant() *lti.StateSpace {
	a := mat.FromRows([][]float64{
		{0.70, 0.10, 0, 0},
		{0.05, 0.60, 0.1, 0},
		{0, 0.1, 0.5, 0.05},
		{0, 0, 0.05, 0.40},
	})
	// Inputs: u0, u1 (controls), e0 (external signal).
	b := mat.FromRows([][]float64{
		{0.5, 0.1, 0.05},
		{0.1, 0.4, 0.02},
		{0.2, 0.2, 0.1},
		{0.05, 0.3, 0.02},
	})
	c := mat.FromRows([][]float64{
		{1, 0.2, 0.1, 0},
		{0.1, 0.9, 0, 0.2},
	})
	d := mat.Zeros(2, 3)
	return lti.MustStateSpace(a, b, c, d, 0.5)
}

func testSpec() *Spec {
	return &Spec{
		Plant:        testPlant(),
		NumControls:  2,
		InputWeights: []float64{1, 1},
		InputQuanta:  []float64{0.05, 0.05},
		OutputBounds: []float64{0.2, 0.2},
		Uncertainty:  0.4,
	}
}

func TestSynthesizeProducesRobustController(t *testing.T) {
	ctl, err := Synthesize(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if ctl.Report.SSV > 1 {
		t.Fatalf("SSV = %v, want <= 1", ctl.Report.SSV)
	}
	if ctl.Report.MinS < 1 {
		t.Fatalf("min(s) = %v, want >= 1", ctl.Report.MinS)
	}
	if ctl.NumCtrl != 2 || ctl.NumOut != 2 || ctl.NumExt != 1 {
		t.Fatalf("controller shape wrong: %+v", ctl)
	}
	// Controller state dimension: plant order + one integrator per output.
	if ctl.Report.StateDim != 6 {
		t.Fatalf("state dim = %d, want 6", ctl.Report.StateDim)
	}
}

func TestSynthesizedClosedLoopStable(t *testing.T) {
	spec := testSpec()
	ctl, err := Synthesize(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Close the loop against the nominal plant (Δy feedback only, e = 0) and
	// check internal stability via the LFT used for analysis.
	ssv, err := evaluateSSV(spec, ctl.K, spec.resolveTargetScales())
	if err != nil {
		t.Fatal(err)
	}
	if ssv >= 1e6 {
		t.Fatal("closed loop flagged unstable by evaluateSSV")
	}
}

func TestSynthesizedControllerTracksTargets(t *testing.T) {
	spec := testSpec()
	ctl, err := Synthesize(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !ctl.UFeedback {
		t.Fatal("SSV realization should be self-conditioned")
	}
	// Simulate the true plant under the controller with a constant target
	// and verify the outputs converge close to the target (the leaky
	// integrators trade exact tracking for bounded inputs when targets are
	// infeasible; for this feasible target the residual is small).
	g := spec.Plant
	target := []float64{0.3, -0.2}
	xp := make([]float64, g.Order())
	xk := make([]float64, ctl.K.Order())
	var y []float64
	u := make([]float64, 3) // 2 controls + 1 external (held at 0)
	for step := 0; step < 400; step++ {
		// Plant output.
		y = g.C.MulVec(xp)
		du := g.D.MulVec(u)
		for i := range y {
			y[i] += du[i]
		}
		// Controller input: deviations, external signals, then the applied
		// command (the self-conditioning channel, fed the computed command
		// since nothing saturates in this scenario).
		dy := []float64{y[0] - target[0], y[1] - target[1], 0, 0, 0}
		uk := ctl.K.C.MulVec(xk)
		dk := ctl.K.D.MulVec(dy)
		for i := range uk {
			uk[i] += dk[i]
		}
		copy(u[:2], uk)
		copy(dy[3:], uk)
		// Advance controller and plant.
		ak := ctl.K.A.MulVec(xk)
		bk := ctl.K.B.MulVec(dy)
		for i := range ak {
			xk[i] = ak[i] + bk[i]
		}
		ap := g.A.MulVec(xp)
		bp := g.B.MulVec(u)
		for i := range ap {
			xp[i] = ap[i] + bp[i]
		}
	}
	for i, tv := range target {
		if math.Abs(y[i]-tv) > 0.06 {
			t.Fatalf("output %d settled at %v, want near %v", i, y[i], tv)
		}
	}
}

func TestGuaranteedBoundsGrowWithGuardband(t *testing.T) {
	// Paper Fig. 16(a): guaranteed deviation bounds grow slowly as the
	// uncertainty guardband increases.
	var prev float64
	for _, unc := range []float64{0.4, 1.0, 2.5} {
		spec := testSpec()
		spec.Uncertainty = unc
		ctl, err := Synthesize(spec)
		if err != nil {
			t.Fatalf("uncertainty %v: %v", unc, err)
		}
		gb := ctl.Report.GuaranteedBounds[0]
		if gb < spec.OutputBounds[0]-1e-12 {
			t.Fatalf("guaranteed bound %v below requested %v", gb, spec.OutputBounds[0])
		}
		if gb+1e-9 < prev {
			t.Fatalf("guaranteed bounds not monotone: %v after %v at unc=%v", gb, prev, unc)
		}
		prev = gb
	}
}

func TestHigherRhoForLargerGuardband(t *testing.T) {
	// More uncertainty should never yield a more aggressive controller.
	specLo := testSpec()
	ctlLo, err := Synthesize(specLo)
	if err != nil {
		t.Fatal(err)
	}
	specHi := testSpec()
	specHi.Uncertainty = 3.0
	ctlHi, err := Synthesize(specHi)
	if err != nil {
		t.Fatal(err)
	}
	if ctlHi.Report.ControlPenalty < ctlLo.Report.ControlPenalty {
		t.Fatalf("penalty with 300%% guardband (%v) below 40%% guardband (%v)",
			ctlHi.Report.ControlPenalty, ctlLo.Report.ControlPenalty)
	}
}

func TestSpecValidation(t *testing.T) {
	cases := []func(*Spec){
		func(s *Spec) { s.Plant = nil },
		func(s *Spec) { s.NumControls = 0 },
		func(s *Spec) { s.NumControls = 5 },
		func(s *Spec) { s.InputWeights = []float64{1} },
		func(s *Spec) { s.InputWeights = []float64{1, -1} },
		func(s *Spec) { s.InputQuanta = []float64{0.1} },
		func(s *Spec) { s.OutputBounds = []float64{0.1} },
		func(s *Spec) { s.OutputBounds = []float64{0.1, 0} },
		func(s *Spec) { s.Uncertainty = -0.1 },
	}
	for i, mutate := range cases {
		s := testSpec()
		mutate(s)
		if _, err := Synthesize(s); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}
