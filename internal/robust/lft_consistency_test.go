package robust

import (
	"testing"

	"yukta/internal/lti"
	"yukta/internal/mat"
)

// TestLFTStabilityConsistency guards against the analysis loop and the
// direct simulation loop disagreeing about stability: buildClosedLoop's
// internal dynamics matrix must have the same stability verdict as the
// hand-assembled plant+controller interconnection.
func TestLFTStabilityConsistency(t *testing.T) {
	// A plant whose DC gain is rank deficient (both inputs drive the same
	// direction): integral action on both outputs cannot zero both errors,
	// the classic windup-drift trap.
	a := mat.FromRows([][]float64{{0.5, 0}, {0, 0.5}})
	b := mat.FromRows([][]float64{{1, 1}, {0.5, 0.5}})
	c := mat.Identity(2)
	d := mat.Zeros(2, 2)
	plant := lti.MustStateSpace(a, b, c, d, 0.5)
	spec := &Spec{
		Plant:        plant,
		NumControls:  2,
		InputWeights: []float64{1, 1},
		InputQuanta:  []float64{0.05, 0.05},
		OutputBounds: []float64{0.4, 0.4},
		Uncertainty:  0.4,
	}
	k, err := designCandidate(spec, 0.25, 0.05, true)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := buildClosedLoop(spec, k, spec.resolveTargetScales())
	if err != nil {
		t.Fatal(err)
	}
	rLFT, err := cl.SpectralRadius()
	if err != nil {
		t.Fatal(err)
	}
	// Direct interconnection: u = K dy, dy = y (zero target), Dk = 0.
	n, nk := plant.Order(), k.Order()
	big := mat.Zeros(n+nk, n+nk)
	big.SetSlice(0, 0, plant.A)
	big.SetSlice(0, n, plant.B.Slice(0, n, 0, 2).Mul(k.C))
	big.SetSlice(n, 0, k.B.Slice(0, nk, 0, 2).Mul(plant.C))
	big.SetSlice(n, n, k.A)
	rDirect, err := mat.SpectralRadius(big)
	if err != nil {
		t.Fatal(err)
	}
	if (rLFT < 1) != (rDirect < 1) {
		t.Fatalf("stability verdicts disagree: LFT radius %v, direct radius %v", rLFT, rDirect)
	}
	t.Logf("LFT radius %.4f, direct radius %.4f", rLFT, rDirect)
}
