package robust

import (
	"math"
	"math/cmplx"

	"yukta/internal/mat"
)

// MuLowerBound returns a lower bound on the structured singular value μ(M)
// for the scalar complex uncertainty structure, via the standard power
// iteration: μ(M) = max over diagonal unitary U of ρ(U M), and the
// iteration seeks a fixed point of the associated alignment condition. The
// returned value is the largest |λ| found; together with MuUpperBound it
// brackets μ, and the gap indicates how conservative the D-scaling bound is
// (MATLAB's mussv reports the same pair).
func MuLowerBound(m *mat.CMatrix) float64 {
	n := m.Rows()
	if n != m.Cols() {
		panic("robust: MuLowerBound requires a square matrix")
	}
	if n == 0 {
		return 0
	}
	if n == 1 {
		return cmplx.Abs(m.At(0, 0))
	}
	best := 0.0
	// Several deterministic restarts: the power iteration for μ is not
	// globally convergent, so restart from varied phase patterns. Each
	// restart's candidate is *certified* by evaluating ρ(U M) for the
	// explicit diagonal unitary U the iteration aligned — U is a feasible
	// worst-case uncertainty direction, so ρ(U M) is always a valid lower
	// bound (μ(M) = max over diagonal unitary U of ρ(U M) for this
	// structure), even when the iteration has not converged.
	for restart := 0; restart < 4; restart++ {
		b := make([]complex128, n)
		for i := range b {
			theta := 2 * math.Pi * float64(i*(restart+1)) / float64(n+1)
			b[i] = cmplx.Exp(complex(0, theta))
		}
		normalizeVec(b)
		var a []complex128
		for iter := 0; iter < 60; iter++ {
			// a = M b, then align the uncertainty phases and iterate with
			// b ← normalized phase-aligned a.
			a = mulVec(m, b)
			if vecNorm(a) == 0 {
				break
			}
			next := make([]complex128, n)
			for i := range next {
				ph := cmplx.Conj(phase(a[i]) * cmplx.Conj(phase(b[i])))
				next[i] = a[i] * ph
			}
			normalizeVec(next)
			// Certify this iterate: U aligns M's output phases back onto b.
			um := m.Clone()
			for i := 0; i < n; i++ {
				u := phase(b[i]) * cmplx.Conj(phase(a[i]))
				for j := 0; j < n; j++ {
					um.Set(i, j, u*m.At(i, j))
				}
			}
			if rho := complexSpectralRadius(um); rho > best {
				best = rho
			}
			var diff float64
			for i := range b {
				diff += cmplx.Abs(next[i] - b[i])
			}
			b = next
			if diff < 1e-9 {
				break
			}
		}
	}
	// ρ(M) itself (U = I) is always a valid lower bound too.
	if rho := complexSpectralRadius(m); rho > best {
		best = rho
	}
	return best
}

// complexSpectralRadius computes ρ(M) through the real 2n×2n embedding.
func complexSpectralRadius(m *mat.CMatrix) float64 {
	n := m.Rows()
	re := mat.Zeros(2*n, 2*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := m.At(i, j)
			re.Set(i, j, real(v))
			re.Set(i, n+j, -imag(v))
			re.Set(n+i, j, imag(v))
			re.Set(n+i, n+j, real(v))
		}
	}
	rho, err := mat.SpectralRadius(re)
	if err != nil {
		return 0
	}
	return rho
}

func phase(v complex128) complex128 {
	a := cmplx.Abs(v)
	if a == 0 {
		return 1
	}
	return v / complex(a, 0)
}

func mulVec(m *mat.CMatrix, v []complex128) []complex128 {
	n := m.Rows()
	out := make([]complex128, n)
	for i := 0; i < n; i++ {
		var s complex128
		for j := 0; j < n; j++ {
			s += m.At(i, j) * v[j]
		}
		out[i] = s
	}
	return out
}

func vecNorm(v []complex128) float64 {
	var s float64
	for _, x := range v {
		s += real(x)*real(x) + imag(x)*imag(x)
	}
	return math.Sqrt(s)
}

func normalizeVec(v []complex128) {
	n := vecNorm(v)
	if n == 0 {
		return
	}
	for i := range v {
		v[i] /= complex(n, 0)
	}
}
