package robust

import (
	"math"
	"math/cmplx"

	"yukta/internal/lti"
	"yukta/internal/mat"
)

// WorstCaseGain bounds the worst-case gain of an uncertain system given in
// Δ-N form: sys maps [w_Δ (nd); w_perf] → [f_Δ (nd); z_perf], and the
// uncertainty block Δ (nd scalar complex channels, each bounded by delta)
// closes the upper loop. The returned value bounds
//
//	max over ||Δ|| <= delta of || F_u(N, Δ) ||∞
//
// using the standard skewed-μ grid bound: at each frequency the worst-case
// gain is the largest γ such that μ of the loop with the performance channel
// scaled by 1/γ reaches 1, found by bisection on γ.
//
// This is the analysis MATLAB's wcgain performs; the paper's claim that an
// SSV design "keeps all visible outputs z within bounds B of the targets for
// all possible model inaccuracies smaller than the specified Δ" is exactly
// WorstCaseGain(N, nd, delta) <= 1 for the bounds-scaled performance channel.
func WorstCaseGain(sys *lti.StateSpace, nd int, delta float64) (float64, error) {
	if nd < 0 || nd > sys.Inputs() || nd > sys.Outputs() {
		return 0, ErrSynthesis
	}
	const grid = 64
	worst := 0.0
	for i := 0; i <= grid; i++ {
		theta := math.Pi * float64(i) / grid
		g, err := sys.Evaluate(cmplx.Exp(complex(0, theta)))
		if err != nil {
			return math.Inf(1), nil
		}
		if v := worstCaseGainAt(g, nd, delta); v > worst {
			worst = v
		}
	}
	return worst, nil
}

// worstCaseGainAt computes the frequency-local worst-case gain by bisection
// on the performance scaling.
func worstCaseGainAt(g *mat.CMatrix, nd int, delta float64) float64 {
	rows, cols := g.Rows(), g.Cols()
	np := rows - nd // performance outputs
	nq := cols - nd // performance inputs
	if np <= 0 || nq <= 0 {
		return 0
	}
	// Nominal gain of the performance block is a lower limit.
	perf := mat.CZeros(np, nq)
	for i := 0; i < np; i++ {
		for j := 0; j < nq; j++ {
			perf.Set(i, j, g.At(nd+i, nd+j))
		}
	}
	lo := mat.CMaxSingularValue(perf)
	if nd == 0 || delta == 0 {
		return lo
	}
	// Robust stability first: if μ of the Δ-facing block times delta
	// reaches 1 the worst-case gain is unbounded.
	dblock := mat.CZeros(nd, nd)
	for i := 0; i < nd; i++ {
		for j := 0; j < nd; j++ {
			dblock.Set(i, j, g.At(i, j))
		}
	}
	if MuUpperBound(dblock)*delta >= 1 {
		return math.Inf(1)
	}
	// Bisection on gamma: the uncertain loop's gain exceeds gamma iff
	// μ_skewed(M(gamma)) >= 1, where M scales the Δ rows/cols by delta and
	// the performance rows/cols by 1/sqrt(gamma) each.
	exceeds := func(gamma float64) bool {
		m := mat.CZeros(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				v := g.At(i, j)
				if i < nd {
					v *= complex(math.Sqrt(delta), 0)
				} else {
					v *= complex(1/math.Sqrt(gamma), 0)
				}
				if j < nd {
					v *= complex(math.Sqrt(delta), 0)
				} else {
					v *= complex(1/math.Sqrt(gamma), 0)
				}
				m.Set(i, j, v)
			}
		}
		return MuUpperBound(m) >= 1
	}
	hiGuess := math.Max(lo, 1e-6)
	for iter := 0; iter < 60 && exceeds(hiGuess); iter++ {
		hiGuess *= 2
	}
	loGuess := math.Max(lo, 1e-9)
	for iter := 0; iter < 40; iter++ {
		mid := math.Sqrt(loGuess * hiGuess)
		if exceeds(mid) {
			loGuess = mid
		} else {
			hiGuess = mid
		}
		if hiGuess/loGuess < 1.01 {
			break
		}
	}
	return hiGuess
}
