package robust

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"yukta/internal/mat"
)

// dareResidual returns ||A'XA - X - A'XB(R+B'XB)^-1 B'XA + Q|| for a
// candidate solution X.
func dareResidual(a, b, q, r, x *mat.Matrix) float64 {
	btxb := r.Add(b.T().Mul(x).Mul(b))
	inv, err := mat.Inverse(btxb)
	if err != nil {
		return math.Inf(1)
	}
	term := a.T().Mul(x).Mul(b).Mul(inv).Mul(b.T()).Mul(x).Mul(a)
	res := a.T().Mul(x).Mul(a).Sub(x).Sub(term).Add(q)
	return res.MaxAbs()
}

func TestSolveDAREScalar(t *testing.T) {
	// Scalar DARE: x = a²x - a²x²b²/(r + b²x) + q with a=1, b=1, q=1, r=1:
	// x = x - x²/(1+x) + 1 → x² = x + ... solve: x²/(1+x) = 1 → x² - x - 1 = 0
	// → x = (1+√5)/2 (golden ratio).
	a := mat.New(1, 1, []float64{1})
	b := mat.New(1, 1, []float64{1})
	q := mat.New(1, 1, []float64{1})
	r := mat.New(1, 1, []float64{1})
	x, err := SolveDARE(a, b, q, r)
	if err != nil {
		t.Fatal(err)
	}
	want := (1 + math.Sqrt(5)) / 2
	if math.Abs(x.At(0, 0)-want) > 1e-10 {
		t.Fatalf("X = %v, want %v", x.At(0, 0), want)
	}
}

func TestSolveDAREResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		m := 1 + rng.Intn(2)
		a := mat.Zeros(n, n)
		b := mat.Zeros(n, m)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			for j := 0; j < m; j++ {
				b.Set(i, j, rng.NormFloat64())
			}
		}
		// Keep A's spectral radius moderate so (A,B) is comfortably
		// stabilizable for a generic B.
		if rad, err := mat.SpectralRadius(a); err == nil && rad > 1.2 {
			a = a.Scale(1.2 / rad)
		}
		q := mat.Identity(n)
		r := mat.Identity(m)
		x, err := SolveDARE(a, b, q, r)
		if err != nil {
			return false
		}
		return dareResidual(a, b, q, r, x) < 1e-6*(1+x.MaxAbs())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLQRStabilizes(t *testing.T) {
	// LQR must stabilize an unstable plant: closed loop A - B K Schur.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		a := mat.Zeros(n, n)
		b := mat.Zeros(n, 1)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			b.Set(i, 0, 1+rng.Float64())
		}
		if rad, err := mat.SpectralRadius(a); err == nil && rad > 1.5 {
			a = a.Scale(1.5 / rad)
		}
		k, _, err := LQRGain(a, b, mat.Identity(n), mat.Identity(1))
		if err != nil {
			return false
		}
		acl := a.Sub(b.Mul(k))
		rad, err := mat.SpectralRadius(acl)
		return err == nil && rad < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestKalmanStabilizesEstimator(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 4
	a := mat.Zeros(n, n)
	c := mat.Zeros(2, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.NormFloat64()*0.6)
		}
	}
	c.Set(0, 0, 1)
	c.Set(1, 2, 1)
	l, p, err := KalmanGain(a, c, mat.Identity(n), mat.Identity(2))
	if err != nil {
		t.Fatal(err)
	}
	// Error dynamics A - L C must be Schur stable.
	acl := a.Sub(l.Mul(c))
	rad, err := mat.SpectralRadius(acl)
	if err != nil {
		t.Fatal(err)
	}
	if rad >= 1 {
		t.Fatalf("estimator spectral radius %v >= 1", rad)
	}
	// Covariance must be symmetric positive semidefinite (check symmetry and
	// nonnegative diagonal).
	if !p.Equal(p.T(), 1e-8) {
		t.Fatal("covariance not symmetric")
	}
	for i := 0; i < n; i++ {
		if p.At(i, i) < -1e-10 {
			t.Fatalf("covariance diagonal %d negative: %v", i, p.At(i, i))
		}
	}
}

func TestSolveDAREDimensionErrors(t *testing.T) {
	if _, err := SolveDARE(mat.Zeros(2, 3), mat.Zeros(2, 1), mat.Identity(2), mat.Identity(1)); err == nil {
		t.Fatal("expected dimension error")
	}
	if _, err := SolveDARE(mat.Zeros(2, 2), mat.Zeros(3, 1), mat.Identity(2), mat.Identity(1)); err == nil {
		t.Fatal("expected dimension error")
	}
}
