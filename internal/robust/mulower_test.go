package robust

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"yukta/internal/mat"
)

func TestMuLowerScalar(t *testing.T) {
	m := mat.CZeros(1, 1)
	m.Set(0, 0, 3+4i)
	if got := MuLowerBound(m); math.Abs(got-5) > 1e-12 {
		t.Fatalf("lower bound of scalar = %v, want 5", got)
	}
}

func TestMuLowerDiagonalExact(t *testing.T) {
	// For diagonal M, μ = max|m_ii| exactly; both bounds must agree.
	m := mat.CZeros(3, 3)
	m.Set(0, 0, 1+1i)
	m.Set(1, 1, -2)
	m.Set(2, 2, 0.3i)
	lo := MuLowerBound(m)
	hi := MuUpperBound(m)
	if math.Abs(lo-2) > 1e-6 || math.Abs(hi-2) > 1e-6 {
		t.Fatalf("bounds %v..%v, want both 2", lo, hi)
	}
}

func TestMuBoundsBracket(t *testing.T) {
	// lower <= upper always, and the gap should be modest for small random
	// matrices (D-scaling is exact for n <= 3 scalar blocks).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		m := randC(rng, n)
		lo := MuLowerBound(m)
		hi := MuUpperBound(m)
		if lo > hi*(1+1e-6) {
			return false
		}
		// The lower bound must at least reach the spectral radius.
		return lo >= complexSpectralRadius(m)-1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMuBoundsTightFor2x2(t *testing.T) {
	// For two scalar blocks the D-scaled upper bound equals μ; the power
	// iteration should close most of the gap.
	rng := rand.New(rand.NewSource(77))
	var worst float64
	for trial := 0; trial < 20; trial++ {
		m := randC(rng, 2)
		lo := MuLowerBound(m)
		hi := MuUpperBound(m)
		if hi == 0 {
			continue
		}
		gap := (hi - lo) / hi
		if gap > worst {
			worst = gap
		}
	}
	if worst > 0.25 {
		t.Fatalf("2x2 bound gap up to %.0f%%, lower-bound iteration too weak", worst*100)
	}
}
