package robust

import (
	"fmt"
	"math"

	"yukta/internal/lti"
	"yukta/internal/mat"
)

// Spec is the designer-facing description of one layer's SSV controller, the
// Go equivalent of the paper's Tables II and III. All signals are in
// normalized units: the system-identification layer maps each physical
// signal's observed range onto [-1, 1], so a bound of 0.2 means ±20% of the
// signal's full range, exactly as the paper specifies bounds.
type Spec struct {
	// Plant is the identified model. Its first NumControls inputs are the
	// signals this controller actuates on; the remaining inputs are external
	// signals received from other layers (paper §III-B).
	Plant       *lti.StateSpace
	NumControls int

	// InputWeights holds the designer's weight for each control input; the
	// controller changes low-weight inputs more eagerly (paper §IV-A).
	InputWeights []float64
	// InputQuanta holds the quantization step of each control input in
	// normalized units (e.g. a 0.1 GHz step on a 1.8 GHz range is 2*0.1/1.8).
	InputQuanta []float64
	// OutputBounds holds the allowed deviation of each output from its
	// target, in normalized units (±fraction of the signal range).
	OutputBounds []float64
	// Uncertainty is the guardband: 0.4 means the outputs may deviate ±40%
	// from the model's prediction (paper §II-B).
	Uncertainty float64

	// TargetScale is the magnitude of target (reference) changes the
	// controller must absorb, in normalized units. The optimizer caps its
	// per-move target step at a quarter of the signal range, so the default
	// of 0.25 is ample.
	TargetScale float64
	// TargetScales optionally overrides TargetScale per output: outputs whose
	// targets the optimizer moves rarely or in small steps (e.g. the fixed
	// temperature target) should charge a smaller reference magnitude.
	TargetScales []float64

	// MinPenalty sets the lowest control penalty (rho) the design ladder
	// starts from. The validation stage of the design process (paper Fig. 3)
	// raises it when a synthesized candidate, although certified against the
	// declared uncertainty, misbehaves on the real system — the paper's
	// remedy when the guardband underestimates reality. Zero means 1.
	MinPenalty float64
	// IntegralWeight scales the penalty on the output-error integrators that
	// give the controller zero steady-state tracking error. Default 0.05.
	IntegralWeight float64
}

// Report summarizes the outcome of a synthesis run, mirroring what MATLAB's
// routines report to the designer in the paper's flow.
type Report struct {
	// SSV is the structured singular value upper bound of the final closed
	// loop; robustness requires SSV <= 1 (min(s) = 1/SSV >= 1).
	SSV float64
	// SSVLower is the power-iteration lower bound on the same quantity;
	// together with SSV it brackets the true structured singular value
	// (0 when the lower bound was not computed).
	SSVLower float64
	// MinS is 1/SSV, the paper's worst-case scaling factor min(s).
	MinS float64
	// GuaranteedBounds are the output deviation bounds the controller can
	// actually guarantee: the requested bounds inflated by max(1, SSV).
	GuaranteedBounds []float64
	// Iterations is the number of candidate controllers evaluated.
	Iterations int
	// ControlPenalty is the final control-effort scaling (rho) chosen by the
	// iteration; larger means a more conservative controller.
	ControlPenalty float64
	// StateDim is the controller's state dimension N (paper §VI-D).
	StateDim int
}

// Controller is a synthesized SSV controller realization
//
//	x(T+1) = A x(T) + B Δy(T)
//	u(T)   = C x(T) + D Δy(T)
//
// where Δy stacks the output deviations from targets followed by the
// external signals — exactly the state machine of paper §VI-D, equations (3)
// and (4).
type Controller struct {
	K       *lti.StateSpace
	NumOut  int // number of plant outputs (deviations) in Δy
	NumExt  int // number of external signals in Δy
	NumCtrl int // number of controls produced
	Report  Report

	// IntStart and IntCount locate the output-error integrator block inside
	// the controller state vector; the runtime uses it for anti-windup when
	// actuator saturation clamps the computed inputs.
	IntStart, IntCount int

	// UFeedback reports that the realization expects the *applied* (clamped
	// and quantized) command as its trailing NumCtrl inputs, after Δy and
	// the external signals (Hanus self-conditioning: the internal estimator
	// then tracks what the plant actually received, so actuator saturation
	// cannot wind it up). When false (the LQG baseline), the computed
	// command is baked into the state transition and saturation winds the
	// controller — the §VI-B deficiency.
	UFeedback bool
}

func (s *Spec) validate() error {
	if s.Plant == nil {
		return fmt.Errorf("%w: nil plant", ErrSynthesis)
	}
	nu := s.NumControls
	if nu < 1 || nu > s.Plant.Inputs() {
		return fmt.Errorf("%w: NumControls=%d with %d plant inputs", ErrSynthesis, nu, s.Plant.Inputs())
	}
	if len(s.InputWeights) != nu {
		return fmt.Errorf("%w: %d input weights for %d controls", ErrSynthesis, len(s.InputWeights), nu)
	}
	if len(s.InputQuanta) != nu {
		return fmt.Errorf("%w: %d input quanta for %d controls", ErrSynthesis, len(s.InputQuanta), nu)
	}
	if len(s.OutputBounds) != s.Plant.Outputs() {
		return fmt.Errorf("%w: %d output bounds for %d outputs", ErrSynthesis, len(s.OutputBounds), s.Plant.Outputs())
	}
	for i, w := range s.InputWeights {
		if w <= 0 {
			return fmt.Errorf("%w: input weight %d is %v, must be positive", ErrSynthesis, i, w)
		}
	}
	for i, b := range s.OutputBounds {
		if b <= 0 {
			return fmt.Errorf("%w: output bound %d is %v, must be positive", ErrSynthesis, i, b)
		}
	}
	if s.Uncertainty < 0 {
		return fmt.Errorf("%w: negative uncertainty guardband", ErrSynthesis)
	}
	if s.TargetScales != nil && len(s.TargetScales) != s.Plant.Outputs() {
		return fmt.Errorf("%w: %d target scales for %d outputs", ErrSynthesis, len(s.TargetScales), s.Plant.Outputs())
	}
	return nil
}

// resolveTargetScales returns the per-output reference magnitudes, applying
// the uniform default when no per-output values are given.
func (s *Spec) resolveTargetScales() []float64 {
	out := make([]float64, s.Plant.Outputs())
	uniform := s.TargetScale
	if uniform <= 0 {
		uniform = 0.25
	}
	for i := range out {
		out[i] = uniform
		if s.TargetScales != nil && s.TargetScales[i] > 0 {
			out[i] = s.TargetScales[i]
		}
	}
	return out
}

// Synthesize runs the SSV design loop: it proposes controller candidates of
// decreasing aggressiveness (increasing control penalty rho), evaluates the
// structured singular value of each candidate's closed loop against the
// specified uncertainty, bounds and weights, and returns the most aggressive
// candidate whose SSV is at most 1. If no candidate is robust, the best
// candidate is returned along with the (degraded) bounds it can guarantee —
// the behaviour the paper describes when the designer's Δ/B/W are too
// demanding.
func Synthesize(spec *Spec) (*Controller, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	tScales := spec.resolveTargetScales()
	intW := spec.IntegralWeight
	if intW <= 0 {
		intW = 0.05
	}

	// The rho ladder: most aggressive first. Geometric spacing covers the
	// regimes from eager to sluggish controllers (paper §VI-E3).
	var (
		bestCtl *Controller
		iters   int
	)
	rho := spec.MinPenalty
	if rho <= 0 {
		rho = 1.0
	}
	for step := 0; step < 12; step++ {
		iters++
		k, err := designCandidate(spec, rho, intW, true)
		if err != nil {
			rho *= 2
			continue
		}
		ssv, err := evaluateSSV(spec, k, tScales)
		if err != nil {
			rho *= 2
			continue
		}
		cand := &Controller{
			K:         k,
			NumOut:    spec.Plant.Outputs(),
			NumExt:    spec.Plant.Inputs() - spec.NumControls,
			NumCtrl:   spec.NumControls,
			IntStart:  spec.Plant.Order(),
			IntCount:  spec.Plant.Outputs(),
			UFeedback: true,
			Report: Report{
				SSV:            ssv,
				MinS:           1 / ssv,
				Iterations:     iters,
				ControlPenalty: rho,
				StateDim:       k.Order(),
			},
		}
		cand.Report.GuaranteedBounds = make([]float64, len(spec.OutputBounds))
		infl := ssv
		if infl < 1 {
			infl = 1
		}
		for i, b := range spec.OutputBounds {
			cand.Report.GuaranteedBounds[i] = b * infl
		}
		if bestCtl == nil || cand.Report.SSV < bestCtl.Report.SSV {
			bestCtl = cand
		}
		if ssv <= 1 {
			cand.Report.Iterations = iters
			if cl, err := buildClosedLoop(spec, k, tScales); err == nil {
				if lo, _, err := SystemMuBounds(cl, 24, true); err == nil {
					cand.Report.SSVLower = lo
				}
			}
			return cand, nil
		}
		rho *= 2
	}
	if bestCtl == nil {
		return nil, fmt.Errorf("%w: no stabilizing candidate found", ErrSynthesis)
	}
	bestCtl.Report.Iterations = iters
	return bestCtl, nil
}

// DesignAtPenalty synthesizes a single SSV candidate at the given control
// penalty and reports its structured singular value without iterating. The
// sensitivity studies use it to answer the designer's question in Fig. 16(a):
// keeping the same controller aggressiveness (input weights W) and requested
// bounds B, what deviation bounds can actually be guaranteed as the
// uncertainty guardband Δ grows? The guaranteed bounds are B scaled by
// max(1, SSV) = B/min(1, min(s)).
func DesignAtPenalty(spec *Spec, rho float64) (*Controller, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	intW := spec.IntegralWeight
	if intW <= 0 {
		intW = 0.05
	}
	k, err := designCandidate(spec, rho, intW, true)
	if err != nil {
		return nil, err
	}
	ssv, err := evaluateSSV(spec, k, spec.resolveTargetScales())
	if err != nil {
		return nil, err
	}
	cand := &Controller{
		K:         k,
		NumOut:    spec.Plant.Outputs(),
		NumExt:    spec.Plant.Inputs() - spec.NumControls,
		NumCtrl:   spec.NumControls,
		IntStart:  spec.Plant.Order(),
		IntCount:  spec.Plant.Outputs(),
		UFeedback: true,
		Report: Report{
			SSV:            ssv,
			MinS:           1 / ssv,
			Iterations:     1,
			ControlPenalty: rho,
			StateDim:       k.Order(),
		},
	}
	cand.Report.GuaranteedBounds = make([]float64, len(spec.OutputBounds))
	infl := ssv
	if infl < 1 {
		infl = 1
	}
	for i, b := range spec.OutputBounds {
		cand.Report.GuaranteedBounds[i] = b * infl
	}
	return cand, nil
}

// SynthesizeLQG builds the paper's §VI-B baseline: a plain MIMO LQG servo
// controller from the same identified model and comparable input/output
// weights, but with none of the SSV machinery — no uncertainty-guardband
// iteration, no output-deviation bounds (OutputBounds act only as inverse
// output weights), and no awareness of input saturation or quantization.
func SynthesizeLQG(spec *Spec) (*Controller, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	intW := spec.IntegralWeight
	if intW <= 0 {
		intW = 0.05
	}
	// The LQG design frameworks the paper compares against ([35], [41]) are
	// not natively optimized for uncertainty: they use guardbands only to
	// discard unstable designs and, when that triggers, inflate the weights
	// — "trading optimality and fast response time for robustness" (§II-D,
	// §VI-B). The fixed conservative penalty models that detuned outcome,
	// in contrast to the SSV loop whose μ certificate admits aggressive
	// designs under the same guardband.
	const lqgDetunedPenalty = 4.0
	k, err := designCandidate(spec, lqgDetunedPenalty, intW, false)
	if err != nil {
		return nil, err
	}
	gb := make([]float64, len(spec.OutputBounds))
	copy(gb, spec.OutputBounds)
	return &Controller{
		K:        k,
		NumOut:   spec.Plant.Outputs(),
		NumExt:   spec.Plant.Inputs() - spec.NumControls,
		NumCtrl:  spec.NumControls,
		IntStart: spec.Plant.Order(),
		IntCount: spec.Plant.Outputs(),
		Report: Report{
			SSV:              math.NaN(), // LQG provides no robustness certificate
			MinS:             math.NaN(),
			GuaranteedBounds: gb,
			Iterations:       1,
			ControlPenalty:   lqgDetunedPenalty,
			StateDim:         k.Order(),
		},
	}, nil
}

// intLeak is the pole of the servo integrators. Pure integrators (pole 1)
// force exact tracking of all output targets simultaneously; when the
// plant's DC gain is ill-conditioned — on the board, temperature is almost
// collinear with the cluster powers — an infeasible target combination then
// demands unbounded inputs. With leaky integrators the steady state instead
// solves a weighted least-squares compromise, which is precisely the
// degradation the paper specifies: "it keeps the deviations at least
// proportional to their relative bounds values".
const intLeak = 0.96

// designCandidate builds one LQG-servo candidate controller for the given
// control penalty rho. The controller has (leaky) integral action on every
// output for near-offset-free tracking of the optimizer's targets, a Kalman
// estimator driven by the output deviations, and feedforward of the external
// signals into the estimator's model.
func designCandidate(spec *Spec, rho, intW float64, uFeedback bool) (*lti.StateSpace, error) {
	g := spec.Plant
	n := g.Order()
	ny := g.Outputs()
	nu := spec.NumControls
	ne := g.Inputs() - nu

	bu := g.B.Slice(0, n, 0, nu)
	be := g.B.Slice(0, n, nu, nu+ne)
	du := g.D.Slice(0, ny, 0, nu)

	// Servo augmentation: xi+ = intLeak*xi + y.
	na := n + ny
	aAug := mat.Zeros(na, na)
	aAug.SetSlice(0, 0, g.A)
	aAug.SetSlice(n, 0, g.C)
	aAug.SetSlice(n, n, mat.Identity(ny).Scale(intLeak))
	bAug := mat.Zeros(na, nu)
	bAug.SetSlice(0, 0, bu)
	bAug.SetSlice(n, 0, du)

	// State penalty: outputs weighted by 1/bound^2, integrators by intW/bound^2.
	cAug := mat.Zeros(ny, na)
	cAug.SetSlice(0, 0, g.C)
	qy := make([]float64, ny)
	for i, b := range spec.OutputBounds {
		qy[i] = 1 / (b * b)
	}
	q := cAug.T().Mul(mat.Diag(qy)).Mul(cAug)
	for i := 0; i < ny; i++ {
		q.Set(n+i, n+i, q.At(n+i, n+i)+intW*qy[i])
	}
	// Regularize to keep Q positive semidefinite and detectable.
	for i := 0; i < na; i++ {
		q.Set(i, i, q.At(i, i)+1e-9)
	}
	rw := make([]float64, nu)
	for i, w := range spec.InputWeights {
		rw[i] = rho * w * w
	}
	kGain, _, err := LQRGain(aAug, bAug, q, mat.Diag(rw))
	if err != nil {
		return nil, err
	}
	kx := kGain.Slice(0, nu, 0, n)
	ki := kGain.Slice(0, nu, n, na)

	// Kalman estimator on the plant state. Process noise shaped by the input
	// directions plus the uncertainty guardband; measurement noise small.
	wCov := bu.Mul(bu.T()).Scale(0.1 + spec.Uncertainty)
	for i := 0; i < n; i++ {
		wCov.Set(i, i, wCov.At(i, i)+1e-4)
	}
	vDiag := make([]float64, ny)
	for i := range vDiag {
		vDiag[i] = 0.01
	}
	l, _, err := KalmanGain(g.A, g.C, wCov, mat.Diag(vDiag))
	if err != nil {
		return nil, err
	}

	// Assemble the controller realization. Controller state: [xhat; xi].
	//   u     = -Kx xhat - Ki xi
	//   xhat+ = A xhat + Bu u* + Be e + L(Δy - C xhat - Du u*)
	//   xi+   = intLeak xi + Δy
	// Outputs: u (nu).
	//
	// With uFeedback, u* is the *applied* command delivered as trailing
	// inputs (Hanus conditioning): inputs are [Δy (ny); e (ne); u* (nu)].
	// Without it, u* = u is baked into the transition: inputs are
	// [Δy (ny); e (ne)].
	ck := mat.Zeros(nu, na)
	ck.SetSlice(0, 0, kx.Scale(-1))
	ck.SetSlice(0, n, ki.Scale(-1))

	buEff := bu.Sub(l.Mul(du)) // how u* enters the estimator
	acl := mat.Zeros(na, na)
	acl.SetSlice(0, 0, g.A.Sub(l.Mul(g.C)))
	acl.SetSlice(n, n, mat.Identity(ny).Scale(intLeak))

	nin := ny + ne
	if uFeedback {
		nin += nu
	}
	bk := mat.Zeros(na, nin)
	bk.SetSlice(0, 0, l)
	bk.SetSlice(0, ny, be)
	bk.SetSlice(n, 0, mat.Identity(ny))
	if uFeedback {
		bk.SetSlice(0, ny+ne, buEff)
	} else {
		// Bake u = Ck x into the transition.
		acl = acl.Add(stackRows(buEff, n, na).Mul(ck))
	}
	dk := mat.Zeros(nu, nin)

	return lti.NewStateSpace(acl, bk, ck, dk, g.Ts)
}

// stackRows embeds the n-row matrix m into a matrix with total rows, the
// remaining rows zero.
func stackRows(m *mat.Matrix, n, total int) *mat.Matrix {
	out := mat.Zeros(total, m.Cols())
	out.SetSlice(0, 0, m)
	return out
}

// Frequency-shaping constants for the Δ-N analysis. The performance weight
// is a low-pass (bounds are a steady-state/driven-signal requirement; during
// a target step the transient is not charged at full rate), and the
// uncertainty weight is a high-pass (the Box-Jenkins model is accurate at
// steady state; the guardband covers fast unmodeled dynamics and
// cross-controller interference).
const (
	perfPole  = 0.85 // pole of the performance low-pass weight
	perfFloor = 0.05 // high-frequency floor of the performance weight
	uncPole   = 0.5  // pole of the uncertainty high-pass weight
	uncFloor  = 0.5  // fraction of the guardband applied at all frequencies
	effortCap = 0.3  // scaling of the input-weight channel
)

// evaluateSSV forms the Δ-facing closed loop N of the candidate controller
// and returns the peak structured-singular-value upper bound over frequency.
func evaluateSSV(spec *Spec, k *lti.StateSpace, tScales []float64) (float64, error) {
	cl, err := buildClosedLoop(spec, k, tScales)
	if err != nil {
		return 0, err
	}
	if !cl.IsStable() {
		return 1e6, nil
	}
	return SystemMu(cl, 48)
}

// buildClosedLoop assembles the Δ-N interconnection of the paper's Figure 2:
// the generalized plant carries the output uncertainty block (guardband,
// high-pass weighted), the input quantization/weight block, and the
// performance block (bounds B, low-pass weighted, with target scale tScale),
// and the candidate controller is closed around the measurement channel.
func buildClosedLoop(spec *Spec, k *lti.StateSpace, tScales []float64) (*lti.StateSpace, error) {
	g := spec.Plant
	n := g.Order()
	ny := g.Outputs()
	nu := spec.NumControls

	bu := g.B.Slice(0, n, 0, nu)
	du := g.D.Slice(0, ny, 0, nu)

	q2 := make([]float64, nu)
	for i, qv := range spec.InputQuanta {
		q2[i] = qv / 2
	}
	q2d := mat.Diag(q2)
	delta := spec.Uncertainty
	binv := make([]float64, ny)
	for i, b := range spec.OutputBounds {
		binv[i] = 1 / b
	}
	binvD := mat.Diag(binv)
	wD := mat.Diag(spec.InputWeights).Scale(effortCap)

	// khp normalizes the high-pass (z-1)/(z-uncPole) to unit gain at Nyquist.
	khp := (1 + uncPole) / 2

	// Generalized plant P with weighting filters.
	// State: [x (n); xw (ny) perf low-pass; xu (ny) unc high-pass].
	// Inputs: [w1(ny) unc | w2(nu) quant | w3(ny) targets | u(nu)].
	// Outputs: [f1(ny) | f2(nu) | z3(ny) | ymeas(ny)].
	//
	//   x+  = A x + Bu (u + (q/2) w2)
	//   y   = C x + Du (u + (q/2) w2)            (true output)
	//   Δy  = y + w1 - tScale w3                 (measured deviation)
	//   xw+ = perfPole xw + (1-perfPole) Δy
	//   xu+ = uncPole xu + y
	//   f1  = delta (uncFloor y + (1-uncFloor) khp (y + (uncPole-1) xu))
	//   f2  = effortCap W u
	//   z3  = (1/B)(xw + perfFloor Δy)
	np := n + 2*ny
	nin := ny + nu + ny + nu

	// Row builders over [x | xw | xu] states and the 4 input blocks.
	// y state/input coefficient rows:
	yC := mat.Zeros(ny, np)
	yC.SetSlice(0, 0, g.C)
	yD := mat.Zeros(ny, nin)
	yD.SetSlice(0, ny, du.Mul(q2d))
	yD.SetSlice(0, ny+nu+ny, du)
	// Δy rows = y rows + w1 - tScale w3.
	dyC := yC.Clone()
	dyD := yD.Clone()
	dyD.SetSlice(0, 0, mat.Identity(ny))
	tsD := mat.Diag(tScales)
	dyD.SetSlice(0, ny+nu, tsD.Scale(-1))

	a := mat.Zeros(np, np)
	a.SetSlice(0, 0, g.A)
	a.SetSlice(n, 0, dyC.Slice(0, ny, 0, n).Scale(1-perfPole))
	a.SetSlice(n, n, mat.Identity(ny).Scale(perfPole))
	a.SetSlice(n+ny, 0, g.C)
	a.SetSlice(n+ny, n+ny, mat.Identity(ny).Scale(uncPole))

	bMat := mat.Zeros(np, nin)
	bMat.SetSlice(0, ny, bu.Mul(q2d))
	bMat.SetSlice(0, ny+nu+ny, bu)
	bMat.SetSlice(n, 0, dyD.Scale(1-perfPole))
	bMat.SetSlice(n+ny, 0, yD)

	rows := ny + nu + ny + ny
	c := mat.Zeros(rows, np)
	d := mat.Zeros(rows, nin)
	// f1 = delta*(uncFloor*y + (1-uncFloor)*khp*(y + (uncPole-1) xu)):
	// the guardband is never below uncFloor*delta (model error such as
	// wrong local gains is broadband, including DC), and rises to the full
	// delta at high frequency where unmodeled dynamics dominate.
	gainY := delta * (uncFloor + (1-uncFloor)*khp)
	c.SetSlice(0, 0, g.C.Scale(gainY))
	c.SetSlice(0, n+ny, mat.Identity(ny).Scale(delta*(1-uncFloor)*khp*(uncPole-1)))
	d.SetSlice(0, 0, yD.Scale(gainY))
	// f2 = effortCap * W u.
	d.SetSlice(ny, ny+nu+ny, wD)
	// z3 = (1/B)(xw + perfFloor Δy).
	c.SetSlice(ny+nu, n, binvD)
	c.SetSlice(ny+nu, 0, binvD.Mul(dyC.Slice(0, ny, 0, n)).Scale(perfFloor))
	d.SetSlice(ny+nu, 0, binvD.Mul(dyD).Scale(perfFloor))
	// ymeas = Δy.
	c.SetSlice(ny+nu+ny, 0, dyC.Slice(0, ny, 0, n))
	d.SetSlice(ny+nu+ny, 0, dyD)

	p, err := lti.NewStateSpace(a, bMat, c, d, g.Ts)
	if err != nil {
		return nil, err
	}
	// The controller sees only Δy during analysis (external signals are
	// other layers' business, absorbed by the guardband per §III-B). When
	// the realization carries the applied-command feedback inputs, close
	// them nominally (u* = u = Ck x), which recovers the same transfer
	// function the non-conditioned realization has.
	ka := k.A
	ne := spec.Plant.Inputs() - nu
	if k.Inputs() == ny+ne+nu {
		bkU := k.B.Slice(0, k.Order(), ny+ne, ny+ne+nu)
		ka = k.A.Add(bkU.Mul(k.C))
	}
	kyy, err := lti.NewStateSpace(ka, k.B.Slice(0, k.Order(), 0, ny), k.C,
		k.D.Slice(0, k.Outputs(), 0, ny), k.Ts)
	if err != nil {
		return nil, err
	}
	nz := ny + nu + ny
	nw := ny + nu + ny
	return lti.LFTLower(p, nz, nw, kyy)
}
