package robust

import (
	"math"
	"math/cmplx"

	"yukta/internal/lti"
	"yukta/internal/mat"
)

// MuUpperBound returns an upper bound on the structured singular value μ(M)
// for a block structure of scalar complex uncertainties (one 1×1 block per
// channel, the structure produced by Yukta's per-signal guardbands and
// quantization blocks):
//
//	μ(M) ≤ min over diagonal D > 0 of σ_max(D M D^-1)
//
// The minimization starts from the Perron-based scaling (optimal for
// nonnegative matrices) and is refined with cyclic coordinate descent on the
// diagonal entries of D.
func MuUpperBound(m *mat.CMatrix) float64 {
	n := m.Rows()
	if n != m.Cols() {
		// μ is defined for the square interconnection matrix; callers must
		// pass the Δ-facing square block.
		panic("robust: MuUpperBound requires a square matrix")
	}
	if n == 0 {
		return 0
	}
	if n == 1 {
		return cmplx.Abs(m.At(0, 0))
	}
	// Perron initialization on |M|: D_i = sqrt(u_i / v_i) where u, v are the
	// left and right Perron vectors of the elementwise absolute value.
	absM := mat.Zeros(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			absM.Set(i, j, cmplx.Abs(m.At(i, j)))
		}
	}
	u := perronVector(absM.T())
	v := perronVector(absM)
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		if v[i] <= 1e-300 || u[i] <= 1e-300 {
			d[i] = 1
		} else {
			d[i] = math.Sqrt(u[i] / v[i])
		}
	}
	scaled := func(d []float64) float64 {
		dm := m.Clone()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				dm.Set(i, j, dm.At(i, j)*complex(d[i]/d[j], 0))
			}
		}
		return mat.CMaxSingularValue(dm)
	}
	best := scaled(d)
	if plain := mat.CMaxSingularValue(m); plain < best {
		// Identity scaling is sometimes better than Perron for complex M.
		for i := range d {
			d[i] = 1
		}
		best = plain
	}
	// Cyclic coordinate descent with multiplicative steps.
	step := 1.5
	for pass := 0; pass < 30 && step > 1.001; pass++ {
		improved := false
		for i := 0; i < n; i++ {
			for _, f := range []float64{step, 1 / step} {
				trial := make([]float64, n)
				copy(trial, d)
				trial[i] *= f
				if s := scaled(trial); s < best-1e-12 {
					best = s
					copy(d, trial)
					improved = true
				}
			}
		}
		if !improved {
			step = math.Sqrt(step)
		}
	}
	return best
}

// perronVector returns the (entrywise nonnegative) dominant eigenvector of a
// nonnegative matrix via power iteration, normalized to unit 1-norm.
func perronVector(a *mat.Matrix) []float64 {
	n := a.Rows()
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	for iter := 0; iter < 200; iter++ {
		w := a.MulVec(v)
		var s float64
		for _, x := range w {
			s += math.Abs(x)
		}
		if s == 0 {
			return v
		}
		var diff float64
		for i := range w {
			w[i] /= s
			diff += math.Abs(w[i] - v[i])
		}
		v = w
		if diff < 1e-13 {
			break
		}
	}
	return v
}

// SystemMu returns the peak of MuUpperBound over the unit circle for the
// square transfer matrix of sys, evaluated on a frequency grid of nGrid
// points (plus DC and Nyquist). It is the quantity the SSV synthesis loop
// drives below 1.
func SystemMu(sys *lti.StateSpace, nGrid int) (float64, error) {
	_, hi, err := SystemMuBounds(sys, nGrid, false)
	return hi, err
}

// SystemMuBounds returns lower and upper bounds on the peak structured
// singular value of sys over the unit circle (the pair MATLAB's mussv
// reports). The lower bound is skipped (returned as 0) unless withLower is
// set, since the power iteration is several times more expensive than the
// upper bound.
func SystemMuBounds(sys *lti.StateSpace, nGrid int, withLower bool) (lo, hi float64, err error) {
	if nGrid < 8 {
		nGrid = 8
	}
	for i := 0; i <= nGrid; i++ {
		theta := math.Pi * float64(i) / float64(nGrid)
		g, err := sys.Evaluate(cmplx.Exp(complex(0, theta)))
		if err != nil {
			return math.Inf(1), math.Inf(1), nil // pole on the unit circle
		}
		if v := MuUpperBound(g); v > hi {
			hi = v
		}
		if withLower {
			if v := MuLowerBound(g); v > lo {
				lo = v
			}
		}
	}
	return lo, hi, nil
}
