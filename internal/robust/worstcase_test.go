package robust

import (
	"math"
	"testing"

	"yukta/internal/lti"
	"yukta/internal/mat"
)

// uncertainTestSystem builds a Δ-N system: one scalar uncertainty channel
// around a first-order plant plus a performance channel.
//
//	N maps [w_Δ; w] → [f_Δ; z] with
//	f_Δ = k*G(z)*(w_Δ + w),  z = G(z)*(w_Δ + w),  G(z)=g/(z-a).
func uncertainTestSystem(a, g, k float64) *lti.StateSpace {
	A := mat.New(1, 1, []float64{a})
	B := mat.FromRows([][]float64{{g, g}})
	C := mat.FromRows([][]float64{{k}, {1}})
	D := mat.Zeros(2, 2)
	return lti.MustStateSpace(A, B, C, D, 0.5)
}

func TestWorstCaseGainNoUncertainty(t *testing.T) {
	// With delta = 0 the worst case equals the nominal H∞ norm of the
	// performance block.
	sys := uncertainTestSystem(0.5, 1, 0.3)
	got, err := WorstCaseGain(sys, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Nominal z/w transfer is G(z): peak 1/(1-0.5) = 2.
	if math.Abs(got-2) > 0.05 {
		t.Fatalf("nominal worst case %v, want 2", got)
	}
}

func TestWorstCaseGainGrowsWithDelta(t *testing.T) {
	sys := uncertainTestSystem(0.5, 1, 0.3)
	g0, err := WorstCaseGain(sys, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := WorstCaseGain(sys, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := WorstCaseGain(sys, 1, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if !(g0 < g1 && g1 < g2) {
		t.Fatalf("worst case not monotone in delta: %v %v %v", g0, g1, g2)
	}
	// Analytic check: the Δ loop is f = kG(w_Δ+w), w_Δ = Δ f, so
	// z = G/(1-delta*k*G)*w at worst alignment. At DC: G=2, k=0.3,
	// delta=0.5 → 2/(1-0.3) ≈ 2.857.
	want := 2 / (1 - 0.5*0.3*2)
	if math.Abs(g1-want) > 0.1*want {
		t.Fatalf("worst case at delta=0.5 is %v, want ≈ %v", g1, want)
	}
}

func TestWorstCaseGainUnboundedAtInstability(t *testing.T) {
	// delta*k*|G| reaches 1 → robust stability lost → unbounded gain.
	sys := uncertainTestSystem(0.5, 1, 0.6) // k*Gmax = 1.2
	got, err := WorstCaseGain(sys, 1, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got, 1) {
		t.Fatalf("worst case %v, want +Inf past the robustness margin", got)
	}
}

func TestWorstCaseGainValidation(t *testing.T) {
	sys := uncertainTestSystem(0.5, 1, 0.3)
	if _, err := WorstCaseGain(sys, 5, 0.5); err == nil {
		t.Fatal("expected error for nd exceeding dimensions")
	}
}
