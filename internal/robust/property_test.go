package robust

import (
	"math/rand"
	"testing"

	"yukta/internal/lti"
	"yukta/internal/mat"
)

// Property-based checks over seeded random instances. Every loop draws from
// a fixed-seed rand.Rand, so failures reproduce exactly; the trial counts
// are sized to keep the whole file under a second.

// randCMatrix returns an n×n complex matrix with entries uniform in the
// unit square of the complex plane.
func randCMatrix(rng *rand.Rand, n int) *mat.CMatrix {
	m := mat.CZeros(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, complex(2*rng.Float64()-1, 2*rng.Float64()-1))
		}
	}
	return m
}

// randStable returns a random state-space system with spectral radius of A
// at most 0.85 (strictly stable, so frequency responses exist everywhere on
// the unit circle).
func randStable(rng *rand.Rand, n, m, p int) *lti.StateSpace {
	a := mat.Zeros(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
	}
	if r, err := mat.SpectralRadius(a); err == nil && r > 0 {
		a = a.Scale(0.85 / r)
	}
	fill := func(rows, cols int) *mat.Matrix {
		out := mat.Zeros(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				out.Set(i, j, rng.NormFloat64())
			}
		}
		return out
	}
	sys, err := lti.NewStateSpace(a, fill(n, m), fill(p, n), fill(p, m), 0.5)
	if err != nil {
		panic(err)
	}
	return sys
}

// TestMuBoundsBracketRandom asserts the defining bracket of the μ machinery
// on random complex matrices: the power-iteration lower bound never exceeds
// the D-scaling upper bound, and the upper bound never exceeds the
// unstructured maximum singular value (D = I is always admissible, so
// D-scaling can only tighten, never worsen, the bound).
func TestMuBoundsBracketRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(4)
		m := randCMatrix(rng, n)
		lo := MuLowerBound(m)
		hi := MuUpperBound(m)
		sig := mat.CMaxSingularValue(m)
		if lo > hi*(1+1e-9)+1e-12 {
			t.Fatalf("trial %d (n=%d): lower bound %.12f exceeds upper bound %.12f", trial, n, lo, hi)
		}
		if hi > sig*(1+1e-9)+1e-12 {
			t.Fatalf("trial %d (n=%d): D-scaling bound %.12f exceeds σ_max %.12f — scaling made the bound worse", trial, n, hi, sig)
		}
		if lo < 0 || hi < 0 {
			t.Fatalf("trial %d (n=%d): negative bound (lo=%g, hi=%g)", trial, n, lo, hi)
		}
	}
}

// TestMuScalarExact pins the n=1 case, where μ is exactly |m| and both
// bounds must agree with it.
func TestMuScalarExact(t *testing.T) {
	m := mat.CNew(1, 1, []complex128{complex(3, -4)})
	if lo := MuLowerBound(m); lo != 5 {
		t.Fatalf("MuLowerBound(3-4i) = %g, want 5", lo)
	}
	if hi := MuUpperBound(m); hi < 5-1e-9 || hi > 5+1e-6 {
		t.Fatalf("MuUpperBound(3-4i) = %g, want 5", hi)
	}
}

// TestDAREResidualRandom solves the Riccati equation for random stabilizable
// instances and asserts the residual of the defining equation stays below
// tolerance relative to the solution's magnitude, and that the solution is
// symmetric PSD on its diagonal.
func TestDAREResidualRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(4)
		m := 1 + rng.Intn(2)
		a := mat.Zeros(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
		}
		if r, err := mat.SpectralRadius(a); err == nil && r > 0 {
			a = a.Scale(0.9 / r)
		}
		b := mat.Zeros(n, m)
		for i := 0; i < n; i++ {
			for j := 0; j < m; j++ {
				b.Set(i, j, rng.NormFloat64())
			}
		}
		// Q = GᵀG + 0.1 I is PSD with a detectability margin; R = I + HᵀH is PD.
		g := mat.Zeros(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				g.Set(i, j, rng.NormFloat64())
			}
		}
		q := g.T().Mul(g).Add(mat.Identity(n).Scale(0.1))
		h := mat.Zeros(m, m)
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				h.Set(i, j, rng.NormFloat64())
			}
		}
		r := mat.Identity(m).Add(h.T().Mul(h))

		x, err := SolveDARE(a, b, q, r)
		if err != nil {
			t.Fatalf("trial %d (n=%d, m=%d): %v", trial, n, m, err)
		}
		if res := dareResidual(a, b, q, r, x); res > 1e-8*(1+x.MaxAbs()) {
			t.Fatalf("trial %d (n=%d, m=%d): DARE residual %.3e for ‖X‖ %.3e", trial, n, m, res, x.MaxAbs())
		}
		if asym := x.Sub(x.T()).MaxAbs(); asym > 1e-9*(1+x.MaxAbs()) {
			t.Fatalf("trial %d: X asymmetric by %.3e", trial, asym)
		}
		for i := 0; i < n; i++ {
			if x.At(i, i) < -1e-9 {
				t.Fatalf("trial %d: X[%d,%d] = %.3e negative on the diagonal", trial, i, i, x.At(i, i))
			}
		}
	}
}

// TestSystemMuBoundsOrdered asserts lo ≤ hi for the frequency-gridded system
// bounds on random stable square systems — the pair the synthesis loop and
// the guardband tables consume.
func TestSystemMuBoundsOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 8; trial++ {
		n := 2 + rng.Intn(3)
		io := 2 + rng.Intn(2)
		sys := randStable(rng, n, io, io)
		lo, hi, err := SystemMuBounds(sys, 16, true)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if lo > hi*(1+1e-9)+1e-12 {
			t.Fatalf("trial %d: system μ lower bound %.9f exceeds upper bound %.9f", trial, lo, hi)
		}
		if hi <= 0 {
			t.Fatalf("trial %d: non-positive upper bound %.9f for a nonzero system", trial, hi)
		}
	}
}
