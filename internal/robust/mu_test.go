package robust

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"yukta/internal/lti"
	"yukta/internal/mat"
)

func randC(rng *rand.Rand, n int) *mat.CMatrix {
	m := mat.CZeros(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, complex(rng.NormFloat64(), rng.NormFloat64()))
		}
	}
	return m
}

func TestMuScalar(t *testing.T) {
	m := mat.CZeros(1, 1)
	m.Set(0, 0, 3-4i)
	if got := MuUpperBound(m); math.Abs(got-5) > 1e-12 {
		t.Fatalf("mu of scalar = %v, want 5", got)
	}
}

func TestMuDiagonal(t *testing.T) {
	// For a diagonal M with scalar blocks, mu equals max |m_ii| exactly and
	// D-scaling must achieve it.
	m := mat.CZeros(3, 3)
	m.Set(0, 0, 2i)
	m.Set(1, 1, -1)
	m.Set(2, 2, 0.5+0.5i)
	got := MuUpperBound(m)
	if math.Abs(got-2) > 1e-9 {
		t.Fatalf("mu of diagonal = %v, want 2", got)
	}
}

func TestMuBoundsSandwich(t *testing.T) {
	// rho(M) <= mu(M) <= sigma_max(M) for scalar-block structure.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		m := randC(rng, n)
		mu := MuUpperBound(m)
		sigma := mat.CMaxSingularValue(m)
		if mu > sigma+1e-8 {
			return false
		}
		// Spectral radius via the real embedding of the complex matrix:
		// [Re -Im; Im Re] has eigenvalues = eigs of M and conj(M).
		re := mat.Zeros(2*n, 2*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				re.Set(i, j, real(m.At(i, j)))
				re.Set(i, n+j, -imag(m.At(i, j)))
				re.Set(n+i, j, imag(m.At(i, j)))
				re.Set(n+i, n+j, real(m.At(i, j)))
			}
		}
		rho, err := mat.SpectralRadius(re)
		if err != nil {
			return true // skip on eig failure
		}
		return rho <= mu+1e-6*(1+mu)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMuScalingInvariance(t *testing.T) {
	// mu(cM) = |c| mu(M).
	rng := rand.New(rand.NewSource(17))
	m := randC(rng, 4)
	mu1 := MuUpperBound(m)
	mu3 := MuUpperBound(m.Scale(3))
	if math.Abs(mu3-3*mu1) > 1e-6*(1+mu3) {
		t.Fatalf("mu(3M)=%v, 3*mu(M)=%v", mu3, 3*mu1)
	}
}

func TestMuBeatsRawSigmaOnSkewedMatrix(t *testing.T) {
	// A matrix with large off-diagonal asymmetry: D-scaling must strictly
	// improve over sigma_max.
	m := mat.CZeros(2, 2)
	m.Set(0, 0, 0.1)
	m.Set(0, 1, 100)
	m.Set(1, 0, 0.0001)
	m.Set(1, 1, 0.1)
	sigma := mat.CMaxSingularValue(m)
	mu := MuUpperBound(m)
	if mu >= sigma*0.5 {
		t.Fatalf("expected D-scaling to shrink bound: mu=%v sigma=%v", mu, sigma)
	}
	// mu(M) for scalar blocks is >= rho(M) ~ 0.1-ish here.
	if mu < 0.1 {
		t.Fatalf("mu=%v below spectral radius", mu)
	}
}

func TestSystemMuMatchesHInfForSISO(t *testing.T) {
	// For a 1x1 system the mu upper bound equals |G|, so SystemMu == HInf
	// up to grid resolution.
	a := mat.New(1, 1, []float64{0.8})
	b := mat.New(1, 1, []float64{1})
	c := mat.New(1, 1, []float64{1})
	d := mat.New(1, 1, []float64{0})
	g := lti.MustStateSpace(a, b, c, d, 0.5)
	mu, err := SystemMu(g, 128)
	if err != nil {
		t.Fatal(err)
	}
	hinf, err := g.HInfNorm()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mu-hinf) > 0.02*hinf {
		t.Fatalf("SystemMu=%v, HInf=%v", mu, hinf)
	}
}

func TestPerronVector(t *testing.T) {
	// Perron vector of [[2,1],[1,2]] is [0.5, 0.5] after 1-norm scaling.
	a := mat.FromRows([][]float64{{2, 1}, {1, 2}})
	v := perronVector(a)
	if math.Abs(v[0]-0.5) > 1e-9 || math.Abs(v[1]-0.5) > 1e-9 {
		t.Fatalf("perron vector %v, want [0.5 0.5]", v)
	}
}

func TestMuUnitaryDiagonalInvariance(t *testing.T) {
	// mu is invariant under multiplication by a diagonal unitary matrix
	// (scalar uncertainty structure absorbs phases).
	rng := rand.New(rand.NewSource(23))
	m := randC(rng, 3)
	u := mat.CZeros(3, 3)
	u.Set(0, 0, cmplx.Exp(0.4i))
	u.Set(1, 1, cmplx.Exp(-1.1i))
	u.Set(2, 2, cmplx.Exp(2.2i))
	mu1 := MuUpperBound(m)
	mu2 := MuUpperBound(u.Mul(m))
	if math.Abs(mu1-mu2) > 1e-6*(1+mu1) {
		t.Fatalf("mu not phase invariant: %v vs %v", mu1, mu2)
	}
}
