// Package serve hosts the controller stack as a long-running multi-tenant
// service: an HTTP daemon that owns many concurrent board sessions, each an
// incrementally driven core.StepRun advanced by explicit step requests
// instead of a one-shot batch run (DESIGN.md §11).
//
// The API surface (docs/API.md is the full reference, replay-tested against
// this implementation):
//
//	POST   /v1/sessions            create a session (admission-controlled)
//	GET    /v1/sessions            list sessions
//	GET    /v1/sessions/{id}       session status + live result
//	POST   /v1/sessions/{id}/step  advance up to N control intervals
//	POST   /v1/sessions/{id}/trip  force a supervisor trip (operator cause)
//	GET    /v1/sessions/{id}/trace stream the flight-recorder trace as JSONL
//	DELETE /v1/sessions/{id}       close the session, freeing its slot
//	GET    /v1/metrics             metrics-registry snapshot (JSON)
//	GET    /healthz                liveness + drain state
//	GET    /debug/vars, /debug/pprof/*  expvar and live-profiling surface
//
// Admission control guards the front door: a per-tenant token bucket
// (Config.TenantRate/TenantBurst) rejects over-rate tenants with 429, and a
// global concurrent-session cap (Config.MaxSessions, a pool.Slots) rejects
// over-capacity creates with 429 — accepted sessions are never affected by
// rejected ones. Graceful drain (Server.Drain, wired to SIGTERM in
// cmd/yukta-serve) walks every live session through the supervisory layer's
// staged fallback — an operator-forced trip plus a settling walk — instead
// of dropping it mid-run.
//
// Determinism survives hosting: a session created with fixed options and
// stepped to completion produces a JSONL trace byte-identical to the batch
// core.Run of the same options (TestServeTraceMatchesBatch), because both
// paths execute the identical per-interval body and the recorder's JSONL
// export excludes wall-clock latency by default.
package serve

import (
	"encoding/json"
	"expvar"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"yukta/internal/core"
	"yukta/internal/obs"
	"yukta/internal/pool"
)

// Config tunes the daemon. The zero value of every field except Platform is
// usable (defaults noted per field); Platform must be set.
type Config struct {
	// Platform is the identified platform every hosted session builds its
	// controller stack from. Synthesis results are cached single-flight on
	// the platform, so concurrent sessions of the same scheme share one
	// design. Required.
	Platform *core.Platform

	// Schemes maps API scheme names to controller stacks. Nil means
	// DefaultSchemes(Platform).
	Schemes map[string]core.Scheme

	// MaxSessions caps concurrently open sessions across all tenants
	// (the global admission slot pool). 0 means 64.
	MaxSessions int

	// TenantRate is each tenant's session-creation token refill rate, in
	// sessions per second. 0 means 4; negative disables per-tenant rate
	// limiting.
	TenantRate float64

	// TenantBurst is each tenant's token-bucket capacity — the number of
	// creates a fresh tenant may issue back-to-back before the rate applies.
	// 0 means 8.
	TenantBurst int

	// DrainSteps is how many control intervals Drain walks each live session
	// after forcing its supervisor trip, so the board settles under the
	// fallback's conservative posture before shutdown. 0 means 20.
	DrainSteps int

	// DrainParallelism bounds the worker fan-out of the drain walk (the same
	// bounded pool the experiment harness uses). 0 means runtime.NumCPU().
	DrainParallelism int

	// MaxStepsPerRequest caps the interval count of one step request, so a
	// single request cannot hold a session's lock for an unbounded run.
	// 0 means 10000.
	MaxStepsPerRequest int

	// DataDir enables durability: each session appends its create request
	// and every mutating operation to an fsync'd write-ahead log under
	// DataDir/sessions/, and Recover rebuilds live sessions from those logs
	// by deterministic re-execution after a crash (docs/OPERATIONS.md,
	// "Durability"). Empty keeps the pre-durability behavior: session state
	// is in-memory only and a restart loses it.
	DataDir string

	// IdleTTL enables the idle-session reaper: ReapIdle closes sessions no
	// client has touched for this long, releasing their global slot (and
	// discarding their log) instead of leaking capacity until restart.
	// 0 (the default) disables reaping.
	IdleTTL time.Duration

	// Metrics receives the server's counters and gauges (and, threaded into
	// every run, the per-scheme step-latency histograms). Nil creates a
	// fresh registry; read it back via Registry.
	Metrics *obs.Registry

	// Log receives the daemon's structured events — one request line per
	// HTTP request (correlation ID, status, per-stage latencies) plus
	// lifecycle events (session create/close, trips, drain, reap, recovery).
	// Nil discards everything; the simulation hot path is untouched either
	// way.
	Log *slog.Logger

	// Now is the admission bucket's clock, injectable for tests. Nil means
	// time.Now. Simulation determinism never depends on it.
	Now func() time.Time
}

// Server is the yukta-serve daemon: session table, admission control, and
// the HTTP handler over both. Create one with New.
type Server struct {
	cfg     Config
	reg     *obs.Registry
	log     *slog.Logger
	slots   *pool.Slots
	buckets *buckets
	mux     *http.ServeMux

	mu       sync.Mutex
	sessions map[string]*session
	order    []string // creation order, for deterministic listing and drain
	nextID   int
	draining bool

	// recovering fences the API while leftover session logs await replay:
	// every /v1 endpoint answers 503 recovering until Recover completes, so
	// clients can never observe (or mutate) a half-recovered session table.
	recovering bool
	// pending lists the session log paths New found in DataDir, consumed by
	// Recover.
	pending []string
}

// New validates the configuration, applies defaults, and returns a ready
// Server (not yet listening — pair Handler with an http.Server).
func New(cfg Config) (*Server, error) {
	if cfg.Platform == nil {
		return nil, fmt.Errorf("serve: Config.Platform is required")
	}
	if cfg.Schemes == nil {
		cfg.Schemes = DefaultSchemes(cfg.Platform)
	}
	if cfg.MaxSessions == 0 {
		cfg.MaxSessions = 64
	}
	if cfg.TenantRate == 0 {
		cfg.TenantRate = 4
	}
	if cfg.TenantBurst == 0 {
		cfg.TenantBurst = 8
	}
	if cfg.DrainSteps == 0 {
		cfg.DrainSteps = 20
	}
	if cfg.DrainParallelism == 0 {
		cfg.DrainParallelism = runtime.NumCPU()
	}
	if cfg.MaxStepsPerRequest == 0 {
		cfg.MaxStepsPerRequest = 10000
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Log == nil {
		cfg.Log = slog.New(nopLogHandler{})
	}
	s := &Server{
		cfg:      cfg,
		reg:      cfg.Metrics,
		log:      cfg.Log,
		slots:    pool.NewSlots(cfg.MaxSessions),
		buckets:  newBuckets(cfg.TenantRate, cfg.TenantBurst, cfg.Now),
		sessions: map[string]*session{},
	}
	if cfg.DataDir != "" {
		pending, err := scanSessionLogs(cfg.DataDir)
		if err != nil {
			return nil, err
		}
		if len(pending) > 0 {
			// Leftover logs mean a previous daemon died owning live
			// sessions. Fence the API until Recover replays them; the
			// operator decides (cmd/yukta-serve -recover) whether that
			// happens or the daemon refuses to start.
			s.pending = pending
			s.recovering = true
		}
	}
	s.routes()
	return s, nil
}

// DefaultSchemes returns the scheme catalog the daemon serves by API name —
// the same names the yukta-sim CLI accepts.
func DefaultSchemes(p *core.Platform) map[string]core.Scheme {
	hp, op := core.DefaultHWParams(), core.DefaultOSParams()
	return map[string]core.Scheme{
		"coordinated":      p.CoordinatedHeuristic(),
		"decoupled":        p.DecoupledHeuristic(),
		"yukta-hw":         p.YuktaHWSSVOSHeuristic(hp),
		"yukta-full":       p.YuktaFullSSV(hp, op),
		"yukta-supervised": p.SupervisedYuktaSSV(hp, op),
		"lqg-mono":         p.MonolithicLQG(),
		"lqg-decoupled":    p.DecoupledLQG(),
	}
}

// Registry returns the server's metrics registry (for expvar publication or
// direct inspection).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Handler returns the daemon's HTTP handler: the /v1 API, /healthz, the
// Prometheus exposition at /metrics, and the pprof endpoints under
// /debug/pprof/ — all wrapped in the request-telemetry layer (correlation
// IDs, stage spans, one structured request log line per request).
func (s *Server) Handler() http.Handler { return s.telemetry(s.mux) }

// routes installs the endpoint table. Every /v1 handler sits behind the
// recovery fence: while leftover session logs await replay the daemon
// answers 503 recovering, so traffic can never observe a half-recovered
// session table (only /healthz answers, reporting the recovery).
func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/sessions", s.fenced(s.handleCreate))
	s.mux.HandleFunc("GET /v1/sessions", s.fenced(s.handleList))
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.fenced(s.handleGet))
	s.mux.HandleFunc("POST /v1/sessions/{id}/step", s.fenced(s.handleStep))
	s.mux.HandleFunc("POST /v1/sessions/{id}/trip", s.fenced(s.handleTrip))
	s.mux.HandleFunc("GET /v1/sessions/{id}/trace", s.fenced(s.handleTrace))
	s.mux.HandleFunc("GET /v1/sessions/{id}/watch", s.fenced(s.handleWatch))
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.fenced(s.handleDelete))
	s.mux.HandleFunc("GET /v1/metrics", s.fenced(s.handleMetrics))
	s.mux.HandleFunc("GET /metrics", s.handlePromMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.Handle("GET /debug/vars", expvar.Handler())
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// errorBody is the uniform error envelope of every non-2xx API response.
type errorBody struct {
	// Error is a human-readable description of what was rejected and why.
	Error string `json:"error"`
	// Code is a stable machine-readable reason: "bad_request",
	// "unknown_session", "rate_limited", "capacity", "draining",
	// "not_supervised", "recovering", "stale_seq", "wal_error", "no_trace".
	Code string `json:"code"`
}

// fenced wraps a /v1 handler with the crash-recovery startup fence.
func (s *Server) fenced(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		recovering := s.recovering
		s.mu.Unlock()
		if recovering {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, "recovering",
				"daemon is replaying session logs; retry shortly")
			return
		}
		h(w, r)
	}
}

// writeJSON writes v as a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError writes the uniform error envelope.
func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...), Code: code})
}

// handleCreate is POST /v1/sessions: admission control, then session birth.
func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "invalid JSON body: %v", err)
		return
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = "default"
	}
	span := spanFrom(r.Context())
	admit := time.Now()
	// Admission gate 1: the daemon is draining — no new work.
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeError(w, http.StatusServiceUnavailable, "draining", "daemon is draining; not accepting sessions")
		return
	}
	// Admission gate 2: per-tenant token bucket.
	if ok, retry := s.buckets.take(tenant); !ok {
		s.reg.Counter("serve_rejected_rate_total/" + tenant).Add(1)
		s.log.Info("session rejected", "tenant", tenant, "code", "rate_limited",
			"request_id", requestID(r.Context()))
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(retry.Seconds())+1))
		writeError(w, http.StatusTooManyRequests, "rate_limited",
			"tenant %q is over its session-creation rate; retry after %v", tenant, retry.Round(time.Millisecond))
		return
	}
	// Admission gate 3: global concurrent-session cap.
	if !s.slots.Acquire() {
		s.reg.Counter("serve_rejected_capacity_total").Add(1)
		s.log.Info("session rejected", "tenant", tenant, "code", "capacity",
			"request_id", requestID(r.Context()))
		writeError(w, http.StatusTooManyRequests, "capacity",
			"all %d session slots are in use; close or finish a session first", s.slots.Cap())
		return
	}
	span.Add("admission", time.Since(admit))
	sess, err := s.newSession(tenant, req)
	if err != nil {
		s.slots.Release()
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	s.reg.Counter("serve_sessions_created_total/" + tenant).Add(1)
	s.reg.Gauge("serve_sessions_live").Set(int64(s.slots.InUse()))
	s.log.Info("session created", "session", sess.id, "tenant", tenant,
		"scheme", sess.scheme, "app", sess.app, "request_id", requestID(r.Context()))
	writeJSON(w, http.StatusCreated, sess.info())
}

// handleList is GET /v1/sessions.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	infos := make([]SessionInfo, 0, len(s.order))
	for _, id := range s.order {
		if sess := s.sessions[id]; sess != nil {
			infos = append(infos, sess.info())
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, ListResponse{Sessions: infos})
}

// lookup resolves a session path ID, writing the 404 envelope when absent.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *session {
	id := r.PathValue("id")
	s.mu.Lock()
	sess := s.sessions[id]
	s.mu.Unlock()
	if sess == nil {
		writeError(w, http.StatusNotFound, "unknown_session", "no session %q", id)
		return nil
	}
	return sess
}

// handleGet is GET /v1/sessions/{id}.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	if sess := s.lookup(w, r); sess != nil {
		sess.touch(s.cfg.Now())
		writeJSON(w, http.StatusOK, sess.info())
	}
}

// handleStep is POST /v1/sessions/{id}/step.
func (s *Server) handleStep(w http.ResponseWriter, r *http.Request) {
	sess := s.lookup(w, r)
	if sess == nil {
		return
	}
	var req StepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "invalid JSON body: %v", err)
		return
	}
	if req.Steps <= 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "steps must be positive, got %d", req.Steps)
		return
	}
	if req.Seq < 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "seq must be non-negative, got %d", req.Seq)
		return
	}
	n := req.Steps
	if n > s.cfg.MaxStepsPerRequest {
		n = s.cfg.MaxStepsPerRequest
	}
	resp, executed, cached, errCode := sess.step(r.Context(), n, req.Seq, s.cfg.Now())
	switch errCode {
	case "stale_seq":
		writeError(w, http.StatusConflict, "stale_seq",
			"seq %d is behind the session's last applied sequence number", req.Seq)
		return
	case "wal_error":
		s.reg.Counter("serve_wal_errors_total").Add(1)
		writeError(w, http.StatusInternalServerError, "wal_error",
			"session %s cannot append to its write-ahead log; the session is wedged", sess.id)
		return
	}
	if !cached {
		s.reg.Counter("serve_steps_total").Add(int64(executed))
		s.reg.Counter("serve_steps_total/" + sess.tenant).Add(int64(executed))
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleTrip is POST /v1/sessions/{id}/trip.
func (s *Server) handleTrip(w http.ResponseWriter, r *http.Request) {
	sess := s.lookup(w, r)
	if sess == nil {
		return
	}
	forced, walOK := sess.forceTrip(s.cfg.Now())
	if !walOK {
		s.reg.Counter("serve_wal_errors_total").Add(1)
		writeError(w, http.StatusInternalServerError, "wal_error",
			"session %s cannot append to its write-ahead log; the session is wedged", sess.id)
		return
	}
	if !forced {
		writeError(w, http.StatusConflict, "not_supervised",
			"session %s cannot trip: scheme is unsupervised or the run already finished", sess.id)
		return
	}
	s.reg.Counter("serve_trips_forced_total").Add(1)
	s.log.Info("trip forced", "session", sess.id, "tenant", sess.tenant,
		"request_id", requestID(r.Context()))
	writeJSON(w, http.StatusOK, TripResponse{Forced: true, SupState: sess.supState()})
}

// handleTrace is GET /v1/sessions/{id}/trace: the session's flight-recorder
// trace streamed as JSONL in the obs.Record schema (obs.ValidateJSONL
// accepts it; byte-identical to the batch run of the same options).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	sess := s.lookup(w, r)
	if sess == nil {
		return
	}
	sess.touch(s.cfg.Now())
	w.Header().Set("Content-Type", "application/x-ndjson")
	var err error
	spanFrom(r.Context()).Time("trace_encode", func() {
		err = sess.writeTrace(w)
	})
	if err != nil {
		// Headers are gone; nothing to do but drop the connection.
		return
	}
}

// handleDelete is DELETE /v1/sessions/{id}. The session's write-ahead log
// is removed with it: an explicit close discards state on purpose, so the
// next recovery has nothing to replay for it.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sess := s.unregister(id)
	if sess == nil {
		writeError(w, http.StatusNotFound, "unknown_session", "no session %q", id)
		return
	}
	sess.closeWatchers()
	sess.closeLog(true)
	s.slots.Release()
	s.reg.Counter("serve_sessions_closed_total").Add(1)
	s.reg.Gauge("serve_sessions_live").Set(int64(s.slots.InUse()))
	s.log.Info("session closed", "session", id, "tenant", sess.tenant,
		"request_id", requestID(r.Context()))
	writeJSON(w, http.StatusOK, CloseResponse{Closed: true, ID: id})
}

// handleMetrics is GET /v1/metrics: the registry snapshot (the same data the
// expvar publication exposes), with names sorted for stable output.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	// Emit in sorted order for humans; JSON objects are unordered, so build
	// the document by hand to keep the rendering deterministic.
	var b strings.Builder
	b.WriteString("{\n")
	for i, name := range names {
		val, err := json.Marshal(snap[name])
		if err != nil {
			continue
		}
		if i > 0 {
			b.WriteString(",\n")
		}
		fmt.Fprintf(&b, "  %q: %s", name, val)
	}
	b.WriteString("\n}\n")
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write([]byte(b.String()))
}

// handlePromMetrics is GET /metrics: the registry rendered in the
// Prometheus text exposition format. It is the same live registry the JSON
// snapshot (/v1/metrics) and the expvar publication read, rendered by
// obs.WritePrometheus — single source, so the views cannot drift (gated by
// the serve drift test). Like /healthz it answers behind the recovery fence:
// scraping must work while a recovery is in flight.
func (s *Server) handlePromMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

// handleHealthz is GET /healthz. It answers even behind the recovery fence
// — status "recovering" — so orchestrators and waiting clients can watch
// the replay finish.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	recovering := s.recovering
	n := len(s.sessions)
	s.mu.Unlock()
	status := "ok"
	if recovering {
		status = "recovering"
	}
	version, goVersion := BuildInfo()
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:   status,
		Sessions: n,
		Draining: draining,
		Version:  version,
		Go:       goVersion,
	})
}
