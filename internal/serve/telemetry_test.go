package serve

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"

	"yukta/internal/obs"
)

// doRaw issues one request and returns the full response, for tests that
// need headers rather than decoded bodies.
func doRaw(t *testing.T, req *http.Request) *http.Response {
	t.Helper()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestRequestIDEchoed checks the correlation-ID contract on the wire: every
// response carries X-Request-ID — minted when the client sent none, echoed
// verbatim when it did — including error responses.
func TestRequestIDEchoed(t *testing.T) {
	_, ts := newTestServer(t, nil)

	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	resp := doRaw(t, req)
	minted := resp.Header.Get("X-Request-ID")
	if minted == "" {
		t.Fatal("response without client ID carries no X-Request-ID")
	}

	req, _ = http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "client-chose-this")
	resp = doRaw(t, req)
	if got := resp.Header.Get("X-Request-ID"); got != "client-chose-this" {
		t.Errorf("client-sent ID not echoed: got %q", got)
	}

	// Error responses carry the ID too (404 on an unknown session).
	req, _ = http.NewRequest("GET", ts.URL+"/v1/sessions/s-999", nil)
	req.Header.Set("X-Request-ID", "err-rid")
	resp = doRaw(t, req)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "err-rid" {
		t.Errorf("error response dropped the request ID: got %q", got)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing slog output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) lines() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return strings.Split(strings.TrimSpace(b.buf.String()), "\n")
}

// requestLogs decodes the buffer's JSON log lines and returns those with
// msg == "request" and the given request_id.
func requestLogs(t *testing.T, buf *syncBuffer, rid string) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range buf.lines() {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("log line is not JSON: %q: %v", line, err)
		}
		if m["msg"] == "request" && m["request_id"] == rid {
			out = append(out, m)
		}
	}
	return out
}

// TestRequestLogLine checks the structured request log: exactly one
// "request" line per request, carrying the correlation ID, method, path,
// status and the per-stage latency fields of the stages the request passed
// through.
func TestRequestLogLine(t *testing.T) {
	var buf syncBuffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	_, ts := newTestServer(t, func(cfg *Config) { cfg.Log = logger })

	// Create: passes the admission stage.
	body, _ := json.Marshal(CreateRequest{Scheme: "coordinated", App: "gamess", MaxTimeS: 5})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/sessions", bytes.NewReader(body))
	req.Header.Set("X-Request-ID", "rid-create")
	resp := doRaw(t, req)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	var info SessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}

	logs := requestLogs(t, &buf, "rid-create")
	if len(logs) != 1 {
		t.Fatalf("create produced %d request log lines, want exactly 1", len(logs))
	}
	line := logs[0]
	if line["method"] != "POST" || line["path"] != "/v1/sessions" {
		t.Errorf("log line method/path = %v/%v", line["method"], line["path"])
	}
	if line["status"] != float64(http.StatusCreated) {
		t.Errorf("log line status = %v, want 201", line["status"])
	}
	if _, ok := line["dur_us"]; !ok {
		t.Error("log line missing dur_us")
	}
	if _, ok := line["stage_admission_us"]; !ok {
		t.Errorf("create log line missing stage_admission_us: %v", line)
	}

	// Step: passes step_exec and wal_append.
	req, _ = http.NewRequest("POST", ts.URL+"/v1/sessions/"+info.ID+"/step",
		strings.NewReader(`{"steps":3}`))
	req.Header.Set("X-Request-ID", "rid-step")
	resp = doRaw(t, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("step: status %d", resp.StatusCode)
	}
	logs = requestLogs(t, &buf, "rid-step")
	if len(logs) != 1 {
		t.Fatalf("step produced %d request log lines, want exactly 1", len(logs))
	}
	for _, stage := range []string{"stage_step_exec_us", "stage_wal_append_us"} {
		if _, ok := logs[0][stage]; !ok {
			t.Errorf("step log line missing %s: %v", stage, logs[0])
		}
	}
}

// TestRequestLogDisabledByDefault checks that a daemon without a configured
// logger emits nothing (the nop handler) — the telemetry layer must not
// write to stderr on its own.
func TestRequestLogDisabledByDefault(t *testing.T) {
	s, ts := newTestServer(t, nil)
	if code := do(t, "GET", ts.URL+"/healthz", nil, nil); code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
	if s.log.Enabled(nil, slog.LevelError) {
		t.Error("default logger is enabled; want the nop handler")
	}
}

// TestPromMetricsMatchesSnapshot is the drift gate between the two metric
// views: every counter in the /v1/metrics JSON snapshot must appear in the
// /metrics Prometheus exposition with the same value, and the exposition
// must satisfy the strict format parser.
func TestPromMetricsMatchesSnapshot(t *testing.T) {
	_, ts := newTestServer(t, nil)
	// Populate counters across a few families: create, step, trace, delete.
	info := create(t, ts, CreateRequest{Scheme: "coordinated", App: "gamess", MaxTimeS: 5})
	stepToDone(t, ts, info.ID, 3)
	fetchTrace(t, ts, info.ID)
	if code := do(t, "DELETE", ts.URL+"/v1/sessions/"+info.ID, nil, nil); code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}

	var snap map[string]any
	if code := do(t, "GET", ts.URL+"/v1/metrics", nil, &snap); code != http.StatusOK {
		t.Fatalf("/v1/metrics: status %d", code)
	}

	req, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
	resp := doRaw(t, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	samples, err := obs.ParsePrometheus(resp.Body)
	if err != nil {
		t.Fatalf("/metrics failed the strict exposition parse: %v", err)
	}
	prom := map[string]float64{}
	for _, s := range samples {
		prom[s.Key()] = s.Value
	}

	checked := 0
	for name, val := range snap {
		v, isCounter := val.(float64) // counters are bare numbers in the snapshot
		if !isCounter {
			continue
		}
		family, key, _ := strings.Cut(name, "/")
		pk := family
		if key != "" {
			pk = family + `{key="` + key + `"}`
		}
		got, ok := prom[pk]
		if !ok {
			t.Errorf("counter %s missing from /metrics (looked for %s)", name, pk)
			continue
		}
		if got != v {
			t.Errorf("counter %s drifted: snapshot %g, prometheus %g", name, v, got)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no counters compared; the drift gate checked nothing")
	}

	// The per-stage histograms must be present after the traffic above.
	found := false
	for k := range prom {
		if strings.HasPrefix(k, `serve_stage_us_count{key="step_exec"`) {
			found = true
		}
	}
	if !found {
		t.Error("serve_stage_us/step_exec histogram missing from /metrics")
	}
}

// TestHealthzBuildInfo checks the version fields satellite: /healthz reports
// the build's version and Go toolchain.
func TestHealthzBuildInfo(t *testing.T) {
	_, ts := newTestServer(t, nil)
	var h HealthResponse
	if code := do(t, "GET", ts.URL+"/healthz", nil, &h); code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
	if h.Version == "" {
		t.Error("healthz version is empty")
	}
	if !strings.HasPrefix(h.Go, "go") {
		t.Errorf("healthz go = %q, want a go version", h.Go)
	}
	version, goVersion := BuildInfo()
	if h.Version != version || h.Go != goVersion {
		t.Errorf("healthz (%q, %q) disagrees with BuildInfo (%q, %q)",
			h.Version, h.Go, version, goVersion)
	}
}
