package serve

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// walFixture returns a representative logged history: create, step batches
// with and without client sequence numbers, a trip barrier, more steps.
func walFixture() []walRecord {
	return []walRecord{
		{T: walOpCreate, Tenant: "acme", Req: &CreateRequest{Scheme: "yukta-supervised", App: "gamess", MaxTimeS: 30}},
		{T: walOpStep, N: 7, Seq: 1},
		{T: walOpStep, N: 3, Seq: 2},
		{T: walOpTrip},
		{T: walOpStep, N: 5},
	}
}

// writeWAL creates a log at path holding the given records.
func writeWAL(t *testing.T, path string, recs []walRecord) {
	t.Helper()
	w, err := createWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.close()
	for _, rec := range recs {
		if err := w.append(rec); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWALRoundTrip checks that appended records read back exactly, and that
// validLen covers the whole healthy file.
func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s-1.wal")
	recs := walFixture()
	writeWAL(t, path, recs)

	got, validLen, err := readWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, recs)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if validLen != fi.Size() {
		t.Fatalf("validLen = %d, file size %d; a healthy log must be fully valid", validLen, fi.Size())
	}

	// A second session log at the same path is an ID collision: refuse.
	if _, err := createWAL(path); err == nil {
		t.Fatal("createWAL overwrote an existing session log")
	}
}

// TestWALDamagedTail checks the two tail-damage modes — a torn final line
// (crash mid-write) and a corrupted final line (CRC mismatch) — both yield
// the valid prefix plus a validLen that truncates the damage away, and that
// truncateWAL then restores a fully healthy log.
func TestWALDamagedTail(t *testing.T) {
	recs := walFixture()
	damage := map[string]func([]byte) []byte{
		"torn": func(b []byte) []byte {
			return b[:len(b)-3] // chop the tail mid-record
		},
		"corrupt": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-5] ^= 0x01 // flip a payload bit in the last record
			return c
		},
	}
	for name, wreck := range damage {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "s-1.wal")
			writeWAL(t, path, recs)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, wreck(raw), 0o644); err != nil {
				t.Fatal(err)
			}

			got, validLen, err := readWAL(path)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, recs[:len(recs)-1]) {
				t.Fatalf("damaged tail: got %d records %+v; want the %d-record valid prefix", len(got), got, len(recs)-1)
			}
			if err := truncateWAL(path, validLen); err != nil {
				t.Fatal(err)
			}
			healed, healedLen, err := readWAL(path)
			if err != nil {
				t.Fatal(err)
			}
			fi, _ := os.Stat(path)
			if !reflect.DeepEqual(healed, recs[:len(recs)-1]) || healedLen != fi.Size() {
				t.Fatalf("truncated log still damaged: %d records, validLen %d, size %d", len(healed), healedLen, fi.Size())
			}
		})
	}
}

// TestCoalesceOps checks the compaction algebra: consecutive step records
// merge (counts summed, newest Seq kept), trips and drains are barriers, and
// the coalesced list replays to the same positions as the original.
func TestCoalesceOps(t *testing.T) {
	got := coalesceOps(walFixture())
	want := []walRecord{
		{T: walOpCreate, Tenant: "acme", Req: walFixture()[0].Req},
		{T: walOpStep, N: 10, Seq: 2},
		{T: walOpTrip},
		{T: walOpStep, N: 5},
	}
	if len(got) != len(want) {
		t.Fatalf("coalesced to %d records %+v; want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i].T != want[i].T || got[i].N != want[i].N || got[i].Seq != want[i].Seq {
			t.Fatalf("coalesced[%d] = %+v; want %+v", i, got[i], want[i])
		}
	}
	// A step whose client did not use sequencing must not erase the last Seq.
	merged := coalesceOps([]walRecord{{T: walOpStep, N: 2, Seq: 9}, {T: walOpStep, N: 1}})
	if len(merged) != 1 || merged[0].N != 3 || merged[0].Seq != 9 {
		t.Fatalf("seq-preserving merge = %+v; want one step n=3 seq=9", merged)
	}
}

// TestWALCompact checks the atomic rewrite: after compacting onto the
// coalesced ops the file holds exactly those records, and appends keep
// working on the swapped handle.
func TestWALCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s-1.wal")
	w, err := createWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.close()
	var ops []walRecord
	for _, rec := range walFixture() {
		if err := w.append(rec); err != nil {
			t.Fatal(err)
		}
		ops = coalesceOps(append(ops, rec))
	}
	before, _ := os.Stat(path)
	if err := w.compact(ops); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("compaction did not shrink the log (%d -> %d bytes)", before.Size(), after.Size())
	}
	if w.appended != len(ops) {
		t.Fatalf("appended counter = %d after compact; want %d", w.appended, len(ops))
	}

	// The handle now points at the new file: further appends land after the
	// compacted records.
	extra := walRecord{T: walOpStep, N: 2, Seq: 3}
	if err := w.append(extra); err != nil {
		t.Fatal(err)
	}
	got, _, err := readWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops)+1 || !reflect.DeepEqual(got[:len(ops)], ops) || got[len(got)-1] != extra {
		t.Fatalf("post-compact log = %+v; want coalesced ops plus the extra step", got)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("compaction left its temp file behind")
	}
}

// TestDecodeWALLineRejects enumerates malformed lines: missing CRC field,
// short CRC, non-hex CRC, bad JSON, empty op.
func TestDecodeWALLineRejects(t *testing.T) {
	for _, line := range []string{
		"",
		"{\"t\":\"step\"}",
		"abcd {\"t\":\"step\"}",
		"zzzzzzzz {\"t\":\"step\"}",
		"00000000 {\"t\":\"step\"}",
		"00000000 not-json",
	} {
		if _, ok := decodeWALLine(line); ok {
			t.Errorf("decodeWALLine accepted %q", line)
		}
	}
	// And the happy path survives the enumeration.
	enc, err := encodeWALRecord(walRecord{T: walOpStep, N: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := decodeWALLine(string(bytes.TrimSuffix(enc, []byte("\n")))); !ok {
		t.Fatal("decodeWALLine rejected a healthy encoded record")
	}
}
