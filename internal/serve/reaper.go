package serve

import (
	"context"
	"time"
)

// The idle-TTL reaper closes sessions no client has touched for
// Config.IdleTTL: an abandoned session (client crashed, operator forgot a
// curl loop) otherwise holds one of the global pool.Slots — and its board
// state and trace ring — until the daemon restarts. Reaping is off by
// default; it discards the session's state exactly like an explicit DELETE,
// write-ahead log included.

// ReapIdle closes every session whose last client activity (any
// session-scoped request: step, trip, status, trace) is at least
// Config.IdleTTL ago, releasing its global slot and discarding its
// write-ahead log. It returns how many sessions were reaped and is a no-op
// while IdleTTL is unset, the daemon is draining (drain owns the table) or
// recovery has not finished. Reaped sessions count into
// serve_sessions_reaped_total.
func (s *Server) ReapIdle() (reaped int) {
	ttl := s.cfg.IdleTTL
	if ttl <= 0 {
		return 0
	}
	now := s.cfg.Now()
	s.mu.Lock()
	if s.draining || s.recovering {
		s.mu.Unlock()
		return 0
	}
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	for _, id := range ids {
		s.mu.Lock()
		sess := s.sessions[id]
		s.mu.Unlock()
		if sess == nil {
			continue
		}
		sess.mu.Lock()
		idle := now.Sub(sess.lastActive)
		sess.mu.Unlock()
		if idle < ttl {
			continue
		}
		if s.unregister(id) == nil {
			continue // lost the race to an explicit DELETE
		}
		sess.closeWatchers()
		sess.closeLog(true)
		s.slots.Release()
		s.reg.Counter("serve_sessions_reaped_total").Add(1)
		s.log.Info("session reaped", "session", id, "tenant", sess.tenant,
			"idle", idle.String())
		reaped++
	}
	if reaped > 0 {
		s.reg.Gauge("serve_sessions_live").Set(int64(s.slots.InUse()))
	}
	return reaped
}

// RunReaper calls ReapIdle every interval until ctx is cancelled —
// cmd/yukta-serve runs it as a background goroutine when -idle-ttl is set.
func (s *Server) RunReaper(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			s.ReapIdle()
		}
	}
}
