package serve

import (
	"fmt"
	"io"
	"sync"
	"time"

	"yukta/internal/core"
	"yukta/internal/fault"
	"yukta/internal/obs"
	"yukta/internal/workload"
)

// CreateRequest is the POST /v1/sessions body. Every field except Scheme and
// App is optional; zero values select the documented defaults. The tuple
// (Scheme, App, FaultClass, FaultIntensity, FaultSeed, IntervalMS, MaxTimeS)
// fully determines the session's simulation — two sessions created with
// equal tuples produce byte-identical traces, and both match the batch
// core.Run of the same options.
type CreateRequest struct {
	// Tenant is the caller's admission-control identity; each tenant has its
	// own token bucket and per-tenant counters. Empty means "default".
	Tenant string `json:"tenant,omitempty"`
	// Scheme is the controller stack by API name (see DefaultSchemes):
	// coordinated, decoupled, yukta-hw, yukta-full, yukta-supervised,
	// lqg-mono, lqg-decoupled. Required.
	Scheme string `json:"scheme"`
	// App is the workload name (a benchmark application or a heterogeneous
	// mix: blmc, stga, blst, mcga). Required.
	App string `json:"app"`
	// FaultClass selects a fault-injection campaign class: noise, dropout,
	// actuator, thermal, phase, or all (fault.ClassNames). Empty means a
	// clean run.
	FaultClass string `json:"fault_class,omitempty"`
	// FaultIntensity scales the campaign (1.0 = the harness's harshest
	// default grid point). 0 with a FaultClass set means 1.0.
	FaultIntensity float64 `json:"fault_intensity,omitempty"`
	// FaultSeed is the campaign's base seed; per-session streams derive from
	// (seed, fault.RunKey(scheme, app)). 0 means 1.
	FaultSeed int64 `json:"fault_seed,omitempty"`
	// IntervalMS is the control interval in milliseconds. 0 means 500 (the
	// paper's §V-A interval).
	IntervalMS int `json:"interval_ms,omitempty"`
	// MaxTimeS bounds the simulated run time in seconds. 0 means 1200.
	MaxTimeS float64 `json:"max_time_s,omitempty"`
	// Engine selects the simulation core ("", "event" or "lockstep") — for
	// parity with the batch CLIs; both engines are byte-identical, and a
	// hosted single-board session degenerates to the same per-interval
	// sequence either way.
	Engine string `json:"engine,omitempty"`
	// TraceCapacity is the flight-recorder ring capacity in control
	// intervals (the trace endpoint streams the retained window). 0 means
	// obs.DefaultCapacity; -1 disables tracing entirely.
	TraceCapacity int `json:"trace_capacity,omitempty"`
}

// SessionInfo is the session-status document (create response and GET
// session body).
type SessionInfo struct {
	// ID is the server-assigned session identifier ("s-1", "s-2", ...).
	ID string `json:"id"`
	// Tenant is the owning tenant.
	Tenant string `json:"tenant"`
	// Scheme echoes the API scheme name the session runs.
	Scheme string `json:"scheme"`
	// App echoes the workload name.
	App string `json:"app"`
	// Supervised reports whether the scheme carries the supervisory safety
	// layer (and therefore supports the trip endpoint and a staged drain).
	Supervised bool `json:"supervised"`
	// Steps is the number of control intervals executed so far.
	Steps int `json:"steps"`
	// MaxSteps is the step bound implied by max_time_s / interval_ms.
	MaxSteps int `json:"max_steps"`
	// Done reports run completion (workload finished or MaxSteps reached).
	Done bool `json:"done"`
	// Drained reports that the daemon's graceful drain walked this session
	// through the supervisor fallback.
	Drained bool `json:"drained"`
	// SupState is the supervisory state the next interval runs under
	// (nominal, suspect, fallback, recovering); empty for unsupervised
	// schemes.
	SupState string `json:"sup_state,omitempty"`
	// Result is the run's measurements so far (canonical once Done).
	Result ResultInfo `json:"result"`
}

// ResultInfo is the JSON shape of a session's core.RunResult.
type ResultInfo struct {
	// Completed reports whether the workload ran to completion.
	Completed bool `json:"completed"`
	// TimeS is the simulated completion time (delay D), in seconds.
	TimeS float64 `json:"time_s"`
	// EnergyJ is the consumed energy E, in joules.
	EnergyJ float64 `json:"energy_j"`
	// ExDJS is the E×D product, in J·s.
	ExDJS float64 `json:"exd_js"`
	// Emergencies counts firmware emergency-throttle events.
	Emergencies int `json:"emergencies"`
	// FaultsInjected sums the faults delivered across all classes.
	FaultsInjected int `json:"faults_injected"`
	// Trips counts confirmed supervisor trips (supervised schemes only).
	Trips int `json:"trips"`
	// Recoveries counts completed trip-to-nominal round trips.
	Recoveries int `json:"recoveries"`
	// FallbackSteps counts intervals the fallback held authority.
	FallbackSteps int `json:"fallback_steps"`
}

// ListResponse is the GET /v1/sessions body.
type ListResponse struct {
	// Sessions lists every open session in creation order.
	Sessions []SessionInfo `json:"sessions"`
}

// StepRequest is the POST /v1/sessions/{id}/step body.
type StepRequest struct {
	// Steps is how many control intervals to advance (capped by the server's
	// MaxStepsPerRequest; must be positive).
	Steps int `json:"steps"`
}

// StepResponse is the step endpoint's body.
type StepResponse struct {
	// Executed is how many intervals actually ran (less than requested at
	// completion or the per-request cap; 0 when the run was already done).
	Executed int `json:"executed"`
	// Steps is the session's total executed interval count.
	Steps int `json:"steps"`
	// Done reports run completion.
	Done bool `json:"done"`
	// SupState is the supervisory state after the advance (empty for
	// unsupervised schemes).
	SupState string `json:"sup_state,omitempty"`
}

// TripResponse is the trip endpoint's body.
type TripResponse struct {
	// Forced confirms the trip was armed: the next stepped interval runs
	// under the fallback with a bumpless transfer.
	Forced bool `json:"forced"`
	// SupState is the supervisory state at response time (the transfer
	// lands on the next step request).
	SupState string `json:"sup_state,omitempty"`
}

// CloseResponse is the DELETE /v1/sessions/{id} body.
type CloseResponse struct {
	// Closed confirms removal.
	Closed bool `json:"closed"`
	// ID echoes the closed session's identifier.
	ID string `json:"id"`
}

// HealthResponse is the GET /healthz body.
type HealthResponse struct {
	// Status is "ok" while the daemon serves traffic.
	Status string `json:"status"`
	// Sessions is the number of open sessions.
	Sessions int `json:"sessions"`
	// Draining reports that graceful drain has begun (creates return 503).
	Draining bool `json:"draining"`
}

// session is one hosted board run: a core.StepRun plus its recorder, guarded
// by a per-session lock (the StepRun itself is single-owner state).
type session struct {
	id     string
	tenant string
	scheme string
	app    string

	mu      sync.Mutex
	run     *core.StepRun
	rec     *obs.Recorder
	drained bool
}

// newSession validates the request against the scheme/workload/fault
// catalogs, builds the StepRun, and registers the session.
func (s *Server) newSession(tenant string, req CreateRequest) (*session, error) {
	sch, ok := s.cfg.Schemes[req.Scheme]
	if !ok {
		return nil, fmt.Errorf("unknown scheme %q", req.Scheme)
	}
	w, err := lookupWorkload(req.App)
	if err != nil {
		return nil, err
	}
	opt := core.RunOptions{SkipSeries: true}
	if req.IntervalMS < 0 || req.MaxTimeS < 0 {
		return nil, fmt.Errorf("interval_ms and max_time_s must be non-negative")
	}
	if req.IntervalMS > 0 {
		opt.Interval = time.Duration(req.IntervalMS) * time.Millisecond
	}
	if req.MaxTimeS > 0 {
		opt.MaxTime = time.Duration(req.MaxTimeS * float64(time.Second))
	}
	if eng, err := core.ParseEngine(req.Engine); err != nil {
		return nil, err
	} else {
		opt.Engine = eng
	}
	if req.FaultClass != "" {
		if !fault.ValidClass(req.FaultClass) {
			return nil, fmt.Errorf("unknown fault_class %q (want one of %v)", req.FaultClass, fault.ClassNames())
		}
		intensity := req.FaultIntensity
		if intensity == 0 {
			intensity = 1.0
		}
		if intensity < 0 {
			return nil, fmt.Errorf("fault_intensity must be non-negative")
		}
		seed := req.FaultSeed
		if seed == 0 {
			seed = 1
		}
		opt.Faults = fault.PresetClass(seed, intensity, req.FaultClass)
	} else if req.FaultIntensity != 0 || req.FaultSeed != 0 {
		return nil, fmt.Errorf("fault_intensity/fault_seed require fault_class")
	}
	var rec *obs.Recorder
	if req.TraceCapacity >= 0 {
		rec = obs.NewRecorder(req.TraceCapacity)
		opt.Trace = rec
	}
	opt.Metrics = s.reg
	run, err := core.NewStepRun(s.cfg.Platform.Cfg, sch, w, opt)
	if err != nil {
		return nil, err
	}
	sess := &session{
		tenant: tenant,
		scheme: req.Scheme,
		app:    req.App,
		run:    run,
		rec:    rec,
	}
	s.mu.Lock()
	s.nextID++
	sess.id = fmt.Sprintf("s-%d", s.nextID)
	s.sessions[sess.id] = sess
	s.order = append(s.order, sess.id)
	s.mu.Unlock()
	return sess, nil
}

// lookupWorkload resolves an app or heterogeneous-mix name.
func lookupWorkload(name string) (workload.Workload, error) {
	for _, m := range workload.HeterogeneousMixes() {
		if m.Name() == name {
			return m, nil
		}
	}
	return workload.Lookup(name)
}

// info snapshots the session's status document.
func (se *session) info() SessionInfo {
	se.mu.Lock()
	defer se.mu.Unlock()
	res := se.run.Result()
	info := SessionInfo{
		ID:         se.id,
		Tenant:     se.tenant,
		Scheme:     se.scheme,
		App:        se.app,
		Supervised: se.run.Supervised(),
		Steps:      se.run.Steps(),
		MaxSteps:   se.run.MaxSteps(),
		Done:       se.run.Done(),
		Drained:    se.drained,
		Result: ResultInfo{
			Completed:   res.Completed,
			TimeS:       res.TimeS,
			EnergyJ:     res.EnergyJ,
			ExDJS:       res.ExD,
			Emergencies: res.EmergencyEvents,
			FaultsInjected: res.Faults.DroppedReadings + res.Faults.StaleReadings +
				res.Faults.HeldCommands + res.Faults.SkewedCommands + res.Faults.ForcedThrottles,
		},
	}
	if st, ok := se.run.SupervisorState(); ok {
		info.SupState = st.String()
	}
	if sup := res.Supervisor; sup != nil {
		info.Result.Trips = sup.Trips
		info.Result.Recoveries = sup.Recoveries
		info.Result.FallbackSteps = sup.FallbackSteps
	}
	return info
}

// step advances the run by up to n intervals under the session lock.
func (se *session) step(n int) int {
	se.mu.Lock()
	defer se.mu.Unlock()
	return se.run.Step(n)
}

// steps returns the executed interval count.
func (se *session) steps() int {
	se.mu.Lock()
	defer se.mu.Unlock()
	return se.run.Steps()
}

// done reports run completion.
func (se *session) done() bool {
	se.mu.Lock()
	defer se.mu.Unlock()
	return se.run.Done()
}

// supState names the supervisory state ("" for unsupervised schemes).
func (se *session) supState() string {
	se.mu.Lock()
	defer se.mu.Unlock()
	if st, ok := se.run.SupervisorState(); ok {
		return st.String()
	}
	return ""
}

// forceTrip arms an operator-forced supervisor trip.
func (se *session) forceTrip() bool {
	se.mu.Lock()
	defer se.mu.Unlock()
	return se.run.ForceTrip()
}

// writeTrace streams the retained flight-recorder window as JSONL.
func (se *session) writeTrace(w io.Writer) error {
	se.mu.Lock()
	defer se.mu.Unlock()
	if se.rec == nil {
		return nil
	}
	return se.rec.WriteJSONL(w)
}

// drain walks the session through the supervisory staged fallback: force an
// operator trip (supervised schemes), then settle for up to drainSteps
// intervals so the fallback's conservative posture is in effect at shutdown.
// Finished sessions drain trivially.
func (se *session) drain(drainSteps int) (tripped bool) {
	se.mu.Lock()
	defer se.mu.Unlock()
	if !se.run.Done() {
		tripped = se.run.ForceTrip()
		if tripped {
			se.run.Step(drainSteps)
		}
	}
	se.drained = true
	return tripped
}
