package serve

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"yukta/internal/core"
	"yukta/internal/fault"
	"yukta/internal/obs"
	"yukta/internal/workload"
)

// CreateRequest is the POST /v1/sessions body. Every field except Scheme and
// App is optional; zero values select the documented defaults. The tuple
// (Scheme, App, FaultClass, FaultIntensity, FaultSeed, IntervalMS, MaxTimeS)
// fully determines the session's simulation — two sessions created with
// equal tuples produce byte-identical traces, and both match the batch
// core.Run of the same options.
type CreateRequest struct {
	// Tenant is the caller's admission-control identity; each tenant has its
	// own token bucket and per-tenant counters. Empty means "default".
	Tenant string `json:"tenant,omitempty"`
	// Scheme is the controller stack by API name (see DefaultSchemes):
	// coordinated, decoupled, yukta-hw, yukta-full, yukta-supervised,
	// lqg-mono, lqg-decoupled. Required.
	Scheme string `json:"scheme"`
	// App is the workload name (a benchmark application or a heterogeneous
	// mix: blmc, stga, blst, mcga). Required.
	App string `json:"app"`
	// FaultClass selects a fault-injection campaign class: noise, dropout,
	// actuator, thermal, phase, or all (fault.ClassNames). Empty means a
	// clean run.
	FaultClass string `json:"fault_class,omitempty"`
	// FaultIntensity scales the campaign (1.0 = the harness's harshest
	// default grid point). 0 with a FaultClass set means 1.0.
	FaultIntensity float64 `json:"fault_intensity,omitempty"`
	// FaultSeed is the campaign's base seed; per-session streams derive from
	// (seed, fault.RunKey(scheme, app)). 0 means 1.
	FaultSeed int64 `json:"fault_seed,omitempty"`
	// IntervalMS is the control interval in milliseconds. 0 means 500 (the
	// paper's §V-A interval).
	IntervalMS int `json:"interval_ms,omitempty"`
	// MaxTimeS bounds the simulated run time in seconds. 0 means 1200.
	MaxTimeS float64 `json:"max_time_s,omitempty"`
	// Engine selects the simulation core ("", "event" or "lockstep") — for
	// parity with the batch CLIs; both engines are byte-identical, and a
	// hosted single-board session degenerates to the same per-interval
	// sequence either way.
	Engine string `json:"engine,omitempty"`
	// TraceCapacity is the flight-recorder ring capacity in control
	// intervals (the trace endpoint streams the retained window). 0 means
	// obs.DefaultCapacity; -1 disables tracing entirely.
	TraceCapacity int `json:"trace_capacity,omitempty"`
}

// SessionInfo is the session-status document (create response and GET
// session body).
type SessionInfo struct {
	// ID is the server-assigned session identifier ("s-1", "s-2", ...).
	ID string `json:"id"`
	// Tenant is the owning tenant.
	Tenant string `json:"tenant"`
	// Scheme echoes the API scheme name the session runs.
	Scheme string `json:"scheme"`
	// App echoes the workload name.
	App string `json:"app"`
	// Supervised reports whether the scheme carries the supervisory safety
	// layer (and therefore supports the trip endpoint and a staged drain).
	Supervised bool `json:"supervised"`
	// Steps is the number of control intervals executed so far.
	Steps int `json:"steps"`
	// MaxSteps is the step bound implied by max_time_s / interval_ms.
	MaxSteps int `json:"max_steps"`
	// Done reports run completion (workload finished or MaxSteps reached).
	Done bool `json:"done"`
	// Drained reports that the daemon's graceful drain walked this session
	// through the supervisor fallback.
	Drained bool `json:"drained"`
	// SupState is the supervisory state the next interval runs under
	// (nominal, suspect, fallback, recovering); empty for unsupervised
	// schemes.
	SupState string `json:"sup_state,omitempty"`
	// Result is the run's measurements so far (canonical once Done).
	Result ResultInfo `json:"result"`
}

// ResultInfo is the JSON shape of a session's core.RunResult.
type ResultInfo struct {
	// Completed reports whether the workload ran to completion.
	Completed bool `json:"completed"`
	// TimeS is the simulated completion time (delay D), in seconds.
	TimeS float64 `json:"time_s"`
	// EnergyJ is the consumed energy E, in joules.
	EnergyJ float64 `json:"energy_j"`
	// ExDJS is the E×D product, in J·s.
	ExDJS float64 `json:"exd_js"`
	// Emergencies counts firmware emergency-throttle events.
	Emergencies int `json:"emergencies"`
	// FaultsInjected sums the faults delivered across all classes.
	FaultsInjected int `json:"faults_injected"`
	// Trips counts confirmed supervisor trips (supervised schemes only).
	Trips int `json:"trips"`
	// Recoveries counts completed trip-to-nominal round trips.
	Recoveries int `json:"recoveries"`
	// FallbackSteps counts intervals the fallback held authority.
	FallbackSteps int `json:"fallback_steps"`
}

// ListResponse is the GET /v1/sessions body.
type ListResponse struct {
	// Sessions lists every open session in creation order.
	Sessions []SessionInfo `json:"sessions"`
}

// StepRequest is the POST /v1/sessions/{id}/step body.
type StepRequest struct {
	// Steps is how many control intervals to advance (capped by the server's
	// MaxStepsPerRequest; must be positive).
	Steps int `json:"steps"`
	// Seq is an optional client idempotency sequence number, strictly
	// increasing per session. A request retried with the sequence number the
	// server last applied returns the recorded outcome without advancing the
	// run again, so a client that lost a response (timeout, daemon crash) can
	// retry safely; a sequence number older than the last applied one is
	// rejected with 409 stale_seq. 0 (or omitted) disables idempotency for
	// the request.
	Seq int64 `json:"seq,omitempty"`
}

// StepResponse is the step endpoint's body.
type StepResponse struct {
	// Executed is how many intervals actually ran (less than requested at
	// completion or the per-request cap; 0 when the run was already done).
	Executed int `json:"executed"`
	// Steps is the session's total executed interval count.
	Steps int `json:"steps"`
	// Done reports run completion.
	Done bool `json:"done"`
	// SupState is the supervisory state after the advance (empty for
	// unsupervised schemes).
	SupState string `json:"sup_state,omitempty"`
}

// TripResponse is the trip endpoint's body.
type TripResponse struct {
	// Forced confirms the trip was armed: the next stepped interval runs
	// under the fallback with a bumpless transfer.
	Forced bool `json:"forced"`
	// SupState is the supervisory state at response time (the transfer
	// lands on the next step request).
	SupState string `json:"sup_state,omitempty"`
}

// CloseResponse is the DELETE /v1/sessions/{id} body.
type CloseResponse struct {
	// Closed confirms removal.
	Closed bool `json:"closed"`
	// ID echoes the closed session's identifier.
	ID string `json:"id"`
}

// HealthResponse is the GET /healthz body.
type HealthResponse struct {
	// Status is "ok" while the daemon serves traffic, "recovering" while
	// leftover session logs are being replayed behind the startup fence.
	Status string `json:"status"`
	// Sessions is the number of open sessions.
	Sessions int `json:"sessions"`
	// Draining reports that graceful drain has begun (creates return 503).
	Draining bool `json:"draining"`
	// Version is the daemon's build identity (module version or VCS
	// revision; "devel" for an unstamped build). See BuildInfo.
	Version string `json:"version"`
	// Go is the Go toolchain version the daemon was built with.
	Go string `json:"go"`
}

// session is one hosted board run: a core.StepRun plus its recorder and
// (when the daemon runs durable) its write-ahead log, guarded by a
// per-session lock (the StepRun itself is single-owner state).
type session struct {
	id     string
	tenant string
	scheme string
	app    string

	mu      sync.Mutex
	run     *core.StepRun
	rec     *obs.Recorder
	drained bool

	// log is the session's write-ahead log; nil when the daemon runs without
	// a data dir (state is then in-memory only, the pre-durability behavior).
	log *wal
	// ops is the coalesced logical operation history (coalesceOps form),
	// maintained alongside the log so compaction never has to re-read disk.
	ops []walRecord
	// wedged is set when a log append fails: the durability contract cannot
	// be kept, so the session refuses further mutations (500 wal_error).
	wedged bool
	// lastSeq and lastResp implement idempotent step sequencing: the highest
	// client sequence number applied and the outcome to replay for a retry.
	lastSeq  int64
	lastResp StepResponse
	// lastActive is the last time a client touched this session (any
	// session-scoped request), read by the idle-TTL reaper.
	lastActive time.Time
	// watchers holds the live /watch subscribers (watch.go); nil while
	// nobody watches, and the run's step hook is installed exactly while it
	// is non-empty.
	watchers map[*watcher]struct{}
}

// stepChunk bounds how many intervals run between context-cancellation
// checks while serving one step request, so a disconnected client stops
// consuming CPU within a bounded number of intervals.
const stepChunk = 128

// buildRun validates a create request against the scheme/workload/fault
// catalogs and constructs its StepRun plus optional recorder. It is the
// single construction path for both fresh creates and WAL recovery, so a
// replayed session is built by exactly the code that built the original.
func (s *Server) buildRun(req CreateRequest) (*core.StepRun, *obs.Recorder, error) {
	sch, ok := s.cfg.Schemes[req.Scheme]
	if !ok {
		return nil, nil, fmt.Errorf("unknown scheme %q", req.Scheme)
	}
	w, err := lookupWorkload(req.App)
	if err != nil {
		return nil, nil, err
	}
	opt := core.RunOptions{SkipSeries: true}
	if req.IntervalMS < 0 || req.MaxTimeS < 0 {
		return nil, nil, fmt.Errorf("interval_ms and max_time_s must be non-negative")
	}
	if req.IntervalMS > 0 {
		opt.Interval = time.Duration(req.IntervalMS) * time.Millisecond
	}
	if req.MaxTimeS > 0 {
		opt.MaxTime = time.Duration(req.MaxTimeS * float64(time.Second))
	}
	if eng, err := core.ParseEngine(req.Engine); err != nil {
		return nil, nil, err
	} else {
		opt.Engine = eng
	}
	if req.FaultClass != "" {
		if !fault.ValidClass(req.FaultClass) {
			return nil, nil, fmt.Errorf("unknown fault_class %q (want one of %v)", req.FaultClass, fault.ClassNames())
		}
		intensity := req.FaultIntensity
		if intensity == 0 {
			intensity = 1.0
		}
		if intensity < 0 {
			return nil, nil, fmt.Errorf("fault_intensity must be non-negative")
		}
		seed := req.FaultSeed
		if seed == 0 {
			seed = 1
		}
		opt.Faults = fault.PresetClass(seed, intensity, req.FaultClass)
	} else if req.FaultIntensity != 0 || req.FaultSeed != 0 {
		return nil, nil, fmt.Errorf("fault_intensity/fault_seed require fault_class")
	}
	var rec *obs.Recorder
	if req.TraceCapacity >= 0 {
		rec = obs.NewRecorder(req.TraceCapacity)
		opt.Trace = rec
	}
	opt.Metrics = s.reg
	run, err := core.NewStepRun(s.cfg.Platform.Cfg, sch, w, opt)
	if err != nil {
		return nil, nil, err
	}
	return run, rec, nil
}

// newSession validates the request, builds the StepRun, registers the
// session, and — when the daemon runs durable — creates its write-ahead log
// and fsyncs the create record before returning, so an acknowledged create
// survives a crash.
func (s *Server) newSession(tenant string, req CreateRequest) (*session, error) {
	run, rec, err := s.buildRun(req)
	if err != nil {
		return nil, err
	}
	sess := &session{
		tenant:     tenant,
		scheme:     req.Scheme,
		app:        req.App,
		run:        run,
		rec:        rec,
		lastActive: s.cfg.Now(),
	}
	s.mu.Lock()
	s.nextID++
	sess.id = fmt.Sprintf("s-%d", s.nextID)
	s.sessions[sess.id] = sess
	s.order = append(s.order, sess.id)
	s.mu.Unlock()
	if s.cfg.DataDir != "" {
		createRec := walRecord{T: walOpCreate, Tenant: tenant, Req: &req}
		log, err := createWAL(sessionWALPath(s.cfg.DataDir, sess.id))
		if err == nil {
			err = log.append(createRec)
		}
		if err != nil {
			if log != nil {
				log.remove()
			}
			s.unregister(sess.id)
			return nil, fmt.Errorf("session log: %v", err)
		}
		sess.log = log
		sess.ops = []walRecord{createRec}
	}
	return sess, nil
}

// unregister removes a session from the table and creation order (the
// caller handles slot release and log cleanup).
func (s *Server) unregister(id string) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess := s.sessions[id]
	if sess == nil {
		return nil
	}
	delete(s.sessions, id)
	for i, oid := range s.order {
		if oid == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	return sess
}

// lookupWorkload resolves an app or heterogeneous-mix name.
func lookupWorkload(name string) (workload.Workload, error) {
	for _, m := range workload.HeterogeneousMixes() {
		if m.Name() == name {
			return m, nil
		}
	}
	return workload.Lookup(name)
}

// logOp durably appends one operation to the session's write-ahead log (a
// no-op without one), folds it into the coalesced history, and compacts the
// log once it has grown compactThreshold records past that history. A
// failed append wedges the session: its in-memory state has advanced past
// what the log captures, so acknowledging further mutations would break the
// recovery contract. Callers hold se.mu.
func (se *session) logOp(rec walRecord) {
	if se.wedged {
		// The log already lags the in-memory state; appending more records
		// would hide the gap and corrupt recovery.
		return
	}
	se.ops = coalesceOps(append(se.ops, rec))
	if se.log == nil {
		return
	}
	if err := se.log.append(rec); err != nil {
		se.wedged = true
		return
	}
	if se.log.appended >= len(se.ops)+compactThreshold {
		// Compaction failure is not fatal: the uncompacted log is still a
		// complete, valid history.
		_ = se.log.compact(se.ops)
	}
}

// touch resets the idle clock (any session-scoped client request).
func (se *session) touch(now time.Time) {
	se.mu.Lock()
	se.lastActive = now
	se.mu.Unlock()
}

// info snapshots the session's status document.
func (se *session) info() SessionInfo {
	se.mu.Lock()
	defer se.mu.Unlock()
	res := se.run.Result()
	info := SessionInfo{
		ID:         se.id,
		Tenant:     se.tenant,
		Scheme:     se.scheme,
		App:        se.app,
		Supervised: se.run.Supervised(),
		Steps:      se.run.Steps(),
		MaxSteps:   se.run.MaxSteps(),
		Done:       se.run.Done(),
		Drained:    se.drained,
		Result: ResultInfo{
			Completed:   res.Completed,
			TimeS:       res.TimeS,
			EnergyJ:     res.EnergyJ,
			ExDJS:       res.ExD,
			Emergencies: res.EmergencyEvents,
			FaultsInjected: res.Faults.DroppedReadings + res.Faults.StaleReadings +
				res.Faults.HeldCommands + res.Faults.SkewedCommands + res.Faults.ForcedThrottles,
		},
	}
	if st, ok := se.run.SupervisorState(); ok {
		info.SupState = st.String()
	}
	if sup := res.Supervisor; sup != nil {
		info.Result.Trips = sup.Trips
		info.Result.Recoveries = sup.Recoveries
		info.Result.FallbackSteps = sup.FallbackSteps
	}
	return info
}

// step advances the run by up to n intervals under the session lock,
// checking ctx between stepChunk-sized chunks so a cancelled request (client
// gone, server timeout) stops promptly instead of pinning the handler for
// the whole batch. Whatever executed — full, partial, or nothing — is
// durably logged before the call returns, so an acknowledged response never
// outruns the log.
//
// seq implements idempotent sequencing: a retry of the last applied
// sequence number returns the recorded outcome without re-executing
// (cached=true), and a stale number fails with errCode "stale_seq". A
// wedged session (log append failed) refuses with "wal_error". On success
// executed reports how many intervals this call ran, for metrics.
func (se *session) step(ctx context.Context, n int, seq int64, now time.Time) (resp StepResponse, executed int, cached bool, errCode string) {
	se.mu.Lock()
	defer se.mu.Unlock()
	se.lastActive = now
	if se.wedged {
		return resp, 0, false, "wal_error"
	}
	if seq > 0 && seq == se.lastSeq {
		return se.lastResp, 0, true, ""
	}
	if seq > 0 && seq < se.lastSeq {
		return resp, 0, false, "stale_seq"
	}
	span := spanFrom(ctx)
	execStart := time.Now()
	for executed < n && !se.run.Done() {
		chunk := stepChunk
		if rem := n - executed; rem < chunk {
			chunk = rem
		}
		executed += se.run.Step(chunk)
		if ctx.Err() != nil {
			break
		}
	}
	span.Add("step_exec", time.Since(execStart))
	if se.run.Done() {
		se.closeWatchersLocked()
	}
	if executed > 0 || seq > 0 {
		walStart := time.Now()
		se.logOp(walRecord{T: walOpStep, N: executed, Seq: seq})
		span.Add("wal_append", time.Since(walStart))
		if se.wedged {
			return resp, executed, false, "wal_error"
		}
	}
	resp = StepResponse{
		Executed: executed,
		Steps:    se.run.Steps(),
		Done:     se.run.Done(),
	}
	if st, ok := se.run.SupervisorState(); ok {
		resp.SupState = st.String()
	}
	if seq > 0 {
		se.lastSeq, se.lastResp = seq, resp
	}
	return resp, executed, false, ""
}

// steps returns the executed interval count.
func (se *session) steps() int {
	se.mu.Lock()
	defer se.mu.Unlock()
	return se.run.Steps()
}

// done reports run completion.
func (se *session) done() bool {
	se.mu.Lock()
	defer se.mu.Unlock()
	return se.run.Done()
}

// supState names the supervisory state ("" for unsupervised schemes).
func (se *session) supState() string {
	se.mu.Lock()
	defer se.mu.Unlock()
	if st, ok := se.run.SupervisorState(); ok {
		return st.String()
	}
	return ""
}

// forceTrip arms an operator-forced supervisor trip and logs it. A wedged
// session refuses (walOK=false) so the trip cannot be acknowledged without
// being durable.
func (se *session) forceTrip(now time.Time) (forced, walOK bool) {
	se.mu.Lock()
	defer se.mu.Unlock()
	se.lastActive = now
	if se.wedged {
		return false, false
	}
	if !se.run.ForceTrip() {
		return false, true
	}
	se.logOp(walRecord{T: walOpTrip})
	return true, !se.wedged
}

// writeTrace streams the retained flight-recorder window as JSONL.
func (se *session) writeTrace(w io.Writer) error {
	se.mu.Lock()
	defer se.mu.Unlock()
	if se.rec == nil {
		return nil
	}
	return se.rec.WriteJSONL(w)
}

// drain walks the session through the supervisory staged fallback: force an
// operator trip (supervised schemes), then settle for up to drainSteps
// intervals so the fallback's conservative posture is in effect at shutdown.
// Finished sessions drain trivially. The trip, the settling intervals and
// the drain marker are all logged, so a daemon restarted after a drain
// recovers each session in its settled post-fallback state.
func (se *session) drain(drainSteps int) (tripped bool) {
	se.mu.Lock()
	defer se.mu.Unlock()
	if !se.run.Done() && !se.wedged {
		tripped = se.run.ForceTrip()
		if tripped {
			se.logOp(walRecord{T: walOpTrip})
			if n := se.run.Step(drainSteps); n > 0 {
				se.logOp(walRecord{T: walOpStep, N: n})
			}
		}
	}
	se.drained = true
	se.logOp(walRecord{T: walOpDrain})
	se.closeWatchersLocked()
	return tripped
}

// closeLog closes the session's write-ahead log handle, deleting the file
// when discard is set (explicit DELETE and the idle reaper discard state;
// shutdown keeps it for the next daemon's recovery).
func (se *session) closeLog(discard bool) {
	se.mu.Lock()
	defer se.mu.Unlock()
	if se.log == nil {
		return
	}
	if discard {
		se.log.remove()
	} else {
		se.log.close()
	}
	se.log = nil
}
