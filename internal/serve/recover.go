package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"yukta/internal/obs"
)

// Crash recovery rebuilds the session table from the per-session
// write-ahead logs (wal.go). Because a hosted run is a deterministic
// function of its create tuple and the order of its mutating operations,
// recovery is re-execution, not state restoration: each log's create
// request is rebuilt through the normal construction path and its
// step/trip history is replayed through core.StepRun.ReplayTo. The
// recovered session is therefore indistinguishable — byte-identical trace,
// identical scalars and supervisory state — from one that never crashed
// (the kill-at-any-step gates in recover_test.go and
// cmd/yukta-serve/chaos_test.go).

// RecoverReport accounts for one recovery pass: every leftover log lands in
// exactly one of Recovered or Abandoned; Truncated counts logs whose
// damaged tail was cut back to the last valid record before a successful
// replay.
type RecoverReport struct {
	// Scanned is how many leftover session logs the data dir held.
	Scanned int
	// Recovered is how many sessions were rebuilt live.
	Recovered int
	// Truncated is how many logs had a torn or corrupted tail truncated to
	// the last valid record (the session recovers at the rolled-back
	// position; only unacknowledged operations can be lost).
	Truncated int
	// Abandoned is how many logs could not be replayed (unreadable, no valid
	// create record, replay divergence, or no free session slot); their
	// files are set aside with an .abandoned suffix for inspection.
	Abandoned int
	// ReplayedSteps is the total number of control intervals re-executed.
	ReplayedSteps int
}

// String renders the report in the daemon's log format.
func (r RecoverReport) String() string {
	return fmt.Sprintf("recovered %d/%d sessions (%d steps replayed, %d truncated tails, %d abandoned)",
		r.Recovered, r.Scanned, r.ReplayedSteps, r.Truncated, r.Abandoned)
}

// NeedsRecovery reports whether New found leftover session logs in the data
// dir. While true, every /v1 endpoint is fenced behind 503 recovering; the
// operator either calls Recover (cmd/yukta-serve -recover) or refuses to
// start.
func (s *Server) NeedsRecovery() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovering
}

// Recover replays every leftover session log found at startup and then
// drops the API fence. Sessions are recovered in creation (ID) order, so
// listing order survives the crash. Recover is idempotent: with nothing
// pending it only clears the fence. Metrics:
// serve_recovered_sessions_total, serve_recover_truncated_total,
// serve_recover_abandoned_total, and the serve_recover_replay_seconds
// histogram of per-session replay latency.
func (s *Server) Recover() RecoverReport {
	s.mu.Lock()
	pending := s.pending
	s.pending = nil
	s.mu.Unlock()
	rep := RecoverReport{Scanned: len(pending)}
	for _, path := range pending {
		s.recoverOne(path, &rep)
	}
	s.mu.Lock()
	s.recovering = false
	s.mu.Unlock()
	s.reg.Gauge("serve_sessions_live").Set(int64(s.slots.InUse()))
	return rep
}

// scanSessionLogs lists the session logs under dataDir/sessions in session
// ID order, creating the directory tree on first use.
func scanSessionLogs(dataDir string) ([]string, error) {
	dir := filepath.Join(dataDir, "sessions")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: creating data dir: %w", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("serve: scanning data dir: %w", err)
	}
	var paths []string
	for _, ent := range ents {
		if !ent.Type().IsRegular() || !strings.HasSuffix(ent.Name(), ".wal") {
			continue
		}
		paths = append(paths, filepath.Join(dir, ent.Name()))
	}
	sort.Slice(paths, func(i, j int) bool {
		return sessionIDNum(paths[i]) < sessionIDNum(paths[j])
	})
	return paths, nil
}

// sessionIDNum extracts the numeric part of a session log path ("s-12.wal"
// → 12; malformed names sort first and fail recovery's create check).
func sessionIDNum(path string) int {
	name := strings.TrimSuffix(filepath.Base(path), ".wal")
	n, _ := strconv.Atoi(strings.TrimPrefix(name, "s-"))
	return n
}

// recoverOne replays a single session log, registering the rebuilt session
// on success and setting the log aside as .abandoned on any failure.
func (s *Server) recoverOne(path string, rep *RecoverReport) {
	start := time.Now()
	id := strings.TrimSuffix(filepath.Base(path), ".wal")
	abandon := func(reason string) {
		_ = os.Rename(path, path+".abandoned")
		syncDir(filepath.Dir(path))
		rep.Abandoned++
		s.reg.Counter("serve_recover_abandoned_total").Add(1)
		s.log.Warn("session log abandoned", "session", id, "reason", reason,
			"path", path+".abandoned")
	}

	recs, validLen, err := readWAL(path)
	if err != nil || len(recs) == 0 || recs[0].T != walOpCreate || recs[0].Req == nil {
		abandon("unreadable log or missing create record")
		return
	}
	if fi, err := os.Stat(path); err != nil {
		abandon("cannot stat log")
		return
	} else if validLen < fi.Size() {
		if err := truncateWAL(path, validLen); err != nil {
			abandon("damaged tail could not be truncated")
			return
		}
		rep.Truncated++
		s.reg.Counter("serve_recover_truncated_total").Add(1)
		s.log.Warn("session log truncated", "session", id,
			"valid_bytes", validLen, "lost_bytes", fi.Size()-validLen)
	}

	run, rec, err := s.buildRun(*recs[0].Req)
	if err != nil {
		abandon(fmt.Sprintf("create request no longer valid: %v", err))
		return
	}
	sess := &session{
		id:         id,
		tenant:     recs[0].Tenant,
		scheme:     recs[0].Req.Scheme,
		app:        recs[0].Req.App,
		run:        run,
		rec:        rec,
		lastActive: s.cfg.Now(),
	}
	// Deterministic re-execution of the logged operation history.
	pos, replayed := 0, 0
	var lastStep walRecord
	for _, r := range recs[1:] {
		switch r.T {
		case walOpStep:
			pos += r.N
			if err := run.ReplayTo(pos); err != nil {
				abandon(fmt.Sprintf("replay diverged: %v", err))
				return
			}
			replayed += r.N
			lastStep = r
		case walOpTrip:
			if !run.ForceTrip() {
				abandon("logged trip could not be re-applied")
				return
			}
		case walOpDrain:
			sess.drained = true
		default:
			abandon(fmt.Sprintf("unknown op kind %q", r.T))
			return
		}
	}
	if lastStep.Seq != 0 {
		// Restore idempotency: a client retrying the last acknowledged
		// sequence number must get its recorded outcome, not a re-execution.
		sess.lastSeq = lastStep.Seq
		sess.lastResp = StepResponse{
			Executed: lastStep.N,
			Steps:    run.Steps(),
			Done:     run.Done(),
		}
		if st, ok := run.SupervisorState(); ok {
			sess.lastResp.SupState = st.String()
		}
	}
	if !s.slots.Acquire() {
		// The operator restarted with a lower -max-sessions than the crash
		// left live; the overflow is preserved on disk, not resurrected.
		abandon("no free session slot")
		return
	}
	log, err := openWAL(path, len(recs))
	if err != nil {
		s.slots.Release()
		abandon("log could not be reopened for appending")
		return
	}
	sess.log = log
	sess.ops = coalesceOps(recs)
	if log.appended >= len(sess.ops)+compactThreshold {
		_ = log.compact(sess.ops)
	}

	s.mu.Lock()
	s.sessions[id] = sess
	s.order = append(s.order, id)
	if n := sessionIDNum(path); n > s.nextID {
		s.nextID = n
	}
	s.mu.Unlock()

	rep.Recovered++
	rep.ReplayedSteps += replayed
	elapsed := time.Since(start)
	s.reg.Counter("serve_recovered_sessions_total").Add(1)
	s.reg.Histogram("serve_recover_replay_seconds", obs.SecondsBuckets()).
		Observe(elapsed.Seconds())
	// Replay is also a request stage (it delays the first post-restart
	// requests), so it lands in the per-stage histogram family too.
	s.reg.Histogram("serve_stage_us/replay", obs.StageBucketsUS()).
		Observe(float64(elapsed.Microseconds()))
	s.log.Info("session recovered", "session", id, "tenant", sess.tenant,
		"scheme", sess.scheme, "app", sess.app, "steps_replayed", replayed,
		"dur_us", elapsed.Microseconds())
}
