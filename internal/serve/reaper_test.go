package serve

import (
	"net/http"
	"os"
	"testing"
	"time"
)

// TestReapIdle drives the idle-TTL reaper on an injected clock: only
// sessions past the TTL are closed, their slots and write-ahead logs are
// released, and activity of any kind (a step, a status read) counts as a
// touch.
func TestReapIdle(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(5000, 0)
	s, ts := newTestServer(t, func(c *Config) {
		c.DataDir = dir
		c.IdleTTL = 10 * time.Minute
		c.MaxSessions = 2
		c.Now = func() time.Time { return now }
	})

	busy := create(t, ts, CreateRequest{Scheme: "coordinated", App: "gamess", MaxTimeS: 60})
	idle := create(t, ts, CreateRequest{Scheme: "decoupled", App: "gamess", MaxTimeS: 60})

	// Touch only the busy session five minutes in.
	now = now.Add(5 * time.Minute)
	do(t, "POST", ts.URL+"/v1/sessions/"+busy.ID+"/step", StepRequest{Steps: 3}, nil)
	if n := s.ReapIdle(); n != 0 {
		t.Fatalf("reaped %d sessions before any TTL expired", n)
	}

	// Eleven minutes in, the untouched session is past the TTL.
	now = now.Add(6 * time.Minute)
	if n := s.ReapIdle(); n != 1 {
		t.Fatalf("reaped %d sessions; want exactly the idle one", n)
	}
	if code := do(t, "GET", ts.URL+"/v1/sessions/"+idle.ID, nil, nil); code != http.StatusNotFound {
		t.Fatalf("reaped session GET: status %d; want 404", code)
	}
	if code := do(t, "GET", ts.URL+"/v1/sessions/"+busy.ID, nil, nil); code != http.StatusOK {
		t.Fatalf("busy session GET: status %d; want 200", code)
	}
	if _, err := os.Stat(sessionWALPath(dir, idle.ID)); !os.IsNotExist(err) {
		t.Fatalf("reaped session's log still on disk (stat err %v)", err)
	}
	snap := s.Registry().Snapshot()
	if got, _ := snap["serve_sessions_reaped_total"].(int64); got != 1 {
		t.Fatalf("serve_sessions_reaped_total = %v; want 1", snap["serve_sessions_reaped_total"])
	}

	// The reaped slot is free again (MaxSessions is 2).
	create(t, ts, CreateRequest{Scheme: "coordinated", App: "gamess", MaxTimeS: 60})

	// A status read is a touch: the busy session survives another near-TTL
	// window that would have reaped it without the GET above.
	now = now.Add(9 * time.Minute)
	do(t, "GET", ts.URL+"/v1/sessions/"+busy.ID, nil, nil)
	now = now.Add(2 * time.Minute)
	if n := s.ReapIdle(); n != 1 { // only the third, untouched session
		t.Fatalf("second reap closed %d sessions; want 1", n)
	}
	if code := do(t, "GET", ts.URL+"/v1/sessions/"+busy.ID, nil, nil); code != http.StatusOK {
		t.Fatalf("touched session reaped (status %d)", code)
	}
}

// TestReapIdleDisabled checks the default off switch: with no TTL
// configured the reaper never touches the table, however stale it gets.
func TestReapIdleDisabled(t *testing.T) {
	now := time.Unix(5000, 0)
	s, ts := newTestServer(t, func(c *Config) {
		c.Now = func() time.Time { return now }
	})
	create(t, ts, CreateRequest{Scheme: "coordinated", App: "gamess", MaxTimeS: 60})
	now = now.Add(24 * time.Hour)
	if n := s.ReapIdle(); n != 0 {
		t.Fatalf("reaper closed %d sessions with no TTL configured", n)
	}
}
