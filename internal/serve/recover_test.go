package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
)

// newDurableServer builds a Server over the given data dir (rate limiting
// off) and wraps it in an httptest server — the crash/recover tests spin up
// several over one dir.
func newDurableServer(t *testing.T, dir string, override func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{Platform: testPlatform(t), TenantRate: -1, DataDir: dir}
	if override != nil {
		override(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// TestRecoverTraceMatchesUninterrupted is the tentpole's kill-at-any-step
// gate at the HTTP level: a durable session crashed mid-run (daemon
// abandoned with no shutdown of any kind) and recovered by a fresh daemon
// over the same data dir, then driven to completion, must stream a trace
// byte-identical to a session that never crashed — operator trip included.
func TestRecoverTraceMatchesUninterrupted(t *testing.T) {
	tuple := CreateRequest{Scheme: "yukta-supervised", App: "gamess",
		FaultClass: "all", FaultSeed: 7, FaultIntensity: 1, MaxTimeS: 30}

	// Uninterrupted reference on a plain in-memory server: step 17, trip,
	// then drive to completion.
	_, tsRef := newTestServer(t, nil)
	ref := create(t, tsRef, tuple)
	do(t, "POST", tsRef.URL+"/v1/sessions/"+ref.ID+"/step", StepRequest{Steps: 17}, nil)
	if code := do(t, "POST", tsRef.URL+"/v1/sessions/"+ref.ID+"/trip", nil, nil); code != http.StatusOK {
		t.Fatalf("reference trip: status %d", code)
	}
	stepToDone(t, tsRef, ref.ID, 9)
	want := fetchTrace(t, tsRef, ref.ID)

	// Crashed run: same tuple on a durable daemon, same operations up to
	// step 22, then the daemon is abandoned (only the listener dies — what a
	// SIGKILL leaves behind, since every acknowledged mutation is fsync'd).
	dir := t.TempDir()
	_, tsA := newDurableServer(t, dir, nil)
	sess := create(t, tsA, tuple)
	do(t, "POST", tsA.URL+"/v1/sessions/"+sess.ID+"/step", StepRequest{Steps: 17, Seq: 1}, nil)
	do(t, "POST", tsA.URL+"/v1/sessions/"+sess.ID+"/trip", nil, nil)
	var preCrash StepResponse
	do(t, "POST", tsA.URL+"/v1/sessions/"+sess.ID+"/step", StepRequest{Steps: 5, Seq: 2}, &preCrash)
	tsA.Close()

	sB, tsB := newDurableServer(t, dir, nil)
	if !sB.NeedsRecovery() {
		t.Fatal("daemon B sees no leftover session logs")
	}
	rep := sB.Recover()
	if rep.Recovered != 1 || rep.Abandoned != 0 || rep.Truncated != 0 {
		t.Fatalf("recover report %+v; want exactly 1 recovered", rep)
	}
	if rep.ReplayedSteps != preCrash.Steps {
		t.Fatalf("replayed %d steps; want the logged %d", rep.ReplayedSteps, preCrash.Steps)
	}

	// The recovered session is at the exact pre-crash position, same ID,
	// same supervisory state.
	var info SessionInfo
	if code := do(t, "GET", tsB.URL+"/v1/sessions/"+sess.ID, nil, &info); code != http.StatusOK {
		t.Fatalf("recovered session GET: status %d", code)
	}
	if info.Steps != preCrash.Steps || info.SupState != preCrash.SupState {
		t.Fatalf("recovered session = steps %d state %q; want steps %d state %q",
			info.Steps, info.SupState, preCrash.Steps, preCrash.SupState)
	}

	// A retry of the last acknowledged sequence number returns the recorded
	// outcome — idempotency survives the crash.
	var replay StepResponse
	do(t, "POST", tsB.URL+"/v1/sessions/"+sess.ID+"/step", StepRequest{Steps: 5, Seq: 2}, &replay)
	if replay.Steps != preCrash.Steps || replay.Executed != preCrash.Executed {
		t.Fatalf("post-crash retry of seq 2 = %+v; want the pre-crash outcome %+v", replay, preCrash)
	}

	stepToDone(t, tsB, sess.ID, 9)
	got := fetchTrace(t, tsB, sess.ID)
	if !bytes.Equal(want, got) {
		t.Fatalf("recovered trace differs from uninterrupted trace (%d vs %d bytes)", len(got), len(want))
	}

	// Fresh sessions do not collide with recovered IDs, and the recovery
	// counters are on the metrics surface.
	fresh := create(t, tsB, CreateRequest{Scheme: "coordinated", App: "gamess", MaxTimeS: 5})
	if fresh.ID == sess.ID {
		t.Fatalf("fresh session reused recovered ID %s", sess.ID)
	}
	snap := sB.Registry().Snapshot()
	if got, _ := snap["serve_recovered_sessions_total"].(int64); got != 1 {
		t.Fatalf("serve_recovered_sessions_total = %v; want 1", snap["serve_recovered_sessions_total"])
	}
}

// TestRecoverTruncatedTail corrupts the last WAL record (a bad sector, a
// torn write) and checks recovery truncates back to the last valid record,
// resumes at the rolled-back position, surfaces the damage in metrics —
// and that driving the session on still converges to the uninterrupted
// trace, because only unacknowledged work can live past the valid prefix.
func TestRecoverTruncatedTail(t *testing.T) {
	tuple := CreateRequest{Scheme: "coordinated", App: "gamess", MaxTimeS: 20}

	_, tsRef := newTestServer(t, nil)
	ref := create(t, tsRef, tuple)
	stepToDone(t, tsRef, ref.ID, 6)
	want := fetchTrace(t, tsRef, ref.ID)

	dir := t.TempDir()
	_, tsA := newDurableServer(t, dir, nil)
	sess := create(t, tsA, tuple)
	do(t, "POST", tsA.URL+"/v1/sessions/"+sess.ID+"/step", StepRequest{Steps: 10, Seq: 1}, nil)
	var second StepResponse
	do(t, "POST", tsA.URL+"/v1/sessions/"+sess.ID+"/step", StepRequest{Steps: 7, Seq: 2}, &second)
	tsA.Close()

	// Corrupt the last record in place.
	path := sessionWALPath(dir, sess.ID)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-5] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	sB, tsB := newDurableServer(t, dir, nil)
	rep := sB.Recover()
	if rep.Recovered != 1 || rep.Truncated != 1 {
		t.Fatalf("recover report %+v; want 1 recovered with 1 truncated tail", rep)
	}
	var info SessionInfo
	do(t, "GET", tsB.URL+"/v1/sessions/"+sess.ID, nil, &info)
	if info.Steps != second.Steps-second.Executed {
		t.Fatalf("truncated session at step %d; want rolled back to %d", info.Steps, second.Steps-second.Executed)
	}
	snap := sB.Registry().Snapshot()
	if got, _ := snap["serve_recover_truncated_total"].(int64); got != 1 {
		t.Fatalf("serve_recover_truncated_total = %v; want 1", snap["serve_recover_truncated_total"])
	}

	stepToDone(t, tsB, sess.ID, 6)
	got := fetchTrace(t, tsB, sess.ID)
	if !bytes.Equal(want, got) {
		t.Fatalf("post-truncation trace differs from uninterrupted trace (%d vs %d bytes)", len(got), len(want))
	}
}

// TestRecoverAbandonsCorruptLog checks the abandon path: a log with no
// valid create record is set aside with an .abandoned suffix, counted, and
// startup proceeds — damage never turns into a crash loop.
func TestRecoverAbandonsCorruptLog(t *testing.T) {
	dir := t.TempDir()
	// A garbage file and a structurally valid log that starts mid-history.
	if err := os.MkdirAll(dir+"/sessions", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir+"/sessions/s-1.wal", []byte("not a log\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	writeWAL(t, dir+"/sessions/s-2.wal", []walRecord{{T: walOpStep, N: 5}})

	sB, tsB := newDurableServer(t, dir, nil)
	if !sB.NeedsRecovery() {
		t.Fatal("leftover logs not detected")
	}
	rep := sB.Recover()
	if rep.Scanned != 2 || rep.Abandoned != 2 || rep.Recovered != 0 {
		t.Fatalf("recover report %+v; want both logs abandoned", rep)
	}
	for _, name := range []string{"s-1.wal.abandoned", "s-2.wal.abandoned"} {
		if _, err := os.Stat(dir + "/sessions/" + name); err != nil {
			t.Errorf("abandoned log %s not set aside: %v", name, err)
		}
	}
	snap := sB.Registry().Snapshot()
	if got, _ := snap["serve_recover_abandoned_total"].(int64); got != 2 {
		t.Fatalf("serve_recover_abandoned_total = %v; want 2", snap["serve_recover_abandoned_total"])
	}
	// The fence lifted and the daemon serves.
	create(t, tsB, CreateRequest{Scheme: "coordinated", App: "gamess", MaxTimeS: 5})
}

// TestRecoveryFence checks the startup fence: until Recover completes,
// every /v1 endpoint answers 503 "recovering" with a Retry-After, while
// /healthz reports the recovering status for probes.
func TestRecoveryFence(t *testing.T) {
	dir := t.TempDir()
	_, tsA := newDurableServer(t, dir, nil)
	create(t, tsA, CreateRequest{Scheme: "coordinated", App: "gamess", MaxTimeS: 10})
	tsA.Close()

	sB, tsB := newDurableServer(t, dir, nil)
	for _, probe := range []struct{ method, path string }{
		{"GET", "/v1/sessions"},
		{"POST", "/v1/sessions"},
		{"GET", "/v1/sessions/s-1"},
		{"POST", "/v1/sessions/s-1/step"},
		{"GET", "/v1/metrics"},
	} {
		req, err := http.NewRequest(probe.method, tsB.URL+probe.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var eb struct {
			Code string `json:"code"`
		}
		_ = json.Unmarshal(raw, &eb)
		if resp.StatusCode != http.StatusServiceUnavailable || eb.Code != "recovering" {
			t.Errorf("%s %s during recovery: status %d code %q; want 503/recovering", probe.method, probe.path, resp.StatusCode, eb.Code)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("%s %s during recovery: no Retry-After", probe.method, probe.path)
		}
	}
	var h HealthResponse
	do(t, "GET", tsB.URL+"/healthz", nil, &h)
	if h.Status != "recovering" {
		t.Fatalf("healthz status %q during recovery; want recovering", h.Status)
	}

	sB.Recover()
	var list ListResponse
	if code := do(t, "GET", tsB.URL+"/v1/sessions", nil, &list); code != http.StatusOK || len(list.Sessions) != 1 {
		t.Fatalf("post-recovery list: status %d, %d sessions; want 200 with 1", code, len(list.Sessions))
	}
	do(t, "GET", tsB.URL+"/healthz", nil, &h)
	if h.Status != "ok" {
		t.Fatalf("healthz status %q after recovery; want ok", h.Status)
	}
}

// TestStepSeqIdempotency exercises the client sequencing contract on the
// live path (no crash): an exact retry returns the cached outcome without
// re-executing, an older sequence number is rejected 409 stale_seq, and a
// negative one 400.
func TestStepSeqIdempotency(t *testing.T) {
	s, ts := newTestServer(t, nil)
	sess := create(t, ts, CreateRequest{Scheme: "coordinated", App: "gamess", MaxTimeS: 20})

	var first, retry, next StepResponse
	do(t, "POST", ts.URL+"/v1/sessions/"+sess.ID+"/step", StepRequest{Steps: 5, Seq: 1}, &first)
	if first.Executed != 5 || first.Steps != 5 {
		t.Fatalf("first step = %+v; want 5 executed", first)
	}
	if code := do(t, "POST", ts.URL+"/v1/sessions/"+sess.ID+"/step", StepRequest{Steps: 5, Seq: 1}, &retry); code != http.StatusOK {
		t.Fatalf("retried step: status %d", code)
	}
	if retry != first {
		t.Fatalf("retried step = %+v; want the cached %+v", retry, first)
	}
	var info SessionInfo
	do(t, "GET", ts.URL+"/v1/sessions/"+sess.ID, nil, &info)
	if info.Steps != 5 {
		t.Fatalf("session advanced to %d by a retried request; want 5", info.Steps)
	}

	do(t, "POST", ts.URL+"/v1/sessions/"+sess.ID+"/step", StepRequest{Steps: 3, Seq: 2}, &next)
	if next.Steps != 8 {
		t.Fatalf("next step landed at %d; want 8", next.Steps)
	}
	var eb struct {
		Code string `json:"code"`
	}
	if code := do(t, "POST", ts.URL+"/v1/sessions/"+sess.ID+"/step", StepRequest{Steps: 3, Seq: 1}, &eb); code != http.StatusConflict || eb.Code != "stale_seq" {
		t.Fatalf("stale seq: status %d code %q; want 409/stale_seq", code, eb.Code)
	}
	if code := do(t, "POST", ts.URL+"/v1/sessions/"+sess.ID+"/step", StepRequest{Steps: 3, Seq: -1}, &eb); code != http.StatusBadRequest {
		t.Fatalf("negative seq: status %d; want 400", code)
	}

	// The cached retry must not double-count in the step metrics.
	snap := s.Registry().Snapshot()
	if got, _ := snap["serve_steps_total"].(int64); got != 8 {
		t.Fatalf("serve_steps_total = %v; want 8 (retry not double-counted)", snap["serve_steps_total"])
	}
}

// TestDurableDeleteRemovesLog checks the full lifecycle leaves no residue:
// deleting a durable session removes its log, so a restart has nothing to
// recover.
func TestDurableDeleteRemovesLog(t *testing.T) {
	dir := t.TempDir()
	_, tsA := newDurableServer(t, dir, nil)
	sess := create(t, tsA, CreateRequest{Scheme: "coordinated", App: "gamess", MaxTimeS: 10})
	do(t, "POST", tsA.URL+"/v1/sessions/"+sess.ID+"/step", StepRequest{Steps: 5, Seq: 1}, nil)
	path := sessionWALPath(dir, sess.ID)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("durable session has no log: %v", err)
	}
	if code := do(t, "DELETE", tsA.URL+"/v1/sessions/"+sess.ID, nil, nil); code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("deleted session's log still on disk (stat err %v)", err)
	}
	tsA.Close()
	sB, _ := newDurableServer(t, dir, nil)
	if sB.NeedsRecovery() {
		t.Fatal("clean shutdownless restart after delete still wants recovery")
	}
}
