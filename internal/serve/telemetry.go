package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"time"

	"yukta/internal/obs"
)

// Request-scoped telemetry: every request through the daemon gets a
// correlation ID (honored from the client's X-Request-ID header, minted
// otherwise, echoed in the response), an obs.Span collecting per-stage wall
// time (admission, WAL append+fsync, step execution, trace encode), and —
// when the daemon has a logger — exactly one structured request log line
// carrying the ID, the outcome and the stage latencies. The span rides the
// request context, so the stages instrument themselves with nil-safe Span
// calls and the disabled case costs nothing on the simulation hot path
// (core.Run and core.StepRun.Step never see any of this).

// requestIDHeader is the correlation-ID header, honored on requests and set
// on every response.
const requestIDHeader = "X-Request-ID"

// ctxKey is the private context-key namespace of the serve package.
type ctxKey int

const (
	ctxKeyRequestID ctxKey = iota
	ctxKeySpan
)

// nopLogHandler is a slog.Handler that discards everything; the daemon's
// default when Config.Log is nil, so instrumented paths never branch on
// logging being enabled. (The stdlib gained an equivalent in a later Go
// release than this module targets.)
type nopLogHandler struct{}

// Enabled reports false for every level: nothing is ever logged.
func (nopLogHandler) Enabled(context.Context, slog.Level) bool { return false }

// Handle discards the record.
func (nopLogHandler) Handle(context.Context, slog.Record) error { return nil }

// WithAttrs returns the handler unchanged.
func (h nopLogHandler) WithAttrs([]slog.Attr) slog.Handler { return h }

// WithGroup returns the handler unchanged.
func (h nopLogHandler) WithGroup(string) slog.Handler { return h }

// requestID returns the request's correlation ID ("" outside the telemetry
// middleware).
func requestID(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyRequestID).(string)
	return id
}

// spanFrom returns the request's stage span, or nil outside the middleware —
// obs.Span is nil-safe, so callers use the result unconditionally.
func spanFrom(ctx context.Context) *obs.Span {
	sp, _ := ctx.Value(ctxKeySpan).(*obs.Span)
	return sp
}

// mintRequestID generates a fresh correlation ID: 8 random bytes, hex.
func mintRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is exotic; a constant beats an empty ID, and
		// uniqueness is a debugging nicety, not a correctness requirement.
		return "rid-fallback"
	}
	return hex.EncodeToString(b[:])
}

// statusWriter captures the response status for the request log line while
// passing Flush through — the /watch event stream needs the flusher.
type statusWriter struct {
	http.ResponseWriter
	status int
}

// WriteHeader records the status.
func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// Flush forwards to the underlying flusher when there is one (server-sent
// events depend on it).
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// telemetry wraps the daemon's handler with the request-telemetry layer:
// correlation ID, stage span, per-stage registry histograms
// (serve_stage_us/<stage>), and one structured request log line per request.
func (s *Server) telemetry(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rid := r.Header.Get(requestIDHeader)
		if rid == "" {
			rid = mintRequestID()
		}
		w.Header().Set(requestIDHeader, rid)
		span := &obs.Span{}
		ctx := context.WithValue(r.Context(), ctxKeyRequestID, rid)
		ctx = context.WithValue(ctx, ctxKeySpan, span)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r.WithContext(ctx))
		span.ObserveInto(s.reg, "serve_stage_us")
		if !s.log.Enabled(ctx, slog.LevelInfo) {
			return
		}
		attrs := []any{
			"request_id", rid,
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"dur_us", time.Since(start).Microseconds(),
		}
		for _, st := range span.Stages() {
			attrs = append(attrs, "stage_"+st.Name+"_us", st.D.Microseconds())
		}
		s.log.Info("request", attrs...)
	})
}
