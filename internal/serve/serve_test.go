package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"yukta/internal/board"
	"yukta/internal/core"
	"yukta/internal/fault"
	"yukta/internal/obs"
	"yukta/internal/workload"
)

// Platform identification costs a few seconds, so every test shares one.
var (
	platOnce sync.Once
	plat     *core.Platform
	platErr  error
)

func testPlatform(t *testing.T) *core.Platform {
	t.Helper()
	platOnce.Do(func() {
		plat, platErr = core.NewPlatform(board.DefaultConfig(), core.DefaultIdentifyOptions())
	})
	if platErr != nil {
		t.Fatal(platErr)
	}
	return plat
}

// newTestServer builds a Server with the shared platform plus any overrides
// and wraps it in an httptest server. Rate limiting is disabled unless the
// override turns it on, so unrelated tests never trip the bucket.
func newTestServer(t *testing.T, override func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{Platform: testPlatform(t), TenantRate: -1}
	if override != nil {
		override(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// do issues one JSON request and decodes the response body into out (when
// non-nil), returning the status code.
func do(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode
}

// create posts a session and fails the test on any non-201 status.
func create(t *testing.T, ts *httptest.Server, req CreateRequest) SessionInfo {
	t.Helper()
	var info SessionInfo
	if code := do(t, "POST", ts.URL+"/v1/sessions", req, &info); code != http.StatusCreated {
		t.Fatalf("create %+v: status %d", req, code)
	}
	return info
}

// stepToDone drives a session to completion over HTTP in the given chunk
// size and returns the final step response.
func stepToDone(t *testing.T, ts *httptest.Server, id string, chunk int) StepResponse {
	t.Helper()
	var sr StepResponse
	for i := 0; ; i++ {
		if code := do(t, "POST", ts.URL+"/v1/sessions/"+id+"/step", StepRequest{Steps: chunk}, &sr); code != http.StatusOK {
			t.Fatalf("step: status %d", code)
		}
		if sr.Done {
			return sr
		}
		if sr.Executed == 0 {
			t.Fatal("step made no progress on an unfinished session")
		}
		if i > 10000 {
			t.Fatal("session never finished")
		}
	}
}

// fetchTrace downloads a session's JSONL trace.
func fetchTrace(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/sessions/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("trace Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestServeTraceMatchesBatch is the tentpole's determinism gate: a session
// hosted by the daemon and stepped to completion over HTTP must stream a
// JSONL trace byte-identical to the batch core.Run of the same options, for
// a plain scheme and a supervised one, clean and under fault injection.
func TestServeTraceMatchesBatch(t *testing.T) {
	p := testPlatform(t)
	_, ts := newTestServer(t, nil)
	for _, scheme := range []string{"coordinated", "yukta-supervised"} {
		for _, class := range []string{"", "all"} {
			// Batch reference: identical options through core.Run.
			sch := DefaultSchemes(p)[scheme]
			w, err := workload.Lookup("gamess")
			if err != nil {
				t.Fatal(err)
			}
			rec := obs.NewRecorder(0)
			opt := core.RunOptions{
				MaxTime:    20 * time.Second,
				SkipSeries: true,
				Trace:      rec,
				Engine:     core.EngineEvent,
			}
			if class != "" {
				opt.Faults = fault.PresetClass(7, 1.0, class)
			}
			if _, err := core.Run(p.Cfg, sch, w, opt); err != nil {
				t.Fatal(err)
			}
			var want bytes.Buffer
			if err := rec.WriteJSONL(&want); err != nil {
				t.Fatal(err)
			}

			// Hosted run: same tuple through the HTTP API.
			req := CreateRequest{Scheme: scheme, App: "gamess", MaxTimeS: 20}
			if class != "" {
				req.FaultClass, req.FaultSeed, req.FaultIntensity = class, 7, 1.0
			}
			info := create(t, ts, req)
			stepToDone(t, ts, info.ID, 7)
			got := fetchTrace(t, ts, info.ID)

			if n, err := obs.ValidateJSONL(bytes.NewReader(got)); err != nil {
				t.Fatalf("%s/%s: served trace invalid after %d records: %v", scheme, class, n, err)
			}
			if !bytes.Equal(want.Bytes(), got) {
				t.Errorf("%s/%s: served trace differs from batch trace (%d vs %d bytes)",
					scheme, class, len(got), want.Len())
			}
			if code := do(t, "DELETE", ts.URL+"/v1/sessions/"+info.ID, nil, nil); code != http.StatusOK {
				t.Fatalf("delete: status %d", code)
			}
		}
	}
}

// TestAdmissionRateLimit exercises the per-tenant token bucket: an over-rate
// tenant is rejected with 429 + Retry-After while other tenants and already
// accepted sessions are unaffected, and tokens refill with time.
func TestAdmissionRateLimit(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	s, ts := newTestServer(t, func(c *Config) {
		c.TenantRate = 1
		c.TenantBurst = 2
		c.Now = clock
	})
	mk := func(tenant string) (int, *http.Response) {
		body, _ := json.Marshal(CreateRequest{Tenant: tenant, Scheme: "coordinated", App: "gamess", MaxTimeS: 5})
		resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode, resp
	}

	// Burst of 2 admitted, third rejected.
	var first SessionInfo
	if code := do(t, "POST", ts.URL+"/v1/sessions",
		CreateRequest{Tenant: "alpha", Scheme: "coordinated", App: "gamess", MaxTimeS: 5}, &first); code != http.StatusCreated {
		t.Fatalf("first create: status %d", code)
	}
	if code, _ := mk("alpha"); code != http.StatusCreated {
		t.Fatalf("second create: status %d", code)
	}
	code, resp := mk("alpha")
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-rate create: status %d, want 429", code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}

	// Another tenant is unaffected.
	if code, _ := mk("beta"); code != http.StatusCreated {
		t.Fatalf("other tenant: status %d", code)
	}
	// The accepted session still steps.
	var sr StepResponse
	if code := do(t, "POST", ts.URL+"/v1/sessions/"+first.ID+"/step", StepRequest{Steps: 3}, &sr); code != http.StatusOK || sr.Executed != 3 {
		t.Fatalf("accepted session step: status %d executed %d", code, sr.Executed)
	}

	// One second refills one token.
	now = now.Add(time.Second)
	if code, _ := mk("alpha"); code != http.StatusCreated {
		t.Fatalf("post-refill create: status %d", code)
	}

	snap := s.Registry().Snapshot()
	if got, _ := snap["serve_rejected_rate_total/alpha"].(int64); got != 1 {
		t.Fatalf("serve_rejected_rate_total/alpha = %v; want 1", snap["serve_rejected_rate_total/alpha"])
	}
}

// TestAdmissionCapacity exercises the global session-slot cap: creates
// beyond MaxSessions are rejected with 429/capacity until a slot frees.
func TestAdmissionCapacity(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.MaxSessions = 2 })
	a := create(t, ts, CreateRequest{Scheme: "coordinated", App: "gamess", MaxTimeS: 5})
	create(t, ts, CreateRequest{Scheme: "decoupled", App: "gamess", MaxTimeS: 5})

	var eb struct {
		Code string `json:"code"`
	}
	if code := do(t, "POST", ts.URL+"/v1/sessions",
		CreateRequest{Scheme: "coordinated", App: "gamess", MaxTimeS: 5}, &eb); code != http.StatusTooManyRequests || eb.Code != "capacity" {
		t.Fatalf("over-capacity create: status %d code %q; want 429/capacity", code, eb.Code)
	}
	if code := do(t, "DELETE", ts.URL+"/v1/sessions/"+a.ID, nil, nil); code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}
	create(t, ts, CreateRequest{Scheme: "coordinated", App: "gamess", MaxTimeS: 5})
}

// TestCreateValidation checks the 400 paths: unknown scheme, app, fault
// class, engine, and fault knobs without a class.
func TestCreateValidation(t *testing.T) {
	_, ts := newTestServer(t, nil)
	for _, req := range []CreateRequest{
		{Scheme: "nope", App: "gamess"},
		{Scheme: "coordinated", App: "nope"},
		{Scheme: "coordinated", App: "gamess", FaultClass: "nope"},
		{Scheme: "coordinated", App: "gamess", Engine: "nope"},
		{Scheme: "coordinated", App: "gamess", FaultSeed: 3},
		{Scheme: "coordinated", App: "gamess", IntervalMS: -1},
	} {
		var eb struct {
			Code string `json:"code"`
		}
		if code := do(t, "POST", ts.URL+"/v1/sessions", req, &eb); code != http.StatusBadRequest || eb.Code != "bad_request" {
			t.Errorf("create %+v: status %d code %q; want 400/bad_request", req, code, eb.Code)
		}
	}
}

// TestTripEndpoint forces a supervisor trip over HTTP and checks the session
// lands in the fallback with the operator cause on the trace, while an
// unsupervised session refuses with 409.
func TestTripEndpoint(t *testing.T) {
	_, ts := newTestServer(t, nil)
	sup := create(t, ts, CreateRequest{Scheme: "yukta-supervised", App: "gamess", MaxTimeS: 20})
	if !sup.Supervised {
		t.Fatal("yukta-supervised session not reported Supervised")
	}
	do(t, "POST", ts.URL+"/v1/sessions/"+sup.ID+"/step", StepRequest{Steps: 5}, nil)
	var tr TripResponse
	if code := do(t, "POST", ts.URL+"/v1/sessions/"+sup.ID+"/trip", nil, &tr); code != http.StatusOK || !tr.Forced {
		t.Fatalf("trip: status %d forced %v", code, tr.Forced)
	}
	var sr StepResponse
	do(t, "POST", ts.URL+"/v1/sessions/"+sup.ID+"/step", StepRequest{Steps: 1}, &sr)
	if sr.SupState != "fallback" {
		t.Fatalf("post-trip state = %q; want fallback", sr.SupState)
	}
	trace := fetchTrace(t, ts, sup.ID)
	if !strings.Contains(string(trace), `"sup_cause":"operator"`) {
		t.Fatal("trace does not carry the operator trip cause")
	}

	plain := create(t, ts, CreateRequest{Scheme: "coordinated", App: "gamess", MaxTimeS: 20})
	var eb struct {
		Code string `json:"code"`
	}
	if code := do(t, "POST", ts.URL+"/v1/sessions/"+plain.ID+"/trip", nil, &eb); code != http.StatusConflict || eb.Code != "not_supervised" {
		t.Fatalf("unsupervised trip: status %d code %q; want 409/not_supervised", code, eb.Code)
	}
}

// TestDrainZeroDrop is the graceful-shutdown gate: Drain must walk every
// open session — live supervised ones through an operator trip into the
// fallback, live unsupervised and finished ones trivially — with zero drops,
// and refuse new sessions afterwards.
func TestDrainZeroDrop(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) { c.DrainSteps = 5 })
	sup := create(t, ts, CreateRequest{Scheme: "yukta-supervised", App: "gamess", MaxTimeS: 60})
	plain := create(t, ts, CreateRequest{Scheme: "coordinated", App: "gamess", MaxTimeS: 60})
	finished := create(t, ts, CreateRequest{Scheme: "coordinated", App: "gamess", MaxTimeS: 2})
	do(t, "POST", ts.URL+"/v1/sessions/"+sup.ID+"/step", StepRequest{Steps: 5}, nil)
	do(t, "POST", ts.URL+"/v1/sessions/"+plain.ID+"/step", StepRequest{Steps: 5}, nil)
	stepToDone(t, ts, finished.ID, 100)

	rep := s.Drain(context.Background())
	if rep.Sessions != 3 || rep.Drained != 3 {
		t.Fatalf("drain report %+v; want all 3 sessions drained", rep)
	}
	if rep.Tripped != 1 || rep.Finished != 1 {
		t.Fatalf("drain report %+v; want exactly 1 tripped, 1 finished", rep)
	}

	// The supervised session settled under the fallback and its trace is
	// valid JSONL carrying the operator trip.
	var info SessionInfo
	do(t, "GET", ts.URL+"/v1/sessions/"+sup.ID, nil, &info)
	if info.SupState != "fallback" || !info.Drained {
		t.Fatalf("drained supervised session = %+v; want drained in fallback", info)
	}
	trace := fetchTrace(t, ts, sup.ID)
	if n, err := obs.ValidateJSONL(bytes.NewReader(trace)); err != nil {
		t.Fatalf("drained trace invalid after %d records: %v", n, err)
	}
	if !strings.Contains(string(trace), `"sup_cause":"operator"`) {
		t.Fatal("drained trace does not carry the operator trip")
	}

	// No new work after drain.
	var eb struct {
		Code string `json:"code"`
	}
	if code := do(t, "POST", ts.URL+"/v1/sessions",
		CreateRequest{Scheme: "coordinated", App: "gamess"}, &eb); code != http.StatusServiceUnavailable || eb.Code != "draining" {
		t.Fatalf("post-drain create: status %d code %q; want 503/draining", code, eb.Code)
	}
	// Health reports the drain.
	var h HealthResponse
	do(t, "GET", ts.URL+"/healthz", nil, &h)
	if !h.Draining || h.Sessions != 3 {
		t.Fatalf("healthz = %+v; want draining with 3 sessions", h)
	}
}

// TestMetricsEndpoint checks /v1/metrics renders the registry as valid JSON
// with the serve counters present.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, nil)
	info := create(t, ts, CreateRequest{Tenant: "metrics-t", Scheme: "coordinated", App: "gamess", MaxTimeS: 5})
	do(t, "POST", ts.URL+"/v1/sessions/"+info.ID+"/step", StepRequest{Steps: 2}, nil)

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("metrics not valid JSON: %v\n%s", err, raw)
	}
	for _, name := range []string{
		"serve_sessions_created_total/metrics-t",
		"serve_steps_total",
		"serve_sessions_live",
	} {
		if _, ok := doc[name]; !ok {
			t.Errorf("metrics missing %q", name)
		}
	}
}

// TestListAndGet checks listing order and the unknown-session 404 envelope.
func TestListAndGet(t *testing.T) {
	_, ts := newTestServer(t, nil)
	a := create(t, ts, CreateRequest{Scheme: "coordinated", App: "gamess", MaxTimeS: 5})
	b := create(t, ts, CreateRequest{Scheme: "decoupled", App: "mcf", MaxTimeS: 5})
	var list ListResponse
	do(t, "GET", ts.URL+"/v1/sessions", nil, &list)
	if len(list.Sessions) != 2 || list.Sessions[0].ID != a.ID || list.Sessions[1].ID != b.ID {
		t.Fatalf("list = %+v; want [%s %s] in creation order", list.Sessions, a.ID, b.ID)
	}
	var eb struct {
		Code string `json:"code"`
	}
	if code := do(t, "GET", ts.URL+"/v1/sessions/s-999", nil, &eb); code != http.StatusNotFound || eb.Code != "unknown_session" {
		t.Fatalf("unknown session: status %d code %q", code, eb.Code)
	}
}
