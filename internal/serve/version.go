package serve

import (
	"runtime"
	"runtime/debug"
)

// BuildInfo returns the daemon's build identity for the /healthz payload and
// `yukta-serve -version`: the module version or VCS revision baked into the
// binary by the Go toolchain (via runtime/debug.ReadBuildInfo), falling back
// to "devel" for an unstamped build, plus the Go toolchain version.
func BuildInfo() (version, goVersion string) {
	version = "devel"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if v := bi.Main.Version; v != "" && v != "(devel)" {
			version = v
		}
		var revision string
		dirty := false
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				revision = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if revision != "" {
			if len(revision) > 12 {
				revision = revision[:12]
			}
			if dirty {
				revision += "-dirty"
			}
			version = revision
		}
	}
	return version, runtime.Version()
}
