package serve

import (
	"bufio"
	"net/http"
	"strings"
	"testing"
	"time"
)

// readSSE consumes a text/event-stream body, returning every data payload
// seen before the `event: done` sentinel and whether the sentinel arrived.
func readSSE(t *testing.T, resp *http.Response) (payloads []string, done bool) {
	t.Helper()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	inDone := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
		case line == "event: done":
			inDone = true
		case strings.HasPrefix(line, "data: "):
			if inDone {
				return payloads, true
			}
			payloads = append(payloads, strings.TrimPrefix(line, "data: "))
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading event stream: %v", err)
	}
	return payloads, inDone
}

// startWatch opens the /watch stream and returns once the response headers
// are in — at that point the watcher is subscribed, so records from steps
// issued afterwards cannot be missed.
func startWatch(t *testing.T, ts string, id string) *http.Response {
	t.Helper()
	req, err := http.NewRequest("GET", ts+"/v1/sessions/"+id+"/watch", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("watch: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("watch Content-Type = %q", ct)
	}
	return resp
}

// TestWatchStreamMatchesTrace is the live-streaming determinism gate: a
// watcher subscribed before any step sees one event per control interval,
// each payload byte-identical to the corresponding /trace JSONL line, and
// the stream ends with the done sentinel when the run completes.
func TestWatchStreamMatchesTrace(t *testing.T) {
	_, ts := newTestServer(t, nil)
	info := create(t, ts, CreateRequest{Scheme: "coordinated", App: "gamess", MaxTimeS: 5})

	resp := startWatch(t, ts.URL, info.ID)
	type result struct {
		payloads []string
		done     bool
	}
	ch := make(chan result, 1)
	go func() {
		p, d := readSSE(t, resp)
		ch <- result{p, d}
	}()

	final := stepToDone(t, ts, info.ID, 3)
	var got result
	select {
	case got = <-ch:
	case <-time.After(30 * time.Second):
		t.Fatal("watch stream did not end after the run completed")
	}
	if !got.done {
		t.Fatal("stream ended without the done sentinel")
	}
	if len(got.payloads) != final.Steps {
		t.Fatalf("watched %d records, want %d (one per interval)", len(got.payloads), final.Steps)
	}

	trace := strings.Split(strings.TrimSuffix(string(fetchTrace(t, ts, info.ID)), "\n"), "\n")
	if len(trace) != len(got.payloads) {
		t.Fatalf("trace has %d lines, watch delivered %d", len(trace), len(got.payloads))
	}
	for i := range trace {
		if got.payloads[i] != trace[i] {
			t.Errorf("record %d differs:\nwatch: %s\ntrace: %s", i, got.payloads[i], trace[i])
		}
	}
}

// TestWatchFinishedSession checks the degenerate stream: watching a session
// that already ran to completion yields just the done sentinel.
func TestWatchFinishedSession(t *testing.T) {
	_, ts := newTestServer(t, nil)
	info := create(t, ts, CreateRequest{Scheme: "coordinated", App: "gamess", MaxTimeS: 5})
	stepToDone(t, ts, info.ID, 50)

	resp := startWatch(t, ts.URL, info.ID)
	payloads, done := readSSE(t, resp)
	if !done {
		t.Error("stream on a finished session ended without the done sentinel")
	}
	if len(payloads) != 0 {
		t.Errorf("finished session streamed %d records, want 0", len(payloads))
	}
}

// TestWatchNoTrace checks the tracing-disabled conflict: a session created
// with trace_capacity -1 has nothing to stream and /watch says so.
func TestWatchNoTrace(t *testing.T) {
	_, ts := newTestServer(t, nil)
	info := create(t, ts, CreateRequest{Scheme: "coordinated", App: "gamess",
		MaxTimeS: 5, TraceCapacity: -1})
	var eb errorBody
	if code := do(t, "GET", ts.URL+"/v1/sessions/"+info.ID+"/watch", nil, &eb); code != http.StatusConflict {
		t.Fatalf("watch on untraced session: status %d, want 409", code)
	}
	if eb.Code != "no_trace" {
		t.Errorf("error code %q, want no_trace", eb.Code)
	}
}

// TestWatchDeleteEndsStream checks that deleting a session mid-watch closes
// the stream with the done sentinel rather than leaving the watcher hanging.
func TestWatchDeleteEndsStream(t *testing.T) {
	_, ts := newTestServer(t, nil)
	info := create(t, ts, CreateRequest{Scheme: "coordinated", App: "gamess", MaxTimeS: 60})

	resp := startWatch(t, ts.URL, info.ID)
	done := make(chan bool, 1)
	go func() {
		_, d := readSSE(t, resp)
		done <- d
	}()

	if code := do(t, "POST", ts.URL+"/v1/sessions/"+info.ID+"/step", StepRequest{Steps: 2}, nil); code != http.StatusOK {
		t.Fatalf("step: status %d", code)
	}
	if code := do(t, "DELETE", ts.URL+"/v1/sessions/"+info.ID, nil, nil); code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}
	select {
	case d := <-done:
		if !d {
			t.Error("stream ended without the done sentinel after delete")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("watch stream still open 10s after session delete")
	}
}

// TestWatchSlowConsumerDrops is the backpressure gate, white-box: a watcher
// that never drains its channel loses records — counted in
// serve_watch_dropped_total — while the step requests that produced them
// proceed unimpeded.
func TestWatchSlowConsumerDrops(t *testing.T) {
	s, ts := newTestServer(t, nil)
	// 160 simulated seconds at the default 500ms interval = 320 intervals,
	// comfortably past the 256-record watcher buffer.
	info := create(t, ts, CreateRequest{Scheme: "coordinated", App: "gamess", MaxTimeS: 160})

	s.mu.Lock()
	sess := s.sessions[info.ID]
	s.mu.Unlock()
	if sess == nil {
		t.Fatal("session not in table")
	}
	drops := s.reg.Counter("serve_watch_dropped_total")
	w, ok := sess.watch(drops)
	if !ok {
		t.Fatal("watch refused a traced session")
	}
	defer sess.unwatch(w)

	final := stepToDone(t, ts, info.ID, 64)
	if final.Steps <= watchBuffer {
		t.Fatalf("run only had %d intervals; need > %d to overflow", final.Steps, watchBuffer)
	}
	wantDrops := int64(final.Steps - watchBuffer)
	if got := drops.Value(); got != wantDrops {
		t.Errorf("serve_watch_dropped_total = %d, want %d (steps %d - buffer %d)",
			got, wantDrops, final.Steps, watchBuffer)
	}
	if got := len(w.ch); got != watchBuffer {
		t.Errorf("stalled watcher retains %d records, want the full buffer %d", got, watchBuffer)
	}
}
