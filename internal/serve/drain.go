package serve

import (
	"context"
	"sync"

	"yukta/internal/pool"
)

// DrainReport accounts for a graceful drain: every session that was live when
// the drain began must appear in exactly one of the buckets, so zero-drop
// shutdown is checkable (Drained == Sessions).
type DrainReport struct {
	// Sessions is how many sessions were open when the drain began.
	Sessions int
	// Drained is how many completed the staged-fallback walk (every session
	// that was walked, tripped or not).
	Drained int
	// Tripped is how many were live supervised runs forced through an
	// operator trip into the fallback.
	Tripped int
	// Finished is how many had already run to completion (drained trivially,
	// no walk needed).
	Finished int
}

// Drain gracefully shuts the session table down: it first flips the daemon
// into draining mode (creates return 503 from that point on), then walks
// every open session through the supervisory layer's staged fallback — an
// operator-forced trip (supervisor.CauseOperator) followed by a settling walk
// of Config.DrainSteps intervals, so each board lands in the fallback's
// conservative posture rather than being dropped mid-run. Unsupervised and
// already-finished sessions are marked drained without a trip. The walk fans
// out over the bounded worker pool (Config.DrainParallelism), the same
// bounding discipline the experiment harness uses.
//
// Drain returns once every session has been walked or ctx is cancelled;
// cancellation stops dispatching new walks but never abandons one mid-walk.
// cmd/yukta-serve wires Drain to SIGTERM.
func (s *Server) Drain(ctx context.Context) DrainReport {
	s.mu.Lock()
	s.draining = true
	live := make([]*session, 0, len(s.order))
	for _, id := range s.order {
		if sess := s.sessions[id]; sess != nil {
			live = append(live, sess)
		}
	}
	s.mu.Unlock()

	s.log.Info("drain started", "sessions", len(live))
	rep := DrainReport{Sessions: len(live)}
	var mu sync.Mutex
	_ = pool.ForEachMetered(s.cfg.DrainParallelism, len(live), s.reg, func(i int) error {
		if ctx.Err() != nil {
			return nil
		}
		sess := live[i]
		finished := sess.done()
		tripped := sess.drain(s.cfg.DrainSteps)
		s.reg.Counter("serve_sessions_drained_total").Add(1)
		mu.Lock()
		rep.Drained++
		if tripped {
			rep.Tripped++
		}
		if finished {
			rep.Finished++
		}
		mu.Unlock()
		return nil
	})
	s.log.Info("drain finished", "sessions", rep.Sessions, "drained", rep.Drained,
		"tripped", rep.Tripped, "finished", rep.Finished)
	return rep
}
