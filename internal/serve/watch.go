package serve

import (
	"fmt"
	"net/http"

	"yukta/internal/obs"
)

// Live session streaming: GET /v1/sessions/{id}/watch holds the connection
// open as a text/event-stream and emits one event per control interval the
// session executes, each carrying the interval's flight record encoded by
// exactly the trace exporter (obs.AppendRecordJSON), so a watched record is
// byte-identical to the corresponding /trace line. The stream ends with an
// `event: done` sentinel when the run completes or the session goes away
// (delete, reap, drain).
//
// Watchers never touch the stepping hot path beyond one nil check per
// interval: a core.StepRun step hook is installed only while at least one
// watcher is subscribed, publishes are non-blocking sends into each
// watcher's bounded channel, and a slow consumer loses records (counted in
// serve_watch_dropped_total) rather than stalling the step request that
// produced them.

// watchBuffer is each watcher's channel capacity, in records: enough to ride
// out scheduler hiccups for a consumer that keeps up, small enough that an
// abandoned-but-connected watcher costs a few hundred flat structs.
const watchBuffer = 256

// watcher is one subscribed /watch stream.
type watcher struct {
	// ch delivers records to the streaming handler; closed to signal
	// end-of-stream (the handler then emits the done sentinel).
	ch chan obs.Record
	// closed guards double-close: set whenever ch has been closed, under the
	// session lock.
	closed bool
	// drops counts records this watcher lost to a full channel.
	drops *obs.Counter
}

// watch subscribes a new watcher. It reports ok=false when the session has
// tracing disabled (trace_capacity -1) — there are no records to stream. A
// session that is already finished or drained returns an immediately-closed
// watcher, so the stream consists of just the done sentinel. The first
// subscriber installs the session's step hook; publishing stays out of the
// stepping path entirely while nobody watches.
func (se *session) watch(drops *obs.Counter) (*watcher, bool) {
	se.mu.Lock()
	defer se.mu.Unlock()
	if se.rec == nil {
		return nil, false
	}
	w := &watcher{ch: make(chan obs.Record, watchBuffer), drops: drops}
	if se.run.Done() || se.drained {
		close(w.ch)
		w.closed = true
		return w, true
	}
	if se.watchers == nil {
		se.watchers = map[*watcher]struct{}{}
	}
	if len(se.watchers) == 0 {
		se.run.SetStepHook(se.publishLocked)
	}
	se.watchers[w] = struct{}{}
	return w, true
}

// unwatch removes a watcher (client disconnected). The last unsubscribe
// uninstalls the step hook.
func (se *session) unwatch(w *watcher) {
	se.mu.Lock()
	defer se.mu.Unlock()
	if !w.closed {
		close(w.ch)
		w.closed = true
	}
	delete(se.watchers, w)
	if len(se.watchers) == 0 {
		se.run.SetStepHook(nil)
	}
}

// publishLocked is the session's step hook: fan the interval's freshly
// recorded flight record out to every watcher, non-blocking. It runs inside
// run.Step, which only executes under se.mu, so the watcher set is stable.
func (se *session) publishLocked(int) {
	if len(se.watchers) == 0 || se.rec.Len() == 0 {
		return
	}
	rec := se.rec.At(se.rec.Len() - 1)
	for w := range se.watchers {
		select {
		case w.ch <- rec:
		default:
			w.drops.Add(1)
		}
	}
}

// closeWatchersLocked ends every open stream (run finished, session deleted,
// reaped or drained) and uninstalls the step hook. Callers hold se.mu.
func (se *session) closeWatchersLocked() {
	for w := range se.watchers {
		if !w.closed {
			close(w.ch)
			w.closed = true
		}
	}
	se.watchers = nil
	se.run.SetStepHook(nil)
}

// closeWatchers is closeWatchersLocked for callers not holding the lock.
func (se *session) closeWatchers() {
	se.mu.Lock()
	defer se.mu.Unlock()
	se.closeWatchersLocked()
}

// handleWatch is GET /v1/sessions/{id}/watch: the live per-interval event
// stream.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	sess := s.lookup(w, r)
	if sess == nil {
		return
	}
	sess.touch(s.cfg.Now())
	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		writeError(w, http.StatusInternalServerError, "bad_request",
			"response writer cannot stream")
		return
	}
	wt, ok := sess.watch(s.reg.Counter("serve_watch_dropped_total"))
	if !ok {
		writeError(w, http.StatusConflict, "no_trace",
			"session %s was created with tracing disabled; nothing to watch", sess.id)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	buf := make([]byte, 0, 1024)
	for {
		select {
		case rec, open := <-wt.ch:
			if !open {
				_, _ = fmt.Fprintf(w, "event: done\ndata: {}\n\n")
				flusher.Flush()
				return
			}
			buf = obs.AppendRecordJSON(buf[:0], &rec)
			if _, err := fmt.Fprintf(w, "data: %s\n\n", buf); err != nil {
				sess.unwatch(wt)
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			sess.unwatch(wt)
			return
		}
	}
}
