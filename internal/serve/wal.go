package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// The write-ahead log is the serve layer's durability substrate: one
// append-only file per hosted session, recording the session's *inputs* —
// the create tuple plus every mutating operation (step batches, forced
// trips, the drain walk) — never its state. Because hosted runs are
// deterministic functions of those inputs (the byte-identity gate of
// DESIGN.md §11), recovery is re-execution: replay the logged operations
// through a fresh core.StepRun and the session's trace, scalars and
// supervisory state are reconstructed exactly (see recover.go).
//
// Record format: one record per line, `%08x <json>` — the IEEE CRC32 of the
// JSON payload, a space, the payload. Every append is fsync'd before the
// daemon acknowledges the mutation, so an acknowledged operation survives
// SIGKILL; a torn or corrupted tail (a crash mid-write, a bad sector) fails
// the CRC or the parse and recovery truncates the file back to the last
// valid record instead of refusing to start.

// Op kinds of walRecord.T.
const (
	walOpCreate = "create" // first record: tenant + the full create request
	walOpStep   = "step"   // a step batch: N intervals executed, client Seq
	walOpTrip   = "trip"   // operator-forced supervisor trip
	walOpDrain  = "drain"  // graceful drain walked this session
)

// walRecord is one logged session operation. Exactly one record per
// acknowledged mutation; the zero values of unused fields are omitted.
type walRecord struct {
	// T is the op kind: create, step, trip or drain.
	T string `json:"t"`
	// Tenant is the owning tenant (create records only).
	Tenant string `json:"tenant,omitempty"`
	// Req is the full create request (create records only); replaying it
	// through the normal validation path rebuilds the session's StepRun.
	Req *CreateRequest `json:"req,omitempty"`
	// N is the number of control intervals the step batch executed.
	N int `json:"n,omitempty"`
	// Seq is the client's idempotency sequence number for the step batch
	// (0 when the client did not request idempotent sequencing).
	Seq int64 `json:"seq,omitempty"`
}

// wal is an open per-session write-ahead log. It is not internally locked:
// the owning session serializes access under its own mutex.
type wal struct {
	f    *os.File
	path string
	// appended counts records written to the file since open (recovery seeds
	// it with the replayed count), driving the compaction heuristic.
	appended int
}

// sessionWALPath returns the log path of a session ID within a data dir.
func sessionWALPath(dataDir, id string) string {
	return filepath.Join(dataDir, "sessions", id+".wal")
}

// createWAL creates a fresh session log, failing if one already exists (an
// ID collision means the data dir is shared or stale — refuse rather than
// interleave two sessions' histories).
func createWAL(path string) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: creating session log: %w", err)
	}
	return &wal{f: f, path: path}, nil
}

// openWAL reopens an existing session log for appending (the recovery path;
// the caller has already read and replayed its records).
func openWAL(path string, replayed int) (*wal, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: reopening session log: %w", err)
	}
	return &wal{f: f, path: path, appended: replayed}, nil
}

// encodeWALRecord renders one record line, CRC prefix included.
func encodeWALRecord(rec walRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	line := make([]byte, 0, len(payload)+10)
	line = fmt.Appendf(line, "%08x ", crc32.ChecksumIEEE(payload))
	line = append(line, payload...)
	line = append(line, '\n')
	return line, nil
}

// append durably logs one record: write, then fsync, so the caller may
// acknowledge the mutation the moment append returns. Any error wedges the
// session (the caller stops accepting mutations) — a log that cannot be
// written means the durability contract cannot be kept.
func (w *wal) append(rec walRecord) error {
	line, err := encodeWALRecord(rec)
	if err != nil {
		return fmt.Errorf("serve: encoding session log record: %w", err)
	}
	if _, err := w.f.Write(line); err != nil {
		return fmt.Errorf("serve: appending session log record: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("serve: syncing session log: %w", err)
	}
	w.appended++
	return nil
}

// close closes the underlying file (idempotent).
func (w *wal) close() {
	if w.f != nil {
		_ = w.f.Close()
		w.f = nil
	}
}

// remove closes and deletes the log (session deleted or reaped — its state
// is intentionally discarded).
func (w *wal) remove() {
	w.close()
	_ = os.Remove(w.path)
}

// readWAL reads a session log, returning every valid record plus the byte
// offset where validity ends. A torn/corrupt tail is not an error: records
// holds the valid prefix and validLen < file size flags the damage for the
// caller to truncate (recovery surfaces it in /v1/metrics). Only an
// unreadable file returns err.
func readWAL(path string) (records []walRecord, validLen int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	rd := bufio.NewReader(f)
	for {
		line, err := rd.ReadString('\n')
		if err == io.EOF {
			// A final line without its newline is a torn write: invalid.
			return records, validLen, nil
		}
		if err != nil {
			return nil, 0, err
		}
		rec, ok := decodeWALLine(strings.TrimSuffix(line, "\n"))
		if !ok {
			return records, validLen, nil
		}
		records = append(records, rec)
		validLen += int64(len(line))
	}
}

// decodeWALLine parses and CRC-checks one record line.
func decodeWALLine(line string) (walRecord, bool) {
	var rec walRecord
	crcHex, payload, ok := strings.Cut(line, " ")
	if !ok || len(crcHex) != 8 {
		return rec, false
	}
	var want uint32
	if _, err := fmt.Sscanf(crcHex, "%08x", &want); err != nil {
		return rec, false
	}
	if crc32.ChecksumIEEE([]byte(payload)) != want {
		return rec, false
	}
	if err := json.Unmarshal([]byte(payload), &rec); err != nil {
		return rec, false
	}
	if rec.T == "" {
		return rec, false
	}
	return rec, true
}

// coalesceOps folds a record list into its compact logical form: runs of
// consecutive step records merge into one (interval counts summed, the
// latest client Seq kept — recovery needs only the newest sequence number
// for idempotency). Create/trip/drain records are order-preserving barriers,
// so replaying the coalesced list reproduces the exact same interval/trip
// interleaving as the original.
func coalesceOps(recs []walRecord) []walRecord {
	out := make([]walRecord, 0, len(recs))
	for _, rec := range recs {
		if rec.T == walOpStep && len(out) > 0 && out[len(out)-1].T == walOpStep {
			last := &out[len(out)-1]
			last.N += rec.N
			if rec.Seq != 0 {
				last.Seq = rec.Seq
			}
			continue
		}
		out = append(out, rec)
	}
	return out
}

// compactThreshold triggers in-place compaction: once a session's log has
// grown this many records past its coalesced form, rewrite it. Long-running
// sessions stepped in small batches would otherwise accrete one record per
// request forever; compaction keeps the log proportional to the number of
// logical phase changes (trips, drains) instead.
const compactThreshold = 512

// compact rewrites the log as the given coalesced op list, atomically:
// write a temp file, fsync it, rename over the log, fsync the directory. A
// crash at any point leaves either the old or the new log fully intact.
// On success the wal's handle points at the new file.
func (w *wal) compact(ops []walRecord) error {
	tmp := w.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	for _, rec := range ops {
		line, err := encodeWALRecord(rec)
		if err == nil {
			_, err = f.Write(line)
		}
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, w.path); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(filepath.Dir(w.path))
	// Swap the append handle onto the new file.
	nf, err := os.OpenFile(w.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if w.f != nil {
		_ = w.f.Close()
	}
	w.f = nf
	w.appended = len(ops)
	return nil
}

// truncateWAL chops a damaged log back to its last valid record and syncs.
func truncateWAL(path string, validLen int64) error {
	if err := os.Truncate(path, validLen); err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// syncDir fsyncs a directory so a rename/create/remove within it is durable
// (best-effort: some filesystems refuse directory syncs).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}
