package serve

import (
	"sync"
	"time"
)

// buckets is the per-tenant admission rate limiter: one token bucket per
// tenant, lazily created at full burst on the tenant's first create. Session
// creation consumes a token; tokens refill continuously at rate per second up
// to the burst cap. The clock is injected so tests control time.
type buckets struct {
	rate  float64
	burst int
	now   func() time.Time

	mu   sync.Mutex
	byID map[string]*bucket
}

// bucket is one tenant's token state.
type bucket struct {
	tokens float64
	last   time.Time
}

// newBuckets returns the limiter; a non-positive rate disables limiting (every
// take succeeds).
func newBuckets(rate float64, burst int, now func() time.Time) *buckets {
	return &buckets{rate: rate, burst: burst, now: now, byID: map[string]*bucket{}}
}

// take attempts to consume one token for the tenant. On success it returns
// (true, 0); on rejection it returns false and how long until the next token
// accrues (the Retry-After hint).
func (b *buckets) take(tenant string) (bool, time.Duration) {
	if b.rate <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	bk := b.byID[tenant]
	if bk == nil {
		bk = &bucket{tokens: float64(b.burst), last: now}
		b.byID[tenant] = bk
	}
	if dt := now.Sub(bk.last).Seconds(); dt > 0 {
		bk.tokens += dt * b.rate
		if max := float64(b.burst); bk.tokens > max {
			bk.tokens = max
		}
	}
	bk.last = now
	if bk.tokens >= 1 {
		bk.tokens--
		return true, 0
	}
	wait := time.Duration((1 - bk.tokens) / b.rate * float64(time.Second))
	return false, wait
}
