package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"

	"yukta/internal/obs"
)

// httpExample is one parsed ```http block of docs/API.md: a request, the
// expected status, and the expected response structure.
type httpExample struct {
	line     int // 1-based line of the block's opening fence, for messages
	method   string
	path     string
	reqBody  string
	status   int
	respBody string
}

// parseAPIDoc extracts every ```http block from the markdown source. Block
// grammar: "METHOD /path", optional request-body lines, a blank line, the
// expected status code, then the expected response body (a leading "<"
// marks a JSONL stream to schema-validate instead of a JSON document).
func parseAPIDoc(t *testing.T, src string) []httpExample {
	t.Helper()
	var out []httpExample
	lines := strings.Split(src, "\n")
	for i := 0; i < len(lines); i++ {
		if strings.TrimSpace(lines[i]) != "```http" {
			continue
		}
		start := i + 1
		end := start
		for end < len(lines) && strings.TrimSpace(lines[end]) != "```" {
			end++
		}
		if end == len(lines) {
			t.Fatalf("docs/API.md line %d: unterminated ```http block", i+1)
		}
		block := lines[start:end]
		i = end

		ex := httpExample{line: start}
		if len(block) == 0 {
			t.Fatalf("docs/API.md line %d: empty http block", start)
		}
		method, path, ok := strings.Cut(strings.TrimSpace(block[0]), " ")
		if !ok {
			t.Fatalf("docs/API.md line %d: want \"METHOD /path\", got %q", start+1, block[0])
		}
		ex.method, ex.path = method, path

		rest := block[1:]
		blank := -1
		for j, l := range rest {
			if strings.TrimSpace(l) == "" {
				blank = j
				break
			}
		}
		if blank < 0 {
			t.Fatalf("docs/API.md line %d: http block has no blank line before the status", start+1)
		}
		ex.reqBody = strings.TrimSpace(strings.Join(rest[:blank], "\n"))
		after := rest[blank+1:]
		if len(after) == 0 {
			t.Fatalf("docs/API.md line %d: http block missing the expected status", start+1)
		}
		status, err := strconv.Atoi(strings.TrimSpace(after[0]))
		if err != nil {
			t.Fatalf("docs/API.md line %d: expected status line, got %q", start+1, after[0])
		}
		ex.status = status
		ex.respBody = strings.TrimSpace(strings.Join(after[1:], "\n"))
		out = append(out, ex)
	}
	return out
}

// checkSubset asserts that the actual JSON value structurally covers the
// documented one: every documented object key exists; strings match exactly
// unless the doc writes the placeholder "…"; booleans match exactly;
// numbers only need to be present (measured values vary across tuning);
// arrays match element-wise with equal length.
func checkSubset(path string, want, got any) error {
	switch w := want.(type) {
	case map[string]any:
		g, ok := got.(map[string]any)
		if !ok {
			return fmt.Errorf("%s: documented as object, served %T", path, got)
		}
		for k, wv := range w {
			gv, ok := g[k]
			if !ok {
				return fmt.Errorf("%s: documented key %q missing from response", path, k)
			}
			if err := checkSubset(path+"."+k, wv, gv); err != nil {
				return err
			}
		}
	case []any:
		g, ok := got.([]any)
		if !ok {
			return fmt.Errorf("%s: documented as array, served %T", path, got)
		}
		if len(g) != len(w) {
			return fmt.Errorf("%s: documented %d elements, served %d", path, len(w), len(g))
		}
		for j := range w {
			if err := checkSubset(fmt.Sprintf("%s[%d]", path, j), w[j], g[j]); err != nil {
				return err
			}
		}
	case string:
		if w == "…" {
			return nil
		}
		if g, ok := got.(string); !ok || g != w {
			return fmt.Errorf("%s: documented %q, served %v", path, w, got)
		}
	case bool:
		if g, ok := got.(bool); !ok || g != w {
			return fmt.Errorf("%s: documented %v, served %v", path, w, got)
		}
	case float64:
		if _, ok := got.(float64); !ok {
			return fmt.Errorf("%s: documented a number, served %T", path, got)
		}
	}
	return nil
}

// TestAPIDocExamples replays every ```http example of docs/API.md, in
// order, against a fresh daemon — the documentation is executable and
// cannot drift from the implementation. The daemon matches the config the
// doc declares: tenant burst 2 with a near-zero refill rate.
func TestAPIDocExamples(t *testing.T) {
	src, err := os.ReadFile("../../docs/API.md")
	if err != nil {
		t.Fatal(err)
	}
	examples := parseAPIDoc(t, string(src))
	if len(examples) < 10 {
		t.Fatalf("parsed only %d http examples from docs/API.md; the doc should carry the full lifecycle", len(examples))
	}

	s, err := New(Config{
		Platform:    testPlatform(t),
		TenantRate:  1e-9,
		TenantBurst: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, ex := range examples {
		name := fmt.Sprintf("%s %s (API.md:%d)", ex.method, ex.path, ex.line)
		var rd io.Reader
		if ex.reqBody != "" {
			rd = strings.NewReader(ex.reqBody)
		}
		req, err := http.NewRequest(ex.method, ts.URL+ex.path, rd)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != ex.status {
			t.Fatalf("%s: documented status %d, served %d: %s", name, ex.status, resp.StatusCode, raw)
		}
		switch {
		case ex.respBody == "":
			// Status-only example.
		case strings.HasPrefix(ex.respBody, "<"):
			// JSONL stream: validate against the flight-record schema.
			if n, err := obs.ValidateJSONL(bytes.NewReader(raw)); err != nil {
				t.Fatalf("%s: streamed trace invalid after %d records: %v", name, n, err)
			}
		default:
			var want, got any
			if err := json.Unmarshal([]byte(ex.respBody), &want); err != nil {
				t.Fatalf("%s: documented response is not valid JSON: %v", name, err)
			}
			if err := json.Unmarshal(raw, &got); err != nil {
				t.Fatalf("%s: served response is not valid JSON: %v\n%s", name, err, raw)
			}
			if err := checkSubset("$", want, got); err != nil {
				t.Fatalf("%s: %v\nserved: %s", name, err, raw)
			}
		}
	}
}
