// Package fault is the deterministic fault-injection layer of the
// robustness experiments (DESIGN.md "Fault model & robustness methodology").
// A Plan declares which fault classes are active and how intense they are; a
// per-run Injector, derived from the plan's seed and the run's identity,
// corrupts the board's sensor and actuator paths through the board package's
// SensorTap/ActuatorTap hooks, schedules forced firmware emergency-throttle
// events, and perturbs the workload's phase structure.
//
// Determinism is the design center: every Injector owns private RNG streams
// (one per fault class) seeded from (Plan.Seed, run key), so a given
// (plan, scheme, app) run sees a byte-identical fault sequence no matter how
// many experiment workers run concurrently or in what order the scheduler
// interleaves them. Nothing in this package shares mutable state between
// runs.
package fault

import (
	"hash/fnv"
	"math"
	"math/rand"
	"strconv"
	"time"

	"yukta/internal/board"
	"yukta/internal/workload"
)

// NoiseFault adds zero-mean Gaussian noise to the sensor view a controller
// receives, with occasional burst episodes during which the noise is
// amplified (modeling supply transients coupling into the INA231 sense
// lines).
type NoiseFault struct {
	// PowerStdW is the noise std on the big-cluster power reading, in
	// watts; the little-cluster reading gets a tenth of it (its sense
	// resistor sees a tenth of the current).
	PowerStdW float64
	// TempStdC is the noise std on the temperature reading, in °C.
	TempStdC float64
	// PerfStdFrac is the relative noise std on the three BIPS counters
	// (perf-counter multiplexing error).
	PerfStdFrac float64
	// BurstProb is the per-interval probability that a burst episode
	// starts; during a burst every noise draw is scaled by BurstGain for
	// BurstLen intervals.
	BurstProb float64
	// BurstGain is the noise amplification during a burst.
	BurstGain float64
	// BurstLen is the burst length in control intervals.
	BurstLen int
}

// DropoutFault drops or latches the power-sensor readings, modeling the
// 260 ms sensor-refresh latency jittering past a control interval (stale)
// and outright failed reads (dropped).
type DropoutFault struct {
	// DropProb is the per-interval probability that both power readings
	// are lost; the controller observes NaN.
	DropProb float64
	// StaleProb is the per-interval probability that a staleness episode
	// starts: the previously delivered readings are re-delivered for
	// 1..MaxStale intervals.
	StaleProb float64
	// MaxStale bounds the length of a staleness episode, in intervals.
	MaxStale int
}

// ActuatorFault perturbs the DVFS/hotplug command path.
type ActuatorFault struct {
	// HoldProb is the per-write probability that the command is not
	// applied this interval and the actuator keeps its current value — a
	// lost cpufreq/hotplug write, equivalently a one-interval actuator
	// lag (the controller reissues its command next interval).
	HoldProb float64
	// FreqStepProb is the per-write probability that a DVFS command lands
	// one step away from the requested operating point (quantization
	// error in the firmware's table lookup).
	FreqStepProb float64
	// CoreOffProb is the per-write probability that a hotplug command
	// lands one core away from the requested count.
	CoreOffProb float64
}

// ThermalFault schedules forced firmware emergency-throttle events: for the
// event's duration the TMU treats the thermal path as violated regardless
// of the real hot-spot temperature (a misreading thermal diode, or an
// externally imposed thermal cap).
type ThermalFault struct {
	// MeanPeriodS is the mean simulated time between events, in seconds;
	// inter-arrival gaps are exponential.
	MeanPeriodS float64
	// DurationS is the forced-violation duration per event, in seconds.
	DurationS float64
}

// Plan declares a fault-injection campaign. The zero value injects nothing.
// A Plan is an immutable description: the same Plan value may be shared by
// any number of concurrent runs, each deriving its own Injector.
type Plan struct {
	// Seed is the campaign's base seed. Every run derives independent
	// per-class RNG streams from (Seed, run key), so a fixed seed gives a
	// byte-identical fault sequence per run at any experiment parallelism.
	Seed int64

	// Noise configures Gaussian/burst sensor noise.
	Noise NoiseFault
	// Dropout configures dropped and stale power-sensor readings.
	Dropout DropoutFault
	// Actuator configures lag and quantization error on DVFS/hotplug
	// commands.
	Actuator ActuatorFault
	// Thermal configures forced TMU emergency-throttle events.
	Thermal ThermalFault
	// Phase configures mid-run workload phase disturbances (executed by
	// workload.Disturbed).
	Phase workload.Disturbance
}

// Enabled reports whether any fault class would inject anything.
func (p Plan) Enabled() bool {
	return p.Noise != (NoiseFault{}) || p.Dropout != (DropoutFault{}) ||
		p.Actuator != (ActuatorFault{}) || p.Thermal != (ThermalFault{}) ||
		p.Phase != (workload.Disturbance{})
}

// Preset returns the calibrated fault plan at intensity s, the knob the
// robustness sweep turns. Intensity 0 returns the empty plan; intensity 1 is
// the harshest point of the sweep (see DESIGN.md for the calibration
// rationale per class). Probabilities and magnitudes scale linearly with s.
func Preset(seed int64, s float64) Plan {
	if s <= 0 {
		return Plan{Seed: seed}
	}
	return Plan{
		Seed: seed,
		Noise: NoiseFault{
			PowerStdW:   0.2 * s,
			TempStdC:    0.2 * s,
			PerfStdFrac: 0.03 * s,
			BurstProb:   0.02 * s,
			BurstGain:   3,
			BurstLen:    4,
		},
		Dropout: DropoutFault{
			DropProb:  0.08 * s,
			StaleProb: 0.12 * s,
			MaxStale:  3,
		},
		Actuator: ActuatorFault{
			HoldProb:     0.15 * s,
			FreqStepProb: 0.15 * s,
			CoreOffProb:  0.05 * s,
		},
		Thermal: ThermalFault{
			MeanPeriodS: 50 / s,
			DurationS:   3 * s,
		},
		Phase: workload.Disturbance{
			MeanPeriodG: 400 / s,
			DurationG:   40,
			ThreadFrac:  1 - 0.1*s,
			MemBoundAdd: 0.15 * s,
		},
	}
}

// Stats counts the faults an Injector actually delivered during one run.
type Stats struct {
	// DroppedReadings counts intervals whose power readings were lost.
	DroppedReadings int
	// StaleReadings counts intervals whose power readings were re-delivered
	// from an earlier window.
	StaleReadings int
	// HeldCommands counts actuator writes that were ignored (lag).
	HeldCommands int
	// SkewedCommands counts actuator writes that landed off the requested
	// level (quantization error).
	SkewedCommands int
	// ForcedThrottles counts forced TMU emergency-throttle events.
	ForcedThrottles int
}

// Injector applies one run's fault sequence. It implements the board
// package's SensorTap and ActuatorTap interfaces and schedules thermal
// events through Advance. An Injector belongs to exactly one run (one
// board) and is not safe for concurrent use — which is the point: per-run
// ownership is what makes the fault sequence independent of experiment
// parallelism.
type Injector struct {
	plan Plan

	// Independent streams per fault class, so one class's draw count never
	// perturbs another class's sequence.
	noiseRNG, dropRNG, actRNG, thermRNG *rand.Rand

	// Sensor-path state.
	burstLeft          int
	staleLeft          int
	staleBig, staleLit float64
	prevBig, prevLit   float64
	havePrev           bool

	// Thermal-event schedule.
	nextEventS float64

	stats Stats
}

// RunKey builds the canonical run key for a (scheme, app) pair, optionally
// qualified by a fleet board index. The separator is a NUL byte, which
// neither scheme names nor app names contain, so the encoding is injective:
// distinct pairs can never alias to the same key (a plain "|" separator
// would let ("x|y", "z") and ("x", "y|z") collide and share fault streams).
//
// Fleet runs pass the board's index so N boards running the same
// (scheme, app) draw N independent fault streams. Board 0 (or an absent
// index) encodes identically to the historical two-argument key, preserving
// common-random-numbers pairing between a fleet's board 0 and the solo run
// of the same (scheme, app) — and keeping every previously recorded fault
// sequence byte-identical. Non-zero indices append a NUL-separated decimal
// suffix, which cannot collide with any (scheme, app) pair whose names are
// NUL-free.
func RunKey(scheme, app string, boardIndex ...int) string {
	key := scheme + "\x00" + app
	for _, idx := range boardIndex {
		if idx != 0 {
			key += "\x00" + strconv.Itoa(idx)
		}
	}
	return key
}

// RunKeyPath builds the run key for a board inside a hierarchical fleet:
// nodePath is the board's leaf coordinator path in the topology tree and
// boardIndex its leaf-local index. An empty path encodes identically to
// RunKey(scheme, app, boardIndex), so a one-level tree's boards draw
// byte-identical fault streams to the flat fleet (and board 0 keeps its
// common-random-numbers pairing with the solo run). A non-empty path is
// appended as a NUL-separated "@"-prefixed segment: topology node paths
// never contain NUL ("/"-joined IDs from a NUL-free charset) and never
// start with "@", while flat keys' trailing segments are pure decimal board
// indices — so tree keys can alias neither a flat key nor a tree key from
// a different (path, index) pair.
func RunKeyPath(scheme, app, nodePath string, boardIndex int) string {
	if nodePath == "" {
		return RunKey(scheme, app, boardIndex)
	}
	key := scheme + "\x00" + app + "\x00@" + nodePath
	if boardIndex != 0 {
		key += "\x00" + strconv.Itoa(boardIndex)
	}
	return key
}

// ClassNames lists the isolated fault-class presets PresetClass accepts, in
// the order the per-class tables report them, plus the combined "all".
func ClassNames() []string {
	return []string{"noise", "dropout", "actuator", "thermal", "phase", "all"}
}

// ValidClass reports whether name is one of the isolated fault-class presets
// PresetClass accepts (see ClassNames). Boundary layers — the serve daemon's
// session-create endpoint — use it to reject unknown classes with an error
// instead of PresetClass's silent empty plan.
func ValidClass(name string) bool {
	for _, c := range ClassNames() {
		if name == c {
			return true
		}
	}
	return false
}

// PresetClass returns the Preset plan at intensity s restricted to a single
// fault class ("all" returns the full preset; see ClassNames). Unknown class
// names return the empty plan. Isolating classes is how the supervised
// degradation table attributes wins and losses per failure mode.
func PresetClass(seed int64, s float64, class string) Plan {
	full := Preset(seed, s)
	out := Plan{Seed: seed}
	switch class {
	case "noise":
		out.Noise = full.Noise
	case "dropout":
		out.Dropout = full.Dropout
	case "actuator":
		out.Actuator = full.Actuator
	case "thermal":
		out.Thermal = full.Thermal
	case "phase":
		out.Phase = full.Phase
	case "all":
		return full
	}
	return out
}

// derive builds a per-class seed from the plan seed, the run key and a
// class tag, via FNV-1a.
func derive(seed int64, runKey string, class string) int64 {
	h := fnv.New64a()
	h.Write([]byte(runKey))
	h.Write([]byte{0})
	h.Write([]byte(class))
	return seed ^ int64(h.Sum64())
}

// NewInjector derives the run's injector from the plan seed and the run key
// (conventionally RunKey(scheme, app)). Equal (plan, key) pairs yield
// identical fault sequences.
func (p Plan) NewInjector(runKey string) *Injector {
	in := &Injector{
		plan:     p,
		noiseRNG: rand.New(rand.NewSource(derive(p.Seed, runKey, "noise"))),
		dropRNG:  rand.New(rand.NewSource(derive(p.Seed, runKey, "dropout"))),
		actRNG:   rand.New(rand.NewSource(derive(p.Seed, runKey, "actuator"))),
		thermRNG: rand.New(rand.NewSource(derive(p.Seed, runKey, "thermal"))),
	}
	if p.Thermal.MeanPeriodS > 0 && p.Thermal.DurationS > 0 {
		in.nextEventS = in.thermRNG.ExpFloat64() * p.Thermal.MeanPeriodS
	} else {
		in.nextEventS = math.Inf(1)
	}
	return in
}

// Disturb wraps w with the plan's workload phase disturbance, seeded from
// the same (seed, run key) derivation as the injector streams. A plan with
// no phase class returns w unchanged.
func (p Plan) Disturb(w workload.Workload, runKey string) workload.Workload {
	if p.Phase == (workload.Disturbance{}) {
		return w
	}
	return workload.NewDisturbed(w, p.Phase, derive(p.Seed, runKey, "phase"))
}

// Stats returns the faults delivered so far.
func (in *Injector) Stats() Stats { return in.stats }

// Advance runs the thermal-event schedule up to the board's current time.
// The runner calls it once per control interval, before stepping the board.
func (in *Injector) Advance(b *board.Board) {
	for b.TimeS() >= in.nextEventS {
		b.ForceEmergencyThrottle(time.Duration(in.plan.Thermal.DurationS * float64(time.Second)))
		in.stats.ForcedThrottles++
		in.nextEventS += in.plan.Thermal.DurationS + in.thermRNG.ExpFloat64()*in.plan.Thermal.MeanPeriodS
	}
}

// TapSensors implements board.SensorTap: Gaussian/burst noise on every
// reading, then dropout/staleness on the power readings.
func (in *Injector) TapSensors(s board.Sensors) board.Sensors {
	n := in.plan.Noise
	gain := 1.0
	if n.BurstProb > 0 {
		if in.burstLeft > 0 {
			in.burstLeft--
			gain = n.BurstGain
		} else if in.noiseRNG.Float64() < n.BurstProb {
			in.burstLeft = n.BurstLen - 1
			gain = n.BurstGain
		}
	}
	if n.PowerStdW > 0 {
		s.BigPowerW = math.Max(0, s.BigPowerW+in.noiseRNG.NormFloat64()*n.PowerStdW*gain)
		s.LittlePowerW = math.Max(0, s.LittlePowerW+in.noiseRNG.NormFloat64()*n.PowerStdW*gain/10)
	}
	if n.TempStdC > 0 {
		s.TempC += in.noiseRNG.NormFloat64() * n.TempStdC * gain
	}
	if n.PerfStdFrac > 0 {
		s.BIPS = math.Max(0, s.BIPS*(1+in.noiseRNG.NormFloat64()*n.PerfStdFrac*gain))
		s.BIPSBig = math.Max(0, s.BIPSBig*(1+in.noiseRNG.NormFloat64()*n.PerfStdFrac*gain))
		s.BIPSLittle = math.Max(0, s.BIPSLittle*(1+in.noiseRNG.NormFloat64()*n.PerfStdFrac*gain))
	}

	d := in.plan.Dropout
	switch {
	case in.staleLeft > 0:
		in.staleLeft--
		s.BigPowerW, s.LittlePowerW = in.staleBig, in.staleLit
		in.stats.StaleReadings++
	case d.DropProb > 0 && in.dropRNG.Float64() < d.DropProb:
		s.BigPowerW, s.LittlePowerW = math.NaN(), math.NaN()
		in.stats.DroppedReadings++
	case d.StaleProb > 0 && in.havePrev && in.dropRNG.Float64() < d.StaleProb:
		in.staleLeft = in.dropRNG.Intn(maxInt(d.MaxStale, 1))
		in.staleBig, in.staleLit = in.prevBig, in.prevLit
		s.BigPowerW, s.LittlePowerW = in.prevBig, in.prevLit
		in.stats.StaleReadings++
	}
	if !math.IsNaN(s.BigPowerW) {
		in.prevBig, in.prevLit = s.BigPowerW, s.LittlePowerW
		in.havePrev = true
	}
	return s
}

// tapLevel applies the hold/offset command faults shared by all four
// actuator channels; step is the channel's level granularity.
func (in *Injector) tapLevel(requested, current, step float64, offProb float64) float64 {
	a := in.plan.Actuator
	if requested == current {
		return requested
	}
	if a.HoldProb > 0 && in.actRNG.Float64() < a.HoldProb {
		in.stats.HeldCommands++
		return current
	}
	if offProb > 0 && in.actRNG.Float64() < offProb {
		in.stats.SkewedCommands++
		if in.actRNG.Float64() < 0.5 {
			return requested - step
		}
		return requested + step
	}
	return requested
}

// TapBigCores implements board.ActuatorTap.
func (in *Injector) TapBigCores(requested, current int) int {
	return int(in.tapLevel(float64(requested), float64(current), 1, in.plan.Actuator.CoreOffProb))
}

// TapLittleCores implements board.ActuatorTap.
func (in *Injector) TapLittleCores(requested, current int) int {
	return int(in.tapLevel(float64(requested), float64(current), 1, in.plan.Actuator.CoreOffProb))
}

// TapBigFreq implements board.ActuatorTap.
func (in *Injector) TapBigFreq(requested, current, step float64) float64 {
	return in.tapLevel(requested, current, step, in.plan.Actuator.FreqStepProb)
}

// TapLittleFreq implements board.ActuatorTap.
func (in *Injector) TapLittleFreq(requested, current, step float64) float64 {
	return in.tapLevel(requested, current, step, in.plan.Actuator.FreqStepProb)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
