package fault

import (
	"fmt"
	"testing"
)

// runKeySchemes mirrors the scheme names the harness actually derives
// streams from (core's Table IV names plus the supervised fault-key alias,
// which shares its primary's key by design and is therefore excluded from
// the uniqueness set).
var runKeySchemes = []string{
	"Coordinated heuristic",
	"Decoupled heuristic",
	"Yukta: HW SSV+OS heuristic",
	"Yukta: HW SSV+OS SSV",
	"Decoupled HW LQG+OS LQG",
	"Monolithic LQG",
}

// runKeyApps is a representative evaluation app list, including names that
// are prefixes of one another would be if they existed; plain SPEC/PARSEC
// names are enough because RunKey's NUL separators make prefix collisions
// structurally impossible for NUL-free names.
var runKeyApps = []string{
	"gamess", "mcf", "blackscholes", "streamcluster", "perlbench",
	"bodytrack", "freqmine", "x264",
}

// TestRunKeyCrossProductCollisionFree walks the full (scheme, app, fault
// class, board index) cross product the fleet sweeps can generate and
// asserts every derived seed is unique: no fleet board may alias another
// board's (or a solo run's) fault stream, for any class stream.
func TestRunKeyCrossProductCollisionFree(t *testing.T) {
	classes := ClassNames()
	for _, extra := range []string{"noise", "phase"} {
		seen := false
		for _, c := range classes {
			if c == extra {
				seen = true
				break
			}
		}
		if !seen {
			classes = append(classes, extra)
		}
	}
	keys := make(map[string]string)   // RunKey -> identity
	seeds := make(map[int64][]string) // derived seed -> identities (collision list)
	const seed = 42
	for _, sch := range runKeySchemes {
		for _, app := range runKeyApps {
			for idx := 0; idx < 64; idx++ {
				id := fmt.Sprintf("%s/%s/board%d", sch, app, idx)
				key := RunKey(sch, app, idx)
				if prev, ok := keys[key]; ok {
					t.Fatalf("RunKey collision: %s and %s both map to %q", prev, id, key)
				}
				keys[key] = id
				for _, class := range classes {
					s := derive(seed, key, class)
					cid := id + "/" + class
					seeds[s] = append(seeds[s], cid)
				}
			}
		}
	}
	// FNV-64 over ~100k identities: any collision at all is overwhelmingly
	// likely a derivation bug (identical inputs), not hash bad luck.
	for s, ids := range seeds {
		if len(ids) > 1 {
			t.Fatalf("derived seed %d shared by %v", s, ids)
		}
	}
	if want := len(runKeySchemes) * len(runKeyApps) * 64; len(keys) != want {
		t.Fatalf("expected %d distinct keys, got %d", want, len(keys))
	}
}

// TestRunKeyPathCrossProductCollisionFree mirrors the flat cross-product
// test one tree level up: across schemes × apps × tree node paths ×
// leaf-local board indices — including paths that are themselves decimal
// strings, the shape generated topologies produce — every run key and every
// derived per-class seed must be unique, and none may alias a flat fleet
// key. The flat keys for the same (scheme, app) are folded into the same
// uniqueness set so a rack-local board can never share a stream with a
// flat-indexed board.
func TestRunKeyPathCrossProductCollisionFree(t *testing.T) {
	classes := ClassNames()
	// Decimal paths ("5", "0/1") are the generated-topology shape and the
	// likeliest to alias flat integer suffixes; named paths cover explicit
	// specs.
	paths := []string{"", "0", "5", "31", "0/0", "0/1", "5/3", "a", "b/row-1"}
	keys := make(map[string]string)
	seeds := make(map[int64][]string)
	const seed = 42
	for _, sch := range runKeySchemes {
		for _, app := range runKeyApps {
			for _, path := range paths {
				for idx := 0; idx < 8; idx++ {
					id := fmt.Sprintf("%s/%s/node%q/board%d", sch, app, path, idx)
					key := RunKeyPath(sch, app, path, idx)
					if prev, ok := keys[key]; ok {
						// The empty path is defined to alias the flat key at
						// the same index — that pairing is the contract, not
						// a collision, and is pinned separately below.
						t.Fatalf("RunKeyPath collision: %s and %s both map to %q", prev, id, key)
					}
					keys[key] = id
					for _, class := range classes {
						s := derive(seed, key, class)
						seeds[s] = append(seeds[s], id+"/"+class)
					}
				}
			}
			// Fold in the flat fleet keys for indices beyond the path set, to
			// catch a tree key aliasing a flat board's stream (e.g. path "5"
			// local 0 vs flat board 5).
			for idx := 1; idx < 64; idx++ {
				id := fmt.Sprintf("%s/%s/flat-board%d", sch, app, idx)
				key := RunKey(sch, app, idx)
				if prev, ok := keys[key]; ok && prev != id {
					if idx < 8 {
						continue // flat key == empty-path key at same index, by design
					}
					t.Fatalf("flat key aliased: %s and %s both map to %q", prev, id, key)
				}
				if _, ok := keys[key]; !ok {
					keys[key] = id
					for _, class := range classes {
						s := derive(seed, key, class)
						seeds[s] = append(seeds[s], id+"/"+class)
					}
				}
			}
		}
	}
	for s, ids := range seeds {
		if len(ids) > 1 {
			t.Fatalf("derived seed %d shared by %v", s, ids)
		}
	}
}

// TestRunKeyPathFlatCompat pins the degenerate-tree contract: an empty node
// path encodes identically to the flat RunKey at every board index, so a
// one-level tree reproduces the flat fleet's fault streams byte-for-byte.
func TestRunKeyPathFlatCompat(t *testing.T) {
	for idx := 0; idx < 16; idx++ {
		if got, want := RunKeyPath("s", "a", "", idx), RunKey("s", "a", idx); got != want {
			t.Fatalf("RunKeyPath(s, a, \"\", %d) = %q, want %q", idx, got, want)
		}
	}
	if got, want := RunKeyPath("s", "a", "5", 0), "s\x00a\x00@5"; got != want {
		t.Fatalf("tree key encoding changed: %q, want %q", got, want)
	}
	if RunKeyPath("s", "a", "5", 0) == RunKey("s", "a", 5) {
		t.Fatal("rack path \"5\" local 0 aliases flat board 5")
	}
}

// TestRunKeyBoardZeroCompat pins the common-random-numbers contract: board
// index 0 (and an omitted index) encode to the historical two-argument key,
// so fleet board 0 pairs with the solo run of the same (scheme, app), while
// every other index gets its own stream.
func TestRunKeyBoardZeroCompat(t *testing.T) {
	if got, want := RunKey("s", "a", 0), RunKey("s", "a"); got != want {
		t.Fatalf("RunKey(s, a, 0) = %q, want the two-argument key %q", got, want)
	}
	if got, want := RunKey("s", "a"), "s\x00a"; got != want {
		t.Fatalf("two-argument key changed encoding: %q, want %q", got, want)
	}
	for idx := 1; idx < 8; idx++ {
		if RunKey("s", "a", idx) == RunKey("s", "a") {
			t.Fatalf("board %d aliases the solo key", idx)
		}
	}
}
