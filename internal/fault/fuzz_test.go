package fault

import (
	"math/rand"
	"strings"
	"testing"
)

// FuzzClassStreamDistinct fuzzes the per-class seed derivation with pairs of
// (scheme, app, class) triples: identical triples must derive identical
// seeds, and distinct triples must never yield identical RNG streams. The
// second seed corpus entry is the historical "|"-separator collision
// (("x|y","z") vs ("x","y|z")) that motivated the NUL-separated RunKey.
func FuzzClassStreamDistinct(f *testing.F) {
	f.Add("Yukta: HW SSV+OS SSV", "gamess", "noise", "Yukta: HW SSV+OS SSV", "gamess", "dropout", int64(1))
	f.Add("x|y", "z", "noise", "x", "y|z", "noise", int64(1))
	f.Add("a", "b", "thermal", "a", "b", "thermal", int64(7))
	f.Add("", "", "", "", "", "actuator", int64(0))
	f.Fuzz(func(t *testing.T, s1, a1, c1, s2, a2, c2 string, seed int64) {
		for _, s := range []string{s1, a1, c1, s2, a2, c2} {
			if strings.ContainsRune(s, 0) {
				t.Skip("NUL is the reserved key separator")
			}
		}
		same := s1 == s2 && a1 == a2 && c1 == c2
		d1 := derive(seed, RunKey(s1, a1), c1)
		d2 := derive(seed, RunKey(s2, a2), c2)
		if same {
			if d1 != d2 {
				t.Fatalf("identical triples derived different seeds: %d vs %d", d1, d2)
			}
			return
		}
		if d1 == d2 {
			t.Fatalf("distinct triples (%q,%q,%q) vs (%q,%q,%q) derived the same seed %d",
				s1, a1, c1, s2, a2, c2, d1)
		}
		r1 := rand.New(rand.NewSource(d1))
		r2 := rand.New(rand.NewSource(d2))
		equal := true
		for i := 0; i < 16; i++ {
			if r1.Uint64() != r2.Uint64() {
				equal = false
				break
			}
		}
		if equal {
			t.Fatalf("distinct triples (%q,%q,%q) vs (%q,%q,%q) yielded identical streams",
				s1, a1, c1, s2, a2, c2)
		}
	})
}
