package fault

import (
	"math"
	"testing"
	"time"

	"yukta/internal/board"
	"yukta/internal/workload"
)

// tapTrace runs n synthetic sensor intervals through a fresh injector and
// returns the observed readings.
func tapTrace(p Plan, key string, n int) []board.Sensors {
	in := p.NewInjector(key)
	out := make([]board.Sensors, n)
	for i := range out {
		out[i] = in.TapSensors(board.Sensors{
			TimeS: float64(i), BigPowerW: 2.5, LittlePowerW: 0.25,
			TempC: 65, BIPS: 4, BIPSBig: 3, BIPSLittle: 1,
		})
	}
	return out
}

func sensorsEqual(a, b board.Sensors) bool {
	eq := func(x, y float64) bool {
		return x == y || (math.IsNaN(x) && math.IsNaN(y))
	}
	return eq(a.BigPowerW, b.BigPowerW) && eq(a.LittlePowerW, b.LittlePowerW) &&
		eq(a.TempC, b.TempC) && eq(a.BIPS, b.BIPS) &&
		eq(a.BIPSBig, b.BIPSBig) && eq(a.BIPSLittle, b.BIPSLittle)
}

func TestInjectorSensorSequenceDeterministic(t *testing.T) {
	p := Preset(42, 1)
	a := tapTrace(p, "ssv|mcf", 300)
	b := tapTrace(p, "ssv|mcf", 300)
	for i := range a {
		if !sensorsEqual(a[i], b[i]) {
			t.Fatalf("interval %d: %+v vs %+v — sensor faults not deterministic", i, a[i], b[i])
		}
	}
	c := tapTrace(p, "lqg|mcf", 300)
	same := true
	for i := range a {
		if !sensorsEqual(a[i], c[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different run keys produced identical fault sequences")
	}
}

func TestInjectorDropoutAndStale(t *testing.T) {
	p := Plan{Seed: 1, Dropout: DropoutFault{DropProb: 0.2, StaleProb: 0.2, MaxStale: 3}}
	in := p.NewInjector("k")
	drops, stales := 0, 0
	for i := 0; i < 500; i++ {
		s := in.TapSensors(board.Sensors{BigPowerW: float64(i), LittlePowerW: float64(i) / 10})
		if math.IsNaN(s.BigPowerW) {
			if !math.IsNaN(s.LittlePowerW) {
				t.Fatal("dropout must lose both power readings")
			}
			drops++
		} else if s.BigPowerW != float64(i) {
			if s.BigPowerW >= float64(i) {
				t.Fatalf("stale reading %v is not from an earlier window (i=%d)", s.BigPowerW, i)
			}
			stales++
		}
	}
	st := in.Stats()
	if drops == 0 || stales == 0 {
		t.Fatalf("expected both drops and stales, got %d/%d", drops, stales)
	}
	if st.DroppedReadings != drops || st.StaleReadings != stales {
		t.Fatalf("stats %+v disagree with observed %d drops / %d stales", st, drops, stales)
	}
}

func TestInjectorActuatorFaultsStayOnGrid(t *testing.T) {
	p := Plan{Seed: 9, Actuator: ActuatorFault{HoldProb: 0.3, FreqStepProb: 0.3, CoreOffProb: 0.3}}
	in := p.NewInjector("k")
	held, skewed := 0, 0
	for i := 0; i < 400; i++ {
		got := in.TapBigFreq(1.5, 1.0, 0.1)
		switch got {
		case 1.0:
			held++
		case 1.4, 1.6:
			skewed++
		case 1.5:
		default:
			t.Fatalf("freq tap returned off-grid value %v", got)
		}
		n := in.TapBigCores(3, 2)
		if n < 2 || n > 4 {
			t.Fatalf("core tap returned %d for request 3 (current 2)", n)
		}
	}
	if held == 0 || skewed == 0 {
		t.Fatalf("expected both holds and skews, got %d/%d", held, skewed)
	}
	st := in.Stats()
	if st.HeldCommands == 0 || st.SkewedCommands == 0 {
		t.Fatalf("stats not counting actuator faults: %+v", st)
	}
	// An already-satisfied command must never be perturbed.
	for i := 0; i < 100; i++ {
		if got := in.TapLittleFreq(0.8, 0.8, 0.1); got != 0.8 {
			t.Fatalf("no-op write perturbed to %v", got)
		}
	}
}

func TestInjectorForcedThrottleSchedule(t *testing.T) {
	p := Plan{Seed: 4, Thermal: ThermalFault{MeanPeriodS: 2, DurationS: 0.5}}
	in := p.NewInjector("k")
	b := board.New(board.DefaultConfig())
	w, err := workload.NewApp("idle", "T", 1e9, []workload.Phase{
		{WorkFrac: 1, Threads: 1, MemBound: 0.2, IPCBig: 1, IPCLittle: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	for b.TimeS() < 30 {
		in.Advance(b)
		b.Run(w, 500*time.Millisecond)
	}
	if got := in.Stats().ForcedThrottles; got < 5 {
		t.Fatalf("expected ≈15 forced events over 30 s with mean period 2 s, got %d", got)
	}

	// A plan with no thermal class must never force events.
	in2 := (Plan{Seed: 4}).NewInjector("k")
	in2.Advance(b)
	if in2.Stats().ForcedThrottles != 0 {
		t.Fatal("empty plan forced a throttle event")
	}
}

func TestPresetScalingAndEnabled(t *testing.T) {
	if (Plan{}).Enabled() {
		t.Fatal("zero plan reports enabled")
	}
	if Preset(1, 0).Enabled() {
		t.Fatal("intensity-0 preset reports enabled")
	}
	half, full := Preset(1, 0.5), Preset(1, 1)
	if !half.Enabled() || !full.Enabled() {
		t.Fatal("nonzero presets report disabled")
	}
	if half.Noise.PowerStdW >= full.Noise.PowerStdW {
		t.Fatal("noise magnitude not increasing with intensity")
	}
	if half.Thermal.MeanPeriodS <= full.Thermal.MeanPeriodS {
		t.Fatal("thermal event rate not increasing with intensity")
	}
}

func TestPlanDisturbWrapsDeterministically(t *testing.T) {
	mk := func() workload.Workload {
		w, err := workload.NewApp("app", "T", 100, []workload.Phase{
			{WorkFrac: 1, Threads: 8, MemBound: 0.2, IPCBig: 1.5, IPCLittle: 0.7},
		})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	p := Preset(7, 1)
	trace := func() []int {
		dw := p.Disturb(mk(), "ssv|app")
		out := make([]int, 120)
		for i := range out {
			out[i] = dw.Profile().Threads
			dw.Advance(1)
		}
		return out
	}
	a, b := trace(), trace()
	perturbed := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d: %d vs %d — phase disturbance not deterministic", i, a[i], b[i])
		}
		if a[i] != 8 {
			perturbed = true
		}
	}
	if !perturbed {
		t.Fatal("full-intensity preset never perturbed the profile over 120 G work")
	}
	if w := (Plan{Seed: 7}).Disturb(mk(), "k"); w.Name() != "app" {
		t.Fatal("empty plan Disturb should pass the workload through")
	}
	if _, ok := (Plan{Seed: 7}).Disturb(mk(), "k").(*workload.Disturbed); ok {
		t.Fatal("empty plan Disturb should not wrap")
	}
}

// TestEndToEndBoardWithTaps attaches an injector to a real board and checks
// the whole faulted sensor/actuator path reproduces byte-identically.
func TestEndToEndBoardWithTaps(t *testing.T) {
	run := func() ([]board.Sensors, Stats) {
		p := Preset(99, 1)
		in := p.NewInjector("heur|app")
		w, err := workload.NewApp("app", "T", 1e9, []workload.Phase{
			{WorkFrac: 1, Threads: 8, MemBound: 0.3, IPCBig: 1.5, IPCLittle: 0.7},
		})
		if err != nil {
			t.Fatal(err)
		}
		b := board.New(board.DefaultConfig())
		b.AttachSensorTap(in)
		b.AttachActuatorTap(in)
		var trace []board.Sensors
		freq := 1.0
		for i := 0; i < 60; i++ {
			in.Advance(b)
			b.SetBigFreq(freq)
			b.SetBigCores(1 + i%4)
			freq += 0.1
			if freq > 2.0 {
				freq = 1.0
			}
			trace = append(trace, b.Run(w, 500*time.Millisecond))
		}
		return trace, in.Stats()
	}
	a, sa := run()
	b, sb := run()
	if sa != sb {
		t.Fatalf("stats differ across identical runs: %+v vs %+v", sa, sb)
	}
	if sa.HeldCommands == 0 && sa.SkewedCommands == 0 {
		t.Fatalf("no actuator faults delivered end-to-end: %+v", sa)
	}
	for i := range a {
		if !sensorsEqual(a[i], b[i]) {
			t.Fatalf("interval %d differs across identical runs", i)
		}
	}
}
