package board

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"yukta/internal/workload"
)

// steadyApp returns a long compute or memory-bound app for physics tests.
func steadyApp(t *testing.T, memBound float64) *workload.App {
	t.Helper()
	a, err := workload.NewApp("steady", "TEST", 1e6, []workload.Phase{
		{WorkFrac: 1, Threads: 8, MemBound: memBound, IPCBig: 1.6, IPCLittle: 0.8},
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func allBig(b *Board) {
	b.Place(Placement{ThreadsBig: 8, ThreadsPerBigCore: 2, ThreadsPerLittleCore: 1})
}

func TestFrequencyQuantization(t *testing.T) {
	b := New(DefaultConfig())
	b.SetBigFreq(1.234)
	if got := b.BigFreq(); math.Abs(got-1.2) > 1e-12 {
		t.Fatalf("freq %v, want 1.2", got)
	}
	b.SetBigFreq(5.0)
	if got := b.BigFreq(); got != 2.0 {
		t.Fatalf("freq %v, want clamp to 2.0", got)
	}
	b.SetBigFreq(0.01)
	if got := b.BigFreq(); got != 0.2 {
		t.Fatalf("freq %v, want clamp to 0.2", got)
	}
	b.SetLittleFreq(1.37)
	if got := b.LittleFreq(); math.Abs(got-1.4) > 1e-12 {
		t.Fatalf("little freq %v, want 1.4", got)
	}
}

func TestHotplugClamping(t *testing.T) {
	b := New(DefaultConfig())
	b.SetBigCores(0)
	if b.BigCores() != 1 {
		t.Fatalf("cores %d, want min 1", b.BigCores())
	}
	b.SetLittleCores(9)
	if b.LittleCores() != 4 {
		t.Fatalf("cores %d, want max 4", b.LittleCores())
	}
}

func TestPowerMonotoneInFrequency(t *testing.T) {
	// With the same load, higher frequency must draw more power.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f1 := 0.2 + 0.1*float64(rng.Intn(18))
		f2 := f1 + 0.1
		measure := func(freq float64) float64 {
			cfg := DefaultConfig()
			b := New(cfg)
			w := steadyApp(t, 0.2)
			b.SetBigFreq(freq)
			b.SetLittleFreq(0.6)
			// One big core keeps the operating point below the firmware
			// emergency thresholds so raw physics is measured.
			b.SetBigCores(1)
			b.Place(Placement{ThreadsBig: 8, ThreadsPerBigCore: 8, ThreadsPerLittleCore: 1})
			var last Sensors
			for i := 0; i < 8; i++ {
				last = b.Run(w, 500*time.Millisecond)
			}
			return last.BigPowerW
		}
		return measure(f2) > measure(f1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestPerformanceSaturatesForMemoryBound(t *testing.T) {
	// A memory-bound app gains much less from frequency than a compute-bound
	// one.
	gain := func(mb float64) float64 {
		rate := func(freq float64) float64 {
			b := New(DefaultConfig())
			w := steadyApp(t, mb)
			b.SetBigFreq(freq)
			// Stay below the emergency thresholds to measure raw scaling.
			b.SetBigCores(1)
			b.Place(Placement{ThreadsBig: 8, ThreadsPerBigCore: 8, ThreadsPerLittleCore: 1})
			var s Sensors
			for i := 0; i < 4; i++ {
				s = b.Run(w, 500*time.Millisecond)
			}
			return s.BIPSBig
		}
		return rate(2.0) / rate(0.5)
	}
	gCompute := gain(0.05)
	gMem := gain(0.8)
	if gCompute < 2.5 {
		t.Fatalf("compute-bound frequency gain %v too small", gCompute)
	}
	if gMem > gCompute*0.6 {
		t.Fatalf("memory-bound gain %v not saturating vs %v", gMem, gCompute)
	}
}

func TestEnergyAccumulatesAndMatchesPower(t *testing.T) {
	b := New(DefaultConfig())
	w := steadyApp(t, 0.2)
	allBig(b)
	e0 := b.EnergyJ()
	b.Run(w, 1*time.Second)
	e1 := b.EnergyJ()
	if e1 <= e0 {
		t.Fatal("energy must increase")
	}
	// Energy over 1 s should be within a factor of the instantaneous powers
	// (big is several watts here, base 0.6 W).
	if e1-e0 < 1.0 || e1-e0 > 20 {
		t.Fatalf("energy over 1s = %v J, implausible", e1-e0)
	}
}

func TestThermalRiseAndEmergency(t *testing.T) {
	cfg := DefaultConfig()
	b := New(cfg)
	w := steadyApp(t, 0.1)
	// Full blast: 4 big cores at 2.0 GHz must eventually cross the thermal
	// emergency threshold and engage throttling.
	allBig(b)
	var s Sensors
	for i := 0; i < 240; i++ { // 2 minutes
		s = b.Run(w, 500*time.Millisecond)
	}
	if s.EmergencyEvents == 0 {
		t.Fatalf("no emergency engaged at T=%v, big power=%v", s.TempC, s.BigPowerW)
	}
	// Firmware cap must have reduced the effective frequency.
	if b.EffectiveBigFreq() >= cfg.Big.FreqMaxGHz {
		t.Fatalf("throttle did not cap frequency: %v", b.EffectiveBigFreq())
	}
	// Temperature must stabilize near/below the emergency zone rather than
	// diverging.
	if s.TempC > cfg.TempEmergencyC+8 {
		t.Fatalf("temperature ran away: %v", s.TempC)
	}
}

func TestSafeOperatingPointStaysCool(t *testing.T) {
	cfg := DefaultConfig()
	b := New(cfg)
	w := steadyApp(t, 0.2)
	b.SetBigFreq(1.0)
	b.SetBigCores(2)
	b.SetLittleFreq(0.8)
	allBig(b)
	var s Sensors
	for i := 0; i < 240; i++ {
		s = b.Run(w, 500*time.Millisecond)
	}
	if s.EmergencyEvents != 0 {
		t.Fatalf("emergency at a safe operating point (T=%v P=%v)", s.TempC, s.BigPowerW)
	}
	if s.TempC >= cfg.TempEmergencyC {
		t.Fatalf("temp %v too high for safe point", s.TempC)
	}
}

func TestPowerSensorHolds(t *testing.T) {
	// The power sensor only updates every 260 ms; within a 100 ms window the
	// reported value must be the held one.
	cfg := DefaultConfig()
	b := New(cfg)
	w := steadyApp(t, 0.2)
	allBig(b)
	b.Run(w, 1*time.Second) // prime the sensor
	s1 := b.Run(w, 100*time.Millisecond)
	s2 := b.Run(w, 100*time.Millisecond)
	// Two reads 100ms apart can see at most one sensor update; mostly they
	// are identical. Verify the sensor changes only at period boundaries by
	// counting distinct values over 10 short reads.
	distinct := map[float64]bool{s1.BigPowerW: true, s2.BigPowerW: true}
	for i := 0; i < 8; i++ {
		s := b.Run(w, 100*time.Millisecond)
		distinct[s.BigPowerW] = true
	}
	// 1 s of reads with a 260 ms period gives at most ~5 updates.
	if len(distinct) > 6 {
		t.Fatalf("power sensor updated too often: %d distinct values", len(distinct))
	}
}

func TestBIPSCountsWork(t *testing.T) {
	b := New(DefaultConfig())
	w := steadyApp(t, 0.1)
	allBig(b)
	s := b.Run(w, 1*time.Second)
	// 4 big cores at 2 GHz, IPC 1.6, mostly compute bound: order 10 BIPS.
	if s.BIPS < 4 || s.BIPS > 16 {
		t.Fatalf("BIPS = %v, implausible", s.BIPS)
	}
	if s.BIPSBig <= s.BIPSLittle {
		t.Fatalf("big cluster should dominate: big=%v little=%v", s.BIPSBig, s.BIPSLittle)
	}
}

func TestPlacementSplitsWork(t *testing.T) {
	b := New(DefaultConfig())
	w := steadyApp(t, 0.1)
	b.Place(Placement{ThreadsBig: 4, ThreadsPerBigCore: 1, ThreadsPerLittleCore: 1})
	s := b.Run(w, 1*time.Second)
	if s.BIPSLittle <= 0 {
		t.Fatal("little cluster should execute the other 4 threads")
	}
}

func TestMigrationPenaltyReducesThroughput(t *testing.T) {
	run := func(migrate bool) float64 {
		b := New(DefaultConfig())
		w := steadyApp(t, 0.1)
		allBig(b)
		var total float64
		for i := 0; i < 40; i++ {
			if migrate {
				// Bounce threads between clusters every interval.
				tb := 8
				if i%2 == 0 {
					tb = 0
				}
				b.Place(Placement{ThreadsBig: tb, ThreadsPerBigCore: 2, ThreadsPerLittleCore: 2})
			}
			s := b.Run(w, 500*time.Millisecond)
			total += s.BIPS
		}
		return total
	}
	stable := run(false)
	thrash := run(true)
	if thrash >= stable {
		t.Fatalf("thrashing (%v) should not beat stable placement (%v)", thrash, stable)
	}
}

func TestWorkloadCompletionStopsCounting(t *testing.T) {
	a, err := workload.NewApp("tiny", "TEST", 0.5, []workload.Phase{
		{WorkFrac: 1, Threads: 8, MemBound: 0.1, IPCBig: 1.6, IPCLittle: 0.8},
	})
	if err != nil {
		t.Fatal(err)
	}
	b := New(DefaultConfig())
	allBig(b)
	for i := 0; i < 20 && !a.Done(); i++ {
		b.Run(a, 500*time.Millisecond)
	}
	if !a.Done() {
		t.Fatal("tiny workload should complete quickly")
	}
	s := b.Run(a, 500*time.Millisecond)
	if s.BIPS != 0 {
		t.Fatalf("BIPS %v after completion, want 0", s.BIPS)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (float64, float64) {
		b := New(DefaultConfig())
		w := workload.MustLookup("blackscholes")
		allBig(b)
		for i := 0; i < 100; i++ {
			b.Run(w, 500*time.Millisecond)
		}
		return b.EnergyJ(), b.TempC()
	}
	e1, t1 := run()
	e2, t2 := run()
	if e1 != e2 || t1 != t2 {
		t.Fatalf("simulation not deterministic: (%v,%v) vs (%v,%v)", e1, t1, e2, t2)
	}
}
